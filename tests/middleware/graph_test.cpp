#include "middleware/graph.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/telemetry/telemetry.h"
#include "msg/messages.h"

namespace lgv::mw {
namespace {

using platform::Host;

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph.register_node("a", Host::kLgv);
    graph.register_node("b", Host::kLgv);
    graph.register_node("remote", Host::kCloudServer);
  }
  Graph graph;
};

TEST_F(GraphTest, LocalPubSubDelivers) {
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  std::vector<double> received;
  graph.subscribe<msg::TwistMsg>("b", "cmd",
                                 [&](const msg::TwistMsg& t) {
                                   received.push_back(t.velocity.linear);
                                 });
  msg::TwistMsg t;
  t.velocity.linear = 0.5;
  pub.publish(t);
  EXPECT_TRUE(received.empty());  // queued until spin
  EXPECT_EQ(graph.spin(), 1u);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_DOUBLE_EQ(received[0], 0.5);
}

TEST_F(GraphTest, QueueSizeOneKeepsFreshest) {
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  std::vector<double> received;
  graph.subscribe<msg::TwistMsg>("b", "cmd",
                                 [&](const msg::TwistMsg& t) {
                                   received.push_back(t.velocity.linear);
                                 },
                                 /*queue_size=*/1);
  for (int i = 1; i <= 3; ++i) {
    msg::TwistMsg t;
    t.velocity.linear = i;
    pub.publish(t);
  }
  graph.spin();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_DOUBLE_EQ(received[0], 3.0);  // oldest dropped
  const TopicStats* stats = graph.topic_stats("cmd");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->dropped_queue, 2u);
}

TEST_F(GraphTest, DeeperQueueKeepsAll) {
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  int count = 0;
  graph.subscribe<msg::TwistMsg>("b", "cmd", [&](const msg::TwistMsg&) { ++count; },
                                 /*queue_size=*/10);
  for (int i = 0; i < 5; ++i) pub.publish({});
  graph.spin();
  EXPECT_EQ(count, 5);
}

TEST_F(GraphTest, LatchedTopicReplaysToLateSubscriber) {
  auto pub = graph.advertise<msg::PoseStamped>("a", "map_pose", /*latch=*/true);
  msg::PoseStamped p;
  p.pose = {1.0, 2.0, 0.0};
  pub.publish(p);
  graph.spin();
  double got_x = 0.0;
  graph.subscribe<msg::PoseStamped>("b", "map_pose",
                                    [&](const msg::PoseStamped& m) { got_x = m.pose.x; });
  graph.spin();
  EXPECT_DOUBLE_EQ(got_x, 1.0);
}

class RecordingTransport : public RemoteTransport {
 public:
  struct Sent {
    TopicName topic;
    NodeName dst;
    Host src;
    Host dst_host;
    std::vector<uint8_t> bytes;
  };
  void send(const TopicName& topic, const NodeName& dst, Host src, Host dst_host,
            std::vector<uint8_t> bytes) override {
    sent.push_back({topic, dst, src, dst_host, std::move(bytes)});
  }
  std::vector<Sent> sent;
};

TEST_F(GraphTest, CrossHostGoesThroughTransport) {
  RecordingTransport transport;
  graph.set_remote_transport(&transport);
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  int local_count = 0;
  graph.subscribe<msg::TwistMsg>("remote", "cmd",
                                 [&](const msg::TwistMsg&) { ++local_count; });
  pub.publish({});
  graph.spin();
  EXPECT_EQ(local_count, 0);  // not delivered locally
  ASSERT_EQ(transport.sent.size(), 1u);
  EXPECT_EQ(transport.sent[0].topic, "cmd");
  EXPECT_EQ(transport.sent[0].dst, "remote");
  EXPECT_EQ(transport.sent[0].src, Host::kLgv);
  EXPECT_EQ(transport.sent[0].dst_host, Host::kCloudServer);

  // Deliver the serialized bytes as the transport would on arrival.
  graph.deliver_serialized("cmd", "remote", transport.sent[0].bytes);
  graph.spin();
  EXPECT_EQ(local_count, 1);
}

TEST_F(GraphTest, MigrationReroutesTraffic) {
  RecordingTransport transport;
  graph.set_remote_transport(&transport);
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  int delivered = 0;
  graph.subscribe<msg::TwistMsg>("remote", "cmd", [&](const msg::TwistMsg&) { ++delivered; });

  pub.publish({});
  graph.spin();
  EXPECT_EQ(transport.sent.size(), 1u);

  // Migrate the subscriber onto the LGV: traffic becomes local.
  graph.set_host("remote", Host::kLgv);
  pub.publish({});
  graph.spin();
  EXPECT_EQ(transport.sent.size(), 1u);
  EXPECT_EQ(delivered, 1);
}

TEST_F(GraphTest, WithoutTransportCrossHostDeliversLocally) {
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  int delivered = 0;
  graph.subscribe<msg::TwistMsg>("remote", "cmd", [&](const msg::TwistMsg&) { ++delivered; });
  pub.publish({});
  graph.spin();
  EXPECT_EQ(delivered, 1);
}

TEST_F(GraphTest, ServiceCallRoundTrip) {
  graph.advertise_service<msg::GoalMsg, msg::PathMsg>(
      "b", "plan", [](const msg::GoalMsg& goal) {
        msg::PathMsg path;
        path.poses.push_back(goal.target);
        return path;
      });
  msg::GoalMsg g;
  g.target = {5.0, 6.0, 0.0};
  const auto result = graph.call_service<msg::GoalMsg, msg::PathMsg>("plan", g);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->poses.size(), 1u);
  EXPECT_DOUBLE_EQ(result->poses[0].x, 5.0);
  EXPECT_EQ(graph.service_host("plan"), Host::kLgv);
}

TEST_F(GraphTest, UnknownServiceReturnsNullopt) {
  const auto result = graph.call_service<msg::GoalMsg, msg::PathMsg>("nope", {});
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(graph.service_host("nope").has_value());
}

TEST_F(GraphTest, HostQueries) {
  EXPECT_EQ(graph.host_of("remote"), Host::kCloudServer);
  EXPECT_THROW(graph.host_of("missing"), std::invalid_argument);
  EXPECT_EQ(graph.nodes().size(), 3u);
}

TEST_F(GraphTest, CallbackPublishingDuringSpinIsDelivered) {
  auto pub_a = graph.advertise<msg::TwistMsg>("a", "first");
  auto pub_b = graph.advertise<msg::TwistMsg>("a", "second");
  int second_received = 0;
  graph.subscribe<msg::TwistMsg>("b", "first", [&](const msg::TwistMsg&) {
    pub_b.publish({});
  });
  graph.subscribe<msg::TwistMsg>("b", "second",
                                 [&](const msg::TwistMsg&) { ++second_received; });
  pub_a.publish({});
  graph.spin();
  EXPECT_EQ(second_received, 1);
}

TEST_F(GraphTest, DefaultPublisherIsInvalid) {
  Publisher<msg::TwistMsg> pub;
  EXPECT_FALSE(pub.valid());
}

TEST_F(GraphTest, MultiplePublishersShareATopic) {
  auto pub_a = graph.advertise<msg::TwistMsg>("a", "cmd");
  auto pub_b = graph.advertise<msg::TwistMsg>("b", "cmd");
  int received = 0;
  graph.subscribe<msg::TwistMsg>("b", "cmd", [&](const msg::TwistMsg&) { ++received; },
                                 /*queue_size=*/4);
  pub_a.publish({});
  pub_b.publish({});
  graph.spin();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(graph.topic_stats("cmd")->published, 2u);
}

TEST_F(GraphTest, MultipleSubscribersEachGetACopy) {
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  int got_b = 0, got_a = 0;
  graph.subscribe<msg::TwistMsg>("b", "cmd", [&](const msg::TwistMsg&) { ++got_b; });
  graph.subscribe<msg::TwistMsg>("a", "cmd", [&](const msg::TwistMsg&) { ++got_a; });
  pub.publish({});
  graph.spin();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_a, 1);
}

TEST_F(GraphTest, TopicsListed) {
  graph.advertise<msg::TwistMsg>("a", "cmd");
  graph.advertise<msg::LaserScan>("a", "scan");
  const auto topics = graph.topics();
  EXPECT_EQ(topics.size(), 2u);
}

TEST_F(GraphTest, DeliverSerializedToUnknownTopicIsIgnored) {
  graph.deliver_serialized("missing", "b", {1, 2, 3});  // must not crash
  EXPECT_EQ(graph.spin(), 0u);
}

TEST_F(GraphTest, LastMessageBytesTracked) {
  auto pub = graph.advertise<msg::LaserScan>("a", "scan");
  msg::LaserScan s;
  s.ranges.assign(360, 1.0f);
  pub.publish(s);
  EXPECT_GT(graph.last_message_bytes("scan"), 1000u);
}

TEST_F(GraphTest, SubscriptionStatsPerSubscriber) {
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  graph.subscribe<msg::TwistMsg>("b", "cmd", [](const msg::TwistMsg&) {},
                                 /*queue_size=*/1);
  graph.subscribe<msg::TwistMsg>("remote", "cmd", [](const msg::TwistMsg&) {},
                                 /*queue_size=*/10);
  for (int i = 0; i < 3; ++i) pub.publish({});

  // Before spin: b's depth-1 queue dropped two, remote holds all three.
  auto stats = graph.subscription_stats("cmd");
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].subscriber, "b");
  EXPECT_EQ(stats[0].dropped, 2u);
  EXPECT_EQ(stats[0].queue_depth, 1u);
  EXPECT_EQ(stats[0].max_queue, 1u);
  EXPECT_EQ(stats[1].subscriber, "remote");
  EXPECT_EQ(stats[1].dropped, 0u);
  EXPECT_EQ(stats[1].queue_depth, 3u);

  graph.spin();
  stats = graph.subscription_stats("cmd");
  EXPECT_EQ(stats[0].received, 1u);
  EXPECT_EQ(stats[1].received, 3u);
  EXPECT_EQ(stats[0].queue_depth, 0u);
  EXPECT_TRUE(graph.subscription_stats("no_such_topic").empty());
}

TEST_F(GraphTest, TelemetryCountsPublishDeliverDrop) {
  telemetry::Telemetry tel;
  graph.set_telemetry(&tel);
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  graph.subscribe<msg::TwistMsg>("b", "cmd", [](const msg::TwistMsg&) {},
                                 /*queue_size=*/1);
  for (int i = 0; i < 3; ++i) pub.publish({});
  graph.spin();

  const telemetry::MetricsSnapshot snap = tel.metrics().snapshot();
  const auto* published = snap.find("mw_published_total{topic=cmd}");
  ASSERT_NE(published, nullptr);
  EXPECT_DOUBLE_EQ(published->value, 3.0);
  EXPECT_DOUBLE_EQ(snap.find("mw_delivered_total{topic=cmd}")->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("mw_dropped_total{topic=cmd}")->value, 2.0);
  EXPECT_DOUBLE_EQ(snap.find("mw_message_bytes{topic=cmd}")->value, 3.0);

  // publish ×3, drop ×2, deliver ×1 instants on the topic's lane.
  size_t publishes = 0, drops = 0, delivers = 0;
  for (const auto& e : tel.tracer().events()) {
    publishes += e.name == "mw.publish";
    drops += e.name == "mw.drop";
    delivers += e.name == "mw.deliver";
  }
  EXPECT_EQ(publishes, 3u);
  EXPECT_EQ(drops, 2u);
  EXPECT_EQ(delivers, 1u);

  // Disconnecting stops recording but keeps accumulated series readable.
  graph.set_telemetry(nullptr);
  pub.publish({});
  graph.spin();
  EXPECT_DOUBLE_EQ(tel.metrics().snapshot().find("mw_published_total{topic=cmd}")->value,
                   3.0);
}

TEST_F(GraphTest, SharedPublishAliasesOnePayloadAcrossSubscribers) {
  auto pub = graph.advertise<msg::LaserScan>("a", "scan", /*latch=*/true);
  const msg::LaserScan* seen_by_b = nullptr;
  const msg::LaserScan* seen_by_a = nullptr;
  graph.subscribe<msg::LaserScan>("b", "scan",
                                  [&](const msg::LaserScan& m) { seen_by_b = &m; });
  graph.subscribe<msg::LaserScan>("a", "scan",
                                  [&](const msg::LaserScan& m) { seen_by_a = &m; });
  auto payload = std::make_shared<const msg::LaserScan>();
  pub.publish_shared(payload);
  graph.spin();
  // Both callbacks observed the caller's own object — no copies anywhere on
  // the local path. (Callbacks get `const T&`; mutation would need a
  // const_cast, which the ownership contract forbids.)
  EXPECT_EQ(seen_by_b, payload.get());
  EXPECT_EQ(seen_by_a, payload.get());

  // A late subscriber's latched replay aliases the very same payload too.
  const msg::LaserScan* seen_late = nullptr;
  graph.subscribe<msg::LaserScan>("remote", "scan",
                                  [&](const msg::LaserScan& m) { seen_late = &m; });
  graph.spin();
  EXPECT_EQ(seen_late, payload.get());

  const TopicStats* stats = graph.topic_stats("scan");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->zero_copy, 1u);
  EXPECT_EQ(stats->payload_copies, 0u);
}

TEST_F(GraphTest, SubscriberMutationNeverLeaksIntoOtherPayloads) {
  // Callbacks receive `const T&` — the only way a subscriber can mutate is on
  // its own copy, and that copy must never reach the shared payload the other
  // subscribers (and latched replays) alias.
  auto pub = graph.advertise<msg::LaserScan>("a", "scan", /*latch=*/true);
  float seen_by_b = 0.0f;
  graph.subscribe<msg::LaserScan>("b", "scan", [&](const msg::LaserScan& m) {
    msg::LaserScan mine = m;         // subscriber-local copy...
    mine.ranges.assign(4, -1.0f);    // ...mutated freely
    seen_by_b = m.ranges.at(0);      // the shared payload is untouched
  });
  float seen_by_a = 0.0f;
  graph.subscribe<msg::LaserScan>("a", "scan",
                                  [&](const msg::LaserScan& m) { seen_by_a = m.ranges.at(0); });
  auto payload = std::make_shared<const msg::LaserScan>([] {
    msg::LaserScan s;
    s.ranges.assign(4, 7.0f);
    return s;
  }());
  pub.publish_shared(payload);
  graph.spin();
  EXPECT_FLOAT_EQ(seen_by_b, 7.0f);
  EXPECT_FLOAT_EQ(seen_by_a, 7.0f);

  // A late subscriber's latched replay still sees the pristine payload.
  float seen_late = 0.0f;
  graph.subscribe<msg::LaserScan>("remote", "scan",
                                  [&](const msg::LaserScan& m) { seen_late = m.ranges.at(0); });
  graph.spin();
  EXPECT_FLOAT_EQ(seen_late, 7.0f);
  EXPECT_FLOAT_EQ(payload->ranges.at(0), 7.0f);
}

TEST_F(GraphTest, CopyPublishIsolatesSubscribersFromPublisherMutation) {
  auto pub = graph.advertise<msg::LaserScan>("a", "scan");
  float delivered = 0.0f;
  const msg::LaserScan* seen = nullptr;
  graph.subscribe<msg::LaserScan>("b", "scan", [&](const msg::LaserScan& m) {
    seen = &m;
    delivered = m.ranges.at(0);
  });
  msg::LaserScan s;
  s.ranges.assign(8, 1.5f);
  pub.publish(s);          // const-ref form: the body is copied
  s.ranges.assign(8, 9.0f);  // publisher mutates its buffer before delivery
  graph.spin();
  ASSERT_NE(seen, nullptr);
  EXPECT_NE(seen, &s);  // subscriber got the snapshot, not the live buffer
  EXPECT_FLOAT_EQ(delivered, 1.5f);
  EXPECT_EQ(graph.topic_stats("scan")->payload_copies, 1u);
  EXPECT_EQ(graph.topic_stats("scan")->zero_copy, 0u);
}

TEST_F(GraphTest, MovePublishCountsAsZeroCopy) {
  auto pub = graph.advertise<msg::LaserScan>("a", "scan");
  float delivered = 0.0f;
  graph.subscribe<msg::LaserScan>("b", "scan",
                                  [&](const msg::LaserScan& m) { delivered = m.ranges.at(0); });
  msg::LaserScan s;
  s.ranges.assign(360, 2.5f);
  pub.publish(std::move(s));
  graph.spin();
  EXPECT_FLOAT_EQ(delivered, 2.5f);
  EXPECT_EQ(graph.topic_stats("scan")->zero_copy, 1u);
  EXPECT_EQ(graph.topic_stats("scan")->payload_copies, 0u);
  // Serialization is lazy — asking for the wire size serializes on demand and
  // must still reflect the moved-in payload.
  EXPECT_GT(graph.last_message_bytes("scan"), 1000u);
}

TEST_F(GraphTest, ZeroCopyMetricsExported) {
  telemetry::Telemetry tel;
  graph.set_telemetry(&tel);
  auto pub = graph.advertise<msg::TwistMsg>("a", "cmd");
  graph.subscribe<msg::TwistMsg>("b", "cmd", [](const msg::TwistMsg&) {});
  msg::TwistMsg t;
  pub.publish(t);                                      // copy
  pub.publish(msg::TwistMsg{});                        // move
  pub.publish_shared(std::make_shared<const msg::TwistMsg>());  // alias
  graph.spin();

  const telemetry::MetricsSnapshot snap = tel.metrics().snapshot();
  const auto* copies = snap.find("mw_payload_copies_total{topic=cmd}");
  const auto* zero = snap.find("mw_zero_copy_total{topic=cmd}");
  ASSERT_NE(copies, nullptr);
  ASSERT_NE(zero, nullptr);
  EXPECT_DOUBLE_EQ(copies->value, 1.0);
  EXPECT_DOUBLE_EQ(zero->value, 2.0);
}

}  // namespace
}  // namespace lgv::mw
