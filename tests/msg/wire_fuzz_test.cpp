// Deterministic structure-aware fuzzing of the wire format: every message
// type in msg/messages.h is serialized from a representative instance, then
// attacked with seeded bit flips, truncations and splices. The contract under
// test is the hardened-deserialization guarantee of docs/wire-format.md —
// decode either succeeds or throws a std::exception; it never reads out of
// bounds, never allocates unbounded memory, never crashes. (The pre-hardening
// reader failed this: see WireAdversarial.HugeLengthDoesNotOverflowBoundsCheck
// in common/serialization_test.cpp for the overflow it shipped with.)
//
// Seeded Rng → bit-for-bit reproducible; a failure prints the seed recipe
// (type, mutation, iteration) in the assertion message.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/serialization.h"
#include "core/switcher.h"
#include "msg/messages.h"

namespace lgv::msg {
namespace {

constexpr int kItersPerMutation = 400;

enum class Mutation { kBitFlips, kTruncate, kSplice };

std::vector<uint8_t> mutate(const std::vector<uint8_t>& clean, Mutation m, Rng& rng) {
  std::vector<uint8_t> buf = clean;
  switch (m) {
    case Mutation::kBitFlips: {
      const int flips = rng.uniform_int(1, 8);
      for (int i = 0; i < flips && !buf.empty(); ++i) {
        const auto at = static_cast<size_t>(
            rng.uniform_int(0, static_cast<int>(buf.size()) - 1));
        buf[at] ^= static_cast<uint8_t>(1u << rng.uniform_int(0, 7));
      }
      break;
    }
    case Mutation::kTruncate:
      buf.resize(static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(buf.size()))));
      break;
    case Mutation::kSplice: {
      // Overwrite a random run with random bytes — the mutation most likely
      // to forge a plausible-but-hostile length varint mid-stream.
      if (buf.empty()) break;
      const auto start = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(buf.size()) - 1));
      const auto len = static_cast<size_t>(rng.uniform_int(1, 12));
      for (size_t i = start; i < std::min(buf.size(), start + len); ++i) {
        buf[i] = static_cast<uint8_t>(rng.uniform_int(0, 255));
      }
      break;
    }
  }
  return buf;
}

/// Round-trip the clean encoding, then decode every mutation of it. Decoding
/// must terminate with either a value or a std::exception. Returns the number
/// of mutated buffers that were rejected (the corpus must hit reject paths,
/// otherwise the fuzz proves nothing).
template <typename T>
int fuzz_type(const T& proto, const char* type_name, uint64_t seed) {
  const std::vector<uint8_t> clean = serialize_to_bytes(proto);
  EXPECT_EQ(deserialize_from_bytes<T>(clean), proto) << type_name;

  Rng rng(seed);
  int rejected = 0;
  for (const Mutation m :
       {Mutation::kBitFlips, Mutation::kTruncate, Mutation::kSplice}) {
    for (int iter = 0; iter < kItersPerMutation; ++iter) {
      const std::vector<uint8_t> buf = mutate(clean, m, rng);
      try {
        (void)deserialize_from_bytes<T>(buf);
      } catch (const std::exception&) {
        ++rejected;  // clean rejection is a pass
      }
      // Any other outcome — segfault, unbounded allocation, non-std
      // exception — kills the test binary and fails the suite.
    }
  }
  EXPECT_GT(rejected, 0) << type_name << ": corpus never hit a reject path";
  return rejected;
}

LaserScan make_scan() {
  LaserScan s;
  s.header = {42, 1.25, "laser"};
  s.angle_min = -1.57;
  s.angle_max = 1.57;
  s.angle_increment = 3.14 / 360.0;
  s.range_min = 0.1;
  s.range_max = 8.0;
  s.ranges.assign(360, 2.5f);
  return s;
}

OccupancyGridMsg make_grid() {
  OccupancyGridMsg g;
  g.header = {7, 3.5, "map"};
  g.frame.resolution = 0.05;
  g.width = 24;
  g.height = 16;
  g.data.assign(static_cast<size_t>(g.width) * g.height, kFreeCell);
  g.data[10] = kOccupiedCell;
  g.data[11] = kUnknownCell;
  return g;
}

PathMsg make_path() {
  PathMsg p;
  p.header = {3, 0.5, "world"};
  for (int i = 0; i < 30; ++i) {
    p.poses.push_back({0.1 * i, 0.2 * i, 0.01 * i});
  }
  return p;
}

TEST(WireFuzz, HeaderSurvivesMutations) {
  fuzz_type(Header{99, 12.5, "frame_with_a_longish_name"}, "Header", 0xF001);
}

TEST(WireFuzz, LaserScanSurvivesMutations) {
  fuzz_type(make_scan(), "LaserScan", 0xF002);
}

TEST(WireFuzz, TwistSurvivesMutations) {
  TwistMsg t;
  t.header = {5, 2.0, "base"};
  t.velocity = {0.4, -0.2};
  fuzz_type(t, "TwistMsg", 0xF003);
}

TEST(WireFuzz, PrioritizedTwistSurvivesMutations) {
  PrioritizedTwist pt;
  pt.twist.header = {1, 0.1, "base"};
  pt.twist.velocity = {0.5, 0.1};
  pt.priority = 3;
  pt.source = "path_tracking";
  fuzz_type(pt, "PrioritizedTwist", 0xF004);
}

TEST(WireFuzz, OdometrySurvivesMutations) {
  Odometry o;
  o.header = {11, 4.0, "odom"};
  o.pose = {1.0, 2.0, 0.5};
  o.velocity = {0.3, 0.05};
  fuzz_type(o, "Odometry", 0xF005);
}

TEST(WireFuzz, PoseStampedSurvivesMutations) {
  PoseStamped p;
  p.header = {13, 6.0, "map"};
  p.pose = {-3.0, 4.5, 1.57};
  fuzz_type(p, "PoseStamped", 0xF006);
}

TEST(WireFuzz, OccupancyGridSurvivesMutations) {
  fuzz_type(make_grid(), "OccupancyGridMsg", 0xF007);
}

TEST(WireFuzz, PathSurvivesMutations) {
  fuzz_type(make_path(), "PathMsg", 0xF008);
}

TEST(WireFuzz, GoalSurvivesMutations) {
  GoalMsg g;
  g.header = {17, 8.0, "world"};
  g.target = {5.0, -2.0, 0.0};
  fuzz_type(g, "GoalMsg", 0xF009);
}

TEST(WireFuzz, TimingReportSurvivesMutations) {
  TimingReport t;
  t.header = {19, 9.0, ""};
  t.node_name = "localization";
  t.processing_time = 0.0123;
  fuzz_type(t, "TimingReport", 0xF00A);
}

TEST(WireFuzz, FrameHeadersAllVersionsSurviveMutations) {
  // The integrity frame itself, in every wire layout: the 18-byte v1 header
  // (no trace context), the 26-byte v2 header (CRC-covered trace ids) and
  // the 28-byte v3 header (CRC-covered session id). frame_check must
  // classify every mutation — never crash, never read past the buffer — and
  // must pass all clean encodings.
  const std::vector<uint8_t> payload = serialize_to_bytes(make_scan());
  const std::vector<uint8_t> v3 = core::frame_wrap(
      0, 5, 1234, payload, /*trace_id=*/77, /*span_id=*/3010, /*session_id=*/42);
  const std::vector<uint8_t> v2 =
      core::frame_wrap(0, 5, 1234, payload, /*trace_id=*/77, /*span_id=*/3010);
  const std::vector<uint8_t> v1 = core::frame_wrap_v1(0, 5, 1234, payload);
  ASSERT_EQ(core::frame_check(v3), nullptr);
  ASSERT_EQ(core::frame_check(v2), nullptr);
  ASSERT_EQ(core::frame_check(v1), nullptr);
  ASSERT_EQ(core::frame_session_id(v3), 42u);

  Rng rng(0xF00C);
  int rejected = 0;
  int accepted = 0;
  for (const std::vector<uint8_t>* clean : {&v3, &v2, &v1}) {
    for (const Mutation m :
         {Mutation::kBitFlips, Mutation::kTruncate, Mutation::kSplice}) {
      for (int iter = 0; iter < kItersPerMutation; ++iter) {
        const std::vector<uint8_t> buf = mutate(*clean, m, rng);
        if (core::frame_check(buf) != nullptr) {
          ++rejected;
          continue;
        }
        ++accepted;
        // A frame that still verifies must expose a consistent header view.
        const size_t header = core::frame_header_size(buf);
        ASSERT_TRUE(header == core::kFrameHeaderSizeV3 ||
                    header == core::kFrameHeaderSize ||
                    header == core::kFrameHeaderSizeV1);
        ASSERT_LE(header, buf.size());
        (void)core::frame_trace_id(buf);
        (void)core::frame_span_id(buf);
        (void)core::frame_session_id(buf);
        (void)core::frame_seq(buf);
      }
    }
  }
  EXPECT_GT(rejected, 0) << "frame corpus never hit a reject path";
  // The CRC should make surviving mutations rare but truncate-to-original
  // no-op mutations exist, so just require the counters to be sane.
  EXPECT_GE(accepted, 0);
}

TEST(WireFuzz, PureGarbageNeverCrashesAnyDecoder) {
  // No structure at all: decoders must also survive buffers that were never
  // a message (a datagram from a confused peer, a runt fragment, noise).
  Rng rng(0xF00B);
  for (int iter = 0; iter < 600; ++iter) {
    std::vector<uint8_t> buf(static_cast<size_t>(rng.uniform_int(0, 96)));
    for (auto& b : buf) b = static_cast<uint8_t>(rng.uniform_int(0, 255));
    const auto try_decode = [&](auto tag) {
      using T = decltype(tag);
      try {
        (void)deserialize_from_bytes<T>(buf);
      } catch (const std::exception&) {
      }
    };
    try_decode(Header{});
    try_decode(LaserScan{});
    try_decode(TwistMsg{});
    try_decode(PrioritizedTwist{});
    try_decode(Odometry{});
    try_decode(PoseStamped{});
    try_decode(OccupancyGridMsg{});
    try_decode(PathMsg{});
    try_decode(GoalMsg{});
    try_decode(TimingReport{});
  }
  SUCCEED();
}

}  // namespace
}  // namespace lgv::msg
