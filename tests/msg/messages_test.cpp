#include "msg/messages.h"

#include <gtest/gtest.h>

namespace lgv::msg {
namespace {

template <typename T>
T round_trip(const T& value) {
  return deserialize_from_bytes<T>(serialize_to_bytes(value));
}

TEST(Messages, HeaderRoundTrip) {
  Header h{42, 1.25, "base_link"};
  EXPECT_EQ(round_trip(h), h);
}

TEST(Messages, LaserScanRoundTrip) {
  LaserScan s;
  s.header = {7, 0.2, "base_scan"};
  s.angle_min = -3.14;
  s.angle_max = 3.14;
  s.angle_increment = 0.0174;
  s.range_min = 0.12;
  s.range_max = 3.5;
  s.ranges = {1.0f, 2.5f, 4.5f, 0.3f};
  EXPECT_EQ(round_trip(s), s);
}

TEST(Messages, LaserScanWireSizeMatchesPaper) {
  // The paper reports the laser scan as the largest message at ~2.94 KB.
  // A 360-beam scan serializes to roughly that order: 360 × 4 B + header.
  LaserScan s;
  s.ranges.assign(360, 1.5f);
  const auto bytes = serialize_to_bytes(s);
  EXPECT_GT(bytes.size(), 1400u);
  EXPECT_LT(bytes.size(), 3200u);
}

TEST(Messages, TwistSmallOnTheWire) {
  TwistMsg t;
  t.header.stamp = 12.5;
  t.velocity = {0.22, -0.5};
  const auto bytes = serialize_to_bytes(t);
  // The paper counts velocity commands at ~48 B.
  EXPECT_LT(bytes.size(), 64u);
  EXPECT_EQ(round_trip(t), t);
}

TEST(Messages, PrioritizedTwistRoundTrip) {
  PrioritizedTwist p;
  p.twist.velocity = {0.1, 0.2};
  p.priority = -3;
  p.source = "joystick";
  EXPECT_EQ(round_trip(p), p);
}

TEST(Messages, OdometryRoundTrip) {
  Odometry o;
  o.header = {1, 2.0, "odom"};
  o.pose = {1.0, -2.0, 0.5};
  o.velocity = {0.3, -0.1};
  EXPECT_EQ(round_trip(o), o);
}

TEST(Messages, PoseStampedRoundTrip) {
  PoseStamped p;
  p.pose = {-4.0, 2.5, -3.0};
  EXPECT_EQ(round_trip(p), p);
}

TEST(Messages, OccupancyGridRoundTrip) {
  OccupancyGridMsg g;
  g.header.stamp = 5.0;
  g.frame.origin = {-1.0, -1.0};
  g.frame.resolution = 0.05;
  g.width = 3;
  g.height = 2;
  g.data = {0, 100, -1, 50, 0, 100};
  const OccupancyGridMsg back = round_trip(g);
  EXPECT_EQ(back, g);
  EXPECT_EQ(back.at(1, 0), 100);
  EXPECT_EQ(back.at(2, 0), -1);
  EXPECT_EQ(back.at(0, 1), 50);
}

TEST(Messages, PathRoundTrip) {
  PathMsg p;
  p.poses = {{0, 0, 0}, {1, 1, 0.7}, {2, 0, -0.7}};
  EXPECT_EQ(round_trip(p), p);
}

TEST(Messages, GoalAndTimingRoundTrip) {
  GoalMsg g;
  g.target = {3.0, 4.0, 1.0};
  EXPECT_EQ(round_trip(g), g);

  TimingReport t;
  t.node_name = "path_tracking";
  t.processing_time = 0.0125;
  EXPECT_EQ(round_trip(t), t);
}

}  // namespace
}  // namespace lgv::msg
