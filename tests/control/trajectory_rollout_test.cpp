#include "control/trajectory_rollout.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "perception/occupancy_grid.h"
#include "sim/world.h"

namespace lgv::control {
namespace {

perception::Costmap2D open_costmap(double size = 10.0) {
  sim::World w(size, size);
  perception::Costmap2D cm({0, 0}, size, size);
  cm.set_static_map(perception::OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.inflate();
  return cm;
}

msg::PathMsg straight_path(double y, double x0, double x1) {
  msg::PathMsg p;
  for (double x = x0; x <= x1; x += 0.25) p.poses.emplace_back(x, y, 0.0);
  return p;
}

TEST(Rollout, DrivesTowardGoalInOpenSpace) {
  perception::Costmap2D cm = open_costmap();
  TrajectoryRollout rollout;
  platform::ExecutionContext ctx;
  const RolloutDecision d = rollout.compute(cm, straight_path(5.0, 1.0, 9.0),
                                            {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.8, ctx);
  ASSERT_TRUE(d.feasible);
  EXPECT_GT(d.command.linear, 0.1);
  EXPECT_NEAR(d.command.angular, 0.0, 0.5);
}

TEST(Rollout, RespectsVelocityCap) {
  perception::Costmap2D cm = open_costmap();
  TrajectoryRollout rollout;
  platform::ExecutionContext ctx;
  for (double cap : {0.1, 0.3, 0.6}) {
    const RolloutDecision d = rollout.compute(cm, straight_path(5.0, 1.0, 9.0),
                                              {1.0, 5.0, 0.0}, {cap, 0.0}, cap, ctx);
    ASSERT_TRUE(d.feasible);
    EXPECT_LE(d.command.linear, cap + 1e-9) << "cap " << cap;
    ctx.reset();
  }
}

TEST(Rollout, AvoidsObstacleAhead) {
  sim::World w(10.0, 10.0);
  w.add_box({3.0, 4.4}, {3.6, 5.6});  // block directly ahead
  perception::Costmap2D cm({0, 0}, 10.0, 10.0);
  cm.set_static_map(perception::OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.inflate();
  TrajectoryRollout rollout;
  platform::ExecutionContext ctx;
  const RolloutDecision d = rollout.compute(cm, straight_path(5.0, 1.0, 9.0),
                                            {2.2, 5.0, 0.0}, {0.4, 0.0}, 0.6, ctx);
  ASSERT_TRUE(d.feasible);
  // Must steer, not plow straight at 0 angular velocity.
  EXPECT_GT(std::abs(d.command.angular), 0.05);
}

TEST(Rollout, InfeasibleWhenBoxedIn) {
  sim::World w(10.0, 10.0);
  // A tight cell around the robot: ~0.3 m of free interior, so any forward
  // simulation at the dynamic window's minimum speed collides.
  w.add_box({4.5, 4.5}, {5.5, 4.85});
  w.add_box({4.5, 5.15}, {5.5, 5.5});
  w.add_box({4.5, 4.5}, {4.85, 5.5});
  w.add_box({5.15, 4.5}, {5.5, 5.5});
  perception::Costmap2D cm({0, 0}, 10.0, 10.0);
  cm.set_static_map(perception::OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.inflate();
  TrajectoryRollout rollout;
  platform::ExecutionContext ctx;
  const RolloutDecision d = rollout.compute(cm, straight_path(5.0, 1.0, 9.0),
                                            {5.0, 5.0, 0.0}, {0.3, 0.0}, 0.6, ctx);
  EXPECT_FALSE(d.feasible);
  EXPECT_DOUBLE_EQ(d.command.linear, 0.0);  // recovery rotation
  EXPECT_GT(d.stats.discarded, 0u);
}

TEST(Rollout, SampleCountControlsWork) {
  perception::Costmap2D cm = open_costmap();
  const msg::PathMsg path = straight_path(5.0, 1.0, 9.0);
  auto cycles_for = [&](int samples) {
    RolloutConfig cfg;
    cfg.samples = samples;
    TrajectoryRollout r(cfg);
    platform::ExecutionContext ctx;
    r.compute(cm, path, {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.6, ctx);
    return ctx.profile().total_cycles();
  };
  const double c200 = cycles_for(200);
  const double c2000 = cycles_for(2000);
  // Work scales roughly linearly with the number of trajectories (Fig. 10).
  EXPECT_GT(c2000, 6.0 * c200);
  EXPECT_LT(c2000, 14.0 * c200);
}

TEST(Rollout, ParallelMatchesSerialDecision) {
  perception::Costmap2D cm = open_costmap();
  const msg::PathMsg path = straight_path(5.0, 1.0, 9.0);
  ThreadPool pool(4);
  TrajectoryRollout serial_r, parallel_r;
  platform::ExecutionContext ser(nullptr, 1);
  platform::ExecutionContext par(&pool, 4);
  const RolloutDecision a =
      serial_r.compute(cm, path, {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.6, ser);
  const RolloutDecision b =
      parallel_r.compute(cm, path, {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.6, par);
  // Fig. 5's parallelization is a pure scheduling change.
  EXPECT_DOUBLE_EQ(a.command.linear, b.command.linear);
  EXPECT_DOUBLE_EQ(a.command.angular, b.command.angular);
  EXPECT_EQ(a.stats.trajectories, b.stats.trajectories);
  EXPECT_DOUBLE_EQ(ser.profile().total_cycles(), par.profile().total_cycles());
}

TEST(Rollout, EmptyPathGivesNoCommand) {
  perception::Costmap2D cm = open_costmap();
  TrajectoryRollout rollout;
  platform::ExecutionContext ctx;
  const RolloutDecision d =
      rollout.compute(cm, msg::PathMsg{}, {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.6, ctx);
  EXPECT_FALSE(d.feasible);
  EXPECT_DOUBLE_EQ(d.command.linear, 0.0);
}

TEST(Rollout, StatsCountTrajectoriesAndSteps) {
  perception::Costmap2D cm = open_costmap();
  RolloutConfig cfg;
  cfg.samples = 100;
  TrajectoryRollout rollout(cfg);
  platform::ExecutionContext ctx;
  const RolloutDecision d = rollout.compute(cm, straight_path(5.0, 1.0, 9.0),
                                            {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.6, ctx);
  EXPECT_EQ(d.stats.trajectories, 100u);
  EXPECT_GT(d.stats.simulated_steps, 500u);
}

TEST(Rollout, DynamicScheduleMatchesStaticDecision) {
  perception::Costmap2D cm = open_costmap();
  const msg::PathMsg path = straight_path(5.0, 1.0, 9.0);
  ThreadPool pool(4);
  RolloutConfig static_cfg;
  static_cfg.dynamic_schedule = false;
  RolloutConfig dynamic_cfg;
  dynamic_cfg.dynamic_schedule = true;
  TrajectoryRollout static_r(static_cfg), dynamic_r(dynamic_cfg);
  platform::ExecutionContext sctx(&pool, 4);
  platform::ExecutionContext dctx(&pool, 4);
  const RolloutDecision a =
      static_r.compute(cm, path, {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.6, sctx);
  const RolloutDecision b =
      dynamic_r.compute(cm, path, {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.6, dctx);
  // Scheduling never changes the decision, only how chunks map to threads.
  EXPECT_DOUBLE_EQ(a.command.linear, b.command.linear);
  EXPECT_DOUBLE_EQ(a.command.angular, b.command.angular);
  EXPECT_DOUBLE_EQ(a.stats.best_score, b.stats.best_score);
  EXPECT_EQ(a.stats.trajectories, b.stats.trajectories);
}

TEST(Rollout, ReportsChunkImbalance) {
  // Obstacle ahead: early-exit trajectories make chunk costs uneven, which is
  // exactly what the imbalance stat measures.
  sim::World w(10.0, 10.0);
  w.add_box({3.0, 4.4}, {3.6, 5.6});
  perception::Costmap2D cm({0, 0}, 10.0, 10.0);
  cm.set_static_map(perception::OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.inflate();
  ThreadPool pool(4);
  for (const bool dynamic : {false, true}) {
    RolloutConfig cfg;
    cfg.dynamic_schedule = dynamic;
    TrajectoryRollout rollout(cfg);
    platform::ExecutionContext ctx(&pool, 4);
    const RolloutDecision d = rollout.compute(cm, straight_path(5.0, 1.0, 9.0),
                                              {2.2, 5.0, 0.0}, {0.4, 0.0}, 0.6, ctx);
    EXPECT_GE(d.stats.chunk_imbalance, 1.0) << "dynamic=" << dynamic;
    EXPECT_TRUE(ctx.profile().regions.back().dynamic == dynamic);
  }
}

TEST(Rollout, SimdMatchesScalarReferenceDecision) {
  if (simd::active_level() == simd::Level::kScalar) {
    GTEST_SKIP() << "no vector unit active; both paths are the scalar one";
  }
  // Open space and an obstacle scene: the vectorized kernel must pick the
  // same trajectory as the scalar reference, with scores diverging only by
  // rounding (vectorized rotation recurrence vs per-step libm trig).
  sim::World obstacle_world(10.0, 10.0);
  obstacle_world.add_box({3.0, 4.4}, {3.6, 5.6});
  perception::Costmap2D obstacle_cm({0, 0}, 10.0, 10.0);
  obstacle_cm.set_static_map(perception::OccupancyGrid::from_binary(
                                 obstacle_world.frame(), obstacle_world.grid())
                                 .to_msg(0.0));
  obstacle_cm.inflate();
  const perception::Costmap2D open_cm = open_costmap();
  const msg::PathMsg path = straight_path(5.0, 1.0, 9.0);

  const perception::Costmap2D* scenes[] = {&open_cm, &obstacle_cm};
  for (const perception::Costmap2D* cm : scenes) {
    RolloutConfig scalar_cfg;
    scalar_cfg.use_simd = false;
    RolloutConfig simd_cfg;
    simd_cfg.use_simd = true;
    TrajectoryRollout scalar_r(scalar_cfg), simd_r(simd_cfg);
    platform::ExecutionContext sctx, vctx;
    const RolloutDecision a =
        scalar_r.compute(*cm, path, {2.2, 5.0, 0.0}, {0.4, 0.0}, 0.6, sctx);
    const RolloutDecision b =
        simd_r.compute(*cm, path, {2.2, 5.0, 0.0}, {0.4, 0.0}, 0.6, vctx);
    EXPECT_EQ(a.feasible, b.feasible);
    // Same winning candidate → its (v, w) are generated identically.
    EXPECT_DOUBLE_EQ(a.command.linear, b.command.linear);
    EXPECT_DOUBLE_EQ(a.command.angular, b.command.angular);
    EXPECT_NEAR(a.stats.best_score, b.stats.best_score,
                std::abs(a.stats.best_score) * 1e-9 + 1e-9);
    EXPECT_EQ(a.stats.trajectories, b.stats.trajectories);
    // The modeled cost is identical: use_simd changes machine time only.
    EXPECT_DOUBLE_EQ(sctx.profile().total_cycles(), vctx.profile().total_cycles());
  }
}

TEST(Rollout, SimdDecisionInvariantAcrossSchedules) {
  if (simd::active_level() == simd::Level::kScalar) {
    GTEST_SKIP() << "no vector unit active";
  }
  // Within the vectorized mode, threading and chunking must not change even
  // the last bit: block tails are padded and dead lanes frozen so per-item
  // results are independent of where the block boundaries fall.
  perception::Costmap2D cm = open_costmap();
  const msg::PathMsg path = straight_path(5.0, 1.0, 9.0);
  ThreadPool pool(4);
  RolloutDecision reference;
  bool have_reference = false;
  for (const bool dynamic : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      RolloutConfig cfg;
      cfg.use_simd = true;
      cfg.dynamic_schedule = dynamic;
      TrajectoryRollout rollout(cfg);
      platform::ExecutionContext ctx(threads > 1 ? &pool : nullptr, threads);
      const RolloutDecision d =
          rollout.compute(cm, path, {1.0, 5.0, 0.0}, {0.2, 0.0}, 0.6, ctx);
      if (!have_reference) {
        reference = d;
        have_reference = true;
        continue;
      }
      EXPECT_DOUBLE_EQ(d.command.linear, reference.command.linear)
          << "dynamic=" << dynamic << " threads=" << threads;
      EXPECT_DOUBLE_EQ(d.command.angular, reference.command.angular);
      EXPECT_DOUBLE_EQ(d.stats.best_score, reference.stats.best_score);
      EXPECT_EQ(d.stats.simulated_steps, reference.stats.simulated_steps);
      EXPECT_EQ(d.stats.discarded, reference.stats.discarded);
    }
  }
}

}  // namespace
}  // namespace lgv::control
