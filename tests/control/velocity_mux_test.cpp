#include "control/velocity_mux.h"

#include <gtest/gtest.h>

namespace lgv::control {
namespace {

class MuxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mux.add_input({"path_tracking", 10, 0.5});
    mux.add_input({"safety", 100, 0.2});
    mux.add_input({"joystick", 50, 1.0});
  }
  VelocityMultiplexer mux;
  platform::ExecutionContext ctx;
};

TEST_F(MuxTest, SelectsOnlyFreshSource) {
  mux.on_command("path_tracking", {0.3, 0.1}, 1.0);
  const Velocity2D v = mux.select(1.1, ctx);
  EXPECT_DOUBLE_EQ(v.linear, 0.3);
  EXPECT_EQ(mux.active_source(), "path_tracking");
}

TEST_F(MuxTest, HigherPriorityWins) {
  mux.on_command("path_tracking", {0.3, 0.0}, 1.0);
  mux.on_command("safety", {-0.05, 0.0}, 1.0);
  const Velocity2D v = mux.select(1.05, ctx);
  EXPECT_DOUBLE_EQ(v.linear, -0.05);
  EXPECT_EQ(mux.active_source(), "safety");
}

TEST_F(MuxTest, ExpiredHighPriorityFallsBack) {
  mux.on_command("path_tracking", {0.3, 0.0}, 1.0);
  mux.on_command("safety", {-0.05, 0.0}, 1.0);
  // At t=1.3 safety (timeout 0.2) is stale; path_tracking (0.5) is fresh.
  const Velocity2D v = mux.select(1.3, ctx);
  EXPECT_DOUBLE_EQ(v.linear, 0.3);
}

TEST_F(MuxTest, AllStaleGivesSafetyStop) {
  mux.on_command("path_tracking", {0.3, 0.0}, 1.0);
  const Velocity2D v = mux.select(5.0, ctx);
  EXPECT_DOUBLE_EQ(v.linear, 0.0);
  EXPECT_DOUBLE_EQ(v.angular, 0.0);
  EXPECT_FALSE(mux.active_source().has_value());
}

TEST_F(MuxTest, UnknownSourceThrows) {
  EXPECT_THROW(mux.on_command("nope", {}, 0.0), std::invalid_argument);
  EXPECT_THROW(mux.set_timeout("nope", 1.0), std::invalid_argument);
}

TEST_F(MuxTest, TimeoutCanBeRetuned) {
  mux.on_command("path_tracking", {0.3, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(mux.select(1.9, ctx).linear, 0.0);  // stale at 0.5 s window
  mux.set_timeout("path_tracking", 2.0);
  mux.on_command("path_tracking", {0.3, 0.0}, 2.0);
  EXPECT_DOUBLE_EQ(mux.select(3.5, ctx).linear, 0.3);  // fresh at 2 s window
}

TEST_F(MuxTest, ArbitrationChargesWork) {
  mux.select(0.0, ctx);
  EXPECT_GT(ctx.profile().total_cycles(), 0.0);
}

TEST_F(MuxTest, LatestCommandFromSameSourceWins) {
  mux.on_command("path_tracking", {0.3, 0.0}, 1.0);
  mux.on_command("path_tracking", {0.1, 0.2}, 1.1);
  const Velocity2D v = mux.select(1.2, ctx);
  EXPECT_DOUBLE_EQ(v.linear, 0.1);
  EXPECT_DOUBLE_EQ(v.angular, 0.2);
}

}  // namespace
}  // namespace lgv::control
