#include "control/recovery.h"

#include <gtest/gtest.h>

namespace lgv::control {
namespace {

RecoveryConfig fast_config() {
  RecoveryConfig cfg;
  cfg.stuck_time = 2.0;
  cfg.backup_time = 1.0;
  cfg.cooldown = 1.0;
  return cfg;
}

TEST(Recovery, IdleWhileMoving) {
  RecoveryBehavior rb(fast_config());
  for (double t = 0; t < 10.0; t += 0.1) {
    EXPECT_FALSE(rb.update(t, 0.4, true, 0.5).has_value());
  }
  EXPECT_EQ(rb.recoveries_triggered(), 0);
}

TEST(Recovery, IdleWithoutGoal) {
  RecoveryBehavior rb(fast_config());
  for (double t = 0; t < 10.0; t += 0.1) {
    EXPECT_FALSE(rb.update(t, 0.0, false, std::nullopt).has_value());
  }
  EXPECT_EQ(rb.recoveries_triggered(), 0);
}

TEST(Recovery, TriggersAfterStuckTime) {
  RecoveryBehavior rb(fast_config());
  double t = 0.0;
  std::optional<Velocity2D> cmd;
  for (; t < 5.0; t += 0.1) {
    cmd = rb.update(t, 0.01, true, 1.0);
    if (cmd.has_value()) break;
  }
  ASSERT_TRUE(cmd.has_value());
  EXPECT_GE(t, 2.0);        // not before stuck_time
  EXPECT_LT(cmd->linear, 0.0);  // phase 1: backup
  EXPECT_TRUE(rb.recovering());
  EXPECT_EQ(rb.recoveries_triggered(), 1);
}

TEST(Recovery, BackupThenRotateTowardCarrot) {
  RecoveryBehavior rb(fast_config());
  double t = 0.0;
  // Get into recovery.
  while (!rb.update(t, 0.01, true, 1.2).has_value()) t += 0.1;
  // Backup phase lasts backup_time.
  const double backup_started = t;
  std::optional<Velocity2D> cmd;
  while (t < backup_started + 0.9) {
    t += 0.1;
    cmd = rb.update(t, 0.01, true, 1.2);
    ASSERT_TRUE(cmd.has_value());
    EXPECT_LT(cmd->linear, 0.0);
  }
  // Then rotation toward a positive heading error.
  t += 0.3;
  cmd = rb.update(t, 0.01, true, 1.2);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_DOUBLE_EQ(cmd->linear, 0.0);
  EXPECT_GT(cmd->angular, 0.0);
  // Negative error rotates the other way.
  cmd = rb.update(t + 0.1, 0.01, true, -1.2);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_LT(cmd->angular, 0.0);
}

TEST(Recovery, CompletesWhenAligned) {
  RecoveryBehavior rb(fast_config());
  double t = 0.0;
  while (!rb.update(t, 0.01, true, 1.2).has_value()) t += 0.1;
  // Finish backup.
  for (int i = 0; i < 12; ++i) {
    t += 0.1;
    rb.update(t, 0.01, true, 1.2);
  }
  ASSERT_TRUE(rb.recovering());
  // Aligned: recovery ends, control returns to path tracking.
  const auto cmd = rb.update(t + 0.1, 0.01, true, 0.05);
  EXPECT_FALSE(cmd.has_value());
  EXPECT_FALSE(rb.recovering());
}

TEST(Recovery, AbortsAfterMaxTime) {
  RecoveryConfig cfg = fast_config();
  cfg.max_recovery_time = 3.0;
  RecoveryBehavior rb(cfg);
  double t = 0.0;
  while (!rb.update(t, 0.01, true, 3.0).has_value()) t += 0.1;
  const double started = t;
  while (t < started + 5.0) {
    t += 0.1;
    if (!rb.update(t, 0.01, true, 3.0).has_value()) break;
  }
  EXPECT_FALSE(rb.recovering());
  EXPECT_LT(t, started + 3.5);
}

TEST(Recovery, CooldownBetweenRecoveries) {
  RecoveryConfig cfg = fast_config();
  cfg.cooldown = 5.0;
  RecoveryBehavior rb(cfg);
  double t = 0.0;
  while (!rb.update(t, 0.01, true, 1.0).has_value()) t += 0.1;
  // Complete it by aligning.
  for (int i = 0; i < 12; ++i) {
    t += 0.1;
    rb.update(t, 0.01, true, 1.0);
  }
  rb.update(t += 0.1, 0.01, true, 0.0);
  ASSERT_FALSE(rb.recovering());
  const double ended = t;
  // Still stuck, but within cooldown: no new recovery.
  while (t < ended + 4.5) {
    t += 0.1;
    EXPECT_FALSE(rb.update(t, 0.01, true, 1.0).has_value());
  }
  // After the cooldown + stuck_time it fires again.
  while (t < ended + 12.0) {
    t += 0.1;
    if (rb.update(t, 0.01, true, 1.0).has_value()) break;
  }
  EXPECT_EQ(rb.recoveries_triggered(), 2);
}

TEST(Recovery, MovementResetsStuckTimer) {
  RecoveryBehavior rb(fast_config());
  double t = 0.0;
  // Alternate slow and fast before the stuck_time elapses.
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 15; ++i) {
      t += 0.1;
      EXPECT_FALSE(rb.update(t, 0.01, true, 1.0).has_value());
    }
    t += 0.1;
    rb.update(t, 0.5, true, 1.0);  // a burst of motion resets the timer
  }
  EXPECT_EQ(rb.recoveries_triggered(), 0);
}

}  // namespace
}  // namespace lgv::control
