#include "control/safety_controller.h"

#include <gtest/gtest.h>

#include <numbers>

namespace lgv::control {
namespace {

msg::LaserScan scan_with_forward_range(double forward, double elsewhere = 3.0) {
  msg::LaserScan s;
  s.angle_min = -std::numbers::pi;
  s.angle_max = std::numbers::pi;
  s.angle_increment = 2.0 * std::numbers::pi / 360.0;
  s.range_min = 0.12;
  s.range_max = 3.5;
  s.ranges.assign(360, static_cast<float>(elsewhere));
  // Beam index for relative angle 0 is 180.
  s.ranges[180] = static_cast<float>(forward);
  return s;
}

TEST(Safety, NoInterventionWhenClear) {
  SafetyController safety;
  EXPECT_FALSE(safety.evaluate(scan_with_forward_range(2.0)).has_value());
}

TEST(Safety, BacksOffWhenTouching) {
  SafetyController safety;
  const auto cmd = safety.evaluate(scan_with_forward_range(0.14));
  ASSERT_TRUE(cmd.has_value());
  EXPECT_LT(cmd->linear, 0.0);
}

TEST(Safety, NoForwardCommandEver) {
  // Safety must never command forward motion — that would livelock the base
  // against an obstacle at max priority.
  SafetyController safety;
  for (double d = 0.13; d < 3.0; d += 0.07) {
    const auto cmd = safety.evaluate(scan_with_forward_range(d));
    if (cmd.has_value()) EXPECT_LE(cmd->linear, 0.0) << "at range " << d;
  }
}

TEST(Safety, IgnoresObstaclesBehind) {
  SafetyController safety;
  msg::LaserScan s = scan_with_forward_range(3.0);
  s.ranges[0] = 0.13;  // directly behind
  s.ranges[359] = 0.13;
  EXPECT_FALSE(safety.evaluate(s).has_value());
}

TEST(Safety, IgnoresInvalidRanges) {
  SafetyController safety;
  msg::LaserScan s = scan_with_forward_range(3.0);
  s.ranges[180] = 0.01f;  // below range_min: spurious reading
  EXPECT_FALSE(safety.evaluate(s).has_value());
}

TEST(Safety, ConfigurableDistances) {
  SafetyConfig cfg;
  cfg.stop_distance = 0.5;
  SafetyController safety(cfg);
  const auto cmd = safety.evaluate(scan_with_forward_range(0.4));
  ASSERT_TRUE(cmd.has_value());
  EXPECT_LT(cmd->linear, 0.0);
}

}  // namespace
}  // namespace lgv::control
