#include "planning/grid_search.h"

#include <gtest/gtest.h>

#include "perception/occupancy_grid.h"
#include "sim/world.h"

namespace lgv::planning {
namespace {

perception::Costmap2D costmap_from_world(const sim::World& w) {
  perception::Costmap2D cm(w.frame().origin, w.width_m(), w.height_m());
  cm.set_static_map(perception::OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.inflate();
  return cm;
}

TEST(GridSearch, StraightLineInOpenSpace) {
  sim::World w(5.0, 5.0);
  const perception::Costmap2D cm = costmap_from_world(w);
  const CellIndex start = cm.frame().world_to_cell({0.5, 0.5});
  const CellIndex goal = cm.frame().world_to_cell({4.5, 0.5});
  const SearchResult r = plan_on_costmap(cm, start, goal);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.cells.front(), start);
  EXPECT_EQ(r.cells.back(), goal);
  // Straight 80-cell corridor → path length exactly 81 cells.
  EXPECT_EQ(r.cells.size(), 81u);
}

TEST(GridSearch, RoutesAroundWall) {
  sim::World w(6.0, 6.0);
  w.add_box({3.0, 0.0}, {3.2, 5.0});  // wall with a gap at the top
  const perception::Costmap2D cm = costmap_from_world(w);
  const CellIndex start = cm.frame().world_to_cell({1.0, 1.0});
  const CellIndex goal = cm.frame().world_to_cell({5.0, 1.0});
  const SearchResult r = plan_on_costmap(cm, start, goal);
  ASSERT_TRUE(r.success);
  // The path must pass through the gap near y=5.2+.
  double max_y = 0.0;
  for (const CellIndex c : r.cells) {
    max_y = std::max(max_y, cm.frame().cell_to_world(c).y);
  }
  EXPECT_GT(max_y, 5.0);
}

TEST(GridSearch, FailsWhenFullyWalledOff) {
  sim::World w(6.0, 6.0);
  w.add_box({3.0, 0.0}, {3.2, 6.0});  // full wall
  const perception::Costmap2D cm = costmap_from_world(w);
  const SearchResult r = plan_on_costmap(cm, cm.frame().world_to_cell({1.0, 1.0}),
                                          cm.frame().world_to_cell({5.0, 1.0}));
  EXPECT_FALSE(r.success);
}

TEST(GridSearch, FailsFromLethalStart) {
  sim::World w(4.0, 4.0);
  w.add_box({1.0, 1.0}, {2.0, 2.0});
  const perception::Costmap2D cm = costmap_from_world(w);
  const SearchResult r = plan_on_costmap(cm, cm.frame().world_to_cell({1.5, 1.5}),
                                          cm.frame().world_to_cell({3.5, 3.5}));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.expansions, 0u);
}

TEST(GridSearch, AStarMatchesDijkstraCostWithFewerExpansions) {
  // Property: with an admissible heuristic, A* returns the same optimal cost
  // as Dijkstra while expanding no more nodes.
  sim::World w(8.0, 8.0);
  w.add_box({3.0, 1.0}, {3.3, 7.0});
  w.add_box({5.5, 0.0}, {5.8, 5.0});
  const perception::Costmap2D cm = costmap_from_world(w);
  const CellIndex start = cm.frame().world_to_cell({1.0, 4.0});
  const CellIndex goal = cm.frame().world_to_cell({7.0, 6.5});

  SearchConfig astar;
  astar.algorithm = SearchAlgorithm::kAStar;
  SearchConfig dijkstra;
  dijkstra.algorithm = SearchAlgorithm::kDijkstra;
  const SearchResult ra = plan_on_costmap(cm, start, goal, astar);
  const SearchResult rd = plan_on_costmap(cm, start, goal, dijkstra);
  ASSERT_TRUE(ra.success);
  ASSERT_TRUE(rd.success);
  EXPECT_NEAR(ra.cost, rd.cost, 1e-6);
  EXPECT_LE(ra.expansions, rd.expansions);
}

struct SearchCase {
  double sx, sy, gx, gy;
};

class AStarOptimality : public ::testing::TestWithParam<SearchCase> {};

TEST_P(AStarOptimality, CostEqualsDijkstra) {
  sim::World w(8.0, 8.0);
  w.add_disc({4.0, 4.0}, 0.8);
  w.add_box({1.5, 5.5}, {2.5, 6.0});
  const perception::Costmap2D cm = costmap_from_world(w);
  const SearchCase c = GetParam();
  const CellIndex start = cm.frame().world_to_cell({c.sx, c.sy});
  const CellIndex goal = cm.frame().world_to_cell({c.gx, c.gy});
  SearchConfig astar;
  astar.algorithm = SearchAlgorithm::kAStar;
  SearchConfig dij;
  dij.algorithm = SearchAlgorithm::kDijkstra;
  const SearchResult ra = plan_on_costmap(cm, start, goal, astar);
  const SearchResult rd = plan_on_costmap(cm, start, goal, dij);
  ASSERT_EQ(ra.success, rd.success);
  if (ra.success) EXPECT_NEAR(ra.cost, rd.cost, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, AStarOptimality,
    ::testing::Values(SearchCase{0.5, 0.5, 7.5, 7.5}, SearchCase{0.5, 7.5, 7.5, 0.5},
                      SearchCase{1.0, 4.0, 7.0, 4.0}, SearchCase{4.0, 0.5, 4.0, 7.5},
                      SearchCase{0.5, 0.5, 0.8, 0.8}, SearchCase{6.0, 6.0, 1.0, 6.5}));

TEST(GridSearch, PathAvoidsHighCostNearObstacles) {
  // Clearance property: with inflation, the planner prefers the middle of a
  // corridor over hugging the wall.
  sim::World w(6.0, 3.0);
  w.add_box({0.0, 0.0}, {6.0, 0.2});
  w.add_box({0.0, 2.8}, {6.0, 3.0});
  const perception::Costmap2D cm = costmap_from_world(w);
  const SearchResult r = plan_on_costmap(cm, cm.frame().world_to_cell({0.5, 1.5}),
                                          cm.frame().world_to_cell({5.5, 1.5}));
  ASSERT_TRUE(r.success);
  for (const CellIndex c : r.cells) {
    const double y = cm.frame().cell_to_world(c).y;
    EXPECT_GT(y, 0.55);
    EXPECT_LT(y, 2.45);
  }
}

TEST(GridSearch, PathIsEightConnected) {
  sim::World w(5.0, 5.0);
  w.add_disc({2.5, 2.5}, 0.5);
  const perception::Costmap2D cm = costmap_from_world(w);
  const SearchResult r = plan_on_costmap(cm, cm.frame().world_to_cell({0.5, 0.5}),
                                          cm.frame().world_to_cell({4.5, 4.5}));
  ASSERT_TRUE(r.success);
  for (size_t i = 1; i < r.cells.size(); ++i) {
    EXPECT_LE(std::abs(r.cells[i].x - r.cells[i - 1].x), 1);
    EXPECT_LE(std::abs(r.cells[i].y - r.cells[i - 1].y), 1);
  }
}

}  // namespace
}  // namespace lgv::planning
