#include "planning/frontier.h"

#include <gtest/gtest.h>

#include "perception/occupancy_grid.h"
#include "sim/lidar.h"
#include "sim/world.h"

namespace lgv::planning {
namespace {

msg::OccupancyGridMsg half_explored_map() {
  // 10×10 m map: left half known free, right half unknown, with a frontier
  // along the boundary.
  msg::OccupancyGridMsg m;
  m.frame.origin = {0, 0};
  m.frame.resolution = 0.1;
  m.width = 100;
  m.height = 100;
  m.data.assign(100 * 100, msg::kUnknownCell);
  for (int y = 0; y < 100; ++y) {
    for (int x = 0; x < 50; ++x) {
      m.data[static_cast<size_t>(y) * 100 + x] = 0;  // free
    }
  }
  return m;
}

TEST(Frontier, FindsBoundaryBetweenFreeAndUnknown) {
  const msg::OccupancyGridMsg m = half_explored_map();
  FrontierExplorer fx;
  platform::ExecutionContext ctx;
  const FrontierResult r = fx.detect(m, {2.0, 5.0, 0.0}, ctx);
  ASSERT_FALSE(r.frontiers.empty());
  ASSERT_TRUE(r.next_goal.has_value());
  // The frontier centroid sits near x = 4.9 (the last free column).
  EXPECT_NEAR(r.next_goal->x, 4.95, 0.3);
  EXPECT_GT(ctx.profile().total_cycles(), 1e4);
}

TEST(Frontier, NoFrontierInFullyKnownMap) {
  msg::OccupancyGridMsg m = half_explored_map();
  for (auto& v : m.data) {
    if (v < 0) v = 0;  // everything known free
  }
  FrontierExplorer fx;
  platform::ExecutionContext ctx;
  const FrontierResult r = fx.detect(m, {2.0, 5.0, 0.0}, ctx);
  EXPECT_TRUE(r.frontiers.empty());
  EXPECT_FALSE(r.next_goal.has_value());
}

TEST(Frontier, OccupiedBoundaryIsNotAFrontier) {
  msg::OccupancyGridMsg m = half_explored_map();
  // Wall off the boundary column: occupied cells are not frontier cells.
  for (int y = 0; y < 100; ++y) m.data[static_cast<size_t>(y) * 100 + 49] = 100;
  FrontierExplorer fx;
  platform::ExecutionContext ctx;
  const FrontierResult r = fx.detect(m, {2.0, 5.0, 0.0}, ctx);
  EXPECT_TRUE(r.frontiers.empty());
}

TEST(Frontier, SmallSpecksFiltered) {
  msg::OccupancyGridMsg m;
  m.frame.origin = {0, 0};
  m.frame.resolution = 0.1;
  m.width = 40;
  m.height = 40;
  m.data.assign(40 * 40, 0);  // all free
  // A single unknown cell in the middle creates a tiny 4-cell frontier ring.
  m.data[20 * 40 + 20] = msg::kUnknownCell;
  FrontierConfig cfg;
  cfg.min_cluster_cells = 6;
  FrontierExplorer fx(cfg);
  platform::ExecutionContext ctx;
  const FrontierResult r = fx.detect(m, {1.0, 1.0, 0.0}, ctx);
  EXPECT_TRUE(r.frontiers.empty());
}

TEST(Frontier, PrefersNearerFrontierOfEqualSize) {
  // Two disconnected free pockets of equal size; their frontier rings are
  // separate clusters. The robot sits nearer the left one — with equal sizes
  // the distance term decides.
  msg::OccupancyGridMsg m;
  m.frame.origin = {0, 0};
  m.frame.resolution = 0.1;
  m.width = 120;
  m.height = 40;
  m.data.assign(120 * 40, msg::kUnknownCell);
  auto fill_pocket = [&](int x0) {
    for (int y = 15; y < 25; ++y) {
      for (int x = x0; x < x0 + 10; ++x) m.data[static_cast<size_t>(y) * 120 + x] = 0;
    }
  };
  fill_pocket(10);
  fill_pocket(100);
  FrontierExplorer fx;
  platform::ExecutionContext ctx;
  // Robot below the left pocket (outside min_distance of its ring centroid).
  const FrontierResult r = fx.detect(m, {1.0, 0.6, 0.0}, ctx);
  ASSERT_EQ(r.frontiers.size(), 2u);
  ASSERT_TRUE(r.next_goal.has_value());
  EXPECT_LT(r.next_goal->x, 4.0);  // the left pocket's ring
}

TEST(Frontier, PrefersBiggerFrontierAtEqualDistance) {
  msg::OccupancyGridMsg m;
  m.frame.origin = {0, 0};
  m.frame.resolution = 0.1;
  m.width = 120;
  m.height = 80;
  m.data.assign(120 * 80, msg::kUnknownCell);
  // Small pocket above the robot, big pocket below, both centered ~3 m away.
  for (int y = 56; y < 60; ++y) {
    for (int x = 56; x < 64; ++x) m.data[static_cast<size_t>(y) * 120 + x] = 0;
  }
  for (int y = 10; y < 26; ++y) {
    for (int x = 44; x < 76; ++x) m.data[static_cast<size_t>(y) * 120 + x] = 0;
  }
  FrontierConfig cfg;
  cfg.size_weight = 0.4;
  cfg.distance_weight = 1.0;
  FrontierExplorer fx(cfg);
  platform::ExecutionContext ctx;
  const FrontierResult r = fx.detect(m, {6.0, 4.0, 0.0}, ctx);
  ASSERT_EQ(r.frontiers.size(), 2u);
  ASSERT_TRUE(r.next_goal.has_value());
  EXPECT_LT(r.next_goal->y, 4.0);  // the big lower pocket wins
  EXPECT_GT(r.frontiers[0].cells, r.frontiers[1].cells);
}

TEST(Frontier, RealExplorationMapProducesReachableGoal) {
  sim::World w(8.0, 8.0);
  w.add_outer_walls(0.2);
  sim::LidarConfig lc;
  lc.range_noise_sigma = 0.0;
  sim::Lidar lidar(lc);
  perception::OccupancyGridConfig cfg;
  cfg.resolution = 0.1;
  perception::OccupancyGrid g({0, 0}, 8.0, 8.0, cfg);
  const Pose2D pose{2.0, 2.0, 0.0};
  g.integrate_scan(pose, lidar.scan(w, pose, 0.0));
  FrontierExplorer fx;
  platform::ExecutionContext ctx;
  const FrontierResult r = fx.detect(g.to_msg(0.0), pose, ctx);
  // With a 3.5 m lidar in an 8 m room there must be unexplored frontier.
  ASSERT_TRUE(r.next_goal.has_value());
  EXPECT_GT(distance(*r.next_goal, pose.position()), 0.4);
}

}  // namespace
}  // namespace lgv::planning
