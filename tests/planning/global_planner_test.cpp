#include "planning/global_planner.h"

#include <gtest/gtest.h>

#include "perception/occupancy_grid.h"
#include "sim/scenario.h"

namespace lgv::planning {
namespace {

perception::Costmap2D costmap_from_world(const sim::World& w) {
  perception::Costmap2D cm(w.frame().origin, w.width_m(), w.height_m());
  cm.set_static_map(perception::OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.inflate();
  return cm;
}

TEST(GlobalPlanner, PlansAcrossTheLab) {
  const sim::Scenario s = sim::make_lab_scenario();
  const perception::Costmap2D cm = costmap_from_world(s.world);
  GlobalPlanner planner;
  platform::ExecutionContext ctx;
  const PlanResult r = planner.plan(cm, {s.start, s.goal}, ctx);
  ASSERT_TRUE(r.success);
  ASSERT_GE(r.path.poses.size(), 3u);
  EXPECT_LT(distance(r.path.poses.front().position(), s.start.position()), 0.3);
  EXPECT_LT(distance(r.path.poses.back().position(), s.goal.position()), 0.6);
  EXPECT_GT(ctx.profile().total_cycles(), 1e5);  // search work charged
}

TEST(GlobalPlanner, WaypointsAreCollisionFree) {
  const sim::Scenario s = sim::make_lab_scenario();
  const perception::Costmap2D cm = costmap_from_world(s.world);
  GlobalPlanner planner;
  platform::ExecutionContext ctx;
  const PlanResult r = planner.plan(cm, {s.start, s.goal}, ctx);
  ASSERT_TRUE(r.success);
  for (const Pose2D& p : r.path.poses) {
    EXPECT_LT(cm.cost_at_world(p.position()), perception::kCostInscribed)
        << p.x << "," << p.y;
  }
}

TEST(GlobalPlanner, HeadingsFollowPathDirection) {
  sim::World w(6.0, 6.0);
  const perception::Costmap2D cm = costmap_from_world(w);
  GlobalPlanner planner;
  platform::ExecutionContext ctx;
  const PlanResult r =
      planner.plan(cm, {{0.5, 0.5, 0.0}, {5.5, 0.5, 0.0}}, ctx);
  ASSERT_TRUE(r.success);
  for (size_t i = 0; i + 1 < r.path.poses.size(); ++i) {
    EXPECT_NEAR(r.path.poses[i].theta, 0.0, 0.3);
  }
}

TEST(GlobalPlanner, GoalInsideInflationIsNudgedOut) {
  sim::World w(6.0, 6.0);
  w.add_disc({3.0, 3.0}, 0.3);
  const perception::Costmap2D cm = costmap_from_world(w);
  GlobalPlanner planner;
  platform::ExecutionContext ctx;
  // Goal right at the disc edge (inside inflation).
  const PlanResult r = planner.plan(cm, {{0.5, 0.5, 0.0}, {3.0, 3.35, 0.0}}, ctx);
  ASSERT_TRUE(r.success);
  EXPECT_LT(cm.cost_at_world(r.path.poses.back().position()),
            perception::kCostInscribed);
}

TEST(GlobalPlanner, UnreachableGoalFails) {
  sim::World w(6.0, 6.0);
  w.add_box({2.0, 0.0}, {2.3, 6.0});
  const perception::Costmap2D cm = costmap_from_world(w);
  GlobalPlanner planner;
  platform::ExecutionContext ctx;
  const PlanResult r = planner.plan(cm, {{1.0, 3.0, 0.0}, {5.0, 3.0, 0.0}}, ctx);
  EXPECT_FALSE(r.success);
}

TEST(GlobalPlanner, DijkstraVariantAlsoPlans) {
  const sim::Scenario s = sim::make_open_scenario();
  const perception::Costmap2D cm = costmap_from_world(s.world);
  GlobalPlanner planner;
  planner.set_algorithm(SearchAlgorithm::kDijkstra);
  platform::ExecutionContext ctx;
  const PlanResult r = planner.plan(cm, {s.start, s.goal}, ctx);
  EXPECT_TRUE(r.success);
}

TEST(GlobalPlanner, StrideControlsWaypointDensity) {
  sim::World w(8.0, 8.0);
  const perception::Costmap2D cm = costmap_from_world(w);
  GlobalPlannerConfig dense_cfg;
  dense_cfg.waypoint_stride = 1;
  GlobalPlannerConfig sparse_cfg;
  sparse_cfg.waypoint_stride = 10;
  platform::ExecutionContext ctx;
  const PlanResult dense =
      GlobalPlanner(dense_cfg).plan(cm, {{0.5, 0.5, 0}, {7.5, 7.5, 0}}, ctx);
  const PlanResult sparse =
      GlobalPlanner(sparse_cfg).plan(cm, {{0.5, 0.5, 0}, {7.5, 7.5, 0}}, ctx);
  ASSERT_TRUE(dense.success);
  ASSERT_TRUE(sparse.success);
  EXPECT_GT(dense.path.poses.size(), 3u * sparse.path.poses.size());
}

}  // namespace
}  // namespace lgv::planning
