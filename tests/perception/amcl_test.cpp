#include "perception/amcl.h"

#include <gtest/gtest.h>

#include "sim/lidar.h"
#include "sim/world.h"

namespace lgv::perception {
namespace {

class AmclTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world = std::make_unique<sim::World>(8.0, 8.0);
    world->add_outer_walls(0.2);
    world->add_box({3.5, 3.5}, {4.5, 4.5});
    world->add_disc({6.0, 2.0}, 0.4);
    OccupancyGridConfig cfg;
    cfg.resolution = 0.05;
    map = std::make_unique<OccupancyGrid>(
        OccupancyGrid::from_binary(world->frame(), world->grid(), cfg));
    sim::LidarConfig lc;
    lc.range_noise_sigma = 0.005;
    lidar = std::make_unique<sim::Lidar>(lc, 5);
  }

  msg::Odometry odom_at(const Pose2D& p, double stamp) {
    msg::Odometry o;
    o.pose = p;
    o.header.stamp = stamp;
    return o;
  }

  std::unique_ptr<sim::World> world;
  std::unique_ptr<OccupancyGrid> map;
  std::unique_ptr<sim::Lidar> lidar;
};

TEST_F(AmclTest, InitializeConcentratesParticles) {
  Amcl amcl({}, map.get());
  amcl.initialize({2.0, 2.0, 0.0});
  const Pose2D est = amcl.estimate();
  EXPECT_NEAR(est.x, 2.0, 0.2);
  EXPECT_NEAR(est.y, 2.0, 0.2);
}

TEST_F(AmclTest, TracksAMovingRobot) {
  Amcl amcl({}, map.get(), 17);
  Pose2D truth{1.5, 1.5, 0.0};
  Pose2D odom = truth;
  amcl.initialize(truth);
  platform::ExecutionContext ctx;
  Rng rng(23);
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    // Move east 5 cm per step with odometry noise.
    truth = Pose2D(truth.x + 0.05, truth.y, 0.0);
    odom = Pose2D(odom.x + 0.05 + rng.gaussian(0.0, 0.002),
                  odom.y + rng.gaussian(0.0, 0.002), rng.gaussian(0.0, 0.002));
    t += 0.2;
    amcl.update(odom_at(odom, t), lidar->scan(*world, truth, t), ctx);
  }
  const Pose2D est = amcl.estimate();
  EXPECT_LT(distance(est.position(), truth.position()), 0.3);
}

TEST_F(AmclTest, AdaptiveParticleCountShrinksWhenConverged) {
  AmclConfig cfg;
  cfg.min_particles = 50;
  cfg.max_particles = 500;
  Amcl amcl(cfg, map.get(), 9);
  amcl.initialize({2.0, 2.0, 0.0}, 0.4, 0.4);  // wide spread
  const int initial = amcl.particle_count();
  platform::ExecutionContext ctx;
  Pose2D truth{2.0, 2.0, 0.0};
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    t += 0.2;
    amcl.update(odom_at(truth, t), lidar->scan(*world, truth, t), ctx);
  }
  // KLD adaptation: converged estimate needs fewer particles.
  EXPECT_LE(amcl.particle_count(), initial);
  EXPECT_GE(amcl.particle_count(), cfg.min_particles);
}

TEST_F(AmclTest, GlobalInitializationPlacesParticlesInFreeSpace) {
  Amcl amcl({}, map.get(), 31);
  amcl.initialize_global(200);
  EXPECT_EQ(amcl.particle_count(), 200);
}

TEST_F(AmclTest, WorkChargedToContext) {
  Amcl amcl({}, map.get());
  amcl.initialize({2.0, 2.0, 0.0});
  platform::ExecutionContext ctx;
  amcl.update(odom_at({2.0, 2.0, 0.0}, 0.2), lidar->scan(*world, {2.0, 2.0, 0.0}, 0.2),
              ctx);
  EXPECT_GT(ctx.profile().total_cycles(), 1e5);
}

TEST_F(AmclTest, StatsParticleCountMatches) {
  Amcl amcl({}, map.get());
  amcl.initialize({2.0, 2.0, 0.0});
  platform::ExecutionContext ctx;
  // First update establishes the odometry reference; the second weighs beams.
  amcl.update(odom_at({2.0, 2.0, 0.0}, 0.2), lidar->scan(*world, {2.0, 2.0, 0.0}, 0.2),
              ctx);
  const AmclUpdateStats stats = amcl.update(
      odom_at({2.0, 2.0, 0.0}, 0.4), lidar->scan(*world, {2.0, 2.0, 0.0}, 0.4), ctx);
  EXPECT_EQ(stats.particle_count, amcl.particle_count());
  EXPECT_GT(stats.beam_evaluations, 0u);
}

}  // namespace
}  // namespace lgv::perception
