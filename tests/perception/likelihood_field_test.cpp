// Tests for the likelihood-field scan-match cache: score equivalence against
// the brute-force reference scorer on randomized maps and poses, incremental
// sync against full rebuild, and the derived-state lifecycle across particle
// copies and map migration.
#include "perception/likelihood_field.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/serialization.h"
#include "perception/amcl.h"
#include "perception/scan_matcher.h"
#include "sim/lidar.h"
#include "sim/world.h"

namespace lgv::perception {
namespace {

/// A world with a few deterministic-random boxes, mapped by lidar scans from
/// random free poses — produces occupied, free, and unknown regions.
struct RandomMapFixture {
  explicit RandomMapFixture(uint64_t seed) : rng(seed) {
    world = std::make_unique<sim::World>(10.0, 10.0);
    world->add_outer_walls(0.2);
    for (int i = 0; i < 4; ++i) {
      const double x = rng.uniform(1.5, 7.5);
      const double y = rng.uniform(1.5, 7.5);
      world->add_box({x, y}, {x + rng.uniform(0.4, 1.2), y + rng.uniform(0.4, 1.2)});
    }
    sim::LidarConfig lc;
    lc.range_noise_sigma = 0.0;
    lidar = std::make_unique<sim::Lidar>(lc, seed ^ 0x11d);

    OccupancyGridConfig cfg;
    cfg.resolution = 0.1;
    map = std::make_unique<OccupancyGrid>(Point2D{0, 0}, 10.0, 10.0, cfg);
    for (int i = 0; i < 6; ++i) {
      const Pose2D p = random_free_pose();
      map->integrate_scan(p, lidar->scan(*world, p, 0.0));
    }
  }

  Pose2D random_free_pose() {
    while (true) {
      const Pose2D p{rng.uniform(0.6, 9.4), rng.uniform(0.6, 9.4),
                     rng.uniform(-3.1, 3.1)};
      if (!world->grid().at(world->frame().world_to_cell(p.position()))) return p;
    }
  }

  Rng rng;
  std::unique_ptr<sim::World> world;
  std::unique_ptr<sim::Lidar> lidar;
  std::unique_ptr<OccupancyGrid> map;
};

TEST(LikelihoodField, EntriesMirrorMapClassification) {
  RandomMapFixture fx(7);
  LikelihoodField field;
  field.sync(*fx.map);
  ASSERT_TRUE(field.in_sync_with(*fx.map));
  // Every cell (pad ring included) must agree with the map's own predicates.
  for (int y = -1; y <= fx.map->height(); ++y) {
    for (int x = -1; x <= fx.map->width(); ++x) {
      const CellIndex c{x, y};
      ASSERT_EQ(field.occupied(c), fx.map->is_occupied(c)) << x << "," << y;
      ASSERT_EQ(field.unknown(c), fx.map->is_unknown(c)) << x << "," << y;
      bool any = false;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          any = any || fx.map->is_occupied({x + dx, y + dy});
        }
      }
      ASSERT_EQ(field.has_obstacle_near(c), any) << x << "," << y;
    }
  }
  // Far outside the pad ring: unknown, no obstacles.
  EXPECT_TRUE(field.unknown({-5, -5}));
  EXPECT_FALSE(field.has_obstacle_near({-5, 1000}));
}

TEST(LikelihoodField, MinObstacleD2MatchesBruteForce) {
  RandomMapFixture fx(11);
  LikelihoodField field;
  field.sync(*fx.map);
  for (int trial = 0; trial < 200; ++trial) {
    const Point2D p{fx.rng.uniform(-0.5, 10.5), fx.rng.uniform(-0.5, 10.5)};
    const CellIndex c = fx.map->frame().world_to_cell(p);
    double expected = std::numeric_limits<double>::infinity();
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const CellIndex n{c.x + dx, c.y + dy};
        if (!fx.map->is_occupied(n)) continue;
        const Point2D cw = fx.map->frame().cell_to_world(n);
        expected = std::min(expected,
                            (cw.x - p.x) * (cw.x - p.x) + (cw.y - p.y) * (cw.y - p.y));
      }
    }
    EXPECT_EQ(field.min_obstacle_d2(c, p), expected) << trial;
  }
}

TEST(LikelihoodField, ScoreMatchesBruteForceOnRandomizedMapsAndPoses) {
  for (uint64_t seed : {3u, 19u, 42u}) {
    RandomMapFixture fx(seed);
    LikelihoodField field;
    field.sync(*fx.map);
    ScanMatcher matcher;
    for (int trial = 0; trial < 30; ++trial) {
      const Pose2D scan_pose = fx.random_free_pose();
      const msg::LaserScan scan = fx.lidar->scan(*fx.world, scan_pose, 0.0);
      const PrecomputedScan scan_pre = precompute_scan(
          scan, matcher.config().beam_stride, fx.map->frame().resolution);
      // Score both at the scan pose and at random perturbations of it.
      for (int k = 0; k < 4; ++k) {
        const Pose2D pose{scan_pose.x + fx.rng.gaussian(0.0, 0.1),
                          scan_pose.y + fx.rng.gaussian(0.0, 0.1),
                          scan_pose.theta + fx.rng.gaussian(0.0, 0.05)};
        size_t brute_evals = 0, cached_evals = 0;
        const double brute = matcher.score(*fx.map, pose, scan, &brute_evals);
        const double cached = matcher.score(field, pose, scan_pre, &cached_evals);
        EXPECT_EQ(brute_evals, cached_evals);
        EXPECT_NEAR(brute, cached, 1e-9 * std::max(1.0, std::abs(brute)))
            << "seed " << seed << " trial " << trial << " k " << k;
      }
    }
  }
}

TEST(LikelihoodField, MatchSelectsSamePoseAsBruteForce) {
  for (uint64_t seed : {5u, 23u}) {
    RandomMapFixture fx(seed);
    LikelihoodField field;
    field.sync(*fx.map);
    ScanMatcher matcher;
    for (int trial = 0; trial < 10; ++trial) {
      const Pose2D truth = fx.random_free_pose();
      const msg::LaserScan scan = fx.lidar->scan(*fx.world, truth, 0.0);
      const Pose2D perturbed{truth.x + fx.rng.gaussian(0.0, 0.06),
                             truth.y + fx.rng.gaussian(0.0, 0.06),
                             truth.theta + fx.rng.gaussian(0.0, 0.03)};
      const MatchResult brute = matcher.match(*fx.map, perturbed, scan);
      const MatchResult cached = matcher.match(field, perturbed, scan);
      // Candidate poses are generated identically on both paths, so equal
      // selection means bit-equal poses.
      EXPECT_EQ(brute.pose, cached.pose) << "seed " << seed << " trial " << trial;
      EXPECT_EQ(brute.beam_evaluations, cached.beam_evaluations);
      EXPECT_FALSE(brute.used_likelihood_field);
      EXPECT_TRUE(cached.used_likelihood_field);
      EXPECT_NEAR(brute.score, cached.score,
                  1e-9 * std::max(1.0, std::abs(brute.score)));
    }
  }
}

TEST(LikelihoodField, IncrementalSyncEqualsFullRebuild) {
  RandomMapFixture fx(29);
  LikelihoodField incremental;
  incremental.sync(*fx.map);
  const size_t full_cells = static_cast<size_t>(fx.map->width() + 2) *
                            static_cast<size_t>(fx.map->height() + 2);
  for (int step = 0; step < 5; ++step) {
    const Pose2D p = fx.random_free_pose();
    const msg::LaserScan scan = fx.lidar->scan(*fx.world, p, 0.0);
    // A scan over fresh territory may flip more cells than the changelog
    // holds — that legitimately falls back to a full rebuild. Integrating the
    // same scan twice makes the second pass flip almost nothing, which must
    // take the incremental path.
    fx.map->integrate_scan(p, scan);
    incremental.sync(*fx.map);
    fx.map->integrate_scan(p, scan);
    const size_t rebuilt = incremental.sync(*fx.map);
    EXPECT_LT(rebuilt, full_cells) << "step " << step;
    LikelihoodField fresh;
    fresh.sync(*fx.map);
    for (int y = -1; y <= fx.map->height(); ++y) {
      for (int x = -1; x <= fx.map->width(); ++x) {
        ASSERT_EQ(incremental.entry({x, y}), fresh.entry({x, y}))
            << "step " << step << " cell " << x << "," << y;
      }
    }
  }
  // In-sync field syncs for free.
  EXPECT_EQ(incremental.sync(*fx.map), 0u);
}

TEST(LikelihoodField, ChangelogOverflowFallsBackToFullRebuild) {
  RandomMapFixture fx(31);
  LikelihoodField field;
  field.sync(*fx.map);
  // Integrate many scans without syncing so the bounded changelog overflows.
  for (int i = 0; i < 200; ++i) {
    const Pose2D p = fx.random_free_pose();
    fx.map->integrate_scan(p, fx.lidar->scan(*fx.world, p, 0.0));
  }
  field.sync(*fx.map);
  LikelihoodField fresh;
  fresh.sync(*fx.map);
  for (int y = -1; y <= fx.map->height(); ++y) {
    for (int x = -1; x <= fx.map->width(); ++x) {
      ASSERT_EQ(field.entry({x, y}), fresh.entry({x, y})) << x << "," << y;
    }
  }
}

TEST(LikelihoodField, CopiedMapAndFieldStayConsistent) {
  // Particle resampling copies (map, field) pairs; diverging the copies must
  // keep each field consistent with its own map.
  RandomMapFixture fx(37);
  LikelihoodField field;
  field.sync(*fx.map);

  OccupancyGrid map_b = *fx.map;   // resampled particle's deep copy
  LikelihoodField field_b = field;
  EXPECT_TRUE(field_b.in_sync_with(map_b));

  const Pose2D pa = fx.random_free_pose();
  const Pose2D pb = fx.random_free_pose();
  fx.map->integrate_scan(pa, fx.lidar->scan(*fx.world, pa, 0.0));
  map_b.integrate_scan(pb, fx.lidar->scan(*fx.world, pb, 0.0));
  field.sync(*fx.map);
  field_b.sync(map_b);

  LikelihoodField fresh_a, fresh_b;
  fresh_a.sync(*fx.map);
  fresh_b.sync(map_b);
  for (int y = -1; y <= fx.map->height(); ++y) {
    for (int x = -1; x <= fx.map->width(); ++x) {
      ASSERT_EQ(field.entry({x, y}), fresh_a.entry({x, y})) << x << "," << y;
      ASSERT_EQ(field_b.entry({x, y}), fresh_b.entry({x, y})) << x << "," << y;
    }
  }
}

TEST(LikelihoodField, MigratedMapForcesRebuild) {
  // Algorithm 2 ships the map, never the field: a field synced against the
  // source map must not believe it is current for the deserialized copy.
  RandomMapFixture fx(41);
  LikelihoodField field;
  field.sync(*fx.map);

  WireWriter w;
  fx.map->serialize(w);
  WireReader r(w.buffer());
  const OccupancyGrid restored = OccupancyGrid::deserialize(r);
  EXPECT_FALSE(field.in_sync_with(restored));

  LikelihoodField rebuilt;
  EXPECT_GT(rebuilt.sync(restored), 0u);
  for (int y = -1; y <= restored.height(); ++y) {
    for (int x = -1; x <= restored.width(); ++x) {
      ASSERT_EQ(rebuilt.entry({x, y}), field.entry({x, y})) << x << "," << y;
    }
  }
}

TEST(LikelihoodField, AmclAgreesAcrossMeasurementModels) {
  // Two identically-seeded filters, one per measurement model, tracking the
  // same scans: the RNG streams are identical, so estimates differ only by
  // the floating-point rounding of the likelihood values.
  RandomMapFixture fx(47);
  AmclConfig brute_cfg;
  brute_cfg.use_likelihood_field = false;
  AmclConfig cached_cfg;
  cached_cfg.use_likelihood_field = true;
  Amcl brute(brute_cfg, fx.map.get(), 99);
  Amcl cached(cached_cfg, fx.map.get(), 99);
  const Pose2D start = fx.random_free_pose();
  brute.initialize(start);
  cached.initialize(start);

  platform::ExecutionContext bctx, cctx;
  double t = 0.0;
  for (int i = 0; i < 8; ++i) {
    t += 0.2;
    msg::Odometry odom;
    odom.pose = start;
    odom.header.stamp = t;
    const msg::LaserScan scan = fx.lidar->scan(*fx.world, start, t);
    const AmclUpdateStats bs = brute.update(odom, scan, bctx);
    const AmclUpdateStats cs = cached.update(odom, scan, cctx);
    EXPECT_EQ(bs.beam_evaluations, cs.beam_evaluations);
  }
  const Pose2D be = brute.estimate();
  const Pose2D ce = cached.estimate();
  EXPECT_NEAR(be.x, ce.x, 1e-6);
  EXPECT_NEAR(be.y, ce.y, 1e-6);
  EXPECT_NEAR(be.theta, ce.theta, 1e-6);
  // The cached model must be charged strictly fewer modeled cycles per beam.
  EXPECT_LT(cctx.profile().total_cycles(), bctx.profile().total_cycles());
}

}  // namespace
}  // namespace lgv::perception
