#include "perception/visual_odometry.h"

#include <gtest/gtest.h>

#include <numbers>

namespace lgv::perception {
namespace {

sim::World corner_world() {
  sim::World w(10.0, 10.0);
  w.add_outer_walls(0.2);
  w.add_box({3.0, 3.0}, {4.0, 4.0});
  w.add_box({6.5, 6.0}, {7.5, 7.2});
  w.add_box({2.0, 7.0}, {2.8, 7.6});
  return w;
}

TEST(Landmarks, ExtractedAtCorners) {
  const sim::World w = corner_world();
  const auto landmarks = extract_landmarks(w);
  EXPECT_GT(landmarks.size(), 8u);  // boxes + wall corners
  // Ids are unique.
  std::set<uint32_t> ids;
  for (const auto& lm : landmarks) ids.insert(lm.id);
  EXPECT_EQ(ids.size(), landmarks.size());
  // All landmarks sit on occupied cells.
  for (const auto& lm : landmarks) {
    EXPECT_TRUE(w.occupied(lm.position));
  }
}

TEST(Align, RecoversKnownTransform) {
  const Pose2D truth{1.5, -0.5, 0.7};
  std::vector<Point2D> body = {{1, 0}, {0, 1}, {-1, 0}, {2, 2}};
  std::vector<Point2D> world;
  for (const Point2D& b : body) world.push_back(truth.transform(b));
  const auto est = VisualOdometry::align(body, world);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->x, truth.x, 1e-9);
  EXPECT_NEAR(est->y, truth.y, 1e-9);
  EXPECT_NEAR(angle_diff(est->theta, truth.theta), 0.0, 1e-9);
}

TEST(Align, DegenerateInputsRejected) {
  EXPECT_FALSE(VisualOdometry::align({}, {}).has_value());
  EXPECT_FALSE(VisualOdometry::align({{1, 1}}, {{2, 2}}).has_value());
  EXPECT_FALSE(VisualOdometry::align({{1, 1}, {2, 2}}, {{1, 1}}).has_value());
  // All points identical: rotation unobservable.
  EXPECT_FALSE(
      VisualOdometry::align({{1, 1}, {1, 1}}, {{2, 2}, {2, 2}}).has_value());
}

TEST(Camera, SeesOnlyInsideFovAndRange) {
  const sim::World w = corner_world();
  const auto landmarks = extract_landmarks(w);
  CameraConfig cfg;
  cfg.detection_probability = 1.0;
  cfg.pixel_noise = 0.0;
  Camera cam(cfg, landmarks);
  // Facing east from the middle-left: the box at (3-4, 3-4) is visible.
  const Pose2D pose{1.0, 3.5, 0.0};
  const VisualFrame frame = cam.capture(w, pose, 0.0);
  EXPECT_GE(frame.ids.size(), 2u);
  for (const Point2D& obs : frame.observations) {
    EXPECT_LE(obs.norm(), cfg.max_range + 0.2);
    EXPECT_LE(std::abs(std::atan2(obs.y, obs.x)), cfg.fov_rad / 2 + 1e-6);
  }
  // Facing west: those corners leave the FOV.
  const VisualFrame back = cam.capture(w, {1.0, 3.5, std::numbers::pi}, 0.0);
  for (size_t i = 0; i < back.ids.size(); ++i) {
    const Point2D world_pos =
        Pose2D(1.0, 3.5, std::numbers::pi).transform(back.observations[i]);
    EXPECT_LT(world_pos.x, 1.5) << "saw a landmark behind the camera";
  }
}

TEST(Camera, OcclusionHidesLandmarks) {
  sim::World w(10.0, 10.0);
  w.add_outer_walls(0.2);
  w.add_box({4.0, 2.0}, {4.4, 8.0});  // big wall
  w.add_box({6.0, 4.5}, {6.6, 5.1});  // box hidden behind it
  const auto landmarks = extract_landmarks(w);
  CameraConfig cfg;
  cfg.detection_probability = 1.0;
  Camera cam(cfg, landmarks);
  const VisualFrame frame = cam.capture(w, {2.0, 5.0, 0.0}, 0.0);
  for (size_t i = 0; i < frame.ids.size(); ++i) {
    const Point2D world_pos = Pose2D(2.0, 5.0, 0.0).transform(frame.observations[i]);
    EXPECT_LT(world_pos.x, 4.5) << "saw through the wall at " << world_pos.x;
  }
}

class VoTrackingTest : public ::testing::Test {
 protected:
  VoTrackingTest()
      : world(corner_world()),
        landmarks(extract_landmarks(world)),
        camera(make_camera(landmarks)),
        vo({}, landmarks) {}

  static Camera make_camera(const std::vector<Landmark>& lms) {
    CameraConfig cfg;
    cfg.detection_probability = 1.0;
    cfg.pixel_noise = 0.003;
    return Camera(cfg, lms, 7);
  }

  sim::World world;
  std::vector<Landmark> landmarks;
  Camera camera;
  VisualOdometry vo;
  platform::ExecutionContext ctx;
};

TEST_F(VoTrackingTest, TracksSlowMotionAccurately) {
  Pose2D truth{1.5, 1.5, 0.5};
  vo.initialize(truth);
  Rng rng(3);
  int tracked = 0;
  const int frames = 60;
  for (int i = 0; i < frames; ++i) {
    const Pose2D delta{0.04, 0.0, 0.01};  // gentle arc
    truth = truth.compose(delta);
    Pose2D noisy = delta;
    noisy.x += rng.gaussian(0.0, 0.002);
    noisy.theta = normalize_angle(noisy.theta + rng.gaussian(0.0, 0.002));
    const VoUpdateStats stats =
        vo.update(noisy, camera.capture(world, truth, 0.1 * i), ctx);
    tracked += stats.tracked;
  }
  // Feature-sparse headings can momentarily starve the tracker; most frames
  // must lock and the estimate must stay tight.
  EXPECT_GT(tracked, frames * 7 / 10);
  EXPECT_LT(distance(vo.pose().position(), truth.position()), 0.2);
}

TEST_F(VoTrackingTest, FastRotationLosesTracking) {
  // §IX: the scene changes faster than features can be tracked.
  Pose2D truth{5.0, 1.5, 0.0};
  vo.initialize(truth);
  bool lost = false;
  for (int i = 0; i < 12; ++i) {
    const Pose2D delta{0.0, 0.0, 1.4};  // ~80°/frame — frames barely overlap
    truth = truth.compose(delta);
    vo.update(delta, camera.capture(world, truth, 0.1 * i), ctx);
    lost |= vo.lost();
  }
  EXPECT_TRUE(lost);
}

TEST_F(VoTrackingTest, RelocalizesAfterLoss) {
  Pose2D truth{1.5, 1.5, 0.5};
  vo.initialize(truth);
  // Lose tracking with fast spins.
  for (int i = 0; i < 6; ++i) {
    const Pose2D delta{0.0, 0.0, 1.4};
    truth = truth.compose(delta);
    vo.update(delta, camera.capture(world, truth, 0.1 * i), ctx);
  }
  // Swing back to the landmark-rich heading and hold still: the map-based
  // association relocks (odometry kept the estimate within the match gate).
  const Pose2D back{0.0, 0.0, angle_diff(0.5, truth.theta)};
  truth = truth.compose(back);
  vo.update(back, camera.capture(world, truth, 0.9), ctx);
  VoUpdateStats stats;
  for (int i = 0; i < 5; ++i) {
    stats = vo.update({}, camera.capture(world, truth, 1.0 + 0.1 * i), ctx);
  }
  EXPECT_TRUE(stats.tracked);
  EXPECT_LT(distance(vo.pose().position(), truth.position()), 0.2);
}

TEST(TrackableRate, ScalesWithFovAndFrameRate) {
  // 90° FOV at 10 Hz with 50% margin → ~7.8 rad/s; at 2 Hz → 1.57 rad/s.
  EXPECT_NEAR(max_trackable_angular_rate(1.57, 0.1), 7.85, 0.01);
  EXPECT_NEAR(max_trackable_angular_rate(1.57, 0.5), 1.57, 0.01);
  EXPECT_GT(max_trackable_angular_rate(2.0, 0.1), max_trackable_angular_rate(1.0, 0.1));
}

TEST(VoWork, ChargedToContext) {
  const sim::World w = corner_world();
  const auto lms = extract_landmarks(w);
  CameraConfig cfg;
  cfg.detection_probability = 1.0;
  Camera cam(cfg, lms);
  VisualOdometry vo({}, lms);
  vo.initialize({1.5, 1.5, 0.5});
  platform::ExecutionContext ctx;
  vo.update({0.02, 0, 0}, cam.capture(w, {1.52, 1.5, 0.5}, 0.0), ctx);
  EXPECT_GT(ctx.profile().total_cycles(), 0.0);
}

}  // namespace
}  // namespace lgv::perception
