#include "perception/costmap2d.h"

#include <gtest/gtest.h>

#include "sim/lidar.h"
#include "sim/world.h"

namespace lgv::perception {
namespace {

msg::LaserScan beam_at(double range, double angle) {
  msg::LaserScan s;
  s.angle_min = angle;
  s.angle_max = angle;
  s.angle_increment = 0.0;
  s.range_min = 0.1;
  s.range_max = 3.5;
  s.ranges = {static_cast<float>(range)};
  return s;
}

TEST(Costmap, StartsUnknownWhenTrackingUnknown) {
  Costmap2D cm({0, 0}, 4.0, 4.0);
  EXPECT_EQ(cm.cost_at({10, 10}), kCostNoInformation);
  EXPECT_FALSE(cm.is_traversable({10, 10}));
}

TEST(Costmap, OutOfBoundsIsLethal) {
  Costmap2D cm({0, 0}, 4.0, 4.0);
  EXPECT_EQ(cm.cost_at({-1, 0}), kCostLethal);
}

TEST(Costmap, StaticMapProducesLethalAndFree) {
  sim::World w(4.0, 4.0);
  w.add_box({2.0, 0.0}, {2.2, 4.0});
  Costmap2D cm({0, 0}, 4.0, 4.0);
  cm.set_static_map(OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.inflate();
  EXPECT_TRUE(cm.is_lethal(cm.frame().world_to_cell({2.1, 2.0})));
  EXPECT_TRUE(cm.is_traversable(cm.frame().world_to_cell({0.5, 0.5})));
}

TEST(Costmap, ObstacleLayerMarksScanHit) {
  Costmap2D cm({0, 0}, 6.0, 6.0);
  const Pose2D pose{1.0, 3.0, 0.0};
  cm.update(pose, beam_at(2.0, 0.0));
  EXPECT_TRUE(cm.is_lethal(cm.frame().world_to_cell({3.0, 3.0})));
  // The ray path is cleared (known free).
  EXPECT_EQ(cm.cost_at(cm.frame().world_to_cell({1.5, 3.0})), kCostFreeSpace);
}

TEST(Costmap, ObstacleClearedWhenSeenThrough) {
  Costmap2D cm({0, 0}, 6.0, 6.0);
  const Pose2D pose{1.0, 3.0, 0.0};
  cm.update(pose, beam_at(2.0, 0.0));
  ASSERT_TRUE(cm.is_lethal(cm.frame().world_to_cell({3.0, 3.0})));
  // Obstacle moves away; the beam now reaches farther.
  cm.update(pose, beam_at(3.4, 0.0));
  EXPECT_FALSE(cm.is_lethal(cm.frame().world_to_cell({3.0, 3.0})));
}

TEST(Costmap, InflationDecreasesMonotonicallyWithDistance) {
  CostmapConfig cfg;
  cfg.inflation_radius = 0.5;
  Costmap2D cm({0, 0}, 6.0, 6.0, cfg);
  const Pose2D pose{1.0, 3.0, 0.0};
  cm.update(pose, beam_at(2.0, 0.0));
  // Walk away from the obstacle at (3.0, 3.0) along -x.
  uint8_t prev = kCostLethal;
  for (double x = 3.0; x >= 2.3; x -= cm.frame().resolution) {
    const uint8_t c = cm.cost_at(cm.frame().world_to_cell({x, 3.0}));
    EXPECT_LE(c, prev) << "at x=" << x;
    prev = c;
  }
  // Beyond the inflation radius: free.
  EXPECT_EQ(cm.cost_at(cm.frame().world_to_cell({2.2, 3.0})), kCostFreeSpace);
}

TEST(Costmap, InscribedRadiusIsInscribedCost) {
  CostmapConfig cfg;
  cfg.inscribed_radius = 0.15;
  cfg.inflation_radius = 0.5;
  Costmap2D cm({0, 0}, 6.0, 6.0, cfg);
  cm.update({1.0, 3.0, 0.0}, beam_at(2.0, 0.0));
  // A cell well inside the inscribed radius of the obstacle (query at a cell
  // center to avoid float boundary effects).
  const uint8_t c = cm.cost_at(cm.frame().world_to_cell({2.93, 3.03}));
  EXPECT_GE(c, kCostInscribed);
}

TEST(Costmap, UpdateStatsCountWork) {
  Costmap2D cm({0, 0}, 6.0, 6.0);
  const CostmapUpdateStats stats = cm.update({1.0, 3.0, 0.0}, beam_at(2.0, 0.0));
  EXPECT_GT(stats.raytraced_cells, 30u);  // 2 m at 0.05 m
  EXPECT_GT(stats.inflated_cells, 0u);
}

TEST(Costmap, FullScanFromSimWorld) {
  sim::World w(8.0, 8.0);
  w.add_outer_walls(0.2);
  w.add_disc({4.0, 4.0}, 0.4);
  sim::LidarConfig lc;
  lc.range_noise_sigma = 0.0;
  sim::Lidar lidar(lc);
  Costmap2D cm({0, 0}, 8.0, 8.0);
  const Pose2D pose{2.0, 2.0, 0.0};
  cm.update(pose, lidar.scan(w, pose, 0.0));
  // The disc edge nearest the robot is marked (+inflated).
  EXPECT_GE(cm.cost_at(cm.frame().world_to_cell({3.67, 3.67})), kCostInscribed);
  // Robot's own cell is traversable.
  EXPECT_TRUE(cm.is_traversable(cm.frame().world_to_cell(pose.position())));
}

TEST(Costmap, UntrackedUnknownStartsFree) {
  CostmapConfig cfg;
  cfg.track_unknown = false;
  Costmap2D cm({0, 0}, 4.0, 4.0, cfg);
  EXPECT_EQ(cm.cost_at({10, 10}), kCostFreeSpace);
  EXPECT_TRUE(cm.is_traversable({10, 10}));
}

TEST(Costmap, ObstacleBeyondMarkingRangeOnlyClears) {
  CostmapConfig cfg;
  cfg.obstacle_range = 1.0;
  cfg.raytrace_range = 3.5;
  Costmap2D cm({0, 0}, 6.0, 6.0, cfg);
  cm.update({1.0, 3.0, 0.0}, beam_at(2.0, 0.0));
  // Hit at 2 m exceeds obstacle_range: the endpoint is NOT marked as an
  // obstacle (it stays unknown — untraversable but not kCostLethal), and the
  // ray path up to it was cleared.
  EXPECT_NE(cm.cost_at(cm.frame().world_to_cell({3.0, 3.0})), kCostLethal);
  EXPECT_EQ(cm.cost_at(cm.frame().world_to_cell({1.5, 3.0})), kCostFreeSpace);
}

TEST(Costmap, StaticLethalSurvivesClearing) {
  // A wall in the static map stays lethal even when a (spurious) beam claims
  // to see through it — static knowledge wins over one scan.
  sim::World w(6.0, 6.0);
  w.add_box({3.0, 2.8}, {3.2, 3.2});
  Costmap2D cm({0, 0}, 6.0, 6.0);
  cm.set_static_map(OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.update({1.0, 3.0, 0.0}, beam_at(3.4, 0.0));  // beam "through" the wall
  EXPECT_TRUE(cm.is_lethal(cm.frame().world_to_cell({3.1, 3.0})));
}

TEST(Costmap, ToMsgEncodesUnknownAndCost) {
  Costmap2D cm({0, 0}, 2.0, 2.0);
  cm.update({0.5, 1.0, 0.0}, beam_at(0.8, 0.0));
  const msg::OccupancyGridMsg m = cm.to_msg(1.0);
  EXPECT_EQ(m.width, cm.width());
  const CellIndex hit = cm.frame().world_to_cell({1.3, 1.0});
  EXPECT_EQ(m.at(hit.x, hit.y), 100);
  bool has_unknown = false;
  for (int8_t v : m.data) has_unknown |= v == msg::kUnknownCell;
  EXPECT_TRUE(has_unknown);
}

}  // namespace
}  // namespace lgv::perception
