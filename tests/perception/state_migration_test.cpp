// State-movement round trips: full (raw / RLE) and delta grid records,
// Gmapping / AMCL state codecs, the commit-gated delta base, and the
// allocation guards on attacker-controlled counts (docs/state-sync.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "perception/amcl.h"
#include "perception/gmapping.h"
#include "perception/likelihood_field.h"
#include "perception/occupancy_grid.h"
#include "sim/lidar.h"
#include "sim/scenario.h"
#include "sim/world.h"

namespace lgv::perception {
namespace {

msg::LaserScan fan_scan(double range) {
  msg::LaserScan s;
  s.angle_min = -1.5;
  s.angle_max = 1.5;
  s.angle_increment = 0.05;
  s.range_min = 0.1;
  s.range_max = 3.5;
  const size_t n = static_cast<size_t>((s.angle_max - s.angle_min) / s.angle_increment) + 1;
  s.ranges.assign(n, static_cast<float>(range));
  return s;
}

/// Exact (bit-level) state equality: every cell plus the serialized scalars.
::testing::AssertionResult same_grid_state(const OccupancyGrid& a,
                                           const OccupancyGrid& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return ::testing::AssertionFailure() << "dims differ";
  }
  if (!(a.frame() == b.frame())) return ::testing::AssertionFailure() << "frame differs";
  if (a.known_cells() != b.known_cells()) {
    return ::testing::AssertionFailure()
           << "known_cells " << a.known_cells() << " vs " << b.known_cells();
  }
  if (a.write_version() != b.write_version()) {
    return ::testing::AssertionFailure()
           << "write_version " << a.write_version() << " vs " << b.write_version();
  }
  if (a.change_version() != b.change_version()) {
    return ::testing::AssertionFailure() << "change_version differs";
  }
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      if (a.log_odds_at({x, y}) != b.log_odds_at({x, y})) {
        return ::testing::AssertionFailure()
               << "cell (" << x << "," << y << ") " << a.log_odds_at({x, y}) << " vs "
               << b.log_odds_at({x, y});
      }
    }
  }
  return ::testing::AssertionSuccess();
}

OccupancyGrid mapped_grid() {
  OccupancyGrid g({0, 0}, 12.0, 12.0);
  const msg::LaserScan scan = fan_scan(2.5);
  for (int i = 0; i < 4; ++i) {
    g.integrate_scan({3.0 + 0.5 * i, 6.0, 0.2 * i}, scan);
  }
  return g;
}

TEST(GridWire, RawRoundTripIsByteIdentical) {
  const OccupancyGrid g = mapped_grid();
  WireWriter w;
  g.serialize(w, GridEncoding::kRaw);
  WireReader r(w.buffer());
  const OccupancyGrid restored = OccupancyGrid::deserialize(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(same_grid_state(g, restored));
}

TEST(GridWire, RleRoundTripMatchesRawAndIsSmaller) {
  const OccupancyGrid g = mapped_grid();
  WireWriter raw_w, rle_w;
  g.serialize(raw_w, GridEncoding::kRaw);
  g.serialize(rle_w, GridEncoding::kRle);
  // Mostly-unknown map: runs collapse it by a large factor.
  EXPECT_LT(rle_w.size() * 4, raw_w.size());

  WireReader r(rle_w.buffer());
  const OccupancyGrid restored = OccupancyGrid::deserialize(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(same_grid_state(g, restored));
}

TEST(GridWire, RestoredGridGetsFreshMapIdButKeepsWriteVersion) {
  const OccupancyGrid g = mapped_grid();
  WireWriter w;
  g.serialize(w);
  WireReader r(w.buffer());
  const OccupancyGrid restored = OccupancyGrid::deserialize(r);
  EXPECT_NE(restored.map_id(), g.map_id());           // stale fields can't match
  EXPECT_EQ(restored.write_version(), g.write_version());  // delta lineage survives
}

TEST(GridWire, DeltaRoundTripIsByteIdenticalAndSmall) {
  OccupancyGrid sender = mapped_grid();
  // Commit: sender retains an O(1) snapshot; the receiver holds a replica of
  // the exact same state from the full transfer.
  sender.mark_delta_base();
  const OccupancyGrid snapshot = sender;
  WireWriter full_w;
  sender.serialize(full_w);
  WireReader full_r(full_w.buffer());
  const OccupancyGrid replica = OccupancyGrid::deserialize(full_r);

  // Sender keeps mapping a small new region.
  sender.integrate_scan({5.0, 6.0, 1.0}, fan_scan(1.5));

  ASSERT_TRUE(sender.can_delta_against(snapshot));
  WireWriter delta_w, rle_w;
  sender.serialize_delta(delta_w, snapshot);
  sender.serialize(rle_w, GridEncoding::kRle);
  EXPECT_LT(delta_w.size(), rle_w.size());

  WireReader delta_r(delta_w.buffer());
  const OccupancyGrid restored = OccupancyGrid::deserialize_any(
      delta_r, [&](uint64_t v) { return v == replica.write_version() ? &replica : nullptr; });
  EXPECT_TRUE(delta_r.at_end());
  EXPECT_TRUE(same_grid_state(sender, restored));
}

TEST(GridWire, UnchangedGridDeltaIsTiny) {
  OccupancyGrid sender = mapped_grid();
  sender.mark_delta_base();
  const OccupancyGrid snapshot = sender;
  WireWriter w;
  sender.serialize_delta(w, snapshot);
  EXPECT_LT(w.size(), 64u);  // header only, zero runs
}

TEST(GridWire, DeltaWithoutBaseThrows) {
  OccupancyGrid sender = mapped_grid();
  sender.mark_delta_base();
  const OccupancyGrid snapshot = sender;
  sender.integrate_scan({5.0, 6.0, 1.0}, fan_scan(1.5));
  WireWriter w;
  sender.serialize_delta(w, snapshot);
  WireReader r(w.buffer());
  EXPECT_THROW(OccupancyGrid::deserialize_any(r, nullptr), std::runtime_error);
  WireReader r2(w.buffer());
  EXPECT_THROW(OccupancyGrid::deserialize(r2), std::runtime_error);
}

TEST(GridWire, HostileDimensionsRejectedBeforeAllocation) {
  WireWriter w;
  w.put_varint(static_cast<uint64_t>(GridEncoding::kRle));
  w.put_varint(1);  // write_version
  w.put_varint(0);  // change_version
  w.put_double(0.0);
  w.put_double(0.0);
  w.put_double(0.1);
  w.put_signed(1 << 20);  // 2^40 cells — a 4 TB allocation if honored
  w.put_signed(1 << 20);
  for (int i = 0; i < 6; ++i) w.put_double(0.5);
  w.put_varint(0);
  WireReader r(w.buffer());
  EXPECT_THROW(OccupancyGrid::deserialize(r), std::out_of_range);
}

TEST(GridWire, CorruptRleRunLengthThrows) {
  // A grid whose RLE body claims a run longer than the cell count.
  WireWriter bad;
  bad.put_varint(static_cast<uint64_t>(GridEncoding::kRle));
  bad.put_varint(1);
  bad.put_varint(0);
  bad.put_double(0.0);
  bad.put_double(0.0);
  bad.put_double(0.1);
  bad.put_signed(4);
  bad.put_signed(4);
  for (int i = 0; i < 6; ++i) bad.put_double(0.5);
  bad.put_varint(0);
  bad.put_varint(17);  // run of 17 into a 16-cell grid
  bad.put_float(1.0f);
  WireReader r(bad.buffer());
  EXPECT_THROW(OccupancyGrid::deserialize(r), std::out_of_range);
}

// ---- Gmapping state ---------------------------------------------------------

class StateMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override { log = sim::record_scan_log(scenario, 0.4, 0.2, 40); }

  GmappingConfig small_config(int particles = 6) {
    GmappingConfig cfg;
    cfg.particles = particles;
    cfg.matcher.beam_stride = 8;
    return cfg;
  }

  Gmapping make_slam() { return Gmapping(small_config(), {0, 0}, 8.0, 8.0, 3); }

  void feed(Gmapping& slam, size_t begin, size_t end) {
    for (size_t i = begin; i < end && i < log.size(); ++i) {
      msg::Odometry odom;
      odom.pose = log[i].odom_pose;
      odom.header.stamp = log[i].scan.header.stamp;
      slam.process(odom, log[i].scan, ctx);
      ctx.reset();
    }
  }

  static void expect_equivalent(const Gmapping& a, const Gmapping& b) {
    ASSERT_EQ(a.particle_count(), b.particle_count());
    for (int i = 0; i < a.particle_count(); ++i) {
      const size_t k = static_cast<size_t>(i);
      EXPECT_EQ(a.poses()[k], b.poses()[k]) << i;
      EXPECT_EQ(a.log_weights()[k], b.log_weights()[k]) << i;
      EXPECT_EQ(a.weights()[k], b.weights()[k]) << i;
      EXPECT_TRUE(same_grid_state(a.particles()[k].map, b.particles()[k].map))
          << "particle " << i;
    }
  }

  sim::Scenario scenario{sim::make_open_scenario()};
  std::vector<sim::ScanLogEntry> log;
  platform::ExecutionContext ctx;
};

TEST_F(StateMigrationTest, FullModesRestoreEquivalentState) {
  Gmapping a = make_slam();
  a.initialize(log[0].odom_pose);
  feed(a, 0, 10);

  for (const StateEncoding mode : {StateEncoding::kFullRaw, StateEncoding::kFull}) {
    const std::vector<uint8_t> bytes = a.serialize_state(mode);
    EXPECT_EQ(a.last_codec_stats().grids_full, 6u);
    EXPECT_EQ(a.last_codec_stats().grids_delta, 0u);
    Gmapping b = make_slam();
    b.restore_state(bytes);
    expect_equivalent(a, b);
  }
  // RLE state is far smaller than raw for early-mission maps.
  const size_t raw = a.serialize_state(StateEncoding::kFullRaw).size();
  const size_t rle = a.serialize_state(StateEncoding::kFull).size();
  EXPECT_LT(rle * 4, raw);
}

TEST_F(StateMigrationTest, DeltaChainAcrossCommittedMigrations) {
  Gmapping a = make_slam();
  a.initialize(log[0].odom_pose);
  feed(a, 0, 8);

  // Migration 1: cold start — no base exists, every grid goes full.
  Gmapping b = make_slam();
  const std::vector<uint8_t> first = a.serialize_state(StateEncoding::kDelta);
  EXPECT_EQ(a.last_codec_stats().grids_delta, 0u);
  EXPECT_EQ(a.last_codec_stats().fallback_no_base, 6u);
  a.mark_migration_committed();
  b.restore_state(first);
  expect_equivalent(a, b);

  // Migration 2: a short stretch of new mapping — deltas should dominate
  // and the payload should shrink hard versus a full snapshot.
  feed(a, 8, 12);
  const std::vector<uint8_t> second = a.serialize_state(StateEncoding::kDelta);
  EXPECT_GT(a.last_codec_stats().grids_delta, 0u);
  const size_t full_size = a.serialize_state(StateEncoding::kFull).size();
  EXPECT_LT(second.size(), full_size);
  a.mark_migration_committed();
  b.restore_state(second);
  expect_equivalent(a, b);

  // Migration 3: chain continues against the migration-2 state.
  feed(a, 12, 16);
  const std::vector<uint8_t> third = a.serialize_state(StateEncoding::kDelta);
  EXPECT_GT(a.last_codec_stats().grids_delta, 0u);
  b.restore_state(third);
  expect_equivalent(a, b);
}

TEST_F(StateMigrationTest, AbortedMigrationNeverAdvancesDeltaBase) {
  Gmapping a = make_slam();
  a.initialize(log[0].odom_pose);
  feed(a, 0, 8);

  // Committed transfer 1 establishes the shared base.
  Gmapping b = make_slam();
  const std::vector<uint8_t> first = a.serialize_state(StateEncoding::kDelta);
  a.mark_migration_committed();
  b.restore_state(first);

  // Transfer 2 is serialized but ABORTS in flight: the receiver never sees
  // it and mark_migration_committed is not called.
  feed(a, 8, 10);
  const std::vector<uint8_t> aborted = a.serialize_state(StateEncoding::kDelta);
  (void)aborted;  // dropped on the floor — simulates the torn transfer

  // Transfer 3: because the base did not advance, it still encodes against
  // the transfer-1 state — which the receiver holds — and must decode.
  feed(a, 10, 12);
  const std::vector<uint8_t> third = a.serialize_state(StateEncoding::kDelta);
  EXPECT_GT(a.last_codec_stats().grids_delta, 0u);
  b.restore_state(third);
  expect_equivalent(a, b);
}

TEST_F(StateMigrationTest, HeavyChurnFallsBackToFullSnapshots) {
  Gmapping a = make_slam();
  a.initialize(log[0].odom_pose);
  feed(a, 0, 4);
  const std::vector<uint8_t> first = a.serialize_state(StateEncoding::kDelta);
  a.mark_migration_committed();
  Gmapping b = make_slam();
  b.restore_state(first);

  // Rewrite most of each particle's map after the commit (far beyond the
  // changelog cap): the dirty-tile estimate must route every grid to the
  // full-snapshot fallback, and the receiver must still decode.
  feed(a, 4, 30);
  const std::vector<uint8_t> bytes = a.serialize_state(StateEncoding::kDelta);
  EXPECT_GT(a.last_codec_stats().fallback_overflow +
                a.last_codec_stats().fallback_no_base +
                a.last_codec_stats().fallback_larger,
            0u);
  b.restore_state(bytes);
  expect_equivalent(a, b);
}

TEST_F(StateMigrationTest, HostileParticleCountThrowsWithoutAllocating) {
  WireWriter w;
  w.put_varint(uint64_t{1} << 40);  // ~10^12 particles in a 10-byte buffer
  Gmapping a = make_slam();
  EXPECT_THROW(a.restore_state(w.buffer()), std::out_of_range);
}

TEST_F(StateMigrationTest, LikelihoodFieldResyncsFromRestoredMap) {
  Gmapping a = make_slam();
  a.initialize(log[0].odom_pose);
  feed(a, 0, 8);
  const std::vector<uint8_t> bytes = a.serialize_state();
  Gmapping b = make_slam();
  b.restore_state(bytes);

  const OccupancyGrid& src = a.particles()[0].map;
  const OccupancyGrid& restored = b.particles()[0].map;
  LikelihoodField field;
  EXPECT_GT(field.sync(restored), 0u);
  LikelihoodField reference;
  reference.sync(src);
  for (int y = -1; y <= src.height(); ++y) {
    for (int x = -1; x <= src.width(); ++x) {
      ASSERT_EQ(field.entry({x, y}), reference.entry({x, y})) << x << "," << y;
    }
  }
  // The restored replica has a fresh map_id: a field synced against the
  // source must not claim to be current for it (it re-syncs instead).
  EXPECT_FALSE(reference.in_sync_with(restored));
}

// ---- AMCL state -------------------------------------------------------------

TEST(AmclState, RoundTripRestoresPosesWeightsAndOdom) {
  sim::World world(8.0, 8.0);
  world.add_outer_walls(0.2);
  world.add_box({3.5, 3.5}, {4.5, 4.5});
  const OccupancyGrid map = OccupancyGrid::from_binary(world.frame(), world.grid());
  sim::Lidar lidar({}, 5);
  Amcl a({}, &map, 17);
  a.initialize({2.0, 2.0, 0.0});
  platform::ExecutionContext ctx;
  Pose2D truth{2.0, 2.0, 0.0};
  double t = 0.0;
  for (int i = 0; i < 5; ++i) {
    truth = Pose2D(truth.x + 0.05, truth.y, 0.0);
    t += 0.2;
    msg::Odometry odom;
    odom.pose = truth;
    odom.header.stamp = t;
    a.update(odom, lidar.scan(world, truth, t), ctx);
    ctx.reset();
  }

  const std::vector<uint8_t> bytes = a.serialize_state();
  // The known map never rides along: the payload is the pose cloud only.
  EXPECT_LT(bytes.size(), static_cast<size_t>(a.particle_count()) * 4 * 8 + 64);
  Amcl b({}, &map, 99);
  b.restore_state(bytes);
  ASSERT_EQ(a.particle_count(), b.particle_count());
  for (int i = 0; i < a.particle_count(); ++i) {
    EXPECT_EQ(a.poses()[static_cast<size_t>(i)], b.poses()[static_cast<size_t>(i)]);
    EXPECT_EQ(a.weights()[static_cast<size_t>(i)], b.weights()[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(a.estimate(), b.estimate());
}

TEST(AmclState, HostileParticleCountThrowsWithoutAllocating) {
  WireWriter w;
  w.put_varint(uint64_t{1} << 40);
  const OccupancyGrid map;
  Amcl a({}, &map, 1);
  EXPECT_THROW(a.restore_state(w.buffer()), std::out_of_range);
}

}  // namespace
}  // namespace lgv::perception
