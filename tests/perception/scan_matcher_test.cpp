#include "perception/scan_matcher.h"

#include <gtest/gtest.h>

#include "sim/lidar.h"
#include "sim/world.h"

namespace lgv::perception {
namespace {

struct MatcherFixture : ::testing::Test {
  void SetUp() override {
    world = std::make_unique<sim::World>(8.0, 8.0);
    world->add_outer_walls(0.2);
    world->add_box({3.5, 3.5}, {4.5, 4.5});
    sim::LidarConfig lc;
    lc.range_noise_sigma = 0.0;
    lidar = std::make_unique<sim::Lidar>(lc);

    OccupancyGridConfig cfg;
    cfg.resolution = 0.1;
    map = std::make_unique<OccupancyGrid>(Point2D{0, 0}, 8.0, 8.0, cfg);
    // Build the map from a few ground-truth scans.
    for (const Point2D p :
         {Point2D{1.5, 1.5}, {6.5, 1.5}, {1.5, 6.5}, {6.5, 6.5}, {2.0, 4.0}}) {
      for (int i = 0; i < 3; ++i) {
        map->integrate_scan({p.x, p.y, 0.0}, lidar->scan(*world, {p.x, p.y, 0.0}, 0.0));
      }
    }
  }

  std::unique_ptr<sim::World> world;
  std::unique_ptr<sim::Lidar> lidar;
  std::unique_ptr<OccupancyGrid> map;
  ScanMatcher matcher;
};

TEST_F(MatcherFixture, TruePoseScoresHigherThanOffsetPose) {
  const Pose2D truth{2.0, 2.0, 0.3};
  const msg::LaserScan scan = lidar->scan(*world, truth, 0.0);
  size_t evals = 0;
  const double at_truth = matcher.score(*map, truth, scan, &evals);
  const double offset =
      matcher.score(*map, {2.4, 2.4, 0.3}, scan, &evals);
  EXPECT_GT(at_truth, offset);
  EXPECT_GT(evals, 0u);
}

TEST_F(MatcherFixture, MatchRecoversPerturbedPose) {
  const Pose2D truth{2.0, 4.0, 0.0};
  const msg::LaserScan scan = lidar->scan(*world, truth, 0.0);
  const Pose2D perturbed{2.12, 3.9, 0.06};
  const MatchResult r = matcher.match(*map, perturbed, scan);
  EXPECT_LT(distance(r.pose.position(), truth.position()),
            distance(perturbed.position(), truth.position()));
  EXPECT_LT(distance(r.pose.position(), truth.position()), 0.16);
  EXPECT_GT(r.beam_evaluations, 100u);
}

TEST_F(MatcherFixture, MatchNeverDecreasesScore) {
  const Pose2D truth{5.5, 5.5, -0.5};
  const msg::LaserScan scan = lidar->scan(*world, truth, 0.0);
  const Pose2D initial{5.6, 5.45, -0.45};
  size_t evals = 0;
  const double initial_score = matcher.score(*map, initial, scan, &evals);
  const MatchResult r = matcher.match(*map, initial, scan);
  EXPECT_GE(r.score, initial_score - 1e-12);
}

TEST_F(MatcherFixture, BeamStrideReducesWork) {
  ScanMatcherConfig dense;
  dense.beam_stride = 1;
  ScanMatcherConfig sparse;
  sparse.beam_stride = 8;
  const Pose2D truth{2.0, 2.0, 0.0};
  const msg::LaserScan scan = lidar->scan(*world, truth, 0.0);
  size_t dense_evals = 0, sparse_evals = 0;
  ScanMatcher(dense).score(*map, truth, scan, &dense_evals);
  ScanMatcher(sparse).score(*map, truth, scan, &sparse_evals);
  EXPECT_GT(dense_evals, 6u * sparse_evals);
}

TEST_F(MatcherFixture, ScoreIsDeterministicAndThreadSafeConst) {
  const Pose2D pose{2.0, 2.0, 0.0};
  const msg::LaserScan scan = lidar->scan(*world, pose, 0.0);
  size_t e1 = 0, e2 = 0;
  const double s1 = matcher.score(*map, pose, scan, &e1);
  const double s2 = matcher.score(*map, pose, scan, &e2);
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_EQ(e1, e2);
}

TEST(ScanMatcher, EmptyMapScoresNearZero) {
  OccupancyGrid empty({0, 0}, 4.0, 4.0);
  msg::LaserScan scan;
  scan.angle_min = 0.0;
  scan.angle_increment = 0.1;
  scan.range_min = 0.1;
  scan.range_max = 3.5;
  scan.ranges.assign(10, 1.0f);
  ScanMatcher matcher;
  size_t evals = 0;
  const double s = matcher.score(empty, {2.0, 2.0, 0.0}, scan, &evals);
  // Unknown cells contribute only the small exploration bonus.
  EXPECT_LT(s, 1.0);
}

}  // namespace
}  // namespace lgv::perception
