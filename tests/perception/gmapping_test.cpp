#include "perception/gmapping.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "sim/scenario.h"

namespace lgv::perception {
namespace {

GmappingConfig small_config(int particles = 10) {
  GmappingConfig cfg;
  cfg.particles = particles;
  cfg.matcher.beam_stride = 8;
  return cfg;
}

TEST(Gmapping, InitializeSetsAllParticles) {
  Gmapping slam(small_config(), {0, 0}, 8.0, 8.0);
  slam.initialize({2.0, 2.0, 0.5});
  EXPECT_EQ(slam.particle_count(), 10);
  for (size_t i = 0; i < slam.poses().size(); ++i) {
    EXPECT_EQ(slam.poses()[i], Pose2D(2.0, 2.0, 0.5));
  }
  EXPECT_DOUBLE_EQ(slam.neff(), 10.0);
}

TEST(Gmapping, EffectiveSampleSize) {
  EXPECT_DOUBLE_EQ(Gmapping::effective_sample_size({0.25, 0.25, 0.25, 0.25}), 4.0);
  EXPECT_DOUBLE_EQ(Gmapping::effective_sample_size({1.0, 0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(Gmapping::effective_sample_size({}), 0.0);
}

class GmappingLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario = sim::make_open_scenario();
    log = sim::record_scan_log(scenario, 0.4, 0.2, 60);
  }

  SlamUpdateStats feed(Gmapping& slam, platform::ExecutionContext& ctx, size_t count) {
    SlamUpdateStats last;
    slam.initialize(log[0].odom_pose);
    for (size_t i = 0; i < count && i < log.size(); ++i) {
      msg::Odometry odom;
      odom.pose = log[i].odom_pose;
      odom.header.stamp = log[i].scan.header.stamp;
      last = slam.process(odom, log[i].scan, ctx);
      ctx.reset();
    }
    return last;
  }

  sim::Scenario scenario{sim::make_open_scenario()};
  std::vector<sim::ScanLogEntry> log;
};

TEST_F(GmappingLogTest, TracksPoseBetterThanRawOdometry) {
  Gmapping slam(small_config(20), {0, 0}, 8.0, 8.0, 3);
  platform::ExecutionContext ctx;
  feed(slam, ctx, 60);
  const Pose2D truth = log[59].true_pose;
  const double slam_err = distance(slam.best_pose().position(), truth.position());
  const double odom_err = distance(log[59].odom_pose.position(), truth.position());
  // Over a short log odometry may still be decent; SLAM must stay bounded and
  // in the same ballpark or better.
  EXPECT_LT(slam_err, std::max(0.45, odom_err * 1.5));
}

TEST_F(GmappingLogTest, BuildsAMap) {
  Gmapping slam(small_config(10), {0, 0}, 8.0, 8.0, 3);
  platform::ExecutionContext ctx;
  feed(slam, ctx, 40);
  EXPECT_GT(slam.best_map().known_area_m2(), 10.0);
  // The central disc of the open scenario should appear occupied.
  const auto& map = slam.best_map();
  bool found_obstacle = false;
  for (int dy = -4; dy <= 4 && !found_obstacle; ++dy) {
    for (int dx = -4; dx <= 4 && !found_obstacle; ++dx) {
      CellIndex c = map.frame().world_to_cell({4.0, 4.0});
      c.x += dx;
      c.y += dy;
      found_obstacle = map.is_occupied(c);
    }
  }
  EXPECT_TRUE(found_obstacle);
}

TEST_F(GmappingLogTest, StatsReportWork) {
  Gmapping slam(small_config(10), {0, 0}, 8.0, 8.0, 3);
  platform::ExecutionContext ctx(nullptr, 4);
  slam.initialize(log[0].odom_pose);
  msg::Odometry odom;
  odom.pose = log[0].odom_pose;
  slam.process(odom, log[0].scan, ctx);  // first scan: map seeding only
  ctx.reset();
  odom.pose = log[1].odom_pose;
  const SlamUpdateStats stats = slam.process(odom, log[1].scan, ctx);
  EXPECT_GT(stats.beam_evaluations, 100u);
  EXPECT_GT(stats.map_cells_updated, 500u);
  EXPECT_GT(ctx.profile().total_cycles(), 1e6);
  ASSERT_FALSE(ctx.profile().regions.empty());
  EXPECT_EQ(ctx.profile().regions[0].chunks(), 4);
}

TEST_F(GmappingLogTest, ParallelAndSerialProduceSameWorkScale) {
  // Fig. 6's parallelization must not change the computation, only its
  // schedule: total beam evaluations stay within a few percent (they are not
  // bit-identical because per-particle RNG draws depend on thread order only
  // through nothing — particles own their RNGs, so they are identical).
  Gmapping serial_slam(small_config(8), {0, 0}, 8.0, 8.0, 11);
  Gmapping parallel_slam(small_config(8), {0, 0}, 8.0, 8.0, 11);
  ThreadPool pool(4);
  platform::ExecutionContext ser(nullptr, 1);
  platform::ExecutionContext par(&pool, 4);
  const SlamUpdateStats s1 = feed(serial_slam, ser, 10);
  const SlamUpdateStats s2 = feed(parallel_slam, par, 10);
  EXPECT_EQ(s1.beam_evaluations, s2.beam_evaluations);
  EXPECT_EQ(s1.map_cells_updated, s2.map_cells_updated);
  EXPECT_EQ(serial_slam.best_pose(), parallel_slam.best_pose());
}

TEST_F(GmappingLogTest, ResamplingKeepsParticleCountAndResetsNeff) {
  GmappingConfig cfg = small_config(12);
  cfg.resample_threshold = 1.1;  // force resampling every update
  Gmapping slam(cfg, {0, 0}, 8.0, 8.0, 5);
  platform::ExecutionContext ctx;
  const SlamUpdateStats stats = feed(slam, ctx, 6);
  EXPECT_TRUE(stats.resampled);
  EXPECT_EQ(slam.particle_count(), 12);
  EXPECT_NEAR(slam.neff(), 12.0, 1e-9);
}

TEST_F(GmappingLogTest, StateMigrationRoundTrip) {
  // Algorithm 2's state migration: serialize the filter on one "host" and
  // restore it on another; the restored filter must produce the same pose
  // and map, and keep functioning on further scans.
  Gmapping source(small_config(8), {0, 0}, 8.0, 8.0, 21);
  platform::ExecutionContext ctx;
  feed(source, ctx, 20);

  const std::vector<uint8_t> state = source.serialize_state();
  EXPECT_GT(state.size(), 10000u);  // particle maps dominate the payload

  Gmapping target(small_config(8), {0, 0}, 8.0, 8.0, 99);
  target.restore_state(state);
  EXPECT_EQ(target.particle_count(), source.particle_count());
  EXPECT_EQ(target.best_pose(), source.best_pose());
  EXPECT_EQ(target.best_map().known_cells(), source.best_map().known_cells());
  EXPECT_DOUBLE_EQ(target.neff(), source.neff());

  // The restored filter keeps tracking.
  platform::ExecutionContext ctx2;
  for (size_t i = 20; i < 30; ++i) {
    msg::Odometry odom;
    odom.pose = log[i].odom_pose;
    target.process(odom, log[i].scan, ctx2);
  }
  EXPECT_LT(distance(target.best_pose().position(), log[29].true_pose.position()),
            0.6);
}

TEST(OccupancyGridState, SerializeRoundTripIsLossless) {
  const sim::Scenario scenario = sim::make_open_scenario();
  const auto log = sim::record_scan_log(scenario, 0.4, 0.2, 10);
  OccupancyGrid g({0, 0}, 8.0, 8.0);
  for (const auto& e : log) g.integrate_scan(e.true_pose, e.scan);

  WireWriter w;
  g.serialize(w);
  WireReader r(w.buffer());
  const OccupancyGrid back = OccupancyGrid::deserialize(r);
  EXPECT_EQ(back.width(), g.width());
  EXPECT_EQ(back.height(), g.height());
  EXPECT_EQ(back.known_cells(), g.known_cells());
  EXPECT_EQ(back.frame(), g.frame());
  for (int y = 0; y < g.height(); ++y) {
    for (int x = 0; x < g.width(); ++x) {
      ASSERT_DOUBLE_EQ(back.log_odds_at({x, y}), g.log_odds_at({x, y}))
          << x << "," << y;
    }
  }
}

TEST(GmappingParam, WorkScalesLinearlyWithParticles) {
  // The Fig. 9 premise: particles are the computation-complexity knob.
  const sim::Scenario scenario = sim::make_open_scenario();
  const auto log = sim::record_scan_log(scenario, 0.4, 0.2, 6);
  auto total_cycles = [&](int particles) {
    Gmapping slam(small_config(particles), {0, 0}, 8.0, 8.0, 3);
    platform::ExecutionContext ctx;
    slam.initialize(log[0].odom_pose);
    for (const auto& e : log) {
      msg::Odometry odom;
      odom.pose = e.odom_pose;
      slam.process(odom, e.scan, ctx);
    }
    return ctx.profile().total_cycles();
  };
  const double c10 = total_cycles(10);
  const double c30 = total_cycles(30);
  EXPECT_GT(c30, 2.0 * c10);
  EXPECT_LT(c30, 4.5 * c10);
}

}  // namespace
}  // namespace lgv::perception
