#include "perception/occupancy_grid.h"

#include <gtest/gtest.h>

#include "sim/lidar.h"
#include "sim/world.h"

namespace lgv::perception {
namespace {

TEST(OccupancyGrid, StartsUnknown) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  EXPECT_TRUE(g.is_unknown({10, 10}));
  EXPECT_FALSE(g.is_occupied({10, 10}));
  EXPECT_FALSE(g.is_free({10, 10}));
  EXPECT_EQ(g.known_cells(), 0u);
}

TEST(OccupancyGrid, OutOfBoundsIsUnknown) {
  OccupancyGrid g({0, 0}, 2.0, 2.0);
  EXPECT_TRUE(g.is_unknown({-1, 0}));
  EXPECT_TRUE(g.is_unknown({1000, 0}));
}

msg::LaserScan single_beam(double range, double angle = 0.0) {
  msg::LaserScan s;
  s.angle_min = angle;
  s.angle_max = angle;
  s.angle_increment = 0.0;
  s.range_min = 0.1;
  s.range_max = 3.5;
  s.ranges = {static_cast<float>(range)};
  return s;
}

TEST(OccupancyGrid, ScanMarksEndpointOccupiedAndPathFree) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  const Pose2D pose{1.0, 2.5, 0.0};
  const msg::LaserScan s = single_beam(2.0);
  for (int i = 0; i < 5; ++i) g.integrate_scan(pose, s);
  // Endpoint at (3.0, 2.5).
  EXPECT_TRUE(g.is_occupied(g.frame().world_to_cell({3.0, 2.5})));
  EXPECT_TRUE(g.is_free(g.frame().world_to_cell({2.0, 2.5})));
  EXPECT_TRUE(g.is_free(g.frame().world_to_cell({1.2, 2.5})));
  EXPECT_GT(g.known_cells(), 10u);
}

TEST(OccupancyGrid, NoReturnBeamOnlyClears) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  const Pose2D pose{1.0, 2.5, 0.0};
  const msg::LaserScan s = single_beam(4.5);  // beyond range_max
  for (int i = 0; i < 5; ++i) g.integrate_scan(pose, s);
  for (double x = 1.2; x < 4.3; x += 0.3) {
    EXPECT_FALSE(g.is_occupied(g.frame().world_to_cell({x, 2.5}))) << x;
  }
}

TEST(OccupancyGrid, RepeatedEvidenceSaturates) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  const Pose2D pose{1.0, 2.5, 0.0};
  const msg::LaserScan s = single_beam(2.0);
  for (int i = 0; i < 100; ++i) g.integrate_scan(pose, s);
  const CellIndex end = g.frame().world_to_cell({3.0, 2.5});
  EXPECT_LE(g.log_odds_at(end), g.config().log_odds_max + 1e-9);
  EXPECT_GT(g.probability_at(end), 0.95);
}

TEST(OccupancyGrid, ConflictingEvidenceFlips) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  const Pose2D pose{1.0, 2.5, 0.0};
  const CellIndex target = g.frame().world_to_cell({3.0, 2.5});
  for (int i = 0; i < 3; ++i) g.integrate_scan(pose, single_beam(2.0));
  EXPECT_TRUE(g.is_occupied(target));
  // Now see through that cell many times (obstacle moved away).
  for (int i = 0; i < 30; ++i) g.integrate_scan(pose, single_beam(3.4));
  EXPECT_FALSE(g.is_occupied(target));
}

TEST(OccupancyGrid, MessageRoundTripPreservesStates) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  const Pose2D pose{1.0, 2.5, 0.0};
  for (int i = 0; i < 10; ++i) g.integrate_scan(pose, single_beam(2.0));
  const msg::OccupancyGridMsg m = g.to_msg(1.0);
  EXPECT_EQ(m.width, g.width());
  const OccupancyGrid back = OccupancyGrid::from_msg(m);
  const CellIndex occ = g.frame().world_to_cell({3.0, 2.5});
  const CellIndex free = g.frame().world_to_cell({2.0, 2.5});
  EXPECT_TRUE(back.is_occupied(occ));
  EXPECT_TRUE(back.is_free(free));
  EXPECT_TRUE(back.is_unknown({0, 0}));
}

TEST(OccupancyGrid, FromBinarySeedsKnownMap) {
  sim::World w(4.0, 4.0);
  w.add_box({2.0, 0.0}, {2.2, 4.0});
  const OccupancyGrid g =
      OccupancyGrid::from_binary(w.frame(), w.grid());
  EXPECT_TRUE(g.is_occupied(g.frame().world_to_cell({2.1, 1.0})));
  EXPECT_TRUE(g.is_free(g.frame().world_to_cell({1.0, 1.0})));
  EXPECT_EQ(g.known_cells(), static_cast<size_t>(g.width()) * g.height());
}

TEST(OccupancyGrid, FullWorldMappingMatchesGroundTruth) {
  sim::World w(6.0, 6.0);
  w.add_outer_walls(0.2);
  w.add_disc({3.0, 3.0}, 0.4);
  sim::LidarConfig lc;
  lc.range_noise_sigma = 0.0;
  sim::Lidar lidar(lc);
  OccupancyGridConfig cfg;
  cfg.resolution = 0.1;
  OccupancyGrid g({0, 0}, 6.0, 6.0, cfg);
  // Scan from several free poses around the disc.
  for (const Point2D p : {Point2D{1.0, 1.0}, {5.0, 1.0}, {1.0, 5.0}, {5.0, 5.0},
                          {1.5, 3.0}}) {
    for (int rep = 0; rep < 3; ++rep) {
      g.integrate_scan({p.x, p.y, 0.0}, lidar.scan(w, {p.x, p.y, 0.0}, 0.0));
    }
  }
  // The disc's center should be mapped occupied; open floor should be free.
  EXPECT_TRUE(g.is_occupied(g.frame().world_to_cell({2.62, 3.0})));
  EXPECT_TRUE(g.is_free(g.frame().world_to_cell({1.5, 1.5})));
  EXPECT_GT(g.known_area_m2(), 15.0);
}

TEST(OccupancyGrid, TouchedCellCountReported) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  const size_t touched = g.integrate_scan({1.0, 2.5, 0.0}, single_beam(2.0));
  // 2 m beam at 0.1 m resolution ≈ 20 cells.
  EXPECT_GE(touched, 15u);
  EXPECT_LE(touched, 25u);
}

TEST(OccupancyGrid, CopySharesCellsUntilWrite) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  g.integrate_scan({1.0, 2.5, 0.0}, single_beam(2.0));
  OccupancyGrid copy = g;  // resample-style copy: O(1), shared block
  EXPECT_TRUE(copy.shares_cells_with(g));
  EXPECT_EQ(copy.write_version(), g.write_version());

  // Copy's 1 m beam puts a hit where the original saw free space.
  const CellIndex hit = g.frame().world_to_cell({2.0, 2.5});
  const double before = g.log_odds_at(hit);
  copy.integrate_scan({1.0, 2.5, 0.0}, single_beam(1.0));
  EXPECT_FALSE(copy.shares_cells_with(g));  // first write detached
  EXPECT_NE(copy.write_version(), g.write_version());
  EXPECT_GT(copy.log_odds_at(hit), before);
  EXPECT_EQ(g.log_odds_at(hit), before);  // original never sees copy's writes
}

TEST(OccupancyGrid, SaturatedReobservationKeepsSharing) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  // Saturate: repeated identical evidence clamps every touched cell.
  for (int i = 0; i < 60; ++i) g.integrate_scan({1.0, 2.5, 0.0}, single_beam(2.0));
  OccupancyGrid copy = g;
  // The same scan again produces bit-identical cell values everywhere, so the
  // no-op write skip keeps the block shared — no copy, no detach.
  copy.integrate_scan({1.0, 2.5, 0.0}, single_beam(2.0));
  EXPECT_TRUE(copy.shares_cells_with(g));
}

TEST(OccupancyGrid, DirtyTilesTrackMutations) {
  OccupancyGrid g({0, 0}, 5.0, 5.0);
  g.integrate_scan({1.0, 2.5, 0.0}, single_beam(2.0));
  const uint64_t base = g.write_version();
  EXPECT_EQ(g.dirty_tiles_since(base), 0u);
  g.integrate_scan({1.0, 2.5, 0.0}, single_beam(1.0));
  const size_t dirty = g.dirty_tiles_since(base);
  EXPECT_GT(dirty, 0u);
  EXPECT_LT(dirty, g.tile_count());  // a single beam touches few tiles
}

}  // namespace
}  // namespace lgv::perception
