#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace lgv::sim {
namespace {

void expect_valid(const Scenario& s) {
  EXPECT_FALSE(s.world.collides(s.start.position(), 0.12))
      << "start pose collides";
  EXPECT_FALSE(s.world.collides(s.goal.position(), 0.12)) << "goal collides";
  EXPECT_GE(s.waypoints.size(), 2u);
  for (const Point2D& wp : s.waypoints) {
    EXPECT_FALSE(s.world.occupied(wp)) << "waypoint " << wp.x << "," << wp.y;
  }
}

TEST(Scenario, LabIsValid) { expect_valid(make_lab_scenario()); }
TEST(Scenario, OfficeIsValid) { expect_valid(make_office_scenario()); }
TEST(Scenario, ObstacleCourseIsValid) { expect_valid(make_obstacle_course_scenario()); }
TEST(Scenario, OpenIsValid) { expect_valid(make_open_scenario()); }

TEST(Scenario, LabHasInteriorStructure) {
  const Scenario s = make_lab_scenario();
  // The interior wall at x=4 blocks direct line of sight start→goal.
  EXPECT_FALSE(s.world.line_of_sight(s.start.position(), s.goal.position()));
}

TEST(ScanLog, ProducesRequestedScans) {
  const Scenario s = make_lab_scenario();
  const auto log = record_scan_log(s, 0.4, 0.2, 50);
  ASSERT_EQ(log.size(), 50u);
  for (const auto& e : log) {
    EXPECT_EQ(e.scan.ranges.size(), 360u);
    EXPECT_FALSE(s.world.occupied(e.true_pose.position()));
  }
}

TEST(ScanLog, OdometryDriftsFromTruth) {
  const Scenario s = make_lab_scenario();
  const auto log = record_scan_log(s, 0.4, 0.2, 120);
  // Early entries: small drift; late entries: measurable drift.
  const double early = distance(log[5].odom_pose.position(),
                                log[5].true_pose.position());
  const double late = distance(log.back().odom_pose.position(),
                               log.back().true_pose.position());
  EXPECT_LT(early, 0.3);
  EXPECT_GT(late, 0.02);
}

TEST(ScanLog, DeterministicPerSeed) {
  const Scenario s = make_open_scenario();
  const auto a = record_scan_log(s, 0.4, 0.2, 20, 9);
  const auto b = record_scan_log(s, 0.4, 0.2, 20, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scan.ranges, b[i].scan.ranges);
    EXPECT_EQ(a[i].odom_pose, b[i].odom_pose);
  }
}

TEST(ScanLog, TimestampsAdvanceUniformly) {
  const Scenario s = make_open_scenario();
  const auto log = record_scan_log(s, 0.4, 0.25, 10);
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_NEAR(log[i].scan.header.stamp - log[i - 1].scan.header.stamp, 0.25, 1e-9);
  }
}

}  // namespace
}  // namespace lgv::sim
