#include "sim/random_world.h"

#include <gtest/gtest.h>

#include "core/mission_runner.h"

namespace lgv::sim {
namespace {

TEST(RandomWorld, EndpointsAlwaysClear) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const Scenario s = make_random_scenario(seed);
    EXPECT_FALSE(s.world.collides(s.start.position(), 0.15)) << "seed " << seed;
    EXPECT_FALSE(s.world.collides(s.goal.position(), 0.15)) << "seed " << seed;
  }
}

TEST(RandomWorld, DeterministicPerSeed) {
  const Scenario a = make_random_scenario(42);
  const Scenario b = make_random_scenario(42);
  EXPECT_EQ(a.world.grid(), b.world.grid());
}

TEST(RandomWorld, DifferentSeedsDiffer) {
  const Scenario a = make_random_scenario(1);
  const Scenario b = make_random_scenario(2);
  EXPECT_NE(a.world.grid(), b.world.grid());
}

TEST(RandomWorld, ObstacleCountRoughlyAsConfigured) {
  RandomWorldConfig cfg;
  cfg.disc_obstacles = 8;
  cfg.box_obstacles = 4;
  const Scenario s = make_random_scenario(7, cfg);
  size_t solid = 0;
  for (uint8_t v : s.world.grid().data()) solid += v != 0;
  // More clutter than just the outer walls.
  const Scenario empty = make_random_scenario(7, {10.0, 10.0, 0, 0});
  size_t walls_only = 0;
  for (uint8_t v : empty.world.grid().data()) walls_only += v != 0;
  EXPECT_GT(solid, walls_only + 200);
}

// Robustness sweep: offloaded navigation completes across random layouts.
class RandomNavigation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNavigation, OffloadedNavigationSucceeds) {
  const Scenario s = make_random_scenario(GetParam());
  core::MissionConfig cfg;
  cfg.rollout_samples = 200;
  cfg.timeout = 500.0;
  core::MissionRunner runner(
      s,
      core::offload_plan("gw8", platform::Host::kEdgeGateway, 8,
                         core::WorkloadKind::kNavigationWithMap),
      cfg);
  const core::MissionReport r = runner.run();
  EXPECT_TRUE(r.success) << "seed " << GetParam() << ": stopped after "
                         << r.completion_time << " s at distance "
                         << r.distance_traveled;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNavigation,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace lgv::sim
