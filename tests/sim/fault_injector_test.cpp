#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include "common/telemetry/telemetry.h"
#include "net/wireless_channel.h"

namespace lgv::sim {
namespace {

TEST(FaultSchedule, ParseFormatRoundTrip) {
  const std::string text =
      "# chaos script\n"
      "outage 10 5\n"
      "loss_burst 4 6 0.35\n"
      "latency 20 5 0.04\n"
      "rssi_cliff 7 14 18   # handoff\n"
      "\n"
      "worker_stall 30 4\n"
      "worker_crash 50 2\n";
  const FaultSchedule s = parse_fault_schedule(text);
  ASSERT_EQ(s.events.size(), 6u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kOutage);
  EXPECT_DOUBLE_EQ(s.events[0].start, 10.0);
  EXPECT_DOUBLE_EQ(s.events[0].duration, 5.0);
  EXPECT_EQ(s.events[1].kind, FaultKind::kLossBurst);
  EXPECT_DOUBLE_EQ(s.events[1].magnitude, 0.35);
  EXPECT_EQ(s.events[3].kind, FaultKind::kRssiCliff);
  EXPECT_DOUBLE_EQ(s.events[3].magnitude, 18.0);
  EXPECT_DOUBLE_EQ(s.horizon(), 52.0);

  const FaultSchedule again = parse_fault_schedule(format_fault_schedule(s));
  ASSERT_EQ(again.events.size(), s.events.size());
  for (size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, s.events[i].kind);
    EXPECT_DOUBLE_EQ(again.events[i].start, s.events[i].start);
    EXPECT_DOUBLE_EQ(again.events[i].duration, s.events[i].duration);
    EXPECT_DOUBLE_EQ(again.events[i].magnitude, s.events[i].magnitude);
  }
}

TEST(FaultSchedule, ParseRejectsUnknownKindAndMissingFields) {
  EXPECT_THROW(parse_fault_schedule("meteor 1 2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_schedule("outage 1"), std::invalid_argument);
}

TEST(FaultInjector, OverrideComposesActiveEvents) {
  FaultSchedule s;
  s.add(FaultKind::kOutage, 10.0, 5.0)
      .add(FaultKind::kLossBurst, 8.0, 10.0, 0.2)
      .add(FaultKind::kLossBurst, 12.0, 2.0, 0.3)
      .add(FaultKind::kLatencyInflation, 0.0, 100.0, 0.05)
      .add(FaultKind::kRssiCliff, 11.0, 4.0, 18.0)
      .add(FaultKind::kWorkerStall, 12.0, 1.0);  // must not touch the channel
  const FaultInjector inj(s);

  const net::ChannelOverride before = inj.override_at(5.0);
  EXPECT_FALSE(before.force_outage);
  EXPECT_DOUBLE_EQ(before.extra_loss, 0.0);
  EXPECT_DOUBLE_EQ(before.extra_latency_s, 0.05);

  const net::ChannelOverride during = inj.override_at(12.5);
  EXPECT_TRUE(during.force_outage);
  EXPECT_DOUBLE_EQ(during.extra_loss, 0.5);  // bursts stack
  EXPECT_DOUBLE_EQ(during.rssi_offset_db, -18.0);

  // Windows are half-open: the outage is gone exactly at its end.
  EXPECT_TRUE(inj.override_at(14.999).force_outage);
  EXPECT_FALSE(inj.override_at(15.0).force_outage);
}

TEST(FaultInjector, UpdateAppliesOverrideToChannel) {
  net::ChannelConfig cfg;
  cfg.wap_position = {0.0, 0.0};
  net::WirelessChannel channel(cfg);
  channel.set_robot_position({1.0, 0.0});  // right next to the WAP
  ASSERT_FALSE(channel.in_outage());
  const double healthy_rssi = channel.mean_rssi_dbm();
  const double healthy_loss = channel.loss_probability();

  FaultSchedule s;
  s.add(FaultKind::kOutage, 10.0, 5.0, 0.0)
      .add(FaultKind::kRssiCliff, 10.0, 5.0, 20.0)
      .add(FaultKind::kLossBurst, 10.0, 5.0, 0.4);
  FaultInjector inj(s);
  inj.attach_channel(&channel);

  inj.update(12.0);
  EXPECT_TRUE(channel.in_outage());  // scripted, despite the strong signal
  EXPECT_NEAR(channel.mean_rssi_dbm(), healthy_rssi - 20.0, 1e-9);
  EXPECT_GE(channel.loss_probability(), healthy_loss + 0.4 - 1e-9);

  inj.update(20.0);  // faults over: back to pure geometry
  EXPECT_FALSE(channel.in_outage());
  EXPECT_NEAR(channel.mean_rssi_dbm(), healthy_rssi, 1e-9);
  EXPECT_EQ(inj.activated_events(), 3u);
}

TEST(FaultInjector, WorkerQueriesFollowStallAndCrashWindows) {
  FaultSchedule s;
  s.add(FaultKind::kWorkerStall, 10.0, 4.0).add(FaultKind::kWorkerCrash, 20.0, 3.0);
  const FaultInjector inj(s);

  EXPECT_FALSE(inj.worker_unavailable(9.9));
  EXPECT_TRUE(inj.worker_unavailable(10.0));
  EXPECT_TRUE(inj.worker_unavailable(21.0));  // crash recovery counts as down
  EXPECT_FALSE(inj.worker_unavailable(23.0));

  EXPECT_TRUE(inj.worker_crashed_in(19.0, 25.0));
  EXPECT_TRUE(inj.worker_crashed_in(21.0, 22.0));  // started mid-crash
  EXPECT_FALSE(inj.worker_crashed_in(0.0, 15.0));  // stall is not a crash
}

TEST(FaultInjector, RemoteCompletionPausesThroughDownWindows) {
  FaultSchedule s;
  s.add(FaultKind::kWorkerStall, 10.0, 4.0).add(FaultKind::kWorkerStall, 20.0, 2.0);
  const FaultInjector inj(s);

  // Clear of every window: unchanged.
  EXPECT_DOUBLE_EQ(inj.remote_completion(0.0, 1.0), 1.0);
  // 9.5 + 1.0s of work: 0.5s runs before the 4s stall, the rest after it.
  EXPECT_DOUBLE_EQ(inj.remote_completion(9.5, 1.0), 14.5);
  // Started inside the window: nothing happens until it ends.
  EXPECT_DOUBLE_EQ(inj.remote_completion(11.0, 1.0), 15.0);
  // Long enough to span both windows.
  EXPECT_DOUBLE_EQ(inj.remote_completion(9.0, 10.0), 25.0);
}

TEST(FaultInjector, LinkRestoredAfterChainsOutageWindows) {
  FaultSchedule s;
  s.add(FaultKind::kOutage, 10.0, 5.0).add(FaultKind::kOutage, 15.0, 2.0);
  const FaultInjector inj(s);
  EXPECT_DOUBLE_EQ(inj.link_restored_after(5.0), 5.0);
  EXPECT_DOUBLE_EQ(inj.link_restored_after(12.0), 17.0);  // windows merge
  EXPECT_TRUE(inj.link_forced_out(16.0));
  EXPECT_FALSE(inj.link_forced_out(17.0));
}

TEST(FaultInjector, UpdateEmitsTelemetryOncePerEvent) {
  telemetry::Telemetry telemetry;
  FaultSchedule s;
  s.add(FaultKind::kOutage, 1.0, 2.0).add(FaultKind::kWorkerStall, 5.0, 1.0);
  FaultInjector inj(s);
  inj.set_telemetry(&telemetry);

  inj.update(0.5);
  EXPECT_EQ(inj.activated_events(), 0u);
  inj.update(1.5);
  inj.update(2.0);  // same event again: no double-count
  EXPECT_EQ(inj.activated_events(), 1u);
  EXPECT_DOUBLE_EQ(
      telemetry.metrics().counter("fault_injected_total", {{"kind", "outage"}}).value(),
      1.0);
  inj.update(10.0);
  EXPECT_EQ(inj.activated_events(), 2u);
  EXPECT_GE(telemetry.tracer().events().size(), 2u);
}

TEST(FaultInjector, ChaosScheduleShape) {
  const FaultSchedule s = make_chaos_schedule(30.0, 0.5, 100.0);
  double outage_total = 0.0;
  double outage_start = -1.0;
  size_t stalls = 0;
  for (const FaultEvent& e : s.events) {
    if (e.kind == FaultKind::kOutage) {
      outage_total += e.duration;
      outage_start = e.start;
    }
    if (e.kind == FaultKind::kWorkerStall) {
      ++stalls;
      EXPECT_DOUBLE_EQ(e.duration, 10.0);  // 50% of the 20s period
    }
  }
  EXPECT_DOUBLE_EQ(outage_total, 30.0);
  // Mid-mission: inside the nominal run, not at its edges.
  EXPECT_GT(outage_start, 0.0);
  EXPECT_LT(outage_start, 100.0);
  EXPECT_GT(stalls, 2u);

  const FaultSchedule none = make_chaos_schedule(0.0, 0.0, 100.0);
  EXPECT_TRUE(none.empty());
}

TEST(FaultInjector, WireFaultKindsRoundTripThroughScheduleText) {
  FaultSchedule s;
  s.add(FaultKind::kCorruptBurst, 0.0, 60.0, 1e-3);
  s.add(FaultKind::kTruncate, 10.0, 5.0, 0.2);
  s.add(FaultKind::kDuplicate, 20.0, 5.0, 0.3);
  s.add(FaultKind::kReorder, 0.0, 60.0, 0.05);
  const FaultSchedule parsed = parse_fault_schedule(format_fault_schedule(s));
  ASSERT_EQ(parsed.events.size(), s.events.size());
  for (size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, s.events[i].kind);
    EXPECT_DOUBLE_EQ(parsed.events[i].start, s.events[i].start);
    EXPECT_DOUBLE_EQ(parsed.events[i].duration, s.events[i].duration);
    EXPECT_DOUBLE_EQ(parsed.events[i].magnitude, s.events[i].magnitude);
  }
}

TEST(FaultInjector, WireFaultsComposeIntoChannelOverride) {
  FaultSchedule s;
  // Two overlapping corruption bursts compose as independent flip sources,
  // not by naive addition (which could exceed 1).
  s.add(FaultKind::kCorruptBurst, 0.0, 10.0, 0.5);
  s.add(FaultKind::kCorruptBurst, 5.0, 10.0, 0.5);
  s.add(FaultKind::kReorder, 0.0, 10.0, 0.02);
  s.add(FaultKind::kReorder, 0.0, 10.0, 0.05);  // max wins, not sum
  s.add(FaultKind::kTruncate, 0.0, 10.0, 0.25);
  s.add(FaultKind::kDuplicate, 0.0, 10.0, 0.1);
  FaultInjector inj(std::move(s));

  const net::ChannelOverride mid = inj.override_at(7.0);
  EXPECT_DOUBLE_EQ(mid.corrupt_bit_prob, 1.0 - 0.5 * 0.5);
  EXPECT_DOUBLE_EQ(mid.reorder_jitter_s, 0.05);
  EXPECT_DOUBLE_EQ(mid.truncate_prob, 0.25);
  EXPECT_DOUBLE_EQ(mid.duplicate_prob, 0.1);
  EXPECT_TRUE(mid.corrupts());
  EXPECT_TRUE(mid.any());

  const net::ChannelOverride late = inj.override_at(12.0);
  EXPECT_DOUBLE_EQ(late.corrupt_bit_prob, 0.5);  // only the second burst left
  EXPECT_FALSE(inj.override_at(20.0).corrupts());
}

TEST(FaultInjector, CorruptionScheduleCoversWholeMission) {
  const FaultSchedule s = make_corruption_schedule(1e-3, 0.05, 100.0);
  // The corruption and reorder axes persist even if faults slow the mission
  // to 3× its nominal duration; truncate/duplicate are short probes.
  bool has_trunc = false, has_dup = false;
  for (const FaultEvent& e : s.events) {
    if (e.kind == FaultKind::kCorruptBurst) {
      EXPECT_DOUBLE_EQ(e.magnitude, 1e-3);
      EXPECT_GE(e.end(), 300.0);
    }
    if (e.kind == FaultKind::kReorder) EXPECT_GE(e.end(), 300.0);
    if (e.kind == FaultKind::kTruncate) has_trunc = true;
    if (e.kind == FaultKind::kDuplicate) has_dup = true;
  }
  EXPECT_TRUE(has_trunc);
  EXPECT_TRUE(has_dup);
  // A corruption-only sweep point still exercises truncation/duplication.
  EXPECT_FALSE(make_corruption_schedule(0.0, 0.0, 100.0).empty());
}

// ---- fleet worker-pool faults (PR 9) ----------------------------------------

TEST(FaultInjector, PoolFaultKindsRoundTripThroughScheduleText) {
  FaultSchedule s;
  s.add(FaultKind::kPoolCrash, 30.0, 10.0);
  s.add(FaultKind::kPoolDegrade, 45.0, 20.0, 2.0);
  s.add(FaultKind::kPoolPartition, 26.0, 4.0, 0.5);
  const FaultSchedule back = parse_fault_schedule(format_fault_schedule(s));
  ASSERT_EQ(back.events.size(), 3u);
  EXPECT_EQ(back.events[0].kind, FaultKind::kPoolCrash);
  EXPECT_EQ(back.events[1].kind, FaultKind::kPoolDegrade);
  EXPECT_DOUBLE_EQ(back.events[1].magnitude, 2.0);
  EXPECT_EQ(back.events[2].kind, FaultKind::kPoolPartition);
  EXPECT_DOUBLE_EQ(back.events[2].magnitude, 0.5);
  // The names are queryable like every other kind.
  EXPECT_EQ(fault_kind_from_name("pool_crash"), FaultKind::kPoolCrash);
  EXPECT_STREQ(fault_kind_name(FaultKind::kPoolPartition), "pool_partition");
}

TEST(FaultInjector, PoolQueriesFollowCrashWindows) {
  FaultSchedule s;
  s.add(FaultKind::kPoolCrash, 10.0, 5.0);
  s.add(FaultKind::kPoolCrash, 14.0, 6.0);  // overlapping → merged to [10,20)
  s.add(FaultKind::kWorkerCrash, 50.0, 5.0);  // private-worker fault: ignored
  const FaultInjector inj(std::move(s));

  EXPECT_FALSE(inj.pool_down(9.9));
  EXPECT_TRUE(inj.pool_down(10.0));
  EXPECT_TRUE(inj.pool_down(19.9));
  EXPECT_FALSE(inj.pool_down(20.0));
  EXPECT_FALSE(inj.pool_down(52.0));  // worker_crash is not a pool fault

  EXPECT_TRUE(inj.pool_crashed_in(5.0, 11.0));   // crosses the start
  EXPECT_TRUE(inj.pool_crashed_in(12.0, 13.0));  // entirely inside
  EXPECT_FALSE(inj.pool_crashed_in(0.0, 10.0));  // [t0, t1) excludes start
  EXPECT_FALSE(inj.pool_crashed_in(20.0, 60.0));

  EXPECT_DOUBLE_EQ(inj.pool_restored_after(12.0), 20.0);
  EXPECT_DOUBLE_EQ(inj.pool_restored_after(25.0), 25.0);
}

TEST(FaultInjector, PoolDegradeReportsWorstActiveWindow) {
  FaultSchedule s;
  s.add(FaultKind::kPoolDegrade, 10.0, 20.0, 2.0);
  s.add(FaultKind::kPoolDegrade, 15.0, 5.0, 3.0);  // worse, shorter
  const FaultInjector inj(std::move(s));

  EXPECT_EQ(inj.pool_cores_lost(5.0), 0);
  EXPECT_EQ(inj.pool_cores_lost(12.0), 2);
  EXPECT_EQ(inj.pool_cores_lost(17.0), 3);  // max over active, not the sum
  EXPECT_EQ(inj.pool_cores_lost(25.0), 2);
  EXPECT_EQ(inj.pool_cores_lost(30.0), 0);
  EXPECT_DOUBLE_EQ(inj.pool_degrade_end(12.0), 30.0);
  EXPECT_DOUBLE_EQ(inj.pool_degrade_end(40.0), 40.0);  // none active → t
}

TEST(FaultInjector, SessionPartitionIsDeterministicAndApproximatesFraction) {
  FaultSchedule s;
  s.add(FaultKind::kPoolPartition, 10.0, 5.0, 0.5);
  const FaultInjector a(s);
  const FaultInjector b(s);

  int cut = 0;
  for (uint32_t id = 1; id <= 256; ++id) {
    const bool p = a.session_partitioned(id, 12.0);
    // Same schedule → same subset, on every injector instance.
    EXPECT_EQ(p, b.session_partitioned(id, 12.0));
    // Stable for the whole window.
    EXPECT_EQ(p, a.session_partitioned(id, 14.9));
    if (p) ++cut;
  }
  // The hash splits ~half the sessions; allow a generous band.
  EXPECT_GT(cut, 256 / 4);
  EXPECT_LT(cut, 3 * 256 / 4);
  // Outside the window nobody is partitioned.
  EXPECT_FALSE(a.session_partitioned(1, 9.9));
  EXPECT_FALSE(a.session_partitioned(1, 15.0));
}

TEST(FaultInjector, DistinctPartitionWindowsCutDistinctSubsets) {
  FaultSchedule s;
  s.add(FaultKind::kPoolPartition, 10.0, 5.0, 0.5);
  s.add(FaultKind::kPoolPartition, 30.0, 5.0, 0.5);
  const FaultInjector inj(std::move(s));

  // The subset is salted with the window's start time: the two windows must
  // not strand the same vehicles twice.
  int differing = 0;
  for (uint32_t id = 1; id <= 256; ++id) {
    if (inj.session_partitioned(id, 12.0) != inj.session_partitioned(id, 32.0))
      ++differing;
  }
  EXPECT_GT(differing, 0);
  // Magnitude extremes: 0 cuts nobody, 1 cuts everybody.
  FaultSchedule ext;
  ext.add(FaultKind::kPoolPartition, 0.0, 5.0, 0.0);
  ext.add(FaultKind::kPoolPartition, 10.0, 5.0, 1.0);
  const FaultInjector e(std::move(ext));
  for (uint32_t id = 1; id <= 32; ++id) {
    EXPECT_FALSE(e.session_partitioned(id, 2.0));
    EXPECT_TRUE(e.session_partitioned(id, 12.0));
  }
}

TEST(FaultInjector, PoolChaosScheduleShape) {
  const FaultSchedule s = make_pool_chaos_schedule(/*crash_at=*/60.0,
                                                   /*crash_s=*/10.0,
                                                   /*partition_frac=*/0.25,
                                                   /*degraded_cores=*/2.0,
                                                   /*degrade_s=*/20.0);
  bool has_crash = false, has_partition = false, has_degrade = false;
  for (const FaultEvent& e : s.events) {
    if (e.kind == FaultKind::kPoolCrash) {
      has_crash = true;
      EXPECT_DOUBLE_EQ(e.start, 60.0);
      EXPECT_DOUBLE_EQ(e.duration, 10.0);
    }
    if (e.kind == FaultKind::kPoolPartition) {
      has_partition = true;
      EXPECT_DOUBLE_EQ(e.magnitude, 0.25);
      EXPECT_LE(e.end(), 60.0);  // the partition foreshadows the crash
    }
    if (e.kind == FaultKind::kPoolDegrade) {
      has_degrade = true;
      EXPECT_DOUBLE_EQ(e.magnitude, 2.0);
      EXPECT_GE(e.start, 70.0);  // the pool restarts degraded
    }
  }
  EXPECT_TRUE(has_crash);
  EXPECT_TRUE(has_partition);
  EXPECT_TRUE(has_degrade);
}

}  // namespace
}  // namespace lgv::sim
