#include "sim/power.h"

#include <gtest/gtest.h>

namespace lgv::sim {
namespace {

TEST(ComponentBudget, TableIValues) {
  const ComponentBudget tb3 = turtlebot3_budget();
  EXPECT_DOUBLE_EQ(tb3.sensor_w, 1.0);
  EXPECT_DOUBLE_EQ(tb3.motor_w, 6.7);
  EXPECT_DOUBLE_EQ(tb3.microcontroller_w, 1.0);
  EXPECT_DOUBLE_EQ(tb3.embedded_computer_w, 6.5);
  EXPECT_NEAR(tb3.total(), 15.2, 1e-9);

  EXPECT_DOUBLE_EQ(turtlebot2_budget().embedded_computer_w, 15.0);
  EXPECT_DOUBLE_EQ(pioneer3dx_budget().motor_w, 10.6);
}

TEST(PowerModel, MotorPowerEq1d) {
  PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.motor_power(0.0, 0.0), 0.0);  // parked
  const double v = 0.5;
  const double expected = pm.config().transforming_loss_w +
                          pm.config().mass_kg * (9.81 * pm.config().friction) * v;
  EXPECT_NEAR(pm.motor_power(v, 0.0), expected, 1e-9);
  // Acceleration adds traction power.
  EXPECT_GT(pm.motor_power(v, 0.3), pm.motor_power(v, 0.0));
  // Deceleration doesn't go below the steady term.
  EXPECT_DOUBLE_EQ(pm.motor_power(v, -0.3), pm.motor_power(v, 0.0));
}

TEST(PowerModel, MotorPowerGrowsWithVelocity) {
  PowerModel pm;
  double prev = 0.0;
  for (double v = 0.1; v <= 1.0; v += 0.1) {
    const double p = pm.motor_power(v, 0.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, ComputerPowerAtFullLoadMatchesTableI) {
  PowerModel pm;
  // RPi at full useful load: 4 cores × 1.4 GHz × 0.6 IPC.
  const double full_load = 4.0 * 1.4e9 * 0.6;
  const double p = pm.computer_power(full_load, 1.4);
  EXPECT_GT(p, 5.0);
  EXPECT_LT(p, 8.0);  // Table I budget: 6.5 W
  // Idle floor.
  EXPECT_DOUBLE_EQ(pm.computer_power(0.0, 1.4), pm.config().computer_idle_w);
}

TEST(PowerModel, TransmissionEnergyEq1b) {
  PowerModel pm;
  // 2.94 KB at 20 Mbps: t = 2940*8/20e6 s.
  const double e = pm.transmission_energy(2940.0, 20e6);
  EXPECT_NEAR(e, pm.config().transmit_power_w * 2940.0 * 8.0 / 20e6, 1e-12);
  EXPECT_DOUBLE_EQ(pm.transmission_energy(100.0, 0.0), 0.0);
}

TEST(EnergyMeter, IntegratesComponents) {
  EnergyMeter meter;
  PowerDraw draw{1.0, 2.0, 0.5, 3.0, 0.1};
  meter.accumulate(draw, 10.0);
  EXPECT_DOUBLE_EQ(meter.energy().sensor, 10.0);
  EXPECT_DOUBLE_EQ(meter.energy().motor, 20.0);
  EXPECT_DOUBLE_EQ(meter.energy().microcontroller, 5.0);
  EXPECT_DOUBLE_EQ(meter.energy().computer, 30.0);
  EXPECT_DOUBLE_EQ(meter.energy().wireless, 1.0);
  EXPECT_DOUBLE_EQ(meter.energy().total(), 66.0);
  meter.add_wireless_energy(4.0);
  meter.add_computer_energy(5.0);
  EXPECT_DOUBLE_EQ(meter.energy().total(), 75.0);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.energy().total(), 0.0);
}

TEST(Battery, DrainAndDepletion) {
  Battery b(1.0);  // 1 Wh = 3600 J
  EXPECT_DOUBLE_EQ(b.capacity_j(), 3600.0);
  b.drain(1800.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.5);
  EXPECT_FALSE(b.depleted());
  b.drain(1800.0);
  EXPECT_TRUE(b.depleted());
}

}  // namespace
}  // namespace lgv::sim
