#include "sim/lidar.h"

#include <gtest/gtest.h>

#include <numbers>

namespace lgv::sim {
namespace {

TEST(Lidar, ProducesConfiguredBeamCount) {
  World w(10.0, 10.0);
  Lidar lidar;
  const msg::LaserScan s = lidar.scan(w, {5.0, 5.0, 0.0}, 1.5);
  EXPECT_EQ(s.ranges.size(), 360u);
  EXPECT_DOUBLE_EQ(s.header.stamp, 1.5);
  EXPECT_NEAR(s.angle_max - s.angle_min, 2.0 * std::numbers::pi, 1e-9);
}

TEST(Lidar, OpenSpaceReportsNoReturn) {
  World w(100.0, 100.0);
  LidarConfig cfg;
  cfg.range_noise_sigma = 0.0;
  Lidar lidar(cfg);
  const msg::LaserScan s = lidar.scan(w, {50.0, 50.0, 0.0}, 0.0);
  for (float r : s.ranges) EXPECT_GT(r, s.range_max);
}

TEST(Lidar, WallAheadMeasuredAccurately) {
  World w(10.0, 10.0);
  w.add_box({7.0, 0.0}, {7.3, 10.0});
  LidarConfig cfg;
  cfg.range_noise_sigma = 0.0;
  Lidar lidar(cfg);
  const msg::LaserScan s = lidar.scan(w, {5.0, 5.0, 0.0}, 0.0);
  // Beam pointing forward (angle 0 relative to pose) is at index beams/2.
  const size_t fwd = s.ranges.size() / 2;
  EXPECT_NEAR(s.ranges[fwd], 2.0, 0.1);
}

TEST(Lidar, RotatedPoseRotatesScan) {
  World w(10.0, 10.0);
  w.add_box({7.0, 0.0}, {7.3, 10.0});  // wall to the east
  LidarConfig cfg;
  cfg.range_noise_sigma = 0.0;
  Lidar lidar(cfg);
  // Facing north: the wall is to the right (relative angle -pi/2).
  const msg::LaserScan s =
      lidar.scan(w, {5.0, 5.0, std::numbers::pi / 2.0}, 0.0);
  const size_t right = s.ranges.size() / 4;  // angle_min + quarter of fov
  EXPECT_NEAR(s.ranges[right], 2.0, 0.15);
}

TEST(Lidar, NoiseIsBoundedAndDeterministic) {
  World w(10.0, 10.0);
  w.add_box({7.0, 0.0}, {7.3, 10.0});
  Lidar a({}, 42), b({}, 42);
  const msg::LaserScan sa = a.scan(w, {5.0, 5.0, 0.0}, 0.0);
  const msg::LaserScan sb = b.scan(w, {5.0, 5.0, 0.0}, 0.0);
  EXPECT_EQ(sa.ranges, sb.ranges);
}

TEST(Lidar, RangesClampedToValidInterval) {
  World w(10.0, 10.0);
  w.add_disc({5.1, 5.0}, 0.05);  // obstacle almost touching the sensor
  Lidar lidar;
  const msg::LaserScan s = lidar.scan(w, {5.0, 5.0, 0.0}, 0.0);
  for (float r : s.ranges) {
    // float storage may round the clamped min down by one ULP.
    if (r <= s.range_max) EXPECT_GE(r, s.range_min - 1e-6);
  }
}

}  // namespace
}  // namespace lgv::sim
