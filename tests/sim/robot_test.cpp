#include "sim/robot.h"

#include <gtest/gtest.h>

#include <numbers>

namespace lgv::sim {
namespace {

TEST(Robot, AcceleratesTowardCommandUnderLimit) {
  World w(40.0, 10.0);
  DiffDriveRobot robot({}, {5.0, 5.0, 0.0});
  robot.set_command({1.0, 0.0});
  robot.step(w, 0.1);
  // a_max = 0.5 → at most 0.05 m/s gained in 0.1 s.
  EXPECT_NEAR(robot.velocity().linear, 0.05, 1e-9);
  for (int i = 0; i < 100; ++i) robot.step(w, 0.1);
  EXPECT_NEAR(robot.velocity().linear, 1.0, 1e-6);
}

TEST(Robot, StraightLineMotion) {
  World w(20.0, 20.0);
  RobotConfig cfg;
  cfg.odom_pos_noise = 0.0;
  cfg.odom_theta_noise = 0.0;
  DiffDriveRobot robot(cfg, {5.0, 5.0, 0.0});
  robot.set_command({0.5, 0.0});
  for (int i = 0; i < 200; ++i) robot.step(w, 0.05);
  EXPECT_GT(robot.pose().x, 8.0);
  EXPECT_NEAR(robot.pose().y, 5.0, 1e-6);
  EXPECT_NEAR(robot.pose().theta, 0.0, 1e-9);
}

TEST(Robot, TurnsWithAngularVelocity) {
  World w(20.0, 20.0);
  DiffDriveRobot robot({}, {10.0, 10.0, 0.0});
  robot.set_command({0.0, 1.0});
  for (int i = 0; i < 100; ++i) robot.step(w, 0.05);
  EXPECT_GT(std::abs(robot.pose().theta), 1.0);
  // Pure rotation: position unchanged.
  EXPECT_NEAR(robot.pose().x, 10.0, 1e-9);
  EXPECT_NEAR(robot.pose().y, 10.0, 1e-9);
}

TEST(Robot, ArcIntegrationIsExact) {
  World w(40.0, 40.0);
  RobotConfig cfg;
  cfg.odom_pos_noise = 0.0;
  cfg.odom_theta_noise = 0.0;
  cfg.max_linear_accel = 100.0;   // reach command instantly
  cfg.max_angular_accel = 100.0;
  DiffDriveRobot robot(cfg, {20.0, 20.0, 0.0});
  robot.set_command({0.5, 0.5});  // radius 1 circle
  const int steps = static_cast<int>(2.0 * std::numbers::pi / 0.5 / 0.01);
  for (int i = 0; i < steps; ++i) robot.step(w, 0.01);
  // After one full revolution the robot returns to its start.
  EXPECT_NEAR(robot.pose().x, 20.0, 0.05);
  EXPECT_NEAR(robot.pose().y, 20.0, 0.05);
}

TEST(Robot, StopsAtWall) {
  World w(10.0, 10.0);
  w.add_box({6.0, 0.0}, {6.3, 10.0});
  DiffDriveRobot robot({}, {5.0, 5.0, 0.0});
  robot.set_command({1.0, 0.0});
  for (int i = 0; i < 400; ++i) robot.step(w, 0.05);
  EXPECT_TRUE(robot.collided());
  EXPECT_LT(robot.pose().x, 6.0);
  EXPECT_DOUBLE_EQ(robot.velocity().linear, 0.0);
}

TEST(Robot, HardVelocityLimitsRespected) {
  World w(50.0, 50.0);
  DiffDriveRobot robot({}, {25.0, 25.0, 0.0});
  robot.set_command({99.0, 99.0});
  for (int i = 0; i < 2000; ++i) robot.step(w, 0.05);
  EXPECT_LE(robot.velocity().linear, robot.config().hard_max_linear + 1e-9);
  EXPECT_LE(robot.velocity().angular, robot.config().hard_max_angular + 1e-9);
}

TEST(Robot, OdometryDriftsButStaysClose) {
  World w(30.0, 30.0);
  DiffDriveRobot robot({}, {5.0, 15.0, 0.0}, 77);
  robot.set_command({0.5, 0.05});
  for (int i = 0; i < 1000; ++i) robot.step(w, 0.05);
  EXPECT_GT(robot.odometry_drift(), 0.0);
  EXPECT_LT(robot.odometry_drift(), 2.0);
}

TEST(Robot, DistanceTraveledAccumulates) {
  World w(20.0, 20.0);
  RobotConfig cfg;
  cfg.odom_pos_noise = 0.0;
  cfg.odom_theta_noise = 0.0;
  DiffDriveRobot robot(cfg, {5.0, 5.0, 0.0});
  robot.set_command({0.5, 0.0});
  for (int i = 0; i < 200; ++i) robot.step(w, 0.05);
  // 10 s of motion with a ~1 s accel ramp: slightly under 5 m.
  EXPECT_NEAR(robot.distance_traveled(), 4.75, 0.1);
}

TEST(Robot, ResetRestoresState) {
  World w(10.0, 10.0);
  DiffDriveRobot robot({}, {5.0, 5.0, 0.0});
  robot.set_command({0.5, 0.0});
  for (int i = 0; i < 50; ++i) robot.step(w, 0.05);
  robot.reset({1.0, 1.0, 0.5});
  EXPECT_EQ(robot.pose(), Pose2D(1.0, 1.0, 0.5));
  EXPECT_DOUBLE_EQ(robot.velocity().linear, 0.0);
  EXPECT_DOUBLE_EQ(robot.distance_traveled(), 0.0);
}

TEST(Robot, OdometryMessageFields) {
  World w(10.0, 10.0);
  DiffDriveRobot robot({}, {5.0, 5.0, 0.0});
  const msg::Odometry o = robot.odometry(3.5, 17);
  EXPECT_DOUBLE_EQ(o.header.stamp, 3.5);
  EXPECT_EQ(o.header.seq, 17u);
  EXPECT_EQ(o.header.frame_id, "odom");
}

}  // namespace
}  // namespace lgv::sim
