#include "sim/world.h"

#include <gtest/gtest.h>

#include <numbers>

namespace lgv::sim {
namespace {

TEST(World, EmptyWorldIsFree) {
  World w(5.0, 5.0);
  EXPECT_FALSE(w.occupied({2.5, 2.5}));
  EXPECT_TRUE(w.in_bounds({2.5, 2.5}));
  EXPECT_FALSE(w.in_bounds({6.0, 2.5}));
}

TEST(World, OutsideIsSolid) {
  World w(5.0, 5.0);
  EXPECT_TRUE(w.occupied({-1.0, 2.0}));
  EXPECT_TRUE(w.occupied({2.0, 7.0}));
}

TEST(World, AddBoxMarksCells) {
  World w(5.0, 5.0);
  w.add_box({1.0, 1.0}, {2.0, 2.0});
  EXPECT_TRUE(w.occupied({1.5, 1.5}));
  EXPECT_FALSE(w.occupied({3.0, 3.0}));
}

TEST(World, AddDiscRespectsRadius) {
  World w(5.0, 5.0);
  w.add_disc({2.5, 2.5}, 0.5);
  EXPECT_TRUE(w.occupied({2.5, 2.5}));
  EXPECT_TRUE(w.occupied({2.9, 2.5}));
  EXPECT_FALSE(w.occupied({3.3, 2.5}));
}

TEST(World, OuterWallsEnclose) {
  World w(5.0, 5.0);
  w.add_outer_walls(0.1);
  EXPECT_TRUE(w.occupied({0.05, 2.5}));
  EXPECT_TRUE(w.occupied({4.97, 2.5}));
  EXPECT_TRUE(w.occupied({2.5, 0.05}));
  EXPECT_TRUE(w.occupied({2.5, 4.97}));
  EXPECT_FALSE(w.occupied({2.5, 2.5}));
}

TEST(World, RaycastHitsWall) {
  World w(10.0, 10.0);
  w.add_box({5.0, 0.0}, {5.2, 10.0});
  const double r = w.raycast({1.0, 5.0}, 0.0, 8.0);
  EXPECT_NEAR(r, 4.0, 0.1);
}

TEST(World, RaycastMaxRangeWhenClear) {
  World w(10.0, 10.0);
  EXPECT_DOUBLE_EQ(w.raycast({5.0, 5.0}, 0.7, 2.0), 2.0);
}

TEST(World, RaycastDirectional) {
  World w(10.0, 10.0);
  w.add_box({5.0, 4.0}, {5.4, 6.0});
  constexpr double pi = std::numbers::pi;
  EXPECT_LT(w.raycast({3.0, 5.0}, 0.0, 8.0), 2.5);       // east: hits
  EXPECT_DOUBLE_EQ(w.raycast({3.0, 5.0}, pi, 2.5), 2.5); // west: clear
}

TEST(World, RaycastFromInsideObstacleIsZero) {
  World w(10.0, 10.0);
  w.add_box({4.0, 4.0}, {6.0, 6.0});
  EXPECT_DOUBLE_EQ(w.raycast({5.0, 5.0}, 0.0, 8.0), 0.0);
}

TEST(World, RaycastAccuracyAcrossAngles) {
  World w(20.0, 20.0);
  w.add_disc({10.0, 10.0}, 2.0);
  constexpr double pi = std::numbers::pi;
  // From any direction, the disc surface is ~3 m from a point 5 m out.
  for (double a = 0.0; a < 2.0 * pi; a += pi / 7.0) {
    const Point2D from{10.0 + 5.0 * std::cos(a), 10.0 + 5.0 * std::sin(a)};
    const double heading = std::atan2(10.0 - from.y, 10.0 - from.x);
    const double r = w.raycast(from, heading, 10.0);
    EXPECT_NEAR(r, 3.0, 0.15) << "angle " << a;
  }
}

TEST(World, LineOfSight) {
  World w(10.0, 10.0);
  w.add_box({5.0, 0.0}, {5.2, 10.0});
  EXPECT_FALSE(w.line_of_sight({1.0, 5.0}, {9.0, 5.0}));
  EXPECT_TRUE(w.line_of_sight({1.0, 1.0}, {4.0, 9.0}));
}

TEST(World, CollisionFootprint) {
  World w(10.0, 10.0);
  w.add_box({5.0, 5.0}, {5.1, 5.1});
  EXPECT_TRUE(w.collides({5.05, 5.05}, 0.1));
  EXPECT_TRUE(w.collides({5.25, 5.05}, 0.2));  // footprint overlaps
  EXPECT_FALSE(w.collides({6.0, 6.0}, 0.2));
}

}  // namespace
}  // namespace lgv::sim
