#include "net/kernel_buffer.h"

#include <gtest/gtest.h>

namespace lgv::net {
namespace {

TEST(KernelBuffer, AcceptsUntilFull) {
  KernelBuffer buf(2);
  EXPECT_TRUE(buf.enqueue({1, 100, 0.0}));
  EXPECT_TRUE(buf.enqueue({2, 100, 0.1}));
  EXPECT_TRUE(buf.full());
  EXPECT_FALSE(buf.enqueue({3, 100, 0.2}));  // silently discarded
  EXPECT_EQ(buf.accepted(), 2u);
  EXPECT_EQ(buf.discarded(), 1u);
}

TEST(KernelBuffer, FifoOrder) {
  KernelBuffer buf(4);
  buf.enqueue({1, 10, 0.0});
  buf.enqueue({2, 20, 0.1});
  auto d1 = buf.dequeue();
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->id, 1u);
  auto d2 = buf.dequeue();
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->id, 2u);
  EXPECT_FALSE(buf.dequeue().has_value());
}

TEST(KernelBuffer, Fig7Scenario) {
  // Fig. 7: 5 packets, driver blocks after packet 1; packets 2-3 sit in the
  // buffer, 4-5 are discarded at the full buffer; when the signal recovers
  // only 2-3 drain.
  KernelBuffer buf(2);
  EXPECT_TRUE(buf.enqueue({1, 48, 0.0}));
  ASSERT_TRUE(buf.dequeue().has_value());  // driver sends packet 1, then blocks
  EXPECT_TRUE(buf.enqueue({2, 48, 0.2}));
  EXPECT_TRUE(buf.enqueue({3, 48, 0.4}));
  EXPECT_FALSE(buf.enqueue({4, 48, 0.6}));
  EXPECT_FALSE(buf.enqueue({5, 48, 0.8}));
  EXPECT_EQ(buf.discarded(), 2u);
  // Signal recovers; the driver drains the survivors.
  EXPECT_EQ(buf.dequeue()->id, 2u);
  EXPECT_EQ(buf.dequeue()->id, 3u);
  EXPECT_TRUE(buf.empty());
}

TEST(KernelBuffer, ClearEmpties) {
  KernelBuffer buf(3);
  buf.enqueue({1, 10, 0.0});
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.dequeue().has_value());
}

TEST(KernelBuffer, PeakSizeAndQueuedBytes) {
  KernelBuffer buf(4);
  buf.enqueue({1, 100, 0.0});
  buf.enqueue({2, 50, 0.1});
  EXPECT_EQ(buf.queued_bytes(), 150u);
  EXPECT_EQ(buf.peak_size(), 2u);
  buf.dequeue();
  EXPECT_EQ(buf.queued_bytes(), 50u);
  EXPECT_EQ(buf.peak_size(), 2u);  // high-water mark survives draining
  buf.clear();
  EXPECT_EQ(buf.queued_bytes(), 0u);
  EXPECT_EQ(buf.peak_size(), 2u);
}

}  // namespace
}  // namespace lgv::net
