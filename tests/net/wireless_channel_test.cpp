#include "net/wireless_channel.h"

#include <gtest/gtest.h>

namespace lgv::net {
namespace {

ChannelConfig test_config() {
  ChannelConfig c;
  c.wap_position = {0.0, 0.0};
  c.shadowing_sigma_db = 0.0;  // deterministic for threshold tests
  return c;
}

TEST(WirelessChannel, RssiDecreasesWithDistance) {
  WirelessChannel ch(test_config());
  double prev = 1e9;
  for (double d = 1.0; d <= 60.0; d *= 2.0) {
    ch.set_robot_position({d, 0.0});
    const double rssi = ch.mean_rssi_dbm();
    EXPECT_LT(rssi, prev);
    prev = rssi;
  }
}

TEST(WirelessChannel, MinimumDistanceClamped) {
  WirelessChannel ch(test_config());
  ch.set_robot_position({0.0, 0.0});
  EXPECT_DOUBLE_EQ(ch.distance_to_wap(), 1.0);
  EXPECT_DOUBLE_EQ(ch.mean_rssi_dbm(), test_config().reference_rssi_dbm);
}

TEST(WirelessChannel, LossFromSnrShape) {
  WirelessChannel ch(test_config());
  EXPECT_DOUBLE_EQ(ch.loss_from_snr(40.0), 0.0);
  EXPECT_DOUBLE_EQ(ch.loss_from_snr(test_config().good_snr_db), 0.0);
  EXPECT_DOUBLE_EQ(ch.loss_from_snr(test_config().outage_snr_db), 1.0);
  EXPECT_DOUBLE_EQ(ch.loss_from_snr(0.0), 1.0);
  const double mid =
      (test_config().good_snr_db + test_config().outage_snr_db) / 2.0;
  const double loss = ch.loss_from_snr(mid);
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 1.0);
}

TEST(WirelessChannel, LossMonotoneInSnr) {
  WirelessChannel ch(test_config());
  double prev = 1.1;
  for (double snr = 0.0; snr <= 40.0; snr += 1.0) {
    const double loss = ch.loss_from_snr(snr);
    EXPECT_LE(loss, prev + 1e-12);
    prev = loss;
  }
}

TEST(WirelessChannel, NearWapNoLossFarWapOutage) {
  WirelessChannel ch(test_config());
  ch.set_robot_position({2.0, 0.0});
  EXPECT_DOUBLE_EQ(ch.loss_probability(), 0.0);
  EXPECT_FALSE(ch.in_outage());

  ch.set_robot_position({500.0, 0.0});
  EXPECT_DOUBLE_EQ(ch.loss_probability(), 1.0);
  EXPECT_TRUE(ch.in_outage());
}

TEST(WirelessChannel, LatencyGrowsWithWeakSignal) {
  WirelessChannel ch(test_config());
  ch.set_robot_position({2.0, 0.0});
  double near_total = 0.0;
  for (int i = 0; i < 64; ++i) near_total += ch.sample_latency(1000);
  // Choose a distance that is weak but not in outage.
  ChannelConfig cfg = test_config();
  WirelessChannel weak(cfg);
  double d = 2.0;
  while (true) {
    weak.set_robot_position({d, 0.0});
    const double snr = weak.snr_db(weak.mean_rssi_dbm());
    if (snr < cfg.good_snr_db - 4.0) break;
    d += 1.0;
  }
  double weak_total = 0.0;
  for (int i = 0; i < 64; ++i) weak_total += weak.sample_latency(1000);
  EXPECT_GT(weak_total, near_total);
}

TEST(WirelessChannel, WanLatencyAdds) {
  ChannelConfig base = test_config();
  ChannelConfig wan = base;
  wan.wan_latency_s = 0.015;
  wan.latency_jitter_s = 0.0;
  base.latency_jitter_s = 0.0;
  WirelessChannel edge(base), cloud(wan);
  edge.set_robot_position({2.0, 0.0});
  cloud.set_robot_position({2.0, 0.0});
  EXPECT_NEAR(cloud.sample_latency(100) - edge.sample_latency(100), 0.015, 1e-9);
}

TEST(WirelessChannel, EffectiveUplinkDegrades) {
  WirelessChannel ch(test_config());
  ch.set_robot_position({2.0, 0.0});
  const double near = ch.effective_uplink_bps();
  ch.set_robot_position({40.0, 0.0});
  const double far = ch.effective_uplink_bps();
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
}

TEST(WirelessChannel, ShadowingIsDeterministicPerSeed) {
  ChannelConfig cfg = test_config();
  cfg.shadowing_sigma_db = 2.0;
  WirelessChannel a(cfg, 99), b(cfg, 99);
  a.set_robot_position({10.0, 0.0});
  b.set_robot_position({10.0, 0.0});
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.sample_rssi_dbm(), b.sample_rssi_dbm());
  }
}

}  // namespace
}  // namespace lgv::net
