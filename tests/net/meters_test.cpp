#include "net/meters.h"

#include <gtest/gtest.h>

namespace lgv::net {
namespace {

TEST(BandwidthMeter, MeasuresSteadyRate) {
  BandwidthMeter bw(1.0);
  double t = 0.0;
  for (int i = 0; i < 20; ++i, t += 0.2) bw.on_packet(t);
  EXPECT_NEAR(bw.rate(t), 5.0, 1.0);
}

TEST(BandwidthMeter, DropsReflectLoss) {
  BandwidthMeter bw(1.0);
  // 5 Hz sender, 80% loss → ~1 Hz receive rate (the Fig. 11 weak-signal case).
  double t = 0.0;
  for (int i = 0; i < 50; ++i, t += 0.2) {
    if (i % 5 == 0) bw.on_packet(t);
  }
  EXPECT_NEAR(bw.rate(t), 1.0, 0.5);
}

TEST(BandwidthMeter, SilenceDecaysToZero) {
  BandwidthMeter bw(1.0);
  bw.on_packet(0.0);
  EXPECT_DOUBLE_EQ(bw.rate(5.0), 0.0);
}

TEST(RttMeter, TracksLatestAndStats) {
  RttMeter rtt;
  EXPECT_FALSE(rtt.latest().has_value());
  rtt.on_response(1.0, 1.05);
  rtt.on_response(2.0, 2.15);
  ASSERT_TRUE(rtt.latest().has_value());
  EXPECT_NEAR(*rtt.latest(), 0.15, 1e-12);
  EXPECT_NEAR(rtt.mean(), 0.1, 1e-12);
  EXPECT_NEAR(rtt.max(), 0.15, 1e-12);
  EXPECT_EQ(rtt.count(), 2u);
}

TEST(SignalDirection, NegativeWhenRecedingPositiveWhenApproaching) {
  SignalDirectionEstimator dir({0.0, 0.0}, 4);
  // Moving away from the WAP.
  for (double x = 1.0; x <= 5.0; x += 1.0) dir.on_position({x, 0.0});
  EXPECT_LT(dir.direction(), 0.0);
  // Turn around.
  for (double x = 5.0; x >= 1.0; x -= 1.0) dir.on_position({x, 0.0});
  EXPECT_GT(dir.direction(), 0.0);
}

TEST(SignalDirection, ZeroWhenStationaryOrNoHistory) {
  SignalDirectionEstimator dir({0.0, 0.0});
  EXPECT_DOUBLE_EQ(dir.direction(), 0.0);
  dir.on_position({3.0, 0.0});
  EXPECT_DOUBLE_EQ(dir.direction(), 0.0);  // single sample
  for (int i = 0; i < 10; ++i) dir.on_position({3.0, 0.0});
  EXPECT_DOUBLE_EQ(dir.direction(), 0.0);  // stationary
}

TEST(SignalDirection, TangentialMotionIsNearZero) {
  SignalDirectionEstimator dir({0.0, 0.0}, 8);
  // Circle of radius 5 around the WAP: distance constant.
  for (int i = 0; i < 8; ++i) {
    const double a = 0.2 * i;
    dir.on_position({5.0 * std::cos(a), 5.0 * std::sin(a)});
  }
  EXPECT_NEAR(dir.direction(), 0.0, 1e-6);
}

}  // namespace
}  // namespace lgv::net
