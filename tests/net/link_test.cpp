#include "net/link.h"

#include <gtest/gtest.h>

namespace lgv::net {
namespace {

ChannelConfig quiet_config() {
  ChannelConfig c;
  c.wap_position = {0.0, 0.0};
  c.shadowing_sigma_db = 0.0;
  return c;
}

std::vector<uint8_t> payload(size_t n) { return std::vector<uint8_t>(n, 0xab); }

TEST(UdpLink, DeliversNearWap) {
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({2.0, 0.0});
  UdpLink link(&ch);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(link.send(payload(100), 0.01 * i));
    link.step(0.01 * i);
  }
  const auto delivered = link.poll_delivered(10.0);
  EXPECT_EQ(delivered.size(), 10u);
  EXPECT_EQ(link.stats().delivered, 10u);
  EXPECT_EQ(link.stats().dropped_buffer, 0u);
  EXPECT_EQ(link.stats().dropped_channel, 0u);
}

TEST(UdpLink, LatencyIsPositiveAndOrdered) {
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({2.0, 0.0});
  UdpLink link(&ch);
  link.send(payload(100), 1.0);
  link.step(1.0);
  EXPECT_TRUE(link.poll_delivered(1.0).empty());  // not yet arrived
  const auto delivered = link.poll_delivered(2.0);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_GT(delivered[0].deliver_time, 1.0);
  EXPECT_LT(delivered[0].deliver_time, 1.2);
}

TEST(UdpLink, OutageBlocksBufferAndDropsOverflow) {
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({500.0, 0.0});  // deep outage
  UdpLink link(&ch, /*kernel_buffer_capacity=*/2);
  int accepted = 0;
  for (int i = 0; i < 6; ++i) {
    if (link.send(payload(48), 0.2 * i)) ++accepted;
    link.step(0.2 * i);
  }
  EXPECT_EQ(accepted, 2);  // buffer capacity
  EXPECT_EQ(link.stats().dropped_buffer, 4u);
  EXPECT_TRUE(link.poll_delivered(100.0).empty());

  // Robot returns near the WAP: buffered packets drain.
  ch.set_robot_position({2.0, 0.0});
  link.step(2.0);
  const auto delivered = link.poll_delivered(10.0);
  EXPECT_EQ(delivered.size(), 2u);
}

TEST(UdpLink, LossRateGrowsWithDistance) {
  ChannelConfig cfg = quiet_config();
  auto run = [&](double d) {
    WirelessChannel ch(cfg, 7);
    ch.set_robot_position({d, 0.0});
    UdpLink link(&ch, 64);
    for (int i = 0; i < 400; ++i) {
      link.send(payload(48), 0.01 * i);
      link.step(0.01 * i);
    }
    link.poll_delivered(1e9);
    return link.stats();
  };
  const LinkStats near = run(2.0);
  // Find a marginal distance (loss strictly between 0 and 1).
  WirelessChannel probe(cfg);
  double marginal = 2.0;
  for (double d = 2.0; d < 400.0; d += 1.0) {
    probe.set_robot_position({d, 0.0});
    const double p = probe.loss_from_snr(probe.snr_db(probe.mean_rssi_dbm()));
    if (p > 0.2 && p < 0.8) {
      marginal = d;
      break;
    }
  }
  const LinkStats mid = run(marginal);
  EXPECT_GT(near.delivery_ratio(), 0.99);
  EXPECT_LT(mid.delivery_ratio(), 0.9);
  EXPECT_GT(mid.delivery_ratio(), 0.05);
}

TEST(UdpLink, RejectedDatagramsAreNotCountedAsSent) {
  // Regression: sendto() rejected at a full kernel buffer used to count as
  // both sent and dropped_buffer, deflating the delivery ratio during every
  // outage window.
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({500.0, 0.0});  // outage: nothing drains
  UdpLink link(&ch, /*kernel_buffer_capacity=*/2);
  for (int i = 0; i < 6; ++i) {
    link.send(payload(48), 0.1 * i);
    link.step(0.1 * i);
  }
  EXPECT_EQ(link.stats().sent, 2u);            // kernel accepted exactly 2
  EXPECT_EQ(link.stats().dropped_buffer, 4u);  // the rest rejected, once each
  EXPECT_EQ(link.stats().offered(), 6u);

  // Link recovers: both accepted datagrams arrive → honest ratio of 1.0
  // against the accepted count, not 2/6 against double-counted sends.
  ch.set_robot_position({2.0, 0.0});
  link.step(1.0);
  link.poll_delivered(10.0);
  EXPECT_EQ(link.stats().delivered, 2u);
  EXPECT_DOUBLE_EQ(link.stats().delivery_ratio(), 1.0);
}

TEST(UdpLink, TelemetryMirrorsAccountingFix) {
  telemetry::Telemetry telemetry;
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({500.0, 0.0});
  UdpLink link(&ch, 2);
  link.set_telemetry(&telemetry, "uplink");
  for (int i = 0; i < 6; ++i) link.send(payload(48), 0.1 * i);
  auto& m = telemetry.metrics();
  EXPECT_DOUBLE_EQ(m.counter("net_sent_total", {{"link", "uplink"}}).value(), 2.0);
  EXPECT_DOUBLE_EQ(m.counter("net_dropped_buffer_total", {{"link", "uplink"}}).value(),
                   4.0);
  EXPECT_DOUBLE_EQ(m.gauge("net_kernel_buffer_depth", {{"link", "uplink"}}).value(),
                   2.0);
}

TEST(TcpLink, AlwaysDeliversEventually) {
  ChannelConfig cfg = quiet_config();
  WirelessChannel ch(cfg, 3);
  // Marginal position: heavy loss but not outage.
  double d = 2.0;
  for (; d < 400.0; d += 1.0) {
    ch.set_robot_position({d, 0.0});
    const double p = ch.loss_from_snr(ch.snr_db(ch.mean_rssi_dbm()));
    if (p > 0.5 && p < 0.95) break;
  }
  TcpLink link(&ch, 0.1);
  for (int i = 0; i < 20; ++i) link.send(payload(64), 0.05 * i);
  for (double t = 0.0; t < 60.0; t += 0.05) link.step(t);
  const auto delivered = link.poll_delivered(1e9);
  EXPECT_EQ(delivered.size(), 20u);  // reliable despite loss
  EXPECT_GT(link.stats().dropped_channel, 0u);  // retransmissions happened
}

TEST(TcpLink, GaugesTrackQueueAndAirAndRetransmitsAreCounted) {
  telemetry::Telemetry telemetry;
  ChannelConfig cfg = quiet_config();
  WirelessChannel ch(cfg, 3);
  // Marginal position: heavy loss but not outage, so retransmissions happen.
  for (double d = 2.0; d < 400.0; d += 1.0) {
    ch.set_robot_position({d, 0.0});
    const double p = ch.loss_from_snr(ch.snr_db(ch.mean_rssi_dbm()));
    if (p > 0.5 && p < 0.95) break;
  }
  TcpLink link(&ch, 0.1);
  link.set_telemetry(&telemetry, "control");
  auto& m = telemetry.metrics();
  const telemetry::Labels labels = {{"link", "control"}};

  for (int i = 0; i < 10; ++i) link.send(payload(64), 0.0);
  link.step(0.0);
  // Regression: these gauges were wired but never written — they stayed 0
  // forever. After one step the unacked queue and the in-flight bytes must
  // both be visible.
  EXPECT_DOUBLE_EQ(m.gauge("net_kernel_buffer_depth", labels).value(),
                   static_cast<double>(link.unacked()));
  double in_flight = m.gauge("net_in_flight_bytes", labels).value();
  EXPECT_EQ(static_cast<uint64_t>(in_flight) % 64, 0u);

  for (double t = 0.05; t < 60.0; t += 0.05) link.step(t);
  const auto delivered = link.poll_delivered(1e9);
  EXPECT_EQ(delivered.size(), 10u);
  EXPECT_GT(link.stats().retransmits, 0u);
  EXPECT_DOUBLE_EQ(m.counter("net_retransmits_total", labels).value(),
                   static_cast<double>(link.stats().retransmits));
  // Everything delivered: queue empty, nothing on the air.
  EXPECT_DOUBLE_EQ(m.gauge("net_kernel_buffer_depth", labels).value(), 0.0);
  EXPECT_DOUBLE_EQ(m.gauge("net_in_flight_bytes", labels).value(), 0.0);
}

TEST(TcpLink, RetransmissionInflatesLatencyNotLoss) {
  // §VI: TCP hides loss inside timestamps — delivery ratio stays 1 but
  // latency grows on a bad link.
  ChannelConfig cfg = quiet_config();
  auto mean_latency = [&](double dist) {
    WirelessChannel ch(cfg, 5);
    ch.set_robot_position({dist, 0.0});
    TcpLink link(&ch, 0.1);
    for (int i = 0; i < 30; ++i) link.send(payload(64), 0.1 * i);
    for (double t = 0.0; t < 120.0; t += 0.05) link.step(t);
    const auto pkts = link.poll_delivered(1e9);
    EXPECT_EQ(pkts.size(), 30u);
    double total = 0.0;
    for (const auto& p : pkts) total += p.deliver_time - p.send_time;
    return total / static_cast<double>(pkts.size());
  };
  WirelessChannel probe(cfg);
  double marginal = 2.0;
  for (double d = 2.0; d < 400.0; d += 1.0) {
    probe.set_robot_position({d, 0.0});
    const double p = probe.loss_from_snr(probe.snr_db(probe.mean_rssi_dbm()));
    if (p > 0.4 && p < 0.8) {
      marginal = d;
      break;
    }
  }
  EXPECT_GT(mean_latency(marginal), mean_latency(2.0) * 2.0);
}

// ---- wire-fault mutators (corruption fault plane) --------------------------

TEST(UdpLink, CorruptBurstFlipsBytesButStillDelivers) {
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({2.0, 0.0});
  ChannelOverride ov;
  ov.corrupt_bit_prob = 0.05;  // ~13 flipped bytes per 256 B datagram
  ch.set_override(ov);
  UdpLink link(&ch);
  size_t damaged = 0;
  for (int i = 0; i < 20; ++i) {
    link.send(payload(256), 0.1 * i);
    link.step(0.1 * i);
  }
  for (const Packet& p : link.poll_delivered(10.0)) {
    EXPECT_EQ(p.payload.size(), 256u);  // corruption never changes length
    for (uint8_t b : p.payload) {
      if (b != 0xab) {
        ++damaged;
        break;
      }
    }
  }
  // UDP's freshness-over-reliability contract: damaged frames are *delivered*
  // (the integrity layer above decides), not silently dropped.
  EXPECT_EQ(link.stats().delivered, 20u);
  EXPECT_GT(damaged, 15u);
  EXPECT_EQ(link.stats().corrupted, damaged);
}

TEST(UdpLink, TruncateDeliversShortFrames) {
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({2.0, 0.0});
  ChannelOverride ov;
  ov.truncate_prob = 1.0;
  ch.set_override(ov);
  UdpLink link(&ch);
  link.send(payload(300), 0.0);
  link.step(0.0);
  const auto pkts = link.poll_delivered(5.0);
  ASSERT_EQ(pkts.size(), 1u);
  EXPECT_LT(pkts[0].payload.size(), 300u);
  EXPECT_EQ(link.stats().truncated, 1u);
}

TEST(UdpLink, DuplicateDeliversTheFrameTwice) {
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({2.0, 0.0});
  ChannelOverride ov;
  ov.duplicate_prob = 1.0;
  ch.set_override(ov);
  UdpLink link(&ch);
  link.send(payload(64), 0.0);
  link.step(0.0);
  const auto pkts = link.poll_delivered(5.0);
  ASSERT_EQ(pkts.size(), 2u);
  EXPECT_EQ(pkts[0].id, pkts[1].id);
  EXPECT_EQ(pkts[0].payload, pkts[1].payload);
  EXPECT_EQ(link.stats().duplicated, 1u);
}

TEST(UdpLink, ReorderJitterInvertsArrivalOrder) {
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({2.0, 0.0});
  ChannelOverride ov;
  ov.reorder_jitter_s = 0.5;  // ≫ inter-send gap + base latency
  ch.set_override(ov);
  UdpLink link(&ch);
  for (int i = 0; i < 40; ++i) {
    link.send(payload(64), 0.01 * i);
    link.step(0.01 * i);
  }
  size_t polled = 0;
  for (double t = 0.0; t < 5.0; t += 0.01) polled += link.poll_delivered(t).size();
  EXPECT_EQ(polled, 40u);
  EXPECT_GT(link.stats().reordered, 0u);
}

TEST(TcpLink, CorruptionBecomesRetransmissionNeverDamage) {
  WirelessChannel ch(quiet_config());
  ch.set_robot_position({2.0, 0.0});
  ChannelOverride ov;
  ov.corrupt_bit_prob = 2e-3;  // ~40% of 256 B segments damaged per try
  ch.set_override(ov);
  TcpLink link(&ch, 0.05);
  for (int i = 0; i < 30; ++i) link.send(payload(256), 0.1 * i);
  for (double t = 0.0; t < 60.0; t += 0.02) link.step(t);
  const auto pkts = link.poll_delivered(1e9);
  ASSERT_EQ(pkts.size(), 30u);  // reliable: everything arrives...
  for (const Packet& p : pkts) {
    EXPECT_EQ(p.payload, payload(256));  // ...and arrives intact
  }
  // The transport checksum turned the damage into retransmission latency.
  EXPECT_GT(link.stats().corrupted, 0u);
  EXPECT_GE(link.stats().retransmits, link.stats().corrupted);
}

}  // namespace
}  // namespace lgv::net
