#include "net/ap_selector.h"

#include <gtest/gtest.h>

namespace lgv::net {
namespace {

ChannelConfig wap_at(Point2D p) {
  ChannelConfig cfg;
  cfg.wap_position = p;
  cfg.shadowing_sigma_db = 0.0;
  return cfg;
}

TEST(ApSelector, StaysOnOnlyAp) {
  ApSelector sel;
  sel.add_access_point(wap_at({0, 0}), 1);
  for (double t = 0.0; t < 10.0; t += 0.5) {
    EXPECT_FALSE(sel.update({t * 2.0, 0.0}, t));
  }
  EXPECT_EQ(sel.handoffs(), 0u);
  EXPECT_EQ(sel.active_index(), 0u);
}

TEST(ApSelector, RoamsToCloserApWithHysteresis) {
  ApSelector sel;
  sel.add_access_point(wap_at({0, 0}), 1);
  sel.add_access_point(wap_at({30, 0}), 2);
  // Near AP0: stay.
  sel.update({2.0, 0.0}, 0.0);
  EXPECT_EQ(sel.active_index(), 0u);
  // At the midpoint the margin prevents a roam (equal RSSI).
  sel.update({15.0, 0.0}, 1.0);
  EXPECT_EQ(sel.active_index(), 0u);
  // Clearly closer to AP1: roam.
  bool roamed = sel.update({26.0, 0.0}, 2.0);
  EXPECT_TRUE(roamed);
  EXPECT_EQ(sel.active_index(), 1u);
  EXPECT_EQ(sel.handoffs(), 1u);
  EXPECT_TRUE(sel.in_handoff(2.1));
  EXPECT_FALSE(sel.in_handoff(2.6));
}

TEST(ApSelector, ScanPeriodLimitsEvaluations) {
  ApSelectorConfig cfg;
  cfg.scan_period_s = 5.0;
  ApSelector sel(cfg);
  sel.add_access_point(wap_at({0, 0}), 1);
  sel.add_access_point(wap_at({30, 0}), 2);
  sel.update({2.0, 0.0}, 0.0);
  // Teleport next to AP1, but within the scan period: no roam yet.
  EXPECT_FALSE(sel.update({29.0, 0.0}, 1.0));
  EXPECT_EQ(sel.active_index(), 0u);
  // After the scan period it roams.
  EXPECT_TRUE(sel.update({29.0, 0.0}, 5.5));
}

TEST(ApSelector, NoPingPongBetweenEqualAps) {
  ApSelector sel;
  sel.add_access_point(wap_at({0, 0}), 1);
  sel.add_access_point(wap_at({10, 0}), 2);
  // Sit at the midpoint for a long time: the margin suppresses flapping.
  for (double t = 0.0; t < 60.0; t += 1.0) {
    sel.update({5.0, 0.02 * t}, t);
  }
  EXPECT_LE(sel.handoffs(), 1u);
}

TEST(ApSelector, ActiveChannelTracksRobot) {
  ApSelector sel;
  sel.add_access_point(wap_at({0, 0}), 1);
  sel.update({7.0, 0.0}, 0.0);
  EXPECT_NEAR(sel.active_channel().distance_to_wap(), 7.0, 1e-9);
}

TEST(ApSelector, ThrowsWithoutAps) {
  ApSelector sel;
  EXPECT_THROW(sel.update({0, 0}, 0.0), std::logic_error);
}

}  // namespace
}  // namespace lgv::net
