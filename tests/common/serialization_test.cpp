#include "common/serialization.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/crc32c.h"

namespace lgv {
namespace {

TEST(Wire, VarintRoundTrip) {
  WireWriter w;
  const std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1ull << 32,
                                        std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) w.put_varint(v);
  WireReader r(w.buffer());
  for (uint64_t v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, VarintCompactEncoding) {
  WireWriter w;
  w.put_varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Wire, SignedZigzag) {
  WireWriter w;
  const std::vector<int64_t> values = {0, -1, 1, -64, 64, -1000000,
                                       std::numeric_limits<int64_t>::min(),
                                       std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) w.put_signed(v);
  WireReader r(w.buffer());
  for (int64_t v : values) EXPECT_EQ(r.get_signed(), v);
}

TEST(Wire, DoubleRoundTripExact) {
  WireWriter w;
  const std::vector<double> values = {0.0, -0.0, 1.5, -3.14159,
                                      std::numeric_limits<double>::infinity(),
                                      std::numeric_limits<double>::denorm_min(),
                                      1e300};
  for (double v : values) w.put_double(v);
  WireReader r(w.buffer());
  for (double v : values) EXPECT_EQ(r.get_double(), v);
}

TEST(Wire, FloatRoundTrip) {
  WireWriter w;
  w.put_float(1.25f);
  w.put_float(-7.5e-3f);
  WireReader r(w.buffer());
  EXPECT_EQ(r.get_float(), 1.25f);
  EXPECT_EQ(r.get_float(), -7.5e-3f);
}

TEST(Wire, StringRoundTrip) {
  WireWriter w;
  w.put_string("");
  w.put_string("hello world");
  w.put_string(std::string("\x00\x01\xff", 3));
  WireReader r(w.buffer());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), std::string("\x00\x01\xff", 3));
}

TEST(Wire, RepeatedFields) {
  WireWriter w;
  w.put_repeated_double(std::vector<double>{1.0, 2.0, 3.0});
  w.put_repeated_float<float>({0.5f, -0.5f});
  w.put_repeated_i8({-1, 0, 100});
  WireReader r(w.buffer());
  EXPECT_EQ(r.get_repeated_double(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(r.get_repeated_float(), (std::vector<float>{0.5f, -0.5f}));
  EXPECT_EQ(r.get_repeated_i8(), (std::vector<int8_t>{-1, 0, 100}));
}

TEST(Wire, RawBytes) {
  WireWriter w;
  const uint8_t data[] = {1, 2, 3, 250};
  w.put_bytes(data, sizeof(data));
  WireReader r(w.buffer());
  EXPECT_EQ(r.get_raw(4), (std::vector<uint8_t>{1, 2, 3, 250}));
}

TEST(Wire, TruncatedBufferThrows) {
  WireWriter w;
  w.put_double(1.0);
  std::vector<uint8_t> bytes = w.take();
  bytes.resize(4);
  WireReader r(bytes);
  EXPECT_THROW(r.get_double(), std::out_of_range);
}

TEST(Wire, TruncatedStringThrows) {
  WireWriter w;
  w.put_string("abcdef");
  std::vector<uint8_t> bytes = w.take();
  bytes.resize(3);
  WireReader r(bytes);
  EXPECT_THROW(r.get_string(), std::out_of_range);
}

TEST(Wire, EmptyReaderThrowsOnRead) {
  const std::vector<uint8_t> empty;
  WireReader r(empty);
  EXPECT_THROW(r.get_varint(), std::out_of_range);
}

// ---- adversarial inputs: a corrupted frame must never crash or OOM ----

// The pre-hardening `require()` computed `pos_ + n > size_`, which wraps for
// `n` near SIZE_MAX: with pos_ = 1 and n = SIZE_MAX, `pos_ + n` is 0 — the
// check passes and the reader walks off the end of the buffer. The fixed
// form must throw instead.
TEST(WireAdversarial, HugeLengthDoesNotOverflowBoundsCheck) {
  WireWriter w;
  w.put_varint(std::numeric_limits<uint64_t>::max());  // string length SIZE_MAX
  std::vector<uint8_t> bytes = w.take();
  // Demonstrate the arithmetic the old check relied on actually wraps: after
  // consuming the 10-byte varint, pos + SIZE_MAX overflows to pos - 1 < size,
  // so `pos + n > size` is false and the OOB read would have proceeded.
  const size_t pos_after_varint = bytes.size();
  const size_t n = std::numeric_limits<size_t>::max();
  EXPECT_FALSE(pos_after_varint + n > bytes.size())  // the unfixed predicate
      << "expected the legacy bounds check to wrap (and miss the overrun)";
  WireReader r(bytes);
  EXPECT_THROW(r.get_string(), std::out_of_range);
  WireReader r2(bytes);
  EXPECT_THROW(r2.get_raw(n), std::out_of_range);
}

// A corrupted repeated-field count must be rejected *before* the reader
// reserves memory for it: 2^40 doubles would try to allocate 8 TB.
TEST(WireAdversarial, GiantRepeatedCountThrowsWithoutAllocating) {
  const uint64_t bomb = 1ull << 40;
  {
    WireWriter w;
    w.put_varint(bomb);
    WireReader r(w.buffer());
    EXPECT_THROW(r.get_repeated_double(), std::out_of_range);
  }
  {
    WireWriter w;
    w.put_varint(bomb);
    WireReader r(w.buffer());
    EXPECT_THROW(r.get_repeated_float(), std::out_of_range);
  }
  {
    WireWriter w;
    w.put_varint(bomb);
    WireReader r(w.buffer());
    EXPECT_THROW(r.get_repeated_varint(), std::out_of_range);
  }
  {
    WireWriter w;
    w.put_varint(bomb);
    WireReader r(w.buffer());
    EXPECT_THROW(r.get_repeated_i8(), std::out_of_range);
  }
}

TEST(WireAdversarial, RepeatedCountJustPastBufferThrows) {
  WireWriter w;
  w.put_varint(3);  // claims 3 doubles = 24 bytes...
  w.put_double(1.0);
  w.put_double(2.0);  // ...but only 16 follow
  WireReader r(w.buffer());
  EXPECT_THROW(r.get_repeated_double(), std::out_of_range);
}

TEST(WireAdversarial, UnterminatedVarintThrows) {
  // 11 continuation bytes: more than a 64-bit varint can span.
  const std::vector<uint8_t> bytes(11, 0xFF);
  WireReader r(bytes);
  EXPECT_THROW(r.get_varint(), std::out_of_range);
}

TEST(WireAdversarial, TruncatedVarintThrows) {
  const std::vector<uint8_t> bytes = {0x80, 0x80};  // continuation, then EOF
  WireReader r(bytes);
  EXPECT_THROW(r.get_varint(), std::out_of_range);
}

// ---- CRC32C ----

TEST(Crc32c, KnownAnswerVector) {
  // The canonical CRC32C check value: "123456789" -> 0xE3069283.
  const char* msg = "123456789";
  EXPECT_EQ(crc32c(msg, 9), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(crc32c(nullptr, 0), 0u); }

TEST(Crc32c, SeedChainsPartialComputations) {
  const std::vector<uint8_t> bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const uint32_t whole = crc32c(bytes);
  const uint32_t part = crc32c(bytes.data(), 4);
  EXPECT_EQ(crc32c(bytes.data() + 4, bytes.size() - 4, part), whole);
}

TEST(Crc32c, SingleBitFlipChangesChecksum) {
  std::vector<uint8_t> bytes(64, 0xAB);
  const uint32_t clean = crc32c(bytes);
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(crc32c(bytes), clean) << "flip at byte " << i << " bit " << bit;
      bytes[i] ^= static_cast<uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace lgv
