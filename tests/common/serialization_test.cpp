#include "common/serialization.h"

#include <gtest/gtest.h>

#include <limits>

namespace lgv {
namespace {

TEST(Wire, VarintRoundTrip) {
  WireWriter w;
  const std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1ull << 32,
                                        std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) w.put_varint(v);
  WireReader r(w.buffer());
  for (uint64_t v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, VarintCompactEncoding) {
  WireWriter w;
  w.put_varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Wire, SignedZigzag) {
  WireWriter w;
  const std::vector<int64_t> values = {0, -1, 1, -64, 64, -1000000,
                                       std::numeric_limits<int64_t>::min(),
                                       std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) w.put_signed(v);
  WireReader r(w.buffer());
  for (int64_t v : values) EXPECT_EQ(r.get_signed(), v);
}

TEST(Wire, DoubleRoundTripExact) {
  WireWriter w;
  const std::vector<double> values = {0.0, -0.0, 1.5, -3.14159,
                                      std::numeric_limits<double>::infinity(),
                                      std::numeric_limits<double>::denorm_min(),
                                      1e300};
  for (double v : values) w.put_double(v);
  WireReader r(w.buffer());
  for (double v : values) EXPECT_EQ(r.get_double(), v);
}

TEST(Wire, FloatRoundTrip) {
  WireWriter w;
  w.put_float(1.25f);
  w.put_float(-7.5e-3f);
  WireReader r(w.buffer());
  EXPECT_EQ(r.get_float(), 1.25f);
  EXPECT_EQ(r.get_float(), -7.5e-3f);
}

TEST(Wire, StringRoundTrip) {
  WireWriter w;
  w.put_string("");
  w.put_string("hello world");
  w.put_string(std::string("\x00\x01\xff", 3));
  WireReader r(w.buffer());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), std::string("\x00\x01\xff", 3));
}

TEST(Wire, RepeatedFields) {
  WireWriter w;
  w.put_repeated_double<double>({1.0, 2.0, 3.0});
  w.put_repeated_float<float>({0.5f, -0.5f});
  w.put_repeated_i8({-1, 0, 100});
  WireReader r(w.buffer());
  EXPECT_EQ(r.get_repeated_double(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(r.get_repeated_float(), (std::vector<float>{0.5f, -0.5f}));
  EXPECT_EQ(r.get_repeated_i8(), (std::vector<int8_t>{-1, 0, 100}));
}

TEST(Wire, RawBytes) {
  WireWriter w;
  const uint8_t data[] = {1, 2, 3, 250};
  w.put_bytes(data, sizeof(data));
  WireReader r(w.buffer());
  EXPECT_EQ(r.get_raw(4), (std::vector<uint8_t>{1, 2, 3, 250}));
}

TEST(Wire, TruncatedBufferThrows) {
  WireWriter w;
  w.put_double(1.0);
  std::vector<uint8_t> bytes = w.take();
  bytes.resize(4);
  WireReader r(bytes);
  EXPECT_THROW(r.get_double(), std::out_of_range);
}

TEST(Wire, TruncatedStringThrows) {
  WireWriter w;
  w.put_string("abcdef");
  std::vector<uint8_t> bytes = w.take();
  bytes.resize(3);
  WireReader r(bytes);
  EXPECT_THROW(r.get_string(), std::out_of_range);
}

TEST(Wire, EmptyReaderThrowsOnRead) {
  const std::vector<uint8_t> empty;
  WireReader r(empty);
  EXPECT_THROW(r.get_varint(), std::out_of_range);
}

}  // namespace
}  // namespace lgv
