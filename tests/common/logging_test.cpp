#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace lgv {
namespace {

TEST(Logger, LevelGateControlsOutput) {
  Logger& log = Logger::instance();
  const LogLevel prev = log.level();
  log.set_level(LogLevel::kError);
  EXPECT_EQ(log.level(), LogLevel::kError);
  // Macros below the level expand to no-ops (no crash, no output assertion —
  // we only verify the gate logic and that logging is safe to call).
  LGV_DEBUG("test", "invisible ", 42);
  LGV_INFO("test", "invisible");
  log.set_level(LogLevel::kOff);
  LGV_ERROR("test", "also invisible");
  log.set_level(prev);
}

TEST(Logger, FormatHelperConcatenates) {
  EXPECT_EQ(detail::format_log("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(detail::format_log(), "");
}

TEST(SimClock, AdvanceAndReset) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(0.5);
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(clock.now(), 0.75);
  clock.set(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

}  // namespace
}  // namespace lgv
