#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace lgv {
namespace {

TEST(Logger, LevelGateControlsOutput) {
  Logger& log = Logger::instance();
  const LogLevel prev = log.level();
  log.set_level(LogLevel::kError);
  EXPECT_EQ(log.level(), LogLevel::kError);
  // Macros below the level expand to no-ops (no crash, no output assertion —
  // we only verify the gate logic and that logging is safe to call).
  LGV_DEBUG("test", "invisible ", 42);
  LGV_INFO("test", "invisible");
  log.set_level(LogLevel::kOff);
  LGV_ERROR("test", "also invisible");
  log.set_level(prev);
}

TEST(Logger, FormatHelperConcatenates) {
  EXPECT_EQ(detail::format_log("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(detail::format_log(), "");
}

TEST(Logger, SinkCapturesFormattedLines) {
  Logger& log = Logger::instance();
  const LogLevel prev = log.level();
  log.set_level(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  log.set_sink([&](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  LGV_INFO("mission", "goal reached after ", 12, " replans");
  LGV_DEBUG("mission", "below the gate");
  log.set_sink(nullptr);  // restore stderr
  log.set_level(prev);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "[INFO] mission: goal reached after 12 replans");
}

TEST(Logger, RegisteredClockStampsVirtualTime) {
  Logger& log = Logger::instance();
  const LogLevel prev = log.level();
  log.set_level(LogLevel::kWarn);
  SimClock clock;
  clock.set(12.5);
  log.set_clock(&clock);
  std::string line;
  log.set_sink([&](LogLevel, const std::string& l) { line = l; });
  LGV_WARN("net", "scan dropped");
  log.set_clock(nullptr);
  log.set_sink(nullptr);
  log.set_level(prev);
  EXPECT_EQ(line, "[WARN] [t=12.500] net: scan dropped");
}

TEST(SimClock, AdvanceAndReset) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(0.5);
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(clock.now(), 0.75);
  clock.set(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

}  // namespace
}  // namespace lgv
