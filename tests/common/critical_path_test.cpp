// Critical-path attribution: hand-built span DAGs with known bucket answers,
// overlap priority, orphan flagging, JSONL round-trip, and deterministic
// `critical_path/1` rendering.
#include "common/telemetry/critical_path.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/telemetry/trace.h"

namespace lgv::telemetry {
namespace {

TraceEvent make_span(std::string name, std::string pid, std::string tid, double ts,
                     double dur, TraceArgs args = {}) {
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'X';
  e.ts_s = ts;
  e.dur_s = dur;
  e.pid = std::move(pid);
  e.tid = std::move(tid);
  e.args = std::move(args);
  return e;
}

TEST(CriticalPath, HandBuiltDagChargesEveryBucket) {
  // A ten-second "mission" whose spans exercise one bucket each:
  //   [0,1) local compute, [1,2) remote compute, [2,2.5) uplink queue,
  //   [2.5,3) wire, [3,3.5) downlink, [3.5,4) serialize, [4,5) migration,
  //   [5,6) fallback re-execution, [6,7) unclassifiable, [7,7.5) placement
  //   solve, [7.5,10) idle.
  std::vector<TraceEvent> events = {
      make_span("node.localization", "lgv", "localization", 0.0, 1.0),
      make_span("node.path_tracking", "edge_gateway", "path_tracking", 1.0, 1.0),
      make_span("net.queue", "network", "uplink", 2.0, 0.5),
      make_span("net.wire", "network", "uplink", 2.5, 0.5),
      make_span("net.wire", "network", "downlink", 3.0, 0.5),
      make_span("mw.serialize", "lgv", "scan", 3.5, 0.5),
      make_span("switcher.migrate", "network", "switcher", 4.0, 1.0),
      make_span("node.retry", "lgv", "path_tracking", 5.0, 1.0,
                {{"outcome", "fallback"}}),
      make_span("mystery.span", "weird_host", "??", 6.0, 1.0),
      make_span("placement.solve", "lgv", "placement", 7.0, 0.5),
  };

  const CriticalPathResult r = attribute_critical_path(events, 10.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 10.0);
  EXPECT_EQ(r.spans_total, 10u);
  EXPECT_EQ(r.orphan_spans, 0u);

  const auto seconds = [&](const char* name) {
    const CriticalPathBucket* b = r.find(name);
    return b != nullptr ? b->seconds : -1.0;
  };
  EXPECT_DOUBLE_EQ(seconds("local_compute"), 1.0);
  EXPECT_DOUBLE_EQ(seconds("remote_compute"), 1.0);
  EXPECT_DOUBLE_EQ(seconds("uplink_queue"), 0.5);
  EXPECT_DOUBLE_EQ(seconds("wire"), 0.5);
  EXPECT_DOUBLE_EQ(seconds("downlink"), 0.5);
  EXPECT_DOUBLE_EQ(seconds("serialize"), 0.5);
  EXPECT_DOUBLE_EQ(seconds("migration"), 1.0);
  EXPECT_DOUBLE_EQ(seconds("fallback"), 1.0);
  EXPECT_DOUBLE_EQ(seconds("other"), 1.0);
  EXPECT_DOUBLE_EQ(seconds("placement"), 0.5);
  EXPECT_DOUBLE_EQ(seconds("pipeline_idle"), 2.5);

  EXPECT_DOUBLE_EQ(r.residual_s, 1.0);
  EXPECT_DOUBLE_EQ(r.named_fraction(), 0.9);
  EXPECT_DOUBLE_EQ(r.network_s, 2.5);  // uplink_queue + wire + downlink + migration
  EXPECT_DOUBLE_EQ(r.compute_s, 3.0);  // local + remote + fallback

  // Every second of the makespan is charged exactly once.
  double total = 0.0;
  for (const CriticalPathBucket& b : r.buckets) total += b.seconds;
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(CriticalPath, OverlapResolvedByPriority) {
  // A migration stall overlapping background local compute is a migration
  // stall; the compute span only keeps its non-overlapped second.
  std::vector<TraceEvent> events = {
      make_span("node.mux", "lgv", "velocity_mux", 0.0, 2.0),
      make_span("switcher.migrate", "network", "switcher", 0.0, 1.0),
  };
  const CriticalPathResult r = attribute_critical_path(events, 2.0);
  EXPECT_DOUBLE_EQ(r.find("migration")->seconds, 1.0);
  EXPECT_DOUBLE_EQ(r.find("local_compute")->seconds, 1.0);
  EXPECT_DOUBLE_EQ(r.find("pipeline_idle")->seconds, 0.0);
}

TEST(CriticalPath, OrphanSpansFlagged) {
  TraceEvent child = make_span("node.x", "lgv", "x", 0.0, 1.0);
  child.trace_id = 7;
  child.span_id = 12;
  child.parent_span_id = 99;  // no such span anywhere in the trace
  TraceEvent ok = make_span("node.y", "lgv", "y", 1.0, 1.0);
  ok.trace_id = 7;
  ok.span_id = 13;
  ok.parent_span_id = 12;  // resolves to `child`
  const CriticalPathResult r = attribute_critical_path({child, ok}, 2.0);
  EXPECT_EQ(r.orphan_spans, 1u);
  EXPECT_EQ(r.traces, 1u);
}

TEST(CriticalPath, JsonlRoundTripPreservesEvents) {
  Tracer tracer;
  tracer.begin_trace();
  tracer.span("node.localization", "lgv", "localization", 0.25, 0.5,
              {{"cycles", "1000"}, {"note", "a\"b"}});
  tracer.instant("alg2.decision", "lgv", "algorithm2", 1.0,
                 {{"wanted", "remote"}});
  std::ostringstream out;
  tracer.write_jsonl(out);

  std::istringstream in(out.str());
  size_t skipped = 0;
  const std::vector<TraceEvent> parsed = parse_trace_jsonl(in, &skipped);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(skipped, 0u);

  const std::vector<TraceEvent> orig = tracer.events();
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed[i].name, orig[i].name);
    EXPECT_EQ(parsed[i].phase, orig[i].phase);
    EXPECT_NEAR(parsed[i].ts_s, orig[i].ts_s, 1e-9);
    EXPECT_NEAR(parsed[i].dur_s, orig[i].dur_s, 1e-9);
    EXPECT_EQ(parsed[i].pid, orig[i].pid);
    EXPECT_EQ(parsed[i].tid, orig[i].tid);
    EXPECT_EQ(parsed[i].trace_id, orig[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, orig[i].span_id);
    EXPECT_EQ(parsed[i].parent_span_id, orig[i].parent_span_id);
    EXPECT_EQ(parsed[i].args, orig[i].args);
  }
}

TEST(CriticalPath, ParserSkipsDamagedLinesAndCounts) {
  std::istringstream in(
      "{\"name\":\"ok\",\"ph\":\"i\",\"ts\":1000.000,\"pid\":\"lgv\","
      "\"tid\":\"x\",\"s\":\"t\"}\n"
      "not json at all\n"
      "{\"name\":\"truncated tail\n");
  size_t skipped = 0;
  const std::vector<TraceEvent> parsed = parse_trace_jsonl(in, &skipped);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "ok");
  EXPECT_EQ(skipped, 2u);
}

TEST(CriticalPath, JsonOutputDeterministicAndComplete) {
  const std::vector<TraceEvent> events = {
      make_span("node.a", "lgv", "a", 0.0, 0.125),
  };
  const CriticalPathResult r = attribute_critical_path(events, 1.0);
  std::ostringstream a, b;
  write_critical_path_json(a, r);
  write_critical_path_json(b, r);
  EXPECT_EQ(a.str(), b.str());  // bit-identical on repeat
  // Fixed-order schema with every bucket present even at zero.
  EXPECT_NE(a.str().find("\"schema\": \"critical_path/1\""), std::string::npos);
  EXPECT_NE(a.str().find("\"local_compute\": {\"seconds\": 0.125"),
            std::string::npos);
  EXPECT_NE(a.str().find("\"migration\": {\"seconds\": 0"), std::string::npos);
  EXPECT_NE(a.str().find("\"pipeline_idle\""), std::string::npos);
}

}  // namespace
}  // namespace lgv::telemetry
