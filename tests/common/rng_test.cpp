#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace lgv {
namespace {

TEST(SplitMix64, KnownVectors) {
  // Reference outputs of the SplitMix64 finalizer for seed 1234567 (first
  // three states of the published generator). Pins the exact mixing
  // constants — a silent change here reseeds every fleet.
  EXPECT_EQ(splitmix64(1234567ULL), 6457827717110365317ULL);
  EXPECT_EQ(splitmix64(1234567ULL + 0x9e3779b97f4a7c15ULL),
            3203168211198807973ULL);
  EXPECT_EQ(splitmix64(0ULL), 16294208416658607535ULL);
}

TEST(SplitMix64, Bijective) {
  // Distinct inputs can never collide (the mixer is invertible); spot-check a
  // dense neighborhood, where a broken shift would collide first.
  std::set<uint64_t> outs;
  for (uint64_t x = 0; x < 4096; ++x) outs.insert(splitmix64(x));
  EXPECT_EQ(outs.size(), 4096u);
}

TEST(VehicleSeed, FleetMembersGetDivergentStreams) {
  // The multi-tenancy regression this PR fixes: vehicles seeded `seed ^ i`
  // (or any small perturbation) draw visibly correlated streams. Derived
  // seeds must be pairwise distinct AND the resulting generators must
  // decorrelate immediately.
  const uint64_t fleet_seed = 0x5eed;
  std::set<uint64_t> seeds;
  for (uint32_t v = 0; v < 512; ++v) seeds.insert(vehicle_seed(fleet_seed, v));
  EXPECT_EQ(seeds.size(), 512u);

  Rng a(vehicle_seed(fleet_seed, 0));
  Rng b(vehicle_seed(fleet_seed, 1));
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(VehicleSeed, AdjacentFleetsDoNotAlias) {
  // (seed, index) and (seed + 1, index - 1) must not land on the same
  // stream — the reason the fleet seed is mixed before the index is added.
  EXPECT_NE(vehicle_seed(100, 5), vehicle_seed(101, 4));
  EXPECT_NE(vehicle_seed(100, 5), vehicle_seed(99, 6));
}

TEST(VehicleSeed, DeterministicAcrossCalls) {
  EXPECT_EQ(vehicle_seed(42, 7), vehicle_seed(42, 7));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = r.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.gaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(5);
  Rng fork1 = a.fork(1);
  Rng b(5);
  Rng fork2 = b.fork(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fork1.uniform(), fork2.uniform());
  }
}

}  // namespace
}  // namespace lgv
