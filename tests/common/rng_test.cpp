#include "common/rng.h"

#include <gtest/gtest.h>

namespace lgv {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = r.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.gaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(5);
  Rng fork1 = a.fork(1);
  Rng b(5);
  Rng fork2 = b.fork(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fork1.uniform(), fork2.uniform());
  }
}

}  // namespace
}  // namespace lgv
