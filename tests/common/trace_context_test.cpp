// Causal trace contexts and the flight recorder: id assignment and
// parenting, scoped save/restore, bounded-memory ring behavior, dropped-span
// accounting, vehicle_id stamping, and once-per-trigger flight dumps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/telemetry/telemetry.h"
#include "common/telemetry/trace.h"

namespace lgv::telemetry {
namespace {

TEST(TraceContext, BeginTraceAssignsChildIds) {
  Tracer tracer;
  EXPECT_FALSE(tracer.current().active());

  const TraceContext root = tracer.begin_trace();
  EXPECT_TRUE(root.active());
  EXPECT_EQ(root.span_id, 0u);  // nothing to parent under yet

  const uint32_t first = tracer.instant("tick", "lgv", "sensor", 0.0);
  ASSERT_NE(first, 0u);
  tracer.set_current({root.trace_id, first});
  const uint32_t second = tracer.instant("work", "lgv", "node", 0.1);
  ASSERT_NE(second, 0u);
  EXPECT_NE(second, first);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, root.trace_id);
  EXPECT_EQ(events[0].parent_span_id, 0u);
  EXPECT_EQ(events[1].trace_id, root.trace_id);
  EXPECT_EQ(events[1].parent_span_id, first);  // child of the tick
}

TEST(TraceContext, EventsOutsideTraceStayUnstamped) {
  Tracer tracer;
  EXPECT_EQ(tracer.span("a", "p", "t", 0.0, 1.0), 0u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0u);
  EXPECT_EQ(events[0].span_id, 0u);
  // ...and the serialized forms carry no causal fields, so pre-tracing
  // goldens (Chrome JSON) are unchanged.
  std::ostringstream os;
  tracer.write_jsonl(os);
  EXPECT_EQ(os.str().find("trace_id"), std::string::npos);
}

TEST(TraceContext, ScopedRestoreNestsAndUnwinds) {
  Tracer tracer;
  const TraceContext outer = tracer.begin_trace();
  {
    ScopedTraceContext scope(&tracer, TraceContext{77, 5});
    EXPECT_EQ(tracer.current().trace_id, 77u);
    EXPECT_EQ(tracer.current().span_id, 5u);
    const uint32_t id = tracer.instant("inner", "lgv", "x", 0.0);
    EXPECT_NE(id, 0u);
    const auto events = tracer.events();
    EXPECT_EQ(events.back().trace_id, 77u);
    EXPECT_EQ(events.back().parent_span_id, 5u);
  }
  EXPECT_EQ(tracer.current().trace_id, outer.trace_id);

  // A nullptr tracer is a no-op (the telemetry-disabled hot path).
  { ScopedTraceContext noop(nullptr, TraceContext{1, 2}); }
}

TEST(FlightRecorder, RingIsBoundedAndKeepsNewest) {
  Tracer tracer(/*max_events=*/1u << 20, /*flight_capacity=*/4);
  EXPECT_EQ(tracer.flight_capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("e" + std::to_string(i), "p", "t", 0.1 * i);
  }
  EXPECT_EQ(tracer.flight_overwritten(), 6u);
  const auto window = tracer.flight_events();
  ASSERT_EQ(window.size(), 4u);  // never exceeds capacity — fixed memory
  EXPECT_EQ(window[0].name, "e6");  // oldest retained first
  EXPECT_EQ(window[3].name, "e9");
}

TEST(FlightRecorder, SurvivesMainRingSaturation) {
  // The main buffer stops at 2 events; the flight ring must still hold the
  // most recent window so a late post-mortem is not blind.
  Tracer tracer(/*max_events=*/2, /*flight_capacity=*/3);
  Counter dropped;
  tracer.set_dropped_counter(&dropped);
  for (int i = 0; i < 6; ++i) {
    tracer.instant("e" + std::to_string(i), "p", "t", 0.1 * i);
  }
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 4u);
  EXPECT_EQ(dropped.value(), 4u);  // mirrored into the metric
  const auto window = tracer.flight_events();
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0].name, "e3");
  EXPECT_EQ(window[2].name, "e5");
}

TEST(FlightRecorder, VehicleIdStampedOnEvents) {
  Tracer tracer;
  tracer.set_vehicle_id("lgv-07");
  tracer.instant("tick", "lgv", "sensor", 0.0);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_FALSE(events[0].args.empty());
  EXPECT_EQ(events[0].args.back().first, "vehicle_id");
  EXPECT_EQ(events[0].args.back().second, "lgv-07");
}

TEST(FlightRecorder, DumpFiresOncePerTriggerAndWritesFile) {
  TelemetryConfig cfg;
  cfg.flight_recorder_events = 8;
  cfg.flight_dump_prefix = "flight_dump_test";
  Telemetry telemetry(cfg);
  telemetry.tracer().instant("before.crash", "lgv", "x", 1.0);

  const std::string path = "flight_dump_test_flight_lease_expiry.jsonl";
  std::remove(path.c_str());

  EXPECT_TRUE(telemetry.dump_flight("lease_expiry"));
  EXPECT_FALSE(telemetry.dump_flight("lease_expiry"));  // storm = one file
  EXPECT_TRUE(telemetry.dump_flight("migration_abort"));  // distinct trigger

  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "missing dump artifact " << path;
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(f, line)));
  EXPECT_NE(line.find("before.crash"), std::string::npos);

  // Each trigger counted exactly once, labeled by trigger name.
  EXPECT_EQ(telemetry.metrics()
                .counter("flight_recorder_dumps_total", {{"trigger", "lease_expiry"}})
                .value(),
            1u);
  std::remove(path.c_str());
  std::remove("flight_dump_test_flight_migration_abort.jsonl");
}

TEST(FlightRecorder, CountsTriggersEvenWithoutPrefix) {
  Telemetry telemetry;  // no dump prefix: metric-only post-mortem signal
  EXPECT_TRUE(telemetry.dump_flight("integrity_reject"));
  EXPECT_FALSE(telemetry.dump_flight("integrity_reject"));
  EXPECT_EQ(telemetry.metrics()
                .counter("flight_recorder_dumps_total",
                         {{"trigger", "integrity_reject"}})
                .value(),
            1u);
}

}  // namespace
}  // namespace lgv::telemetry
