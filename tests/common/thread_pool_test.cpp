#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/telemetry/telemetry.h"

namespace lgv {
namespace {

TEST(ChunkRange, EvenSplit) {
  const ChunkRange r0 = chunk_range(8, 4, 0);
  EXPECT_EQ(r0.begin, 0u);
  EXPECT_EQ(r0.end, 2u);
  const ChunkRange r3 = chunk_range(8, 4, 3);
  EXPECT_EQ(r3.begin, 6u);
  EXPECT_EQ(r3.end, 8u);
}

TEST(ChunkRange, RemainderGoesToLeadingChunks) {
  // 10 items over 4 chunks → 3,3,2,2.
  EXPECT_EQ(chunk_range(10, 4, 0).end - chunk_range(10, 4, 0).begin, 3u);
  EXPECT_EQ(chunk_range(10, 4, 1).end - chunk_range(10, 4, 1).begin, 3u);
  EXPECT_EQ(chunk_range(10, 4, 2).end - chunk_range(10, 4, 2).begin, 2u);
  EXPECT_EQ(chunk_range(10, 4, 3).end - chunk_range(10, 4, 3).begin, 2u);
}

TEST(ChunkRange, CoversAllItemsExactlyOnce) {
  for (size_t count : {1u, 7u, 24u, 100u}) {
    for (size_t chunks : {1u, 3u, 8u}) {
      std::vector<int> hits(count, 0);
      for (size_t c = 0; c < chunks; ++c) {
        const ChunkRange r = chunk_range(count, chunks, c);
        for (size_t i = r.begin; i < r.end; ++i) ++hits[i];
      }
      for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i], 1) << count << " " << chunks;
    }
  }
}

TEST(ChunkRange, FewerItemsThanChunks) {
  // 3 items over 8 chunks → one item each for the first three, empty after.
  for (size_t c = 0; c < 8; ++c) {
    const ChunkRange r = chunk_range(3, 8, c);
    EXPECT_LE(r.begin, r.end);
    EXPECT_EQ(r.end - r.begin, c < 3 ? 1u : 0u) << c;
  }
  // Empty chunks must still be valid (begin == end, within bounds).
  EXPECT_EQ(chunk_range(3, 8, 7).begin, 3u);
  EXPECT_EQ(chunk_range(3, 8, 7).end, 3u);
}

TEST(ChunkRange, ZeroItems) {
  for (size_t c = 0; c < 4; ++c) {
    const ChunkRange r = chunk_range(0, 4, c);
    EXPECT_EQ(r.begin, 0u);
    EXPECT_EQ(r.end, 0u);
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelChunksSumMatches) {
  ThreadPool pool(4);
  std::vector<long> data(257);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long> total{0};
  pool.parallel_chunks(data.size(), 4, [&](size_t begin, size_t end) {
    long local = 0;
    for (size_t i = begin; i < end; ++i) local += data[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 257L * 256L / 2L);
}

TEST(ThreadPool, ParallelChunksMoreChunksThanItems) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_chunks(3, 8, [&](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    calls.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ParallelDynamicVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  pool.parallel_dynamic(hits.size(), 4, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelDynamicRangesRespectGrain) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_dynamic(10, 4, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin % 4, 0u);
    EXPECT_LE(end - begin, 4u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);  // [0,4) [4,8) [8,10)
}

TEST(ThreadPool, ParallelDynamicGrainLargerThanCount) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  pool.parallel_dynamic(3, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    visited.fetch_add(1);
  });
  EXPECT_EQ(visited.load(), 1);
}

TEST(ThreadPool, ParallelDynamicEmpty) {
  ThreadPool pool(2);
  pool.parallel_dynamic(0, 4, [](size_t, size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ReentrantUseAfterWait) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(50, [&n](size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 50);
  }
}

// Block a 1-thread pool's worker, enqueue a known task mix under several
// sessions, release, and record execution order — with one worker the stride
// scheduler's dispatch order IS the execution order, deterministically.
std::vector<char> run_interleave(
    const std::vector<std::pair<uint32_t, int>>& sessions_and_counts,
    const std::vector<std::pair<uint32_t, uint64_t>>& weights,
    const std::vector<char>& names) {
  ThreadPool pool(1);
  for (const auto& [id, w] : weights) pool.register_session(id, w);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  std::vector<char> order;  // worker-only writes; read after wait_idle
  for (size_t s = 0; s < sessions_and_counts.size(); ++s) {
    const auto [id, count] = sessions_and_counts[s];
    const char name = names[s];
    for (int i = 0; i < count; ++i) {
      pool.submit(id, [&order, name] { order.push_back(name); });
    }
  }
  release.store(true);
  pool.wait_idle();
  return order;
}

TEST(ThreadPool, StrideInterleavesSessionsNotFifo) {
  // 6 A-tasks queued entirely before 3 B-tasks. FIFO would run AAAAAABBB;
  // stride with equal weights alternates until B drains.
  const auto order = run_interleave({{1, 6}, {2, 3}}, {{1, 1}, {2, 1}}, {'A', 'B'});
  EXPECT_EQ(std::string(order.begin(), order.end()), "ABABABAAA");
}

TEST(ThreadPool, WeightedSessionDrainsProportionallyFaster) {
  // Equal task counts; B at weight 2 takes two slots for each of A's.
  const auto order = run_interleave({{1, 4}, {2, 4}}, {{1, 1}, {2, 2}}, {'A', 'B'});
  EXPECT_EQ(std::string(order.begin(), order.end()), "ABBABBAA");
}

TEST(ThreadPool, SingleSessionDegeneratesToFifo) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, TrySubmitBouncesAtRegisteredBound) {
  ThreadPool pool(1);
  pool.register_session(7, /*weight=*/1, "bounded", /*max_queue=*/2);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.try_submit(7, [&ran] { ran.fetch_add(1); }));
  EXPECT_TRUE(pool.try_submit(7, [&ran] { ran.fetch_add(1); }));
  EXPECT_FALSE(pool.try_submit(7, [&ran] { ran.fetch_add(1); }));  // bounced
  EXPECT_EQ(pool.session_queue_depth(7), 2u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, FloodingSessionDoesNotStarveSparseOne) {
  // The fair-share starvation regression (docs/fleet-serving.md): one chatty
  // tenant floods the pool while a sparse tenant submits a trickle. Stride
  // scheduling must keep the sparse tenant's queue wait far below the
  // flooder's, and the per-session pool_task_wait_us histograms prove it.
  telemetry::Telemetry telemetry;
  ThreadPool pool(2);
  pool.set_telemetry(&telemetry, "fleet_worker");
  pool.register_session(1, /*weight=*/1, "flood");
  pool.register_session(2, /*weight=*/1, "sparse");

  const auto spin = [] {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(200);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  for (int i = 0; i < 400; ++i) pool.submit(1, spin);
  for (int i = 0; i < 12; ++i) pool.submit(2, spin);
  pool.wait_idle();

  auto& flood = telemetry.metrics().histogram(
      "pool_task_wait_us", {{"pool", "fleet_worker"}, {"session", "flood"}});
  auto& sparse = telemetry.metrics().histogram(
      "pool_task_wait_us", {{"pool", "fleet_worker"}, {"session", "sparse"}});
  ASSERT_EQ(flood.count(), 400u);
  ASSERT_EQ(sparse.count(), 12u);
  const double flood_mean =
      flood.sum() / static_cast<double>(flood.count());
  const double sparse_mean =
      sparse.sum() / static_cast<double>(sparse.count());
  // The flooder's 400 tasks queue behind each other (~mean half the backlog);
  // the sparse tenant interleaves 1:1 and waits a couple of task-times. A 3×
  // margin keeps the assertion robust to scheduler noise while still failing
  // instantly under FIFO (where sparse ≈ flood backlog ≈ same mean).
  EXPECT_LT(sparse_mean * 3.0, flood_mean)
      << "sparse=" << sparse_mean << "us flood=" << flood_mean << "us";
}

TEST(ThreadPool, DestructionWithPendingWorkJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace lgv
