#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace lgv {
namespace {

TEST(ChunkRange, EvenSplit) {
  const ChunkRange r0 = chunk_range(8, 4, 0);
  EXPECT_EQ(r0.begin, 0u);
  EXPECT_EQ(r0.end, 2u);
  const ChunkRange r3 = chunk_range(8, 4, 3);
  EXPECT_EQ(r3.begin, 6u);
  EXPECT_EQ(r3.end, 8u);
}

TEST(ChunkRange, RemainderGoesToLeadingChunks) {
  // 10 items over 4 chunks → 3,3,2,2.
  EXPECT_EQ(chunk_range(10, 4, 0).end - chunk_range(10, 4, 0).begin, 3u);
  EXPECT_EQ(chunk_range(10, 4, 1).end - chunk_range(10, 4, 1).begin, 3u);
  EXPECT_EQ(chunk_range(10, 4, 2).end - chunk_range(10, 4, 2).begin, 2u);
  EXPECT_EQ(chunk_range(10, 4, 3).end - chunk_range(10, 4, 3).begin, 2u);
}

TEST(ChunkRange, CoversAllItemsExactlyOnce) {
  for (size_t count : {1u, 7u, 24u, 100u}) {
    for (size_t chunks : {1u, 3u, 8u}) {
      std::vector<int> hits(count, 0);
      for (size_t c = 0; c < chunks; ++c) {
        const ChunkRange r = chunk_range(count, chunks, c);
        for (size_t i = r.begin; i < r.end; ++i) ++hits[i];
      }
      for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i], 1) << count << " " << chunks;
    }
  }
}

TEST(ChunkRange, FewerItemsThanChunks) {
  // 3 items over 8 chunks → one item each for the first three, empty after.
  for (size_t c = 0; c < 8; ++c) {
    const ChunkRange r = chunk_range(3, 8, c);
    EXPECT_LE(r.begin, r.end);
    EXPECT_EQ(r.end - r.begin, c < 3 ? 1u : 0u) << c;
  }
  // Empty chunks must still be valid (begin == end, within bounds).
  EXPECT_EQ(chunk_range(3, 8, 7).begin, 3u);
  EXPECT_EQ(chunk_range(3, 8, 7).end, 3u);
}

TEST(ChunkRange, ZeroItems) {
  for (size_t c = 0; c < 4; ++c) {
    const ChunkRange r = chunk_range(0, 4, c);
    EXPECT_EQ(r.begin, 0u);
    EXPECT_EQ(r.end, 0u);
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelChunksSumMatches) {
  ThreadPool pool(4);
  std::vector<long> data(257);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long> total{0};
  pool.parallel_chunks(data.size(), 4, [&](size_t begin, size_t end) {
    long local = 0;
    for (size_t i = begin; i < end; ++i) local += data[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 257L * 256L / 2L);
}

TEST(ThreadPool, ParallelChunksMoreChunksThanItems) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_chunks(3, 8, [&](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    calls.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ParallelDynamicVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  pool.parallel_dynamic(hits.size(), 4, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelDynamicRangesRespectGrain) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_dynamic(10, 4, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin % 4, 0u);
    EXPECT_LE(end - begin, 4u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);  // [0,4) [4,8) [8,10)
}

TEST(ThreadPool, ParallelDynamicGrainLargerThanCount) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  pool.parallel_dynamic(3, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    visited.fetch_add(1);
  });
  EXPECT_EQ(visited.load(), 1);
}

TEST(ThreadPool, ParallelDynamicEmpty) {
  ThreadPool pool(2);
  pool.parallel_dynamic(0, 4, [](size_t, size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ReentrantUseAfterWait) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(50, [&n](size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 50);
  }
}

TEST(ThreadPool, DestructionWithPendingWorkJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace lgv
