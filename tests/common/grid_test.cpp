#include "common/grid.h"

#include <gtest/gtest.h>

namespace lgv {
namespace {

TEST(Grid, ConstructionAndFill) {
  Grid<int> g(4, 3, 7);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.at(0, 0), 7);
  EXPECT_EQ(g.at(3, 2), 7);
  g.fill(-1);
  EXPECT_EQ(g.at(2, 1), -1);
}

TEST(Grid, InBounds) {
  Grid<int> g(4, 3);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(3, 2));
  EXPECT_FALSE(g.in_bounds(4, 0));
  EXPECT_FALSE(g.in_bounds(0, 3));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(Grid, ValueOrFallsBackOutOfBounds) {
  Grid<int> g(4, 3, 7);
  g.at(2, 1) = 42;
  EXPECT_EQ(g.value_or({2, 1}, -1), 42);
  EXPECT_EQ(g.value_or({0, 0}, -1), 7);
  EXPECT_EQ(g.value_or({4, 0}, -1), -1);
  EXPECT_EQ(g.value_or({0, 3}, -1), -1);
  EXPECT_EQ(g.value_or({-1, -1}, -1), -1);
}

TEST(Grid, RowMajorLayout) {
  Grid<int> g(3, 2, 0);
  g.at(1, 0) = 10;
  g.at(0, 1) = 20;
  EXPECT_EQ(g.data()[1], 10);
  EXPECT_EQ(g.data()[3], 20);
}

TEST(GridFrame, WorldCellRoundTrip) {
  GridFrame f{{-1.0, 2.0}, 0.1};
  const CellIndex c = f.world_to_cell({0.0, 2.55});
  EXPECT_EQ(c.x, 10);
  EXPECT_EQ(c.y, 5);
  const Point2D center = f.cell_to_world(c);
  EXPECT_NEAR(center.x, 0.05, 1e-12);
  EXPECT_NEAR(center.y, 2.55, 1e-12);
  EXPECT_EQ(f.world_to_cell(center), c);
}

TEST(GridFrame, NegativeCoordinatesFloorCorrectly) {
  GridFrame f{{0.0, 0.0}, 1.0};
  EXPECT_EQ(f.world_to_cell({-0.5, -0.5}).x, -1);
  EXPECT_EQ(f.world_to_cell({-0.5, -0.5}).y, -1);
}

}  // namespace
}  // namespace lgv
