#include "common/grid.h"

#include <gtest/gtest.h>

namespace lgv {
namespace {

TEST(Grid, ConstructionAndFill) {
  Grid<int> g(4, 3, 7);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.at(0, 0), 7);
  EXPECT_EQ(g.at(3, 2), 7);
  g.fill(-1);
  EXPECT_EQ(g.at(2, 1), -1);
}

TEST(Grid, InBounds) {
  Grid<int> g(4, 3);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(3, 2));
  EXPECT_FALSE(g.in_bounds(4, 0));
  EXPECT_FALSE(g.in_bounds(0, 3));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(Grid, ValueOrFallsBackOutOfBounds) {
  Grid<int> g(4, 3, 7);
  g.at(2, 1) = 42;
  EXPECT_EQ(g.value_or({2, 1}, -1), 42);
  EXPECT_EQ(g.value_or({0, 0}, -1), 7);
  EXPECT_EQ(g.value_or({4, 0}, -1), -1);
  EXPECT_EQ(g.value_or({0, 3}, -1), -1);
  EXPECT_EQ(g.value_or({-1, -1}, -1), -1);
}

TEST(Grid, RowMajorLayout) {
  Grid<int> g(3, 2, 0);
  g.at(1, 0) = 10;
  g.at(0, 1) = 20;
  EXPECT_EQ(g.data()[1], 10);
  EXPECT_EQ(g.data()[3], 20);
}

TEST(GridFrame, WorldCellRoundTrip) {
  GridFrame f{{-1.0, 2.0}, 0.1};
  const CellIndex c = f.world_to_cell({0.0, 2.55});
  EXPECT_EQ(c.x, 10);
  EXPECT_EQ(c.y, 5);
  const Point2D center = f.cell_to_world(c);
  EXPECT_NEAR(center.x, 0.05, 1e-12);
  EXPECT_NEAR(center.y, 2.55, 1e-12);
  EXPECT_EQ(f.world_to_cell(center), c);
}

TEST(GridFrame, NegativeCoordinatesFloorCorrectly) {
  GridFrame f{{0.0, 0.0}, 1.0};
  EXPECT_EQ(f.world_to_cell({-0.5, -0.5}).x, -1);
  EXPECT_EQ(f.world_to_cell({-0.5, -0.5}).y, -1);
}

TEST(CowGrid, CopyIsSharedUntilFirstWrite) {
  CowGrid<int> a(4, 3, 7);
  const uint64_t detaches_before = cow_detach_count();
  CowGrid<int> b = a;  // O(1): refcount bump, no cell copy
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(cow_detach_count(), detaches_before);

  b.mut_at(1, 1) = 42;  // first write detaches b
  EXPECT_FALSE(a.shares_storage_with(b));
  EXPECT_EQ(cow_detach_count(), detaches_before + 1);
  EXPECT_EQ(b.at(1, 1), 42);
  EXPECT_EQ(a.at(1, 1), 7);  // original untouched

  b.mut_at(2, 0) = 9;  // sole owner now: no further detach
  EXPECT_EQ(cow_detach_count(), detaches_before + 1);
}

TEST(CowGrid, SoleOwnerWritesInPlace) {
  CowGrid<int> a(4, 3, 0);
  const uint64_t detaches_before = cow_detach_count();
  a.mut_at(0, 0) = 1;
  a.mutable_data()[5] = 2;
  EXPECT_EQ(cow_detach_count(), detaches_before);
}

TEST(CowGrid, UnshareForcesPrivateStorage) {
  CowGrid<int> a(2, 2, 3);
  CowGrid<int> b = a;
  b.unshare();
  EXPECT_FALSE(a.shares_storage_with(b));
  EXPECT_EQ(b.at(1, 1), 3);  // contents preserved
  const uint64_t detaches_before = cow_detach_count();
  b.unshare();  // already private: no-op
  EXPECT_EQ(cow_detach_count(), detaches_before);
}

TEST(CowGrid, EqualityComparesContentAcrossStorage) {
  CowGrid<int> a(2, 2, 3);
  CowGrid<int> b = a;
  EXPECT_EQ(a, b);  // shared storage fast path
  b.unshare();
  EXPECT_EQ(a, b);  // same content, distinct blocks
  b.mut_at(0, 0) = 4;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace lgv
