#include "common/stats.h"

#include <gtest/gtest.h>

namespace lgv {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Percentile, Interpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(TimeWindow, RateOverWindow) {
  TimeWindow w(1.0);
  for (int i = 0; i < 5; ++i) w.add(0.1 * i, 1.0);
  EXPECT_DOUBLE_EQ(w.rate(0.5), 5.0);
  // One second later everything expired.
  EXPECT_DOUBLE_EQ(w.rate(2.0), 0.0);
}

TEST(TimeWindow, ExpiresOldEntries) {
  TimeWindow w(1.0);
  w.add(0.0, 2.0);
  w.add(0.9, 3.0);
  w.expire(1.5);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.sum(), 3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(TimeWindow, BandwidthScenario) {
  // 5 Hz stream degrading to 1 Hz — the Algorithm 2 trigger case.
  TimeWindow w(1.0);
  double t = 0.0;
  for (int i = 0; i < 10; ++i, t += 0.2) w.add(t, 1.0);
  EXPECT_NEAR(w.rate(t), 5.0, 1.0);
  // Now only one packet in the last second.
  t += 1.0;
  w.add(t, 1.0);
  EXPECT_NEAR(w.rate(t), 1.0, 0.01);
}

}  // namespace
}  // namespace lgv
