#include "common/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace lgv::telemetry {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Counter, IncrementAndRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetTracksHighWater) {
  Gauge g;
  g.set(3.0);
  g.set(10.0);
  g.set(-5.0);
  EXPECT_DOUBLE_EQ(g.value(), -5.0);
  EXPECT_DOUBLE_EQ(g.max(), 10.0);
}

TEST(Gauge, AddAccumulates) {
  Gauge g;
  g.add(2.5);
  g.add(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  EXPECT_DOUBLE_EQ(g.max(), 5.0);
}

TEST(Histogram, CountSumMean) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(8.0);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0 / 3.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{1, 1, 0, 1}));
}

TEST(Histogram, QuantileOfConstantIsTheConstant) {
  // Sparse histogram: every observation is 7, far inside the (4, 100] bucket.
  // Interpolation must clamp to the observed range, not report the bound.
  Histogram h({1.0, 4.0, 100.0});
  for (int i = 0; i < 50; ++i) h.observe(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.0);
}

TEST(Histogram, QuantilesOfUniformDistribution) {
  Histogram h({25.0, 50.0, 75.0, 100.0});
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  EXPECT_NEAR(h.quantile(0.50), 50.0, 3.0);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 3.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 3.0);
  // Quantile is monotone in q.
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(duration_bounds_s());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, SeriesKeySortsLabels) {
  EXPECT_EQ(MetricsRegistry::series_key("mw_dropped_total", {}), "mw_dropped_total");
  EXPECT_EQ(MetricsRegistry::series_key("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
  // Label order must not create distinct series.
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  Counter& c2 = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(Histogram, OverflowBucketExportedExplicitly) {
  // Regression: observations past the last bound must stay visible — in the
  // accessor, in the snapshot, and in the JSON — not vanish into a bucket
  // whose bound nobody can name.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_s", {}, {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);
  h.observe(99.0);
  EXPECT_EQ(h.overflow_count(), 2u);

  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* s = snap.find("lat_s");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->overflow, 2.0);

  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"overflow\": 2"), std::string::npos);
}

TEST(MetricsRegistry, DefaultLabelsMergedExplicitWins) {
  MetricsRegistry reg;
  reg.set_default_labels({{"vehicle_id", "lgv-07"}});
  reg.counter("ticks_total").inc();
  EXPECT_EQ(reg.counter("ticks_total").value(), 1u);  // same merged series
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("ticks_total{vehicle_id=lgv-07}"), nullptr);

  // An explicit label of the same key beats the default.
  reg.counter("ticks_total", {{"vehicle_id", "override"}}).inc(5);
  const MetricsSnapshot snap2 = reg.snapshot();
  const MetricSample* s = snap2.find("ticks_total{vehicle_id=override}");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 5.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits", {{"topic", "scan"}});
  c.inc(3);
  EXPECT_EQ(reg.counter("hits", {{"topic", "scan"}}).value(), 3u);
  EXPECT_EQ(&reg.gauge("depth"), &reg.gauge("depth"));
  Histogram& h = reg.histogram("lat", {}, {1.0, 2.0});
  // Bounds are fixed by the first caller; later callers get the same series.
  EXPECT_EQ(&reg.histogram("lat", {}, {9.0}), &h);
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(reg.series_count(), 3u);
}

TEST(MetricsRegistry, SnapshotExtractsAllKinds) {
  MetricsRegistry reg;
  reg.counter("drops", {{"topic", "scan"}}).inc(4);
  reg.gauge("depth").set(2.0);
  Histogram& h = reg.histogram("exec_s", {{"node", "loc"}});
  h.observe(0.2);
  h.observe(0.2);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.families(), (std::vector<std::string>{"depth", "drops", "exec_s"}));

  const MetricSample* drops = snap.find("drops{topic=scan}");
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(drops->value, 4.0);

  const MetricSample* depth = snap.find("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 2.0);
  EXPECT_DOUBLE_EQ(depth->max, 2.0);

  const MetricSample* exec = snap.find("exec_s{node=loc}");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->kind, MetricKind::kHistogram);
  EXPECT_DOUBLE_EQ(exec->value, 2.0);
  EXPECT_DOUBLE_EQ(exec->sum, 0.4);
  EXPECT_DOUBLE_EQ(exec->p50, 0.2);

  EXPECT_EQ(snap.find("no_such_series"), nullptr);
}

TEST(MetricsRegistry, JsonIsDeterministicAndKeySorted) {
  MetricsRegistry reg;
  reg.counter("b_total").inc(2);
  reg.gauge("a_depth").set(1.5);
  std::ostringstream out1;
  reg.write_json(out1);
  std::ostringstream out2;
  reg.write_json(out2);
  EXPECT_EQ(out1.str(), out2.str());
  // Map ordering puts a_depth before b_total regardless of creation order.
  EXPECT_EQ(out1.str(),
            "{\n"
            "  \"a_depth\": {\"family\": \"a_depth\", \"kind\": \"gauge\", "
            "\"value\": 1.5, \"max\": 1.5},\n"
            "  \"b_total\": {\"family\": \"b_total\", \"kind\": \"counter\", "
            "\"value\": 2}\n"
            "}\n");
}

TEST(MetricsRegistry, ConcurrentWritersStayConsistent) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter& c = reg.counter("hammer_total");
      Gauge& g = reg.gauge("hammer_depth");
      Histogram& h = reg.histogram("hammer_s", {}, {0.5, 1.0});
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.set(static_cast<double>(i % 7));
        h.observe(0.25 + static_cast<double>(i % 3));
        if (i % 1000 == 0) reg.snapshot();  // readers race writers
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("hammer_total").value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("hammer_s").count(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(reg.gauge("hammer_depth").max(), 6.0);
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, GoldenChromeJson) {
  SimClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.span("loc", "lgv", "localization", 0.5, 0.25, {{"cycles", "42"}});
  clock.set(1.5);
  tracer.instant_now("alg2.decision", "decisions", "algorithm2",
                     {{"note", "hello world"}});

  std::ostringstream out;
  tracer.write_chrome_json(out);
  // Deterministic golden: numeric lanes in first-appearance order (lgv=1,
  // decisions=2), metadata naming each lane, numeric args unquoted.
  EXPECT_EQ(
      out.str(),
      "{\"traceEvents\":[\n"
      "{\"name\":\"loc\",\"ph\":\"X\",\"ts\":500000.000,\"dur\":250000.000,"
      "\"pid\":1,\"tid\":1,\"args\":{\"cycles\":42}},\n"
      "{\"name\":\"alg2.decision\",\"ph\":\"i\",\"ts\":1500000.000,"
      "\"pid\":2,\"tid\":2,\"s\":\"t\",\"args\":{\"note\":\"hello world\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"decisions\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"lgv\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":2,"
      "\"args\":{\"name\":\"algorithm2\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"localization\"}}\n"
      "]}\n");
}

TEST(Tracer, JsonlOneEventPerLine) {
  Tracer tracer;
  tracer.instant("a", "p", "t", 0.001);
  tracer.span("b", "p", "t", 0.002, 0.003);
  std::ostringstream out;
  tracer.write_jsonl(out);
  // JSONL keeps pid/tid as the host/node name strings — the critical-path
  // analyzer classifies by lane name, not by numeric lane id.
  EXPECT_EQ(out.str(),
            "{\"name\":\"a\",\"ph\":\"i\",\"ts\":1000.000,\"pid\":\"p\","
            "\"tid\":\"t\",\"s\":\"t\"}\n"
            "{\"name\":\"b\",\"ph\":\"X\",\"ts\":2000.000,\"dur\":3000.000,"
            "\"pid\":\"p\",\"tid\":\"t\"}\n");
}

TEST(Tracer, CapsEventsAndCountsDrops) {
  Tracer tracer(/*max_events=*/2);
  tracer.instant("a", "p", "t", 0.0);
  tracer.instant("b", "p", "t", 0.1);
  tracer.instant("c", "p", "t", 0.2);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, NowWithoutClockIsZero) {
  Tracer tracer;
  EXPECT_DOUBLE_EQ(tracer.now(), 0.0);
  tracer.instant_now("a", "p", "t");
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].ts_s, 0.0);
}

TEST(Tracer, ConcurrentRecordersLoseNothing) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kIters; ++i) {
        tracer.instant("e", "p" + std::to_string(t), "t", i * 1e-4);
        if (i % 500 == 0) tracer.size();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.size(), static_cast<size_t>(kThreads) * kIters);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// --------------------------------------------------------------- telemetry

TEST(Telemetry, BundleWiresClockAndConfig) {
  SimClock clock;
  clock.set(2.0);
  Telemetry tel({.enabled = true, .max_trace_events = 8});
  tel.set_clock(&clock);
  EXPECT_TRUE(tel.enabled());
  EXPECT_DOUBLE_EQ(tel.now(), 2.0);
  tel.tracer().instant_now("x", "p", "t");
  ASSERT_EQ(tel.tracer().events().size(), 1u);
  EXPECT_DOUBLE_EQ(tel.tracer().events()[0].ts_s, 2.0);
  for (int i = 0; i < 20; ++i) tel.tracer().instant("y", "p", "t", 0.0);
  EXPECT_EQ(tel.tracer().size(), 8u);  // max_trace_events respected
}

}  // namespace
}  // namespace lgv::telemetry
