// Equivalence of the vectorized scanMatch building blocks against their
// scalar reference semantics, at every level this build/CPU can run:
//  - exp_array vs std::exp (the kernel promises ≤2 ulp),
//  - transform_project vs the scalar transform+projection — bit-identical,
//    cells compared with EXPECT_EQ (branch decisions must never diverge),
//  - score_hits vs a scalar replay of the 9-neighbor min-d² + exp sum,
//  - the full ScanMatcher::score under forced levels on randomized maps,
//    scans and awkward lengths (tail lanes: n = 1, 2, 3, 5, 7, 9, 33).
// Unavailable levels GTEST_SKIP so the suite is meaningful on any host.
#include "common/simd_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "common/soa.h"
#include "perception/likelihood_field.h"
#include "perception/scan_matcher.h"
#include "sim/lidar.h"
#include "sim/world.h"

namespace lgv {
namespace {

std::vector<simd::Level> vector_levels() {
  std::vector<simd::Level> out;
  if (simd::detected_level() >= simd::Level::kSSE2) out.push_back(simd::Level::kSSE2);
  if (simd::detected_level() >= simd::Level::kAVX2) out.push_back(simd::Level::kAVX2);
  return out;
}

/// Pins simd::active_level() for a scope (and restores on exit).
struct ForcedLevel {
  explicit ForcedLevel(simd::Level level) { simd::force_level(level); }
  ~ForcedLevel() { simd::clear_forced_level(); }
};

TEST(SimdKernels, ExpArrayMatchesLibmWithinUlps) {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector unit";
  Rng rng(77);
  std::vector<double> x;
  // The score path feeds −d²/2σ² ∈ [−large, 0]; also sweep positives and the
  // extremes where the range reduction has to behave.
  for (int i = 0; i < 4096; ++i) x.push_back(rng.uniform(-60.0, 10.0));
  x.insert(x.end(), {0.0, -0.0, 1.0, -1.0, -708.0, 700.0, 1e-17, -1e-17});
  std::vector<double> out(x.size());
  for (simd::Level level : levels) {
    simd::exp_array(level, x.data(), out.data(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      const double ref = std::exp(x[i]);
      // 2 ulp ≈ 4.4e−16 relative; allow a little slack for the subnormal end.
      EXPECT_NEAR(out[i], ref, std::abs(ref) * 5e-15 + 1e-300)
          << simd::level_name(level) << " x=" << x[i];
    }
  }
}

TEST(SimdKernels, TransformProjectBitIdenticalToScalar) {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector unit";
  Rng rng(101);
  for (size_t n : {1u, 2u, 3u, 5u, 7u, 9u, 33u, 257u}) {
    aligned_vector<double> ex(n), ey(n), bx(n), by(n);
    for (size_t i = 0; i < n; ++i) {
      ex[i] = rng.uniform(-8.0, 8.0);
      ey[i] = rng.uniform(-8.0, 8.0);
      bx[i] = ex[i] * 0.98;
      by[i] = ey[i] * 0.98;
    }
    const double px = rng.uniform(-2.0, 10.0), py = rng.uniform(-2.0, 10.0);
    const double theta = rng.uniform(-3.1, 3.1);
    const double cos_t = std::cos(theta), sin_t = std::sin(theta);
    const double ox = -0.35, oy = 0.15, res = 0.05;

    aligned_vector<double> wx(n), wy(n);
    std::vector<int32_t> ecx(n), ecy(n), bcx(n), bcy(n);
    simd::TransformProjectArgs args;
    args.n = n;
    args.end_x = ex.data();
    args.end_y = ey.data();
    args.before_x = bx.data();
    args.before_y = by.data();
    args.pose_x = px;
    args.pose_y = py;
    args.cos_t = cos_t;
    args.sin_t = sin_t;
    args.origin_x = ox;
    args.origin_y = oy;
    args.resolution = res;
    args.out_end_x = wx.data();
    args.out_end_y = wy.data();
    args.out_end_cx = ecx.data();
    args.out_end_cy = ecy.data();
    args.out_before_cx = bcx.data();
    args.out_before_cy = bcy.data();

    for (simd::Level level : levels) {
      simd::transform_project(level, args);
      for (size_t i = 0; i < n; ++i) {
        // The scalar reference sequence, verbatim from ScanMatcher::score.
        const double sx = px + cos_t * ex[i] - sin_t * ey[i];
        const double sy = py + sin_t * ex[i] + cos_t * ey[i];
        const double sbx = px + cos_t * bx[i] - sin_t * by[i];
        const double sby = py + sin_t * bx[i] + cos_t * by[i];
        ASSERT_EQ(wx[i], sx) << simd::level_name(level) << " n=" << n << " i=" << i;
        ASSERT_EQ(wy[i], sy) << simd::level_name(level) << " n=" << n << " i=" << i;
        ASSERT_EQ(ecx[i], static_cast<int>(std::floor((sx - ox) / res)));
        ASSERT_EQ(ecy[i], static_cast<int>(std::floor((sy - oy) / res)));
        ASSERT_EQ(bcx[i], static_cast<int>(std::floor((sbx - ox) / res)));
        ASSERT_EQ(bcy[i], static_cast<int>(std::floor((sby - oy) / res)));
      }
    }
  }
}

TEST(SimdKernels, ScoreHitsMatchesScalarReplay) {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector unit";
  Rng rng(202);
  const double ox = 0.0, oy = 0.0, res = 0.1;
  const double sigma = 0.12;
  const double two_sigma2 = 2.0 * sigma * sigma;
  for (size_t n : {1u, 2u, 3u, 5u, 7u, 9u, 33u, 100u}) {
    aligned_vector<double> ex(n), ey(n);
    std::vector<int32_t> cx(n), cy(n), mask(n);
    for (size_t i = 0; i < n; ++i) {
      ex[i] = rng.uniform(0.0, 10.0);
      ey[i] = rng.uniform(0.0, 10.0);
      cx[i] = static_cast<int>(std::floor((ex[i] - ox) / res));
      cy[i] = static_cast<int>(std::floor((ey[i] - oy) / res));
      // Any non-empty subset of the 9-neighborhood.
      mask[i] = 1 + static_cast<int>(rng.uniform(0.0, 510.0));
    }
    simd::ScoreHitsArgs args;
    args.n = n;
    args.end_x = ex.data();
    args.end_y = ey.data();
    args.cell_x = cx.data();
    args.cell_y = cy.data();
    args.neighbor_mask = mask.data();
    args.origin_x = ox;
    args.origin_y = oy;
    args.resolution = res;
    args.two_sigma2 = two_sigma2;

    double expected = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double min_d2 = std::numeric_limits<double>::infinity();
      for (int k = 0; k < 9; ++k) {
        if ((mask[i] & (1 << k)) == 0) continue;
        // Occupied cell center, as LikelihoodField::min_obstacle_d2 computes.
        const double cwx = ox + (cx[i] + (k % 3 - 1) + 0.5) * res;
        const double cwy = oy + (cy[i] + (k / 3 - 1) + 0.5) * res;
        const double dx = cwx - ex[i], dy = cwy - ey[i];
        min_d2 = std::min(min_d2, dx * dx + dy * dy);
      }
      expected += std::exp(-min_d2 / two_sigma2);
    }
    for (simd::Level level : levels) {
      const double got = simd::score_hits(level, args);
      EXPECT_NEAR(got, expected, std::abs(expected) * 1e-12 + 1e-12)
          << simd::level_name(level) << " n=" << n;
    }
  }
}

// Full-pipeline equivalence: ScanMatcher::score under each forced level
// against the forced-scalar reference, on randomized maps, poses, and scans
// truncated to awkward lengths so the padded tail lanes get exercised.
TEST(SimdKernels, ScoreEquivalentAcrossLevelsOnRandomizedScans) {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector unit";

  Rng rng(31);
  auto world = std::make_unique<sim::World>(10.0, 10.0);
  world->add_outer_walls(0.2);
  for (int i = 0; i < 4; ++i) {
    const double x = rng.uniform(1.5, 7.5), y = rng.uniform(1.5, 7.5);
    world->add_box({x, y}, {x + rng.uniform(0.4, 1.2), y + rng.uniform(0.4, 1.2)});
  }
  sim::Lidar lidar(sim::LidarConfig{}, 5);
  // Poses inside a box see no in-range beams; reject them like the perception
  // test fixtures do.
  const auto random_free_pose = [&]() -> Pose2D {
    while (true) {
      const Pose2D p{rng.uniform(0.6, 9.4), rng.uniform(0.6, 9.4),
                     rng.uniform(-3.1, 3.1)};
      if (!world->grid().at(world->frame().world_to_cell(p.position()))) return p;
    }
  };
  perception::OccupancyGridConfig gcfg;
  gcfg.resolution = 0.1;
  perception::OccupancyGrid map(Point2D{0, 0}, 10.0, 10.0, gcfg);
  for (int i = 0; i < 6; ++i) {
    const Pose2D p = random_free_pose();
    map.integrate_scan(p, lidar.scan(*world, p, 0.0));
  }
  perception::LikelihoodField field;
  field.sync(map);
  perception::ScanMatcher matcher;

  for (int trial = 0; trial < 20; ++trial) {
    const Pose2D pose = random_free_pose();
    const msg::LaserScan scan = lidar.scan(*world, pose, 0.0);
    perception::PrecomputedScan pre = perception::precompute_scan(
        scan, matcher.config().beam_stride, map.frame().resolution);
    ASSERT_FALSE(pre.empty());
    // Truncate to a rotating awkward length (tail lanes, sub-lane counts).
    const size_t lens[] = {1, 2, 3, 5, 7, 9, 33, pre.size()};
    const size_t n = std::min(pre.size(), lens[trial % 8]);
    pre.end_x.resize(n);
    pre.end_y.resize(n);
    pre.before_x.resize(n);
    pre.before_y.resize(n);

    double reference = 0.0;
    {
      const ForcedLevel pin(simd::Level::kScalar);
      reference = matcher.score(field, pose, pre, nullptr);
    }
    for (simd::Level level : levels) {
      const ForcedLevel pin(level);
      const double got = matcher.score(field, pose, pre, nullptr);
      EXPECT_NEAR(got, reference, std::abs(reference) * 1e-12 + 1e-12)
          << simd::level_name(level) << " trial=" << trial << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace lgv
