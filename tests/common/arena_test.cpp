#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace lgv {
namespace {

bool aligned32(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) & 31u) == 0;
}

TEST(Arena, AllocationsAre32ByteAligned) {
  Arena arena;
  // Deliberately misalign the bump pointer with odd-sized requests.
  for (int i = 0; i < 16; ++i) {
    (void)arena.allocate(static_cast<size_t>(1 + 7 * i), 1);
    EXPECT_TRUE(aligned32(arena.alloc_array<double>(3)));
    EXPECT_TRUE(aligned32(arena.alloc_array<int32_t>(5)));
  }
}

TEST(Arena, ResetRewindsWithoutReleasingCapacity) {
  Arena arena;
  for (int i = 0; i < 8; ++i) (void)arena.alloc_array<double>(1024);
  const size_t capacity = arena.capacity_bytes();
  const size_t blocks = arena.block_count();
  EXPECT_GT(capacity, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_live(), 0u);
  EXPECT_EQ(arena.capacity_bytes(), capacity);
  EXPECT_EQ(arena.block_count(), blocks);
  // Refilling to the same footprint must not grow the arena: the blocks are
  // reused, which is the whole point of the per-update rewind.
  for (int i = 0; i < 8; ++i) (void)arena.alloc_array<double>(1024);
  EXPECT_EQ(arena.capacity_bytes(), capacity);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(Arena, ScopeRewindsToWatermark) {
  Arena arena;
  (void)arena.alloc_array<double>(16);
  const size_t live_before = arena.bytes_live();
  double* reused_first = nullptr;
  {
    const Arena::Scope scope(arena);
    reused_first = arena.alloc_array<double>(256);
    (void)arena.alloc_array<int32_t>(64);
    EXPECT_GT(arena.bytes_live(), live_before);
  }
  EXPECT_EQ(arena.bytes_live(), live_before);
  // The next scope's first allocation lands on the same memory.
  {
    const Arena::Scope scope(arena);
    EXPECT_EQ(arena.alloc_array<double>(256), reused_first);
  }
}

TEST(Arena, NestedScopesUnwindInOrder) {
  Arena arena;
  const Arena::Scope outer(arena);
  (void)arena.alloc_array<double>(8);
  const size_t outer_live = arena.bytes_live();
  {
    const Arena::Scope inner(arena);
    (void)arena.alloc_array<double>(4096);
    {
      const Arena::Scope innermost(arena);
      (void)arena.alloc_array<double>(4096);
    }
    EXPECT_EQ(arena.bytes_live(), outer_live + 4096 * sizeof(double));
  }
  EXPECT_EQ(arena.bytes_live(), outer_live);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/1024);
  double* small = arena.alloc_array<double>(4);
  // 1 MB exceeds the 1 KB block size; the arena must still satisfy it.
  double* big = arena.alloc_array<double>(128 * 1024);
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(aligned32(big));
  big[0] = 1.0;
  big[128 * 1024 - 1] = 2.0;
  // The small allocation is unaffected.
  small[0] = 3.0;
  EXPECT_DOUBLE_EQ(big[0] + big[128 * 1024 - 1] + small[0], 6.0);
  EXPECT_GE(arena.block_count(), 2u);
}

TEST(Arena, HighWaterTracksPeakLiveBytes) {
  Arena arena;
  {
    const Arena::Scope scope(arena);
    (void)arena.alloc_array<uint8_t>(1000);
  }
  {
    const Arena::Scope scope(arena);
    (void)arena.alloc_array<uint8_t>(500);
  }
  EXPECT_EQ(arena.high_water_bytes(), 1000u);
}

TEST(Arena, ThreadScratchIsPerThread) {
  Arena* main_arena = &thread_scratch();
  Arena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &thread_scratch(); });
  t.join();
  EXPECT_NE(main_arena, nullptr);
  EXPECT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena);
  // Stable across calls on the same thread.
  EXPECT_EQ(main_arena, &thread_scratch());
}

}  // namespace
}  // namespace lgv
