#include "common/geometry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace lgv {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(NormalizeAngle, IdentityInsideRange) {
  EXPECT_DOUBLE_EQ(normalize_angle(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalize_angle(1.0), 1.0);
  EXPECT_DOUBLE_EQ(normalize_angle(-1.0), -1.0);
}

TEST(NormalizeAngle, WrapsLargeAngles) {
  EXPECT_NEAR(normalize_angle(2.0 * kPi), 0.0, 1e-12);
  EXPECT_NEAR(normalize_angle(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(normalize_angle(-3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(normalize_angle(5.5 * kPi), -0.5 * kPi, 1e-12);
}

TEST(NormalizeAngle, ResultAlwaysInHalfOpenInterval) {
  for (double a = -50.0; a < 50.0; a += 0.37) {
    const double n = normalize_angle(a);
    EXPECT_GT(n, -kPi - 1e-12) << a;
    EXPECT_LE(n, kPi + 1e-12) << a;
    // Same direction as the original angle.
    EXPECT_NEAR(std::sin(n), std::sin(a), 1e-9);
    EXPECT_NEAR(std::cos(n), std::cos(a), 1e-9);
  }
}

TEST(AngleDiff, ShortestPath) {
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(-kPi + 0.1, kPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(kPi - 0.1, -kPi + 0.1), -0.2, 1e-12);
}

TEST(Point2D, Arithmetic) {
  const Point2D a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Point2D(4.0, 1.0));
  EXPECT_EQ(b - a, Point2D(2.0, -3.0));
  EXPECT_EQ(a * 2.0, Point2D(2.0, 4.0));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ(Point2D(3.0, 4.0).norm(), 5.0);
}

TEST(Pose2D, TransformRoundTrip) {
  const Pose2D pose{2.0, -1.0, 0.7};
  const Point2D local{0.5, 1.5};
  const Point2D world = pose.transform(local);
  const Point2D back = pose.inverse_transform(world);
  EXPECT_NEAR(back.x, local.x, 1e-12);
  EXPECT_NEAR(back.y, local.y, 1e-12);
}

TEST(Pose2D, ComposeWithInverseIsIdentity) {
  const Pose2D pose{1.2, 3.4, -2.1};
  const Pose2D ident = pose.compose(pose.inverse());
  EXPECT_NEAR(ident.x, 0.0, 1e-12);
  EXPECT_NEAR(ident.y, 0.0, 1e-12);
  EXPECT_NEAR(ident.theta, 0.0, 1e-12);
}

TEST(Pose2D, BetweenRecoversTarget) {
  const Pose2D a{1.0, 2.0, 0.3};
  const Pose2D b{-2.0, 0.5, -1.2};
  const Pose2D delta = a.between(b);
  const Pose2D recovered = a.compose(delta);
  EXPECT_NEAR(recovered.x, b.x, 1e-12);
  EXPECT_NEAR(recovered.y, b.y, 1e-12);
  EXPECT_NEAR(angle_diff(recovered.theta, b.theta), 0.0, 1e-12);
}

TEST(Pose2D, TransformRotates) {
  const Pose2D pose{0.0, 0.0, kPi / 2.0};
  const Point2D p = pose.transform({1.0, 0.0});
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(Bresenham, HorizontalLine) {
  const auto cells = bresenham_line({0, 0}, {4, 0});
  ASSERT_EQ(cells.size(), 5u);
  for (int i = 0; i <= 4; ++i) EXPECT_EQ(cells[static_cast<size_t>(i)], (CellIndex{i, 0}));
}

TEST(Bresenham, DiagonalLine) {
  const auto cells = bresenham_line({0, 0}, {3, 3});
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells.front(), (CellIndex{0, 0}));
  EXPECT_EQ(cells.back(), (CellIndex{3, 3}));
}

TEST(Bresenham, SingleCell) {
  const auto cells = bresenham_line({2, 2}, {2, 2});
  ASSERT_EQ(cells.size(), 1u);
}

TEST(Bresenham, EndpointsAlwaysIncludedAndConnected) {
  const CellIndex from{1, -2};
  for (int x = -6; x <= 6; x += 3) {
    for (int y = -6; y <= 6; y += 2) {
      const CellIndex to{x, y};
      const auto cells = bresenham_line(from, to);
      ASSERT_FALSE(cells.empty());
      EXPECT_EQ(cells.front(), from);
      EXPECT_EQ(cells.back(), to);
      for (size_t i = 1; i < cells.size(); ++i) {
        EXPECT_LE(std::abs(cells[i].x - cells[i - 1].x), 1);
        EXPECT_LE(std::abs(cells[i].y - cells[i - 1].y), 1);
      }
    }
  }
}

TEST(BoundingBox, ContainsAndExpand) {
  BoundingBox box{{0, 0}, {1, 1}};
  EXPECT_TRUE(box.contains({0.5, 0.5}));
  EXPECT_FALSE(box.contains({1.5, 0.5}));
  box.expand({2.0, -1.0});
  EXPECT_TRUE(box.contains({1.5, 0.0}));
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.height(), 2.0);
}

TEST(PathLength, Polyline) {
  EXPECT_DOUBLE_EQ(path_length({}), 0.0);
  EXPECT_DOUBLE_EQ(path_length({{0, 0}}), 0.0);
  EXPECT_DOUBLE_EQ(path_length({{0, 0}, {3, 4}, {3, 5}}), 6.0);
}

}  // namespace
}  // namespace lgv
