#include "core/switcher.h"

#include <gtest/gtest.h>

#include "common/serialization.h"
#include "msg/messages.h"

namespace lgv::core {
namespace {

using platform::Host;

class SwitcherTest : public ::testing::Test {
 protected:
  SwitcherTest()
      : channel(make_channel()),
        switcher(&graph, &channel, &clock, &energy, &power) {
    graph.register_node("lgv_node", Host::kLgv);
    graph.register_node("cloud_node", Host::kCloudServer);
    graph.set_remote_transport(&switcher);
    channel.set_robot_position({2.0, 0.0});  // near the WAP: clean link
  }

  static net::WirelessChannel make_channel() {
    net::ChannelConfig cfg;
    cfg.wap_position = {0.0, 0.0};
    cfg.shadowing_sigma_db = 0.0;
    return net::WirelessChannel(cfg);
  }

  void pump_until(double t_end, double dt = 0.005) {
    while (clock.now() < t_end) {
      clock.advance(dt);
      switcher.step();
      graph.spin();
    }
  }

  SimClock clock;
  mw::Graph graph;
  net::WirelessChannel channel;
  sim::PowerModel power;
  sim::EnergyMeter energy;
  Switcher switcher;
};

TEST_F(SwitcherTest, UplinkMessageArrivesWithLatency) {
  auto pub = graph.advertise<msg::TwistMsg>("lgv_node", "cmd");
  double received_at = -1.0;
  graph.subscribe<msg::TwistMsg>("cloud_node", "cmd", [&](const msg::TwistMsg&) {
    received_at = clock.now();
  });
  msg::TwistMsg t;
  t.velocity.linear = 0.4;
  pub.publish(t);
  graph.spin();
  EXPECT_LT(received_at, 0.0);  // not yet
  pump_until(0.5);
  EXPECT_GT(received_at, 0.0);
  EXPECT_LT(received_at, 0.1);  // a few ms of wireless latency
  EXPECT_EQ(switcher.stats().uplink_messages, 1u);
}

TEST_F(SwitcherTest, DownlinkDirectionCounted) {
  auto pub = graph.advertise<msg::TwistMsg>("cloud_node", "cmd_back");
  int got = 0;
  graph.subscribe<msg::TwistMsg>("lgv_node", "cmd_back",
                                 [&](const msg::TwistMsg&) { ++got; });
  pub.publish({});
  graph.spin();
  pump_until(0.5);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(switcher.stats().downlink_messages, 1u);
  EXPECT_EQ(switcher.stats().uplink_messages, 0u);
}

TEST_F(SwitcherTest, UplinkChargesEq1bEnergy) {
  auto pub = graph.advertise<msg::LaserScan>("lgv_node", "scan");
  graph.subscribe<msg::LaserScan>("cloud_node", "scan", [](const msg::LaserScan&) {});
  msg::LaserScan s;
  s.ranges.assign(360, 1.0f);
  const double before = energy.energy().wireless;
  pub.publish(s);
  EXPECT_GT(energy.energy().wireless, before);
}

TEST_F(SwitcherTest, DownlinkDoesNotChargeRobotEnergy) {
  // The paper ignores receive energy (§III-A).
  auto pub = graph.advertise<msg::TwistMsg>("cloud_node", "cmd_back");
  graph.subscribe<msg::TwistMsg>("lgv_node", "cmd_back", [](const msg::TwistMsg&) {});
  const double before = energy.energy().wireless;
  pub.publish({});
  EXPECT_DOUBLE_EQ(energy.energy().wireless, before);
}

TEST_F(SwitcherTest, MaxMessageBytesTracked) {
  auto pub = graph.advertise<msg::LaserScan>("lgv_node", "scan");
  graph.subscribe<msg::LaserScan>("cloud_node", "scan", [](const msg::LaserScan&) {});
  msg::LaserScan s;
  s.ranges.assign(360, 1.0f);
  pub.publish(s);
  // ~360 × 4 B + header: the paper's "2.94 KB laser scan" territory.
  EXPECT_GT(switcher.stats().max_message_bytes, 1400.0);
  EXPECT_LT(switcher.stats().max_message_bytes, 3200.0);
}

TEST_F(SwitcherTest, OutageDropsAtKernelBuffer) {
  channel.set_robot_position({500.0, 0.0});  // outage
  auto pub = graph.advertise<msg::TwistMsg>("lgv_node", "cmd");
  int got = 0;
  graph.subscribe<msg::TwistMsg>("cloud_node", "cmd", [&](const msg::TwistMsg&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    pub.publish({});
    clock.advance(0.2);
    switcher.step();
  }
  graph.spin();
  EXPECT_EQ(got, 0);
  EXPECT_GT(switcher.uplink().stats().dropped_buffer, 0u);
}

TEST_F(SwitcherTest, StreamPacketsReachCallback) {
  int received = 0;
  double last_sent = -1.0;
  switcher.set_stream_callback([&](double sent, double now) {
    ++received;
    last_sent = sent;
    EXPECT_GE(now, sent);
  });
  for (int i = 0; i < 5; ++i) {
    switcher.send_stream_packet();
    pump_until(clock.now() + 0.2);
  }
  EXPECT_EQ(received, 5);
  EXPECT_GE(last_sent, 0.0);
}

TEST_F(SwitcherTest, StateMigrationReturnsFutureCompletion) {
  const double t0 = clock.now();
  const MigrationResult mig = switcher.migrate_state(500e3, /*uplink=*/true);
  EXPECT_GT(mig.completion, t0);
  EXPECT_TRUE(mig.committed);  // clean link: first attempt commits
  EXPECT_EQ(mig.attempts, 1);
  EXPECT_EQ(mig.chunk_retransmits, 0u);
  EXPECT_EQ(mig.chunks, (500000u + 4095u) / 4096u);
  EXPECT_EQ(switcher.stats().state_migrations, 1u);
  EXPECT_EQ(switcher.stats().migrations_aborted, 0u);
  EXPECT_DOUBLE_EQ(switcher.stats().state_migration_bytes, 500e3);
  EXPECT_GT(energy.energy().wireless, 0.0);  // uplink migration costs energy
}

TEST_F(SwitcherTest, MigrationSlowerOnWeakLink) {
  const double fast = switcher.migrate_state(500e3, false).completion - clock.now();
  channel.set_robot_position({60.0, 0.0});  // weak but connected
  const double slow = switcher.migrate_state(500e3, false).completion - clock.now();
  EXPECT_GT(slow, fast);
}

TEST_F(SwitcherTest, MigrationRetransmitsThroughModerateCorruption) {
  // ~1e-5/byte: each 4 KB chunk fails its CRC a few percent of the time, so
  // the transfer pays retransmissions but still commits.
  net::ChannelOverride ov;
  ov.corrupt_bit_prob = 1e-5;
  channel.set_override(ov);
  const MigrationResult mig = switcher.migrate_state(2e6, /*uplink=*/true);
  EXPECT_TRUE(mig.committed);
  EXPECT_GT(mig.chunk_retransmits, 0u);
  EXPECT_EQ(switcher.stats().migrations_aborted, 0u);
}

TEST_F(SwitcherTest, MigrationAbortsCleanlyUnderHeavyCorruption) {
  // At 1e-2/byte essentially no 4 KB chunk can pass its CRC: both attempts
  // must fail, and the caller gets a clean abort — never a torn commit.
  net::ChannelOverride ov;
  ov.corrupt_bit_prob = 1e-2;
  channel.set_override(ov);
  const double t0 = clock.now();
  const MigrationResult mig = switcher.migrate_state(500e3, /*uplink=*/false);
  EXPECT_FALSE(mig.committed);
  EXPECT_EQ(mig.attempts, 2);
  EXPECT_GT(mig.chunk_retransmits, 0u);
  EXPECT_GT(mig.completion, t0);  // the failed attempts still cost time
  EXPECT_EQ(switcher.stats().migrations_aborted, 1u);
}

TEST(SwitcherRates, DownlinkMigrationTimedAgainstDownlinkRate) {
  // A cloud→LGV state pull-back travels the AP's transmit pipe, not the
  // LGV's: with an asymmetric link the two directions must take visibly
  // different times for the same byte count.
  net::ChannelConfig cfg;
  cfg.wap_position = {0.0, 0.0};
  cfg.shadowing_sigma_db = 0.0;
  cfg.downlink_rate_bps = cfg.uplink_rate_bps / 4.0;
  net::WirelessChannel channel(cfg);
  channel.set_robot_position({2.0, 0.0});
  SimClock clock;
  mw::Graph graph;
  sim::PowerModel power;
  sim::EnergyMeter energy;
  Switcher sw(&graph, &channel, &clock, &energy, &power);
  const double up = sw.migrate_state(2e6, /*uplink=*/true).completion - clock.now();
  const double down = sw.migrate_state(2e6, /*uplink=*/false).completion - clock.now();
  EXPECT_GT(down, 2.5 * up);  // 4× slower pipe, minus the shared latency term
}

TEST_F(SwitcherTest, StreamPacketCarries48BytePayload) {
  switcher.send_stream_packet();
  // §III-A velocity message: 48 B payload plus the envelope (topic + dst +
  // length varint) and the 26 B integrity frame header.
  EXPECT_GE(switcher.stats().downlink_bytes, 48.0 + kFrameHeaderSize);
  EXPECT_LT(switcher.stats().downlink_bytes, 100.0);
  EXPECT_EQ(switcher.stats().downlink_messages, 1u);
}

TEST_F(SwitcherTest, StreamPacketsCountTowardDownlinkTelemetry) {
  telemetry::Telemetry telemetry;
  switcher.set_telemetry(&telemetry);
  for (int i = 0; i < 3; ++i) switcher.send_stream_packet();
  const double counted =
      telemetry.metrics().counter("switcher_bytes_total", {{"dir", "downlink"}}).value();
  EXPECT_DOUBLE_EQ(counted, switcher.stats().downlink_bytes);
  EXPECT_GT(counted, 0.0);
}

// ---- wire-integrity layer (docs/wire-format.md) ----------------------------

// Envelope body as the Switcher packs it (topic, dst, length-prefixed bytes).
std::vector<uint8_t> make_envelope(const std::string& topic, const std::string& dst,
                                   const std::vector<uint8_t>& payload) {
  WireWriter w;
  w.put_string(topic);
  w.put_string(dst);
  w.put_varint(payload.size());
  w.put_bytes(payload.data(), payload.size());
  return w.take();
}

TEST(WireFrame, RoundTripVerifies) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> frame = frame_wrap(1, 7, 42, payload);
  EXPECT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  EXPECT_EQ(frame_check(frame), nullptr);
  EXPECT_EQ(frame_seq(frame), 42u);
}

TEST(WireFrame, V2CarriesCrcProtectedTraceContext) {
  const std::vector<uint8_t> payload = {9, 8, 7};
  const std::vector<uint8_t> frame =
      frame_wrap(0, 2, 3, payload, /*trace_id=*/0xCAFE, /*span_id=*/0xBEEF);
  EXPECT_EQ(frame_check(frame), nullptr);
  EXPECT_EQ(frame_header_size(frame), kFrameHeaderSize);
  EXPECT_EQ(frame_trace_id(frame), 0xCAFEu);
  EXPECT_EQ(frame_span_id(frame), 0xBEEFu);

  // The causal ids are inside the checksum: a flipped id byte is a CRC
  // reject, never a silently mis-stitched trace.
  std::vector<uint8_t> flipped = frame;
  flipped[19] ^= 0x01;  // trace_id field
  EXPECT_STREQ(frame_check(flipped), "crc");
}

TEST(WireFrame, V1FramesStillVerifyWithoutTraceContext) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4};
  const std::vector<uint8_t> v1 = frame_wrap_v1(1, 7, 42, payload);
  EXPECT_EQ(v1.size(), kFrameHeaderSizeV1 + payload.size());
  EXPECT_EQ(frame_check(v1), nullptr);  // decodes, not rejected
  EXPECT_EQ(frame_header_size(v1), kFrameHeaderSizeV1);
  EXPECT_EQ(frame_seq(v1), 42u);
  EXPECT_EQ(frame_trace_id(v1), 0u);  // no context to propagate
  EXPECT_EQ(frame_span_id(v1), 0u);
}

TEST(WireFrame, EveryRejectionCauseDetected) {
  const std::vector<uint8_t> payload(32, 0xAB);
  const std::vector<uint8_t> good = frame_wrap(0, 1, 1, payload);

  std::vector<uint8_t> tiny(4, 0);  // shorter than any header version
  EXPECT_STREQ(frame_check(tiny), "runt");

  // Valid magic + v2 version byte but one byte short of the v2 header.
  std::vector<uint8_t> runt(good.begin(), good.begin() + kFrameHeaderSize - 1);
  EXPECT_STREQ(frame_check(runt), "runt");

  std::vector<uint8_t> magic = good;
  magic[0] ^= 0xFF;
  EXPECT_STREQ(frame_check(magic), "bad_magic");

  std::vector<uint8_t> version = good;
  version[2] = kFrameVersion + 1;
  EXPECT_STREQ(frame_check(version), "bad_version");

  std::vector<uint8_t> truncated = good;
  truncated.resize(truncated.size() - 5);  // header intact, tail gone
  EXPECT_STREQ(frame_check(truncated), "length_mismatch");

  std::vector<uint8_t> flipped = good;
  flipped[kFrameHeaderSize + 3] ^= 0x10;  // single bit in the payload
  EXPECT_STREQ(frame_check(flipped), "crc");
}

TEST(WireFrame, V3CarriesSessionIdUnderCrc) {
  const std::vector<uint8_t> payload = {1, 2, 3};
  const std::vector<uint8_t> frame =
      frame_wrap(1, 7, 42, payload, 0xCAFE, 0xBEEF, /*session_id=*/17);
  EXPECT_EQ(frame.size(), kFrameHeaderSizeV3 + payload.size());
  EXPECT_EQ(frame_check(frame), nullptr);
  EXPECT_EQ(frame_header_size(frame), kFrameHeaderSizeV3);
  EXPECT_EQ(frame_session_id(frame), 17u);
  EXPECT_EQ(frame_seq(frame), 42u);
  EXPECT_EQ(frame_trace_id(frame), 0xCAFEu);  // v2 fields ride along

  // The session id is inside the checksum: a flipped session byte is a CRC
  // reject, never a frame silently delivered to the wrong vehicle's stream.
  std::vector<uint8_t> flipped = frame;
  flipped[26] ^= 0x01;  // session_id field
  EXPECT_STREQ(frame_check(flipped), "crc");
}

TEST(WireFrame, SessionZeroEmitsByteIdenticalV2) {
  // Wire compatibility: single-vehicle deployments (session 0) must produce
  // exactly the frames the previous build produced.
  const std::vector<uint8_t> payload = {4, 5, 6};
  const std::vector<uint8_t> frame = frame_wrap(0, 2, 3, payload, 0xA, 0xB);
  EXPECT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  EXPECT_EQ(frame[2], 2);  // v2 version byte
  EXPECT_EQ(frame_session_id(frame), 0u);
  EXPECT_EQ(frame_check(frame), nullptr);
}

TEST_F(SwitcherTest, DamagedFramesDroppedAndCounted) {
  int got = 0;
  graph.subscribe<msg::TwistMsg>("lgv_node", "cmd_back",
                                 [&](const msg::TwistMsg&) { ++got; });
  const auto env = make_envelope("cmd_back", "lgv_node",
                                 serialize_to_bytes(msg::TwistMsg{}));

  std::vector<uint8_t> crc_bad = frame_wrap(1, 3, 0, env);
  crc_bad[kFrameHeaderSize] ^= 0x01;
  switcher.downlink().send(std::move(crc_bad), clock.now());
  switcher.downlink().send({0xDE, 0xAD}, clock.now());  // runt
  pump_until(0.5);

  EXPECT_EQ(got, 0);  // corrupt bytes never reach the Graph
  EXPECT_EQ(switcher.stats().rejected_crc, 1u);
  EXPECT_EQ(switcher.stats().rejected_runt, 1u);
  EXPECT_EQ(switcher.stats().frames_rejected, 2u);
}

TEST_F(SwitcherTest, DuplicateAndStaleSequencesDropped) {
  int got = 0;
  graph.subscribe<msg::TwistMsg>("lgv_node", "cmd_back",
                                 [&](const msg::TwistMsg&) { ++got; });
  const auto env = make_envelope("cmd_back", "lgv_node",
                                 serialize_to_bytes(msg::TwistMsg{}));

  switcher.downlink().send(frame_wrap(1, 3, 5, env), clock.now());
  pump_until(clock.now() + 0.3);
  EXPECT_EQ(got, 1);

  // Same sequence again: the duplicated-datagram case.
  switcher.downlink().send(frame_wrap(1, 3, 5, env), clock.now());
  pump_until(clock.now() + 0.3);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(switcher.stats().rejected_duplicate, 1u);

  // Older sequence: a reordered straggler must not overwrite fresher data.
  switcher.downlink().send(frame_wrap(1, 3, 2, env), clock.now());
  pump_until(clock.now() + 0.3);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(switcher.stats().stale_dropped, 1u);

  // Newer sequence flows normally.
  switcher.downlink().send(frame_wrap(1, 3, 6, env), clock.now());
  pump_until(clock.now() + 0.3);
  EXPECT_EQ(got, 2);
}

TEST_F(SwitcherTest, SequencingIsPerSessionNotGlobal) {
  // The fleet-serving bug this PR fixes: two vehicles' streams share one
  // receiver. Their sequence counters are independent, so the same
  // (direction, topic, seq) from two *sessions* is two distinct messages —
  // the dedupe key must include the session id, or vehicle B's traffic is
  // rejected as vehicle A's duplicates.
  int got = 0;
  graph.subscribe<msg::TwistMsg>("lgv_node", "cmd_back",
                                 [&](const msg::TwistMsg&) { ++got; });
  const auto env = make_envelope("cmd_back", "lgv_node",
                                 serialize_to_bytes(msg::TwistMsg{}));

  // Interleave two sessions on the same topic with overlapping seq numbers
  // (pumping between sends so the emulated link can't reorder the corpus —
  // per-session ordering is what's under test, not link reordering).
  for (const auto [seq, session] :
       {std::pair<uint32_t, uint16_t>{5, 1}, {5, 2}, {6, 1}, {6, 2}}) {
    switcher.downlink().send(frame_wrap(1, 3, seq, env, 0, 0, session), clock.now());
    pump_until(clock.now() + 0.3);
  }
  EXPECT_EQ(got, 4);
  EXPECT_EQ(switcher.stats().rejected_duplicate, 0u);
  EXPECT_EQ(switcher.stats().stale_dropped, 0u);

  // Within one session, dedupe still bites.
  switcher.downlink().send(frame_wrap(1, 3, 6, env, 0, 0, /*session=*/1), clock.now());
  pump_until(clock.now() + 0.3);
  EXPECT_EQ(got, 4);
  EXPECT_EQ(switcher.stats().rejected_duplicate, 1u);
}

TEST_F(SwitcherTest, SendStampsConfiguredSessionId) {
  switcher.set_session_id(9);
  EXPECT_EQ(switcher.session_id(), 9u);
  auto pub = graph.advertise<msg::TwistMsg>("lgv_node", "cmd");
  uint16_t seen_session = 0;
  graph.subscribe<msg::TwistMsg>("cloud_node", "cmd",
                                 [&](const msg::TwistMsg&) {});
  // Capture the frame on the uplink by checking delivered bytes via stats is
  // indirect; instead wrap what send would produce: the switcher's own
  // frames must be v3 with session 9. Exercise the full path and rely on
  // delivery (a mis-keyed or malformed frame would be rejected).
  pub.publish({});
  graph.spin();
  pump_until(0.5);
  EXPECT_EQ(switcher.stats().uplink_messages, 1u);
  EXPECT_EQ(switcher.stats().frames_rejected, 0u);
}

TEST_F(SwitcherTest, V1FramesDeliveredAndCountedNotRejected) {
  // Backward compatibility: a peer still speaking the pre-trace-context
  // frame layout interoperates — its frames deliver and are *counted*, so a
  // fleet rollout can watch the old version drain out of the air.
  telemetry::Telemetry telemetry;
  telemetry.set_clock(&clock);
  switcher.set_telemetry(&telemetry);
  int got = 0;
  graph.subscribe<msg::TwistMsg>("lgv_node", "cmd_back",
                                 [&](const msg::TwistMsg&) { ++got; });
  const auto env = make_envelope("cmd_back", "lgv_node",
                                 serialize_to_bytes(msg::TwistMsg{}));
  switcher.downlink().send(frame_wrap_v1(1, 3, 0, env), clock.now());
  pump_until(0.5);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(switcher.stats().frames_v1, 1u);
  EXPECT_EQ(switcher.stats().frames_rejected, 0u);
  EXPECT_EQ(telemetry.metrics().counter("net_frames_v1_total").value(), 1u);
}

TEST_F(SwitcherTest, WireDeliveryStitchesSenderContext) {
  // The uplink frame carries (trace_id, span_id); on delivery the receiver's
  // events — the wire span and the subscriber's callback work — join the
  // sender's trace as children instead of starting an orphaned one.
  telemetry::Telemetry telemetry;
  telemetry.set_clock(&clock);
  switcher.set_telemetry(&telemetry);
  graph.set_telemetry(&telemetry);

  auto pub = graph.advertise<msg::TwistMsg>("lgv_node", "cmd");
  graph.subscribe<msg::TwistMsg>("cloud_node", "cmd", [&](const msg::TwistMsg&) {
    telemetry.tracer().instant_now("remote.work", "cloud_server", "worker");
  });

  telemetry::Tracer& tracer = telemetry.tracer();
  const telemetry::TraceContext root = tracer.begin_trace();
  const uint32_t tick = tracer.instant_now("scan.tick", "lgv", "sensor");
  ASSERT_NE(tick, 0u);
  tracer.set_current({root.trace_id, tick});
  pub.publish({});
  graph.spin();
  tracer.set_current({});  // sender moves on; the frame carries the context
  pump_until(0.5);

  uint32_t wire_span = 0;
  const auto events = tracer.events();
  for (const auto& e : events) {
    if (e.name == "net.wire") {
      EXPECT_EQ(e.trace_id, root.trace_id);
      wire_span = e.span_id;
    }
  }
  ASSERT_NE(wire_span, 0u) << "no wire span recorded on delivery";
  bool remote_stitched = false;
  for (const auto& e : events) {
    if (e.name == "remote.work") {
      EXPECT_EQ(e.trace_id, root.trace_id);
      EXPECT_EQ(e.parent_span_id, wire_span);
      remote_stitched = true;
    }
  }
  EXPECT_TRUE(remote_stitched);
  // The delivery scope is bounded: after the pump the mission loop is back
  // to no context.
  EXPECT_FALSE(tracer.current().active());
}

TEST_F(SwitcherTest, UndecodableEnvelopeCountsAsDecodeReject) {
  // CRC-clean frame whose payload is not a valid envelope (version-skew /
  // schema-bug stand-in): must be a counted drop, not an escaping exception.
  const std::vector<uint8_t> garbage(5, 0xFF);
  switcher.downlink().send(frame_wrap(1, 9, 0, garbage), clock.now());
  pump_until(0.5);
  EXPECT_EQ(switcher.stats().rejected_decode, 1u);
  EXPECT_EQ(switcher.stats().frames_rejected, 1u);
}

TEST_F(SwitcherTest, CorruptBurstEndToEndRejectsScans) {
  // ~1e-2/byte over a ~1.5 KB scan: essentially every frame arrives damaged,
  // the CRC catches all of them, and the subscriber sees nothing.
  net::ChannelOverride ov;
  ov.corrupt_bit_prob = 1e-2;
  channel.set_override(ov);
  auto pub = graph.advertise<msg::LaserScan>("lgv_node", "scan");
  int got = 0;
  graph.subscribe<msg::LaserScan>("cloud_node", "scan",
                                  [&](const msg::LaserScan&) { ++got; });
  msg::LaserScan s;
  s.ranges.assign(360, 1.0f);
  for (int i = 0; i < 5; ++i) {
    pub.publish(s);
    graph.spin();
    pump_until(clock.now() + 0.2);
  }
  EXPECT_EQ(got, 0);
  // Flips land anywhere in the frame, so the cause can read as a bad magic,
  // version or length as well as a CRC mismatch — every one must be caught.
  EXPECT_GE(switcher.stats().frames_rejected, 5u);
  EXPECT_GT(switcher.stats().rejected_crc, 0u);
  EXPECT_GT(switcher.uplink().stats().corrupted, 0u);
}

TEST_F(SwitcherTest, RejectionsSurfaceInTelemetry) {
  telemetry::Telemetry telemetry;
  switcher.set_telemetry(&telemetry);
  switcher.downlink().send({0x00}, clock.now());  // runt
  pump_until(0.5);
  EXPECT_DOUBLE_EQ(
      telemetry.metrics().counter("net_frames_rejected_total", {{"cause", "runt"}}).value(),
      1.0);
  bool saw_instant = false;
  for (const auto& e : telemetry.tracer().events()) {
    if (e.name == "integrity.reject") saw_instant = true;
  }
  EXPECT_TRUE(saw_instant);
  // First rejection fires the flight-recorder trigger (metric-only here —
  // no dump prefix configured).
  EXPECT_EQ(telemetry.metrics()
                .counter("flight_recorder_dumps_total",
                         {{"trigger", "integrity_reject"}})
                .value(),
            1u);
}

}  // namespace
}  // namespace lgv::core
