#include "core/switcher.h"

#include <gtest/gtest.h>

#include "msg/messages.h"

namespace lgv::core {
namespace {

using platform::Host;

class SwitcherTest : public ::testing::Test {
 protected:
  SwitcherTest()
      : channel(make_channel()),
        switcher(&graph, &channel, &clock, &energy, &power) {
    graph.register_node("lgv_node", Host::kLgv);
    graph.register_node("cloud_node", Host::kCloudServer);
    graph.set_remote_transport(&switcher);
    channel.set_robot_position({2.0, 0.0});  // near the WAP: clean link
  }

  static net::WirelessChannel make_channel() {
    net::ChannelConfig cfg;
    cfg.wap_position = {0.0, 0.0};
    cfg.shadowing_sigma_db = 0.0;
    return net::WirelessChannel(cfg);
  }

  void pump_until(double t_end, double dt = 0.005) {
    while (clock.now() < t_end) {
      clock.advance(dt);
      switcher.step();
      graph.spin();
    }
  }

  SimClock clock;
  mw::Graph graph;
  net::WirelessChannel channel;
  sim::PowerModel power;
  sim::EnergyMeter energy;
  Switcher switcher;
};

TEST_F(SwitcherTest, UplinkMessageArrivesWithLatency) {
  auto pub = graph.advertise<msg::TwistMsg>("lgv_node", "cmd");
  double received_at = -1.0;
  graph.subscribe<msg::TwistMsg>("cloud_node", "cmd", [&](const msg::TwistMsg&) {
    received_at = clock.now();
  });
  msg::TwistMsg t;
  t.velocity.linear = 0.4;
  pub.publish(t);
  graph.spin();
  EXPECT_LT(received_at, 0.0);  // not yet
  pump_until(0.5);
  EXPECT_GT(received_at, 0.0);
  EXPECT_LT(received_at, 0.1);  // a few ms of wireless latency
  EXPECT_EQ(switcher.stats().uplink_messages, 1u);
}

TEST_F(SwitcherTest, DownlinkDirectionCounted) {
  auto pub = graph.advertise<msg::TwistMsg>("cloud_node", "cmd_back");
  int got = 0;
  graph.subscribe<msg::TwistMsg>("lgv_node", "cmd_back",
                                 [&](const msg::TwistMsg&) { ++got; });
  pub.publish({});
  graph.spin();
  pump_until(0.5);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(switcher.stats().downlink_messages, 1u);
  EXPECT_EQ(switcher.stats().uplink_messages, 0u);
}

TEST_F(SwitcherTest, UplinkChargesEq1bEnergy) {
  auto pub = graph.advertise<msg::LaserScan>("lgv_node", "scan");
  graph.subscribe<msg::LaserScan>("cloud_node", "scan", [](const msg::LaserScan&) {});
  msg::LaserScan s;
  s.ranges.assign(360, 1.0f);
  const double before = energy.energy().wireless;
  pub.publish(s);
  EXPECT_GT(energy.energy().wireless, before);
}

TEST_F(SwitcherTest, DownlinkDoesNotChargeRobotEnergy) {
  // The paper ignores receive energy (§III-A).
  auto pub = graph.advertise<msg::TwistMsg>("cloud_node", "cmd_back");
  graph.subscribe<msg::TwistMsg>("lgv_node", "cmd_back", [](const msg::TwistMsg&) {});
  const double before = energy.energy().wireless;
  pub.publish({});
  EXPECT_DOUBLE_EQ(energy.energy().wireless, before);
}

TEST_F(SwitcherTest, MaxMessageBytesTracked) {
  auto pub = graph.advertise<msg::LaserScan>("lgv_node", "scan");
  graph.subscribe<msg::LaserScan>("cloud_node", "scan", [](const msg::LaserScan&) {});
  msg::LaserScan s;
  s.ranges.assign(360, 1.0f);
  pub.publish(s);
  // ~360 × 4 B + header: the paper's "2.94 KB laser scan" territory.
  EXPECT_GT(switcher.stats().max_message_bytes, 1400.0);
  EXPECT_LT(switcher.stats().max_message_bytes, 3200.0);
}

TEST_F(SwitcherTest, OutageDropsAtKernelBuffer) {
  channel.set_robot_position({500.0, 0.0});  // outage
  auto pub = graph.advertise<msg::TwistMsg>("lgv_node", "cmd");
  int got = 0;
  graph.subscribe<msg::TwistMsg>("cloud_node", "cmd", [&](const msg::TwistMsg&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    pub.publish({});
    clock.advance(0.2);
    switcher.step();
  }
  graph.spin();
  EXPECT_EQ(got, 0);
  EXPECT_GT(switcher.uplink().stats().dropped_buffer, 0u);
}

TEST_F(SwitcherTest, StreamPacketsReachCallback) {
  int received = 0;
  double last_sent = -1.0;
  switcher.set_stream_callback([&](double sent, double now) {
    ++received;
    last_sent = sent;
    EXPECT_GE(now, sent);
  });
  for (int i = 0; i < 5; ++i) {
    switcher.send_stream_packet();
    pump_until(clock.now() + 0.2);
  }
  EXPECT_EQ(received, 5);
  EXPECT_GE(last_sent, 0.0);
}

TEST_F(SwitcherTest, StateMigrationReturnsFutureCompletion) {
  const double t0 = clock.now();
  const double done = switcher.migrate_state(500e3, /*uplink=*/true);
  EXPECT_GT(done, t0);
  EXPECT_EQ(switcher.stats().state_migrations, 1u);
  EXPECT_DOUBLE_EQ(switcher.stats().state_migration_bytes, 500e3);
  EXPECT_GT(energy.energy().wireless, 0.0);  // uplink migration costs energy
}

TEST_F(SwitcherTest, MigrationSlowerOnWeakLink) {
  const double fast = switcher.migrate_state(500e3, false) - clock.now();
  channel.set_robot_position({60.0, 0.0});  // weak but connected
  const double slow = switcher.migrate_state(500e3, false) - clock.now();
  EXPECT_GT(slow, fast);
}

TEST(SwitcherRates, DownlinkMigrationTimedAgainstDownlinkRate) {
  // A cloud→LGV state pull-back travels the AP's transmit pipe, not the
  // LGV's: with an asymmetric link the two directions must take visibly
  // different times for the same byte count.
  net::ChannelConfig cfg;
  cfg.wap_position = {0.0, 0.0};
  cfg.shadowing_sigma_db = 0.0;
  cfg.downlink_rate_bps = cfg.uplink_rate_bps / 4.0;
  net::WirelessChannel channel(cfg);
  channel.set_robot_position({2.0, 0.0});
  SimClock clock;
  mw::Graph graph;
  sim::PowerModel power;
  sim::EnergyMeter energy;
  Switcher sw(&graph, &channel, &clock, &energy, &power);
  const double up = sw.migrate_state(2e6, /*uplink=*/true) - clock.now();
  const double down = sw.migrate_state(2e6, /*uplink=*/false) - clock.now();
  EXPECT_GT(down, 2.5 * up);  // 4× slower pipe, minus the shared latency term
}

TEST_F(SwitcherTest, StreamPacketCarries48BytePayload) {
  switcher.send_stream_packet();
  // §III-A velocity message: 48 B payload plus a few bytes of envelope
  // framing (topic + dst + length varint).
  EXPECT_GE(switcher.stats().downlink_bytes, 48.0);
  EXPECT_LT(switcher.stats().downlink_bytes, 80.0);
  EXPECT_EQ(switcher.stats().downlink_messages, 1u);
}

TEST_F(SwitcherTest, StreamPacketsCountTowardDownlinkTelemetry) {
  telemetry::Telemetry telemetry;
  switcher.set_telemetry(&telemetry);
  for (int i = 0; i < 3; ++i) switcher.send_stream_packet();
  const double counted =
      telemetry.metrics().counter("switcher_bytes_total", {{"dir", "downlink"}}).value();
  EXPECT_DOUBLE_EQ(counted, switcher.stats().downlink_bytes);
  EXPECT_GT(counted, 0.0);
}

}  // namespace
}  // namespace lgv::core
