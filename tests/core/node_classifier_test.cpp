#include "core/node_classifier.h"

#include <gtest/gtest.h>

namespace lgv::core {
namespace {

TEST(NodeClassifier, VdpMembershipIsStructural) {
  // Fig. 2: CostmapGen → Path Tracking → Velocity Multiplexer.
  EXPECT_TRUE(NodeClassifier::is_on_vdp(NodeId::kCostmapGen));
  EXPECT_TRUE(NodeClassifier::is_on_vdp(NodeId::kPathTracking));
  EXPECT_TRUE(NodeClassifier::is_on_vdp(NodeId::kVelocityMux));
  EXPECT_FALSE(NodeClassifier::is_on_vdp(NodeId::kLocalization));
  EXPECT_FALSE(NodeClassifier::is_on_vdp(NodeId::kPathPlanning));
  EXPECT_FALSE(NodeClassifier::is_on_vdp(NodeId::kExploration));
}

TEST(NodeClassifier, StaticTraitsMatchTableII) {
  using WK = WorkloadKind;
  // With a map: ECNs are CostmapGen and Path Tracking.
  EXPECT_TRUE(NodeClassifier::static_traits(NodeId::kCostmapGen, WK::kNavigationWithMap)
                  .energy_critical);
  EXPECT_TRUE(NodeClassifier::static_traits(NodeId::kPathTracking, WK::kNavigationWithMap)
                  .energy_critical);
  EXPECT_FALSE(NodeClassifier::static_traits(NodeId::kLocalization, WK::kNavigationWithMap)
                   .energy_critical);
  // Without a map: SLAM joins the ECN set.
  EXPECT_TRUE(NodeClassifier::static_traits(NodeId::kLocalization,
                                            WK::kExplorationWithoutMap)
                  .energy_critical);
  EXPECT_FALSE(NodeClassifier::static_traits(NodeId::kVelocityMux,
                                             WK::kExplorationWithoutMap)
                   .energy_critical);
}

TEST(NodeClassifier, Fig4Classes) {
  using WK = WorkloadKind;
  // T1 = ECN ∉ VDP: SLAM.
  EXPECT_EQ(NodeClassifier::static_traits(NodeId::kLocalization, WK::kExplorationWithoutMap)
                .node_class(),
            NodeClass::kT1);
  // T2 = ¬ECN ∈ VDP: Velocity Multiplexer.
  EXPECT_EQ(NodeClassifier::static_traits(NodeId::kVelocityMux, WK::kNavigationWithMap)
                .node_class(),
            NodeClass::kT2);
  // T3 = ECN ∈ VDP: CostmapGen, Path Tracking.
  EXPECT_EQ(NodeClassifier::static_traits(NodeId::kCostmapGen, WK::kNavigationWithMap)
                .node_class(),
            NodeClass::kT3);
  EXPECT_EQ(NodeClassifier::static_traits(NodeId::kPathTracking, WK::kNavigationWithMap)
                .node_class(),
            NodeClass::kT3);
  // T4 = ¬ECN ∉ VDP: AMCL localization, Path Planning, Exploration.
  EXPECT_EQ(NodeClassifier::static_traits(NodeId::kLocalization, WK::kNavigationWithMap)
                .node_class(),
            NodeClass::kT4);
  EXPECT_EQ(NodeClassifier::static_traits(NodeId::kPathPlanning, WK::kNavigationWithMap)
                .node_class(),
            NodeClass::kT4);
}

TEST(NodeClassifier, MeasurementDrivenClassification) {
  platform::WorkMeter meter;
  // Table II "without a map" proportions (gigacycles).
  meter.charge(node_name(NodeId::kLocalization), 3.327e9);
  meter.charge(node_name(NodeId::kCostmapGen), 0.685e9);
  meter.charge(node_name(NodeId::kPathPlanning), 0.052e9);
  meter.charge(node_name(NodeId::kExploration), 0.011e9);
  meter.charge(node_name(NodeId::kPathTracking), 1.207e9);

  NodeClassifier classifier(0.10);
  const auto traits = classifier.classify(meter, WorkloadKind::kExplorationWithoutMap);
  EXPECT_TRUE(traits.at(NodeId::kLocalization).energy_critical);   // 62%
  EXPECT_TRUE(traits.at(NodeId::kCostmapGen).energy_critical);     // 12%
  EXPECT_TRUE(traits.at(NodeId::kPathTracking).energy_critical);   // 23%
  EXPECT_FALSE(traits.at(NodeId::kPathPlanning).energy_critical);  // 1%
  EXPECT_FALSE(traits.at(NodeId::kExploration).energy_critical);   // <1%
  EXPECT_FALSE(traits.at(NodeId::kVelocityMux).energy_critical);
}

TEST(NodeClassifier, EmptyMeterFallsBackToStatic) {
  platform::WorkMeter empty;
  NodeClassifier classifier;
  const auto traits = classifier.classify(empty, WorkloadKind::kNavigationWithMap);
  EXPECT_TRUE(traits.at(NodeId::kCostmapGen).energy_critical);
  EXPECT_FALSE(traits.at(NodeId::kLocalization).energy_critical);
}

TEST(NodeClassifier, NamesAreStable) {
  EXPECT_STREQ(node_name(NodeId::kLocalization), "localization");
  EXPECT_STREQ(node_name(NodeId::kPathTracking), "path_tracking");
  EXPECT_EQ(all_nodes().size(), 6u);
}

}  // namespace
}  // namespace lgv::core
