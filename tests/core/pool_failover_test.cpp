#include "core/pool_failover.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/fault_injector.h"

namespace lgv::core {
namespace {

// ---- busy_backoff_delay: deterministic jittered exponential ----------------

TEST(BusyBackoff, PureFunctionOfStreamAndAttempt) {
  const uint64_t stream = splitmix64(42);
  for (uint32_t attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_DOUBLE_EQ(busy_backoff_delay(stream, attempt, 0.05, 2.0),
                     busy_backoff_delay(stream, attempt, 0.05, 2.0));
  }
  EXPECT_DOUBLE_EQ(busy_backoff_delay(stream, 0, 0.05, 2.0), 0.0);
}

TEST(BusyBackoff, JitterStaysInQuarterBandAroundNominal) {
  const double base = 0.05, cap = 2.0;
  for (uint64_t v = 0; v < 64; ++v) {
    const uint64_t stream = vehicle_seed(7, static_cast<uint32_t>(v));
    for (uint32_t attempt = 1; attempt <= 12; ++attempt) {
      const double nominal =
          std::min(base * static_cast<double>(1u << std::min(attempt - 1, 16u)), cap);
      const double d = busy_backoff_delay(stream, attempt, base, cap);
      EXPECT_GE(d, 0.75 * nominal);
      EXPECT_LT(d, 1.25 * nominal);
    }
  }
}

TEST(BusyBackoff, ExponentialGrowthSaturatesAtCap) {
  const uint64_t stream = splitmix64(1);
  double prev = 0.0;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    const double d = busy_backoff_delay(stream, attempt, 0.05, 2.0);
    // Doubling nominal beats the ±25 % jitter band: strictly increasing.
    EXPECT_GT(d, prev);
    prev = d;
  }
  // Far past the cap the delay is pinned to cap·(0.75..1.25).
  const double capped = busy_backoff_delay(stream, 40, 0.05, 2.0);
  EXPECT_GE(capped, 0.75 * 2.0);
  EXPECT_LT(capped, 1.25 * 2.0);
}

TEST(BusyBackoff, RetryStormOf128VehiclesDesynchronizes) {
  // 128 vehicles bounced by the same pool crash at the same tick must not
  // share a retry schedule — per attempt, every vehicle's delay is distinct.
  for (uint32_t attempt = 1; attempt <= 4; ++attempt) {
    std::set<double> delays;
    for (uint32_t v = 0; v < 128; ++v) {
      delays.insert(
          busy_backoff_delay(vehicle_seed(99, v), attempt, 0.05, 2.0));
    }
    EXPECT_EQ(delays.size(), 128u) << "attempt " << attempt;
  }
}

// ---- PoolFailoverClient: breaker + selection protocol -----------------------

WorkerPoolConfig tiny_pool() {
  WorkerPoolConfig c;
  c.cores = 2;
  c.threads = 2;
  return c;
}

TEST(PoolFailoverClient, ServesFromPrimaryWhenHealthy) {
  WorkerPool primary(tiny_pool());
  PoolFailoverClient client(&primary, nullptr, 42, "lgv-0");
  const auto acq = client.acquire(0.0);
  ASSERT_EQ(acq.pool, &primary);
  EXPECT_EQ(acq.pool_index, 0);
  EXPECT_NE(acq.session, 0u);
  EXPECT_FALSE(acq.needs_migration);  // primary holds the committed state
  // The same session is reused while its lease is live.
  client.on_served();
  const auto again = client.acquire(0.5);
  EXPECT_EQ(again.session, acq.session);
}

TEST(PoolFailoverClient, BusyVerdictsOpenBackoffThenBreaker) {
  WorkerPool primary(tiny_pool());
  FailoverConfig cfg;
  cfg.breaker_threshold = 3;
  PoolFailoverClient client(&primary, nullptr, 42, "lgv-0", cfg);
  double now = 0.0;
  ASSERT_NE(client.acquire(now).pool, nullptr);

  // First busy: backoff window opens; an acquire inside it is refused
  // without touching the pool.
  client.on_busy(now);
  EXPECT_EQ(client.busy_streak(), 1u);
  EXPECT_GT(client.retry_at(), now);
  const auto blocked = client.acquire(now + 1e-6);
  EXPECT_EQ(blocked.pool, nullptr);
  EXPECT_STREQ(blocked.blocked, "backoff");

  // Two more busies cross the breaker threshold.
  now = client.retry_at();
  ASSERT_NE(client.acquire(now).pool, nullptr);
  client.on_busy(now);
  now = client.retry_at();
  ASSERT_NE(client.acquire(now).pool, nullptr);
  client.on_busy(now);
  EXPECT_EQ(client.breaker_opens(), 1u);
  EXPECT_TRUE(client.breaker_open(0, now));

  // With no standby and the primary's breaker open, acquire names the
  // breaker as the blocker.
  now = client.retry_at();
  const auto tripped = client.acquire(now);
  EXPECT_EQ(tripped.pool, nullptr);
  EXPECT_STREQ(tripped.blocked, "breaker");

  // A served result fully closes the breaker and resets the backoff.
  now += cfg.breaker_open_s + 1.0;
  ASSERT_NE(client.acquire(now).pool, nullptr);
  client.on_served();
  EXPECT_EQ(client.busy_streak(), 0u);
  EXPECT_DOUBLE_EQ(client.retry_at(), 0.0);
  EXPECT_FALSE(client.breaker_open(0, now));
}

TEST(PoolFailoverClient, BreakerOpenIntervalDoublesPerReopen) {
  WorkerPool primary(tiny_pool());
  FailoverConfig cfg;
  cfg.breaker_threshold = 1;  // every failure opens it
  cfg.breaker_open_s = 1.0;
  cfg.breaker_open_max_s = 4.0;
  PoolFailoverClient client(&primary, nullptr, 42, "lgv-0", cfg);

  double now = 0.0;
  ASSERT_NE(client.acquire(now).pool, nullptr);
  client.on_busy(now);  // open #1: 1 s
  EXPECT_TRUE(client.breaker_open(0, now + 0.9));
  EXPECT_FALSE(client.breaker_open(0, now + 1.1));

  now = std::max(client.retry_at(), now + 1.1);
  ASSERT_NE(client.acquire(now).pool, nullptr);
  client.on_busy(now);  // open #2: 2 s
  EXPECT_TRUE(client.breaker_open(0, now + 1.9));
  EXPECT_FALSE(client.breaker_open(0, now + 2.1));
  EXPECT_EQ(client.breaker_opens(), 2u);
}

TEST(PoolFailoverClient, FailsOverToStandbyAfterPrimaryBreakerOpens) {
  // Primary is crashed for the whole test; standby is healthy.
  WorkerPool primary(tiny_pool());
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kPoolCrash, 0.0, 1000.0);
  const sim::FaultInjector inj(std::move(s));
  primary.set_fault_injector(&inj);
  WorkerPool standby(tiny_pool());

  FailoverConfig cfg;
  cfg.breaker_threshold = 3;
  PoolFailoverClient client(&primary, &standby, 42, "lgv-0", cfg);

  // Each acquire pays ONE admission refusal against the primary (no
  // fallthrough — the breaker authorizes the switch), until it opens.
  double now = 0.0;
  int refusals = 0;
  PoolFailoverClient::Acquire acq;
  for (int i = 0; i < 16 && refusals < 3; ++i) {
    acq = client.acquire(now);
    if (acq.pool == nullptr) {
      EXPECT_STREQ(acq.blocked, "admission");
      EXPECT_EQ(acq.pool_index, 0);
      ++refusals;
    }
    now = std::max(client.retry_at(), now) + 1e-3;
  }
  EXPECT_EQ(refusals, 3);
  EXPECT_TRUE(client.breaker_open(0, now));

  // The next acquire lands on the standby and demands a migration commit
  // before remote execution.
  acq = client.acquire(now);
  ASSERT_EQ(acq.pool, &standby);
  EXPECT_EQ(acq.pool_index, 1);
  EXPECT_TRUE(acq.needs_migration);
  EXPECT_EQ(client.committed_index(), 0);
  EXPECT_EQ(client.failovers(), 0u);

  // Commit flips the committed pool; subsequent acquires are clean.
  client.migration_committed(1);
  EXPECT_EQ(client.committed_index(), 1);
  EXPECT_EQ(client.failovers(), 1u);
  client.on_served();
  const auto settled = client.acquire(now + 0.1);
  ASSERT_EQ(settled.pool, &standby);
  EXPECT_FALSE(settled.needs_migration);
}

TEST(PoolFailoverClient, AbortedMigrationNeverAdvancesCommittedPool) {
  WorkerPool primary(tiny_pool());
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kPoolCrash, 0.0, 1000.0);
  const sim::FaultInjector inj(std::move(s));
  primary.set_fault_injector(&inj);
  WorkerPool standby(tiny_pool());
  FailoverConfig cfg;
  cfg.breaker_threshold = 1;
  PoolFailoverClient client(&primary, &standby, 42, "lgv-0", cfg);

  double now = 0.0;
  auto acq = client.acquire(now);  // primary refused, breaker opens
  ASSERT_EQ(acq.pool, nullptr);
  now = client.retry_at() + 1e-3;
  acq = client.acquire(now);
  ASSERT_EQ(acq.pool, &standby);
  ASSERT_TRUE(acq.needs_migration);

  // The snapshot transfer tears: committed pool unchanged, backoff bumped —
  // the vehicle keeps running local and retries later.
  const double before_retry = client.retry_at();
  client.migration_aborted(now);
  EXPECT_EQ(client.committed_index(), 0);
  EXPECT_EQ(client.failovers(), 0u);
  EXPECT_GT(client.retry_at(), before_retry);
}

TEST(PoolFailoverClient, DeterministicAcrossIdenticalRuns) {
  // Same seeds, same fault schedule, same call sequence → identical retry
  // schedule and identical pool selection (the fleet replay contract).
  auto run = [] {
    WorkerPool primary(tiny_pool());
    sim::FaultSchedule s;
    s.add(sim::FaultKind::kPoolCrash, 0.0, 50.0);
    const sim::FaultInjector inj(std::move(s));
    primary.set_fault_injector(&inj);
    WorkerPool standby(tiny_pool());
    PoolFailoverClient client(&primary, &standby, vehicle_seed(3, 7), "lgv-7");
    std::vector<double> retries;
    std::vector<int> picks;
    double now = 0.0;
    for (int i = 0; i < 12; ++i) {
      const auto acq = client.acquire(now);
      picks.push_back(acq.pool == nullptr ? -1 : acq.pool_index);
      if (acq.pool != nullptr && acq.needs_migration) client.migration_committed(acq.pool_index);
      if (acq.pool != nullptr) client.on_served();
      retries.push_back(client.retry_at());
      now = std::max(now, client.retry_at()) + 0.25;
    }
    return std::make_pair(retries, picks);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace lgv::core
