// End-to-end integration: full missions through the whole stack — simulated
// robot + lidar, middleware graph, emulated wireless network, platform cost
// models, Algorithm 1 placement and Algorithm 2 runtime adaptation.
#include "core/mission_runner.h"

#include <gtest/gtest.h>

namespace lgv::core {
namespace {

using platform::Host;

MissionConfig quick_config() {
  MissionConfig cfg;
  cfg.rollout_samples = 200;  // keep wall time modest; shape is unchanged
  cfg.slam_particles = 10;
  cfg.timeout = 600.0;
  return cfg;
}

TEST(MissionIntegration, NavigationCompletesLocally) {
  MissionRunner runner(sim::make_open_scenario(),
                       local_plan(WorkloadKind::kNavigationWithMap), quick_config());
  const MissionReport r = runner.run();
  EXPECT_TRUE(r.success) << "completion_time=" << r.completion_time;
  EXPECT_GT(r.distance_traveled, 5.0);
  EXPECT_GT(r.energy.total(), 0.0);
  EXPECT_GT(r.energy.motor, 0.0);
  EXPECT_DOUBLE_EQ(r.energy.wireless, 0.0);  // nothing offloaded
  EXPECT_EQ(r.placement_switches, 0u);
}

TEST(MissionIntegration, NavigationCompletesOffloaded) {
  MissionRunner runner(
      sim::make_open_scenario(),
      offload_plan("gateway_8t", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      quick_config());
  const MissionReport r = runner.run();
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.network.uplink_messages, 10u);  // scans crossed the link
  EXPECT_GT(r.energy.wireless, 0.0);          // Eq. 1b charged
}

TEST(MissionIntegration, OffloadingShortensMissionAndSavesEnergy) {
  // The headline Fig. 13 comparison, on the small arena.
  MissionRunner local_runner(sim::make_open_scenario(),
                             local_plan(WorkloadKind::kNavigationWithMap),
                             quick_config());
  MissionRunner gw_runner(
      sim::make_open_scenario(),
      offload_plan("gateway_8t", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      quick_config());
  const MissionReport local = local_runner.run();
  const MissionReport gw = gw_runner.run();
  ASSERT_TRUE(local.success);
  ASSERT_TRUE(gw.success);
  EXPECT_LT(gw.completion_time, local.completion_time);
  EXPECT_LT(gw.energy.total(), local.energy.total());
  // Computer energy benefits the most; motor energy does not improve
  // (it is velocity-proportional — §VIII-D).
  EXPECT_LT(gw.energy.computer, 0.6 * local.energy.computer);
  EXPECT_GT(gw.average_velocity, local.average_velocity);
}

TEST(MissionIntegration, VelocityCapHigherWhenOffloaded) {
  MissionRunner local_runner(sim::make_open_scenario(),
                             local_plan(WorkloadKind::kNavigationWithMap),
                             quick_config());
  MissionRunner gw_runner(
      sim::make_open_scenario(),
      offload_plan("gateway_8t", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      quick_config());
  const MissionReport local = local_runner.run();
  const MissionReport gw = gw_runner.run();
  EXPECT_GT(gw.peak_velocity_cap, local.peak_velocity_cap);
}

TEST(MissionIntegration, ExplorationBuildsMap) {
  MissionConfig cfg = quick_config();
  cfg.timeout = 900.0;
  MissionRunner runner(
      sim::make_open_scenario(),
      offload_plan("gateway_8t", Host::kEdgeGateway, 8,
                   WorkloadKind::kExplorationWithoutMap, Goal::kEnergy),
      cfg);
  const MissionReport r = runner.run();
  EXPECT_TRUE(r.success) << "explored " << r.explored_area_m2 << " m²";
  // The open arena has ~60 m² of floor; most of it should be known.
  EXPECT_GT(r.explored_area_m2, 30.0);
  EXPECT_GT(r.node_cycles.count("localization"), 0u);
}

TEST(MissionIntegration, TableIIShapeEmergesFromExploration) {
  MissionConfig cfg = quick_config();
  // Enough particles that SLAM's Table II dominance is structural, not a
  // coin-flip against costmap generation under timing jitter.
  cfg.slam_particles = 24;
  cfg.rollout_samples = 400;
  cfg.timeout = 600.0;
  MissionRunner runner(
      sim::make_open_scenario(),
      offload_plan("gw", Host::kEdgeGateway, 8, WorkloadKind::kExplorationWithoutMap,
                   Goal::kEnergy),
      cfg);
  const MissionReport r = runner.run();
  // SLAM dominates, exploration and planning are tiny (Table II rows).
  const double slam = r.node_cycles.at("localization");
  EXPECT_GT(slam, r.node_cycles.at("costmap_gen"));
  EXPECT_GT(r.node_cycles.at("costmap_gen"), r.node_cycles.at("path_planning"));
  EXPECT_GT(r.node_cycles.at("path_tracking"), r.node_cycles.at("exploration"));
}

TEST(MissionIntegration, AdaptiveModeSwitchesUnderWeakSignal) {
  // Goal far from the WAP with an aggressive path-loss exponent: the link
  // dies on the way out; Algorithm 2 must bring the VDP home and the mission
  // must still complete.
  MissionConfig cfg = quick_config();
  cfg.channel.path_loss_exponent = 6.0;  // outage ≈ 6 m from the WAP
  cfg.timeout = 900.0;
  MissionRunner adaptive(
      sim::make_open_scenario(),
      offload_plan("gw_adaptive", Host::kEdgeGateway, 8,
                   WorkloadKind::kNavigationWithMap),
      cfg);
  const MissionReport r = adaptive.run();
  EXPECT_TRUE(r.success) << "robot stranded at distance from goal";
  EXPECT_GE(r.placement_switches, 1u);
  // The trace must show the remote→local transition.
  bool saw_remote = false, saw_local_after_remote = false;
  for (const NetworkSample& s : r.network_trace) {
    if (s.remote) saw_remote = true;
    if (saw_remote && !s.remote) saw_local_after_remote = true;
  }
  EXPECT_TRUE(saw_remote);
  EXPECT_TRUE(saw_local_after_remote);
}

TEST(MissionIntegration, NonAdaptiveOffloadStrandsUnderWeakSignal) {
  // Ablation: same dead zone, Algorithm 2 disabled → the robot stalls and
  // the mission fails (what §VI warns about).
  MissionConfig cfg = quick_config();
  cfg.channel.path_loss_exponent = 6.0;
  cfg.timeout = 420.0;
  DeploymentPlan plan = offload_plan("gw_static", Host::kEdgeGateway, 8,
                                     WorkloadKind::kNavigationWithMap);
  plan.adaptive = false;
  MissionRunner runner(sim::make_open_scenario(), plan, cfg);
  const MissionReport r = runner.run();
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.standby_time, 30.0);  // long stranded period
}

TEST(MissionIntegration, VisionBackendCompletesNavigation) {
  // §IX: the pipeline works unchanged for a vision-based LGV.
  MissionConfig cfg = quick_config();
  cfg.localization = LocalizationBackend::kVision;
  cfg.timeout = 700.0;
  MissionRunner runner(
      sim::make_open_scenario(),
      offload_plan("gw8", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      cfg);
  const MissionReport r = runner.run();
  EXPECT_TRUE(r.success);
}

TEST(MissionIntegration, VisionBackendIsSlowerThanLaser) {
  // §IX: "a slower speed is needed to prevent the localization failure".
  MissionConfig laser_cfg = quick_config();
  MissionConfig vision_cfg = quick_config();
  vision_cfg.localization = LocalizationBackend::kVision;
  vision_cfg.timeout = 700.0;
  MissionRunner laser(
      sim::make_open_scenario(),
      offload_plan("gw8", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      laser_cfg);
  MissionRunner vision(
      sim::make_open_scenario(),
      offload_plan("gw8", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      vision_cfg);
  const MissionReport lr = laser.run();
  const MissionReport vr = vision.run();
  ASSERT_TRUE(lr.success);
  ASSERT_TRUE(vr.success);
  EXPECT_LE(vr.average_velocity, lr.average_velocity + 0.05);
}

TEST(MissionIntegration, ReportsAreDeterministic) {
  MissionRunner a(sim::make_open_scenario(),
                  local_plan(WorkloadKind::kNavigationWithMap), quick_config());
  MissionRunner b(sim::make_open_scenario(),
                  local_plan(WorkloadKind::kNavigationWithMap), quick_config());
  const MissionReport ra = a.run();
  const MissionReport rb = b.run();
  EXPECT_DOUBLE_EQ(ra.completion_time, rb.completion_time);
  EXPECT_DOUBLE_EQ(ra.energy.total(), rb.energy.total());
  EXPECT_DOUBLE_EQ(ra.distance_traveled, rb.distance_traveled);
}

TEST(MissionIntegration, SteadyStatePublishesAreZeroCopy) {
  // Every steady-state publish site in the mission loop hands its message to
  // the middleware by move (or shared_ptr) — the payload-copy fast path must
  // never fire on either Fig. 13 leg. Verified from the end-of-mission
  // metrics snapshot, not the code, so a regressed publish site fails here.
  const auto copy_and_zero = [](const MissionReport& r) {
    double copies = 0.0, zero = 0.0;
    for (const auto& s : r.metrics.samples) {
      if (s.name == "mw_payload_copies_total") copies += s.value;
      if (s.name == "mw_zero_copy_total") zero += s.value;
    }
    return std::make_pair(copies, zero);
  };

  MissionRunner local_runner(sim::make_open_scenario(),
                             local_plan(WorkloadKind::kNavigationWithMap),
                             quick_config());
  const MissionReport local = local_runner.run();
  ASSERT_TRUE(local.success);
  const auto [local_copies, local_zero] = copy_and_zero(local);
  EXPECT_DOUBLE_EQ(local_copies, 0.0);
  EXPECT_GT(local_zero, 100.0);  // scans/odom/pose/tf/cmd all flow through it

  MissionRunner gw_runner(
      sim::make_open_scenario(),
      offload_plan("gateway_8t", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      quick_config());
  const MissionReport gw = gw_runner.run();
  ASSERT_TRUE(gw.success);
  const auto [gw_copies, gw_zero] = copy_and_zero(gw);
  EXPECT_DOUBLE_EQ(gw_copies, 0.0);
  EXPECT_GT(gw_zero, 100.0);
}

}  // namespace
}  // namespace lgv::core
