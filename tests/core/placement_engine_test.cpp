#include "core/placement_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/host_topology.h"
#include "core/offload_runtime.h"
#include "core/profiler.h"

namespace lgv::core {
namespace {

using platform::Host;

// Deterministic uniform draws for the test harness.
struct TestRng {
  uint64_t state;
  explicit TestRng(uint64_t seed) : state(seed) {}
  double next01() {
    state = splitmix64(state);
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
  uint32_t index(uint32_t n) { return static_cast<uint32_t>(next01() * n) % n; }
};

// Layered random DAG: edges always point at later nodes, degree stays small
// (the shape of a processing pipeline, and what keeps delta eval O(degree)).
PlacementDag random_dag(TestRng& rng, size_t nodes, size_t edges_per_node) {
  PlacementDag d;
  for (size_t i = 0; i < nodes; ++i) {
    // Pin ~1/8 of nodes to a host (sensors/actuators that cannot move).
    const uint8_t pin =
        rng.next01() < 0.125 ? static_cast<uint8_t>(rng.index(2)) : PlacementDag::kFreeHost;
    std::string name = "n";
    name += std::to_string(i);
    d.add_node(std::move(name), 1e5 + rng.next01() * 5e6,
               rng.next01() < 0.3 ? rng.next01() * 3e7 : 0.0, pin);
  }
  for (size_t i = 1; i < nodes; ++i) {
    for (size_t e = 0; e < edges_per_node; ++e) {
      const int src = static_cast<int>(rng.index(static_cast<uint32_t>(i)));
      d.add_edge(src, static_cast<int>(i), 32.0 + rng.next01() * 8192.0,
                 0.5 + rng.next01() * 9.5);
    }
  }
  return d;
}

HostTopology random_topology(TestRng& rng) {
  HostTopology t;
  t.add_host({"lgv", Host::kLgv, 1});
  const int hosts = 2 + static_cast<int>(rng.index(3));  // 2..4 total
  for (int i = 1; i < hosts; ++i) {
    std::string name = "h";
    name += std::to_string(i);
    t.add_host({std::move(name),
                rng.next01() < 0.5 ? Host::kEdgeGateway : Host::kCloudServer,
                1 + static_cast<int>(rng.index(24))});
  }
  for (int s = 0; s < hosts; ++s) {
    for (int d = 0; d < hosts; ++d) {
      if (s == d) continue;
      // Bandwidth chosen low enough that some placements saturate links, so
      // the capacity penalty term is genuinely exercised.
      t.set_link(s, d,
                 {1e4 + rng.next01() * 5e6, rng.next01() * 0.2, rng.next01() * 0.3});
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// HostTopology

TEST(HostTopology, ThreeTierFactoryShape) {
  const HostTopology t = HostTopology::three_tier(8, 48, 2.5e6, 0.005);
  ASSERT_EQ(t.host_count(), 3);
  EXPECT_EQ(t.host(0).kind, Host::kLgv);
  EXPECT_EQ(t.index_of(Host::kEdgeGateway), 1);
  EXPECT_EQ(t.index_of(Host::kCloudServer), 2);
  // Self links are free; vehicle → cloud stacks the WLAN and WAN latencies.
  EXPECT_TRUE(std::isinf(t.link(0, 0).bandwidth_bps));
  EXPECT_DOUBLE_EQ(t.link(0, 1).rtt_s, 0.005);
  EXPECT_GT(t.link(0, 2).rtt_s, t.link(0, 1).rtt_s);
  EXPECT_DOUBLE_EQ(t.link(0, 2).bandwidth_bps, t.link(0, 1).bandwidth_bps);
}

TEST(HostTopology, ObserveLinkBumpsGenerationOnlyOnMaterialChange) {
  HostTopology t = HostTopology::three_tier(8, 48, 2.5e6, 0.005);
  const uint64_t gen = t.generation();
  // Identical numbers: free, no invalidation.
  t.observe_link(0, 1, 2.5e6, 0.005, 0.0);
  EXPECT_EQ(t.generation(), gen);
  // Sub-epsilon wiggle: still the same number.
  t.observe_link(0, 1, 2.5e6 * (1.0 + 1e-9), 0.005, 0.0);
  EXPECT_EQ(t.generation(), gen);
  // A real change moves the stamp.
  t.observe_link(0, 1, 1.0e6, 0.009, 0.0);
  EXPECT_GT(t.generation(), gen);
}

// ---------------------------------------------------------------------------
// Cost tables + generation stamping

TEST(PlacementEngine, TablesRebuildOnlyWhenGenerationsMove) {
  PlacementEngine engine(make_pipeline_dag(),
                         HostTopology::three_tier(8, 48, 2.5e6, 0.005), {});
  const uint64_t built = engine.table_rebuilds();
  EXPECT_GE(built, 1u);
  // Nothing changed: refresh is free.
  EXPECT_FALSE(engine.refresh_tables());
  EXPECT_FALSE(engine.refresh_tables());
  EXPECT_EQ(engine.table_rebuilds(), built);
  // Unchanged observation: still free.
  engine.topology().observe_link(0, 1, 2.5e6, 0.005, 0.0);
  EXPECT_FALSE(engine.refresh_tables());
  EXPECT_EQ(engine.table_rebuilds(), built);
  // Material link change: one rebuild.
  engine.topology().observe_link(0, 1, 1.2e6, 0.04, 0.01);
  EXPECT_TRUE(engine.refresh_tables());
  EXPECT_EQ(engine.table_rebuilds(), built + 1);
}

TEST(Profiler, GenerationStableUnderUnchangedProfiles) {
  Profiler p({}, {0, 0});
  p.record_node_time(NodeId::kPathTracking, Host::kLgv, 0.05);
  p.record_rtt(1.0, 1.03);
  const uint64_t gen = p.generation();
  // Re-recording the same numbers converges the EMA to itself exactly and
  // repeats the same RTT: no generation movement.
  for (int i = 0; i < 10; ++i) {
    p.record_node_time(NodeId::kPathTracking, Host::kLgv, 0.05);
    p.record_rtt(2.0 + i, 2.03 + i);
  }
  EXPECT_EQ(p.generation(), gen);
  // A different sample moves it.
  p.record_node_time(NodeId::kPathTracking, Host::kLgv, 0.5);
  EXPECT_GT(p.generation(), gen);
}

// The satellite's end-to-end form: repeated adjustment steps with unchanged
// profiles perform zero cost-table rebuilds.
TEST(PlacementEngine, UnchangedProfilesRebuildNothing) {
  OffloadRuntime rt(three_tier_plan("3tier", 24, WorkloadKind::kNavigationWithMap),
                    {0.0, 0.0});
  ASSERT_NE(rt.placement_engine(), nullptr);
  rt.profiler().record_rtt(0.0, 0.006);
  rt.apply_initial_placement();
  const uint64_t built = rt.placement_engine()->table_rebuilds();
  // Feed the identical RTT every epoch: the model sees the same numbers, the
  // topology generation holds, and re-optimization re-prices nothing.
  for (int i = 0; i < 5; ++i) {
    rt.profiler().record_rtt(10.0 + i, 10.006 + i);
    rt.reoptimize_placement("test_epoch");
  }
  EXPECT_EQ(rt.placement_engine()->table_rebuilds(), built);
}

// ---------------------------------------------------------------------------
// Incremental evaluator ≡ full re-pricing

TEST(PlacementEngine, DeltaMatchesFullOnRandomMoves) {
  TestRng rng(0xfeedbeef);
  int moves_checked = 0;
  for (int trial = 0; trial < 8; ++trial) {
    PlacementDag dag = random_dag(rng, 24 + 16 * static_cast<size_t>(trial), 2);
    HostTopology topo = random_topology(rng);
    const uint32_t hosts = static_cast<uint32_t>(topo.host_count());
    PlacementEngine engine(std::move(dag), std::move(topo), {});
    const size_t n = engine.dag().node_count();

    std::vector<uint8_t> assignment(n, 0);
    for (size_t i = 0; i < n; ++i) {
      assignment[i] = engine.dag().pinned[i] != PlacementDag::kFreeHost
                          ? engine.dag().pinned[i]
                          : static_cast<uint8_t>(rng.index(hosts));
    }
    PlacementCandidate c = engine.make_candidate(assignment);

    for (int m = 0; m < 125; ++m, ++moves_checked) {
      const int node = static_cast<int>(rng.index(static_cast<uint32_t>(n)));
      const uint8_t to = static_cast<uint8_t>(rng.index(hosts));
      const double before = engine.full_cost(assignment);
      const PlacementEngine::MoveDelta delta = engine.preview_move(c, node, to);
      std::vector<uint8_t> moved = assignment;
      moved[static_cast<size_t>(node)] = to;
      const double after = engine.full_cost(moved);
      const double tol =
          1e-9 * std::max(1.0, std::fabs(before) + std::fabs(after));
      ASSERT_NEAR(delta.total(), after - before, tol)
          << "trial " << trial << " move " << m;
      // Keep walking: apply the move and check the cached terms track the
      // reference (this is where incremental drift would accumulate).
      engine.apply_move(c, node, to);
      assignment = moved;
      ASSERT_NEAR(c.cost(), after, tol);
    }
  }
  EXPECT_EQ(moves_checked, 1000);
}

// ---------------------------------------------------------------------------
// Search

PlacementEngineConfig small_search() {
  PlacementEngineConfig cfg;
  cfg.candidates = 8;
  cfg.iterations = 12;
  return cfg;
}

std::vector<uint8_t> two_host_seed(const PlacementEngine& engine) {
  // Algorithm 1's shape: ECN-ish parallel nodes remote, rest local.
  const PlacementDag& dag = engine.dag();
  std::vector<uint8_t> seed(dag.node_count(), 0);
  const uint8_t remote =
      static_cast<uint8_t>(engine.topology().host_count() - 1);
  for (size_t i = 0; i < dag.node_count(); ++i) {
    if (dag.pinned[i] != PlacementDag::kFreeHost) {
      seed[i] = dag.pinned[i];
    } else if (dag.parallel_cycles[i] > 0.0) {
      seed[i] = remote;
    }
  }
  return seed;
}

TEST(PlacementEngine, SolveNeverWorseThanSeedAndRespectsPins) {
  PlacementEngine engine(make_pipeline_dag(),
                         HostTopology::three_tier(8, 48, 2.5e6, 0.005),
                         small_search());
  const std::vector<uint8_t> seed = two_host_seed(engine);
  const PlacementResult r = engine.solve(seed);
  EXPECT_LE(r.cost_s, r.seed_cost_s + 1e-12);
  EXPECT_GT(r.delta_evals, 0u);
  EXPECT_GT(r.modeled_solve_s, 0.0);
  const PlacementDag& dag = engine.dag();
  for (size_t i = 0; i < dag.node_count(); ++i) {
    if (dag.pinned[i] != PlacementDag::kFreeHost) {
      EXPECT_EQ(r.assignment[i], dag.pinned[i]) << dag.names[i];
    }
  }
}

TEST(PlacementEngine, SearchIsDeterministicAtAnyWorkerCount) {
  TestRng rng(0xabcdef12);
  PlacementDag dag = random_dag(rng, 48, 2);
  HostTopology topo = HostTopology::three_tier(8, 48, 2.0e6, 0.02);

  std::vector<std::vector<uint8_t>> results;
  std::vector<double> costs;
  for (const size_t workers : {size_t{0}, size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    PlacementDag d = dag;       // engines own their inputs
    HostTopology t = topo;
    PlacementEngine engine(std::move(d), std::move(t), small_search());
    std::unique_ptr<ThreadPool> pool;
    if (workers > 0) {
      pool = std::make_unique<ThreadPool>(workers);
      engine.set_thread_pool(pool.get());
    }
    const PlacementResult r = engine.solve(two_host_seed(engine));
    // A reoptimize epoch must be replay-stable too.
    const PlacementResult r2 = engine.reoptimize();
    results.push_back(r2.assignment);
    costs.push_back(r2.cost_s);
    EXPECT_LE(r2.cost_s, r.cost_s + 1e-12);  // continuation never regresses
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "worker count variant " << i;
    EXPECT_EQ(costs[i], costs[0]);  // bit-identical, not just close
  }
}

TEST(PlacementEngine, ThreeTierBeatsTwoHostWhenGatewayIsCloser) {
  // A constrained WLAN with WAN latency on top: the optimizer should find a
  // plan at least as good as the two-host (all-remote-to-cloud) seed, and on
  // this shape strictly better, by using the gateway tier.
  PlacementEngineConfig cfg = small_search();
  cfg.iterations = 24;
  PlacementEngine engine(make_pipeline_dag(),
                         HostTopology::three_tier(8, 48, 6.0e5, 0.08), cfg);
  const PlacementResult r = engine.solve(two_host_seed(engine));
  EXPECT_LE(r.cost_s, r.seed_cost_s + 1e-12);
  EXPECT_TRUE(r.improved);
}

TEST(PlacementEngine, ReoptimizeRepricesAfterTopologyChange) {
  PlacementEngine engine(make_pipeline_dag(),
                         HostTopology::three_tier(8, 48, 2.5e6, 0.005),
                         small_search());
  engine.solve(two_host_seed(engine));
  const uint64_t built = engine.table_rebuilds();
  // Degrade the WLAN: the incumbent's cached cost is stale, reoptimize must
  // rebuild tables once and still return a plan priced against the new world.
  engine.topology().observe_link(0, 1, 2.0e5, 0.15, 0.05);
  engine.topology().observe_link(1, 0, 2.0e5, 0.15, 0.05);
  engine.topology().observe_link(0, 2, 2.0e5, 0.174, 0.05);
  engine.topology().observe_link(2, 0, 2.0e5, 0.174, 0.05);
  const PlacementResult r = engine.reoptimize();
  EXPECT_EQ(engine.table_rebuilds(), built + 1);
  // Price the returned assignment from scratch: must agree with the result.
  const double reference = engine.full_cost(r.assignment);
  EXPECT_NEAR(r.cost_s, reference, 1e-9 * std::max(1.0, reference));
}

// ---------------------------------------------------------------------------
// Runtime integration

TEST(PlacementEngine, MultiTierRuntimeAppliesEnginePlacement) {
  OffloadRuntime rt(three_tier_plan("3tier", 24, WorkloadKind::kNavigationWithMap),
                    {0.0, 0.0});
  ASSERT_NE(rt.placement_engine(), nullptr);
  const OffloadDecision d = rt.apply_initial_placement();
  EXPECT_EQ(rt.placement_engine()->solves_total(), 1u);
  // The mux never leaves the vehicle; every node has a valid host.
  EXPECT_EQ(rt.host_of(NodeId::kVelocityMux), Host::kLgv);
  EXPECT_EQ(d.placement.size(), all_nodes().size());
  // Telemetry surfaced the solve.
  ASSERT_NE(rt.telemetry(), nullptr);
  const auto snap = rt.telemetry()->metrics().snapshot();
  bool saw_solves = false;
  for (const auto& s : snap.samples) {
    if (s.name == "placement_solves_total" && s.value >= 1.0) saw_solves = true;
  }
  EXPECT_TRUE(saw_solves);
}

TEST(PlacementEngine, ReoptimizeRespectsAlgorithm2Retreat) {
  OffloadRuntime rt(three_tier_plan("3tier", 24, WorkloadKind::kNavigationWithMap),
                    {0.0, 0.0});
  rt.apply_initial_placement();
  ASSERT_EQ(rt.vdp_placement(), VdpPlacement::kRemote);
  const uint64_t solves = rt.placement_engine()->solves_total();

  // Algorithm 2 retreats local: everything comes home and re-optimization
  // stands down (Alg 2 keeps the when).
  EXPECT_TRUE(rt.set_vdp_placement(VdpPlacement::kLocal));
  for (NodeId id : all_nodes()) EXPECT_EQ(rt.host_of(id), Host::kLgv);
  const PlacementResult idle = rt.reoptimize_placement("while_local");
  EXPECT_EQ(idle.iterations, 0);
  EXPECT_EQ(rt.placement_engine()->solves_total(), solves);

  // Re-offload restores the engine's incumbent multi-tier plan.
  EXPECT_TRUE(rt.set_vdp_placement(VdpPlacement::kRemote));
  bool any_remote = false;
  for (NodeId id : all_nodes()) any_remote |= rt.host_of(id) != Host::kLgv;
  EXPECT_TRUE(any_remote);
  const PlacementResult r = rt.reoptimize_placement("re_trigger");
  EXPECT_GT(r.iterations, 0);
  EXPECT_EQ(rt.placement_engine()->solves_total(), solves + 1);
}

TEST(PlacementEngine, PipelineDagMatchesNodeIds) {
  const PlacementDag dag = make_pipeline_dag();
  const std::vector<NodeId> nodes = all_nodes();
  ASSERT_GE(dag.node_count(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(dag.names[i], node_name(nodes[i]));
  }
  // The sensor source is pinned to the vehicle, as is the mux.
  for (size_t i = 0; i < dag.node_count(); ++i) {
    if (dag.names[i] == "velocity_mux" || dag.names[i] == "lidar_driver") {
      EXPECT_EQ(dag.pinned[i], 0);
    }
  }
}

}  // namespace
}  // namespace lgv::core
