#include "core/report_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace lgv::core {
namespace {

MissionReport sample_report() {
  MissionReport r;
  r.deployment = "gateway_8t";
  r.workload = "navigation";
  r.success = true;
  r.completion_time = 24.6;
  r.distance_traveled = 18.0;
  r.average_velocity = 0.73;
  r.standby_time = 0.2;
  r.energy.motor = 124.6;
  r.energy.computer = 48.1;
  r.velocity_trace = {{0.0, 0.82, 0.0}, {0.5, 0.89, 0.4}, {1.0, 0.89, 0.72}};
  r.network_trace = {{0.5, 5.2, 5.0, -0.01, true}, {1.0, 5.4, 4.0, -0.01, false}};
  r.node_cycles = {{"costmap_gen", 1.0e9}, {"path_tracking", 1.2e9}};
  r.node_invocations = {{"costmap_gen", 120}, {"path_tracking", 118}};
  r.battery_state_of_charge = 0.97;
  r.network.uplink_messages = 123;
  return r;
}

TEST(ReportIo, VelocityCsvShape) {
  std::ostringstream os;
  write_velocity_trace_csv(os, sample_report());
  const std::string csv = os.str();
  EXPECT_EQ(csv.substr(0, 11), "t,cap,real\n");
  // Header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("0.5,0.89,0.4"), std::string::npos);
}

TEST(ReportIo, NetworkCsvShape) {
  std::ostringstream os;
  write_network_trace_csv(os, sample_report());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("t,latency_ms,bandwidth_hz,direction,placement"),
            std::string::npos);
  EXPECT_NE(csv.find(",remote"), std::string::npos);
  EXPECT_NE(csv.find(",local"), std::string::npos);
}

TEST(ReportIo, NodeWorkCsvShape) {
  std::ostringstream os;
  write_node_work_csv(os, sample_report());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("costmap_gen,1e+09,120"), std::string::npos);
  EXPECT_NE(csv.find("path_tracking"), std::string::npos);
}

TEST(ReportIo, SummaryMentionsKeyNumbers) {
  const std::string s = summarize(sample_report());
  EXPECT_NE(s.find("SUCCEEDED"), std::string::npos);
  EXPECT_NE(s.find("navigation"), std::string::npos);
  EXPECT_NE(s.find("gateway_8t"), std::string::npos);
  EXPECT_NE(s.find("24.6"), std::string::npos);
  EXPECT_NE(s.find("battery"), std::string::npos);
  EXPECT_NE(s.find("placement switch"), std::string::npos);
}

TEST(ReportIo, FailedMissionSummary) {
  MissionReport r = sample_report();
  r.success = false;
  r.network.uplink_messages = 0;
  const std::string s = summarize(r);
  EXPECT_NE(s.find("FAILED"), std::string::npos);
  EXPECT_EQ(s.find("placement switch"), std::string::npos);
}

TEST(ReportIo, WriteFilesRoundTrip) {
  const std::string prefix = ::testing::TempDir() + "lgv_report_test";
  ASSERT_TRUE(write_report_files(prefix, sample_report()));
  std::ifstream v(prefix + "_velocity.csv");
  ASSERT_TRUE(v.good());
  std::string header;
  std::getline(v, header);
  EXPECT_EQ(header, "t,cap,real");
}

}  // namespace
}  // namespace lgv::core
