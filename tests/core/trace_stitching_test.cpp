// Cross-host span stitching over a full offloaded mission: every scan tick
// roots a trace that must come back as ONE connected DAG — LGV sensor event,
// uplink wire spans, remote node executions, downlink commands — with no
// orphaned parents, and the critical-path attribution over that DAG must
// name at least 95% of the makespan.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/telemetry/critical_path.h"
#include "core/mission_runner.h"
#include "core/report_io.h"

namespace lgv::core {
namespace {

using platform::Host;

MissionConfig quick_config() {
  MissionConfig cfg;
  cfg.rollout_samples = 200;
  cfg.timeout = 600.0;
  return cfg;
}

TEST(TraceStitching, OffloadedMissionFormsConnectedCrossHostDags) {
  MissionRunner runner(sim::make_open_scenario(),
                       offload_plan("gateway_4t", Host::kEdgeGateway, 4,
                                    WorkloadKind::kNavigationWithMap),
                       quick_config());
  const MissionReport report = runner.run();
  ASSERT_TRUE(report.success);

  telemetry::Telemetry* t = runner.runtime().telemetry();
  ASSERT_NE(t, nullptr);
  const std::vector<telemetry::TraceEvent> events = t->tracer().events();
  ASSERT_FALSE(events.empty());

  // Index every span id per trace, then check each parented event resolves
  // inside its own trace: parent links never dangle and never cross traces.
  std::map<uint32_t, std::set<uint32_t>> spans_by_trace;
  for (const auto& e : events) {
    if (e.trace_id != 0) spans_by_trace[e.trace_id].insert(e.span_id);
  }
  ASSERT_GT(spans_by_trace.size(), 10u);  // one trace per scan tick
  size_t dangling = 0;
  for (const auto& e : events) {
    if (e.parent_span_id == 0) continue;
    const auto it = spans_by_trace.find(e.trace_id);
    if (it == spans_by_trace.end() || it->second.count(e.parent_span_id) == 0) {
      ++dangling;
    }
  }
  EXPECT_EQ(dangling, 0u) << "parent span ids must resolve within their trace";

  // At least one trace must span the whole LGV → wire → worker → LGV loop.
  std::map<uint32_t, int> coverage;  // bit 0: lgv, bit 1: wire, bit 2: remote
  for (const auto& e : events) {
    if (e.trace_id == 0) continue;
    if (e.pid == "lgv") coverage[e.trace_id] |= 1;
    if (e.name == "net.wire") coverage[e.trace_id] |= 2;
    if (e.pid == "edge_gateway") coverage[e.trace_id] |= 4;
  }
  size_t cross_host = 0;
  for (const auto& [id, bits] : coverage) {
    if (bits == 7) ++cross_host;
  }
  EXPECT_GT(cross_host, 10u) << "expected many fully-stitched cross-host traces";

  // The analyzer agrees: no orphans, and >= 95% of the makespan lands in
  // named buckets (the ISSUE's attribution acceptance bar).
  const telemetry::CriticalPathResult cp =
      telemetry::attribute_critical_path(events, report.completion_time);
  EXPECT_EQ(cp.orphan_spans, 0u);
  EXPECT_GE(cp.named_fraction(), 0.95)
      << "residual " << cp.residual_s << "s of " << cp.makespan_s << "s";
  EXPECT_GT(cp.network_s, 0.0);  // frames crossed the emulated air
  EXPECT_GT(cp.compute_s, 0.0);

  // Flight recorder stayed within its fixed budget for the whole mission.
  EXPECT_LE(t->tracer().flight_events().size(), t->tracer().flight_capacity());
}

TEST(TraceStitching, LocalMissionTracesStayOnVehicle) {
  MissionRunner runner(sim::make_open_scenario(),
                       local_plan(WorkloadKind::kNavigationWithMap), quick_config());
  const MissionReport report = runner.run();
  ASSERT_TRUE(report.success);
  telemetry::Telemetry* t = runner.runtime().telemetry();
  ASSERT_NE(t, nullptr);

  const telemetry::CriticalPathResult cp = telemetry::attribute_critical_path(
      t->tracer().events(), report.completion_time);
  EXPECT_EQ(cp.orphan_spans, 0u);
  EXPECT_GE(cp.named_fraction(), 0.95);
  // Nothing offloaded: the network buckets stay empty and compute dominates —
  // the qualitative Fig. 13 contrast with the offloaded leg above.
  EXPECT_DOUBLE_EQ(cp.network_s, 0.0);
  EXPECT_GT(cp.compute_s, 0.0);
}

}  // namespace
}  // namespace lgv::core
