#include "core/controller.h"

#include <gtest/gtest.h>

namespace lgv::core {
namespace {

TEST(Controller, VelocityCapFollowsEq2c) {
  Controller c;
  // Near-zero makespan → the √(2·d·a) ceiling of 1.0 m/s.
  EXPECT_NEAR(c.velocity_cap(0.0), 1.0, 1e-9);
  // Large makespan → clamped to the crawl floor.
  EXPECT_DOUBLE_EQ(c.velocity_cap(1000.0), c.config().min_velocity);
  // Monotone in between.
  EXPECT_GT(c.velocity_cap(0.1), c.velocity_cap(1.0));
  EXPECT_GT(c.velocity_cap(1.0), c.velocity_cap(3.0));
}

TEST(Controller, CapRespectsHardLimit) {
  ControllerConfig cfg;
  cfg.stopping_distance = 100.0;  // absurd ceiling
  Controller c(cfg);
  EXPECT_DOUBLE_EQ(c.velocity_cap(0.0), cfg.hard_max_velocity);
}

TEST(Controller, RecommendThreadsKeepsPoolWhenUtilized) {
  Controller c;
  EXPECT_EQ(c.recommend_threads(0.9, 1.0, 8), 8);
}

TEST(Controller, RecommendThreadsHalvesWhenUnderUtilized) {
  // §VIII-E: obstacle-dense phases can't use the speed — shed parallelism.
  Controller c;
  EXPECT_EQ(c.recommend_threads(0.2, 1.0, 8), 4);
  EXPECT_EQ(c.recommend_threads(0.1, 1.0, 2), 1);
  EXPECT_EQ(c.recommend_threads(0.0, 1.0, 1), 1);  // floor at 1
}

TEST(Controller, RecommendThreadsHandlesDegenerateInputs) {
  Controller c;
  EXPECT_EQ(c.recommend_threads(0.5, 0.0, 8), 8);  // no cap info: keep
  EXPECT_EQ(c.recommend_threads(0.5, 1.0, 1), 1);
}

TEST(Controller, LeaseTimeoutScalesWithWorkAndRtt) {
  Controller c;
  const ControllerConfig& cfg = c.config();
  EXPECT_DOUBLE_EQ(c.lease_timeout(1.0, 0.1),
                   cfg.lease_headroom * 1.0 + cfg.lease_rtt_margin * 0.1);
  EXPECT_GT(c.lease_timeout(2.0, 0.1), c.lease_timeout(1.0, 0.1));
  EXPECT_GT(c.lease_timeout(1.0, 0.5), c.lease_timeout(1.0, 0.1));
}

TEST(Controller, LeaseTimeoutFloorsAtMinimum) {
  // Tiny kernels on a fast LAN must still get a usable lease — otherwise
  // ordinary jitter would trigger spurious fallbacks.
  Controller c;
  EXPECT_DOUBLE_EQ(c.lease_timeout(0.0, 0.0), c.config().lease_min_s);
  EXPECT_DOUBLE_EQ(c.lease_timeout(1e-4, 1e-4), c.config().lease_min_s);
}

TEST(Controller, ColdStartLeaseUsesWiderFloor) {
  // First remote execution of a node: no profiled sample exists, so T_c is
  // the analytical estimate — possibly a large underestimate on a machine
  // the model has never seen. The cold floor buys the first execution room
  // to *produce* the sample that makes every later lease accurate.
  Controller c;
  const ControllerConfig& cfg = c.config();
  ASSERT_GT(cfg.lease_cold_min_s, cfg.lease_min_s);
  EXPECT_DOUBLE_EQ(c.lease_timeout(0.0, 0.0, /*cold_start=*/true),
                   cfg.lease_cold_min_s);
  // Warm path unchanged.
  EXPECT_DOUBLE_EQ(c.lease_timeout(0.0, 0.0, /*cold_start=*/false),
                   cfg.lease_min_s);
  // A genuinely long cold estimate still scales past the floor.
  EXPECT_DOUBLE_EQ(c.lease_timeout(2.0, 0.1, /*cold_start=*/true),
                   cfg.lease_headroom * 2.0 + cfg.lease_rtt_margin * 0.1);
}

}  // namespace
}  // namespace lgv::core
