#include "core/analytical_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lgv::core {
namespace {

TEST(Eq2c, ZeroLatencyGivesCeiling) {
  // v_max(0) = √(2·d·a_max); with d=1, a=0.5 → 1.0 m/s.
  EXPECT_NEAR(max_velocity(0.0, 0.5, 1.0), 1.0, 1e-12);
}

TEST(Eq2c, MonotoneDecreasingInProcessingTime) {
  double prev = 1e9;
  for (double tp = 0.0; tp < 10.0; tp += 0.25) {
    const double v = max_velocity(tp, 0.5, 1.0);
    EXPECT_LT(v, prev);
    EXPECT_GT(v, 0.0);
    prev = v;
  }
}

TEST(Eq2c, LargeLatencyApproachesZero) {
  EXPECT_LT(max_velocity(100.0, 0.5, 1.0), 0.01);
}

TEST(Eq2c, InverseRoundTrips) {
  for (double tp : {0.05, 0.3, 1.0, 3.0}) {
    const double v = max_velocity(tp, 0.5, 1.0);
    EXPECT_NEAR(max_processing_time_for_velocity(v, 0.5, 1.0), tp, 1e-9);
  }
  EXPECT_DOUBLE_EQ(max_processing_time_for_velocity(1.0, 0.5, 1.0), 0.0);
}

TEST(Eq2c, HigherAccelOrStoppingDistanceAllowsMoreSpeed) {
  EXPECT_GT(max_velocity(0.5, 1.0, 1.0), max_velocity(0.5, 0.5, 1.0));
  EXPECT_GT(max_velocity(0.5, 0.5, 2.0), max_velocity(0.5, 0.5, 1.0));
}

TEST(Eq2b, MakespanIsSum) {
  EXPECT_DOUBLE_EQ(vdp_makespan(0.1, 0.02, 0.015), 0.135);
}

TEST(Eq1b, TransmissionEnergy) {
  // 2940 B at 20 Mbps with 1.3 W radio.
  EXPECT_NEAR(transmission_energy(1.3, 2940.0, 20e6), 1.3 * 2940 * 8 / 20e6, 1e-12);
  EXPECT_DOUBLE_EQ(transmission_energy(1.3, 100.0, 0.0), 0.0);
  // Slower uplink costs more energy for the same bytes.
  EXPECT_GT(transmission_energy(1.3, 2940.0, 2e6),
            transmission_energy(1.3, 2940.0, 20e6));
}

TEST(Eq1c, ComputePowerQuadraticInFrequency) {
  const double k = 7e-10, l = 1e9;
  EXPECT_NEAR(compute_power(k, l, 2.0) / compute_power(k, l, 1.0), 4.0, 1e-9);
  EXPECT_NEAR(compute_power(k, 2.0 * l, 1.0) / compute_power(k, l, 1.0), 2.0, 1e-9);
}

TEST(Eq1d, MotorPowerShape) {
  EXPECT_DOUBLE_EQ(motor_power(1.0, 2.0, 0.0, 0.1, 0.0), 0.0);  // parked
  const double p0 = motor_power(1.0, 2.0, 0.0, 0.1, 0.5);
  EXPECT_NEAR(p0, 1.0 + 2.0 * 9.81 * 0.1 * 0.5, 1e-9);
  EXPECT_GT(motor_power(1.0, 2.0, 0.3, 0.1, 0.5), p0);        // accelerating
  EXPECT_DOUBLE_EQ(motor_power(1.0, 2.0, -0.3, 0.1, 0.5), p0); // braking is free
}

TEST(MovingTime, InverselyRelatedToVelocity) {
  const double fast = estimated_moving_time(10.0, 0.05, 0.5, 1.0);
  const double slow = estimated_moving_time(10.0, 3.0, 0.5, 1.0);
  EXPECT_LT(fast, slow);
  EXPECT_NEAR(fast, 10.0 / max_velocity(0.05, 0.5, 1.0), 1e-9);
}

TEST(PaperOperatingPoints, LocalVsOffloadVelocityGap) {
  // With Table II per-invocation cycles on the RPi, the local VDP runs at
  // roughly (0.857+1.385)G / 0.84G ≈ 2.7 s → ~0.3 m/s; the accelerated
  // gateway VDP at ~0.15 s → ~0.9 m/s. Fig. 12's several-fold velocity gap.
  const double v_local = max_velocity(2.7, 0.5, 1.0);
  const double v_gw = max_velocity(0.15, 0.5, 1.0);
  EXPECT_LT(v_local, 0.4);
  EXPECT_GT(v_gw, 0.85);
  EXPECT_GT(v_gw / v_local, 2.5);
}

}  // namespace
}  // namespace lgv::core
