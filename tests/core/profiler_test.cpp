#include "core/profiler.h"

#include <gtest/gtest.h>

namespace lgv::core {
namespace {

using platform::Host;

TEST(Profiler, NodeTimeEmaSmoothing) {
  Profiler p({}, {0, 0});
  EXPECT_FALSE(p.node_time(NodeId::kPathTracking, Host::kLgv).has_value());
  p.record_node_time(NodeId::kPathTracking, Host::kLgv, 1.0);
  EXPECT_DOUBLE_EQ(*p.node_time(NodeId::kPathTracking, Host::kLgv), 1.0);
  p.record_node_time(NodeId::kPathTracking, Host::kLgv, 2.0);
  // EMA with alpha 0.3: 0.3·2 + 0.7·1 = 1.3.
  EXPECT_NEAR(*p.node_time(NodeId::kPathTracking, Host::kLgv), 1.3, 1e-12);
}

TEST(Profiler, PerHostTimesAreSeparate) {
  Profiler p({}, {0, 0});
  p.record_node_time(NodeId::kCostmapGen, Host::kLgv, 1.0);
  p.record_node_time(NodeId::kCostmapGen, Host::kEdgeGateway, 0.1);
  EXPECT_DOUBLE_EQ(*p.node_time(NodeId::kCostmapGen, Host::kLgv), 1.0);
  EXPECT_DOUBLE_EQ(*p.node_time(NodeId::kCostmapGen, Host::kEdgeGateway), 0.1);
  EXPECT_FALSE(p.node_time(NodeId::kCostmapGen, Host::kCloudServer).has_value());
}

TEST(Profiler, VdpMakespanPerPlacement) {
  Profiler p({}, {0, 0});
  EXPECT_FALSE(p.vdp_makespan(VdpPlacement::kLocal).has_value());
  p.record_vdp_makespan(VdpPlacement::kLocal, 2.5);
  p.record_vdp_makespan(VdpPlacement::kRemote, 0.15);
  EXPECT_DOUBLE_EQ(*p.vdp_makespan(VdpPlacement::kLocal), 2.5);
  EXPECT_DOUBLE_EQ(*p.vdp_makespan(VdpPlacement::kRemote), 0.15);
}

TEST(Profiler, RttTracked) {
  Profiler p({}, {0, 0});
  EXPECT_FALSE(p.rtt().has_value());
  p.record_rtt(1.0, 1.03);
  EXPECT_NEAR(*p.rtt(), 0.03, 1e-12);
}

TEST(Profiler, ObservationCombinesBandwidthAndDirection) {
  Profiler p({}, {0, 0});
  // 5 Hz stream while driving away from the WAP.
  double t = 0.0;
  for (int i = 0; i < 15; ++i, t += 0.2) {
    p.on_stream_packet(t);
    p.on_robot_position({1.0 + 0.2 * i, 0.0});
  }
  const NetworkObservation obs = p.observe(t);
  EXPECT_NEAR(obs.bandwidth_hz, 5.0, 1.0);
  EXPECT_LT(obs.signal_direction, 0.0);
}

TEST(Profiler, BandwidthDropsWhenStreamStops) {
  Profiler p({}, {0, 0});
  double t = 0.0;
  for (int i = 0; i < 10; ++i, t += 0.2) p.on_stream_packet(t);
  EXPECT_GT(p.observe(t).bandwidth_hz, 3.0);
  EXPECT_DOUBLE_EQ(p.observe(t + 3.0).bandwidth_hz, 0.0);
}

}  // namespace
}  // namespace lgv::core
