#include "core/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

namespace lgv::core {
namespace {

WorkerPoolConfig small_pool(int cores = 2) {
  WorkerPoolConfig c;
  c.cores = cores;
  c.threads = 2;  // real threads; the virtual schedule is what we assert on
  return c;
}

TEST(WorkerPool, AdmitsRenewsAndEvictsSessions) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  ASSERT_NE(a.session, 0u);
  EXPECT_FALSE(a.busy);
  EXPECT_EQ(pool.active_sessions(), 1u);

  // Traffic inside the lease renews it.
  EXPECT_TRUE(pool.renew(a.session, 1.0));
  // Silence past the lease evicts.
  EXPECT_EQ(pool.evict_expired(1.0 + pool.config().session_lease_s + 0.1), 1u);
  EXPECT_FALSE(pool.has_session(a.session));
  EXPECT_EQ(pool.evictions(), 1u);

  // A request against the evicted session is a retryable refusal, not UB.
  const WorkerVerdict v =
      pool.execute(a.session, KernelKind::kGeneric, 10.0, 0.01, 1);
  EXPECT_TRUE(v.busy);
}

TEST(WorkerPool, RenewAfterExpiryFailsAndEvicts) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  EXPECT_FALSE(pool.renew(a.session, pool.config().session_lease_s + 1.0));
  EXPECT_FALSE(pool.has_session(a.session));
}

TEST(WorkerPool, AdmissionBouncesWhenSessionTableFull) {
  WorkerPoolConfig cfg = small_pool();
  cfg.max_sessions = 3;
  WorkerPool pool(cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(pool.open_session("lgv-" + std::to_string(i), 0.0).session, 0u);
  }
  const Admission bounced = pool.open_session("lgv-3", 0.0);
  EXPECT_EQ(bounced.session, 0u);
  EXPECT_TRUE(bounced.busy);
  EXPECT_EQ(pool.admission_rejects(), 1u);
}

TEST(WorkerPool, SingleRequestServedWithModeledTiming) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  const WorkerVerdict v =
      pool.execute(a.session, KernelKind::kScanMatch, 1.0, 0.25, 1);
  EXPECT_FALSE(v.busy);
  EXPECT_DOUBLE_EQ(v.queue_wait, 0.0);  // empty pool: cores free immediately
  EXPECT_DOUBLE_EQ(v.service, 0.25);
  EXPECT_DOUBLE_EQ(v.completion, 1.25);
  EXPECT_FALSE(v.batched);
}

TEST(WorkerPool, QueueDepthBoundProducesBusyNotUnboundedQueue) {
  WorkerPoolConfig cfg = small_pool();
  cfg.max_session_queue = 3;
  cfg.busy_wait_s = 1e9;  // isolate the depth bound from the wait bound
  WorkerPool pool(cfg);
  const Admission a = pool.open_session("lgv-0", 0.0);

  int busy = 0;
  std::vector<WorkerPool::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    const auto t = pool.submit(a.session, KernelKind::kGeneric, 0.0, 1.0, 1);
    busy += t.busy ? 1 : 0;
    tickets.push_back(t);
  }
  // Exactly the overflow beyond the bound is bounced, before any flush.
  EXPECT_EQ(busy, 3);
  EXPECT_EQ(pool.busy_rejects(), 3u);

  pool.flush(0.0);
  EXPECT_LE(pool.max_session_depth(), cfg.max_session_queue);
  for (const auto& t : tickets) {
    const WorkerVerdict v = pool.verdict(t);
    EXPECT_EQ(v.busy, t.busy);
  }
}

TEST(WorkerPool, PredictedWaitAboveThresholdIsBusy) {
  WorkerPoolConfig cfg = small_pool(/*cores=*/1);
  cfg.busy_wait_s = 0.5;
  WorkerPool pool(cfg);
  const Admission a = pool.open_session("lgv-0", 0.0);
  // Occupy the single core for 2 s.
  EXPECT_FALSE(pool.execute(a.session, KernelKind::kGeneric, 0.0, 2.0, 1).busy);
  // A fresh request would wait ~2 s for the core — above the 0.5 s threshold.
  const WorkerVerdict v = pool.execute(a.session, KernelKind::kGeneric, 0.0, 0.1, 1);
  EXPECT_TRUE(v.busy);
  // Once the core frees, the same request is served.
  const WorkerVerdict later =
      pool.execute(a.session, KernelKind::kGeneric, 2.0, 0.1, 1);
  EXPECT_FALSE(later.busy);
}

TEST(WorkerPool, CoalescesSameKernelBlocksAcrossSessions) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  const Admission b = pool.open_session("lgv-1", 0.0);

  std::atomic<size_t> items_a{0}, items_b{0};
  const double spc = 1e-9;
  const auto ta = pool.submit_block(
      a.session, KernelKind::kScanMatch, 0.0, 20,
      [&items_a](size_t begin, size_t end) {
        items_a.fetch_add(end - begin);
        return 1000.0 * static_cast<double>(end - begin);
      },
      spc, 1);
  const auto tb = pool.submit_block(
      b.session, KernelKind::kScanMatch, 0.0, 12,
      [&items_b](size_t begin, size_t end) {
        items_b.fetch_add(end - begin);
        return 1000.0 * static_cast<double>(end - begin);
      },
      spc, 1);
  pool.flush(0.0);

  // Every item of both requests really ran, exactly once (by count).
  EXPECT_EQ(items_a.load(), 20u);
  EXPECT_EQ(items_b.load(), 12u);
  // One combined dispatch; both requests marked batched.
  EXPECT_EQ(pool.batches(), 1u);
  EXPECT_EQ(pool.batched_requests(), 2u);
  const WorkerVerdict va = pool.verdict(ta);
  const WorkerVerdict vb = pool.verdict(tb);
  EXPECT_TRUE(va.batched);
  EXPECT_TRUE(vb.batched);
  // Service priced from the measured cycles of each request alone.
  EXPECT_NEAR(va.service, 20 * 1000.0 * spc, 1e-12);
  EXPECT_NEAR(vb.service, 12 * 1000.0 * spc, 1e-12);
}

TEST(WorkerPool, DifferentKernelsDoNotCoalesce) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  const Admission b = pool.open_session("lgv-1", 0.0);
  const auto fn = [](size_t begin, size_t end) {
    return static_cast<double>(end - begin);
  };
  pool.submit_block(a.session, KernelKind::kScanMatch, 0.0, 8, fn, 1e-9, 1);
  pool.submit_block(b.session, KernelKind::kScoreTrajectory, 0.0, 8, fn, 1e-9, 1);
  pool.flush(0.0);
  EXPECT_EQ(pool.batched_requests(), 0u);
}

TEST(WorkerPool, FairShareFavorsHigherWeight) {
  // One core, two sessions, four 1 s requests each. The weight-2 session
  // must finish its work in roughly half the virtual passes of the weight-1
  // session — stride scheduling, not FIFO.
  WorkerPoolConfig cfg = small_pool(/*cores=*/1);
  cfg.busy_wait_s = 1e9;
  cfg.max_session_queue = 16;
  WorkerPool pool(cfg);
  const Admission a = pool.open_session("lgv-a", 0.0, /*weight=*/1);
  const Admission b = pool.open_session("lgv-b", 0.0, /*weight=*/2);

  std::vector<WorkerPool::Ticket> ta, tb;
  for (int i = 0; i < 4; ++i) {
    ta.push_back(pool.submit(a.session, KernelKind::kGeneric, 0.0, 1.0, 1));
    tb.push_back(pool.submit(b.session, KernelKind::kGeneric, 0.0, 1.0, 1));
  }
  pool.flush(0.0);

  double a_total = 0.0, b_total = 0.0;
  for (int i = 0; i < 4; ++i) {
    a_total += pool.verdict(ta[static_cast<size_t>(i)]).completion;
    b_total += pool.verdict(tb[static_cast<size_t>(i)]).completion;
  }
  // Weight 2 drains ~2× as fast → strictly earlier mean completion.
  EXPECT_LT(b_total, a_total);
  // All eight seconds of service end up scheduled back-to-back on the core.
  double last = 0.0;
  for (int i = 0; i < 4; ++i) {
    last = std::max(last, pool.verdict(ta[static_cast<size_t>(i)]).completion);
    last = std::max(last, pool.verdict(tb[static_cast<size_t>(i)]).completion);
  }
  EXPECT_DOUBLE_EQ(last, 8.0);
}

TEST(WorkerPool, ScheduleIsDeterministic) {
  // Two identical pools fed the same request sequence produce bit-identical
  // verdicts — the fleet bench's reproducibility contract.
  auto run = [] {
    WorkerPool pool(small_pool());
    const Admission a = pool.open_session("lgv-0", 0.0);
    const Admission b = pool.open_session("lgv-1", 0.0);
    std::vector<WorkerVerdict> out;
    for (int tick = 0; tick < 5; ++tick) {
      const double now = 0.1 * tick;
      std::vector<WorkerPool::Ticket> ts;
      ts.push_back(pool.submit(a.session, KernelKind::kScanMatch, now, 0.08, 2));
      ts.push_back(pool.submit(b.session, KernelKind::kScanMatch, now, 0.06, 1));
      ts.push_back(pool.submit(b.session, KernelKind::kScoreTrajectory, now, 0.04, 1));
      pool.flush(now);
      for (const auto& t : ts) out.push_back(pool.verdict(t));
    }
    return out;
  };
  const auto r1 = run();
  const auto r2 = run();
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].busy, r2[i].busy) << i;
    EXPECT_DOUBLE_EQ(r1[i].queue_wait, r2[i].queue_wait) << i;
    EXPECT_DOUBLE_EQ(r1[i].service, r2[i].service) << i;
    EXPECT_DOUBLE_EQ(r1[i].completion, r2[i].completion) << i;
  }
}

TEST(WorkerPool, MultiCoreRequestWaitsForEnoughCores) {
  WorkerPoolConfig cfg = small_pool(/*cores=*/2);
  cfg.busy_wait_s = 1e9;  // the point here is the wait, not the busy bound
  WorkerPool pool(cfg);
  const Admission a = pool.open_session("lgv-0", 0.0);
  // Occupy one core until t=1.
  EXPECT_FALSE(pool.execute(a.session, KernelKind::kGeneric, 0.0, 1.0, 1).busy);
  // A 2-core request can only start when BOTH cores are free → waits to t=1.
  const WorkerVerdict v = pool.execute(a.session, KernelKind::kGeneric, 0.0, 0.5, 2);
  ASSERT_FALSE(v.busy);
  EXPECT_DOUBLE_EQ(v.queue_wait, 1.0);
  EXPECT_DOUBLE_EQ(v.completion, 1.5);
}

TEST(WorkerPool, OccupancyTracksBusyCores) {
  WorkerPool pool(small_pool(/*cores=*/4));
  const Admission a = pool.open_session("lgv-0", 0.0);
  EXPECT_DOUBLE_EQ(pool.occupancy(0.0), 0.0);
  pool.execute(a.session, KernelKind::kGeneric, 0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(pool.occupancy(0.5), 0.5);  // 2 of 4 cores busy
  EXPECT_DOUBLE_EQ(pool.occupancy(1.5), 0.0);
}

// ---- failure plane: scripted pool faults (PR 9) -----------------------------

TEST(WorkerPool, PoolCrashEvictsSessionsAndBouncesUntilRestart) {
  WorkerPool pool(small_pool());
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kPoolCrash, 5.0, 3.0);  // down on [5, 8)
  const sim::FaultInjector inj(std::move(s));
  pool.set_fault_injector(&inj);

  const Admission a = pool.open_session("lgv-0", 0.0);
  ASSERT_NE(a.session, 0u);
  EXPECT_FALSE(pool.execute(a.session, KernelKind::kGeneric, 1.0, 0.1, 1).busy);

  // Inside the window: the crash wiped the session table and submissions
  // bounce with the explicit cause.
  const WorkerVerdict v =
      pool.execute(a.session, KernelKind::kGeneric, 6.0, 0.1, 1);
  EXPECT_TRUE(v.busy);
  EXPECT_STREQ(v.busy_cause, "pool_crash");
  EXPECT_FALSE(pool.has_session(a.session));
  EXPECT_EQ(pool.pool_crashes(), 1u);
  EXPECT_TRUE(pool.crashed(6.0));
  EXPECT_TRUE(pool.open_session("lgv-1", 6.5).busy);  // no admission while down

  // A result in flight across the window is lost; one before it is not.
  EXPECT_TRUE(pool.result_lost_in(4.0, 9.0));
  EXPECT_FALSE(pool.result_lost_in(0.0, 5.0));

  // After the window the pool restarts empty and serves again from idle
  // cores — the pre-crash backlog did not survive the restart.
  const Admission b = pool.open_session("lgv-0", 8.5);
  ASSERT_NE(b.session, 0u);
  const WorkerVerdict after =
      pool.execute(b.session, KernelKind::kGeneric, 8.5, 0.25, 1);
  ASSERT_FALSE(after.busy);
  EXPECT_DOUBLE_EQ(after.queue_wait, 0.0);
  EXPECT_DOUBLE_EQ(after.completion, 8.75);
}

TEST(WorkerPool, DegradeParksCoresForTheWindow) {
  WorkerPool pool(small_pool(/*cores=*/4));
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kPoolDegrade, 0.0, 10.0, 2.0);  // 2 of 4 cores gone
  const sim::FaultInjector inj(std::move(s));
  pool.set_fault_injector(&inj);

  const Admission a = pool.open_session("lgv-0", 1.0);
  ASSERT_NE(a.session, 0u);
  // Half the cores are parked until t=10.
  EXPECT_DOUBLE_EQ(pool.occupancy(1.0), 0.5);
  // A 1-core request still runs immediately on a surviving core.
  const WorkerVerdict ok =
      pool.execute(a.session, KernelKind::kGeneric, 1.0, 0.5, 1);
  ASSERT_FALSE(ok.busy);
  EXPECT_DOUBLE_EQ(ok.queue_wait, 0.0);
  // A 3-core request would have to wait for a parked core (~9 s) — that is a
  // busy verdict, not unbounded queueing.
  const WorkerVerdict wide =
      pool.execute(a.session, KernelKind::kGeneric, 1.0, 0.5, 3);
  EXPECT_TRUE(wide.busy);
  EXPECT_STREQ(wide.busy_cause, "pool_wait");
  // Past the window the cores are back.
  const WorkerVerdict later =
      pool.execute(a.session, KernelKind::kGeneric, 10.5, 0.5, 3);
  EXPECT_FALSE(later.busy);
}

TEST(WorkerPool, PartitionBouncesDeterministicSubsetWithoutRenewingLeases) {
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kPoolPartition, 10.0, 5.0, 0.5);
  const sim::FaultInjector inj(std::move(s));

  auto run = [&inj](std::vector<uint32_t>* bounced) {
    WorkerPoolConfig cfg = small_pool(/*cores=*/8);
    cfg.max_sessions = 64;
    WorkerPool pool(cfg);
    pool.set_fault_injector(&inj);
    std::vector<SessionId> ids;
    // Admitted just before the window so every lease is live at t=11.
    for (int i = 0; i < 32; ++i)
      ids.push_back(pool.open_session("lgv-" + std::to_string(i), 9.5).session);
    for (SessionId id : ids) {
      const WorkerVerdict v =
          pool.execute(id, KernelKind::kGeneric, 11.0, 0.001, 1);
      if (v.busy) {
        EXPECT_STREQ(v.busy_cause, "pool_partition");
        bounced->push_back(id);
      }
    }
    // Partitioned traffic must NOT renew the lease (the vehicle is
    // unreachable from the pool's point of view) — silence evicts it on
    // schedule while the served sessions, renewed at t=11, survive.
    const double expiry = 9.5 + pool.config().session_lease_s + 0.1;
    for (uint32_t id : *bounced) {
      pool.evict_expired(expiry);
      EXPECT_FALSE(pool.has_session(id));
    }
  };

  std::vector<uint32_t> first, second;
  run(&first);
  run(&second);
  // A real partition: some sessions cut, some fine, and the subset is the
  // same deterministic one on every run.
  EXPECT_GT(first.size(), 0u);
  EXPECT_LT(first.size(), 32u);
  EXPECT_EQ(first, second);
}

TEST(WorkerPool, DrainLetsInflightFinishThenEvicts) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  const Admission b = pool.open_session("lgv-1", 0.0);
  ASSERT_NE(a.session, 0u);
  ASSERT_NE(b.session, 0u);

  // In-flight work admitted before the drain keeps its completion.
  const WorkerVerdict va =
      pool.execute(a.session, KernelKind::kGeneric, 0.0, 1.0, 1);
  ASSERT_FALSE(va.busy);

  pool.begin_drain(0.1);
  EXPECT_TRUE(pool.draining());
  EXPECT_FALSE(pool.drained(0.1));  // a's work is still on the cores

  // New admissions and new requests bounce with the retryable cause.
  EXPECT_TRUE(pool.open_session("lgv-2", 0.2).busy);
  const WorkerVerdict vb =
      pool.execute(b.session, KernelKind::kGeneric, 0.2, 0.1, 1);
  EXPECT_TRUE(vb.busy);
  EXPECT_STREQ(vb.busy_cause, "draining");

  // Once the outstanding work lands, step() evicts the sessions and the
  // drain is complete.
  pool.step(1.5);
  EXPECT_EQ(pool.active_sessions(), 0u);
  EXPECT_TRUE(pool.drained(1.5));
  EXPECT_GE(pool.drain_evictions(), 2u);

  // end_drain() reopens admission (the restarted replica).
  pool.end_drain();
  EXPECT_FALSE(pool.draining());
  EXPECT_NE(pool.open_session("lgv-0", 2.0).session, 0u);
}

// Regression (PR 9 satellite): evicting a session mid-flush-window must
// explicitly fail its pending coalesced requests — not silently drop them —
// and must not dispatch the evicted vehicle's block or corrupt the
// survivors' batch accounting.
TEST(WorkerPool, EvictionMidFlushWindowFailsPendingExplicitly) {
  WorkerPool pool(small_pool(/*cores=*/4));
  const Admission a = pool.open_session("lgv-0", 0.0);
  const Admission b = pool.open_session("lgv-1", 0.0);

  std::atomic<int> a_items{0};
  std::atomic<int> b_items{0};
  const double spc = 1e-9;
  const WorkerPool::Ticket ta = pool.submit_block(
      a.session, KernelKind::kScanMatch, 0.0, 16,
      [&a_items](size_t begin, size_t end) {
        a_items += static_cast<int>(end - begin);
        return static_cast<double>(end - begin);
      },
      spc, 1);
  const WorkerPool::Ticket tb = pool.submit_block(
      b.session, KernelKind::kScanMatch, 0.0, 16,
      [&b_items](size_t begin, size_t end) {
        b_items += static_cast<int>(end - begin);
        return static_cast<double>(end - begin);
      },
      spc, 1);
  ASSERT_FALSE(ta.busy);
  ASSERT_FALSE(tb.busy);

  // The eviction lands between submit and flush — the coalescing window.
  pool.close_session(a.session);
  pool.flush(0.0);

  // The evicted request has an explicit retryable failure, not a dangling
  // ticket.
  const WorkerVerdict va = pool.verdict(ta);
  EXPECT_TRUE(va.busy);
  EXPECT_STREQ(va.busy_cause, "evicted");
  EXPECT_EQ(pool.evicted_requests(), 1u);
  EXPECT_EQ(a_items.load(), 0);  // the evicted block never ran

  // The survivor was served over ALL of its items and — with the evicted
  // peer removed before dispatch — was not marked as coalesced with it.
  const WorkerVerdict vb = pool.verdict(tb);
  ASSERT_FALSE(vb.busy);
  EXPECT_FALSE(vb.batched);
  EXPECT_EQ(b_items.load(), 16);
  EXPECT_EQ(pool.batched_requests(), 0u);
}

TEST(WorkerPool, FailurePlaneTelemetryCoverage) {
  telemetry::Telemetry t;
  WorkerPool pool(small_pool(), &t);
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kPoolCrash, 5.0, 1.0);
  const sim::FaultInjector inj(std::move(s));
  pool.set_fault_injector(&inj);

  pool.open_session("lgv-0", 0.0);
  pool.step(6.0);  // crosses the crash start
  EXPECT_DOUBLE_EQ(t.metrics().counter("pool_crashes_total").value(), 1.0);

  pool.begin_drain(7.0);
  EXPECT_DOUBLE_EQ(t.metrics().counter("pool_drains_total").value(), 1.0);
  // The drain fires the flight recorder exactly once (repeats are no-ops).
  EXPECT_DOUBLE_EQ(
      t.metrics()
          .counter("flight_recorder_dumps_total", {{"trigger", "pool_drain"}})
          .value(),
      1.0);
  pool.end_drain();
  pool.begin_drain(8.0);
  EXPECT_DOUBLE_EQ(
      t.metrics()
          .counter("flight_recorder_dumps_total", {{"trigger", "pool_drain"}})
          .value(),
      1.0);

  pool.note_busy_fallback();
  EXPECT_DOUBLE_EQ(t.metrics().counter("pool_busy_fallback_total").value(), 1.0);
}

TEST(WorkerPool, NoteBusyFallbackAggregatesTenantAccounting) {
  WorkerPool pool(small_pool());
  EXPECT_EQ(pool.busy_fallbacks(), 0u);
  pool.note_busy_fallback();
  pool.note_busy_fallback();
  EXPECT_EQ(pool.busy_fallbacks(), 2u);
}

}  // namespace
}  // namespace lgv::core
