#include "core/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

namespace lgv::core {
namespace {

WorkerPoolConfig small_pool(int cores = 2) {
  WorkerPoolConfig c;
  c.cores = cores;
  c.threads = 2;  // real threads; the virtual schedule is what we assert on
  return c;
}

TEST(WorkerPool, AdmitsRenewsAndEvictsSessions) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  ASSERT_NE(a.session, 0u);
  EXPECT_FALSE(a.busy);
  EXPECT_EQ(pool.active_sessions(), 1u);

  // Traffic inside the lease renews it.
  EXPECT_TRUE(pool.renew(a.session, 1.0));
  // Silence past the lease evicts.
  EXPECT_EQ(pool.evict_expired(1.0 + pool.config().session_lease_s + 0.1), 1u);
  EXPECT_FALSE(pool.has_session(a.session));
  EXPECT_EQ(pool.evictions(), 1u);

  // A request against the evicted session is a retryable refusal, not UB.
  const WorkerVerdict v =
      pool.execute(a.session, KernelKind::kGeneric, 10.0, 0.01, 1);
  EXPECT_TRUE(v.busy);
}

TEST(WorkerPool, RenewAfterExpiryFailsAndEvicts) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  EXPECT_FALSE(pool.renew(a.session, pool.config().session_lease_s + 1.0));
  EXPECT_FALSE(pool.has_session(a.session));
}

TEST(WorkerPool, AdmissionBouncesWhenSessionTableFull) {
  WorkerPoolConfig cfg = small_pool();
  cfg.max_sessions = 3;
  WorkerPool pool(cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(pool.open_session("lgv-" + std::to_string(i), 0.0).session, 0u);
  }
  const Admission bounced = pool.open_session("lgv-3", 0.0);
  EXPECT_EQ(bounced.session, 0u);
  EXPECT_TRUE(bounced.busy);
  EXPECT_EQ(pool.admission_rejects(), 1u);
}

TEST(WorkerPool, SingleRequestServedWithModeledTiming) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  const WorkerVerdict v =
      pool.execute(a.session, KernelKind::kScanMatch, 1.0, 0.25, 1);
  EXPECT_FALSE(v.busy);
  EXPECT_DOUBLE_EQ(v.queue_wait, 0.0);  // empty pool: cores free immediately
  EXPECT_DOUBLE_EQ(v.service, 0.25);
  EXPECT_DOUBLE_EQ(v.completion, 1.25);
  EXPECT_FALSE(v.batched);
}

TEST(WorkerPool, QueueDepthBoundProducesBusyNotUnboundedQueue) {
  WorkerPoolConfig cfg = small_pool();
  cfg.max_session_queue = 3;
  cfg.busy_wait_s = 1e9;  // isolate the depth bound from the wait bound
  WorkerPool pool(cfg);
  const Admission a = pool.open_session("lgv-0", 0.0);

  int busy = 0;
  std::vector<WorkerPool::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    const auto t = pool.submit(a.session, KernelKind::kGeneric, 0.0, 1.0, 1);
    busy += t.busy ? 1 : 0;
    tickets.push_back(t);
  }
  // Exactly the overflow beyond the bound is bounced, before any flush.
  EXPECT_EQ(busy, 3);
  EXPECT_EQ(pool.busy_rejects(), 3u);

  pool.flush(0.0);
  EXPECT_LE(pool.max_session_depth(), cfg.max_session_queue);
  for (const auto& t : tickets) {
    const WorkerVerdict v = pool.verdict(t);
    EXPECT_EQ(v.busy, t.busy);
  }
}

TEST(WorkerPool, PredictedWaitAboveThresholdIsBusy) {
  WorkerPoolConfig cfg = small_pool(/*cores=*/1);
  cfg.busy_wait_s = 0.5;
  WorkerPool pool(cfg);
  const Admission a = pool.open_session("lgv-0", 0.0);
  // Occupy the single core for 2 s.
  EXPECT_FALSE(pool.execute(a.session, KernelKind::kGeneric, 0.0, 2.0, 1).busy);
  // A fresh request would wait ~2 s for the core — above the 0.5 s threshold.
  const WorkerVerdict v = pool.execute(a.session, KernelKind::kGeneric, 0.0, 0.1, 1);
  EXPECT_TRUE(v.busy);
  // Once the core frees, the same request is served.
  const WorkerVerdict later =
      pool.execute(a.session, KernelKind::kGeneric, 2.0, 0.1, 1);
  EXPECT_FALSE(later.busy);
}

TEST(WorkerPool, CoalescesSameKernelBlocksAcrossSessions) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  const Admission b = pool.open_session("lgv-1", 0.0);

  std::atomic<size_t> items_a{0}, items_b{0};
  const double spc = 1e-9;
  const auto ta = pool.submit_block(
      a.session, KernelKind::kScanMatch, 0.0, 20,
      [&items_a](size_t begin, size_t end) {
        items_a.fetch_add(end - begin);
        return 1000.0 * static_cast<double>(end - begin);
      },
      spc, 1);
  const auto tb = pool.submit_block(
      b.session, KernelKind::kScanMatch, 0.0, 12,
      [&items_b](size_t begin, size_t end) {
        items_b.fetch_add(end - begin);
        return 1000.0 * static_cast<double>(end - begin);
      },
      spc, 1);
  pool.flush(0.0);

  // Every item of both requests really ran, exactly once (by count).
  EXPECT_EQ(items_a.load(), 20u);
  EXPECT_EQ(items_b.load(), 12u);
  // One combined dispatch; both requests marked batched.
  EXPECT_EQ(pool.batches(), 1u);
  EXPECT_EQ(pool.batched_requests(), 2u);
  const WorkerVerdict va = pool.verdict(ta);
  const WorkerVerdict vb = pool.verdict(tb);
  EXPECT_TRUE(va.batched);
  EXPECT_TRUE(vb.batched);
  // Service priced from the measured cycles of each request alone.
  EXPECT_NEAR(va.service, 20 * 1000.0 * spc, 1e-12);
  EXPECT_NEAR(vb.service, 12 * 1000.0 * spc, 1e-12);
}

TEST(WorkerPool, DifferentKernelsDoNotCoalesce) {
  WorkerPool pool(small_pool());
  const Admission a = pool.open_session("lgv-0", 0.0);
  const Admission b = pool.open_session("lgv-1", 0.0);
  const auto fn = [](size_t begin, size_t end) {
    return static_cast<double>(end - begin);
  };
  pool.submit_block(a.session, KernelKind::kScanMatch, 0.0, 8, fn, 1e-9, 1);
  pool.submit_block(b.session, KernelKind::kScoreTrajectory, 0.0, 8, fn, 1e-9, 1);
  pool.flush(0.0);
  EXPECT_EQ(pool.batched_requests(), 0u);
}

TEST(WorkerPool, FairShareFavorsHigherWeight) {
  // One core, two sessions, four 1 s requests each. The weight-2 session
  // must finish its work in roughly half the virtual passes of the weight-1
  // session — stride scheduling, not FIFO.
  WorkerPoolConfig cfg = small_pool(/*cores=*/1);
  cfg.busy_wait_s = 1e9;
  cfg.max_session_queue = 16;
  WorkerPool pool(cfg);
  const Admission a = pool.open_session("lgv-a", 0.0, /*weight=*/1);
  const Admission b = pool.open_session("lgv-b", 0.0, /*weight=*/2);

  std::vector<WorkerPool::Ticket> ta, tb;
  for (int i = 0; i < 4; ++i) {
    ta.push_back(pool.submit(a.session, KernelKind::kGeneric, 0.0, 1.0, 1));
    tb.push_back(pool.submit(b.session, KernelKind::kGeneric, 0.0, 1.0, 1));
  }
  pool.flush(0.0);

  double a_total = 0.0, b_total = 0.0;
  for (int i = 0; i < 4; ++i) {
    a_total += pool.verdict(ta[static_cast<size_t>(i)]).completion;
    b_total += pool.verdict(tb[static_cast<size_t>(i)]).completion;
  }
  // Weight 2 drains ~2× as fast → strictly earlier mean completion.
  EXPECT_LT(b_total, a_total);
  // All eight seconds of service end up scheduled back-to-back on the core.
  double last = 0.0;
  for (int i = 0; i < 4; ++i) {
    last = std::max(last, pool.verdict(ta[static_cast<size_t>(i)]).completion);
    last = std::max(last, pool.verdict(tb[static_cast<size_t>(i)]).completion);
  }
  EXPECT_DOUBLE_EQ(last, 8.0);
}

TEST(WorkerPool, ScheduleIsDeterministic) {
  // Two identical pools fed the same request sequence produce bit-identical
  // verdicts — the fleet bench's reproducibility contract.
  auto run = [] {
    WorkerPool pool(small_pool());
    const Admission a = pool.open_session("lgv-0", 0.0);
    const Admission b = pool.open_session("lgv-1", 0.0);
    std::vector<WorkerVerdict> out;
    for (int tick = 0; tick < 5; ++tick) {
      const double now = 0.1 * tick;
      std::vector<WorkerPool::Ticket> ts;
      ts.push_back(pool.submit(a.session, KernelKind::kScanMatch, now, 0.08, 2));
      ts.push_back(pool.submit(b.session, KernelKind::kScanMatch, now, 0.06, 1));
      ts.push_back(pool.submit(b.session, KernelKind::kScoreTrajectory, now, 0.04, 1));
      pool.flush(now);
      for (const auto& t : ts) out.push_back(pool.verdict(t));
    }
    return out;
  };
  const auto r1 = run();
  const auto r2 = run();
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].busy, r2[i].busy) << i;
    EXPECT_DOUBLE_EQ(r1[i].queue_wait, r2[i].queue_wait) << i;
    EXPECT_DOUBLE_EQ(r1[i].service, r2[i].service) << i;
    EXPECT_DOUBLE_EQ(r1[i].completion, r2[i].completion) << i;
  }
}

TEST(WorkerPool, MultiCoreRequestWaitsForEnoughCores) {
  WorkerPoolConfig cfg = small_pool(/*cores=*/2);
  cfg.busy_wait_s = 1e9;  // the point here is the wait, not the busy bound
  WorkerPool pool(cfg);
  const Admission a = pool.open_session("lgv-0", 0.0);
  // Occupy one core until t=1.
  EXPECT_FALSE(pool.execute(a.session, KernelKind::kGeneric, 0.0, 1.0, 1).busy);
  // A 2-core request can only start when BOTH cores are free → waits to t=1.
  const WorkerVerdict v = pool.execute(a.session, KernelKind::kGeneric, 0.0, 0.5, 2);
  ASSERT_FALSE(v.busy);
  EXPECT_DOUBLE_EQ(v.queue_wait, 1.0);
  EXPECT_DOUBLE_EQ(v.completion, 1.5);
}

TEST(WorkerPool, OccupancyTracksBusyCores) {
  WorkerPool pool(small_pool(/*cores=*/4));
  const Admission a = pool.open_session("lgv-0", 0.0);
  EXPECT_DOUBLE_EQ(pool.occupancy(0.0), 0.0);
  pool.execute(a.session, KernelKind::kGeneric, 0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(pool.occupancy(0.5), 0.5);  // 2 of 4 cores busy
  EXPECT_DOUBLE_EQ(pool.occupancy(1.5), 0.0);
}

}  // namespace
}  // namespace lgv::core
