#include "core/offload_planner.h"

#include <gtest/gtest.h>

namespace lgv::core {
namespace {

using platform::Host;

std::map<NodeId, NodeTraits> traits_for(WorkloadKind workload) {
  std::map<NodeId, NodeTraits> out;
  for (NodeId id : all_nodes()) out[id] = NodeClassifier::static_traits(id, workload);
  return out;
}

TEST(Algorithm1, EnergyGoalOffloadsAllEcns) {
  OffloadPlanner planner(Goal::kEnergy, Host::kCloudServer);
  const auto traits = traits_for(WorkloadKind::kExplorationWithoutMap);
  const OffloadDecision d = planner.decide(traits, 1.0, 0.5);
  // T1 (SLAM) + T3 (CostmapGen, Path Tracking) go remote.
  EXPECT_EQ(d.placement.at(NodeId::kLocalization), Host::kCloudServer);
  EXPECT_EQ(d.placement.at(NodeId::kCostmapGen), Host::kCloudServer);
  EXPECT_EQ(d.placement.at(NodeId::kPathTracking), Host::kCloudServer);
  // T2 + T4 stay local.
  EXPECT_EQ(d.placement.at(NodeId::kVelocityMux), Host::kLgv);
  EXPECT_EQ(d.placement.at(NodeId::kPathPlanning), Host::kLgv);
  EXPECT_EQ(d.placement.at(NodeId::kExploration), Host::kLgv);
  EXPECT_TRUE(d.vdp_offloaded);
}

TEST(Algorithm1, EnergyGoalIgnoresNetworkLatency) {
  // EC keeps ECNs remote even when the cloud VDP is slower — the goal is
  // on-board energy, not speed.
  OffloadPlanner planner(Goal::kEnergy, Host::kEdgeGateway);
  const auto traits = traits_for(WorkloadKind::kNavigationWithMap);
  const OffloadDecision d = planner.decide(traits, /*Tl=*/0.5, /*Tc=*/5.0);
  EXPECT_EQ(d.placement.at(NodeId::kCostmapGen), Host::kEdgeGateway);
  EXPECT_TRUE(d.vdp_offloaded);
}

TEST(Algorithm1, MctGoalOffloadsT3WhenCloudFaster) {
  OffloadPlanner planner(Goal::kCompletionTime, Host::kEdgeGateway);
  const auto traits = traits_for(WorkloadKind::kNavigationWithMap);
  const OffloadDecision d = planner.decide(traits, /*Tl=*/2.7, /*Tc=*/0.15);
  EXPECT_EQ(d.placement.at(NodeId::kCostmapGen), Host::kEdgeGateway);
  EXPECT_EQ(d.placement.at(NodeId::kPathTracking), Host::kEdgeGateway);
  EXPECT_TRUE(d.vdp_offloaded);
}

TEST(Algorithm1, MctGoalMigratesBackUnderHighLatency) {
  // "if Tc > Tl^v and G == MCT then migrate ni to LGV".
  OffloadPlanner planner(Goal::kCompletionTime, Host::kCloudServer);
  const auto traits = traits_for(WorkloadKind::kNavigationWithMap);
  const OffloadDecision d = planner.decide(traits, /*Tl=*/0.4, /*Tc=*/0.9);
  EXPECT_EQ(d.placement.at(NodeId::kCostmapGen), Host::kLgv);
  EXPECT_EQ(d.placement.at(NodeId::kPathTracking), Host::kLgv);
  EXPECT_FALSE(d.vdp_offloaded);
}

TEST(Algorithm1, VelocityMuxNeverOffloaded) {
  for (Goal g : {Goal::kEnergy, Goal::kCompletionTime}) {
    OffloadPlanner planner(g, Host::kCloudServer);
    for (WorkloadKind wk :
         {WorkloadKind::kNavigationWithMap, WorkloadKind::kExplorationWithoutMap}) {
      const OffloadDecision d = planner.decide(traits_for(wk), 1.0, 0.1);
      EXPECT_EQ(d.placement.at(NodeId::kVelocityMux), Host::kLgv);
    }
  }
}

TEST(Algorithm1, GoalNames) {
  EXPECT_STREQ(goal_name(Goal::kEnergy), "EC");
  EXPECT_STREQ(goal_name(Goal::kCompletionTime), "MCT");
}

}  // namespace
}  // namespace lgv::core
