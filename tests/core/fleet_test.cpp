// Fleet serving (docs/fleet-serving.md): several MissionRunners driven in
// lockstep as tenants of ONE shared WorkerPool. Exercises the multi-tenancy
// seams end to end: per-vehicle seed derivation, session-stamped wire frames
// crossing one emulated channel, worker admission/backpressure, and the
// busy → local fallback.
#include <gtest/gtest.h>

#include "core/mission_runner.h"
#include "core/worker_pool.h"

namespace lgv::core {
namespace {

using platform::Host;

MissionConfig fleet_config(int vehicle_index, WorkerPool* pool) {
  MissionConfig cfg;
  cfg.rollout_samples = 200;
  cfg.slam_particles = 10;
  cfg.timeout = 600.0;
  cfg.vehicle_index = vehicle_index;
  cfg.worker_pool = pool;
  return cfg;
}

TEST(Fleet, TwoVehiclesShareOneWorkerPool) {
  WorkerPoolConfig wc;
  wc.cores = 8;
  wc.threads = 4;
  WorkerPool pool(wc);

  MissionRunner v0(sim::make_fleet_scenario(0, 2),
                   offload_plan("cloud_4t", Host::kCloudServer, 4,
                                WorkloadKind::kNavigationWithMap),
                   fleet_config(0, &pool));
  MissionRunner v1(sim::make_fleet_scenario(1, 2),
                   offload_plan("cloud_4t", Host::kCloudServer, 4,
                                WorkloadKind::kNavigationWithMap),
                   fleet_config(1, &pool));

  // Lockstep: both runners advance one tick per round against the shared
  // pool, exactly how the fleet bench drives N vehicles.
  v0.start();
  v1.start();
  bool r0 = true, r1 = true;
  while (r0 || r1) {
    if (r0) r0 = v0.step();
    if (r1) r1 = v1.step();
  }
  const MissionReport m0 = v0.finalize();
  const MissionReport m1 = v1.finalize();

  EXPECT_TRUE(m0.success) << "t=" << m0.completion_time;
  EXPECT_TRUE(m1.success) << "t=" << m1.completion_time;

  // Both vehicles were admitted as distinct sessions of the shared pool.
  EXPECT_NE(v0.runtime().worker_session(), 0u);
  EXPECT_NE(v1.runtime().worker_session(), 0u);
  EXPECT_NE(v0.runtime().worker_session(), v1.runtime().worker_session());
  EXPECT_GT(pool.requests(), 0u);

  // Session-stamped frames: neither vehicle's traffic tripped the other's
  // duplicate/ordering detection (the v3 sequencing key is per-session).
  EXPECT_EQ(m0.network.frames_rejected, 0u);
  EXPECT_EQ(m1.network.frames_rejected, 0u);
  EXPECT_GT(m0.network.uplink_messages, 10u);
  EXPECT_GT(m1.network.uplink_messages, 10u);

  // splitmix64 seed derivation: the two missions are genuinely different
  // runs, not two replays of one RNG stream on different lanes.
  EXPECT_NE(fleet_config(0, nullptr).effective_seed(),
            fleet_config(1, nullptr).effective_seed());
  EXPECT_NE(m0.completion_time, m1.completion_time);
}

TEST(Fleet, UndersizedPoolDegradesToLocalNotFailure) {
  // A pool too small for the tenant's parallelism bounces requests; the
  // vehicle must absorb every bounce as a local re-execution and still
  // finish the mission.
  WorkerPoolConfig wc;
  wc.cores = 1;
  wc.threads = 1;
  wc.busy_wait_s = 0.0005;  // nearly any queueing → busy verdict
  WorkerPool pool(wc);

  MissionRunner v0(sim::make_fleet_scenario(0, 1),
                   offload_plan("cloud_4t", Host::kCloudServer, 4,
                                WorkloadKind::kNavigationWithMap),
                   fleet_config(0, &pool));
  const MissionReport m = v0.run();
  EXPECT_TRUE(m.success) << "t=" << m.completion_time;
  EXPECT_GT(v0.runtime().busy_fallback_count(), 0u);
  EXPECT_GT(pool.busy_rejects(), 0u);
}

TEST(Fleet, StandaloneVehicleUnchangedByFleetFields) {
  // vehicle_index = -1 (the default) must keep the original single-tenant
  // behavior bit-for-bit: seed used as-is, no session on the wire.
  MissionConfig cfg;
  cfg.rollout_samples = 200;
  cfg.slam_particles = 10;
  cfg.timeout = 600.0;
  EXPECT_EQ(cfg.effective_seed(), cfg.seed);

  MissionRunner runner(sim::make_open_scenario(),
                       offload_plan("cloud_4t", Host::kCloudServer, 4,
                                    WorkloadKind::kNavigationWithMap),
                       cfg);
  const MissionReport m = runner.run();
  EXPECT_TRUE(m.success);
  EXPECT_EQ(runner.runtime().worker_pool(), nullptr);
  EXPECT_EQ(m.network.frames_rejected, 0u);
}

// ---- fleet-scale fault tolerance (PR 9) -------------------------------------

TEST(Fleet, PrimaryPoolCrashFailsOverToStandbyMidMission) {
  WorkerPoolConfig wc;
  wc.cores = 8;
  wc.threads = 4;
  WorkerPool primary(wc);
  WorkerPool standby(wc);

  // The primary dies at t=5 (mid-mission) and never comes back; every
  // vehicle must open its breaker, ship a failover snapshot, and finish on
  // the standby.
  sim::FaultSchedule faults;
  faults.add(sim::FaultKind::kPoolCrash, 5.0, 1e6);

  MissionConfig c0 = fleet_config(0, &primary);
  MissionConfig c1 = fleet_config(1, &primary);
  c0.standby_pool = &standby;
  c1.standby_pool = &standby;
  c0.faults = faults;
  c1.faults = faults;

  MissionRunner v0(sim::make_fleet_scenario(0, 2),
                   offload_plan("cloud_4t", Host::kCloudServer, 4,
                                WorkloadKind::kNavigationWithMap),
                   c0);
  MissionRunner v1(sim::make_fleet_scenario(1, 2),
                   offload_plan("cloud_4t", Host::kCloudServer, 4,
                                WorkloadKind::kNavigationWithMap),
                   c1);
  // The harness owns the pool and its fault plane: the pool consults one
  // vehicle's (identical) schedule.
  ASSERT_NE(v0.runtime().fault_injector(), nullptr);
  primary.set_fault_injector(v0.runtime().fault_injector());

  v0.start();
  v1.start();
  bool r0 = true, r1 = true;
  while (r0 || r1) {
    if (r0) r0 = v0.step();
    if (r1) r1 = v1.step();
  }
  const MissionReport m0 = v0.finalize();
  const MissionReport m1 = v1.finalize();

  // Every mission completes despite losing the primary mid-flight.
  EXPECT_TRUE(m0.success) << "t=" << m0.completion_time;
  EXPECT_TRUE(m1.success) << "t=" << m1.completion_time;

  // Both vehicles committed a failover and ended up served by the standby.
  EXPECT_GE(m0.pool_failovers, 1u);
  EXPECT_GE(m1.pool_failovers, 1u);
  EXPECT_GT(standby.requests(), 0u);
  EXPECT_EQ(v0.runtime().remote_host(), Host::kEdgeGateway);  // standby's host

  // The switch rode a committed "failover" state migration — never a torn
  // particle set, and no session ever tripped integrity rejection.
  EXPECT_GE(v0.runtime().switcher().stats().failover_migrations, 1u);
  EXPECT_EQ(m0.network.frames_rejected, 0u);
  EXPECT_EQ(m1.network.frames_rejected, 0u);

  // Flight-recorder coverage: the first committed failover fired the trigger.
  ASSERT_NE(v0.runtime().telemetry(), nullptr);
  EXPECT_DOUBLE_EQ(v0.runtime()
                       .telemetry()
                       ->metrics()
                       .counter("flight_recorder_dumps_total",
                                {{"trigger", "pool_failover"}})
                       .value(),
                   1.0);

  // Accounting invariant: every per-vehicle busy fallback was attributed to
  // exactly one pool — the fleet sum matches the pool sum.
  EXPECT_EQ(m0.busy_fallbacks, v0.runtime().busy_fallback_count());
  EXPECT_EQ(
      v0.runtime().busy_fallback_count() + v1.runtime().busy_fallback_count(),
      primary.busy_fallbacks() + standby.busy_fallbacks());
}

TEST(Fleet, BusyFallbackAccountingMatchesPoolTotals) {
  // The undersized-pool scenario bounces constantly: Σ per-vehicle
  // busy_fallback_count must equal the pool's busy_fallbacks() aggregate
  // (pool_busy_fallback_total) — no bounce lost, none double-counted.
  WorkerPoolConfig wc;
  wc.cores = 1;
  wc.threads = 1;
  wc.busy_wait_s = 0.0005;
  WorkerPool pool(wc);

  MissionRunner v0(sim::make_fleet_scenario(0, 2),
                   offload_plan("cloud_4t", Host::kCloudServer, 4,
                                WorkloadKind::kNavigationWithMap),
                   fleet_config(0, &pool));
  MissionRunner v1(sim::make_fleet_scenario(1, 2),
                   offload_plan("cloud_4t", Host::kCloudServer, 4,
                                WorkloadKind::kNavigationWithMap),
                   fleet_config(1, &pool));
  v0.start();
  v1.start();
  bool r0 = true, r1 = true;
  while (r0 || r1) {
    if (r0) r0 = v0.step();
    if (r1) r1 = v1.step();
  }
  const MissionReport m0 = v0.finalize();
  const MissionReport m1 = v1.finalize();
  EXPECT_TRUE(m0.success);
  EXPECT_TRUE(m1.success);
  EXPECT_GT(v0.runtime().busy_fallback_count() +
                v1.runtime().busy_fallback_count(),
            0u);
  EXPECT_EQ(
      v0.runtime().busy_fallback_count() + v1.runtime().busy_fallback_count(),
      pool.busy_fallbacks());
  EXPECT_EQ(m0.busy_fallbacks + m1.busy_fallbacks, pool.busy_fallbacks());
}

}  // namespace
}  // namespace lgv::core
