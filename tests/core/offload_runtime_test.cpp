#include "core/offload_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/fault_injector.h"

namespace lgv::core {
namespace {

using platform::Host;

TEST(OffloadRuntime, LocalPlanKeepsEverythingOnTheLgv) {
  OffloadRuntime rt(local_plan(WorkloadKind::kNavigationWithMap), {0, 0});
  rt.apply_initial_placement();
  for (NodeId id : all_nodes()) EXPECT_EQ(rt.host_of(id), Host::kLgv);
  EXPECT_EQ(rt.vdp_placement(), VdpPlacement::kLocal);
}

TEST(OffloadRuntime, OffloadPlanPlacesEcnsRemote) {
  OffloadRuntime rt(offload_plan("gw", Host::kEdgeGateway, 8,
                                 WorkloadKind::kExplorationWithoutMap, Goal::kEnergy),
                    {0, 0});
  rt.apply_initial_placement();
  EXPECT_EQ(rt.host_of(NodeId::kLocalization), Host::kEdgeGateway);
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kEdgeGateway);
  EXPECT_EQ(rt.host_of(NodeId::kPathTracking), Host::kEdgeGateway);
  EXPECT_EQ(rt.host_of(NodeId::kVelocityMux), Host::kLgv);
  EXPECT_EQ(rt.vdp_placement(), VdpPlacement::kRemote);
}

TEST(OffloadRuntime, GraphHostsMirrorPlacement) {
  OffloadRuntime rt(offload_plan("gw", Host::kEdgeGateway, 4,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  EXPECT_EQ(rt.graph().host_of(node_name(NodeId::kCostmapGen)), Host::kEdgeGateway);
  EXPECT_EQ(rt.graph().host_of(node_name(NodeId::kVelocityMux)), Host::kLgv);
}

TEST(OffloadRuntime, SetVdpPlacementMovesT3BothWays) {
  OffloadRuntime rt(offload_plan("gw", Host::kEdgeGateway, 4,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  ASSERT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kEdgeGateway);
  EXPECT_TRUE(rt.set_vdp_placement(VdpPlacement::kLocal));
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kLgv);
  EXPECT_EQ(rt.host_of(NodeId::kPathTracking), Host::kLgv);
  EXPECT_FALSE(rt.set_vdp_placement(VdpPlacement::kLocal));  // no-op
  EXPECT_TRUE(rt.set_vdp_placement(VdpPlacement::kRemote));
  EXPECT_EQ(rt.host_of(NodeId::kPathTracking), Host::kEdgeGateway);
}

TEST(OffloadRuntime, ContextUsesPoolOnlyForRemoteParallelNodes) {
  OffloadRuntime rt(offload_plan("gw8", Host::kEdgeGateway, 8,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  EXPECT_EQ(rt.make_context(NodeId::kPathTracking).threads(), 8);
  EXPECT_NE(rt.make_context(NodeId::kPathTracking).pool(), nullptr);
  // Velocity mux is local → serial.
  EXPECT_EQ(rt.make_context(NodeId::kVelocityMux).threads(), 1);
  // Path planning isn't a parallel kernel even when remote.
  rt.place(NodeId::kPathPlanning, Host::kEdgeGateway);
  EXPECT_EQ(rt.make_context(NodeId::kPathPlanning).pool(), nullptr);
}

TEST(OffloadRuntime, NoPoolWithoutParallelOptimization) {
  OffloadRuntime rt(offload_plan("gw1", Host::kEdgeGateway, 1,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  EXPECT_EQ(rt.make_context(NodeId::kPathTracking).pool(), nullptr);
}

TEST(OffloadRuntime, FinishChargesMeterAndLocalEnergy) {
  OffloadRuntime rt(local_plan(WorkloadKind::kNavigationWithMap), {0, 0});
  rt.apply_initial_placement();
  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(0.84e9);  // 1 s on the RPi
  const double t = rt.finish(NodeId::kCostmapGen, ctx);
  EXPECT_NEAR(t, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(rt.meter().cycles(node_name(NodeId::kCostmapGen)), 0.84e9);
  EXPECT_GT(rt.energy().energy().computer, 0.0);  // Eq. 1c charged
  EXPECT_TRUE(rt.profiler().node_time(NodeId::kCostmapGen, Host::kLgv).has_value());
}

TEST(OffloadRuntime, RemoteExecutionCostsNoRobotEnergy) {
  OffloadRuntime rt(offload_plan("gw", Host::kEdgeGateway, 1,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e9);
  const double t = rt.finish(NodeId::kCostmapGen, ctx);
  // Gateway runs it ~10× faster than the RPi would.
  EXPECT_LT(t, 0.15);
  EXPECT_DOUBLE_EQ(rt.energy().energy().computer, 0.0);
}

TEST(OffloadRuntime, RemoteIsFasterThanLocalForSameWork) {
  OffloadRuntime local_rt(local_plan(WorkloadKind::kNavigationWithMap), {0, 0});
  OffloadRuntime remote_rt(offload_plan("gw", Host::kEdgeGateway, 1,
                                        WorkloadKind::kNavigationWithMap),
                           {0, 0});
  local_rt.apply_initial_placement();
  remote_rt.apply_initial_placement();
  platform::ExecutionContext lctx = local_rt.make_context(NodeId::kPathTracking);
  platform::ExecutionContext rctx = remote_rt.make_context(NodeId::kPathTracking);
  lctx.serial_work(1e9);
  rctx.serial_work(1e9);
  EXPECT_GT(local_rt.finish(NodeId::kPathTracking, lctx),
            5.0 * remote_rt.finish(NodeId::kPathTracking, rctx));
}

// ---- remote-execution lease + local fallback (docs/faults.md) ----

// OffloadRuntime has internal cross-member pointers (Switcher → channel /
// clock / energy), so it must be constructed in place — never moved.
struct RemoteRuntime {
  OffloadRuntime rt{offload_plan("gw", Host::kEdgeGateway, 1,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0}};
  RemoteRuntime() {
    rt.channel().set_robot_position({2.0, 0.0});
    rt.apply_initial_placement();
  }
};

TEST(OffloadRuntime, ResultInsideLeaseDoesNotFallBack) {
  RemoteRuntime rr;
  OffloadRuntime& rt = rr.rt;
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kWorkerStall, 100.0, 10.0);  // far in the future
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e9);
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  EXPECT_FALSE(outcome.fell_back);
  EXPECT_EQ(rt.fallback_count(), 0u);
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kEdgeGateway);
  EXPECT_DOUBLE_EQ(rt.telemetry()->metrics().counter("lease_grants_total").value(),
                   1.0);
}

TEST(OffloadRuntime, ShortStallDelaysResultWithinLease) {
  RemoteRuntime rr;
  OffloadRuntime& rt = rr.rt;
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kWorkerStall, 0.0, 0.05);  // brief hiccup
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e7);  // tiny kernel: lease floors at lease_min_s
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  EXPECT_FALSE(outcome.fell_back);
  // The stall shows up as pipeline latency, not as a fallback.
  EXPECT_GE(outcome.latency, 0.05);
}

TEST(OffloadRuntime, LongStallExpiresLeaseAndFallsBackLocally) {
  RemoteRuntime rr;
  OffloadRuntime& rt = rr.rt;
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kWorkerStall, 0.0, 30.0);
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e9);
  const double energy_before = rt.energy().energy().computer;
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  EXPECT_TRUE(outcome.fell_back);
  EXPECT_EQ(rt.fallback_count(), 1u);
  // Latency = lease wait (failure only *observed* at the deadline) + local
  // re-execution on the LGV cost model.
  const double t_local = rt.cost_model(Host::kLgv).execution_time(ctx.profile());
  EXPECT_GT(outcome.latency, t_local);
  // The local re-run charges Eq. 1c energy and feeds the local profile.
  EXPECT_GT(rt.energy().energy().computer, energy_before);
  EXPECT_TRUE(rt.profiler().node_time(NodeId::kCostmapGen, Host::kLgv).has_value());
  // The whole VDP is pulled home and Algorithm 2 pinned local.
  EXPECT_EQ(rt.vdp_placement(), VdpPlacement::kLocal);
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kLgv);
  EXPECT_EQ(rt.network_controller().placement(), VdpPlacement::kLocal);

  auto& m = rt.telemetry()->metrics();
  EXPECT_DOUBLE_EQ(
      m.counter("fallback_total", {{"node", node_name(NodeId::kCostmapGen)}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      m.counter("lease_expired_total", {{"cause", "lease_timeout"}}).value(), 1.0);
  const auto events = rt.telemetry()->tracer().events();
  const bool saw_instant =
      std::any_of(events.begin(), events.end(),
                  [](const telemetry::TraceEvent& e) { return e.name == "alg2.fallback"; });
  EXPECT_TRUE(saw_instant);
}

TEST(OffloadRuntime, WorkerCrashFallsBackEvenWhenResultWouldBeOnTime) {
  RemoteRuntime rr;
  OffloadRuntime& rt = rr.rt;
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kWorkerCrash, 0.0, 0.01);  // blink-and-miss-it crash
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e9);
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  // State died with the worker: within-lease timing can't save the result.
  EXPECT_TRUE(outcome.fell_back);
  EXPECT_DOUBLE_EQ(
      rt.telemetry()->metrics().counter("lease_expired_total", {{"cause", "worker_crash"}}).value(),
      1.0);
}

TEST(OffloadRuntime, ForcedOutageHoldsResultPastLease) {
  RemoteRuntime rr;
  OffloadRuntime& rt = rr.rt;
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kOutage, 0.0, 30.0);  // healthy worker, dead link
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e9);
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  EXPECT_TRUE(outcome.fell_back);
  EXPECT_EQ(rt.vdp_placement(), VdpPlacement::kLocal);
}

TEST(OffloadRuntime, ColdStartLeaseSurvivesSlowLinkFirstExecution) {
  // The cold-start bug (docs/fleet-serving.md): a node's FIRST remote
  // execution has no profiled T_c, so the lease used to floor at the warm
  // minimum — on a momentarily slow link the very execution that would have
  // produced the profile sample was killed, the node was pinned local, and
  // the vehicle never discovered the link had recovered. The wider cold
  // floor rides out the hiccup.
  RemoteRuntime rr;
  OffloadRuntime& rt = rr.rt;
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kOutage, 0.0, 0.5);  // slow first RTT, then healthy
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);

  ASSERT_FALSE(
      rt.profiler().node_time(NodeId::kCostmapGen, Host::kEdgeGateway).has_value());
  // 0.5 s sits exactly in the gap between the floors: a warm lease
  // (lease_min_s) would expire, the cold lease must not.
  ASSERT_GT(rt.controller().config().lease_cold_min_s, 0.5);
  ASSERT_LT(rt.controller().config().lease_min_s, 0.5);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e7);  // tiny kernel: the floor decides, not the work
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  EXPECT_FALSE(outcome.fell_back);
  EXPECT_GE(outcome.latency, 0.5);  // the outage is paid as latency...
  EXPECT_EQ(rt.fallback_count(), 0u);
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kEdgeGateway);
  // ...and the execution it protected produced the profile sample.
  EXPECT_TRUE(
      rt.profiler().node_time(NodeId::kCostmapGen, Host::kEdgeGateway).has_value());
}

TEST(OffloadRuntime, WarmLeaseStillCatchesGenuineStallsAfterProfiling) {
  // The cold floor must not blunt the protocol once a profile exists: the
  // same 0.5 s hiccup on a *profiled* tiny kernel is a lease expiry.
  RemoteRuntime rr;
  OffloadRuntime& rt = rr.rt;

  platform::ExecutionContext warm = rt.make_context(NodeId::kCostmapGen);
  warm.serial_work(1e7);
  ASSERT_FALSE(rt.finish_guarded(NodeId::kCostmapGen, warm).fell_back);
  ASSERT_TRUE(
      rt.profiler().node_time(NodeId::kCostmapGen, Host::kEdgeGateway).has_value());

  rt.clock().advance(10.0);
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kOutage, 10.0, 0.5);
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e7);
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  EXPECT_TRUE(outcome.fell_back);
  EXPECT_EQ(rt.fallback_count(), 1u);
}

TEST(OffloadRuntime, DisabledLeaseMeansNaiveWaitNotFallback) {
  RemoteRuntime rr;
  OffloadRuntime& rt = rr.rt;
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kWorkerStall, 0.0, 30.0);
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);
  rt.set_lease_fallback(false);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e9);
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  // The caller waits out the whole stall — the stranded-LGV baseline.
  EXPECT_FALSE(outcome.fell_back);
  EXPECT_GE(outcome.latency, 30.0);
  EXPECT_EQ(rt.fallback_count(), 0u);
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kEdgeGateway);
}

TEST(OffloadRuntime, LocalNodesBypassTheLease) {
  OffloadRuntime rt(local_plan(WorkloadKind::kNavigationWithMap), {0, 0});
  rt.apply_initial_placement();
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kWorkerCrash, 0.0, 100.0);
  sim::FaultInjector inj(s);
  rt.set_fault_injector(&inj);

  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e9);
  const auto outcome = rt.finish_guarded(NodeId::kCostmapGen, ctx);
  EXPECT_FALSE(outcome.fell_back);
  EXPECT_EQ(rt.fallback_count(), 0u);
}

// ---- pool failover (PR 9): crash-consistent re-admission --------------------

TEST(OffloadRuntime, AbortedFailoverNeverAdvancesDeltaBase) {
  WorkerPoolConfig wc;
  wc.cores = 4;
  wc.threads = 2;
  WorkerPool primary(wc);
  WorkerPool standby(wc);
  sim::FaultSchedule s;
  s.add(sim::FaultKind::kPoolCrash, 0.0, 1e6);  // primary never comes back
  s.add(sim::FaultKind::kCorruptBurst, 0.0, 60.0, 0.2);  // tears the snapshot
  sim::FaultInjector inj(std::move(s));
  primary.set_fault_injector(&inj);

  FleetAttachment fleet;
  fleet.pool = &primary;
  fleet.vehicle_index = 0;
  fleet.standby = &standby;
  OffloadRuntime rt(offload_plan("cloud", Host::kCloudServer, 4,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0}, {}, {}, fleet);
  rt.channel().set_robot_position({2.0, 0.0});
  rt.apply_initial_placement();
  rt.set_fault_injector(&inj);
  inj.attach_channel(&rt.channel());

  int commits = 0;
  rt.set_state_snapshot([] { return 8.0 * 1024.0; }, [&] { ++commits; });

  auto drive_until = [&](double deadline, auto done) {
    while (rt.clock().now() < deadline && !done()) {
      inj.update(rt.clock().now());
      platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
      ctx.serial_work(1e8);
      rt.finish_guarded(NodeId::kCostmapGen, ctx);
      rt.clock().advance(1.0);
    }
  };

  // Phase 1: wire corruption tears every failover snapshot. The committed
  // pool, the delta base (commit hook) and the serving host must not move.
  drive_until(55.0, [] { return false; });
  EXPECT_GE(rt.failovers_aborted(), 1u);
  EXPECT_EQ(rt.pool_failovers(), 0u);
  EXPECT_EQ(commits, 0);
  EXPECT_EQ(rt.remote_host(), Host::kCloudServer);

  // Phase 2: the corruption clears at t=60; the next attempt commits, and
  // only then does the delta base advance and the placement follow.
  drive_until(200.0, [&] { return rt.pool_failovers() > 0; });
  EXPECT_EQ(rt.pool_failovers(), 1u);
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(rt.remote_host(), Host::kEdgeGateway);  // the standby's host
  EXPECT_GE(rt.switcher().stats().failover_migrations, 1u);
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kEdgeGateway);
}

TEST(OffloadRuntime, CloudChannelIncludesWanLatency) {
  OffloadRuntime edge(offload_plan("gw", Host::kEdgeGateway, 1,
                                   WorkloadKind::kNavigationWithMap),
                      {0, 0});
  OffloadRuntime cloud(offload_plan("cloud", Host::kCloudServer, 1,
                                    WorkloadKind::kNavigationWithMap),
                       {0, 0});
  edge.channel().set_robot_position({2.0, 0.0});
  cloud.channel().set_robot_position({2.0, 0.0});
  EXPECT_DOUBLE_EQ(edge.channel().config().wan_latency_s, 0.0);
  EXPECT_GT(cloud.channel().config().wan_latency_s, 0.0);
  EXPECT_GT(cloud.predicted_network_latency(), edge.predicted_network_latency());
}

}  // namespace
}  // namespace lgv::core
