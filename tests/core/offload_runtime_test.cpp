#include "core/offload_runtime.h"

#include <gtest/gtest.h>

namespace lgv::core {
namespace {

using platform::Host;

TEST(OffloadRuntime, LocalPlanKeepsEverythingOnTheLgv) {
  OffloadRuntime rt(local_plan(WorkloadKind::kNavigationWithMap), {0, 0});
  rt.apply_initial_placement();
  for (NodeId id : all_nodes()) EXPECT_EQ(rt.host_of(id), Host::kLgv);
  EXPECT_EQ(rt.vdp_placement(), VdpPlacement::kLocal);
}

TEST(OffloadRuntime, OffloadPlanPlacesEcnsRemote) {
  OffloadRuntime rt(offload_plan("gw", Host::kEdgeGateway, 8,
                                 WorkloadKind::kExplorationWithoutMap, Goal::kEnergy),
                    {0, 0});
  rt.apply_initial_placement();
  EXPECT_EQ(rt.host_of(NodeId::kLocalization), Host::kEdgeGateway);
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kEdgeGateway);
  EXPECT_EQ(rt.host_of(NodeId::kPathTracking), Host::kEdgeGateway);
  EXPECT_EQ(rt.host_of(NodeId::kVelocityMux), Host::kLgv);
  EXPECT_EQ(rt.vdp_placement(), VdpPlacement::kRemote);
}

TEST(OffloadRuntime, GraphHostsMirrorPlacement) {
  OffloadRuntime rt(offload_plan("gw", Host::kEdgeGateway, 4,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  EXPECT_EQ(rt.graph().host_of(node_name(NodeId::kCostmapGen)), Host::kEdgeGateway);
  EXPECT_EQ(rt.graph().host_of(node_name(NodeId::kVelocityMux)), Host::kLgv);
}

TEST(OffloadRuntime, SetVdpPlacementMovesT3BothWays) {
  OffloadRuntime rt(offload_plan("gw", Host::kEdgeGateway, 4,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  ASSERT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kEdgeGateway);
  EXPECT_TRUE(rt.set_vdp_placement(VdpPlacement::kLocal));
  EXPECT_EQ(rt.host_of(NodeId::kCostmapGen), Host::kLgv);
  EXPECT_EQ(rt.host_of(NodeId::kPathTracking), Host::kLgv);
  EXPECT_FALSE(rt.set_vdp_placement(VdpPlacement::kLocal));  // no-op
  EXPECT_TRUE(rt.set_vdp_placement(VdpPlacement::kRemote));
  EXPECT_EQ(rt.host_of(NodeId::kPathTracking), Host::kEdgeGateway);
}

TEST(OffloadRuntime, ContextUsesPoolOnlyForRemoteParallelNodes) {
  OffloadRuntime rt(offload_plan("gw8", Host::kEdgeGateway, 8,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  EXPECT_EQ(rt.make_context(NodeId::kPathTracking).threads(), 8);
  EXPECT_NE(rt.make_context(NodeId::kPathTracking).pool(), nullptr);
  // Velocity mux is local → serial.
  EXPECT_EQ(rt.make_context(NodeId::kVelocityMux).threads(), 1);
  // Path planning isn't a parallel kernel even when remote.
  rt.place(NodeId::kPathPlanning, Host::kEdgeGateway);
  EXPECT_EQ(rt.make_context(NodeId::kPathPlanning).pool(), nullptr);
}

TEST(OffloadRuntime, NoPoolWithoutParallelOptimization) {
  OffloadRuntime rt(offload_plan("gw1", Host::kEdgeGateway, 1,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  EXPECT_EQ(rt.make_context(NodeId::kPathTracking).pool(), nullptr);
}

TEST(OffloadRuntime, FinishChargesMeterAndLocalEnergy) {
  OffloadRuntime rt(local_plan(WorkloadKind::kNavigationWithMap), {0, 0});
  rt.apply_initial_placement();
  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(0.84e9);  // 1 s on the RPi
  const double t = rt.finish(NodeId::kCostmapGen, ctx);
  EXPECT_NEAR(t, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(rt.meter().cycles(node_name(NodeId::kCostmapGen)), 0.84e9);
  EXPECT_GT(rt.energy().energy().computer, 0.0);  // Eq. 1c charged
  EXPECT_TRUE(rt.profiler().node_time(NodeId::kCostmapGen, Host::kLgv).has_value());
}

TEST(OffloadRuntime, RemoteExecutionCostsNoRobotEnergy) {
  OffloadRuntime rt(offload_plan("gw", Host::kEdgeGateway, 1,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  platform::ExecutionContext ctx = rt.make_context(NodeId::kCostmapGen);
  ctx.serial_work(1e9);
  const double t = rt.finish(NodeId::kCostmapGen, ctx);
  // Gateway runs it ~10× faster than the RPi would.
  EXPECT_LT(t, 0.15);
  EXPECT_DOUBLE_EQ(rt.energy().energy().computer, 0.0);
}

TEST(OffloadRuntime, RemoteIsFasterThanLocalForSameWork) {
  OffloadRuntime local_rt(local_plan(WorkloadKind::kNavigationWithMap), {0, 0});
  OffloadRuntime remote_rt(offload_plan("gw", Host::kEdgeGateway, 1,
                                        WorkloadKind::kNavigationWithMap),
                           {0, 0});
  local_rt.apply_initial_placement();
  remote_rt.apply_initial_placement();
  platform::ExecutionContext lctx = local_rt.make_context(NodeId::kPathTracking);
  platform::ExecutionContext rctx = remote_rt.make_context(NodeId::kPathTracking);
  lctx.serial_work(1e9);
  rctx.serial_work(1e9);
  EXPECT_GT(local_rt.finish(NodeId::kPathTracking, lctx),
            5.0 * remote_rt.finish(NodeId::kPathTracking, rctx));
}

TEST(OffloadRuntime, CloudChannelIncludesWanLatency) {
  OffloadRuntime edge(offload_plan("gw", Host::kEdgeGateway, 1,
                                   WorkloadKind::kNavigationWithMap),
                      {0, 0});
  OffloadRuntime cloud(offload_plan("cloud", Host::kCloudServer, 1,
                                    WorkloadKind::kNavigationWithMap),
                       {0, 0});
  edge.channel().set_robot_position({2.0, 0.0});
  cloud.channel().set_robot_position({2.0, 0.0});
  EXPECT_DOUBLE_EQ(edge.channel().config().wan_latency_s, 0.0);
  EXPECT_GT(cloud.channel().config().wan_latency_s, 0.0);
  EXPECT_GT(cloud.predicted_network_latency(), edge.predicted_network_latency());
}

}  // namespace
}  // namespace lgv::core
