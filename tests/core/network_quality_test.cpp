#include "core/network_quality.h"

#include <gtest/gtest.h>

namespace lgv::core {
namespace {

NetworkQualityConfig fast_config() {
  NetworkQualityConfig cfg;
  cfg.hysteresis_samples = 1;  // switch immediately for unit tests
  return cfg;
}

TEST(Algorithm2, WeakAndRecedingGoesLocal) {
  NetworkQualityController ctl(fast_config(), VdpPlacement::kRemote);
  EXPECT_EQ(ctl.update({1.0, -0.3}), VdpPlacement::kLocal);
  EXPECT_EQ(ctl.switches(), 1u);
}

TEST(Algorithm2, StrongAndApproachingGoesRemote) {
  NetworkQualityController ctl(fast_config(), VdpPlacement::kLocal);
  EXPECT_EQ(ctl.update({5.0, 0.3}), VdpPlacement::kRemote);
}

TEST(Algorithm2, MixedSignalsKeepPlacement) {
  NetworkQualityController ctl(fast_config(), VdpPlacement::kRemote);
  // Weak bandwidth but approaching the WAP: no switch (transient shadowing).
  EXPECT_EQ(ctl.update({1.0, 0.3}), VdpPlacement::kRemote);
  // Strong bandwidth but receding: no switch either.
  EXPECT_EQ(ctl.update({5.0, -0.3}), VdpPlacement::kRemote);
  EXPECT_EQ(ctl.switches(), 0u);
}

TEST(Algorithm2, ThresholdIsStrict) {
  NetworkQualityController ctl(fast_config(), VdpPlacement::kRemote);
  // Exactly at the threshold: neither r<th nor r>th — keep.
  EXPECT_EQ(ctl.update({4.0, -0.3}), VdpPlacement::kRemote);
}

TEST(Algorithm2, HysteresisRequiresConsecutiveVotes) {
  NetworkQualityConfig cfg;
  cfg.hysteresis_samples = 3;
  NetworkQualityController ctl(cfg, VdpPlacement::kRemote);
  EXPECT_EQ(ctl.update({1.0, -0.3}), VdpPlacement::kRemote);  // 1 vote
  EXPECT_EQ(ctl.update({1.0, -0.3}), VdpPlacement::kRemote);  // 2 votes
  EXPECT_EQ(ctl.update({1.0, -0.3}), VdpPlacement::kLocal);   // 3 → switch
}

TEST(Algorithm2, NeutralObservationResetsVotes) {
  NetworkQualityConfig cfg;
  cfg.hysteresis_samples = 2;
  NetworkQualityController ctl(cfg, VdpPlacement::kRemote);
  ctl.update({1.0, -0.3});
  ctl.update({4.5, 0.0});  // neutral: resets pending votes
  EXPECT_EQ(ctl.update({1.0, -0.3}), VdpPlacement::kRemote);
  EXPECT_EQ(ctl.update({1.0, -0.3}), VdpPlacement::kLocal);
}

TEST(Algorithm2, RoundTripScenario) {
  // Fig. 11: drive away (bandwidth collapses, direction negative) → local;
  // drive back (bandwidth recovers, direction positive) → remote.
  NetworkQualityConfig cfg;
  cfg.hysteresis_samples = 2;
  NetworkQualityController ctl(cfg, VdpPlacement::kRemote);
  // Strong near the WAP.
  for (int i = 0; i < 5; ++i) ctl.update({5.0, -0.1});
  EXPECT_EQ(ctl.placement(), VdpPlacement::kRemote);
  // Entering the unstable area.
  ctl.update({2.0, -0.2});
  ctl.update({1.0, -0.2});
  EXPECT_EQ(ctl.placement(), VdpPlacement::kLocal);
  // Returning.
  ctl.update({4.6, 0.2});
  ctl.update({5.0, 0.2});
  EXPECT_EQ(ctl.placement(), VdpPlacement::kRemote);
  EXPECT_EQ(ctl.switches(), 2u);
}

TEST(Algorithm2, VoteSignFlipMidWindowRestartsDebounce) {
  NetworkQualityConfig cfg;
  cfg.hysteresis_samples = 3;
  NetworkQualityController ctl(cfg, VdpPlacement::kRemote);
  ctl.update({1.0, -0.3});  // two local votes...
  ctl.update({1.0, -0.3});
  // ...then the signal flips back to a remote vote mid-window: the local
  // streak must not survive the contradiction.
  EXPECT_EQ(ctl.update({5.0, 0.3}), VdpPlacement::kRemote);
  ctl.update({1.0, -0.3});
  EXPECT_EQ(ctl.update({1.0, -0.3}), VdpPlacement::kRemote);  // fresh streak: 2
  EXPECT_EQ(ctl.update({1.0, -0.3}), VdpPlacement::kLocal);   // 3 → switch
  EXPECT_EQ(ctl.switches(), 1u);
}

TEST(Algorithm2, OscillationExactlyAtThresholdNeverSwitches) {
  // r_t pinned to the threshold while d_t oscillates: both Algorithm 2
  // comparisons are strict, so every observation is neutral and the
  // placement must not flap in either direction.
  NetworkQualityConfig cfg;
  cfg.hysteresis_samples = 1;
  NetworkQualityController remote(cfg, VdpPlacement::kRemote);
  NetworkQualityController local(cfg, VdpPlacement::kLocal);
  for (int i = 0; i < 10; ++i) {
    const double d = i % 2 == 0 ? 0.5 : -0.5;
    EXPECT_EQ(remote.update({cfg.bandwidth_threshold_hz, d}), VdpPlacement::kRemote);
    EXPECT_EQ(local.update({cfg.bandwidth_threshold_hz, d}), VdpPlacement::kLocal);
  }
  EXPECT_EQ(remote.switches(), 0u);
  EXPECT_EQ(local.switches(), 0u);
}

TEST(Algorithm2, ForceOverrides) {
  NetworkQualityController ctl(fast_config(), VdpPlacement::kRemote);
  ctl.force(VdpPlacement::kLocal);
  EXPECT_EQ(ctl.placement(), VdpPlacement::kLocal);
  EXPECT_EQ(ctl.switches(), 0u);  // forced moves aren't Algorithm 2 switches
}

}  // namespace
}  // namespace lgv::core
