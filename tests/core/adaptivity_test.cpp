// §VIII-E adaptivity features: runtime thread shedding and battery-limited
// missions.
#include <gtest/gtest.h>

#include "core/mission_runner.h"
#include "core/offload_runtime.h"

namespace lgv::core {
namespace {

using platform::Host;

TEST(ThreadShedding, ActiveThreadsClampedToPlan) {
  OffloadRuntime rt(offload_plan("gw8", Host::kEdgeGateway, 8,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  EXPECT_EQ(rt.active_threads(), 8);
  rt.set_active_threads(4);
  EXPECT_EQ(rt.active_threads(), 4);
  rt.set_active_threads(100);
  EXPECT_EQ(rt.active_threads(), 8);
  rt.set_active_threads(0);
  EXPECT_EQ(rt.active_threads(), 1);
}

TEST(ThreadShedding, ContextFollowsActiveThreads) {
  OffloadRuntime rt(offload_plan("gw8", Host::kEdgeGateway, 8,
                                 WorkloadKind::kNavigationWithMap),
                    {0, 0});
  rt.apply_initial_placement();
  rt.set_active_threads(4);
  EXPECT_EQ(rt.make_context(NodeId::kPathTracking).threads(), 4);
  rt.set_active_threads(1);
  // A single thread means no pool dispatch at all.
  EXPECT_EQ(rt.make_context(NodeId::kPathTracking).pool(), nullptr);
}

TEST(ThreadShedding, ShedThreadsStillCompleteMission) {
  MissionConfig cfg;
  cfg.rollout_samples = 400;
  cfg.timeout = 400.0;
  cfg.adaptive_parallelism = true;
  MissionRunner runner(
      sim::make_open_scenario(),
      offload_plan("gw8", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      cfg);
  const MissionReport r = runner.run();
  EXPECT_TRUE(r.success);
  // The open arena has turns and obstacle dodges — some shedding occurs.
  EXPECT_LE(r.min_active_threads, 8);
  EXPECT_GE(r.min_active_threads, 1);
}

TEST(Battery, MissionReportsRemainingCharge) {
  MissionConfig cfg;
  cfg.rollout_samples = 200;
  MissionRunner runner(sim::make_open_scenario(),
                       local_plan(WorkloadKind::kNavigationWithMap), cfg);
  const MissionReport r = runner.run();
  ASSERT_TRUE(r.success);
  EXPECT_LT(r.battery_state_of_charge, 1.0);
  EXPECT_GT(r.battery_state_of_charge, 0.9);  // one short mission barely dents it
  // Consistency: drained energy equals the report's total.
  EXPECT_NEAR((1.0 - r.battery_state_of_charge) * cfg.battery_wh * 3600.0,
              r.energy.total(), 1.0);
}

TEST(Battery, TinyBatteryFailsTheMission) {
  MissionConfig cfg;
  cfg.rollout_samples = 200;
  cfg.battery_wh = 0.01;  // 36 J — dies within seconds
  MissionRunner runner(sim::make_open_scenario(),
                       local_plan(WorkloadKind::kNavigationWithMap), cfg);
  const MissionReport r = runner.run();
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.battery_state_of_charge, 0.0 + 1e-6);
  EXPECT_LT(r.completion_time, 60.0);  // died early, not a timeout
}

TEST(Battery, OffloadingStretchesTheBattery) {
  // The paper's §I motivation: the same pack does more work when computation
  // is offloaded.
  MissionConfig cfg;
  cfg.rollout_samples = 200;
  MissionRunner local_runner(sim::make_open_scenario(),
                             local_plan(WorkloadKind::kNavigationWithMap), cfg);
  MissionRunner off_runner(
      sim::make_open_scenario(),
      offload_plan("gw8", Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
      cfg);
  const MissionReport local = local_runner.run();
  const MissionReport off = off_runner.run();
  ASSERT_TRUE(local.success);
  ASSERT_TRUE(off.success);
  EXPECT_GT(off.battery_state_of_charge, local.battery_state_of_charge);
}

TEST(FaultInjection, MissionSurvivesMidMissionOutageViaFallback) {
  // End-to-end graceful degradation: an abrupt 20 s total outage lands
  // mid-mission; the lease expires, the VDP falls back to the LGV, and the
  // mission still completes instead of stranding in safety-stop.
  MissionConfig cfg;
  cfg.timeout = 400.0;
  cfg.faults = sim::make_chaos_schedule(/*outage_s=*/20.0, /*stall_fraction=*/0.0,
                                        /*horizon_s=*/25.0);
  MissionRunner runner(
      sim::make_chaos_scenario(),
      offload_plan("gw4", Host::kEdgeGateway, 4, WorkloadKind::kNavigationWithMap),
      cfg);
  const MissionReport r = runner.run();
  EXPECT_TRUE(r.success);
  EXPECT_GE(r.fallbacks, 1u);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_EQ(r.fallbacks, runner.runtime().fallback_count());
}

TEST(FaultInjection, NoFaultsMeansNoFallbacks) {
  MissionConfig cfg;
  cfg.rollout_samples = 200;
  MissionRunner runner(
      sim::make_open_scenario(),
      offload_plan("gw4", Host::kEdgeGateway, 4, WorkloadKind::kNavigationWithMap),
      cfg);
  const MissionReport r = runner.run();
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.fallbacks, 0u);
  EXPECT_EQ(r.faults_injected, 0u);
}

}  // namespace
}  // namespace lgv::core
