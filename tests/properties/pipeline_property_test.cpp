// Parameterized property sweeps across the perception/control pipeline and
// the network substrate.
#include <gtest/gtest.h>

#include "control/trajectory_rollout.h"
#include "net/wireless_channel.h"
#include "perception/amcl.h"
#include "perception/costmap2d.h"
#include "perception/occupancy_grid.h"
#include "sim/lidar.h"
#include "sim/random_world.h"
#include "sim/scenario.h"

namespace lgv {
namespace {

// ---- costmap inflation: monotone decay for any (radius, scaling) -----------

struct InflationCase {
  double radius;
  double scaling;
};

class InflationMonotone : public ::testing::TestWithParam<InflationCase> {};

TEST_P(InflationMonotone, CostDecaysAwayFromObstacle) {
  const InflationCase c = GetParam();
  perception::CostmapConfig cfg;
  cfg.inflation_radius = c.radius;
  cfg.cost_scaling = c.scaling;
  perception::Costmap2D cm({0, 0}, 8.0, 8.0, cfg);

  msg::LaserScan beam;
  beam.angle_min = 0.0;
  beam.angle_max = 0.0;
  beam.angle_increment = 0.0;
  beam.range_min = 0.1;
  beam.range_max = 3.5;
  beam.ranges = {2.0f};
  cm.update({1.0, 4.0, 0.0}, beam);  // obstacle at (3.0, 4.0)

  uint8_t prev = perception::kCostLethal;
  for (double x = 3.0; x > 3.0 - c.radius - 0.3; x -= cm.frame().resolution) {
    const uint8_t cost = cm.cost_at(cm.frame().world_to_cell({x + 0.001, 4.02}));
    EXPECT_LE(cost, prev) << "x=" << x << " radius=" << c.radius;
    prev = cost;
  }
  // Beyond the inflation radius (plus a cell of slack): free.
  EXPECT_EQ(cm.cost_at(cm.frame().world_to_cell({3.0 - c.radius - 0.25, 4.02})),
            perception::kCostFreeSpace);
}

INSTANTIATE_TEST_SUITE_P(Configs, InflationMonotone,
                         ::testing::Values(InflationCase{0.3, 3.0},
                                           InflationCase{0.4, 6.0},
                                           InflationCase{0.6, 10.0},
                                           InflationCase{0.8, 2.0}));

// ---- rollout: the velocity cap binds for any cap × sample count ------------

struct RolloutCase {
  double cap;
  int samples;
};

class RolloutCapBinds : public ::testing::TestWithParam<RolloutCase> {};

TEST_P(RolloutCapBinds, CommandNeverExceedsCap) {
  const RolloutCase c = GetParam();
  sim::World w(10.0, 10.0);
  perception::Costmap2D cm({0, 0}, 10.0, 10.0);
  cm.set_static_map(
      perception::OccupancyGrid::from_binary(w.frame(), w.grid()).to_msg(0.0));
  cm.inflate();
  msg::PathMsg path;
  for (double x = 1.0; x < 9.0; x += 0.25) path.poses.emplace_back(x, 5.0, 0.0);

  control::RolloutConfig rc;
  rc.samples = c.samples;
  control::TrajectoryRollout rollout(rc);
  platform::ExecutionContext ctx;
  // Start already at the cap so the window straddles it.
  const control::RolloutDecision d =
      rollout.compute(cm, path, {1.0, 5.0, 0.0}, {c.cap, 0.0}, c.cap, ctx);
  ASSERT_TRUE(d.feasible);
  EXPECT_LE(d.command.linear, c.cap + 1e-9);
  EXPECT_GE(d.command.linear, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RolloutCapBinds,
                         ::testing::Values(RolloutCase{0.1, 100}, RolloutCase{0.3, 200},
                                           RolloutCase{0.6, 600}, RolloutCase{0.9, 200},
                                           RolloutCase{0.22, 2000}));

// ---- channel: latency grows with payload size for any uplink rate ----------

class LatencyBytesMonotone : public ::testing::TestWithParam<double> {};

TEST_P(LatencyBytesMonotone, BiggerPayloadsTakeLonger) {
  net::ChannelConfig cfg;
  cfg.wap_position = {0, 0};
  cfg.shadowing_sigma_db = 0.0;
  cfg.latency_jitter_s = 0.0;
  cfg.uplink_rate_bps = GetParam();
  net::WirelessChannel ch(cfg);
  ch.set_robot_position({2.0, 0.0});
  double prev = -1.0;
  for (size_t bytes : {48u, 500u, 3000u, 20000u}) {
    const double latency = ch.sample_latency(bytes);
    EXPECT_GT(latency, prev);
    prev = latency;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, LatencyBytesMonotone,
                         ::testing::Values(2e6, 20e6, 100e6));

// ---- scenarios: every builder yields a usable environment ------------------

using ScenarioMaker = sim::Scenario (*)();

class ScenarioContract : public ::testing::TestWithParam<ScenarioMaker> {};

TEST_P(ScenarioContract, ScanLogTraversesFreeSpace) {
  const sim::Scenario s = GetParam()();
  const auto log = sim::record_scan_log(s, 0.4, 0.25, 40);
  ASSERT_GE(log.size(), 20u);
  for (const auto& e : log) {
    EXPECT_FALSE(s.world.occupied(e.true_pose.position()));
    EXPECT_EQ(e.scan.ranges.size(), 360u);
  }
}

TEST_P(ScenarioContract, LidarSeesSomethingFromStart) {
  const sim::Scenario s = GetParam()();
  sim::Lidar lidar;
  const msg::LaserScan scan = lidar.scan(s.world, s.start, 0.0);
  int returns = 0;
  for (float r : scan.ranges) returns += r <= scan.range_max;
  EXPECT_GT(returns, 30);  // walls exist within lidar range
}

INSTANTIATE_TEST_SUITE_P(Builders, ScenarioContract,
                         ::testing::Values(&sim::make_lab_scenario,
                                           &sim::make_office_scenario,
                                           &sim::make_obstacle_course_scenario,
                                           &sim::make_open_scenario));

// ---- AMCL: convergence from a wide prior across seeds ----------------------

class AmclConvergence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AmclConvergence, WidePriorShrinksToTruth) {
  sim::World w(8.0, 8.0);
  w.add_outer_walls(0.2);
  w.add_box({3.0, 3.0}, {4.2, 4.2});
  w.add_disc({6.0, 2.0}, 0.4);
  perception::OccupancyGridConfig mc;
  mc.resolution = 0.05;
  const perception::OccupancyGrid map =
      perception::OccupancyGrid::from_binary(w.frame(), w.grid(), mc);
  sim::LidarConfig lc;
  lc.range_noise_sigma = 0.005;
  sim::Lidar lidar(lc, GetParam());

  perception::Amcl amcl({}, &map, GetParam());
  const Pose2D truth{1.5, 1.5, 0.3};
  amcl.initialize(truth, /*spread_xy=*/0.3, /*spread_theta=*/0.35);
  platform::ExecutionContext ctx;
  msg::Odometry odom;
  odom.pose = truth;
  for (int i = 0; i < 15; ++i) {
    odom.header.stamp = 0.2 * i;
    amcl.update(odom, lidar.scan(w, truth, 0.2 * i), ctx);
  }
  EXPECT_LT(distance(amcl.estimate().position(), truth.position()), 0.35)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmclConvergence, ::testing::Values(3u, 17u, 91u));

}  // namespace
}  // namespace lgv
