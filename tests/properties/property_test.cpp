// Cross-module property tests: parameterized sweeps over configuration
// spaces asserting the invariants the reproduction's conclusions rest on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analytical_model.h"
#include "msg/messages.h"
#include "net/wireless_channel.h"
#include "platform/cost_model.h"
#include "platform/platform_spec.h"

namespace lgv {
namespace {

// ---- Eq. 2c: v_max monotone decreasing in tp for every (a_max, d) ----------

struct Eq2cCase {
  double a_max;
  double d;
};

class Eq2cMonotonicity : public ::testing::TestWithParam<Eq2cCase> {};

TEST_P(Eq2cMonotonicity, VelocityDecreasesWithMakespan) {
  const Eq2cCase c = GetParam();
  double prev = std::numeric_limits<double>::infinity();
  for (double tp = 0.0; tp <= 8.0; tp += 0.1) {
    const double v = core::max_velocity(tp, c.a_max, c.d);
    EXPECT_LT(v, prev) << "tp=" << tp;
    EXPECT_GT(v, 0.0);
    prev = v;
  }
  // Ceiling at tp = 0 equals sqrt(2 d a).
  EXPECT_NEAR(core::max_velocity(0.0, c.a_max, c.d), std::sqrt(2.0 * c.d * c.a_max),
              1e-9);
}

TEST_P(Eq2cMonotonicity, InverseIsConsistent) {
  const Eq2cCase c = GetParam();
  for (double tp : {0.02, 0.2, 1.0, 4.0}) {
    const double v = core::max_velocity(tp, c.a_max, c.d);
    EXPECT_NEAR(core::max_processing_time_for_velocity(v, c.a_max, c.d), tp, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Eq2cMonotonicity,
                         ::testing::Values(Eq2cCase{0.25, 0.5}, Eq2cCase{0.5, 1.0},
                                           Eq2cCase{0.5, 2.0}, Eq2cCase{1.0, 0.5},
                                           Eq2cCase{2.0, 3.0}));

// ---- channel: loss monotone in distance for every path-loss exponent -------

class ChannelLossMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ChannelLossMonotone, LossNeverDecreasesWithDistance) {
  net::ChannelConfig cfg;
  cfg.wap_position = {0.0, 0.0};
  cfg.shadowing_sigma_db = 0.0;
  cfg.path_loss_exponent = GetParam();
  net::WirelessChannel ch(cfg);
  double prev = -1.0;
  for (double d = 1.0; d < 200.0; d *= 1.3) {
    ch.set_robot_position({d, 0.0});
    const double loss = ch.loss_from_snr(ch.snr_db(ch.mean_rssi_dbm()));
    EXPECT_GE(loss, prev - 1e-12) << "d=" << d;
    prev = loss;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // far enough is always an outage
}

TEST_P(ChannelLossMonotone, UplinkRateNeverIncreasesWithDistance) {
  net::ChannelConfig cfg;
  cfg.wap_position = {0.0, 0.0};
  cfg.shadowing_sigma_db = 0.0;
  cfg.path_loss_exponent = GetParam();
  net::WirelessChannel ch(cfg);
  double prev = std::numeric_limits<double>::infinity();
  for (double d = 1.0; d < 200.0; d *= 1.3) {
    ch.set_robot_position({d, 0.0});
    const double rate = ch.effective_uplink_bps();
    EXPECT_LE(rate, prev + 1e-6);
    EXPECT_GT(rate, 0.0);
    prev = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ChannelLossMonotone,
                         ::testing::Values(2.5, 3.0, 3.5, 4.5, 6.0));

// ---- serialization: randomized round-trips ---------------------------------

class SerializationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationFuzz, LaserScanRoundTripsExactly) {
  Rng rng(GetParam());
  msg::LaserScan s;
  s.header.seq = static_cast<uint64_t>(rng.uniform_int(0, 1 << 30));
  s.header.stamp = rng.uniform(0.0, 1e6);
  s.header.frame_id = rng.bernoulli(0.5) ? "base_scan" : "";
  s.angle_min = rng.uniform(-4.0, 0.0);
  s.angle_max = rng.uniform(0.0, 4.0);
  s.angle_increment = rng.uniform(0.001, 0.1);
  s.range_min = rng.uniform(0.01, 0.5);
  s.range_max = rng.uniform(1.0, 10.0);
  const int beams = rng.uniform_int(0, 720);
  for (int i = 0; i < beams; ++i) {
    s.ranges.push_back(static_cast<float>(rng.uniform(0.0, 12.0)));
  }
  EXPECT_EQ(deserialize_from_bytes<msg::LaserScan>(serialize_to_bytes(s)), s);
}

TEST_P(SerializationFuzz, OccupancyGridRoundTripsExactly) {
  Rng rng(GetParam() ^ 0x9999);
  msg::OccupancyGridMsg g;
  g.frame.origin = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
  g.frame.resolution = rng.uniform(0.01, 0.5);
  g.width = rng.uniform_int(1, 60);
  g.height = rng.uniform_int(1, 60);
  for (int i = 0; i < g.width * g.height; ++i) {
    g.data.push_back(static_cast<int8_t>(rng.uniform_int(-1, 100)));
  }
  EXPECT_EQ(deserialize_from_bytes<msg::OccupancyGridMsg>(serialize_to_bytes(g)), g);
}

TEST_P(SerializationFuzz, PathRoundTripsExactly) {
  Rng rng(GetParam() ^ 0x1212);
  msg::PathMsg p;
  const int n = rng.uniform_int(0, 200);
  for (int i = 0; i < n; ++i) {
    p.poses.emplace_back(rng.uniform(-50, 50), rng.uniform(-50, 50),
                         rng.uniform(-3.1, 3.1));
  }
  EXPECT_EQ(deserialize_from_bytes<msg::PathMsg>(serialize_to_bytes(p)), p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---- cost model: more threads never hurt a large balanced kernel -----------

class CostModelScaling : public ::testing::TestWithParam<platform::Host> {};

TEST_P(CostModelScaling, BigKernelMonotoneUpToCoreCount) {
  const platform::PlatformSpec spec = platform::spec_for(GetParam());
  const platform::CostModel model(spec);
  const double work = 50e9;
  double prev = std::numeric_limits<double>::infinity();
  for (int n = 1; n <= spec.cores; n *= 2) {
    platform::WorkProfile p;
    platform::ParallelRegion r;
    r.chunk_cycles.assign(static_cast<size_t>(n), work / n);
    p.add_region(r);
    const double t = model.execution_time(p);
    EXPECT_LT(t, prev) << "threads=" << n;
    prev = t;
  }
}

TEST_P(CostModelScaling, SerializedTimeIsThreadIndependent) {
  const platform::CostModel model(platform::spec_for(GetParam()));
  for (int n : {1, 2, 8}) {
    platform::WorkProfile p;
    platform::ParallelRegion r;
    r.chunk_cycles.assign(static_cast<size_t>(n), 3e9 / n);
    p.add_region(r);
    EXPECT_NEAR(model.serialized_time(p), 3e9 / model.spec().single_thread_ops_per_sec(),
                1e-9);
  }
}

TEST_P(CostModelScaling, EnergyIndependentOfSchedule) {
  const platform::CostModel model(platform::spec_for(GetParam()));
  platform::WorkProfile serial;
  serial.add_serial(2e9);
  platform::WorkProfile parallel;
  platform::ParallelRegion r;
  r.chunk_cycles.assign(8, 0.25e9);
  parallel.add_region(r);
  EXPECT_NEAR(model.dynamic_energy(serial), model.dynamic_energy(parallel), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Platforms, CostModelScaling,
                         ::testing::Values(platform::Host::kLgv,
                                           platform::Host::kEdgeGateway,
                                           platform::Host::kCloudServer));

// ---- geometry: compose/between closure over random poses -------------------

class PoseAlgebra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoseAlgebra, ComposeBetweenClosure) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Pose2D a{rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-3.1, 3.1)};
    const Pose2D b{rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-3.1, 3.1)};
    const Pose2D c = a.compose(a.between(b));
    EXPECT_NEAR(c.x, b.x, 1e-9);
    EXPECT_NEAR(c.y, b.y, 1e-9);
    EXPECT_NEAR(angle_diff(c.theta, b.theta), 0.0, 1e-9);
  }
}

TEST_P(PoseAlgebra, TransformInverseTransformIdentity) {
  Rng rng(GetParam() ^ 0xfeed);
  for (int i = 0; i < 50; ++i) {
    const Pose2D p{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-3.1, 3.1)};
    const Point2D q{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Point2D back = p.inverse_transform(p.transform(q));
    EXPECT_NEAR(back.x, q.x, 1e-9);
    EXPECT_NEAR(back.y, q.y, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoseAlgebra, ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace lgv
