#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "platform/calibration.h"
#include "platform/cost_model.h"
#include "platform/execution_context.h"
#include "platform/platform_spec.h"
#include "platform/work_meter.h"
#include "platform/work_profile.h"

namespace lgv::platform {
namespace {

TEST(PlatformSpec, TableIIIValues) {
  const PlatformSpec tb = turtlebot3_spec();
  EXPECT_DOUBLE_EQ(tb.freq_ghz, 1.4);
  EXPECT_EQ(tb.cores, 4);
  const PlatformSpec gw = edge_gateway_spec();
  EXPECT_DOUBLE_EQ(gw.freq_ghz, 4.2);
  EXPECT_EQ(gw.cores, 4);
  EXPECT_EQ(gw.hw_threads, 8);
  const PlatformSpec cs = cloud_server_spec();
  EXPECT_DOUBLE_EQ(cs.freq_ghz, 3.1);
  EXPECT_EQ(cs.cores, 24);
}

TEST(PlatformSpec, SingleThreadOrdering) {
  // Gateway has the fastest single thread (high freq × wide core); the RPi
  // the slowest — the premise of Figs. 9/10's who-wins-where split.
  EXPECT_GT(edge_gateway_spec().single_thread_ops_per_sec(),
            cloud_server_spec().single_thread_ops_per_sec());
  EXPECT_GT(cloud_server_spec().single_thread_ops_per_sec(),
            turtlebot3_spec().single_thread_ops_per_sec());
}

TEST(PlatformSpec, ParallelThroughputShape) {
  const PlatformSpec gw = edge_gateway_spec();
  EXPECT_DOUBLE_EQ(gw.parallel_throughput(1), 1.0);
  EXPECT_DOUBLE_EQ(gw.parallel_throughput(4), 4.0);
  // SMT adds less than a full core.
  EXPECT_GT(gw.parallel_throughput(8), 4.0);
  EXPECT_LT(gw.parallel_throughput(8), 8.0);
  // Oversubscription past hw_threads adds nothing.
  EXPECT_DOUBLE_EQ(gw.parallel_throughput(16), gw.parallel_throughput(8));
  // The manycore server keeps scaling to 24 real cores.
  EXPECT_DOUBLE_EQ(cloud_server_spec().parallel_throughput(24), 24.0);
}

TEST(CostModel, SerialTimeScalesWithWork) {
  const CostModel m(turtlebot3_spec());
  WorkProfile p;
  p.add_serial(0.84e9);  // exactly 1 s at 1.4 GHz × 0.6 IPC
  EXPECT_NEAR(m.execution_time(p), 1.0, 1e-9);
  p.add_serial(0.84e9);
  EXPECT_NEAR(m.execution_time(p), 2.0, 1e-9);
}

TEST(CostModel, ParallelRegionChargedByLongestChunk) {
  const PlatformSpec spec = cloud_server_spec();
  const CostModel m(spec);
  WorkProfile p;
  ParallelRegion r;
  r.chunk_cycles = {1e9, 1e9, 4e9, 1e9};  // imbalanced
  p.add_region(r);
  const double t = m.execution_time(p);
  const double effective =
      spec.parallel_throughput(4) / (1.0 + spec.sync_tax_per_thread * 3.0);
  const double share = effective / 4.0;
  EXPECT_NEAR(t, 4e9 / (spec.single_thread_ops_per_sec() * share) +
                     4 * spec.dispatch_overhead_s,
              1e-9);
  // Doubling only a short chunk changes nothing; growing the longest does.
  ParallelRegion r2 = r;
  r2.chunk_cycles[0] = 2e9;
  WorkProfile p2;
  p2.add_region(r2);
  EXPECT_NEAR(m.execution_time(p2), t, 1e-12);
}

TEST(CostModel, ParallelFasterThanSerialUpToCores) {
  const CostModel m(cloud_server_spec());
  const double total = 24e9;
  double prev = 1e18;
  for (int threads : {1, 2, 4, 8, 12, 24}) {
    WorkProfile p;
    ParallelRegion r;
    r.chunk_cycles.assign(static_cast<size_t>(threads), total / threads);
    p.add_region(r);
    const double t = m.execution_time(p);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(CostModel, TinyWorkDoesNotBenefitFromManyThreads) {
  // Fig. 10's plateau: dispatch overhead dominates small chunks.
  const CostModel m(edge_gateway_spec());
  auto time_with_threads = [&](int threads) {
    WorkProfile p;
    ParallelRegion r;
    const double total = 50e3;  // tiny kernel
    r.chunk_cycles.assign(static_cast<size_t>(threads), total / threads);
    p.add_region(r);
    return m.execution_time(p);
  };
  EXPECT_GT(time_with_threads(8), time_with_threads(2));
}

TEST(CostModel, DynamicEnergyFollowsEq1c) {
  const CostModel m(turtlebot3_spec());
  WorkProfile p;
  p.add_serial(1e9);
  const double e = m.dynamic_energy(p);
  EXPECT_NEAR(e, calib::kSwitchedCapacitance * 1e9 * 1.4 * 1.4, 1e-15);
  // Energy is frequency-squared: the gateway pays more per cycle.
  const CostModel gw(edge_gateway_spec());
  EXPECT_GT(gw.dynamic_energy(p), e);
}

TEST(ExecutionContext, SerialWorkAccumulates) {
  ExecutionContext ctx;
  ctx.serial_work(100.0);
  ctx.serial_work(50.0);
  EXPECT_DOUBLE_EQ(ctx.profile().total_cycles(), 150.0);
  EXPECT_TRUE(ctx.profile().regions.empty());
}

TEST(ExecutionContext, ParallelKernelWithoutPoolStillRecordsChunks) {
  ExecutionContext ctx(nullptr, 4);
  std::vector<int> touched(10, 0);
  ctx.parallel_kernel(10, [&](size_t i) {
    touched[i] = 1;
    return 10.0;
  });
  for (int t : touched) EXPECT_EQ(t, 1);
  ASSERT_EQ(ctx.profile().regions.size(), 1u);
  EXPECT_EQ(ctx.profile().regions[0].chunks(), 4);
  EXPECT_DOUBLE_EQ(ctx.profile().total_cycles(), 100.0);
}

TEST(ExecutionContext, ParallelKernelOnRealPoolMatchesSerial) {
  ThreadPool pool(4);
  ExecutionContext par(& pool, 4);
  ExecutionContext ser(nullptr, 1);
  auto work = [](size_t i) { return static_cast<double>(i + 1); };
  par.parallel_kernel(100, work);
  ser.parallel_kernel(100, work);
  EXPECT_DOUBLE_EQ(par.profile().total_cycles(), ser.profile().total_cycles());
  EXPECT_DOUBLE_EQ(par.profile().total_cycles(), 100.0 * 101.0 / 2.0);
}

TEST(ExecutionContext, SingleThreadKernelCountsAsSerial) {
  ExecutionContext ctx(nullptr, 1);
  ctx.parallel_kernel(5, [](size_t) { return 1.0; });
  EXPECT_TRUE(ctx.profile().regions.empty());
  EXPECT_DOUBLE_EQ(ctx.profile().serial_cycles, 5.0);
}

TEST(WorkProfile, MergeAndTotals) {
  WorkProfile a, b;
  a.add_serial(10.0);
  ParallelRegion r;
  r.chunk_cycles = {5.0, 7.0};
  b.add_region(r);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_cycles(), 22.0);
  EXPECT_DOUBLE_EQ(a.regions[0].longest(), 7.0);
}

TEST(WorkMeter, ChargesAndFractions) {
  WorkMeter meter;
  meter.charge("slam", 60.0);
  meter.charge("slam", 40.0);
  meter.charge("costmap", 100.0);
  EXPECT_DOUBLE_EQ(meter.cycles("slam"), 100.0);
  EXPECT_EQ(meter.invocations("slam"), 2u);
  EXPECT_DOUBLE_EQ(meter.total_cycles(), 200.0);
  EXPECT_DOUBLE_EQ(meter.fraction("slam"), 0.5);
  EXPECT_DOUBLE_EQ(meter.fraction("missing"), 0.0);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.total_cycles(), 0.0);
}

TEST(SpeedupShape, EcnCloudBeatsGatewayAtScale) {
  // Fig. 9's conclusion: for the big parallel SLAM kernel the manycore cloud
  // server achieves the best acceleration; both beat local by 20-45×.
  const double work = 3.3e9;  // one SLAM update, Table II
  auto runtime = [&](const PlatformSpec& spec, int threads) {
    CostModel m(spec);
    WorkProfile p;
    ParallelRegion r;
    r.chunk_cycles.assign(static_cast<size_t>(threads), work / threads);
    p.add_region(r);
    p.add_serial(work * 0.02);  // 2% sequential resample (§V: 98% scanMatch)
    return m.execution_time(p);
  };
  const double local = runtime(turtlebot3_spec(), 1);
  const double gw = runtime(edge_gateway_spec(), 8);
  const double cloud = runtime(cloud_server_spec(), 24);
  EXPECT_LT(cloud, gw);
  const double gw_speedup = local / gw;
  const double cloud_speedup = local / cloud;
  // Paper: up to 27.97× (gateway) and 40.84× (cloud).
  EXPECT_GT(gw_speedup, 15.0);
  EXPECT_LT(gw_speedup, 40.0);
  EXPECT_GT(cloud_speedup, 25.0);
  EXPECT_LT(cloud_speedup, 55.0);
}

TEST(SpeedupShape, VdpGatewayBeatsCloud) {
  // Fig. 10's conclusion: the VDP has a serial costmap stage plus the
  // parallel scoring stage, so the high-frequency gateway beats the manycore
  // server end to end.
  const double serial_work = 0.86e9;    // CostmapGen (Table II)
  const double parallel_work = 1.39e9;  // Path Tracking
  auto runtime = [&](const PlatformSpec& spec, int threads) {
    CostModel m(spec);
    WorkProfile p;
    p.add_serial(serial_work);
    ParallelRegion r;
    r.chunk_cycles.assign(static_cast<size_t>(threads), parallel_work / threads);
    p.add_region(r);
    return m.execution_time(p);
  };
  EXPECT_LT(runtime(edge_gateway_spec(), 4), runtime(cloud_server_spec(), 4));
  EXPECT_LT(runtime(edge_gateway_spec(), 8), runtime(cloud_server_spec(), 12));
}

}  // namespace
}  // namespace lgv::platform
