// Ablation over the paper's three optimization strategies (§IV-§VI): start
// from local execution and add (1) fine-grained migration, (2) cloud
// acceleration, (3) real-time adjustment, measuring each increment's effect
// on mission time, energy and robustness — including a weak-signal
// environment where only the adaptive stack survives.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mission_runner.h"

using namespace lgv;
using core::WorkloadKind;
using platform::Host;

namespace {

core::MissionReport run(const core::DeploymentPlan& plan, bool weak_network) {
  core::MissionConfig cfg;
  cfg.timeout = 800.0;
  if (weak_network) cfg.channel.path_loss_exponent = 5.2;  // dead zone in reach
  core::MissionRunner runner(sim::make_lab_scenario(), plan, cfg);
  return runner.run();
}

void print_row(const char* label, const core::MissionReport& r) {
  std::printf("%-34s %8.1f %9.1f %9.1f %8s %9llu\n", label, r.completion_time,
              r.energy.total(), r.standby_time, r.success ? "yes" : "NO",
              static_cast<unsigned long long>(r.placement_switches));
}

}  // namespace

int main() {
  bench::print_title("Ablation — value of each optimization strategy (navigation)");
  std::printf("%-34s %8s %9s %9s %8s %9s\n", "configuration", "time(s)",
              "energy(J)", "standby", "success", "switches");

  // Good network.
  const WorkloadKind wk = WorkloadKind::kNavigationWithMap;
  print_row("local only (no offloading)", run(core::local_plan(wk), false));

  core::DeploymentPlan migration_only = core::offload_plan("m", Host::kEdgeGateway, 1, wk);
  migration_only.adaptive = false;
  print_row("+ fine-grained migration (SIV)", run(migration_only, false));

  core::DeploymentPlan with_accel = core::offload_plan("ma", Host::kEdgeGateway, 8, wk);
  with_accel.adaptive = false;
  print_row("+ cloud acceleration, 8T (SV)", run(with_accel, false));

  print_row("+ real-time adjustment (SVI)",
            run(core::offload_plan("maa", Host::kEdgeGateway, 8, wk), false));

  bench::print_subtitle("same stacks under a weak network (dead zone on route)");
  print_row("local only", run(core::local_plan(wk), true));
  print_row("migration + accel, NO adjustment", run(with_accel, true));
  print_row("full stack (Algorithm 2 on)",
            run(core::offload_plan("full", Host::kEdgeGateway, 8, wk), true));

  std::printf(
      "\nExpected: migration cuts computer energy; acceleration cuts mission\n"
      "time (Eq. 2c velocity); adjustment is what keeps the mission alive\n"
      "when the route crosses the dead zone (static offloading strands).\n");
  return 0;
}
