// Wall-clock microbenchmarks (google-benchmark) of the real kernels backing
// the reproduction: scan matching, costmap updates, trajectory scoring,
// message serialization and the thread pool. These measure HOST performance —
// the paper-facing numbers (Figs. 9/10) use the platform cost models instead;
// this suite exists to keep the actual implementations honest (no
// accidentally quadratic kernels) and to profile optimization work.
//
// `--wallclock-json` switches to a self-contained A/B harness that times the
// two hand-vectorized kernels (scanMatch score, trajectory-rollout scoring)
// scalar-vs-SIMD with median-of-N steady-clock runs and writes
// BENCH_kernel_wallclock.json (consumed by tools/run_kernel_bench.sh and the
// CI kernel-bench job). Without the flag it is a normal google-benchmark
// binary.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_util.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "control/trajectory_rollout.h"
#include "msg/messages.h"
#include "perception/amcl.h"
#include "perception/costmap2d.h"
#include "perception/gmapping.h"
#include "perception/likelihood_field.h"
#include "perception/scan_matcher.h"
#include "planning/grid_search.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

using namespace lgv;

namespace {

struct Fixture {
  sim::Scenario scenario = sim::make_lab_scenario();
  sim::Lidar lidar{sim::LidarConfig{}, 7};
  msg::LaserScan scan;
  perception::OccupancyGrid map;
  perception::Costmap2D costmap;
  msg::PathMsg path;

  Fixture()
      : map(perception::OccupancyGrid::from_binary(scenario.world.frame(),
                                                   scenario.world.grid())),
        costmap(scenario.world.frame().origin, scenario.world.width_m(),
                scenario.world.height_m()) {
    scan = lidar.scan(scenario.world, scenario.start, 0.0);
    costmap.set_static_map(map.to_msg(0.0));
    costmap.inflate();
    for (double t = 0.0; t <= 3.0; t += 0.25) {
      path.poses.emplace_back(scenario.start.x + t, scenario.start.y + 0.3 * t, 0.2);
    }
  }
};

Fixture& fixture() {
  static Fixture fx;
  return fx;
}

void BM_ScanMatchScore(benchmark::State& state) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  size_t evals = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.score(fx.map, fx.scenario.start, fx.scan, &evals));
  }
  state.SetItemsProcessed(static_cast<int64_t>(evals));
}
BENCHMARK(BM_ScanMatchScore);

void BM_ScanMatchScoreCached(benchmark::State& state) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  perception::LikelihoodField field;
  field.sync(fx.map);
  const perception::PrecomputedScan pre = perception::precompute_scan(
      fx.scan, matcher.config().beam_stride, fx.map.frame().resolution);
  size_t evals = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.score(field, fx.scenario.start, pre, &evals));
  }
  state.SetItemsProcessed(static_cast<int64_t>(evals));
}
BENCHMARK(BM_ScanMatchScoreCached);

void BM_ScanMatchRefine(benchmark::State& state) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  const Pose2D perturbed{fx.scenario.start.x + 0.08, fx.scenario.start.y - 0.05,
                         fx.scenario.start.theta + 0.04};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(fx.map, perturbed, fx.scan));
  }
}
BENCHMARK(BM_ScanMatchRefine);

void BM_ScanMatchRefineCached(benchmark::State& state) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  perception::LikelihoodField field;
  field.sync(fx.map);
  const Pose2D perturbed{fx.scenario.start.x + 0.08, fx.scenario.start.y - 0.05,
                         fx.scenario.start.theta + 0.04};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(field, perturbed, fx.scan));
  }
}
BENCHMARK(BM_ScanMatchRefineCached);

void BM_LikelihoodFieldFullBuild(benchmark::State& state) {
  Fixture& fx = fixture();
  for (auto _ : state) {
    perception::LikelihoodField field;
    benchmark::DoNotOptimize(field.sync(fx.map));
  }
}
BENCHMARK(BM_LikelihoodFieldFullBuild);

void BM_LikelihoodFieldIncrementalSync(benchmark::State& state) {
  // One SLAM-style cycle: integrate a scan into the map, then catch the
  // field up through the changelog (the steady-state per-update cost).
  Fixture& fx = fixture();
  perception::OccupancyGrid map = fx.map;
  perception::LikelihoodField field;
  field.sync(map);
  size_t rebuilt = 0;
  for (auto _ : state) {
    map.integrate_scan(fx.scenario.start, fx.scan);
    rebuilt += field.sync(map);
  }
  state.counters["cells_rebuilt"] =
      benchmark::Counter(static_cast<double>(rebuilt),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_LikelihoodFieldIncrementalSync);

void BM_CostmapUpdate(benchmark::State& state) {
  Fixture& fx = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.costmap.update(fx.scenario.start, fx.scan));
  }
}
BENCHMARK(BM_CostmapUpdate);

void BM_TrajectoryRollout(benchmark::State& state) {
  Fixture& fx = fixture();
  control::RolloutConfig cfg;
  cfg.samples = static_cast<int>(state.range(0));
  control::TrajectoryRollout rollout(cfg);
  platform::ExecutionContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rollout.compute(fx.costmap, fx.path, fx.scenario.start,
                                             {0.2, 0.0}, 0.6, ctx));
    ctx.reset();
  }
}
BENCHMARK(BM_TrajectoryRollout)->Arg(200)->Arg(2000);

void BM_TrajectoryRolloutPooled(benchmark::State& state) {
  Fixture& fx = fixture();
  control::RolloutConfig cfg;
  cfg.samples = 2000;
  control::TrajectoryRollout rollout(cfg);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  platform::ExecutionContext ctx(&pool, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rollout.compute(fx.costmap, fx.path, fx.scenario.start,
                                             {0.2, 0.0}, 0.6, ctx));
    ctx.reset();
  }
}
BENCHMARK(BM_TrajectoryRolloutPooled)->Arg(2)->Arg(4);

void BM_AStarPlan(benchmark::State& state) {
  Fixture& fx = fixture();
  const CellIndex start = fx.costmap.frame().world_to_cell(fx.scenario.start.position());
  const CellIndex goal = fx.costmap.frame().world_to_cell(fx.scenario.goal.position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(planning::plan_on_costmap(fx.costmap, start, goal));
  }
}
BENCHMARK(BM_AStarPlan);

void BM_GmappingUpdate(benchmark::State& state) {
  perception::GmappingConfig cfg;
  cfg.particles = static_cast<int>(state.range(0));
  const auto log = sim::record_scan_log(fixture().scenario, 0.4, 0.2, 6);
  for (auto _ : state) {
    perception::Gmapping slam(cfg, {0, 0}, 12.0, 10.0, 3);
    slam.initialize(log[0].odom_pose);
    platform::ExecutionContext ctx;
    for (const auto& e : log) {
      msg::Odometry odom;
      odom.pose = e.odom_pose;
      slam.process(odom, e.scan, ctx);
    }
    benchmark::DoNotOptimize(slam.best_pose());
  }
}
BENCHMARK(BM_GmappingUpdate)->Arg(10)->Arg(30);

void BM_SerializeLaserScan(benchmark::State& state) {
  Fixture& fx = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_to_bytes(fx.scan));
  }
}
BENCHMARK(BM_SerializeLaserScan);

void BM_DeserializeLaserScan(benchmark::State& state) {
  const auto bytes = serialize_to_bytes(fixture().scan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deserialize_from_bytes<msg::LaserScan>(bytes));
  }
}
BENCHMARK(BM_DeserializeLaserScan);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_for(256, [](size_t i) { benchmark::DoNotOptimize(i * i); });
  }
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

// ---- wall-clock A/B harness (--wallclock-json) -----------------------------

struct WallKernelResult {
  std::string name;
  int iters = 0;
  double scalar_ns = 0.0;  ///< per call
  double simd_ns = 0.0;    ///< per call
  double speedup = 0.0;
  double rel_err = 0.0;    ///< |scalar − simd| / max(1, |scalar|) of a checksum
  bool agree = false;
};

/// scanMatch score loop: scalar reference vs the staged SIMD pipeline, pinned
/// via simd::force_level. The projection contract makes the two bit-identical,
/// so the checksum must match exactly.
WallKernelResult wallclock_scan_match(int runs, int iters) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  perception::LikelihoodField field;
  field.sync(fx.map);
  const perception::PrecomputedScan pre = perception::precompute_scan(
      fx.scan, matcher.config().beam_stride, fx.map.frame().resolution);
  // A small deterministic pose orbit so branch history is realistic (the
  // refine loop never scores one pose repeatedly).
  const auto pose_at = [&](int i) {
    return Pose2D{fx.scenario.start.x + 0.01 * (i % 7),
                  fx.scenario.start.y - 0.008 * (i % 5),
                  fx.scenario.start.theta + 0.005 * (i % 9)};
  };
  const auto leg = [&](simd::Level level, double* checksum) {
    simd::force_level(level);
    const double s = lgv::bench::time_median(runs, [&] {
      double sum = 0.0;
      for (int i = 0; i < iters; ++i) {
        sum += matcher.score(field, pose_at(i), pre, nullptr);
      }
      benchmark::DoNotOptimize(sum);
      *checksum = sum;
    });
    simd::clear_forced_level();
    return s * 1e9 / iters;
  };
  WallKernelResult r;
  r.name = "scan_match_score";
  r.iters = iters;
  double scalar_sum = 0.0, simd_sum = 0.0;
  r.scalar_ns = leg(simd::Level::kScalar, &scalar_sum);
  r.simd_ns = leg(simd::detected_level(), &simd_sum);
  r.speedup = r.simd_ns > 0.0 ? r.scalar_ns / r.simd_ns : 0.0;
  r.rel_err = std::abs(scalar_sum - simd_sum) / std::max(1.0, std::abs(scalar_sum));
  r.agree = r.rel_err <= 1e-9;
  return r;
}

/// Trajectory-rollout scoring: the scalar per-candidate loop (use_simd=false)
/// vs the vectorized forward simulation. Positions agree to rounding only
/// (rotation recurrence), so the decision checksum gets an epsilon.
WallKernelResult wallclock_score_trajectory(int runs, int iters) {
  Fixture& fx = fixture();
  control::RolloutConfig scalar_cfg;
  scalar_cfg.samples = 2000;
  scalar_cfg.use_simd = false;
  control::RolloutConfig simd_cfg = scalar_cfg;
  simd_cfg.use_simd = true;
  const auto leg = [&](const control::RolloutConfig& cfg, double* checksum) {
    control::TrajectoryRollout rollout(cfg);
    platform::ExecutionContext ctx;
    const double s = lgv::bench::time_median(runs, [&] {
      double sum = 0.0;
      for (int i = 0; i < iters; ++i) {
        const control::RolloutDecision d = rollout.compute(
            fx.costmap, fx.path, fx.scenario.start, {0.2, 0.0}, 0.6, ctx);
        ctx.reset();
        sum += d.stats.best_score + d.command.linear + d.command.angular;
      }
      benchmark::DoNotOptimize(sum);
      *checksum = sum;
    });
    return s * 1e9 / iters;
  };
  WallKernelResult r;
  r.name = "score_trajectory";
  r.iters = iters;
  double scalar_sum = 0.0, simd_sum = 0.0;
  r.scalar_ns = leg(scalar_cfg, &scalar_sum);
  r.simd_ns = leg(simd_cfg, &simd_sum);
  r.speedup = r.simd_ns > 0.0 ? r.scalar_ns / r.simd_ns : 0.0;
  r.rel_err = std::abs(scalar_sum - simd_sum) / std::max(1.0, std::abs(scalar_sum));
  r.agree = r.rel_err <= 1e-6;
  return r;
}

int run_wallclock_json(int runs, bool smoke) {
  lgv::bench::print_title("Kernel wall-clock: scalar vs SIMD (median of runs)");
  const simd::Level level = simd::detected_level();
  std::printf("simd level: %s, runs per leg: %d%s\n", simd::level_name(level), runs,
              smoke ? " (smoke)" : "");
  if (level == simd::Level::kScalar) {
    std::printf("no vector unit in this build/CPU; nothing to compare\n");
  }

  std::vector<WallKernelResult> results;
  results.push_back(wallclock_scan_match(runs, smoke ? 400 : 4000));
  results.push_back(wallclock_score_trajectory(runs, smoke ? 4 : 24));

  std::printf("\n%-22s %12s %12s %9s %10s %7s\n", "kernel", "scalar", "simd",
              "speedup", "rel_err", "agree");
  for (const WallKernelResult& r : results) {
    std::printf("%-22s %10.0fns %10.0fns %8.2fx %10.1e %7s\n", r.name.c_str(),
                r.scalar_ns, r.simd_ns, r.speedup, r.rel_err,
                r.agree ? "yes" : "NO");
  }

  const char* json_path = "BENCH_kernel_wallclock.json";
  {
    std::ofstream f(json_path);
    f << "{\n  \"bench\": \"kernel_wallclock\",\n";
    f << "  \"simd_level\": \"" << simd::level_name(level) << "\",\n";
    f << "  \"runs\": " << runs << ",\n";
    f << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    f << "  \"kernels\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const WallKernelResult& r = results[i];
      f << "    {\"name\": \"" << r.name << "\", \"iters\": " << r.iters
        << ", \"scalar_ns_per_call\": " << r.scalar_ns
        << ", \"simd_ns_per_call\": " << r.simd_ns
        << ", \"speedup\": " << r.speedup << ", \"rel_err\": " << r.rel_err
        << ", \"agree\": " << (r.agree ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
  }
  std::printf("\nwrote %s\n", json_path);

  bool ok = true;
  for (const WallKernelResult& r : results) ok = ok && r.agree;
  if (!ok) std::printf("SCALAR/SIMD DISAGREEMENT\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool wallclock = false, smoke = false;
  int runs = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wallclock-json") == 0) wallclock = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--wallclock-runs=", 17) == 0) {
      runs = std::max(1, std::atoi(argv[i] + 17));
    }
  }
  if (wallclock) return run_wallclock_json(runs, smoke);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
