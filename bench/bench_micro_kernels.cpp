// Wall-clock microbenchmarks (google-benchmark) of the real kernels backing
// the reproduction: scan matching, costmap updates, trajectory scoring,
// message serialization and the thread pool. These measure HOST performance —
// the paper-facing numbers (Figs. 9/10) use the platform cost models instead;
// this suite exists to keep the actual implementations honest (no
// accidentally quadratic kernels) and to profile optimization work.
#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "control/trajectory_rollout.h"
#include "msg/messages.h"
#include "perception/amcl.h"
#include "perception/costmap2d.h"
#include "perception/gmapping.h"
#include "perception/likelihood_field.h"
#include "perception/scan_matcher.h"
#include "planning/grid_search.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

using namespace lgv;

namespace {

struct Fixture {
  sim::Scenario scenario = sim::make_lab_scenario();
  sim::Lidar lidar{sim::LidarConfig{}, 7};
  msg::LaserScan scan;
  perception::OccupancyGrid map;
  perception::Costmap2D costmap;
  msg::PathMsg path;

  Fixture()
      : map(perception::OccupancyGrid::from_binary(scenario.world.frame(),
                                                   scenario.world.grid())),
        costmap(scenario.world.frame().origin, scenario.world.width_m(),
                scenario.world.height_m()) {
    scan = lidar.scan(scenario.world, scenario.start, 0.0);
    costmap.set_static_map(map.to_msg(0.0));
    costmap.inflate();
    for (double t = 0.0; t <= 3.0; t += 0.25) {
      path.poses.emplace_back(scenario.start.x + t, scenario.start.y + 0.3 * t, 0.2);
    }
  }
};

Fixture& fixture() {
  static Fixture fx;
  return fx;
}

void BM_ScanMatchScore(benchmark::State& state) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  size_t evals = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.score(fx.map, fx.scenario.start, fx.scan, &evals));
  }
  state.SetItemsProcessed(static_cast<int64_t>(evals));
}
BENCHMARK(BM_ScanMatchScore);

void BM_ScanMatchScoreCached(benchmark::State& state) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  perception::LikelihoodField field;
  field.sync(fx.map);
  const perception::PrecomputedScan pre = perception::precompute_scan(
      fx.scan, matcher.config().beam_stride, fx.map.frame().resolution);
  size_t evals = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.score(field, fx.scenario.start, pre, &evals));
  }
  state.SetItemsProcessed(static_cast<int64_t>(evals));
}
BENCHMARK(BM_ScanMatchScoreCached);

void BM_ScanMatchRefine(benchmark::State& state) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  const Pose2D perturbed{fx.scenario.start.x + 0.08, fx.scenario.start.y - 0.05,
                         fx.scenario.start.theta + 0.04};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(fx.map, perturbed, fx.scan));
  }
}
BENCHMARK(BM_ScanMatchRefine);

void BM_ScanMatchRefineCached(benchmark::State& state) {
  Fixture& fx = fixture();
  perception::ScanMatcher matcher;
  perception::LikelihoodField field;
  field.sync(fx.map);
  const Pose2D perturbed{fx.scenario.start.x + 0.08, fx.scenario.start.y - 0.05,
                         fx.scenario.start.theta + 0.04};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(field, perturbed, fx.scan));
  }
}
BENCHMARK(BM_ScanMatchRefineCached);

void BM_LikelihoodFieldFullBuild(benchmark::State& state) {
  Fixture& fx = fixture();
  for (auto _ : state) {
    perception::LikelihoodField field;
    benchmark::DoNotOptimize(field.sync(fx.map));
  }
}
BENCHMARK(BM_LikelihoodFieldFullBuild);

void BM_LikelihoodFieldIncrementalSync(benchmark::State& state) {
  // One SLAM-style cycle: integrate a scan into the map, then catch the
  // field up through the changelog (the steady-state per-update cost).
  Fixture& fx = fixture();
  perception::OccupancyGrid map = fx.map;
  perception::LikelihoodField field;
  field.sync(map);
  size_t rebuilt = 0;
  for (auto _ : state) {
    map.integrate_scan(fx.scenario.start, fx.scan);
    rebuilt += field.sync(map);
  }
  state.counters["cells_rebuilt"] =
      benchmark::Counter(static_cast<double>(rebuilt),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_LikelihoodFieldIncrementalSync);

void BM_CostmapUpdate(benchmark::State& state) {
  Fixture& fx = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.costmap.update(fx.scenario.start, fx.scan));
  }
}
BENCHMARK(BM_CostmapUpdate);

void BM_TrajectoryRollout(benchmark::State& state) {
  Fixture& fx = fixture();
  control::RolloutConfig cfg;
  cfg.samples = static_cast<int>(state.range(0));
  control::TrajectoryRollout rollout(cfg);
  platform::ExecutionContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rollout.compute(fx.costmap, fx.path, fx.scenario.start,
                                             {0.2, 0.0}, 0.6, ctx));
    ctx.reset();
  }
}
BENCHMARK(BM_TrajectoryRollout)->Arg(200)->Arg(2000);

void BM_TrajectoryRolloutPooled(benchmark::State& state) {
  Fixture& fx = fixture();
  control::RolloutConfig cfg;
  cfg.samples = 2000;
  control::TrajectoryRollout rollout(cfg);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  platform::ExecutionContext ctx(&pool, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rollout.compute(fx.costmap, fx.path, fx.scenario.start,
                                             {0.2, 0.0}, 0.6, ctx));
    ctx.reset();
  }
}
BENCHMARK(BM_TrajectoryRolloutPooled)->Arg(2)->Arg(4);

void BM_AStarPlan(benchmark::State& state) {
  Fixture& fx = fixture();
  const CellIndex start = fx.costmap.frame().world_to_cell(fx.scenario.start.position());
  const CellIndex goal = fx.costmap.frame().world_to_cell(fx.scenario.goal.position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(planning::plan_on_costmap(fx.costmap, start, goal));
  }
}
BENCHMARK(BM_AStarPlan);

void BM_GmappingUpdate(benchmark::State& state) {
  perception::GmappingConfig cfg;
  cfg.particles = static_cast<int>(state.range(0));
  const auto log = sim::record_scan_log(fixture().scenario, 0.4, 0.2, 6);
  for (auto _ : state) {
    perception::Gmapping slam(cfg, {0, 0}, 12.0, 10.0, 3);
    slam.initialize(log[0].odom_pose);
    platform::ExecutionContext ctx;
    for (const auto& e : log) {
      msg::Odometry odom;
      odom.pose = e.odom_pose;
      slam.process(odom, e.scan, ctx);
    }
    benchmark::DoNotOptimize(slam.best_pose());
  }
}
BENCHMARK(BM_GmappingUpdate)->Arg(10)->Arg(30);

void BM_SerializeLaserScan(benchmark::State& state) {
  Fixture& fx = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_to_bytes(fx.scan));
  }
}
BENCHMARK(BM_SerializeLaserScan);

void BM_DeserializeLaserScan(benchmark::State& state) {
  const auto bytes = serialize_to_bytes(fixture().scan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deserialize_from_bytes<msg::LaserScan>(bytes));
  }
}
BENCHMARK(BM_DeserializeLaserScan);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_for(256, [](size_t i) { benchmark::DoNotOptimize(i * i); });
  }
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
