// Fleet-scale chaos (docs/fleet-serving.md, docs/faults.md): kill the shared
// primary WorkerPool mid-mission at {8, 32, 128} vehicles and check the
// fleet survives it. Three legs, all in deterministic virtual time:
//
//  1. Retry storm: 128 per-vehicle splitmix64 backoff streams; no two
//     vehicles may share a jittered retry schedule (the lockstep-resubmit
//     failure mode the backoff exists to kill).
//  2. Synthetic chaos sweep: N PoolFailoverClients tick against a primary +
//     standby pool under make_pool_chaos_schedule — a partial partition
//     opens, then the primary crashes outright, then restarts degraded.
//     Gated: every vehicle finishes its work quota, completion-time
//     inflation vs a fault-free run stays bounded, the standby absorbs at
//     least the partitioned sessions, and the post-crash retry times are
//     desynchronized across the fleet.
//  3. Integrity leg: two full MissionRunners share the primary, which dies
//     mid-mission and never returns. Both missions must complete via local
//     fallback + a committed "failover" state migration (never a torn
//     particle set), with zero wire-integrity rejects and the busy-fallback
//     accounting invariant intact.
//
// Artifacts: BENCH_fleet_chaos.json (gated by tools/check_bench_regression's
// check_fleet_chaos and the fleet-chaos CI job). Exit 0 iff every acceptance
// property holds.
//
// Usage: bench_fleet_chaos [--smoke]   (--smoke: coarser tick, same sweep)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/mission_runner.h"
#include "core/pool_failover.h"
#include "core/worker_pool.h"
#include "sim/fault_injector.h"

using namespace lgv;

namespace {

// ---- synthetic-leg model ----------------------------------------------------
constexpr double kMissionWorkS = 30.0;  ///< work-seconds each vehicle must bank
constexpr double kRemoteRate = 4.0;     ///< work-s banked per second when served
constexpr double kLocalRate = 1.0;      ///< ... when degraded to local compute
constexpr double kServiceS = 0.002;     ///< modeled pool service per request
constexpr double kSnapshotS = 0.25;     ///< modeled failover snapshot transfer
constexpr double kHorizonS = 45.0;
constexpr double kCrashAt = 5.0;   ///< partition opens at kCrashAt - 4
constexpr double kCrashS = 3.0;
constexpr double kPartitionFrac = 0.25;
constexpr double kInflationBound = 1.5;

struct ScaleResult {
  int vehicles = 0;
  int completed = 0;
  double clean_mean_s = 0.0;
  double chaos_mean_s = 0.0;
  double inflation = 0.0;
  int partitioned = 0;       ///< sessions inside the partition subset
  int standby_absorbed = 0;  ///< vehicles that ever committed to the standby
  uint64_t failovers = 0;    ///< committed pool switches (incl. failbacks)
  uint64_t breaker_opens = 0;
  uint64_t busy_bounces = 0;        ///< busy verdicts degraded to local
  uint64_t primary_crashes = 0;
  double desync_fraction = 0.0;  ///< distinct post-crash first retries / storm
};

struct Vehicle {
  core::PoolFailoverClient client;
  double progress = 0.0;
  double done_at = -1.0;
  int mig_target = -1;
  double mig_ready = -1.0;
  bool ever_standby = false;
  double first_retry = -1.0;  ///< retry_at of the first post-crash backoff

  Vehicle(core::WorkerPool* primary, core::WorkerPool* standby, uint64_t seed,
          std::string label)
      : client(primary, standby, seed, std::move(label)) {}
};

/// Drive `vehicles` failover clients against primary(+standby) until every
/// mission banks kMissionWorkS or the horizon runs out. Pure virtual time;
/// with `inj` == nullptr this is the fault-free baseline run.
void run_fleet(std::vector<Vehicle>& fleet, core::WorkerPool& primary,
               double tick, const sim::FaultInjector* inj) {
  primary.set_fault_injector(inj);
  for (double now = 0.0; now < kHorizonS; now += tick) {
    if (inj != nullptr) primary.step(now);
    bool all_done = true;
    for (Vehicle& v : fleet) {
      if (v.done_at >= 0.0) continue;
      all_done = false;

      bool remote = false;
      const uint32_t streak_before = v.client.busy_streak();
      const core::PoolFailoverClient::Acquire acq = v.client.acquire(now);
      if (acq.pool != nullptr) {
        bool committed = acq.pool_index == v.client.committed_index();
        if (acq.needs_migration) {
          // Crash-consistent re-admission: remote execution on the new pool
          // waits for the modeled snapshot transfer to land and commit.
          if (v.mig_target != acq.pool_index) {
            v.mig_target = acq.pool_index;
            v.mig_ready = now + kSnapshotS;
          }
          if (now >= v.mig_ready) {
            v.client.migration_committed(acq.pool_index);
            if (acq.pool_index == 1) v.ever_standby = true;
            v.mig_target = -1;
            committed = true;
          }
        }
        if (committed) {
          const core::WorkerVerdict verdict = acq.pool->execute(
              acq.session, core::KernelKind::kGeneric, now, kServiceS, 1);
          if (verdict.busy) {
            v.client.on_busy(now);
          } else {
            v.client.on_served();
            remote = true;
          }
        }
      }
      if (streak_before == 0 && v.client.busy_streak() > 0 && now >= kCrashAt &&
          v.first_retry < 0.0) {
        v.first_retry = v.client.retry_at();
      }

      v.progress += tick * (remote ? kRemoteRate : kLocalRate);
      if (v.progress >= kMissionWorkS) v.done_at = now + tick;
    }
    if (all_done) break;
  }
  primary.set_fault_injector(nullptr);
}

double mean_completion(const std::vector<Vehicle>& fleet) {
  double sum = 0.0;
  int n = 0;
  for (const Vehicle& v : fleet) {
    if (v.done_at < 0.0) continue;
    sum += v.done_at;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

ScaleResult run_scale(int vehicles, double tick, uint64_t fleet_seed) {
  core::WorkerPoolConfig wc;
  wc.cores = 16;
  wc.threads = 4;
  wc.max_sessions = 512;

  auto make_fleet = [&](core::WorkerPool* primary, core::WorkerPool* standby) {
    std::vector<Vehicle> fleet;
    fleet.reserve(static_cast<size_t>(vehicles));
    for (int v = 0; v < vehicles; ++v) {
      fleet.emplace_back(primary, standby,
                         vehicle_seed(fleet_seed, static_cast<uint32_t>(v)),
                         "lgv-" + std::to_string(v));
    }
    return fleet;
  };

  // Fault-free baseline: same fleet, same pools, no schedule.
  core::WorkerPool clean_primary(wc);
  core::WorkerPool clean_standby(wc);
  std::vector<Vehicle> clean = make_fleet(&clean_primary, &clean_standby);
  run_fleet(clean, clean_primary, tick, nullptr);

  // Chaos run: partition → crash → degraded restart (every pool fault kind).
  const sim::FaultInjector inj(sim::make_pool_chaos_schedule(
      kCrashAt, kCrashS, kPartitionFrac, wc.cores / 2, 5.0));
  core::WorkerPool primary(wc);
  core::WorkerPool standby(wc);
  std::vector<Vehicle> fleet = make_fleet(&primary, &standby);

  // Establish every session before the faults bite, then note which initial
  // sessions the partition window will cut — the selective-failover cohort.
  for (Vehicle& v : fleet) (void)v.client.acquire(0.0);
  ScaleResult r;
  r.vehicles = vehicles;
  for (Vehicle& v : fleet) {
    if (inj.session_partitioned(v.client.session(0), kCrashAt - 2.0)) {
      ++r.partitioned;
    }
  }

  run_fleet(fleet, primary, tick, &inj);

  std::set<double> retries;
  int stormed = 0;
  for (const Vehicle& v : fleet) {
    if (v.done_at >= 0.0) ++r.completed;
    if (v.ever_standby) ++r.standby_absorbed;
    r.failovers += v.client.failovers();
    r.breaker_opens += v.client.breaker_opens();
    if (v.first_retry >= 0.0) {
      ++stormed;
      retries.insert(v.first_retry);
    }
  }
  r.clean_mean_s = mean_completion(clean);
  r.chaos_mean_s = mean_completion(fleet);
  r.inflation = r.clean_mean_s > 0.0 ? r.chaos_mean_s / r.clean_mean_s : 0.0;
  r.busy_bounces = primary.busy_rejects() + standby.busy_rejects();
  r.primary_crashes = primary.pool_crashes();
  r.desync_fraction =
      stormed > 0
          ? static_cast<double>(retries.size()) / static_cast<double>(stormed)
          : 0.0;
  return r;
}

// ---- integrity leg ----------------------------------------------------------
struct IntegrityResult {
  int missions = 0;
  int successes = 0;
  uint64_t pool_failovers = 0;
  uint64_t failover_migrations = 0;
  uint64_t failovers_aborted = 0;
  uint64_t frames_rejected = 0;
  uint64_t busy_fallbacks_vehicles = 0;  ///< Σ per-vehicle counters
  uint64_t busy_fallbacks_pools = 0;     ///< Σ pool aggregates
  bool accounting_invariant = false;
  double flight_recorder_dumps = 0.0;  ///< trigger=pool_failover
};

IntegrityResult run_integrity() {
  core::WorkerPoolConfig wc;
  wc.cores = 8;
  wc.threads = 4;
  core::WorkerPool primary(wc);
  core::WorkerPool standby(wc);

  // The primary dies mid-mission and never comes back.
  sim::FaultSchedule faults;
  faults.add(sim::FaultKind::kPoolCrash, 5.0, 1e6);

  auto config = [&](int index) {
    core::MissionConfig cfg;
    cfg.rollout_samples = 200;
    cfg.slam_particles = 10;
    cfg.timeout = 600.0;
    cfg.vehicle_index = index;
    cfg.worker_pool = &primary;
    cfg.standby_pool = &standby;
    cfg.faults = faults;
    return cfg;
  };
  const core::DeploymentPlan plan =
      core::offload_plan("cloud_4t", platform::Host::kCloudServer, 4,
                         core::WorkloadKind::kNavigationWithMap);
  core::MissionRunner v0(sim::make_fleet_scenario(0, 2), plan, config(0));
  core::MissionRunner v1(sim::make_fleet_scenario(1, 2), plan, config(1));
  primary.set_fault_injector(v0.runtime().fault_injector());

  v0.start();
  v1.start();
  bool r0 = true, r1 = true;
  while (r0 || r1) {
    if (r0) r0 = v0.step();
    if (r1) r1 = v1.step();
  }
  const core::MissionReport m0 = v0.finalize();
  const core::MissionReport m1 = v1.finalize();

  IntegrityResult r;
  r.missions = 2;
  r.successes = (m0.success ? 1 : 0) + (m1.success ? 1 : 0);
  r.pool_failovers = m0.pool_failovers + m1.pool_failovers;
  r.failover_migrations = v0.runtime().switcher().stats().failover_migrations +
                          v1.runtime().switcher().stats().failover_migrations;
  r.failovers_aborted =
      v0.runtime().failovers_aborted() + v1.runtime().failovers_aborted();
  r.frames_rejected = m0.network.frames_rejected + m1.network.frames_rejected;
  r.busy_fallbacks_vehicles = m0.busy_fallbacks + m1.busy_fallbacks;
  r.busy_fallbacks_pools = primary.busy_fallbacks() + standby.busy_fallbacks();
  r.accounting_invariant = r.busy_fallbacks_vehicles == r.busy_fallbacks_pools;
  if (v0.runtime().telemetry() != nullptr) {
    r.flight_recorder_dumps =
        v0.runtime()
            .telemetry()
            ->metrics()
            .counter("flight_recorder_dumps_total", {{"trigger", "pool_failover"}})
            .value();
  }
  return r;
}

void write_json(const std::vector<ScaleResult>& scales, int storm_vehicles,
                size_t distinct_schedules, const IntegrityResult& integ,
                bool smoke, bool all_complete, bool inflation_bounded,
                bool standby_absorbs, bool no_torn_state, bool desynchronized) {
  std::ofstream f("BENCH_fleet_chaos.json");
  f << "{\n  \"bench\": \"fleet_chaos\",\n";
  f << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  f << "  \"retry_storm\": {\"vehicles\": " << storm_vehicles
    << ", \"distinct_schedules\": " << distinct_schedules << "},\n";
  f << "  \"scales\": [\n";
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleResult& r = scales[i];
    f << "    {\"vehicles\": " << r.vehicles << ", \"completed\": " << r.completed
      << ", \"clean_mean_s\": " << r.clean_mean_s
      << ", \"chaos_mean_s\": " << r.chaos_mean_s
      << ", \"inflation\": " << r.inflation
      << ", \"partitioned\": " << r.partitioned
      << ", \"standby_absorbed\": " << r.standby_absorbed
      << ", \"failovers\": " << r.failovers
      << ", \"breaker_opens\": " << r.breaker_opens
      << ", \"busy_bounces\": " << r.busy_bounces
      << ", \"primary_crashes\": " << r.primary_crashes
      << ", \"desync_fraction\": " << r.desync_fraction << "}"
      << (i + 1 < scales.size() ? ",\n" : "\n");
  }
  f << "  ],\n  \"integrity\": {\"missions\": " << integ.missions
    << ", \"successes\": " << integ.successes
    << ", \"pool_failovers\": " << integ.pool_failovers
    << ", \"failover_migrations\": " << integ.failover_migrations
    << ", \"failovers_aborted\": " << integ.failovers_aborted
    << ", \"frames_rejected\": " << integ.frames_rejected
    << ", \"accounting_invariant\": "
    << (integ.accounting_invariant ? "true" : "false")
    << ", \"flight_recorder_dumps\": " << integ.flight_recorder_dumps << "},\n";
  f << "  \"acceptance\": {\n";
  f << "    \"all_missions_complete\": " << (all_complete ? "true" : "false")
    << ",\n";
  f << "    \"inflation_bounded\": " << (inflation_bounded ? "true" : "false")
    << ",\n";
  f << "    \"standby_absorbs_partitioned\": "
    << (standby_absorbs ? "true" : "false") << ",\n";
  f << "    \"no_torn_state\": " << (no_torn_state ? "true" : "false") << ",\n";
  f << "    \"retry_storm_desynchronized\": "
    << (desynchronized ? "true" : "false") << "\n";
  f << "  }\n}\n";
  std::printf("wrote BENCH_fleet_chaos.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double tick = smoke ? 0.1 : 0.05;
  const uint64_t fleet_seed = 0xc4a05;

  bench::print_title(
      std::string("Fleet chaos: pool crash / partition / degraded restart") +
      (smoke ? " [smoke]" : ""));

  // ---- leg 1: retry storm ---------------------------------------------------
  constexpr int kStormVehicles = 128;
  constexpr uint32_t kStormAttempts = 6;
  std::set<std::vector<double>> schedules;
  for (int v = 0; v < kStormVehicles; ++v) {
    std::vector<double> sched;
    for (uint32_t a = 1; a <= kStormAttempts; ++a) {
      sched.push_back(core::busy_backoff_delay(
          vehicle_seed(fleet_seed, static_cast<uint32_t>(v)), a, 0.05, 2.0));
    }
    schedules.insert(std::move(sched));
  }
  const bool storm_distinct = schedules.size() == kStormVehicles;
  bench::print_subtitle("retry storm: jittered backoff schedules");
  std::printf("%d vehicles x %u attempts: %zu distinct schedules (%s)\n",
              kStormVehicles, kStormAttempts, schedules.size(),
              storm_distinct ? "desynchronized" : "COLLISION");

  // ---- leg 2: synthetic chaos sweep -----------------------------------------
  std::vector<ScaleResult> scales;
  for (const int vehicles : {8, 32, 128}) {
    scales.push_back(run_scale(vehicles, tick, fleet_seed));
  }
  bench::print_subtitle("pool chaos sweep (virtual time)");
  std::printf("%9s %10s %11s %11s %10s %12s %9s %10s %8s\n", "vehicles", "done",
              "clean", "chaos", "inflate", "partitioned", "standby", "failover",
              "desync");
  for (const ScaleResult& r : scales) {
    std::printf("%9d %7d/%-2d %11s %11s %9.2fx %12d %9d %10llu %7.0f%%\n",
                r.vehicles, r.completed, r.vehicles,
                bench::fmt_time(r.clean_mean_s).c_str(),
                bench::fmt_time(r.chaos_mean_s).c_str(), r.inflation,
                r.partitioned, r.standby_absorbed,
                static_cast<unsigned long long>(r.failovers),
                r.desync_fraction * 100.0);
  }

  // ---- leg 3: full-mission integrity ----------------------------------------
  bench::print_subtitle("integrity: 2 MissionRunners, primary dies at t=5");
  const IntegrityResult integ = run_integrity();
  std::printf("missions %d/%d, failovers %llu (aborted %llu), "
              "failover migrations %llu, frames rejected %llu, "
              "accounting invariant %s, flight dumps %.0f\n",
              integ.successes, integ.missions,
              static_cast<unsigned long long>(integ.pool_failovers),
              static_cast<unsigned long long>(integ.failovers_aborted),
              static_cast<unsigned long long>(integ.failover_migrations),
              static_cast<unsigned long long>(integ.frames_rejected),
              integ.accounting_invariant ? "holds" : "BROKEN",
              integ.flight_recorder_dumps);

  // ---- acceptance -----------------------------------------------------------
  bool all_complete = integ.successes == integ.missions;
  bool inflation_bounded = true;
  bool standby_absorbs = true;
  bool desynchronized = storm_distinct;
  for (const ScaleResult& r : scales) {
    all_complete &= r.completed == r.vehicles;
    inflation_bounded &= r.inflation > 0.0 && r.inflation <= kInflationBound;
    standby_absorbs &=
        r.standby_absorbed >= r.partitioned && r.standby_absorbed > 0;
    // The post-crash storm must spread: nearly every bounced vehicle retries
    // at its own jittered instant (exact collisions are astronomically rare).
    desynchronized &= r.desync_fraction >= 0.9;
  }
  const bool no_torn_state = integ.successes == integ.missions &&
                             integ.frames_rejected == 0 &&
                             integ.failover_migrations >= 1 &&
                             integ.accounting_invariant;

  bench::print_subtitle("acceptance");
  std::printf("all missions complete:               %s\n",
              all_complete ? "yes" : "NO");
  std::printf("completion inflation <= %.1fx:        %s\n", kInflationBound,
              inflation_bounded ? "yes" : "NO");
  std::printf("standby absorbs partitioned cohort:  %s\n",
              standby_absorbs ? "yes" : "NO");
  std::printf("no torn state / integrity rejects:   %s\n",
              no_torn_state ? "yes" : "NO");
  std::printf("retry storm desynchronized:          %s\n",
              desynchronized ? "yes" : "NO");

  write_json(scales, kStormVehicles, schedules.size(), integ, smoke,
             all_complete, inflation_bounded, standby_absorbs, no_torn_state,
             desynchronized);

  const bool ok = all_complete && inflation_bounded && standby_absorbs &&
                  no_torn_state && desynchronized;
  if (!ok) std::printf("\nACCEPTANCE FAILED\n");
  return ok ? 0 : 1;
}
