// Fig. 11 (and Fig. 7): network latency and bandwidth of UDP transmission in
// a wireless network while the LGV drives from point A (near the WAP) to
// point C (in the unstable area) and back. A 5 Hz velocity-message stream
// flows from the remote Path Tracking node; we log the measured latency, the
// 1 s-window receive bandwidth (Algorithm 2's r_t), the signal direction
// (d_t), and the resulting placement decisions with threshold r = 4 Hz.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/network_quality.h"
#include "core/profiler.h"
#include "net/kernel_buffer.h"
#include "net/link.h"
#include "net/meters.h"

using namespace lgv;

namespace {

void fig7_demo() {
  bench::print_subtitle(
      "Fig. 7 — UDP kernel-buffer pattern under a weak signal");
  net::ChannelConfig cfg;
  cfg.wap_position = {0.0, 0.0};
  cfg.shadowing_sigma_db = 0.0;
  net::WirelessChannel ch(cfg);
  net::UdpLink link(&ch, /*kernel_buffer_capacity=*/2);

  // Packet 1 near the WAP: transmitted normally.
  ch.set_robot_position({2.0, 0.0});
  link.send(std::vector<uint8_t>(48, 0), 0.0);
  link.step(0.0);
  // Signal goes weak: the driver blocks; packets 2-3 fill the buffer,
  // packets 4-5 are silently discarded.
  ch.set_robot_position({500.0, 0.0});
  for (int i = 2; i <= 5; ++i) {
    link.send(std::vector<uint8_t>(48, 0), 0.2 * (i - 1));
    link.step(0.2 * (i - 1));
  }
  std::printf("after 5 sends under weak signal: buffered=%zu, discarded=%llu\n",
              link.kernel_buffer().size(),
              static_cast<unsigned long long>(link.stats().dropped_buffer));
  // Signal recovers: survivors drain.
  ch.set_robot_position({2.0, 0.0});
  link.step(1.2);
  const auto delivered = link.poll_delivered(10.0);
  std::printf("delivered after recovery: %zu of 5 sent ", delivered.size() + 1);
  std::printf("(packet 1 + buffered 2-3; 4-5 were lost with NO latency trace)\n");
}

}  // namespace

int main() {
  bench::print_title(
      "Fig. 11 — latency & bandwidth of a 5 Hz UDP stream on an A→C→A tour");

  fig7_demo();

  // ---- the A→C→A tour ----
  net::ChannelConfig cfg;
  cfg.wap_position = {0.0, 0.0};
  cfg.path_loss_exponent = 3.4;  // outage ≈ 21 m: C sits past it
  net::WirelessChannel ch(cfg, 0x5ca1e);
  net::UdpLink downlink(&ch, 4);
  core::Profiler profiler({}, cfg.wap_position);
  core::NetworkQualityController alg2({}, core::VdpPlacement::kRemote);

  const double kTotal = 180.0;   // A→C in 90 s, back in 90 s
  const double kMaxDist = 26.0;  // point C
  const double dt = 0.01;
  double next_send = 0.0;
  double last_latency_ms = 0.0;

  bench::print_subtitle(
      "time series (1 Hz): latency is the LAST OBSERVED value — note it stays"
      " flat in the outage while bandwidth collapses)");
  std::printf("%6s %8s %12s %11s %10s %9s\n", "t(s)", "dist(m)", "latency(ms)",
              "bandwidth", "direction", "placement");

  int next_report = 0;
  for (double t = 0.0; t < kTotal; t += dt) {
    const double phase = t < kTotal / 2 ? t / (kTotal / 2) : 2.0 - t / (kTotal / 2);
    const Point2D pos{1.0 + (kMaxDist - 1.0) * phase, 0.0};
    ch.set_robot_position(pos);
    profiler.on_robot_position(pos);

    if (t >= next_send) {
      next_send += 0.2;  // 5 Hz sender (fixed rate, as in the paper)
      downlink.send(std::vector<uint8_t>(48, 0), t);
    }
    downlink.step(t);
    for (const net::Packet& p : downlink.poll_delivered(t)) {
      profiler.on_stream_packet(t);
      last_latency_ms = (p.deliver_time - p.send_time) * 1e3;
    }

    if (t >= next_report) {
      ++next_report;
      const core::NetworkObservation obs = profiler.observe(t);
      const core::VdpPlacement placement = alg2.update(obs);
      if (next_report % 5 == 1) {  // print every 5 s to keep output readable
        std::printf("%6.0f %8.1f %12.2f %11.1f %10.3f %9s\n", t,
                    ch.distance_to_wap(), last_latency_ms, obs.bandwidth_hz,
                    obs.signal_direction,
                    placement == core::VdpPlacement::kRemote ? "remote" : "local");
      }
    }
  }

  bench::print_subtitle("summary");
  const auto& stats = downlink.stats();
  std::printf("sent=%llu delivered=%llu buffer_drops=%llu channel_drops=%llu\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped_buffer),
              static_cast<unsigned long long>(stats.dropped_channel));
  std::printf("Algorithm 2 placement switches: %llu (expected 2: remote→local on\n"
              "the way out, local→remote on the way back — threshold 4 Hz of a\n"
              "5 Hz stream, direction sign flips at point C)\n",
              static_cast<unsigned long long>(alg2.switches()));
  return 0;
}
