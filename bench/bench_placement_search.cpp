// Placement-search benchmark (docs/placement.md): the headline artifact for
// the multi-tier placement engine. Three measured claims, each gated by
// tools/check_bench_regression against bench/baselines:
//
//  1. Incremental evaluation — preview_move (O(degree) re-pricing of one
//     node move) vs full_cost (O(|DAG| + |E| + H²) reference) across random
//     layered DAGs of 64–512 nodes on the three-tier topology. Acceptance:
//     ≥ 20× per-evaluation speedup at every size.
//
//  2. Solve cost — a full WOA + local-search solve of the 64-node DAG, priced
//     by the engine's deterministic cycle model on the vehicle platform
//     (what an adjustment epoch would actually pay on the RPi). Acceptance:
//     < 10 ms modeled; the bounded reoptimize() re-trigger is cheaper still.
//
//  3. Plan quality — the Fig. 2 pipeline DAG on three three-tier scenarios
//     (healthy WLAN, constrained WLAN, congested WLAN + long WAN). The seed
//     is Algorithm 1's two-host answer (ECN nodes → cloud). Acceptance: the
//     engine is never worse than the seed anywhere, and strictly better on
//     at least one scenario (the gateway tier must earn its keep).
//
// Artifacts: BENCH_placement_search.json (the gated numbers). Exit status is
// the acceptance verdict, so CI's placement-bench smoke job fails loudly.
//
// Usage: bench_placement_search [--smoke]   (--smoke: fewer timing reps,
// same sizes, same acceptance gates)
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/host_topology.h"
#include "core/placement_engine.h"
#include "platform/platform_spec.h"

using namespace lgv;
using core::HostTopology;
using core::PlacementCandidate;
using core::PlacementDag;
using core::PlacementEngine;
using core::PlacementEngineConfig;
using core::PlacementResult;

namespace {

struct BenchRng {
  uint64_t state;
  explicit BenchRng(uint64_t seed) : state(seed) {}
  double next01() {
    state = splitmix64(state);
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
  uint32_t index(uint32_t n) { return static_cast<uint32_t>(next01() * n) % n; }
};

/// Layered random DAG (edges point forward, fan-in 3 per node — the shape of
/// a sensor-fusion pipeline scaled past the paper's six nodes).
PlacementDag random_dag(BenchRng& rng, size_t nodes) {
  PlacementDag d;
  for (size_t i = 0; i < nodes; ++i) {
    std::string name = "n";
    name += std::to_string(i);
    const uint8_t pin = i == 0 ? uint8_t{0} : PlacementDag::kFreeHost;
    d.add_node(std::move(name), 1e5 + rng.next01() * 5e6,
               rng.next01() < 0.3 ? rng.next01() * 3e7 : 0.0, pin);
  }
  for (size_t i = 1; i < nodes; ++i) {
    for (int e = 0; e < 3; ++e) {
      d.add_edge(static_cast<int>(rng.index(static_cast<uint32_t>(i))),
                 static_cast<int>(i), 32.0 + rng.next01() * 8192.0,
                 0.5 + rng.next01() * 9.5);
    }
  }
  return d;
}

struct IncrementalRow {
  size_t nodes = 0;
  size_t edges = 0;
  double preview_ns = 0.0;
  double full_ns = 0.0;
  double speedup = 0.0;
};

/// Wall-clock per-evaluation cost of preview_move vs full_cost on one engine.
IncrementalRow measure_incremental(size_t nodes, int reps, uint64_t seed) {
  BenchRng rng(seed);
  PlacementDag dag = random_dag(rng, nodes);
  PlacementEngine engine(std::move(dag), HostTopology::three_tier(8, 48, 2.5e6, 0.005),
                         {});
  const uint32_t hosts = static_cast<uint32_t>(engine.topology().host_count());
  const size_t n = engine.dag().node_count();

  std::vector<uint8_t> assignment(n, 0);
  for (size_t i = 1; i < n; ++i) assignment[i] = static_cast<uint8_t>(rng.index(hosts));
  PlacementCandidate c = engine.make_candidate(assignment);

  // Pre-draw the move set so the timed loops measure pricing, not RNG.
  constexpr size_t kMoves = 4096;
  std::vector<std::pair<int, uint8_t>> moves(kMoves);
  for (auto& m : moves) {
    m.first = 1 + static_cast<int>(rng.index(static_cast<uint32_t>(n - 1)));
    m.second = static_cast<uint8_t>(rng.index(hosts));
  }

  double sink = 0.0;
  const int preview_loops = reps;
  const double preview_s = bench::time_median(5, [&] {
    for (int l = 0; l < preview_loops; ++l) {
      for (const auto& m : moves) {
        sink += engine.preview_move(c, m.first, m.second).total();
      }
    }
  });

  // full_cost walks the whole DAG; fewer evaluations give the same per-op
  // resolution at a fraction of the wall time.
  const size_t full_evals = std::max<size_t>(64, kMoves / 16);
  const double full_s = bench::time_median(5, [&] {
    for (size_t i = 0; i < full_evals; ++i) {
      assignment[moves[i % kMoves].first] = moves[i % kMoves].second;
      sink += engine.full_cost(assignment);
    }
  });
  if (sink == 1e308) std::abort();  // keep the evaluations honest

  IncrementalRow row;
  row.nodes = n;
  row.edges = engine.dag().edges.size();
  row.preview_ns = preview_s / static_cast<double>(kMoves * preview_loops) * 1e9;
  row.full_ns = full_s / static_cast<double>(full_evals) * 1e9;
  row.speedup = row.preview_ns > 0.0 ? row.full_ns / row.preview_ns : 0.0;
  return row;
}

/// Algorithm 1's two-host shape on an N-host topology: ECN nodes (the ones
/// with parallelizable cycles) on the cloud host, everything else local.
std::vector<uint8_t> alg1_seed(const PlacementEngine& engine) {
  const PlacementDag& dag = engine.dag();
  std::vector<uint8_t> seed(dag.node_count(), 0);
  const uint8_t cloud = static_cast<uint8_t>(engine.topology().host_count() - 1);
  for (size_t i = 0; i < dag.node_count(); ++i) {
    if (dag.pinned[i] != PlacementDag::kFreeHost) {
      seed[i] = dag.pinned[i];
    } else if (dag.parallel_cycles[i] > 0.0) {
      seed[i] = cloud;
    }
  }
  return seed;
}

struct ScenarioRow {
  std::string name;
  double seed_cost_s = 0.0;
  double cost_s = 0.0;
  bool never_worse = false;
  bool improved = false;
};

ScenarioRow run_scenario(const std::string& name, HostTopology topology) {
  PlacementEngine engine(core::make_pipeline_dag(), std::move(topology), {});
  const PlacementResult r = engine.solve(alg1_seed(engine));
  ScenarioRow row;
  row.name = name;
  row.seed_cost_s = r.seed_cost_s;
  row.cost_s = r.cost_s;
  row.never_worse = r.cost_s <= r.seed_cost_s + 1e-12;
  row.improved = r.improved;
  return row;
}

void write_json(const std::vector<IncrementalRow>& rows, const PlacementResult& solve,
                double reoptimize_modeled_s, const std::vector<ScenarioRow>& scenarios,
                bool smoke, bool speedup_ok, bool solve_ok, bool never_worse,
                bool improves_some) {
  std::ofstream f("BENCH_placement_search.json");
  f << "{\n  \"bench\": \"placement_search\",\n";
  f << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  f << "  \"incremental\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const IncrementalRow& r = rows[i];
    f << "    {\"nodes\": " << r.nodes << ", \"edges\": " << r.edges
      << ", \"preview_ns\": " << r.preview_ns << ", \"full_ns\": " << r.full_ns
      << ", \"speedup\": " << r.speedup << "}"
      << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  f << "  ],\n";
  f << "  \"solve\": {\"nodes\": 64, \"modeled_solve_ms\": "
    << solve.modeled_solve_s * 1e3
    << ", \"reoptimize_modeled_ms\": " << reoptimize_modeled_s * 1e3
    << ", \"delta_evals\": " << solve.delta_evals
    << ", \"full_evals\": " << solve.full_evals << "},\n";
  f << "  \"scenarios\": [\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioRow& s = scenarios[i];
    f << "    {\"name\": \"" << s.name << "\", \"seed_cost_s\": " << s.seed_cost_s
      << ", \"cost_s\": " << s.cost_s
      << ", \"never_worse\": " << (s.never_worse ? "true" : "false")
      << ", \"improved\": " << (s.improved ? "true" : "false") << "}"
      << (i + 1 < scenarios.size() ? ",\n" : "\n");
  }
  f << "  ],\n  \"acceptance\": {\n";
  f << "    \"incremental_speedup_20x\": " << (speedup_ok ? "true" : "false") << ",\n";
  f << "    \"solve_under_10ms_modeled\": " << (solve_ok ? "true" : "false") << ",\n";
  f << "    \"never_worse_than_alg1\": " << (never_worse ? "true" : "false") << ",\n";
  f << "    \"improves_some_three_tier\": " << (improves_some ? "true" : "false")
    << "\n";
  f << "  }\n}\n";
  std::printf("wrote BENCH_placement_search.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_title(
      std::string("Multi-tier placement: incremental kernel + whale search") +
      (smoke ? " [smoke]" : ""));

  // ---- 1. incremental vs full evaluation ---------------------------------
  bench::print_subtitle("incremental preview_move vs full re-pricing (wall clock)");
  const std::vector<size_t> sizes = {64, 128, 256, 512};
  std::vector<IncrementalRow> rows;
  std::printf("%8s %8s %14s %14s %10s\n", "nodes", "edges", "preview", "full",
              "speedup");
  for (const size_t nodes : sizes) {
    rows.push_back(measure_incremental(nodes, smoke ? 6 : 16, 0xbe9c4 + nodes));
    const IncrementalRow& r = rows.back();
    std::printf("%8zu %8zu %11.1f ns %11.1f ns %9.1fx\n", r.nodes, r.edges,
                r.preview_ns, r.full_ns, r.speedup);
  }
  const double min_speedup =
      std::min_element(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.speedup < b.speedup;
      })->speedup;
  const bool speedup_ok = min_speedup >= 20.0;

  // ---- 2. modeled solve cost on the vehicle ------------------------------
  bench::print_subtitle("solve cost, modeled on the vehicle platform (deterministic)");
  BenchRng rng(0x5eed);
  PlacementDag dag64 = random_dag(rng, 64);
  PlacementEngine engine64(std::move(dag64),
                           HostTopology::three_tier(8, 48, 2.5e6, 0.005), {});
  std::vector<uint8_t> seed64(engine64.dag().node_count(), 0);
  const PlacementResult solve64 = engine64.solve(seed64);
  const PlacementResult reopt64 = engine64.reoptimize();
  std::printf("full solve   (64 nodes): %8.3f ms modeled  (%" PRIu64
              " delta evals, %" PRIu64 " full evals)\n",
              solve64.modeled_solve_s * 1e3, solve64.delta_evals, solve64.full_evals);
  std::printf("reoptimize   (64 nodes): %8.3f ms modeled  (%" PRIu64
              " delta evals)\n",
              reopt64.modeled_solve_s * 1e3, reopt64.delta_evals);
  const bool solve_ok =
      solve64.modeled_solve_s < 10e-3 && reopt64.modeled_solve_s < solve64.modeled_solve_s;

  // ---- 3. plan quality vs Algorithm 1 ------------------------------------
  bench::print_subtitle("pipeline DAG, three-tier scenarios vs Algorithm 1 seed");
  std::vector<ScenarioRow> scenarios;
  // Healthy WLAN: offloading is cheap, Algorithm 1's all-to-cloud answer is
  // already near-optimal — the engine must simply not lose to it.
  scenarios.push_back(
      run_scenario("healthy_wlan", HostTopology::three_tier(8, 48, 2.5e6, 0.005)));
  // Constrained WLAN: the two-host plan saturates the uplink; splitting
  // across the gateway tier should win.
  scenarios.push_back(
      run_scenario("constrained_wlan", HostTopology::three_tier(8, 48, 6.0e5, 0.08)));
  // Congested WLAN + long WAN: cloud RTT breaches the control deadline, the
  // gateway is the only viable remote tier.
  scenarios.push_back(run_scenario(
      "congested_wan", HostTopology::three_tier(8, 48, 1.0e6, 0.06, 0.05, 0.08)));
  std::printf("%18s %14s %14s %8s %10s\n", "scenario", "alg1 cost", "engine cost",
              "worse?", "improved");
  bool never_worse = true;
  bool improves_some = false;
  for (const ScenarioRow& s : scenarios) {
    never_worse &= s.never_worse;
    improves_some |= s.improved;
    std::printf("%18s %13.4fs %13.4fs %8s %10s\n", s.name.c_str(), s.seed_cost_s,
                s.cost_s, s.never_worse ? "no" : "YES", s.improved ? "yes" : "no");
  }

  // ---- acceptance ---------------------------------------------------------
  bench::print_subtitle("acceptance");
  std::printf("incremental >= 20x everywhere:     %s (min %.1fx)\n",
              speedup_ok ? "yes" : "NO", min_speedup);
  std::printf("64-node solve < 10 ms modeled:     %s (%.3f ms)\n",
              solve_ok ? "yes" : "NO", solve64.modeled_solve_s * 1e3);
  std::printf("never worse than Algorithm 1:      %s\n", never_worse ? "yes" : "NO");
  std::printf("beats Algorithm 1 somewhere:       %s\n", improves_some ? "yes" : "NO");

  write_json(rows, solve64, reopt64.modeled_solve_s, scenarios, smoke, speedup_ok,
             solve_ok, never_worse, improves_some);

  const bool ok = speedup_ok && solve_ok && never_worse && improves_some;
  if (!ok) std::printf("\nACCEPTANCE FAILED\n");
  return ok ? 0 : 1;
}
