// Shared formatting helpers for the experiment harnesses. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md's experiment
// index) and prints it as aligned text plus, where useful, CSV-ish series
// that can be piped into a plotting tool.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lgv::bench {

inline void print_title(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_subtitle(const std::string& s) {
  std::printf("\n--- %s ---\n", s.c_str());
}

/// Pretty seconds: ms below 1 s, s above.
inline std::string fmt_time(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Print a labeled grid: rows × cols of strings with a header.
inline void print_grid(const std::string& corner, const std::vector<std::string>& col_names,
                       const std::vector<std::string>& row_names,
                       const std::vector<std::vector<std::string>>& cells) {
  std::printf("%-14s", corner.c_str());
  for (const auto& c : col_names) std::printf("%12s", c.c_str());
  std::printf("\n");
  for (size_t r = 0; r < row_names.size(); ++r) {
    std::printf("%-14s", row_names[r].c_str());
    for (size_t c = 0; c < cells[r].size(); ++c) {
      std::printf("%12s", cells[r][c].c_str());
    }
    std::printf("\n");
  }
}

}  // namespace lgv::bench
