// Shared formatting helpers for the experiment harnesses. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md's experiment
// index) and prints it as aligned text plus, where useful, CSV-ish series
// that can be piped into a plotting tool.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/telemetry/metrics.h"

namespace lgv::bench {

/// Wall-clock stopwatch on std::chrono::steady_clock. The mission benches run
/// on virtual time (SimClock); this exists for the host-performance legs that
/// measure the real kernels (BENCH_kernel_wallclock.json) where elapsed
/// machine time IS the result.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Median of a sample set (by value; the input is copied and sorted).
/// Medians, not means: one scheduler hiccup in N runs must not move the
/// reported number.
inline double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

/// Run `fn` `runs` times and return the median wall-clock seconds of one run.
template <typename Fn>
double time_median(int runs, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    WallTimer t;
    fn();
    samples.push_back(t.seconds());
  }
  return median(std::move(samples));
}

inline void print_title(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_subtitle(const std::string& s) {
  std::printf("\n--- %s ---\n", s.c_str());
}

/// Pretty seconds: ms below 1 s, s above.
inline std::string fmt_time(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Accumulates per-run metric snapshots and writes them next to the bench's
/// stdout table as `BENCH_<name>_telemetry.json`:
///   {"bench": "<name>", "runs": {"<label>": {<series...>}, ...}}
/// Each run object is the telemetry::write_metrics_json format, so the same
/// offline tooling reads mission `_metrics.json` files and bench sidecars.
class TelemetrySidecar {
 public:
  explicit TelemetrySidecar(std::string bench_name) : name_(std::move(bench_name)) {}

  void add(std::string run_label, telemetry::MetricsSnapshot snapshot) {
    runs_.emplace_back(std::move(run_label), std::move(snapshot));
  }

  std::string path() const { return "BENCH_" + name_ + "_telemetry.json"; }

  /// Write the sidecar; prints where it went. Returns false on I/O failure.
  bool write() const {
    std::ofstream f(path());
    if (!f) return false;
    f << "{\n  \"bench\": \"" << name_ << "\",\n  \"runs\": {\n";
    for (size_t i = 0; i < runs_.size(); ++i) {
      f << "    \"" << runs_[i].first << "\": ";
      telemetry::write_metrics_json(f, runs_[i].second);
      f << (i + 1 < runs_.size() ? ",\n" : "\n");
    }
    f << "  }\n}\n";
    if (f) std::printf("telemetry sidecar: %s (%zu runs)\n", path().c_str(), runs_.size());
    return static_cast<bool>(f);
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, telemetry::MetricsSnapshot>> runs_;
};

/// Print a labeled grid: rows × cols of strings with a header.
inline void print_grid(const std::string& corner, const std::vector<std::string>& col_names,
                       const std::vector<std::string>& row_names,
                       const std::vector<std::vector<std::string>>& cells) {
  std::printf("%-14s", corner.c_str());
  for (const auto& c : col_names) std::printf("%12s", c.c_str());
  std::printf("\n");
  for (size_t r = 0; r < row_names.size(); ++r) {
    std::printf("%-14s", row_names[r].c_str());
    for (size_t c = 0; c < cells[r].size(); ++c) {
      std::printf("%12s", cells[r][c].c_str());
    }
    std::printf("\n");
  }
}

}  // namespace lgv::bench
