// Baseline comparison (§X related work): access-point selection vs the
// paper's Algorithm 2. A 5 Hz UDP stream runs while the client tours away
// from WAP A and back. Three conditions:
//   (1) two live WAPs, AP-selection baseline — roaming keeps the link alive;
//   (2) ONE WAP only, AP-selection baseline — nothing to roam to, the stream
//       dies in the dead zone (the paper's critique);
//   (3) one WAP + Algorithm 2 — the link still dies, but computation moves
//       home so the *robot* keeps its command stream locally.
// Metric: fraction of the tour with a live command source.
#include <cstdio>

#include "bench_util.h"
#include "core/network_quality.h"
#include "core/profiler.h"
#include "net/ap_selector.h"
#include "net/link.h"

using namespace lgv;

namespace {

constexpr double kTour = 160.0;
constexpr double kMaxDist = 24.0;
constexpr double kDt = 0.01;

Point2D tour_position(double t) {
  const double phase = t < kTour / 2 ? t / (kTour / 2) : 2.0 - t / (kTour / 2);
  return {1.0 + (kMaxDist - 1.0) * phase, 0.0};
}

net::ChannelConfig wap_config(Point2D pos) {
  net::ChannelConfig cfg;
  cfg.wap_position = pos;
  cfg.path_loss_exponent = 3.4;  // dead zone ≈ 21 m from a WAP
  return cfg;
}

struct Result {
  double live_fraction = 0.0;
  uint64_t handoffs = 0;
  uint64_t switches = 0;
};

/// Run the tour with an AP-selection client; `second_wap` places a second
/// access point near the far end of the tour.
Result run_ap_selection(bool second_wap) {
  // The selector decides the association; one UDP link per candidate AP
  // carries the stream while that AP is active (mirrored channels so the
  // links observe exactly what the selector's candidates do).
  net::ApSelector fresh;
  fresh.add_access_point(wap_config({0.0, 0.0}), 0xa1);
  if (second_wap) fresh.add_access_point(wap_config({25.0, 0.0}), 0xa2);

  net::WirelessChannel ch_a(wap_config({0.0, 0.0}), 0xa1);
  net::WirelessChannel ch_b(wap_config({25.0, 0.0}), 0xa2);
  net::UdpLink link_a(&ch_a, 4), link_b(&ch_b, 4);

  double next_send = 0.0;
  double last_rx = -1e9;
  int live_ticks = 0, ticks = 0;
  Result out;
  for (double t = 0.0; t < kTour; t += kDt) {
    const Point2D pos = tour_position(t);
    ch_a.set_robot_position(pos);
    ch_b.set_robot_position(pos);
    fresh.update(pos, t);
    net::UdpLink& link = (fresh.active_index() == 0 || !second_wap) ? link_a : link_b;
    if (t >= next_send) {
      next_send += 0.2;
      if (!fresh.in_handoff(t)) link.send(std::vector<uint8_t>(48, 0), t);
    }
    link_a.step(t);
    link_b.step(t);
    for (const auto& p : link_a.poll_delivered(t)) last_rx = p.deliver_time;
    for (const auto& p : link_b.poll_delivered(t)) last_rx = p.deliver_time;
    ++ticks;
    if (t - last_rx < 1.0) ++live_ticks;  // a fresh command within 1 s
  }
  out.live_fraction = static_cast<double>(live_ticks) / ticks;
  out.handoffs = fresh.handoffs();
  return out;
}

/// One WAP + Algorithm 2: when the stream dies the VDP runs locally, so the
/// command source stays live even though the link is dead.
Result run_algorithm2() {
  net::WirelessChannel ch(wap_config({0.0, 0.0}), 0xa1);
  net::UdpLink link(&ch, 4);
  core::Profiler profiler({}, {0.0, 0.0});
  core::NetworkQualityController alg2({}, core::VdpPlacement::kRemote);

  double next_send = 0.0, last_rx = -1e9, next_eval = 0.0;
  int live_ticks = 0, ticks = 0;
  Result out;
  for (double t = 0.0; t < kTour; t += kDt) {
    const Point2D pos = tour_position(t);
    ch.set_robot_position(pos);
    profiler.on_robot_position(pos);
    if (t >= next_send) {
      next_send += 0.2;
      link.send(std::vector<uint8_t>(48, 0), t);
    }
    link.step(t);
    for (const auto& p : link.poll_delivered(t)) {
      last_rx = p.deliver_time;
      profiler.on_stream_packet(t);
    }
    if (t >= next_eval) {
      next_eval += 1.0;
      alg2.update(profiler.observe(t));
    }
    ++ticks;
    // Live when the remote stream is fresh OR the VDP runs locally.
    const bool local = alg2.placement() == core::VdpPlacement::kLocal;
    if (local || t - last_rx < 1.0) ++live_ticks;
  }
  out.live_fraction = static_cast<double>(live_ticks) / ticks;
  out.switches = alg2.switches();
  return out;
}

}  // namespace

int main() {
  bench::print_title(
      "Baseline — access-point selection [63-67] vs Algorithm 2 (§X)");
  const Result two_wap = run_ap_selection(true);
  const Result one_wap = run_ap_selection(false);
  const Result alg2 = run_algorithm2();

  std::printf("%-44s %12s %10s\n", "strategy", "live-cmd %", "events");
  std::printf("%-44s %11.1f%% %7llu handoffs\n",
              "AP selection, two WAPs along the route", 100.0 * two_wap.live_fraction,
              static_cast<unsigned long long>(two_wap.handoffs));
  std::printf("%-44s %11.1f%% %7llu handoffs\n",
              "AP selection, single WAP (no alternative)",
              100.0 * one_wap.live_fraction,
              static_cast<unsigned long long>(one_wap.handoffs));
  std::printf("%-44s %11.1f%% %7llu switches\n",
              "Algorithm 2, single WAP", 100.0 * alg2.live_fraction,
              static_cast<unsigned long long>(alg2.switches));
  std::printf(
      "\nExpected: with a second WAP the baseline roams and stays live; with a\n"
      "single WAP it has nothing to roam to and goes dark in the dead zone —\n"
      "the paper's critique. Algorithm 2 needs no second link: it relocates\n"
      "the computation instead of the association.\n");
  return 0;
}
