// State-movement cost across mission progress (docs/state-sync.md). Drives a
// GMapping filter down the open scenario's scan log and, at each simulated
// migration point, serializes the full particle state three ways — raw cells,
// RLE full snapshot, and changelog-delta against the last *committed*
// migration — then replays the payload through Switcher::migrate_state to get
// the freeze the vehicle would actually feel on the wire. A second section
// times the resample copy step with copy-on-write maps versus the deep-copy
// reference (every map + likelihood field unshared each round).
//
// Acceptance shape (ISSUE 5): steady-state delta payloads at least 5x smaller
// than full snapshots, CoW resample at least 3x faster than deep copy, and
// byte-identical restored state in every mode at every point.
//
// Usage: bench_migration_payload [--smoke]   (--smoke: fewer steps, smaller
// filter, for the CI smoke leg)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/switcher.h"
#include "perception/gmapping.h"
#include "sim/scenario.h"

using namespace lgv;

namespace {

perception::GmappingConfig bench_config(int particles) {
  perception::GmappingConfig cfg;
  cfg.particles = particles;
  cfg.matcher.beam_stride = 8;
  return cfg;
}

/// Cell-exact state equality between a source filter and a restored replica.
bool states_equal(const perception::Gmapping& a, const perception::Gmapping& b) {
  if (a.particle_count() != b.particle_count()) return false;
  for (int i = 0; i < a.particle_count(); ++i) {
    const size_t k = static_cast<size_t>(i);
    if (!(a.poses()[k] == b.poses()[k]) || a.weights()[k] != b.weights()[k] ||
        a.log_weights()[k] != b.log_weights()[k]) {
      return false;
    }
    const perception::OccupancyGrid& ga = a.particles()[k].map;
    const perception::OccupancyGrid& gb = b.particles()[k].map;
    if (ga.width() != gb.width() || ga.height() != gb.height() ||
        ga.known_cells() != gb.known_cells()) {
      return false;
    }
    for (int y = 0; y < ga.height(); ++y) {
      for (int x = 0; x < ga.width(); ++x) {
        if (ga.log_odds_at({x, y}) != gb.log_odds_at({x, y})) return false;
      }
    }
  }
  return true;
}

struct ProgressPoint {
  size_t step = 0;
  size_t full_raw_bytes = 0;
  size_t full_rle_bytes = 0;
  size_t delta_bytes = 0;
  double delta_hit_ratio = 0.0;
  uint64_t grids_delta = 0;
  uint64_t fallbacks = 0;
  double stall_full_s = 0.0;
  double stall_delta_s = 0.0;
  bool restored_equal = false;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::print_title("State migration payload: full vs RLE vs changelog-delta");
  if (smoke) std::printf("(smoke mode: reduced mission)\n");

  const int particles = smoke ? 6 : 12;
  const size_t steps = smoke ? 24 : 480;
  const size_t migrate_every = 2;  // scans between committed migrations

  sim::Scenario scenario = sim::make_open_scenario();
  // Drive the waypoint loop twice: lap 1 explores, lap 2 re-traverses fully
  // mapped space — the steady state a long-lived patrol mission lives in.
  const std::vector<Point2D> lap = scenario.waypoints;
  scenario.waypoints.insert(scenario.waypoints.end(), lap.begin(), lap.end());
  const std::vector<sim::ScanLogEntry> log =
      sim::record_scan_log(scenario, 0.4, 0.2, steps);

  // A clean near-WAP link so the stall numbers isolate payload size.
  SimClock clock;
  mw::Graph graph;
  net::ChannelConfig ccfg;
  ccfg.wap_position = {0.0, 0.0};
  ccfg.shadowing_sigma_db = 0.0;
  net::WirelessChannel channel(ccfg);
  sim::PowerModel power;
  sim::EnergyMeter energy;
  core::Switcher switcher(&graph, &channel, &clock, &energy, &power);
  channel.set_robot_position({2.0, 0.0});

  perception::Gmapping slam(bench_config(particles), {0, 0}, 8.0, 8.0, 3);
  perception::Gmapping replica(bench_config(particles), {0, 0}, 8.0, 8.0, 7);
  slam.initialize(log[0].odom_pose);
  platform::ExecutionContext ctx;

  std::vector<ProgressPoint> points;
  std::printf("\n%6s %14s %14s %12s %10s %12s %12s\n", "step", "full_raw", "full_rle",
              "delta", "hit", "stall_full", "stall_delta");
  for (size_t i = 0; i < log.size(); ++i) {
    msg::Odometry odom;
    odom.pose = log[i].odom_pose;
    odom.header.stamp = log[i].scan.header.stamp;
    slam.process(odom, log[i].scan, ctx);
    ctx.reset();
    if ((i + 1) % migrate_every != 0) continue;

    ProgressPoint p;
    p.step = i + 1;
    p.full_raw_bytes = slam.serialize_state(perception::StateEncoding::kFullRaw).size();
    p.full_rle_bytes = slam.serialize_state(perception::StateEncoding::kFull).size();
    const std::vector<uint8_t> delta =
        slam.serialize_state(perception::StateEncoding::kDelta);
    p.delta_bytes = delta.size();
    const perception::StateCodecStats& st = slam.last_codec_stats();
    p.delta_hit_ratio = st.delta_hit_ratio();
    p.grids_delta = st.grids_delta;
    p.fallbacks = st.fallback_no_base + st.fallback_overflow + st.fallback_larger;

    // The wire-level freeze each payload implies, on the same clean link.
    p.stall_full_s =
        switcher.migrate_state(static_cast<double>(p.full_rle_bytes), true, "full")
            .completion - clock.now();
    p.stall_delta_s =
        switcher.migrate_state(static_cast<double>(p.delta_bytes), true, "delta")
            .completion - clock.now();

    // Committed migration: the replica restores, the sender advances its base.
    replica.restore_state(delta);
    slam.mark_migration_committed();
    p.restored_equal = states_equal(slam, replica);

    std::printf("%6zu %12.1fKB %12.1fKB %10.1fKB %9.0f%% %10.1fms %10.1fms%s\n",
                p.step, p.full_raw_bytes / 1e3, p.full_rle_bytes / 1e3,
                p.delta_bytes / 1e3, 100.0 * p.delta_hit_ratio, p.stall_full_s * 1e3,
                p.stall_delta_s * 1e3, p.restored_equal ? "" : "  RESTORE MISMATCH");
    points.push_back(p);
  }

  // Steady state: the final quarter of the mission, where the map has
  // converged (saturated cells skip writes entirely) and the delta carries
  // only the frontier — a small fraction of any full snapshot.
  double full_sum = 0.0, delta_sum = 0.0;
  for (size_t i = points.size() - points.size() / 4; i < points.size(); ++i) {
    full_sum += static_cast<double>(points[i].full_rle_bytes);
    delta_sum += static_cast<double>(points[i].delta_bytes);
  }
  const double full_over_delta = delta_sum > 0 ? full_sum / delta_sum : 0.0;
  bool all_equal = !points.empty();
  for (const ProgressPoint& p : points) all_equal = all_equal && p.restored_equal;

  // ---- Resample copy cost: CoW vs deep copy ---------------------------------
  // Ping-pong two particle vectors so every round's copies survive into the
  // next round (as in the real resample, where the new generation replaces
  // the old) — the copies are observably used and cannot be optimized away.
  bench::print_subtitle("resample copy: CoW vs deep");
  const int rounds = smoke ? 40 : 200;
  std::vector<perception::Particle> base(slam.particles().begin(),
                                         slam.particles().end());
  std::vector<perception::Particle> next;
  double sink = 0.0;

  const uint64_t detaches_before = cow_detach_count();
  const auto t_cow = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    next.clear();
    next.reserve(base.size());
    for (const perception::Particle& p : base) next.push_back(p);  // O(1) CoW copy
    std::swap(base, next);
    sink += base.front().map.log_odds_at({0, 0});
  }
  const double cow_s = seconds_since(t_cow);
  const uint64_t cow_detaches = cow_detach_count() - detaches_before;

  const auto t_deep = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    next.clear();
    next.reserve(base.size());
    for (const perception::Particle& p : base) {
      next.push_back(p);
      next.back().map.unshare();  // deep-copy reference mode
      next.back().field.unshare();
    }
    std::swap(base, next);
    sink += base.front().map.log_odds_at({0, 0});
  }
  const double deep_s = seconds_since(t_deep);
  if (sink == 12345.6789) std::printf(" ");  // keep the copies observable
  const double speedup = cow_s > 0 ? deep_s / cow_s : 0.0;
  std::printf("  %d rounds x %d particles: cow=%s deep=%s speedup=%.1fx "
              "(detaches during cow: %llu)\n",
              rounds, slam.particle_count(), bench::fmt_time(cow_s).c_str(),
              bench::fmt_time(deep_s).c_str(), speedup,
              static_cast<unsigned long long>(cow_detaches));

  bench::print_subtitle("acceptance");
  std::printf("  steady-state full/delta ratio: %.1fx (need >= 5)\n", full_over_delta);
  std::printf("  resample CoW speedup:          %.1fx (need >= 3)\n", speedup);
  std::printf("  restored state byte-identical: %s\n", all_equal ? "yes" : "NO");

  const char* json_path = "BENCH_migration.json";
  {
    std::ofstream f(json_path);
    f << "{\n  \"bench\": \"migration_payload\",\n";
    f << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    f << "  \"particles\": " << particles << ",\n  \"progress\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const ProgressPoint& p = points[i];
      f << "    {\"step\": " << p.step << ", \"full_raw_bytes\": " << p.full_raw_bytes
        << ", \"full_rle_bytes\": " << p.full_rle_bytes
        << ", \"delta_bytes\": " << p.delta_bytes
        << ", \"delta_hit_ratio\": " << p.delta_hit_ratio
        << ", \"grids_delta\": " << p.grids_delta << ", \"fallbacks\": " << p.fallbacks
        << ", \"stall_full_s\": " << p.stall_full_s
        << ", \"stall_delta_s\": " << p.stall_delta_s
        << ", \"restored_equal\": " << (p.restored_equal ? "true" : "false") << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
    }
    f << "  ],\n";
    f << "  \"steady_state_full_over_delta\": " << full_over_delta << ",\n";
    f << "  \"all_restored_equal\": " << (all_equal ? "true" : "false") << ",\n";
    f << "  \"resample\": {\"rounds\": " << rounds << ", \"cow_s\": " << cow_s
      << ", \"deep_s\": " << deep_s << ", \"speedup\": " << speedup
      << ", \"cow_detaches\": " << cow_detaches << "}\n";
    f << "}\n";
  }
  std::printf("\nwrote %s\n", json_path);

  // Smoke mode cuts the mission long before steady state, so only the
  // correctness half of the acceptance gates there; the payload/speedup
  // thresholds apply to the full run.
  const bool ok = all_equal && (smoke || (full_over_delta >= 5.0 && speedup >= 3.0));
  if (!ok) std::printf("ACCEPTANCE NOT MET\n");
  return ok ? 0 : 1;
}
