// Fig. 13: total energy consumption (stacked per component) and mission
// completion time, for both workloads — (a) navigation with a map and
// (b) exploration without a map — under local execution, gateway offloading
// without optimization, and gateway offloading with 8-thread parallelization.
// The headline factors the paper reports: energy ÷1.61 (nav) / ÷2.12 (expl),
// completion time ÷2.53 (nav) / ÷1.6 (expl).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "core/mission_runner.h"
#include "core/report_io.h"

using namespace lgv;
using core::WorkloadKind;
using platform::Host;

namespace {

void run_workload(WorkloadKind kind, const char* title, double paper_energy_factor,
                  double paper_time_factor, bench::TelemetrySidecar& sidecar) {
  bench::print_subtitle(title);
  const core::Goal goal =
      kind == WorkloadKind::kExplorationWithoutMap ? core::Goal::kEnergy
                                                   : core::Goal::kCompletionTime;
  std::vector<core::DeploymentPlan> plans = {
      core::local_plan(kind),
      core::offload_plan("gateway", Host::kEdgeGateway, 1, kind, goal),
      core::offload_plan("gateway_8t", Host::kEdgeGateway, 8, kind, goal),
  };

  std::vector<core::MissionReport> reports;
  for (const auto& plan : plans) {
    core::MissionConfig cfg;
    cfg.timeout = kind == WorkloadKind::kExplorationWithoutMap ? 1500.0 : 800.0;
    if (kind == WorkloadKind::kExplorationWithoutMap) {
      cfg.slam_particles = 20;  // bounded host wall-time; same shape
      cfg.rollout_samples = 1000;
    }
    // LGV_NO_TELEMETRY=1 runs the disabled (null-pointer) path — used to
    // verify that telemetry off means zero measurable overhead.
    cfg.telemetry.enabled = std::getenv("LGV_NO_TELEMETRY") == nullptr;
    core::MissionRunner runner(sim::make_lab_scenario(), plan, cfg);
    reports.push_back(runner.run());
    const char* wl = kind == WorkloadKind::kExplorationWithoutMap ? "exploration"
                                                                  : "navigation";
    sidecar.add(std::string(wl) + "/" + plan.name, reports.back().metrics);
    // Makespan attribution per leg: where did the mission time actually go?
    // The paper's Fig. 13 story falls out of network_s vs compute_s.
    if (telemetry::Telemetry* t = runner.runtime().telemetry()) {
      const std::string prefix = std::string("fig13_") + wl + "_" + plan.name;
      const telemetry::CriticalPathResult cp = core::write_critical_path_file(
          prefix + "_critical_path.json", t->tracer(),
          reports.back().completion_time);
      std::printf("  %-12s attribution: named %.1f%% of %.1fs | network %.2fs, "
                  "compute %.2fs -> %s (%s)\n",
                  plan.name.c_str(), cp.named_fraction() * 100.0, cp.makespan_s,
                  cp.network_s, cp.compute_s,
                  cp.network_s > cp.compute_s ? "network-dominated"
                                              : "compute-dominated",
                  (prefix + "_critical_path.json").c_str());
    }
  }

  std::printf("%-12s %8s %8s %8s %8s %8s | %8s %8s %8s\n", "deployment", "motor",
              "sensor", "micro", "computer", "wireless", "total(J)", "time(s)",
              "success");
  for (const auto& r : reports) {
    std::printf("%-12s %8.1f %8.1f %8.1f %8.1f %8.2f | %8.1f %8.1f %8s\n",
                r.deployment.c_str(), r.energy.motor, r.energy.sensor,
                r.energy.microcontroller, r.energy.computer, r.energy.wireless,
                r.energy.total(), r.completion_time, r.success ? "yes" : "NO");
  }
  const auto& local = reports[0];
  const auto& best = reports[2];
  std::printf("energy reduction: %.2fx (paper %.2fx);  time reduction: %.2fx "
              "(paper %.2fx)\n",
              local.energy.total() / best.energy.total(), paper_energy_factor,
              local.completion_time / best.completion_time, paper_time_factor);
  std::printf("motor energy local vs offloaded: %.1f J vs %.1f J "
              "(paper: almost no improvement on motor energy)\n",
              local.energy.motor, best.energy.motor);
}

}  // namespace

int main() {
  bench::print_title(
      "Fig. 13 — total energy (per component) and mission completion time");
  bench::TelemetrySidecar sidecar("fig13");
  run_workload(WorkloadKind::kNavigationWithMap, "(a) Navigation with a map",
               1.61, 2.53, sidecar);
  run_workload(WorkloadKind::kExplorationWithoutMap,
               "(b) Exploration without a map", 2.12, 1.6, sidecar);
  sidecar.write();
  return 0;
}
