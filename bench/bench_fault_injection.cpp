// Graceful degradation under injected faults (docs/faults.md). Sweeps the
// chaos schedule's two axes — mid-mission forced-outage duration and remote
// worker-stall duty cycle — over the chaos scenario and compares four
// deployments: all-local, non-adaptive offload, Algorithm-2 adaptive offload,
// and adaptive offload with remote-execution leases + local fallback. The
// degradation curves (completion time and energy vs. fault intensity) land in
// BENCH_fault_injection.json; per-run metric snapshots for the harshest
// points go to the usual telemetry sidecar.
//
// The headline acceptance shape: under a forced 100% mid-mission outage the
// lease fallback keeps the vehicle moving (it re-executes the VDP locally the
// moment a lease expires), while the non-adaptive offload plan sits in
// safety-stop until the link returns — exactly the §VI stranded-LGV failure
// the paper's adaptation story exists to prevent.
//
// Usage: bench_fault_injection [--smoke]   (--smoke: reduced sweep for the
// sanitizer legs of tools/run_chaos_suite.sh)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/mission_runner.h"
#include "core/report_io.h"
#include "sim/fault_injector.h"

using namespace lgv;
using core::WorkloadKind;
using platform::Host;

namespace {

struct PlanSpec {
  const char* label;
  bool offload;
  bool adaptive;
  bool lease_fallback;
};

constexpr PlanSpec kPlans[] = {
    {"local", false, false, false},
    {"offload_fixed", true, false, false},
    {"adaptive", true, true, false},
    {"adaptive_fallback", true, true, true},
};

core::DeploymentPlan make_plan(const PlanSpec& spec) {
  if (!spec.offload) return core::local_plan(WorkloadKind::kNavigationWithMap);
  auto plan = core::offload_plan(spec.label, Host::kEdgeGateway, 4,
                                 WorkloadKind::kNavigationWithMap);
  plan.adaptive = spec.adaptive;
  return plan;
}

core::MissionReport run_chaos(const PlanSpec& spec, const sim::FaultSchedule& faults,
                              double timeout, const std::string& tag) {
  core::MissionConfig cfg;
  cfg.timeout = timeout;
  cfg.faults = faults;
  cfg.lease_fallback = spec.lease_fallback;
  // Post-mortem artifacts: the flight recorder dumps the last events as
  // fault_<tag>_flight_<trigger>.jsonl the first time a lease expires, a
  // migration aborts, or an integrity check rejects a frame.
  cfg.telemetry.flight_dump_prefix = "fault_" + tag;
  core::MissionRunner runner(sim::make_chaos_scenario(), make_plan(spec), cfg);
  core::MissionReport r = runner.run();
  if (telemetry::Telemetry* t = runner.runtime().telemetry()) {
    core::write_critical_path_file("fault_" + tag + "_critical_path.json",
                                   t->tracer(), r.completion_time);
  }
  return r;
}

struct SweepPoint {
  double outage_s = 0.0;
  double stall_fraction = 0.0;
  core::MissionReport runs[4];
};

void write_point_json(std::ofstream& f, const SweepPoint& p, bool last) {
  f << "    {\"outage_s\": " << p.outage_s
    << ", \"stall_fraction\": " << p.stall_fraction << ", \"runs\": [\n";
  for (size_t i = 0; i < 4; ++i) {
    const core::MissionReport& r = p.runs[i];
    f << "      {\"plan\": \"" << kPlans[i].label << "\""
      << ", \"success\": " << (r.success ? "true" : "false")
      << ", \"completion_s\": " << r.completion_time
      << ", \"standby_s\": " << r.standby_time
      << ", \"energy_j\": " << r.energy.total()
      << ", \"avg_velocity\": " << r.average_velocity
      << ", \"fallbacks\": " << r.fallbacks
      << ", \"faults_injected\": " << r.faults_injected
      << ", \"placement_switches\": " << r.placement_switches << "}"
      << (i + 1 < 4 ? ",\n" : "\n");
  }
  f << "    ]}" << (last ? "\n" : ",\n");
}

std::string cell(const core::MissionReport& r) {
  // Completion time; a trailing * marks a run that never finished (timeout).
  return bench::fmt(r.completion_time, 1) + (r.success ? "" : "*");
}

void print_sweep(const std::string& corner, const std::vector<std::string>& rows,
                 const std::vector<SweepPoint>& points) {
  std::vector<std::string> cols;
  for (const PlanSpec& s : kPlans) cols.push_back(s.label);
  std::vector<std::vector<std::string>> cells;
  for (const SweepPoint& p : points) {
    std::vector<std::string> row;
    for (size_t i = 0; i < 4; ++i) row.push_back(cell(p.runs[i]));
    cells.push_back(std::move(row));
  }
  bench::print_grid(corner, cols, rows, cells);
  std::printf("(completion time in s; * = timed out before reaching the goal)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::print_title("Fault injection — degradation curves and lease fallback");
  if (smoke) std::printf("(smoke mode: reduced sweep)\n");

  // Nominal (fault-free) mission duration anchors the chaos schedule so the
  // outage always lands mid-mission regardless of scenario tuning.
  const core::MissionReport nominal =
      run_chaos(kPlans[3], sim::FaultSchedule{}, 700.0, "nominal");
  const double nominal_s = nominal.completion_time;
  std::printf("nominal (fault-free, adaptive+fallback): %.1fs %s\n", nominal_s,
              nominal.success ? "" : "[timed out]");

  const std::vector<double> outages =
      smoke ? std::vector<double>{45.0} : std::vector<double>{15.0, 45.0, 90.0};
  const std::vector<double> stalls =
      smoke ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.5, 0.75};

  bench::TelemetrySidecar sidecar("fault_injection");
  auto run_point = [&](double outage_s, double stall_fraction) {
    SweepPoint p;
    p.outage_s = outage_s;
    p.stall_fraction = stall_fraction;
    const auto faults =
        sim::make_chaos_schedule(outage_s, stall_fraction, nominal_s);
    const double timeout = 4.0 * nominal_s + 2.0 * outage_s + 60.0;
    for (size_t i = 0; i < 4; ++i) {
      const std::string tag = std::string(kPlans[i].label) + "_o" +
                              bench::fmt(outage_s, 0) + "_s" +
                              bench::fmt(100.0 * stall_fraction, 0);
      p.runs[i] = run_chaos(kPlans[i], faults, timeout, tag);
    }
    return p;
  };

  // ---- Axis 1: forced-outage duration (no worker faults).
  bench::print_subtitle("outage-duration sweep (stall=0)");
  std::vector<SweepPoint> outage_points;
  std::vector<std::string> outage_rows;
  for (double o : outages) {
    outage_points.push_back(run_point(o, 0.0));
    outage_rows.push_back("outage " + bench::fmt(o, 0) + "s");
  }
  print_sweep("fault \\ plan", outage_rows, outage_points);

  // ---- Axis 2: worker-stall duty cycle (no outage).
  bench::print_subtitle("worker-stall sweep (outage=0)");
  std::vector<SweepPoint> stall_points;
  std::vector<std::string> stall_rows;
  for (double s : stalls) {
    stall_points.push_back(run_point(0.0, s));
    stall_rows.push_back("stall " + bench::fmt(100.0 * s, 0) + "%");
  }
  print_sweep("fault \\ plan", stall_rows, stall_points);

  // Sidecar: metric snapshots for the harshest point on each axis.
  for (size_t i = 0; i < 4; ++i) {
    sidecar.add("outage" + bench::fmt(outages.back(), 0) + "_" + kPlans[i].label,
                outage_points.back().runs[i].metrics);
    sidecar.add("stall" + bench::fmt(100.0 * stalls.back(), 0) + "_" + kPlans[i].label,
                stall_points.back().runs[i].metrics);
  }

  // ---- Degradation-curve JSON.
  const char* json_path = "BENCH_fault_injection.json";
  {
    std::ofstream f(json_path);
    f << "{\n  \"bench\": \"fault_injection\",\n  \"nominal_completion_s\": "
      << nominal_s << ",\n  \"outage_sweep\": [\n";
    for (size_t i = 0; i < outage_points.size(); ++i) {
      write_point_json(f, outage_points[i], i + 1 == outage_points.size());
    }
    f << "  ],\n  \"stall_sweep\": [\n";
    for (size_t i = 0; i < stall_points.size(); ++i) {
      write_point_json(f, stall_points[i], i + 1 == stall_points.size());
    }
    f << "  ]\n}\n";
    std::printf("\ndegradation curves: %s\n", json_path);
  }
  sidecar.write();

  // ---- Acceptance shape: hardest outage, fallback vs. no adaptation.
  const SweepPoint& worst = outage_points.back();
  const core::MissionReport& fixed = worst.runs[1];
  const core::MissionReport& fb = worst.runs[3];
  std::printf(
      "\nforced %.0fs outage: adaptive+fallback %s in %.1fs (%llu fallback(s), "
      "standby %.1fs);\nnon-adaptive offload %s (completion %.1fs, standby %.1fs)\n",
      worst.outage_s, fb.success ? "completed" : "TIMED OUT", fb.completion_time,
      static_cast<unsigned long long>(fb.fallbacks), fb.standby_time,
      fixed.success ? "completed late" : "timed out", fixed.completion_time,
      fixed.standby_time);
  const bool graceful =
      fb.success && fb.fallbacks > 0 &&
      (!fixed.success || fixed.standby_time > fb.standby_time + 0.5 * worst.outage_s);
  std::printf("verdict: %s\n", graceful
                                   ? "graceful degradation — lease fallback keeps "
                                     "the mission moving through the outage"
                                   : "UNEXPECTED — fallback did not out-degrade "
                                     "the non-adaptive plan");
  return graceful ? 0 : 1;
}
