// Fig. 9: processing time of the energy-critical node (SLAM) under different
// numbers of threads and particles, on (a) the Turtlebot3, (b) the edge
// gateway, (c) the cloud server. Reproduces the paper's offline methodology:
// replay a recorded scan log (our synthetic stand-in for the Intel Research
// Lab dataset) through the parallel gmapping implementation, and convert the
// instrumented work into per-platform time via the cost models.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "perception/gmapping.h"
#include "platform/cost_model.h"
#include "sim/scenario.h"

using namespace lgv;

namespace {

constexpr int kScans = 25;

/// Mean virtual processing time of one SLAM update with M particles and N
/// threads on the given platform.
double slam_update_time(const std::vector<sim::ScanLogEntry>& log, int particles,
                        int threads, const platform::CostModel& model) {
  perception::GmappingConfig cfg;
  cfg.particles = particles;
  perception::Gmapping slam(cfg, {0, 0}, 20.0, 14.0, 0x9e);
  slam.initialize(log[0].odom_pose);
  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < kScans && i < static_cast<int>(log.size()); ++i) {
    platform::ExecutionContext ctx(nullptr, threads);
    msg::Odometry odom;
    odom.pose = log[static_cast<size_t>(i)].odom_pose;
    odom.header.stamp = log[static_cast<size_t>(i)].scan.header.stamp;
    slam.process(odom, log[static_cast<size_t>(i)].scan, ctx);
    if (i >= 2) {  // skip map-seeding updates
      total += model.execution_time(ctx.profile());
      ++counted;
    }
  }
  return total / counted;
}

}  // namespace

int main() {
  bench::print_title(
      "Fig. 9 — ECN (SLAM) processing time vs threads × particles");
  const sim::Scenario scenario = sim::make_office_scenario();
  const auto log = sim::record_scan_log(scenario, 0.4, 0.2, kScans);

  const std::vector<int> particle_counts = {10, 20, 30, 100};
  struct PlatformCase {
    const char* label;
    platform::CostModel model;
    std::vector<int> threads;
  };
  const std::vector<PlatformCase> platforms = {
      {"(a) Turtlebot3", platform::CostModel(platform::turtlebot3_spec()), {1, 2, 4}},
      {"(b) Edge gateway", platform::CostModel(platform::edge_gateway_spec()),
       {1, 2, 4, 8}},
      {"(c) Cloud server", platform::CostModel(platform::cloud_server_spec()),
       {1, 2, 4, 8, 12, 24}},
  };

  // Local single-thread baseline per particle count (the no-offloading case).
  std::vector<double> baseline;
  for (int p : particle_counts) {
    baseline.push_back(slam_update_time(log, p, 1, platforms[0].model));
  }

  double best_gateway_speedup = 0.0, best_cloud_speedup = 0.0;
  for (const PlatformCase& pc : platforms) {
    bench::print_subtitle(std::string(pc.label) + " — seconds per SLAM update");
    std::vector<std::string> cols;
    for (int p : particle_counts) cols.push_back("M=" + std::to_string(p));
    std::vector<std::string> rows;
    std::vector<std::vector<std::string>> cells;
    for (int t : pc.threads) {
      rows.push_back("N=" + std::to_string(t));
      std::vector<std::string> line;
      for (size_t pi = 0; pi < particle_counts.size(); ++pi) {
        const double time = slam_update_time(log, particle_counts[pi], t, pc.model);
        line.push_back(bench::fmt_time(time));
        const double speedup = baseline[pi] / time;
        if (pc.label[1] == 'b') best_gateway_speedup = std::max(best_gateway_speedup, speedup);
        if (pc.label[1] == 'c') best_cloud_speedup = std::max(best_cloud_speedup, speedup);
      }
      cells.push_back(std::move(line));
    }
    bench::print_grid("threads\\parts", cols, rows, cells);
  }

  bench::print_subtitle("Headline speedups vs local single-thread");
  std::printf("edge gateway : up to %.2fx   (paper: up to 27.97x)\n",
              best_gateway_speedup);
  std::printf("cloud server : up to %.2fx   (paper: up to 40.84x)\n",
              best_cloud_speedup);
  std::printf("shape checks : cloud > gateway at max parallelism: %s\n",
              best_cloud_speedup > best_gateway_speedup ? "YES" : "NO");
  return 0;
}
