// Table II: cycle breakdown of each work node (gigacycles per invocation),
// for both workload classes. The numbers come from the instrumented work
// meter after running the full pipelines on the lab scenario — the same
// measurement the paper performs at 1.6 GHz on 4 low-power cores.
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "core/mission_runner.h"

using namespace lgv;
using core::WorkloadKind;

namespace {

struct Row {
  double paper_gc;      // Table II value (gigacycles)
  double measured_gc;   // per-invocation measured
  double measured_pct;  // share of total cycles
};

std::map<std::string, Row> run_workload(WorkloadKind kind) {
  core::MissionConfig cfg;
  cfg.timeout = 240.0;  // enough invocations for stable means
  cfg.rollout_samples = 2000;
  cfg.slam_particles = 30;
  // Run offloaded with acceleration so the mission makes progress quickly;
  // cycle counts are platform-independent work, unaffected by placement.
  core::MissionRunner runner(
      sim::make_lab_scenario(),
      core::offload_plan("meter", platform::Host::kEdgeGateway, 8, kind,
                         core::Goal::kEnergy),
      cfg);
  const core::MissionReport r = runner.run();

  std::map<std::string, Row> rows;
  double total = 0.0;
  for (const auto& [name, cycles] : r.node_cycles) total += cycles;
  for (const auto& [name, cycles] : r.node_cycles) {
    Row row{};
    const size_t inv = r.node_invocations.at(name);
    row.measured_gc = inv > 0 ? cycles / 1e9 / static_cast<double>(inv) : 0.0;
    row.measured_pct = total > 0 ? 100.0 * cycles / total : 0.0;
    rows[name] = row;
  }
  return rows;
}

void print_table(const char* title, std::map<std::string, Row> rows,
                 const std::map<std::string, double>& paper) {
  bench::print_subtitle(title);
  std::printf("%-16s %14s %14s %10s\n", "node", "paper Gc/inv", "measured Gc/inv",
              "share");
  for (const auto& [name, gc] : paper) {
    const Row row = rows.count(name) ? rows[name] : Row{};
    std::printf("%-16s %14.3f %14.3f %9.1f%%\n", name.c_str(), gc, row.measured_gc,
                row.measured_pct);
  }
}

}  // namespace

int main() {
  bench::print_title("Table II — Cycle breakdown of each work node (gigacycles)");
  std::printf("(paper values measured at 1.6 GHz / 4 low-power cores; ours are\n"
              " instrumented work counts — shape and ordering are the target)\n");

  print_table("With a map (Navigation)", run_workload(WorkloadKind::kNavigationWithMap),
              {{"localization", 0.028},
               {"costmap_gen", 0.857},
               {"path_planning", 0.055},
               {"path_tracking", 1.385},
               {"velocity_mux", 0.0}});

  print_table("Without a map (Exploration)",
              run_workload(WorkloadKind::kExplorationWithoutMap),
              {{"localization", 3.327},
               {"costmap_gen", 0.685},
               {"path_planning", 0.052},
               {"exploration", 0.011},
               {"path_tracking", 1.207},
               {"velocity_mux", 0.0}});

  std::printf(
      "\nEnergy-critical nodes (>=10%% share): CostmapGen + Path Tracking (both\n"
      "workloads) and SLAM localization (without a map) — matching the paper's\n"
      "ECN identification in Table II.\n");
  return 0;
}
