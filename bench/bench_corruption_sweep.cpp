// Wire-integrity degradation curves (docs/wire-format.md, docs/faults.md).
// Sweeps the corruption fault plane's two axes — per-byte flip probability
// (corrupt_burst) and reorder jitter — over the chaos scenario and compares
// the same four deployments as bench_fault_injection: all-local, non-adaptive
// offload, Algorithm-2 adaptive offload, and adaptive offload with leases +
// local fallback. Every remote datagram rides the checksummed frame format,
// so a flipped bit costs a counted rejection instead of a poisoned particle
// set; the curves show mission completion time and the rejection counters as
// corruption intensifies. Results land in BENCH_corruption_sweep.json plus
// the usual telemetry sidecar for the harshest point.
//
// The headline acceptance shape: at 1e-3 flips/byte — enough to damage ~86%
// of 2.2 KB scan frames — the adaptive+fallback deployment still completes
// the mission (Algorithm 2 watches its probe stream die and brings the VDP
// home), with nonzero frames-rejected counters proving the integrity layer
// did the catching.
//
// Usage: bench_corruption_sweep [--smoke]   (--smoke: reduced sweep for the
// sanitizer legs of tools/run_chaos_suite.sh)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/mission_runner.h"
#include "core/report_io.h"
#include "sim/fault_injector.h"

using namespace lgv;
using core::WorkloadKind;
using platform::Host;

namespace {

struct PlanSpec {
  const char* label;
  bool offload;
  bool adaptive;
  bool lease_fallback;
};

constexpr PlanSpec kPlans[] = {
    {"local", false, false, false},
    {"offload_fixed", true, false, false},
    {"adaptive", true, true, false},
    {"adaptive_fallback", true, true, true},
};

core::DeploymentPlan make_plan(const PlanSpec& spec) {
  if (!spec.offload) return core::local_plan(WorkloadKind::kNavigationWithMap);
  auto plan = core::offload_plan(spec.label, Host::kEdgeGateway, 4,
                                 WorkloadKind::kNavigationWithMap);
  plan.adaptive = spec.adaptive;
  return plan;
}

core::MissionReport run_mission(const PlanSpec& spec, const sim::FaultSchedule& faults,
                                double timeout, const std::string& tag) {
  core::MissionConfig cfg;
  cfg.timeout = timeout;
  cfg.faults = faults;
  cfg.lease_fallback = spec.lease_fallback;
  // An integrity reject triggers a one-shot flight-recorder dump so the
  // harshest corruption points leave corrupt_<tag>_flight_*.jsonl behind.
  cfg.telemetry.flight_dump_prefix = "corrupt_" + tag;
  core::MissionRunner runner(sim::make_chaos_scenario(), make_plan(spec), cfg);
  core::MissionReport r = runner.run();
  if (telemetry::Telemetry* t = runner.runtime().telemetry()) {
    core::write_critical_path_file("corrupt_" + tag + "_critical_path.json",
                                   t->tracer(), r.completion_time);
  }
  return r;
}

struct SweepPoint {
  double flip_prob = 0.0;
  double jitter_s = 0.0;
  core::MissionReport runs[4];
};

void write_point_json(std::ofstream& f, const SweepPoint& p, bool last) {
  f << "    {\"flip_prob\": " << p.flip_prob << ", \"reorder_jitter_s\": "
    << p.jitter_s << ", \"runs\": [\n";
  for (size_t i = 0; i < 4; ++i) {
    const core::MissionReport& r = p.runs[i];
    f << "      {\"plan\": \"" << kPlans[i].label << "\""
      << ", \"success\": " << (r.success ? "true" : "false")
      << ", \"completion_s\": " << r.completion_time
      << ", \"standby_s\": " << r.standby_time
      << ", \"energy_j\": " << r.energy.total()
      << ", \"frames_rejected\": " << r.network.frames_rejected
      << ", \"rejected_crc\": " << r.network.rejected_crc
      << ", \"rejected_duplicate\": " << r.network.rejected_duplicate
      << ", \"stale_dropped\": " << r.network.stale_dropped
      << ", \"migrations_aborted\": " << r.network.migrations_aborted
      << ", \"fallbacks\": " << r.fallbacks
      << ", \"placement_switches\": " << r.placement_switches << "}"
      << (i + 1 < 4 ? ",\n" : "\n");
  }
  f << "    ]}" << (last ? "\n" : ",\n");
}

std::string cell(const core::MissionReport& r) {
  // Completion time + rejected-frame count; * marks a timed-out run.
  return bench::fmt(r.completion_time, 1) + (r.success ? "" : "*") + "/" +
         std::to_string(r.network.frames_rejected);
}

void print_sweep(const std::vector<std::string>& rows,
                 const std::vector<SweepPoint>& points) {
  std::vector<std::string> cols;
  for (const PlanSpec& s : kPlans) cols.push_back(s.label);
  std::vector<std::vector<std::string>> cells;
  for (const SweepPoint& p : points) {
    std::vector<std::string> row;
    for (size_t i = 0; i < 4; ++i) row.push_back(cell(p.runs[i]));
    cells.push_back(std::move(row));
  }
  bench::print_grid("corruption \\ plan", cols, rows, cells);
  std::printf("(completion s / frames rejected; * = timed out)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::print_title("Corruption sweep — wire integrity under byte-level faults");
  if (smoke) std::printf("(smoke mode: reduced sweep)\n");

  // Nominal fault-free run anchors the schedule horizon, as in
  // bench_fault_injection.
  const core::MissionReport nominal =
      run_mission(kPlans[3], sim::FaultSchedule{}, 700.0, "nominal");
  const double nominal_s = nominal.completion_time;
  std::printf("nominal (fault-free, adaptive+fallback): %.1fs %s\n", nominal_s,
              nominal.success ? "" : "[timed out]");

  const std::vector<double> flips =
      smoke ? std::vector<double>{1e-3} : std::vector<double>{1e-4, 1e-3};
  const std::vector<double> jitters =
      smoke ? std::vector<double>{0.05} : std::vector<double>{0.0, 0.05};

  bench::TelemetrySidecar sidecar("corruption_sweep");
  std::vector<SweepPoint> points;
  std::vector<std::string> rows;
  for (double flip : flips) {
    for (double jitter : jitters) {
      SweepPoint p;
      p.flip_prob = flip;
      p.jitter_s = jitter;
      const auto faults = sim::make_corruption_schedule(flip, jitter, nominal_s);
      const double timeout = 4.0 * nominal_s + 120.0;
      for (size_t i = 0; i < 4; ++i) {
        const std::string tag = std::string(kPlans[i].label) + "_f" +
                                bench::fmt(flip * 1e4, 0) + "_j" +
                                bench::fmt(jitter * 1e3, 0);
        p.runs[i] = run_mission(kPlans[i], faults, timeout, tag);
      }
      rows.push_back("flip " + bench::fmt(flip * 1e3, 1) + "e-3, jitter " +
                     bench::fmt(jitter * 1e3, 0) + "ms");
      points.push_back(std::move(p));
    }
  }
  print_sweep(rows, points);

  // Sidecar: metric snapshots for the harshest corruption point.
  for (size_t i = 0; i < 4; ++i) {
    sidecar.add(std::string("worst_") + kPlans[i].label,
                points.back().runs[i].metrics);
  }

  const char* json_path = "BENCH_corruption_sweep.json";
  {
    std::ofstream f(json_path);
    f << "{\n  \"bench\": \"corruption_sweep\",\n  \"nominal_completion_s\": "
      << nominal_s << ",\n  \"sweep\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      write_point_json(f, points[i], i + 1 == points.size());
    }
    f << "  ]\n}\n";
    std::printf("\ndegradation curves: %s\n", json_path);
  }
  sidecar.write();

  // ---- Acceptance shape: harshest point, integrity layer + adaptation.
  const SweepPoint& worst = points.back();
  const core::MissionReport& fb = worst.runs[3];
  std::printf(
      "\nflip %.0e/byte + %.0f ms jitter: adaptive+fallback %s in %.1fs — "
      "%llu frames rejected (%llu crc, %llu dup), %llu stale dropped, "
      "%llu migration abort(s)\n",
      worst.flip_prob, worst.jitter_s * 1e3,
      fb.success ? "completed" : "TIMED OUT", fb.completion_time,
      static_cast<unsigned long long>(fb.network.frames_rejected),
      static_cast<unsigned long long>(fb.network.rejected_crc),
      static_cast<unsigned long long>(fb.network.rejected_duplicate),
      static_cast<unsigned long long>(fb.network.stale_dropped),
      static_cast<unsigned long long>(fb.network.migrations_aborted));
  const bool graceful = fb.success && fb.network.frames_rejected > 0;
  std::printf("verdict: %s\n",
              graceful ? "graceful degradation — corrupt frames were rejected, "
                         "not consumed, and the mission still completed"
                       : "UNEXPECTED — mission failed or no frames were rejected "
                         "under scheduled corruption");
  return graceful ? 0 : 1;
}
