// Fleet-scale serving (docs/fleet-serving.md): one shared core::WorkerPool,
// N simulated LGVs. Sweeps vehicle count × worker cores and reports, per
// configuration, the offload latency distribution (p50/p99 of queue wait +
// service in virtual time), the fallback rate (busy verdicts → the vehicle
// runs the kernel locally this tick), aggregate served throughput, batching
// coalescing, and the bounded-queueing acceptance numbers.
//
// Vehicles act as asynchronous request generators against the pool: every
// virtual tick each vehicle submits its two VDP kernels — a REAL scanMatch
// (ScanMatcher::score over a LikelihoodField of the fleet hall, the PR 6
// SoA/SIMD path) and a real trajectory-rollout integration — via
// submit_block, and the pool coalesces same-kernel requests across vehicles
// into one combined dispatch at flush. Timing is virtual (deterministic,
// machine-portable): service = measured cycles × the cloud platform's
// per-cycle rate at the request's thread width.
//
// The acceptance shape this bench gates (tools/check_bench_regression):
//  - under overload (128 vehicles on 4 cores) the fallback rate rises while
//    every session's queue depth stays ≤ the configured bound — backpressure
//    degrades vehicles to local compute instead of growing queues;
//  - uncontended configs serve with near-zero fallback;
//  - cross-vehicle batching actually coalesces (batched fraction > 0);
//  - fair-share: no vehicle's mean queue wait is a large multiple of
//    another's in the contended config (stride scheduling, equal weights).
//
// Artifacts: BENCH_fleet_scale.json (the gated numbers),
// BENCH_fleet_scale_telemetry.json (per-config registry snapshots), and
// BENCH_fleet_scale_critical_path.json (critical-path attribution of the
// most contended config's trace).
//
// Usage: bench_fleet_scale [--smoke]   (--smoke: fewer ticks, same sweep)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/report_io.h"
#include "core/worker_pool.h"
#include "perception/likelihood_field.h"
#include "perception/occupancy_grid.h"
#include "perception/scan_matcher.h"
#include "platform/calibration.h"
#include "platform/platform_spec.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

using namespace lgv;
namespace calib = platform::calib;

namespace {

constexpr double kTick = 0.1;          ///< virtual seconds between submit rounds
constexpr int kScanCandidates = 16;    ///< poses scored per scanMatch request
constexpr int kRolloutCandidates = 24; ///< trajectories per rollout request
constexpr int kRolloutSteps = 12;
constexpr int kRequestThreads = 2;     ///< cores a request occupies while served

struct VehicleState {
  core::SessionId session = 0;
  Pose2D pose;
  perception::PrecomputedScan pre;
  uint64_t offloads = 0;
  uint64_t fallbacks = 0;
  double wait_sum = 0.0;  ///< queue-wait seconds over completed offloads
};

struct ConfigResult {
  int vehicles = 0;
  int cores = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double fallback_rate = 0.0;
  double throughput_rps = 0.0;  ///< served requests per virtual second
  uint64_t offloads = 0;
  uint64_t fallbacks = 0;
  size_t max_session_depth = 0;
  double batched_fraction = 0.0;
  uint64_t evictions = 0;
  double fairness_ratio = 0.0;  ///< max per-vehicle mean queue wait / fleet avg
  bool queue_bounded = false;
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// Cloud-platform seconds per cycle for a request spread over `threads`
/// cores (caller-side pricing for WorkerPool::submit_block).
double seconds_per_cycle(int threads) {
  const platform::PlatformSpec spec = platform::cloud_server_spec();
  return 1.0 / (spec.single_thread_ops_per_sec() * spec.parallel_throughput(threads));
}

ConfigResult run_config(int vehicles, int cores, int ticks,
                        const perception::LikelihoodField& field,
                        const perception::ScanMatcher& matcher,
                        const sim::World& world, uint64_t fleet_seed,
                        bench::TelemetrySidecar* sidecar,
                        telemetry::Telemetry** telemetry_out) {
  SimClock clock;
  auto* telemetry = new telemetry::Telemetry(telemetry::TelemetryConfig{});
  telemetry->set_clock(&clock);

  core::WorkerPoolConfig wc;
  wc.cores = cores;
  // Real pool threads capped: the *virtual* core count is the model; the real
  // threads only need enough concurrency to genuinely exercise the batching.
  wc.threads = std::min(cores, 8);
  core::WorkerPool pool(wc, telemetry);

  // Vehicles: each on its own lane of the shared hall, each with its own
  // splitmix64-derived RNG stream and its own real scan of the hall.
  std::vector<VehicleState> fleet(static_cast<size_t>(vehicles));
  const double resolution = world.frame().resolution;
  for (int v = 0; v < vehicles; ++v) {
    VehicleState& s = fleet[static_cast<size_t>(v)];
    const sim::Scenario sc = sim::make_fleet_scenario(v, vehicles);
    s.pose = sc.start;
    sim::Lidar lidar({}, vehicle_seed(fleet_seed, static_cast<uint32_t>(v)) ^ 0x11d);
    const msg::LaserScan scan = lidar.scan(world, s.pose, 0.0);
    s.pre = perception::precompute_scan(scan, matcher.config().beam_stride, resolution);
    const core::Admission a =
        pool.open_session("lgv-" + std::to_string(v), clock.now());
    s.session = a.session;
  }

  const double spc = seconds_per_cycle(kRequestThreads);
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(vehicles * ticks * 2));
  uint64_t offloads = 0;
  uint64_t fallbacks = 0;

  for (int tick = 0; tick < ticks; ++tick) {
    const double now = clock.now();
    struct Issued {
      size_t vehicle;
      core::WorkerPool::Ticket ticket;
    };
    std::vector<Issued> issued;
    issued.reserve(static_cast<size_t>(vehicles) * 2);

    for (size_t v = 0; v < fleet.size(); ++v) {
      VehicleState& s = fleet[v];
      const perception::PrecomputedScan* pre = &s.pre;
      const Pose2D pose = s.pose;

      // scanMatch: score kScanCandidates perturbed poses against the field.
      auto scan_block = [&matcher, &field, pre, pose](size_t begin,
                                                      size_t end) -> double {
        size_t evals = 0;
        for (size_t i = begin; i < end; ++i) {
          const double dx = 0.04 * static_cast<double>(i % 5) - 0.08;
          const double dy = 0.04 * static_cast<double>((i / 5) % 5) - 0.08;
          const double dth = 0.02 * static_cast<double>(i % 3) - 0.02;
          const Pose2D cand(pose.x + dx, pose.y + dy, pose.theta + dth);
          matcher.score(field, cand, *pre, &evals);
        }
        return static_cast<double>(evals) * calib::kScanMatchCachedCyclesPerBeamEval;
      };
      const auto t1 =
          pool.submit_block(s.session, core::KernelKind::kScanMatch, now,
                            kScanCandidates, scan_block, spc, kRequestThreads);
      issued.push_back({v, t1});

      // scoreTrajectory: really integrate candidate unicycle trajectories and
      // charge the rollout calibration per step.
      auto rollout_block = [pose](size_t begin, size_t end) -> double {
        double sink = 0.0;
        size_t steps = 0;
        for (size_t i = begin; i < end; ++i) {
          double x = pose.x, y = pose.y, th = pose.theta;
          const double v_cmd = 0.05 + 0.01 * static_cast<double>(i % 8);
          const double w_cmd = 0.1 * static_cast<double>(i % 5) - 0.2;
          for (int k = 0; k < kRolloutSteps; ++k) {
            th += w_cmd * 0.1;
            x += v_cmd * 0.1 * std::cos(th);
            y += v_cmd * 0.1 * std::sin(th);
            ++steps;
          }
          sink += x + y;
        }
        // Keep the integration honest against the optimizer.
        if (sink == 1e308) std::abort();
        return static_cast<double>(steps) * calib::kRolloutCyclesPerStep +
               static_cast<double>(end - begin) * calib::kRolloutCyclesPerTrajectory;
      };
      const auto t2 =
          pool.submit_block(s.session, core::KernelKind::kScoreTrajectory, now,
                            kRolloutCandidates, rollout_block, spc, kRequestThreads);
      issued.push_back({v, t2});
    }

    // Close the tick's batching window: coalesced real dispatches, then the
    // fair-share virtual schedule.
    pool.flush(now);

    for (const Issued& is : issued) {
      VehicleState& s = fleet[is.vehicle];
      const core::WorkerVerdict verdict = pool.verdict(is.ticket);
      if (verdict.busy) {
        ++fallbacks;
        ++s.fallbacks;
      } else {
        ++offloads;
        ++s.offloads;
        s.wait_sum += verdict.queue_wait;
        latencies.push_back(verdict.queue_wait + verdict.service);
      }
    }
    pool.evict_expired(now);
    clock.advance(kTick);
  }

  ConfigResult r;
  r.vehicles = vehicles;
  r.cores = cores;
  r.p50_s = percentile(latencies, 0.50);
  r.p99_s = percentile(latencies, 0.99);
  r.offloads = offloads;
  r.fallbacks = fallbacks;
  r.fallback_rate = offloads + fallbacks > 0
                        ? static_cast<double>(fallbacks) /
                              static_cast<double>(offloads + fallbacks)
                        : 0.0;
  r.throughput_rps = static_cast<double>(offloads) / (kTick * ticks);
  r.max_session_depth = pool.max_session_depth();
  r.batched_fraction =
      pool.requests() > 0
          ? static_cast<double>(pool.batched_requests()) /
                static_cast<double>(pool.requests())
          : 0.0;
  r.evictions = pool.evictions();
  r.queue_bounded = pool.max_session_depth() <= pool.config().max_session_queue;

  // Starvation metric: the worst vehicle's mean queue wait as a multiple of
  // the fleet average. Max/min would be dominated by deterministic tie-break
  // order (someone must go first within a tick); max/avg only moves when one
  // session genuinely lags the fleet.
  double max_wait = 0.0, wait_total = 0.0;
  size_t served_vehicles = 0;
  for (const VehicleState& s : fleet) {
    if (s.offloads == 0) continue;
    const double mean = s.wait_sum / static_cast<double>(s.offloads);
    max_wait = std::max(max_wait, mean);
    wait_total += mean;
    ++served_vehicles;
  }
  const double avg_wait =
      served_vehicles > 0 ? wait_total / static_cast<double>(served_vehicles) : 0.0;
  r.fairness_ratio = avg_wait > 1e-9 ? max_wait / avg_wait : 1.0;

  const std::string label =
      "v" + std::to_string(vehicles) + "_c" + std::to_string(cores);
  if (sidecar != nullptr) sidecar->add(label, telemetry->metrics().snapshot());
  if (telemetry_out != nullptr) {
    *telemetry_out = telemetry;  // caller owns (critical-path extraction)
  } else {
    delete telemetry;
  }
  return r;
}

void write_json(const std::vector<ConfigResult>& results, bool smoke,
                bool batching_observed, bool fallback_rises, bool all_bounded,
                bool fair) {
  std::ofstream f("BENCH_fleet_scale.json");
  f << "{\n  \"bench\": \"fleet_scale\",\n";
  f << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  f << "  \"configs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    f << "    {\"vehicles\": " << r.vehicles << ", \"cores\": " << r.cores
      << ", \"p50_s\": " << r.p50_s << ", \"p99_s\": " << r.p99_s
      << ", \"fallback_rate\": " << r.fallback_rate
      << ", \"throughput_rps\": " << r.throughput_rps
      << ", \"offloads\": " << r.offloads << ", \"fallbacks\": " << r.fallbacks
      << ", \"max_session_depth\": " << r.max_session_depth
      << ", \"batched_fraction\": " << r.batched_fraction
      << ", \"fairness_ratio\": " << r.fairness_ratio
      << ", \"queue_bounded\": " << (r.queue_bounded ? "true" : "false") << "}"
      << (i + 1 < results.size() ? ",\n" : "\n");
  }
  f << "  ],\n  \"acceptance\": {\n";
  f << "    \"queue_bounded\": " << (all_bounded ? "true" : "false") << ",\n";
  f << "    \"fallback_rises_under_overload\": " << (fallback_rises ? "true" : "false")
    << ",\n";
  f << "    \"batching_observed\": " << (batching_observed ? "true" : "false")
    << ",\n";
  f << "    \"fair_share\": " << (fair ? "true" : "false") << "\n";
  f << "  }\n}\n";
  std::printf("wrote BENCH_fleet_scale.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int ticks = smoke ? 80 : 250;
  const uint64_t fleet_seed = 0x5eed;

  bench::print_title(
      std::string("Fleet-scale serving: shared worker pool, N vehicles") +
      (smoke ? " [smoke]" : ""));

  // Shared hall map → likelihood field, built once (every vehicle matches
  // against the same warehouse).
  const sim::Scenario base = sim::make_fleet_scenario(0, 1);
  perception::OccupancyGridConfig map_cfg;
  map_cfg.resolution = base.world.frame().resolution;
  const perception::OccupancyGrid map = perception::OccupancyGrid::from_binary(
      base.world.frame(), base.world.grid(), map_cfg);
  perception::LikelihoodField field;
  field.sync(map);
  const perception::ScanMatcher matcher;

  const std::vector<int> vehicle_counts = {1, 8, 32, 128};
  const std::vector<int> core_counts = {4, 16};

  bench::TelemetrySidecar sidecar("fleet_scale");
  std::vector<ConfigResult> results;
  telemetry::Telemetry* contended_telemetry = nullptr;
  double contended_makespan = 0.0;

  for (const int cores : core_counts) {
    for (const int vehicles : vehicle_counts) {
      const bool most_contended =
          vehicles == vehicle_counts.back() && cores == core_counts.front();
      telemetry::Telemetry* captured = nullptr;
      results.push_back(run_config(
          vehicles, cores, ticks, field, matcher, base.world, fleet_seed,
          &sidecar, most_contended ? &captured : nullptr));
      if (captured != nullptr) {
        delete contended_telemetry;
        contended_telemetry = captured;
        contended_makespan = kTick * ticks;
      }
    }
  }

  bench::print_subtitle("offload latency / fallback / throughput (virtual time)");
  std::printf("%10s %7s %10s %10s %10s %12s %8s %8s %9s\n", "vehicles", "cores",
              "p50", "p99", "fallback", "throughput", "depth", "batched", "fair");
  for (const ConfigResult& r : results) {
    std::printf("%10d %7d %10s %10s %9.1f%% %9.1f r/s %8zu %7.0f%% %9.2f\n",
                r.vehicles, r.cores, bench::fmt_time(r.p50_s).c_str(),
                bench::fmt_time(r.p99_s).c_str(), r.fallback_rate * 100.0,
                r.throughput_rps, r.max_session_depth, r.batched_fraction * 100.0,
                r.fairness_ratio);
  }

  // ---- acceptance ----------------------------------------------------------
  bool all_bounded = true;
  bool batching_observed = false;
  bool fair = true;
  const ConfigResult* overloaded = nullptr;   // most vehicles, fewest cores
  const ConfigResult* uncontended = nullptr;  // fewest vehicles, most cores
  for (const ConfigResult& r : results) {
    all_bounded &= r.queue_bounded;
    if (r.vehicles > 1) batching_observed |= r.batched_fraction > 0.0;
    // Fair-share: in multi-vehicle configs, no vehicle's mean wait is a
    // large multiple of the fleet average (stride scheduling, equal weights).
    if (r.vehicles >= 32 && r.fairness_ratio > 4.0) fair = false;
    if (r.vehicles == 128 && r.cores == 4) overloaded = &r;
    if (r.vehicles == 1 && r.cores == 16) uncontended = &r;
  }
  const bool fallback_rises = overloaded != nullptr && uncontended != nullptr &&
                              overloaded->fallback_rate > 0.10 &&
                              uncontended->fallback_rate < 0.01;

  bench::print_subtitle("acceptance");
  std::printf("queue depth bounded everywhere:      %s\n", all_bounded ? "yes" : "NO");
  std::printf("fallback rises under overload:       %s\n", fallback_rises ? "yes" : "NO");
  std::printf("cross-vehicle batching observed:     %s\n",
              batching_observed ? "yes" : "NO");
  std::printf("fair-share holds under contention:   %s\n", fair ? "yes" : "NO");

  write_json(results, smoke, batching_observed, fallback_rises, all_bounded, fair);
  sidecar.write();

  if (contended_telemetry != nullptr) {
    const telemetry::CriticalPathResult cp = core::write_critical_path_file(
        "BENCH_fleet_scale_critical_path.json", contended_telemetry->tracer(),
        contended_makespan);
    std::printf("critical path sidecar: BENCH_fleet_scale_critical_path.json "
                "(%llu spans, %.0f%% attributed)\n",
                static_cast<unsigned long long>(cp.spans_total),
                cp.named_fraction() * 100.0);
    delete contended_telemetry;
  }

  const bool ok = all_bounded && fallback_rises && batching_observed && fair;
  if (!ok) std::printf("\nACCEPTANCE FAILED\n");
  return ok ? 0 : 1;
}
