// Fig. 10: processing time of the velocity-dependent path (CostmapGen +
// Path Tracking + Velocity Multiplexer) under different numbers of threads
// and trajectory samples, on the three platforms. Only Path Tracking's
// scoreTrajectory is parallel (Fig. 5); the costmap update and mux are
// sequential — which is why parallelization saturates around 4 threads and
// the high-frequency gateway beats the manycore cloud here.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "control/trajectory_rollout.h"
#include "control/velocity_mux.h"
#include "perception/costmap2d.h"
#include "perception/occupancy_grid.h"
#include "platform/calibration.h"
#include "platform/cost_model.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

using namespace lgv;

namespace {

struct VdpFixture {
  sim::Scenario scenario = sim::make_lab_scenario();
  perception::Costmap2D costmap;
  msg::LaserScan scan;
  msg::PathMsg path;
  Pose2D pose;

  VdpFixture()
      : costmap(scenario.world.frame().origin, scenario.world.width_m(),
                scenario.world.height_m()) {
    costmap.set_static_map(perception::OccupancyGrid::from_binary(
                               scenario.world.frame(), scenario.world.grid())
                               .to_msg(0.0));
    costmap.inflate();
    pose = scenario.start;
    sim::LidarConfig lc;
    lc.range_noise_sigma = 0.0;
    sim::Lidar lidar(lc);
    scan = lidar.scan(scenario.world, pose, 0.0);
    for (double x = pose.x; x < pose.x + 3.0; x += 0.25) {
      path.poses.emplace_back(x, pose.y + 0.4 * (x - pose.x), 0.3);
    }
  }
};

/// One VDP pass: costmap update + rollout + mux, with `samples` trajectories
/// and `threads` workers for the parallel kernel. Returns the work profile.
platform::WorkProfile vdp_profile(VdpFixture& fx, int samples, int threads) {
  platform::ExecutionContext ctx(nullptr, threads);
  const perception::CostmapUpdateStats cg = fx.costmap.update(fx.pose, fx.scan);
  ctx.serial_work(static_cast<double>(cg.raytraced_cells) *
                      platform::calib::kCostmapRaytraceCyclesPerCell +
                  static_cast<double>(cg.inflated_cells) *
                      platform::calib::kInflationCyclesPerCell);
  control::RolloutConfig rc;
  rc.samples = samples;
  control::TrajectoryRollout rollout(rc);
  rollout.compute(fx.costmap, fx.path, fx.pose, {0.2, 0.0}, 0.6, ctx);
  ctx.serial_work(platform::calib::kVelMuxCyclesPerCommand);
  return ctx.profile();
}

}  // namespace

int main() {
  bench::print_title(
      "Fig. 10 — VDP (CG + PT + VM) processing time vs threads × samples");
  VdpFixture fx;

  const std::vector<int> sample_counts = {200, 600, 1000, 2000};
  struct PlatformCase {
    const char* label;
    platform::CostModel model;
    std::vector<int> threads;
  };
  const std::vector<PlatformCase> platforms = {
      {"(a) Turtlebot3", platform::CostModel(platform::turtlebot3_spec()), {1, 2, 4}},
      {"(b) Edge gateway", platform::CostModel(platform::edge_gateway_spec()),
       {1, 2, 4, 8}},
      {"(c) Cloud server", platform::CostModel(platform::cloud_server_spec()),
       {1, 2, 4, 8, 12, 24}},
  };

  std::vector<double> baseline;  // local, single thread
  for (int s : sample_counts) {
    baseline.push_back(platforms[0].model.execution_time(vdp_profile(fx, s, 1)));
  }

  double best_gw = 0.0, best_cloud = 0.0;
  std::vector<double> gw_times_by_thread;  // at max samples, for plateau check
  for (const PlatformCase& pc : platforms) {
    bench::print_subtitle(std::string(pc.label) + " — milliseconds per VDP pass");
    std::vector<std::string> cols;
    for (int s : sample_counts) cols.push_back("S=" + std::to_string(s));
    std::vector<std::string> rows;
    std::vector<std::vector<std::string>> cells;
    for (int t : pc.threads) {
      rows.push_back("N=" + std::to_string(t));
      std::vector<std::string> line;
      for (size_t si = 0; si < sample_counts.size(); ++si) {
        const double time = pc.model.execution_time(vdp_profile(fx, sample_counts[si], t));
        line.push_back(bench::fmt(time * 1e3, 1));
        const double speedup = baseline[si] / time;
        if (pc.label[1] == 'b') {
          best_gw = std::max(best_gw, speedup);
          if (si == sample_counts.size() - 1) gw_times_by_thread.push_back(time);
        }
        if (pc.label[1] == 'c') best_cloud = std::max(best_cloud, speedup);
      }
      cells.push_back(std::move(line));
    }
    bench::print_grid("threads\\smpls", cols, rows, cells);
  }

  bench::print_subtitle("Headline numbers");
  std::printf("edge gateway : up to %.2fx vs local  (paper: up to 23.92x)\n", best_gw);
  std::printf("cloud server : up to %.2fx vs local  (paper: up to 17.29x)\n", best_cloud);
  std::printf("shape checks : gateway > cloud for VDP: %s\n",
              best_gw > best_cloud ? "YES" : "NO");
  if (gw_times_by_thread.size() >= 4) {
    const double gain_past_4 =
        gw_times_by_thread[2] / gw_times_by_thread[3];  // N=4 → N=8
    std::printf("             : gateway gain from 4 to 8 threads only %.2fx "
                "(paper: parallelization has no impact past 4 threads)\n",
                gain_past_4);
  }
  return 0;
}
