// Fig. 14: the gap between the Eq. 2c maximum velocity and the real velocity
// across environment phases — obstacle avoidance, heading straight, turning.
// Runs the obstacle-course scenario under three parallelization levels and
// prints both traces; the higher the cap, the bigger the gap in the obstacle
// and turning phases (§VIII-E's adaptivity argument for shedding cloud
// parallelism when the vehicle can't use the speed).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mission_runner.h"
#include "core/report_io.h"

using namespace lgv;
using core::WorkloadKind;
using platform::Host;

namespace {

struct PhaseStats {
  double cap_sum = 0.0;
  double real_sum = 0.0;
  int n = 0;
  double gap() const { return n ? (cap_sum - real_sum) / n : 0.0; }
  double cap() const { return n ? cap_sum / n : 0.0; }
  double real() const { return n ? real_sum / n : 0.0; }
};

}  // namespace

int main() {
  bench::print_title(
      "Fig. 14 — maximum velocity vs real velocity across path phases");

  bench::TelemetrySidecar sidecar("fig14");
  const std::vector<core::DeploymentPlan> plans = {
      core::local_plan(WorkloadKind::kNavigationWithMap),            // low cap
      core::offload_plan("gateway_2t", Host::kEdgeGateway, 2,
                         WorkloadKind::kNavigationWithMap),          // medium
      core::offload_plan("gateway_8t", Host::kEdgeGateway, 8,
                         WorkloadKind::kNavigationWithMap),          // high cap
  };

  for (const auto& plan : plans) {
    core::MissionConfig cfg;
    cfg.timeout = 700.0;
    core::MissionRunner runner(sim::make_obstacle_course_scenario(), plan, cfg);
    const core::MissionReport r = runner.run();
    sidecar.add(plan.name, r.metrics);
    if (telemetry::Telemetry* t = runner.runtime().telemetry()) {
      const std::string prefix = "fig14_" + plan.name;
      const telemetry::CriticalPathResult cp = core::write_critical_path_file(
          prefix + "_critical_path.json", t->tracer(), r.completion_time);
      std::printf("attribution: named %.1f%% | network %.2fs, compute %.2fs (%s)\n",
                  cp.named_fraction() * 100.0, cp.network_s, cp.compute_s,
                  (prefix + "_critical_path.json").c_str());
    }

    bench::print_subtitle(plan.name + (r.success ? "" : "  [timed out]"));
    // Phase attribution by mission progress: the course is obstacles → long
    // straight corridor → right turn, so split the trace by thirds of
    // distance covered ≈ thirds of the x-extent. We use time fractions of the
    // completed mission as the proxy.
    PhaseStats phases[3];
    const size_t n = r.velocity_trace.size();
    for (size_t i = 0; i < n; ++i) {
      const double frac = static_cast<double>(i) / std::max<size_t>(1, n - 1);
      const int phase = frac < 0.42 ? 0 : (frac < 0.8 ? 1 : 2);
      phases[phase].cap_sum += r.velocity_trace[i].cap;
      phases[phase].real_sum += r.velocity_trace[i].real;
      ++phases[phase].n;
    }
    const char* names[3] = {"avoiding obstacles", "heading straight", "turning"};
    std::printf("%-20s %10s %10s %10s\n", "phase", "cap(m/s)", "real(m/s)", "gap");
    for (int p = 0; p < 3; ++p) {
      std::printf("%-20s %10.2f %10.2f %10.2f\n", names[p], phases[p].cap(),
                  phases[p].real(), phases[p].gap());
    }
    std::printf("completion %.1fs, avg velocity %.2f m/s\n", r.completion_time,
                r.average_velocity);
    // The paper's observation: only the straight phase closes the gap.
    const double straight_gap = phases[1].gap();
    const double worst_other = std::max(phases[0].gap(), phases[2].gap());
    std::printf("straight-phase gap %.2f vs worst other phase %.2f → %s\n",
                straight_gap, worst_other,
                straight_gap <= worst_other + 0.05 ? "gap closes when straight"
                                                   : "unexpected");
  }

  std::printf(
      "\nExpected shape: the higher the maximum velocity is set (more\n"
      "parallelization), the bigger the cap-vs-real gap in the obstacle and\n"
      "turning phases — motivation for the Controller's recommend_threads().\n");

  // ---- §VIII-E applied: shed cloud parallelism the vehicle can't use.
  bench::print_subtitle("thread shedding (adaptive_parallelism) — cloud cost");
  auto run_with = [&](bool adaptive) {
    core::MissionConfig cfg;
    cfg.timeout = 700.0;
    cfg.adaptive_parallelism = adaptive;
    core::MissionRunner runner(
        sim::make_obstacle_course_scenario(),
        core::offload_plan(adaptive ? "gateway_8t_shed" : "gateway_8t_fixed",
                           Host::kEdgeGateway, 8, WorkloadKind::kNavigationWithMap),
        cfg);
    return runner.run();
  };
  const core::MissionReport fixed = run_with(false);
  const core::MissionReport shed = run_with(true);
  sidecar.add("gateway_8t_fixed", fixed.metrics);
  sidecar.add("gateway_8t_shed", shed.metrics);
  std::printf("%-18s %9s %12s %14s %12s\n", "mode", "time(s)", "avg vel",
              "core-seconds", "min threads");
  std::printf("%-18s %9.1f %12.2f %14.1f %12d\n", "fixed 8T", fixed.completion_time,
              fixed.average_velocity, fixed.cloud_core_seconds,
              fixed.min_active_threads);
  std::printf("%-18s %9.1f %12.2f %14.1f %12d\n", "adaptive", shed.completion_time,
              shed.average_velocity, shed.cloud_core_seconds, shed.min_active_threads);
  std::printf("cloud resource saving: %.0f%% for %+.0f%% mission time\n",
              100.0 * (1.0 - shed.cloud_core_seconds /
                                 std::max(1e-9, fixed.cloud_core_seconds)),
              100.0 * (shed.completion_time / fixed.completion_time - 1.0));
  sidecar.write();
  return 0;
}
