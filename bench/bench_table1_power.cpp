// Table I: maximum power consumption of each LGV component (W), plus a
// verification that the implemented power models actually hit those budgets
// at their operating extremes.
#include <cstdio>

#include "bench_util.h"
#include "platform/platform_spec.h"
#include "sim/power.h"

using namespace lgv;

namespace {

void print_budget_row(const sim::ComponentBudget& b) {
  const double total = b.total();
  std::printf("%-14s %6.2f (%2.0f%%) %6.2f (%2.0f%%) %6.2f (%2.0f%%) %6.2f (%2.0f%%)\n",
              b.lgv_name.c_str(), b.sensor_w, 100.0 * b.sensor_w / total, b.motor_w,
              100.0 * b.motor_w / total, b.microcontroller_w,
              100.0 * b.microcontroller_w / total, b.embedded_computer_w,
              100.0 * b.embedded_computer_w / total);
}

}  // namespace

int main() {
  bench::print_title(
      "Table I — Maximum power consumption of each component (Watt)");
  std::printf("%-14s %13s %13s %13s %13s\n", "LGV", "Sensor", "Motor",
              "Microcontr.", "Computer");
  print_budget_row(sim::turtlebot2_budget());
  print_budget_row(sim::turtlebot3_budget());
  print_budget_row(sim::pioneer3dx_budget());

  bench::print_subtitle("Model cross-check (Turtlebot3 operating extremes)");
  sim::PowerModel pm;
  const auto spec = platform::turtlebot3_spec();
  const double full_load_cycles =
      spec.cores * spec.freq_ghz * 1e9 * spec.ipc;  // all 4 cores busy
  std::printf("sensor  (LDS-01 constant draw):          %5.2f W (budget %.2f W)\n",
              pm.sensor_power(), sim::turtlebot3_budget().sensor_w);
  std::printf("microcontroller (OpenCR constant draw):  %5.2f W (budget %.2f W)\n",
              pm.microcontroller_power(), sim::turtlebot3_budget().microcontroller_w);
  std::printf("computer (Eq.1c at full 4-core load):    %5.2f W (budget %.2f W)\n",
              pm.computer_power(full_load_cycles, spec.freq_ghz),
              sim::turtlebot3_budget().embedded_computer_w);
  std::printf("computer (idle floor):                   %5.2f W\n",
              pm.computer_power(0.0, spec.freq_ghz));
  std::printf("motor   (Eq.1d at 1.0 m/s, a=0.5 m/s2):  %5.2f W (budget %.2f W)\n",
              pm.motor_power(1.0, 0.5), sim::turtlebot3_budget().motor_w);
  std::printf("motor   (Eq.1d cruising 0.22 m/s):       %5.2f W\n",
              pm.motor_power(0.22, 0.0));
  std::printf("wireless transmit power (Eq.1b P_trans): %5.2f W\n",
              pm.config().transmit_power_w);
  return 0;
}
