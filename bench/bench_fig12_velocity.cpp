// Fig. 12: the maximum velocity of the LGV during a navigation workload under
// the five deployments of the paper: no offloading, gateway without/with
// parallel optimization (8 threads), cloud without/with parallel optimization
// (12 threads). Prints a 1-per-2s velocity-cap trace plus summary statistics.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mission_runner.h"

using namespace lgv;
using core::WorkloadKind;
using platform::Host;

int main() {
  bench::print_title(
      "Fig. 12 — maximum velocity during navigation, five deployments");

  const std::vector<core::DeploymentPlan> plans = {
      core::local_plan(WorkloadKind::kNavigationWithMap),
      core::offload_plan("gateway", Host::kEdgeGateway, 1,
                         WorkloadKind::kNavigationWithMap),
      core::offload_plan("gateway_8t", Host::kEdgeGateway, 8,
                         WorkloadKind::kNavigationWithMap),
      core::offload_plan("cloud", Host::kCloudServer, 1,
                         WorkloadKind::kNavigationWithMap),
      core::offload_plan("cloud_12t", Host::kCloudServer, 12,
                         WorkloadKind::kNavigationWithMap),
  };

  std::vector<core::MissionReport> reports;
  for (const auto& plan : plans) {
    core::MissionConfig cfg;
    cfg.timeout = 600.0;
    core::MissionRunner runner(sim::make_lab_scenario(), plan, cfg);
    reports.push_back(runner.run());
  }

  bench::print_subtitle("velocity cap (m/s) every 10 s of mission time");
  std::printf("%-12s", "t(s)");
  for (const auto& r : reports) std::printf("%12s", r.deployment.c_str());
  std::printf("\n");
  for (size_t k = 0;; k += 20) {  // trace samples every 0.5 s → 10 s stride
    bool any = false;
    std::printf("%-12.0f", static_cast<double>(k) * 0.5);
    for (const auto& r : reports) {
      if (k < r.velocity_trace.size()) {
        std::printf("%12.2f", r.velocity_trace[k].cap);
        any = true;
      } else {
        std::printf("%12s", "-");
      }
    }
    std::printf("\n");
    if (!any) break;
  }

  bench::print_subtitle("summary");
  std::printf("%-12s %10s %10s %10s %9s\n", "deployment", "peak cap", "avg vel",
              "time(s)", "success");
  double local_peak = 0.0;
  for (const auto& r : reports) {
    if (r.deployment == "local") local_peak = r.peak_velocity_cap;
    std::printf("%-12s %10.2f %10.2f %10.1f %9s\n", r.deployment.c_str(),
                r.peak_velocity_cap, r.average_velocity, r.completion_time,
                r.success ? "yes" : "NO");
  }
  const double best_peak =
      std::max(reports[2].peak_velocity_cap, reports[4].peak_velocity_cap);
  std::printf(
      "\nmax-velocity increase with offloading + parallelization: %.1fx\n"
      "(paper: 4-5x; ordering to check: local < unoptimized < parallelized,\n"
      " gateway+8T >= cloud+12T)\n",
      local_peak > 0 ? best_peak / local_peak : 0.0);
  return 0;
}
