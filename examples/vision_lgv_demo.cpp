// §IX extension demo: the same offloading stack on a vision-based LGV.
// Runs the lab navigation with the laser backend and with the visual-
// odometry backend, shows the localization-failure speed constraint in
// action, and writes the velocity/network traces to CSV via core/report_io.
#include <cstdio>

#include "core/mission_runner.h"
#include "core/report_io.h"

using namespace lgv;

namespace {
core::MissionReport run(core::LocalizationBackend backend) {
  core::MissionConfig cfg;
  cfg.localization = backend;
  cfg.timeout = 700.0;
  core::MissionRunner runner(
      sim::make_lab_scenario(),
      core::offload_plan("gateway_8t", platform::Host::kEdgeGateway, 8,
                         core::WorkloadKind::kNavigationWithMap),
      cfg);
  return runner.run();
}
}  // namespace

int main() {
  std::printf("Vision-based LGV vs laser-based LGV (same offloading stack)\n");
  std::printf("===========================================================\n\n");

  const core::MissionReport laser = run(core::LocalizationBackend::kLaser);
  std::printf("laser LDS localization:\n%s\n", core::summarize(laser).c_str());

  const core::MissionReport vision = run(core::LocalizationBackend::kVision);
  std::printf("visual odometry localization:\n%s\n", core::summarize(vision).c_str());

  std::printf("velocity ratio (laser/vision): %.2fx — the vision LGV drives\n"
              "slower through feature-poor stretches to keep tracking alive\n"
              "(the §IX localization-failure constraint).\n\n",
              laser.average_velocity / std::max(0.01, vision.average_velocity));

  const std::string prefix = "vision_lgv_demo";
  if (core::write_report_files(prefix, vision)) {
    std::printf("traces written: %s_velocity.csv, %s_network.csv, %s_nodes.csv\n",
                prefix.c_str(), prefix.c_str(), prefix.c_str());
  }
  return 0;
}
