// Search & rescue (the paper's §I motivation): map an unknown building with
// frontier-based exploration + RBPF SLAM, with the energy-critical SLAM node
// offloaded to the cloud (Algorithm 1's EC goal). Renders the resulting
// occupancy grid as ASCII art and reports accuracy against ground truth.
#include <cstdio>

#include "core/mission_runner.h"

using namespace lgv;

namespace {

void render_map(const msg::OccupancyGridMsg& map) {
  // Downsample to a terminal-friendly size (2 cells per character column).
  const int step = std::max(1, map.width / 60);
  for (int y = map.height - 1; y >= 0; y -= step * 2) {
    for (int x = 0; x < map.width; x += step) {
      int8_t v = map.at(x, y);
      std::putchar(v < 0 ? ' ' : (v > 65 ? '#' : '.'));
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  std::printf("Exploring an unknown building (frontier exploration + SLAM)\n");
  std::printf("============================================================\n\n");

  const sim::Scenario scenario = sim::make_lab_scenario();
  core::MissionConfig cfg;
  cfg.timeout = 1200.0;
  cfg.slam_particles = 20;
  cfg.rollout_samples = 800;

  core::MissionRunner runner(
      scenario,
      core::offload_plan("cloud_12t", platform::Host::kCloudServer, 12,
                         core::WorkloadKind::kExplorationWithoutMap,
                         core::Goal::kEnergy),
      cfg);

  // Peek into the runtime before the run: Algorithm 1's placement decision.
  const core::MissionReport r = runner.run();

  std::printf("mission %s in %.0f s (drove %.1f m, avg %.2f m/s)\n",
              r.success ? "complete" : "TIMED OUT", r.completion_time,
              r.distance_traveled, r.average_velocity);
  std::printf("mapped area: %.1f m^2 | energy: %.0f J | SLAM work: %.2f Gcycles "
              "across %zu updates\n\n",
              r.explored_area_m2, r.energy.total(),
              r.node_cycles.count("localization")
                  ? r.node_cycles.at("localization") / 1e9
                  : 0.0,
              r.node_invocations.count("localization")
                  ? r.node_invocations.at("localization")
                  : 0);

  // Re-run SLAM standalone on the recorded tour to render a map (the mission
  // report doesn't carry the grid; this demonstrates the perception API).
  std::printf("map built from a scripted tour of the same building:\n");
  const auto log = sim::record_scan_log(scenario, 0.4, 0.2, 180);
  perception::GmappingConfig gc;
  gc.particles = 15;
  perception::Gmapping slam(gc, scenario.world.frame().origin,
                            scenario.world.width_m(), scenario.world.height_m());
  slam.initialize(log[0].odom_pose);
  platform::ExecutionContext ctx;
  for (const auto& e : log) {
    msg::Odometry odom;
    odom.pose = e.odom_pose;
    odom.header.stamp = e.scan.header.stamp;
    slam.process(odom, e.scan, ctx);
  }
  render_map(slam.best_map().to_msg(0.0));
  std::printf("\nfinal pose error vs ground truth: %.2f m\n",
              distance(slam.best_pose().position(), log.back().true_pose.position()));
  return 0;
}
