// Quickstart: run one navigation mission on the simulated Turtlebot3, first
// fully on-board, then offloaded to the edge gateway with 8-thread cloud
// acceleration, and compare time and energy. This is the smallest end-to-end
// use of the library's public API.
#include <cstdio>

#include "core/mission_runner.h"

using namespace lgv;

namespace {
void summarize(const core::MissionReport& r) {
  std::printf("  deployment : %s\n", r.deployment.c_str());
  std::printf("  success    : %s\n", r.success ? "yes" : "NO");
  std::printf("  time       : %.1f s (standby %.1f s)\n", r.completion_time,
              r.standby_time);
  std::printf("  distance   : %.1f m (avg %.2f m/s, peak cap %.2f m/s)\n",
              r.distance_traveled, r.average_velocity, r.peak_velocity_cap);
  std::printf("  energy     : %.1f J  [motor %.1f | computer %.1f | sensor %.1f | "
              "micro %.1f | wireless %.2f]\n\n",
              r.energy.total(), r.energy.motor, r.energy.computer, r.energy.sensor,
              r.energy.microcontroller, r.energy.wireless);
}
}  // namespace

int main() {
  std::printf("LGV cloud offloading — quickstart\n");
  std::printf("=================================\n\n");

  // A 12×10 m lab world with interior walls and furniture; the WAP sits near
  // the start pose and the goal is at the far end.
  const sim::Scenario scenario = sim::make_lab_scenario();

  std::printf("1) Everything on the Turtlebot3 (Raspberry Pi 3B+):\n");
  core::MissionRunner local(scenario,
                            core::local_plan(core::WorkloadKind::kNavigationWithMap));
  const core::MissionReport local_report = local.run();
  summarize(local_report);

  std::printf("2) Offloaded: Algorithm 1 moves CostmapGen + Path Tracking to the\n"
              "   edge gateway; the parallel scoreTrajectory kernel uses 8 threads:\n");
  core::MissionRunner offloaded(
      scenario, core::offload_plan("gateway_8t", platform::Host::kEdgeGateway, 8,
                                   core::WorkloadKind::kNavigationWithMap));
  const core::MissionReport off_report = offloaded.run();
  summarize(off_report);

  std::printf("offloading gain: %.2fx faster mission, %.2fx less energy\n",
              local_report.completion_time / off_report.completion_time,
              local_report.energy.total() / off_report.energy.total());
  return 0;
}
