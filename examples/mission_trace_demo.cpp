// Telemetry walkthrough: runs one short adaptive offloaded mission with the
// telemetry subsystem enabled and writes the two artifacts it produces —
//
//   mission_trace.json    Chrome trace-event JSON. Open it at ui.perfetto.dev
//                         (or chrome://tracing): per-node execution lanes
//                         grouped under lgv / edge_gateway, middleware
//                         publish/deliver/drop instants per topic, Switcher
//                         state-migration spans, and an Algorithm 1/2
//                         decision lane with the observation snapshot each
//                         decision was made on.
//   mission_metrics.json  Every metric series (counters / gauges /
//                         histograms with p50/p90/p99) keyed
//                         `family{label=value}`.
//
// Also demonstrates Logger virtual-time stamping: registering the runtime's
// clock stamps every log line with [t=...] so logs correlate with spans.
// tools/run_mission_trace.sh runs this binary and validates both artifacts.
#include <cstdio>
#include <fstream>

#include "common/logging.h"
#include "core/mission_runner.h"
#include "core/report_io.h"

using namespace lgv;

int main() {
  core::DeploymentPlan plan = core::offload_plan(
      "gateway_8t", platform::Host::kEdgeGateway, 8,
      core::WorkloadKind::kNavigationWithMap);
  core::MissionConfig cfg;
  cfg.timeout = 300.0;
  cfg.rollout_samples = 800;  // short demo run, same pipeline shape

  core::MissionRunner runner(sim::make_lab_scenario(), plan, cfg);

  // Stamp log lines with virtual time for the duration of the run.
  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().set_clock(&runner.runtime().clock());
  LGV_INFO("demo", "starting mission with telemetry enabled");

  const core::MissionReport report = runner.run();

  LGV_INFO("demo", "mission finished, exporting artifacts");
  Logger::instance().set_clock(nullptr);  // runner owns the clock

  std::printf("%s", core::summarize(report).c_str());

  const telemetry::Telemetry* tel = runner.runtime().telemetry();
  if (tel == nullptr) {
    std::printf("telemetry disabled — nothing to export\n");
    return 1;
  }
  bool ok = core::write_trace_file("mission_trace.json", tel->tracer());
  {
    std::ofstream f("mission_metrics.json");
    core::write_metrics_json(f, report);
    ok = ok && static_cast<bool>(f);
  }
  if (!ok) {
    std::printf("failed to write artifacts\n");
    return 1;
  }
  std::printf("\nwrote mission_trace.json (%zu events) — load it at "
              "ui.perfetto.dev\n",
              tel->tracer().size());
  std::printf("wrote mission_metrics.json (%zu series, %zu families)\n",
              report.metrics.samples.size(), report.metrics.families().size());
  return 0;
}
