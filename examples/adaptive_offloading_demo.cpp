// Network-robustness demo (§VI): the route crosses a wireless dead zone far
// from the access point. A statically offloaded stack strands the vehicle —
// velocity commands from the remote Path Tracking node stop arriving and the
// multiplexer times out to a safety stop. With Algorithm 2 the Profiler's
// bandwidth/direction observables trigger migration back to the LGV, and the
// mission survives. Prints the live network trace of both runs.
#include <cstdio>

#include "core/mission_runner.h"

using namespace lgv;

namespace {

core::MissionReport run(bool adaptive) {
  core::DeploymentPlan plan = core::offload_plan(
      adaptive ? "adaptive" : "static", platform::Host::kEdgeGateway, 8,
      core::WorkloadKind::kNavigationWithMap);
  plan.adaptive = adaptive;
  core::MissionConfig cfg;
  cfg.timeout = 600.0;
  cfg.rollout_samples = 800;
  // Aggressive indoor path loss: the link dies ~6 m from the WAP, and the
  // goal is ~8.5 m out.
  cfg.channel.path_loss_exponent = 6.0;
  core::MissionRunner runner(sim::make_open_scenario(), plan, cfg);
  return runner.run();
}

void print_trace(const core::MissionReport& r) {
  std::printf("  %6s %12s %10s %10s %10s\n", "t(s)", "latency(ms)", "bw(Hz)",
              "dir", "placement");
  for (size_t i = 0; i < r.network_trace.size(); i += 20) {  // every 10 s
    const core::NetworkSample& s = r.network_trace[i];
    std::printf("  %6.0f %12.1f %10.1f %10.2f %10s\n", s.t, s.latency_ms,
                s.bandwidth_hz, s.direction, s.remote ? "remote" : "LOCAL");
  }
  std::printf("  -> %s in %.0f s, standby %.0f s, %llu placement switch(es)\n\n",
              r.success ? "SUCCESS" : "FAILED", r.completion_time, r.standby_time,
              static_cast<unsigned long long>(r.placement_switches));
}

}  // namespace

int main() {
  std::printf("Adaptive offloading under a wireless dead zone\n");
  std::printf("==============================================\n\n");

  std::printf("1) static offloading (Algorithm 2 OFF):\n");
  print_trace(run(/*adaptive=*/false));

  std::printf("2) adaptive offloading (Algorithm 2 ON, threshold 4 Hz of the 5 Hz\n"
              "   stream + signal direction):\n");
  print_trace(run(/*adaptive=*/true));

  std::printf("The static run strands once the kernel buffer blocks (Fig. 7): the\n"
              "last measured latency still looks healthy, but bandwidth collapses\n"
              "— exactly why Algorithm 2 monitors bandwidth, not tail latency.\n");
  return 0;
}
