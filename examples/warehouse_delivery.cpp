// Package delivery (the paper's §I motivating workload): a low-cost ground
// vehicle tours several drop-off points in an office-floor world on one
// battery charge. Each leg is a navigation mission; we compare how far the
// battery gets with and without offloading, using the library's Battery model
// on top of the per-leg energy reports.
#include <cstdio>
#include <vector>

#include "core/mission_runner.h"

using namespace lgv;

namespace {

struct TourResult {
  int deliveries = 0;
  double total_time = 0.0;
  double total_energy = 0.0;
  double battery_left = 1.0;
};

TourResult run_tour(const core::DeploymentPlan& plan) {
  sim::Scenario base = sim::make_office_scenario();
  const std::vector<Pose2D> dropoffs = {
      {5.0, 2.5, 0.0}, {9.5, 11.5, 0.0}, {13.5, 2.5, 0.0}, {18.5, 12.5, 0.0}};

  sim::Battery battery(19.98);  // Turtlebot3's pack
  TourResult result;
  Pose2D current = base.start;
  for (const Pose2D& dropoff : dropoffs) {
    sim::Scenario leg = base;
    leg.start = current;
    leg.goal = dropoff;
    core::MissionConfig cfg;
    cfg.timeout = 900.0;
    core::MissionRunner runner(leg, plan, cfg);
    const core::MissionReport r = runner.run();
    if (!r.success) {
      std::printf("    leg to (%.1f, %.1f): FAILED after %.0f s\n", dropoff.x,
                  dropoff.y, r.completion_time);
      break;
    }
    battery.drain(r.energy.total());
    result.total_time += r.completion_time;
    result.total_energy += r.energy.total();
    std::printf("    leg to (%4.1f, %4.1f): %6.1f s, %7.1f J, battery %.1f%%\n",
                dropoff.x, dropoff.y, r.completion_time, r.energy.total(),
                100.0 * battery.state_of_charge());
    if (battery.depleted()) break;
    ++result.deliveries;
    current = dropoff;
  }
  result.battery_left = battery.state_of_charge();
  return result;
}

}  // namespace

int main() {
  std::printf("Warehouse delivery tour — 4 drop-offs across a 20x14 m floor\n");
  std::printf("============================================================\n");

  std::printf("\n  on-board only:\n");
  const TourResult local = run_tour(core::local_plan(core::WorkloadKind::kNavigationWithMap));

  std::printf("\n  offloaded to the edge gateway (8 threads):\n");
  const TourResult off = run_tour(core::offload_plan(
      "gateway_8t", platform::Host::kEdgeGateway, 8,
      core::WorkloadKind::kNavigationWithMap));

  std::printf("\nsummary: local %d deliveries in %.0f s using %.0f J; offloaded %d\n"
              "deliveries in %.0f s using %.0f J (%.2fx faster tour, %.2fx less\n"
              "energy -> more tours per charge)\n",
              local.deliveries, local.total_time, local.total_energy, off.deliveries,
              off.total_time, off.total_energy, local.total_time / off.total_time,
              local.total_energy / off.total_energy);
  return 0;
}
