// critical_path: attribute a mission trace's makespan into named buckets.
//
//   critical_path <trace.jsonl> [-o out.json] [--makespan SECONDS]
//
// Reads the one-event-per-line JSONL written by Tracer::write_jsonl (or
// report_io's `<prefix>_trace.jsonl`), runs the sweep-line attribution from
// telemetry/critical_path.h, writes the `critical_path/1` JSON (stdout by
// default) and prints a human-readable breakdown to stderr.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/telemetry/critical_path.h"

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace.jsonl> [-o out.json] [--makespan SECONDS]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  double makespan = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "--makespan") == 0 && i + 1 < argc) {
      makespan = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "-h") == 0 || std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else if (input.empty()) {
      input = argv[i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (input.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream in(input);
  if (!in) {
    std::cerr << "critical_path: cannot open " << input << "\n";
    return 1;
  }
  size_t skipped = 0;
  const std::vector<lgv::telemetry::TraceEvent> events =
      lgv::telemetry::parse_trace_jsonl(in, &skipped);
  if (events.empty()) {
    std::cerr << "critical_path: no parseable events in " << input << "\n";
    return 1;
  }

  const lgv::telemetry::CriticalPathResult result =
      lgv::telemetry::attribute_critical_path(events, makespan);

  if (output.empty()) {
    lgv::telemetry::write_critical_path_json(std::cout, result);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::cerr << "critical_path: cannot write " << output << "\n";
      return 1;
    }
    lgv::telemetry::write_critical_path_json(out, result);
  }

  std::cerr.setf(std::ios::fixed);
  std::cerr.precision(3);
  std::cerr << "makespan " << result.makespan_s << " s over " << result.spans_total
            << " spans in " << result.traces << " traces";
  if (skipped > 0) std::cerr << " (" << skipped << " unparseable lines skipped)";
  if (result.orphan_spans > 0) std::cerr << ", " << result.orphan_spans << " orphans";
  std::cerr << "\n";
  for (const lgv::telemetry::CriticalPathBucket& b : result.buckets) {
    if (b.seconds <= 0.0) continue;
    std::cerr << "  " << b.name << ": " << b.seconds << " s ("
              << b.fraction * 100.0 << "%, " << b.spans << " spans)\n";
  }
  std::cerr << "  named fraction " << result.named_fraction() * 100.0
            << "% | network " << result.network_s << " s, compute "
            << result.compute_s << " s\n";
  return 0;
}
