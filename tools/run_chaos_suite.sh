#!/usr/bin/env bash
# Chaos suite: build the fault-injection subsystem under ASan and TSan
# (LGV_SANITIZE=address / thread), run every fault-related test plus a smoke
# pass of bench_fault_injection in each build, and validate the two emitted
# artifacts:
#
#   BENCH_fault_injection.json            degradation curves (docs/faults.md)
#   BENCH_fault_injection_telemetry.json  per-run metric snapshots
#
# Fails (non-zero exit) on any sanitizer report, test failure, missing
# artifact, or a degradation curve that does not show the graceful-
# degradation shape (adaptive+fallback completing with >=1 fallback while
# the non-adaptive plan out-stalls it).
#
# Usage: tools/run_chaos_suite.sh [--asan-only|--tsan-only]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
RUN_ASAN=1
RUN_TSAN=1
for arg in "$@"; do
  case "$arg" in
    --asan-only) RUN_TSAN=0 ;;
    --tsan-only) RUN_ASAN=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# Everything the fault-injection PR touches: the injector itself, the lease
# protocol in OffloadRuntime, Algorithm 2 hysteresis edges, the Switcher
# direction/accounting fixes, the link telemetry fixes, and the end-to-end
# fallback missions — plus the wire-integrity layer (frame CRC/sequencing,
# adversarial deserialization, the structure-aware fuzz corpus).
GTEST_FILTER='FaultSchedule*:FaultInjector*:FaultInjection*:OffloadRuntime*'
GTEST_FILTER+=':Algorithm2*:Controller*:Switcher*:UdpLink*:TcpLink*'
GTEST_FILTER+=':WireFrame*:WireFuzz*:WireAdversarial*:Crc32c*'

validate_artifacts() {
  python3 - "$1/BENCH_fault_injection.json" \
    "$1/BENCH_fault_injection_telemetry.json" <<'EOF'
import json, sys

curves_path, sidecar_path = sys.argv[1], sys.argv[2]

with open(curves_path) as f:
    curves = json.load(f)
assert curves["bench"] == "fault_injection"
assert curves["nominal_completion_s"] > 0.0
for axis in ("outage_sweep", "stall_sweep"):
    points = curves[axis]
    assert points, f"{axis} is empty"
    for p in points:
        plans = {r["plan"] for r in p["runs"]}
        assert plans == {"local", "offload_fixed", "adaptive",
                         "adaptive_fallback"}, f"{axis}: plans {plans}"
        for r in p["runs"]:
            assert r["completion_s"] > 0.0 and r["energy_j"] > 0.0

# Graceful degradation at the harshest outage: the fallback plan completes
# and actually used the lease; the non-adaptive plan spent visibly longer
# standing still.
worst = curves["outage_sweep"][-1]
runs = {r["plan"]: r for r in worst["runs"]}
fb, fixed = runs["adaptive_fallback"], runs["offload_fixed"]
assert fb["success"], "adaptive_fallback did not complete the mission"
assert fb["fallbacks"] >= 1, "no lease fallback fired during the outage"
assert (not fixed["success"]) or fixed["standby_s"] > fb["standby_s"], \
    "non-adaptive plan did not out-stall the fallback plan"

with open(sidecar_path) as f:
    sidecar = json.load(f)
assert sidecar["bench"] == "fault_injection"
assert sidecar["runs"], "telemetry sidecar has no runs"
families = set()
for series in sidecar["runs"].values():
    families |= {s["family"] for s in series.values()}
for fam in ("fault_injected_total", "fallback_total", "lease_grants_total",
            "net_retransmits_total"):
    assert fam in families, f"metric family {fam} missing from sidecar"

print(f"artifacts OK: outage x{len(curves['outage_sweep'])}, "
      f"stall x{len(curves['stall_sweep'])}, "
      f"{len(sidecar['runs'])} sidecar runs, "
      f"worst outage {worst['outage_s']}s -> fallback "
      f"{fb['completion_s']:.1f}s vs fixed {fixed['completion_s']:.1f}s")
EOF
}

validate_corruption_artifacts() {
  python3 - "$1/BENCH_corruption_sweep.json" \
    "$1/BENCH_corruption_sweep_telemetry.json" <<'EOF'
import json, sys

curves_path, sidecar_path = sys.argv[1], sys.argv[2]

with open(curves_path) as f:
    curves = json.load(f)
assert curves["bench"] == "corruption_sweep"
assert curves["nominal_completion_s"] > 0.0
assert curves["sweep"], "corruption sweep is empty"
for p in curves["sweep"]:
    plans = {r["plan"] for r in p["runs"]}
    assert plans == {"local", "offload_fixed", "adaptive",
                     "adaptive_fallback"}, f"plans {plans}"
    for r in p["runs"]:
        assert r["completion_s"] > 0.0 and r["energy_j"] > 0.0

# Wire-integrity shape at the harshest corruption point: the fallback plan
# completes AND the integrity layer visibly rejected frames — corrupt bytes
# were counted out, not consumed.
worst = curves["sweep"][-1]
runs = {r["plan"]: r for r in worst["runs"]}
fb = runs["adaptive_fallback"]
assert fb["success"], "adaptive_fallback did not survive scheduled corruption"
assert fb["frames_rejected"] > 0, "no frames rejected under corrupt_burst"
assert fb["rejected_crc"] > 0, "CRC rejections absent despite bit flips"
# The all-local plan has no wire to corrupt: its mission must be untouched.
assert runs["local"]["success"], "local plan should be immune to wire faults"

with open(sidecar_path) as f:
    sidecar = json.load(f)
assert sidecar["bench"] == "corruption_sweep"
assert sidecar["runs"], "telemetry sidecar has no runs"
families = set()
for series in sidecar["runs"].values():
    families |= {s["family"] for s in series.values()}
for fam in ("net_frames_rejected_total", "net_corrupted_total",
            "fault_injected_total"):
    assert fam in families, f"metric family {fam} missing from sidecar"

print(f"corruption artifacts OK: {len(curves['sweep'])} points, "
      f"worst flip {worst['flip_prob']} -> fallback "
      f"{fb['completion_s']:.1f}s with {fb['frames_rejected']} rejects")
EOF
}

run_leg() {
  local name="$1" sanitizer="$2"
  local build_dir="$REPO_ROOT/build-$name"
  echo "=== $name leg (LGV_SANITIZE=$sanitizer) ==="
  cmake -B "$build_dir" -S "$REPO_ROOT" -DLGV_SANITIZE="$sanitizer" >/dev/null
  cmake --build "$build_dir" --target lgv_tests bench_fault_injection \
    bench_corruption_sweep -j
  "$build_dir/tests/lgv_tests" --gtest_filter="$GTEST_FILTER" \
    --gtest_brief=1
  local out_dir
  out_dir="$(mktemp -d)"
  (cd "$out_dir" && "$build_dir/bench/bench_fault_injection" --smoke)
  validate_artifacts "$out_dir"
  # The forced lease expiries in the outage sweep must leave a flight-recorder
  # post-mortem behind (docs/observability.md): the last trace window before
  # the failure edge, dumped once per run.
  if ! ls "$out_dir"/fault_*_flight_lease_expiry.jsonl >/dev/null 2>&1; then
    echo "FAIL: no flight-recorder dump artifact after forced lease expiry" >&2
    exit 1
  fi
  for dump in "$out_dir"/fault_*_flight_lease_expiry.jsonl; do
    [[ -s "$dump" ]] || { echo "FAIL: empty flight dump $dump" >&2; exit 1; }
  done
  (cd "$out_dir" && "$build_dir/bench/bench_corruption_sweep" --smoke)
  validate_corruption_artifacts "$out_dir"
  rm -rf "$out_dir"
  echo "=== $name leg PASSED ==="
}

[[ "$RUN_ASAN" == "1" ]] && run_leg asan address
[[ "$RUN_TSAN" == "1" ]] && run_leg tsan thread

echo "chaos suite PASSED"
