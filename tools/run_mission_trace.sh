#!/usr/bin/env bash
# Run a short offloaded mission with telemetry enabled and validate the two
# artifacts the telemetry subsystem produces:
#
#   mission_trace.json    Chrome trace-event JSON (Perfetto-loadable)
#   mission_metrics.json  metric series keyed `family{label=value}`
#
# Fails (non-zero exit) if either artifact is missing/unparseable, if the
# trace lacks the expected lanes and decision markers, or if any required
# metric family is absent. With --tsan, also builds the telemetry/thread-pool
# tests under ThreadSanitizer (LGV_SANITIZE=thread) and runs them.
#
# Usage: tools/run_mission_trace.sh [build-dir] [--tsan]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
RUN_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
fi
BUILD_DIR="$(cd "$BUILD_DIR" && pwd)"  # absolute: the demo runs from a temp dir
cmake --build "$BUILD_DIR" --target mission_trace_demo -j

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
(cd "$OUT_DIR" && "$BUILD_DIR/examples/mission_trace_demo")

python3 - "$OUT_DIR/mission_trace.json" "$OUT_DIR/mission_metrics.json" <<'EOF'
import json, sys

trace_path, metrics_path = sys.argv[1], sys.argv[2]

with open(trace_path) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"

process_names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
spans = [e for e in events if e["ph"] == "X"]
names = {e["name"] for e in events}

required_lanes = {"lgv", "edge_gateway", "decisions"}
missing = required_lanes - process_names
assert not missing, f"missing trace lanes: {missing} (have {process_names})"
assert spans, "no complete ('X') spans — node executions not traced"
assert "alg1.initial_placement" in names, "no Algorithm 1 decision marker"
assert "mw.publish" in names, "no middleware publish instants"

with open(metrics_path) as f:
    metrics = json.load(f)
families = {s["family"] for s in metrics.values()}

required_families = {
    "mw_published_total", "mw_delivered_total", "mw_dropped_total",
    "mw_queue_depth", "mw_message_bytes",
    "net_sent_total", "net_oneway_ms", "net_rtt_ms",
    "pool_tasks_total", "pool_task_run_us",
    "node_invocations_total", "node_exec_seconds",
    "alg_decisions_total", "alg2_bandwidth_hz",
}
missing = required_families - families
assert not missing, f"missing metric families: {sorted(missing)}"

print(f"trace OK: {len(events)} events, {len(spans)} spans, "
      f"lanes {sorted(process_names)}")
print(f"metrics OK: {len(metrics)} series, {len(families)} families "
      f"(all {len(required_families)} required families present)")
EOF

if [[ "$RUN_TSAN" == "1" ]]; then
  TSAN_DIR="$REPO_ROOT/build-tsan"
  cmake -B "$TSAN_DIR" -S "$REPO_ROOT" -DLGV_SANITIZE=thread
  cmake --build "$TSAN_DIR" --target lgv_tests -j
  "$TSAN_DIR/tests/lgv_tests" \
    --gtest_filter='Telemetry*:Tracer*:Metrics*:Counter*:Gauge*:Histogram*:ThreadPool*'
  echo "TSan pass OK"
fi

echo "mission trace validation PASSED"
