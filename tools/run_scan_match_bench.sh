#!/usr/bin/env bash
# Run the scan-match / likelihood-field microbenchmarks and emit
# BENCH_scan_match.json (google-benchmark JSON) plus a console summary of the
# cached-vs-brute speedup. Builds the bench target if needed.
#
# Usage: tools/run_scan_match_bench.sh [build-dir]   (default: build)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_JSON="$REPO_ROOT/BENCH_scan_match.json"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
fi
cmake --build "$BUILD_DIR" --target bench_micro_kernels -j

"$BUILD_DIR/bench/bench_micro_kernels" \
  --benchmark_filter='ScanMatch|LikelihoodField' \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="$OUT_JSON" \
  --benchmark_out_format=json

python3 - "$OUT_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    runs = {b["name"]: b["real_time"] for b in json.load(f)["benchmarks"]}

def ratio(brute, cached):
    if brute in runs and cached in runs and runs[cached] > 0:
        return runs[brute] / runs[cached]
    return float("nan")

print()
print(f"wrote {sys.argv[1]}")
print(f"score  brute/cached: {ratio('BM_ScanMatchScore', 'BM_ScanMatchScoreCached'):.2f}x")
print(f"refine brute/cached: {ratio('BM_ScanMatchRefine', 'BM_ScanMatchRefineCached'):.2f}x")
EOF
