#!/usr/bin/env bash
# Run the scalar-vs-SIMD kernel wall-clock harness and validate its artifact.
# Produces BENCH_kernel_wallclock.json (median-of-N steady-clock timings of
# the scanMatch score loop and the trajectory-rollout scoring loop) and fails
# if the file is malformed or the scalar and SIMD paths disagree. Speedup
# thresholds are NOT enforced here — they depend on the host vector unit; the
# numbers are printed for eyeballing and recorded in the JSON.
#
# Usage: tools/run_kernel_bench.sh [build-dir] [--smoke]
#   --smoke: reduced iteration counts for the CI kernel-bench job.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
SMOKE=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE="--smoke" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
OUT_JSON="$REPO_ROOT/BENCH_kernel_wallclock.json"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
fi
cmake --build "$BUILD_DIR" --target bench_micro_kernels -j

(cd "$REPO_ROOT" && "$BUILD_DIR/bench/bench_micro_kernels" --wallclock-json $SMOKE)

python3 - "$OUT_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["bench"] == "kernel_wallclock", doc.get("bench")
assert doc["simd_level"] in ("scalar", "sse2", "avx2"), doc["simd_level"]
assert isinstance(doc["runs"], int) and doc["runs"] >= 1
kernels = {k["name"]: k for k in doc["kernels"]}
for name in ("scan_match_score", "score_trajectory"):
    k = kernels[name]
    for field in ("iters", "scalar_ns_per_call", "simd_ns_per_call", "speedup",
                  "rel_err", "agree"):
        assert field in k, f"{name}: missing {field}"
    assert k["scalar_ns_per_call"] > 0 and k["simd_ns_per_call"] > 0, name
    assert k["agree"] is True, f"{name}: scalar/SIMD disagree (rel_err={k['rel_err']})"

print()
print(f"validated {sys.argv[1]} (simd_level={doc['simd_level']})")
for name in ("scan_match_score", "score_trajectory"):
    print(f"  {name}: {kernels[name]['speedup']:.2f}x")
EOF
