
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/geometry_test.cpp" "tests/CMakeFiles/lgv_tests.dir/common/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/common/geometry_test.cpp.o.d"
  "/root/repo/tests/common/grid_test.cpp" "tests/CMakeFiles/lgv_tests.dir/common/grid_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/common/grid_test.cpp.o.d"
  "/root/repo/tests/common/logging_test.cpp" "tests/CMakeFiles/lgv_tests.dir/common/logging_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/common/logging_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/lgv_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/serialization_test.cpp" "tests/CMakeFiles/lgv_tests.dir/common/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/common/serialization_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/lgv_tests.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/thread_pool_test.cpp" "tests/CMakeFiles/lgv_tests.dir/common/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/common/thread_pool_test.cpp.o.d"
  "/root/repo/tests/control/recovery_test.cpp" "tests/CMakeFiles/lgv_tests.dir/control/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/control/recovery_test.cpp.o.d"
  "/root/repo/tests/control/safety_controller_test.cpp" "tests/CMakeFiles/lgv_tests.dir/control/safety_controller_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/control/safety_controller_test.cpp.o.d"
  "/root/repo/tests/control/trajectory_rollout_test.cpp" "tests/CMakeFiles/lgv_tests.dir/control/trajectory_rollout_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/control/trajectory_rollout_test.cpp.o.d"
  "/root/repo/tests/control/velocity_mux_test.cpp" "tests/CMakeFiles/lgv_tests.dir/control/velocity_mux_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/control/velocity_mux_test.cpp.o.d"
  "/root/repo/tests/core/adaptivity_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/adaptivity_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/adaptivity_test.cpp.o.d"
  "/root/repo/tests/core/analytical_model_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/analytical_model_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/analytical_model_test.cpp.o.d"
  "/root/repo/tests/core/controller_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/controller_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/controller_test.cpp.o.d"
  "/root/repo/tests/core/mission_integration_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/mission_integration_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/mission_integration_test.cpp.o.d"
  "/root/repo/tests/core/network_quality_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/network_quality_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/network_quality_test.cpp.o.d"
  "/root/repo/tests/core/node_classifier_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/node_classifier_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/node_classifier_test.cpp.o.d"
  "/root/repo/tests/core/offload_planner_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/offload_planner_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/offload_planner_test.cpp.o.d"
  "/root/repo/tests/core/offload_runtime_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/offload_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/offload_runtime_test.cpp.o.d"
  "/root/repo/tests/core/profiler_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/profiler_test.cpp.o.d"
  "/root/repo/tests/core/report_io_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/report_io_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/report_io_test.cpp.o.d"
  "/root/repo/tests/core/switcher_test.cpp" "tests/CMakeFiles/lgv_tests.dir/core/switcher_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/core/switcher_test.cpp.o.d"
  "/root/repo/tests/middleware/graph_test.cpp" "tests/CMakeFiles/lgv_tests.dir/middleware/graph_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/middleware/graph_test.cpp.o.d"
  "/root/repo/tests/msg/messages_test.cpp" "tests/CMakeFiles/lgv_tests.dir/msg/messages_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/msg/messages_test.cpp.o.d"
  "/root/repo/tests/net/ap_selector_test.cpp" "tests/CMakeFiles/lgv_tests.dir/net/ap_selector_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/net/ap_selector_test.cpp.o.d"
  "/root/repo/tests/net/kernel_buffer_test.cpp" "tests/CMakeFiles/lgv_tests.dir/net/kernel_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/net/kernel_buffer_test.cpp.o.d"
  "/root/repo/tests/net/link_test.cpp" "tests/CMakeFiles/lgv_tests.dir/net/link_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/net/link_test.cpp.o.d"
  "/root/repo/tests/net/meters_test.cpp" "tests/CMakeFiles/lgv_tests.dir/net/meters_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/net/meters_test.cpp.o.d"
  "/root/repo/tests/net/wireless_channel_test.cpp" "tests/CMakeFiles/lgv_tests.dir/net/wireless_channel_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/net/wireless_channel_test.cpp.o.d"
  "/root/repo/tests/perception/amcl_test.cpp" "tests/CMakeFiles/lgv_tests.dir/perception/amcl_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/perception/amcl_test.cpp.o.d"
  "/root/repo/tests/perception/costmap2d_test.cpp" "tests/CMakeFiles/lgv_tests.dir/perception/costmap2d_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/perception/costmap2d_test.cpp.o.d"
  "/root/repo/tests/perception/gmapping_test.cpp" "tests/CMakeFiles/lgv_tests.dir/perception/gmapping_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/perception/gmapping_test.cpp.o.d"
  "/root/repo/tests/perception/occupancy_grid_test.cpp" "tests/CMakeFiles/lgv_tests.dir/perception/occupancy_grid_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/perception/occupancy_grid_test.cpp.o.d"
  "/root/repo/tests/perception/scan_matcher_test.cpp" "tests/CMakeFiles/lgv_tests.dir/perception/scan_matcher_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/perception/scan_matcher_test.cpp.o.d"
  "/root/repo/tests/perception/visual_odometry_test.cpp" "tests/CMakeFiles/lgv_tests.dir/perception/visual_odometry_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/perception/visual_odometry_test.cpp.o.d"
  "/root/repo/tests/planning/frontier_test.cpp" "tests/CMakeFiles/lgv_tests.dir/planning/frontier_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/planning/frontier_test.cpp.o.d"
  "/root/repo/tests/planning/global_planner_test.cpp" "tests/CMakeFiles/lgv_tests.dir/planning/global_planner_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/planning/global_planner_test.cpp.o.d"
  "/root/repo/tests/planning/grid_search_test.cpp" "tests/CMakeFiles/lgv_tests.dir/planning/grid_search_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/planning/grid_search_test.cpp.o.d"
  "/root/repo/tests/platform/platform_test.cpp" "tests/CMakeFiles/lgv_tests.dir/platform/platform_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/platform/platform_test.cpp.o.d"
  "/root/repo/tests/properties/pipeline_property_test.cpp" "tests/CMakeFiles/lgv_tests.dir/properties/pipeline_property_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/properties/pipeline_property_test.cpp.o.d"
  "/root/repo/tests/properties/property_test.cpp" "tests/CMakeFiles/lgv_tests.dir/properties/property_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/properties/property_test.cpp.o.d"
  "/root/repo/tests/sim/lidar_test.cpp" "tests/CMakeFiles/lgv_tests.dir/sim/lidar_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/sim/lidar_test.cpp.o.d"
  "/root/repo/tests/sim/power_test.cpp" "tests/CMakeFiles/lgv_tests.dir/sim/power_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/sim/power_test.cpp.o.d"
  "/root/repo/tests/sim/random_world_test.cpp" "tests/CMakeFiles/lgv_tests.dir/sim/random_world_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/sim/random_world_test.cpp.o.d"
  "/root/repo/tests/sim/robot_test.cpp" "tests/CMakeFiles/lgv_tests.dir/sim/robot_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/sim/robot_test.cpp.o.d"
  "/root/repo/tests/sim/scenario_test.cpp" "tests/CMakeFiles/lgv_tests.dir/sim/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/sim/scenario_test.cpp.o.d"
  "/root/repo/tests/sim/world_test.cpp" "tests/CMakeFiles/lgv_tests.dir/sim/world_test.cpp.o" "gcc" "tests/CMakeFiles/lgv_tests.dir/sim/world_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lgv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/lgv_control.dir/DependInfo.cmake"
  "/root/repo/build/src/planning/CMakeFiles/lgv_planning.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/lgv_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lgv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/lgv_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lgv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/lgv_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/lgv_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lgv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
