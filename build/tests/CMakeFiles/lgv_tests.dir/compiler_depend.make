# Empty compiler generated dependencies file for lgv_tests.
# This may be replaced when dependencies are built.
