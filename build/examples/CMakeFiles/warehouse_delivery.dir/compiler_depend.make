# Empty compiler generated dependencies file for warehouse_delivery.
# This may be replaced when dependencies are built.
