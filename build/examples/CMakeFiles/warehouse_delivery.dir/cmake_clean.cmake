file(REMOVE_RECURSE
  "CMakeFiles/warehouse_delivery.dir/warehouse_delivery.cpp.o"
  "CMakeFiles/warehouse_delivery.dir/warehouse_delivery.cpp.o.d"
  "warehouse_delivery"
  "warehouse_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
