# Empty compiler generated dependencies file for vision_lgv_demo.
# This may be replaced when dependencies are built.
