file(REMOVE_RECURSE
  "CMakeFiles/vision_lgv_demo.dir/vision_lgv_demo.cpp.o"
  "CMakeFiles/vision_lgv_demo.dir/vision_lgv_demo.cpp.o.d"
  "vision_lgv_demo"
  "vision_lgv_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_lgv_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
