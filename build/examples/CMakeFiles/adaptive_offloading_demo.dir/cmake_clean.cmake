file(REMOVE_RECURSE
  "CMakeFiles/adaptive_offloading_demo.dir/adaptive_offloading_demo.cpp.o"
  "CMakeFiles/adaptive_offloading_demo.dir/adaptive_offloading_demo.cpp.o.d"
  "adaptive_offloading_demo"
  "adaptive_offloading_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_offloading_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
