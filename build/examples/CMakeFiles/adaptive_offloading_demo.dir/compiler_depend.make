# Empty compiler generated dependencies file for adaptive_offloading_demo.
# This may be replaced when dependencies are built.
