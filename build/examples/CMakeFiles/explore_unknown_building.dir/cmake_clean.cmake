file(REMOVE_RECURSE
  "CMakeFiles/explore_unknown_building.dir/explore_unknown_building.cpp.o"
  "CMakeFiles/explore_unknown_building.dir/explore_unknown_building.cpp.o.d"
  "explore_unknown_building"
  "explore_unknown_building.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_unknown_building.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
