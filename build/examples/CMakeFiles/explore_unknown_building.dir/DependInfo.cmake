
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/explore_unknown_building.cpp" "examples/CMakeFiles/explore_unknown_building.dir/explore_unknown_building.cpp.o" "gcc" "examples/CMakeFiles/explore_unknown_building.dir/explore_unknown_building.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lgv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/lgv_control.dir/DependInfo.cmake"
  "/root/repo/build/src/planning/CMakeFiles/lgv_planning.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/lgv_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lgv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/lgv_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lgv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/lgv_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/lgv_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lgv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
