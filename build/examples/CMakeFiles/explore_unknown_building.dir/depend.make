# Empty dependencies file for explore_unknown_building.
# This may be replaced when dependencies are built.
