file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_velocity.dir/bench_fig12_velocity.cpp.o"
  "CMakeFiles/bench_fig12_velocity.dir/bench_fig12_velocity.cpp.o.d"
  "bench_fig12_velocity"
  "bench_fig12_velocity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_velocity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
