# Empty compiler generated dependencies file for bench_fig9_slam_accel.
# This may be replaced when dependencies are built.
