file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_slam_accel.dir/bench_fig9_slam_accel.cpp.o"
  "CMakeFiles/bench_fig9_slam_accel.dir/bench_fig9_slam_accel.cpp.o.d"
  "bench_fig9_slam_accel"
  "bench_fig9_slam_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_slam_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
