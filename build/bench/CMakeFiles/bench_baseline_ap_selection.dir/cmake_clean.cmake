file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_ap_selection.dir/bench_baseline_ap_selection.cpp.o"
  "CMakeFiles/bench_baseline_ap_selection.dir/bench_baseline_ap_selection.cpp.o.d"
  "bench_baseline_ap_selection"
  "bench_baseline_ap_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_ap_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
