# Empty dependencies file for bench_fig10_vdp_accel.
# This may be replaced when dependencies are built.
