file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vdp_accel.dir/bench_fig10_vdp_accel.cpp.o"
  "CMakeFiles/bench_fig10_vdp_accel.dir/bench_fig10_vdp_accel.cpp.o.d"
  "bench_fig10_vdp_accel"
  "bench_fig10_vdp_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vdp_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
