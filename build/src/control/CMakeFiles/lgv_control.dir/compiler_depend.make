# Empty compiler generated dependencies file for lgv_control.
# This may be replaced when dependencies are built.
