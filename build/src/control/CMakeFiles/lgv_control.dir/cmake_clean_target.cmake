file(REMOVE_RECURSE
  "liblgv_control.a"
)
