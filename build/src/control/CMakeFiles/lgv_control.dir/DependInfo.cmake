
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/recovery.cpp" "src/control/CMakeFiles/lgv_control.dir/recovery.cpp.o" "gcc" "src/control/CMakeFiles/lgv_control.dir/recovery.cpp.o.d"
  "/root/repo/src/control/safety_controller.cpp" "src/control/CMakeFiles/lgv_control.dir/safety_controller.cpp.o" "gcc" "src/control/CMakeFiles/lgv_control.dir/safety_controller.cpp.o.d"
  "/root/repo/src/control/trajectory_rollout.cpp" "src/control/CMakeFiles/lgv_control.dir/trajectory_rollout.cpp.o" "gcc" "src/control/CMakeFiles/lgv_control.dir/trajectory_rollout.cpp.o.d"
  "/root/repo/src/control/velocity_mux.cpp" "src/control/CMakeFiles/lgv_control.dir/velocity_mux.cpp.o" "gcc" "src/control/CMakeFiles/lgv_control.dir/velocity_mux.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lgv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/lgv_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/lgv_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/lgv_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lgv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
