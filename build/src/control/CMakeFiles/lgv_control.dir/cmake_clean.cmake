file(REMOVE_RECURSE
  "CMakeFiles/lgv_control.dir/recovery.cpp.o"
  "CMakeFiles/lgv_control.dir/recovery.cpp.o.d"
  "CMakeFiles/lgv_control.dir/safety_controller.cpp.o"
  "CMakeFiles/lgv_control.dir/safety_controller.cpp.o.d"
  "CMakeFiles/lgv_control.dir/trajectory_rollout.cpp.o"
  "CMakeFiles/lgv_control.dir/trajectory_rollout.cpp.o.d"
  "CMakeFiles/lgv_control.dir/velocity_mux.cpp.o"
  "CMakeFiles/lgv_control.dir/velocity_mux.cpp.o.d"
  "liblgv_control.a"
  "liblgv_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
