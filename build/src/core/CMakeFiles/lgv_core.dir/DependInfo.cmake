
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytical_model.cpp" "src/core/CMakeFiles/lgv_core.dir/analytical_model.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/analytical_model.cpp.o.d"
  "/root/repo/src/core/mission_runner.cpp" "src/core/CMakeFiles/lgv_core.dir/mission_runner.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/mission_runner.cpp.o.d"
  "/root/repo/src/core/network_quality.cpp" "src/core/CMakeFiles/lgv_core.dir/network_quality.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/network_quality.cpp.o.d"
  "/root/repo/src/core/node_classifier.cpp" "src/core/CMakeFiles/lgv_core.dir/node_classifier.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/node_classifier.cpp.o.d"
  "/root/repo/src/core/offload_planner.cpp" "src/core/CMakeFiles/lgv_core.dir/offload_planner.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/offload_planner.cpp.o.d"
  "/root/repo/src/core/offload_runtime.cpp" "src/core/CMakeFiles/lgv_core.dir/offload_runtime.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/offload_runtime.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/lgv_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/core/CMakeFiles/lgv_core.dir/report_io.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/report_io.cpp.o.d"
  "/root/repo/src/core/switcher.cpp" "src/core/CMakeFiles/lgv_core.dir/switcher.cpp.o" "gcc" "src/core/CMakeFiles/lgv_core.dir/switcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lgv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/lgv_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/lgv_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lgv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/lgv_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lgv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/lgv_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/planning/CMakeFiles/lgv_planning.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/lgv_control.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
