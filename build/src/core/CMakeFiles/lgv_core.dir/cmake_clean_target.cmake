file(REMOVE_RECURSE
  "liblgv_core.a"
)
