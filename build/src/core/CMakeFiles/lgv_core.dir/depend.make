# Empty dependencies file for lgv_core.
# This may be replaced when dependencies are built.
