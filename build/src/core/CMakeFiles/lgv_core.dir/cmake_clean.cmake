file(REMOVE_RECURSE
  "CMakeFiles/lgv_core.dir/analytical_model.cpp.o"
  "CMakeFiles/lgv_core.dir/analytical_model.cpp.o.d"
  "CMakeFiles/lgv_core.dir/mission_runner.cpp.o"
  "CMakeFiles/lgv_core.dir/mission_runner.cpp.o.d"
  "CMakeFiles/lgv_core.dir/network_quality.cpp.o"
  "CMakeFiles/lgv_core.dir/network_quality.cpp.o.d"
  "CMakeFiles/lgv_core.dir/node_classifier.cpp.o"
  "CMakeFiles/lgv_core.dir/node_classifier.cpp.o.d"
  "CMakeFiles/lgv_core.dir/offload_planner.cpp.o"
  "CMakeFiles/lgv_core.dir/offload_planner.cpp.o.d"
  "CMakeFiles/lgv_core.dir/offload_runtime.cpp.o"
  "CMakeFiles/lgv_core.dir/offload_runtime.cpp.o.d"
  "CMakeFiles/lgv_core.dir/profiler.cpp.o"
  "CMakeFiles/lgv_core.dir/profiler.cpp.o.d"
  "CMakeFiles/lgv_core.dir/report_io.cpp.o"
  "CMakeFiles/lgv_core.dir/report_io.cpp.o.d"
  "CMakeFiles/lgv_core.dir/switcher.cpp.o"
  "CMakeFiles/lgv_core.dir/switcher.cpp.o.d"
  "liblgv_core.a"
  "liblgv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
