# Empty dependencies file for lgv_planning.
# This may be replaced when dependencies are built.
