file(REMOVE_RECURSE
  "liblgv_planning.a"
)
