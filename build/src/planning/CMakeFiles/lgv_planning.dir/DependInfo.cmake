
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planning/frontier.cpp" "src/planning/CMakeFiles/lgv_planning.dir/frontier.cpp.o" "gcc" "src/planning/CMakeFiles/lgv_planning.dir/frontier.cpp.o.d"
  "/root/repo/src/planning/global_planner.cpp" "src/planning/CMakeFiles/lgv_planning.dir/global_planner.cpp.o" "gcc" "src/planning/CMakeFiles/lgv_planning.dir/global_planner.cpp.o.d"
  "/root/repo/src/planning/grid_search.cpp" "src/planning/CMakeFiles/lgv_planning.dir/grid_search.cpp.o" "gcc" "src/planning/CMakeFiles/lgv_planning.dir/grid_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lgv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/lgv_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/lgv_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/lgv_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lgv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
