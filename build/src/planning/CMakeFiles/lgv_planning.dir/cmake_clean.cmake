file(REMOVE_RECURSE
  "CMakeFiles/lgv_planning.dir/frontier.cpp.o"
  "CMakeFiles/lgv_planning.dir/frontier.cpp.o.d"
  "CMakeFiles/lgv_planning.dir/global_planner.cpp.o"
  "CMakeFiles/lgv_planning.dir/global_planner.cpp.o.d"
  "CMakeFiles/lgv_planning.dir/grid_search.cpp.o"
  "CMakeFiles/lgv_planning.dir/grid_search.cpp.o.d"
  "liblgv_planning.a"
  "liblgv_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
