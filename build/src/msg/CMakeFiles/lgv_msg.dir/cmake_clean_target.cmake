file(REMOVE_RECURSE
  "liblgv_msg.a"
)
