# Empty dependencies file for lgv_msg.
# This may be replaced when dependencies are built.
