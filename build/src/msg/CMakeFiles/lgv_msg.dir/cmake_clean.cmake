file(REMOVE_RECURSE
  "CMakeFiles/lgv_msg.dir/messages.cpp.o"
  "CMakeFiles/lgv_msg.dir/messages.cpp.o.d"
  "liblgv_msg.a"
  "liblgv_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
