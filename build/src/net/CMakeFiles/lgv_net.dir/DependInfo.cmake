
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ap_selector.cpp" "src/net/CMakeFiles/lgv_net.dir/ap_selector.cpp.o" "gcc" "src/net/CMakeFiles/lgv_net.dir/ap_selector.cpp.o.d"
  "/root/repo/src/net/kernel_buffer.cpp" "src/net/CMakeFiles/lgv_net.dir/kernel_buffer.cpp.o" "gcc" "src/net/CMakeFiles/lgv_net.dir/kernel_buffer.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/lgv_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/lgv_net.dir/link.cpp.o.d"
  "/root/repo/src/net/meters.cpp" "src/net/CMakeFiles/lgv_net.dir/meters.cpp.o" "gcc" "src/net/CMakeFiles/lgv_net.dir/meters.cpp.o.d"
  "/root/repo/src/net/wireless_channel.cpp" "src/net/CMakeFiles/lgv_net.dir/wireless_channel.cpp.o" "gcc" "src/net/CMakeFiles/lgv_net.dir/wireless_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lgv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
