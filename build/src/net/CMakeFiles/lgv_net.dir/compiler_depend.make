# Empty compiler generated dependencies file for lgv_net.
# This may be replaced when dependencies are built.
