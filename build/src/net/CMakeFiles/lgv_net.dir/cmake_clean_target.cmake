file(REMOVE_RECURSE
  "liblgv_net.a"
)
