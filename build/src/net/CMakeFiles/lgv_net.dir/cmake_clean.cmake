file(REMOVE_RECURSE
  "CMakeFiles/lgv_net.dir/ap_selector.cpp.o"
  "CMakeFiles/lgv_net.dir/ap_selector.cpp.o.d"
  "CMakeFiles/lgv_net.dir/kernel_buffer.cpp.o"
  "CMakeFiles/lgv_net.dir/kernel_buffer.cpp.o.d"
  "CMakeFiles/lgv_net.dir/link.cpp.o"
  "CMakeFiles/lgv_net.dir/link.cpp.o.d"
  "CMakeFiles/lgv_net.dir/meters.cpp.o"
  "CMakeFiles/lgv_net.dir/meters.cpp.o.d"
  "CMakeFiles/lgv_net.dir/wireless_channel.cpp.o"
  "CMakeFiles/lgv_net.dir/wireless_channel.cpp.o.d"
  "liblgv_net.a"
  "liblgv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
