file(REMOVE_RECURSE
  "liblgv_common.a"
)
