file(REMOVE_RECURSE
  "CMakeFiles/lgv_common.dir/geometry.cpp.o"
  "CMakeFiles/lgv_common.dir/geometry.cpp.o.d"
  "CMakeFiles/lgv_common.dir/logging.cpp.o"
  "CMakeFiles/lgv_common.dir/logging.cpp.o.d"
  "CMakeFiles/lgv_common.dir/serialization.cpp.o"
  "CMakeFiles/lgv_common.dir/serialization.cpp.o.d"
  "CMakeFiles/lgv_common.dir/stats.cpp.o"
  "CMakeFiles/lgv_common.dir/stats.cpp.o.d"
  "CMakeFiles/lgv_common.dir/thread_pool.cpp.o"
  "CMakeFiles/lgv_common.dir/thread_pool.cpp.o.d"
  "liblgv_common.a"
  "liblgv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
