# Empty compiler generated dependencies file for lgv_common.
# This may be replaced when dependencies are built.
