# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("msg")
subdirs("middleware")
subdirs("net")
subdirs("platform")
subdirs("sim")
subdirs("perception")
subdirs("planning")
subdirs("control")
subdirs("core")
