# Empty dependencies file for lgv_perception.
# This may be replaced when dependencies are built.
