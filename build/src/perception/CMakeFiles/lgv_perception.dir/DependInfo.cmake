
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/amcl.cpp" "src/perception/CMakeFiles/lgv_perception.dir/amcl.cpp.o" "gcc" "src/perception/CMakeFiles/lgv_perception.dir/amcl.cpp.o.d"
  "/root/repo/src/perception/costmap2d.cpp" "src/perception/CMakeFiles/lgv_perception.dir/costmap2d.cpp.o" "gcc" "src/perception/CMakeFiles/lgv_perception.dir/costmap2d.cpp.o.d"
  "/root/repo/src/perception/gmapping.cpp" "src/perception/CMakeFiles/lgv_perception.dir/gmapping.cpp.o" "gcc" "src/perception/CMakeFiles/lgv_perception.dir/gmapping.cpp.o.d"
  "/root/repo/src/perception/occupancy_grid.cpp" "src/perception/CMakeFiles/lgv_perception.dir/occupancy_grid.cpp.o" "gcc" "src/perception/CMakeFiles/lgv_perception.dir/occupancy_grid.cpp.o.d"
  "/root/repo/src/perception/scan_matcher.cpp" "src/perception/CMakeFiles/lgv_perception.dir/scan_matcher.cpp.o" "gcc" "src/perception/CMakeFiles/lgv_perception.dir/scan_matcher.cpp.o.d"
  "/root/repo/src/perception/visual_odometry.cpp" "src/perception/CMakeFiles/lgv_perception.dir/visual_odometry.cpp.o" "gcc" "src/perception/CMakeFiles/lgv_perception.dir/visual_odometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lgv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/lgv_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/lgv_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lgv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
