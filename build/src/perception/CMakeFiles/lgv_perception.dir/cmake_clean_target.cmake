file(REMOVE_RECURSE
  "liblgv_perception.a"
)
