file(REMOVE_RECURSE
  "CMakeFiles/lgv_perception.dir/amcl.cpp.o"
  "CMakeFiles/lgv_perception.dir/amcl.cpp.o.d"
  "CMakeFiles/lgv_perception.dir/costmap2d.cpp.o"
  "CMakeFiles/lgv_perception.dir/costmap2d.cpp.o.d"
  "CMakeFiles/lgv_perception.dir/gmapping.cpp.o"
  "CMakeFiles/lgv_perception.dir/gmapping.cpp.o.d"
  "CMakeFiles/lgv_perception.dir/occupancy_grid.cpp.o"
  "CMakeFiles/lgv_perception.dir/occupancy_grid.cpp.o.d"
  "CMakeFiles/lgv_perception.dir/scan_matcher.cpp.o"
  "CMakeFiles/lgv_perception.dir/scan_matcher.cpp.o.d"
  "CMakeFiles/lgv_perception.dir/visual_odometry.cpp.o"
  "CMakeFiles/lgv_perception.dir/visual_odometry.cpp.o.d"
  "liblgv_perception.a"
  "liblgv_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
