file(REMOVE_RECURSE
  "liblgv_platform.a"
)
