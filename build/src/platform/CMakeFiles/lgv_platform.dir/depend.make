# Empty dependencies file for lgv_platform.
# This may be replaced when dependencies are built.
