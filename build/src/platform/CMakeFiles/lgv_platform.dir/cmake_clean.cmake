file(REMOVE_RECURSE
  "CMakeFiles/lgv_platform.dir/cost_model.cpp.o"
  "CMakeFiles/lgv_platform.dir/cost_model.cpp.o.d"
  "CMakeFiles/lgv_platform.dir/platform_spec.cpp.o"
  "CMakeFiles/lgv_platform.dir/platform_spec.cpp.o.d"
  "CMakeFiles/lgv_platform.dir/work_meter.cpp.o"
  "CMakeFiles/lgv_platform.dir/work_meter.cpp.o.d"
  "liblgv_platform.a"
  "liblgv_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
