
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/lidar.cpp" "src/sim/CMakeFiles/lgv_sim.dir/lidar.cpp.o" "gcc" "src/sim/CMakeFiles/lgv_sim.dir/lidar.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/sim/CMakeFiles/lgv_sim.dir/power.cpp.o" "gcc" "src/sim/CMakeFiles/lgv_sim.dir/power.cpp.o.d"
  "/root/repo/src/sim/random_world.cpp" "src/sim/CMakeFiles/lgv_sim.dir/random_world.cpp.o" "gcc" "src/sim/CMakeFiles/lgv_sim.dir/random_world.cpp.o.d"
  "/root/repo/src/sim/robot.cpp" "src/sim/CMakeFiles/lgv_sim.dir/robot.cpp.o" "gcc" "src/sim/CMakeFiles/lgv_sim.dir/robot.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/lgv_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/lgv_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/lgv_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/lgv_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lgv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/lgv_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/lgv_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
