file(REMOVE_RECURSE
  "liblgv_sim.a"
)
