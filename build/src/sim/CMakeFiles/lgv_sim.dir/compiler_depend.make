# Empty compiler generated dependencies file for lgv_sim.
# This may be replaced when dependencies are built.
