file(REMOVE_RECURSE
  "CMakeFiles/lgv_sim.dir/lidar.cpp.o"
  "CMakeFiles/lgv_sim.dir/lidar.cpp.o.d"
  "CMakeFiles/lgv_sim.dir/power.cpp.o"
  "CMakeFiles/lgv_sim.dir/power.cpp.o.d"
  "CMakeFiles/lgv_sim.dir/random_world.cpp.o"
  "CMakeFiles/lgv_sim.dir/random_world.cpp.o.d"
  "CMakeFiles/lgv_sim.dir/robot.cpp.o"
  "CMakeFiles/lgv_sim.dir/robot.cpp.o.d"
  "CMakeFiles/lgv_sim.dir/scenario.cpp.o"
  "CMakeFiles/lgv_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/lgv_sim.dir/world.cpp.o"
  "CMakeFiles/lgv_sim.dir/world.cpp.o.d"
  "liblgv_sim.a"
  "liblgv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
