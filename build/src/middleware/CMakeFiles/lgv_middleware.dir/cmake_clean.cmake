file(REMOVE_RECURSE
  "CMakeFiles/lgv_middleware.dir/graph.cpp.o"
  "CMakeFiles/lgv_middleware.dir/graph.cpp.o.d"
  "liblgv_middleware.a"
  "liblgv_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgv_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
