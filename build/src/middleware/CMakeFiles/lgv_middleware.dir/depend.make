# Empty dependencies file for lgv_middleware.
# This may be replaced when dependencies are built.
