file(REMOVE_RECURSE
  "liblgv_middleware.a"
)
