// Every tuned constant of the reproduction in one place.
//
// The algorithms in src/perception, src/planning and src/control count the
// *actual* primitive operations they perform (beam likelihood evaluations,
// trajectory simulation steps, costmap cell updates, …). These constants map
// one primitive operation to CPU cycles, fitted so that the default workload
// configuration (360-beam LDS scans, 30 SLAM particles, 2000 rollout
// samples, 0.05 m costmap over the lab) lands on the paper's Table II
// per-invocation cycle breakdown:
//   with a map:    Localization(laser) 0.028 G, CostmapGen 0.857 G,
//                  PathPlanning 0.055 G, PathTracking 1.385 G
//   without a map: SLAM 3.327 G, CostmapGen 0.685 G, PathPlanning 0.052 G,
//                  Exploration 0.011 G, PathTracking 1.207 G
// Changing workload parameters (particles, samples, beam count) moves the
// derived numbers exactly as it would on real hardware; only the per-op
// constants here are fitted.
#pragma once

namespace lgv::platform::calib {

// ---- SLAM (gmapping-style RBPF, Fig. 6) -----------------------------------
/// Cycles per (particle × beam) likelihood evaluation inside scanMatch when
/// the brute-force reference scorer runs (the paper's stock GMapping path).
/// 98% of SLAM time lives here (§V).
inline constexpr double kScanMatchCyclesPerBeamEval = 50000.0;
/// Cycles per beam evaluation on the likelihood-field path: precomputed
/// endpoints + one field lookup replace the per-beam trig and the 3×3
/// occupancy probe. Ratio fitted to the measured bench_micro_kernels host
/// speedup of the cached scorer over the reference scorer.
inline constexpr double kScanMatchCachedCyclesPerBeamEval = 10000.0;
/// Cycles per likelihood-field cell recomputed by LikelihoodField::sync
/// (9 occupancy compares + a packed write; incremental after every map
/// update, full grid on first build).
inline constexpr double kFieldRebuildCyclesPerCell = 800.0;
/// Cycles per map cell touched while integrating a scan into a particle map.
inline constexpr double kMapUpdateCyclesPerCell = 4000.0;
/// Cycles per particle for the sequential weight bookkeeping + resampling.
inline constexpr double kResampleCyclesPerParticle = 500000.0;

// ---- AMCL -----------------------------------------------------------------
/// Cycles per (particle × beam) in the brute-force AMCL measurement model.
inline constexpr double kAmclCyclesPerBeamEval = 2000.0;
/// Cycles per (particle × beam) on the likelihood-field path (endpoints
/// precomputed once per scan, shared across every particle).
inline constexpr double kAmclCachedCyclesPerBeamEval = 500.0;
/// Cycles per particle for sampling the motion model.
inline constexpr double kAmclMotionCyclesPerParticle = 3000.0;

// ---- Costmap generation (costmap_2d analog) --------------------------------
/// Cycles per cell marked/cleared by the obstacle layer raytrace.
inline constexpr double kCostmapRaytraceCyclesPerCell = 20000.0;
/// Cycles per cell visited by the inflation layer wavefront.
inline constexpr double kInflationCyclesPerCell = 40000.0;

// ---- Path tracking (trajectory rollout, Fig. 5) ----------------------------
/// Cycles per forward-simulation step of one candidate trajectory.
inline constexpr double kRolloutCyclesPerStep = 35000.0;
/// Cycles per trajectory for scoring bookkeeping outside the sim loop.
inline constexpr double kRolloutCyclesPerTrajectory = 40000.0;

// ---- Global planning (A*/Dijkstra) -----------------------------------------
/// Cycles per node expansion in the grid search.
inline constexpr double kSearchCyclesPerExpansion = 2500.0;

// ---- Exploration (frontier detection) ---------------------------------------
/// Cycles per cell scanned during frontier extraction.
inline constexpr double kFrontierCyclesPerCell = 900.0;

// ---- Velocity multiplexer ----------------------------------------------------
/// Cycles per command arbitration (tiny by design — the paper reports "-"
/// for its share of the cycle budget).
inline constexpr double kVelMuxCyclesPerCommand = 15000.0;

// ---- Energy model (Eq. 1c) ---------------------------------------------------
/// Effective switched capacitance k in P = k · L · f², with L in cycles/s and
/// f in GHz. Fitted so the RPi at full 4-core load (4 × 1.4 GHz × 0.6 IPC =
/// 3.36 G useful cycles/s) draws ≈ the Table I embedded-computer budget of
/// 6.5 W above idle: 6.5 − 1.9 ≈ k · 3.36e9 · 1.4².
inline constexpr double kSwitchedCapacitance = 7.0e-10;
/// Idle floor of the embedded computer (W); present even when standing by.
inline constexpr double kEmbeddedIdlePowerW = 1.9;

// ---- Wireless transmission (Eq. 1b) -----------------------------------------
/// Transmit power of the Pi's wireless controller (W).
inline constexpr double kTransmitPowerW = 1.3;

// ---- Motor model (Eq. 1d, constants from Mei et al. [34]) -------------------
// Fitted so (a) peak motor power at 1 m/s ≈ Table I's 6.7 W budget and
// (b) the speed-dependent term m·g·μ·v dominates the transforming loss —
// which makes motor energy ≈ m·g·μ·distance, nearly invariant to mission
// time. That invariance is the paper's Fig. 13 observation ("almost no
// performance improvement on motor energy").
inline constexpr double kRobotMassKg = 1.8;          // Turtlebot3 burger
inline constexpr double kGroundFriction = 0.35;      // μ, rubber on lab floor
inline constexpr double kGravity = 9.81;             // g
inline constexpr double kTransformingLossW = 0.35;   // Pl, drivetrain loss

// ---- Eq. 2c parameters -------------------------------------------------------
/// Maximum acceleration limit a_max of Eq. 2c (m/s²).
inline constexpr double kMaxAccel = 0.5;
/// Required stopping distance d for obstacle avoidance (m). With a_max these
/// set the zero-latency velocity ceiling √(2·d·a_max) = 1.0 m/s.
inline constexpr double kStoppingDistance = 1.0;

}  // namespace lgv::platform::calib
