// ExecutionContext is the handle an algorithm kernel receives when it runs.
// It carries the thread pool of the host platform (null on the LGV's
// in-order cores or when parallel optimization is disabled), the configured
// thread count, and the WorkProfile being recorded for this invocation.
//
// parallel_kernel() is the bridge between *real* execution and *modeled*
// timing: the per-item functor genuinely runs (on the pool when available)
// and returns the cycles it performed; the context groups those cycles into
// per-chunk totals exactly matching the static partitioning of Figs. 5/6.
#pragma once

#include <functional>

#include "common/arena.h"
#include "common/thread_pool.h"
#include "platform/work_profile.h"

namespace lgv::platform {

/// How parallel_kernel spreads items over workers.
enum class Schedule {
  /// Fixed contiguous chunks, one per thread — the paper's Figs. 5/6
  /// partitioning and the reference mode. Imbalance (items that early-exit)
  /// is charged faithfully: the region costs its longest chunk.
  kStatic,
  /// Workers grab small fixed grains off a shared counter, so cheap items
  /// don't strand a worker idle. Cycles are recorded per grain and then
  /// assigned to virtual workers by a deterministic greedy schedule (grains
  /// in index order, each to the least-loaded worker), which models the
  /// atomic-counter execution while keeping virtual-time costs reproducible
  /// run to run regardless of which real thread grabbed what.
  kDynamic,
};

class ExecutionContext {
 public:
  ExecutionContext() = default;
  /// `session` attributes this kernel's pool tasks to a scheduling session
  /// (fleet serving: one session per vehicle; 0 = default single-tenant
  /// queue) so multi-tenant pools fair-share the chunks across vehicles.
  ExecutionContext(ThreadPool* pool, int threads, uint32_t session = 0)
      : pool_(pool), threads_(threads), session_(session) {}

  int threads() const { return threads_; }
  ThreadPool* pool() const { return pool_; }
  uint32_t session() const { return session_; }

  /// Record `cycles` of sequential work (already performed by the caller).
  void serial_work(double cycles) { profile_.add_serial(cycles); }

  /// Items per dynamic-scheduling grab (small, so early-exiting items
  /// rebalance quickly; fixed, so the virtual-time model is deterministic).
  static constexpr size_t kDynamicGrain = 4;

  /// Execute fn(i) for i in [0, count); fn returns the cycles item i cost.
  /// Items are spread over `threads()` workers per `schedule`; per-chunk
  /// cycles are recorded so the cost model charges the longest chunk.
  /// fn must be safe to invoke concurrently for distinct items.
  void parallel_kernel(size_t count, const std::function<double(size_t)>& fn,
                       Schedule schedule = Schedule::kStatic);

  /// Block-granular variant: fn(begin, end) processes items [begin, end) and
  /// returns the cycles the whole block cost. Blocks are the scheduling
  /// units the per-item form already used — kDynamicGrain-sized grains under
  /// kDynamic, one contiguous chunk per worker under kStatic — so a kernel
  /// that vectorizes across a block sees exactly the ranges the cost model
  /// charges. fn must be safe to invoke concurrently for disjoint blocks,
  /// and per-item results must not depend on the blocking (the schedule
  /// equivalence contract).
  void parallel_kernel_blocks(size_t count,
                              const std::function<double(size_t, size_t)>& fn,
                              Schedule schedule = Schedule::kStatic);

  /// Per-thread bump arena for kernel temporaries (SoA staging buffers and
  /// the like). Arena::Scope-guard every use; allocations are only valid
  /// within the enclosing parallel_kernel block / serial region.
  static Arena& scratch() { return thread_scratch(); }

  WorkProfile& profile() { return profile_; }
  const WorkProfile& profile() const { return profile_; }
  void reset() { profile_.clear(); }

 private:
  ThreadPool* pool_ = nullptr;
  int threads_ = 1;
  uint32_t session_ = 0;
  WorkProfile profile_;
};

}  // namespace lgv::platform
