// ExecutionContext is the handle an algorithm kernel receives when it runs.
// It carries the thread pool of the host platform (null on the LGV's
// in-order cores or when parallel optimization is disabled), the configured
// thread count, and the WorkProfile being recorded for this invocation.
//
// parallel_kernel() is the bridge between *real* execution and *modeled*
// timing: the per-item functor genuinely runs (on the pool when available)
// and returns the cycles it performed; the context groups those cycles into
// per-chunk totals exactly matching the static partitioning of Figs. 5/6.
#pragma once

#include <functional>

#include "common/thread_pool.h"
#include "platform/work_profile.h"

namespace lgv::platform {

class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(ThreadPool* pool, int threads) : pool_(pool), threads_(threads) {}

  int threads() const { return threads_; }
  ThreadPool* pool() const { return pool_; }

  /// Record `cycles` of sequential work (already performed by the caller).
  void serial_work(double cycles) { profile_.add_serial(cycles); }

  /// Execute fn(i) for i in [0, count); fn returns the cycles item i cost.
  /// Items are partitioned into `threads()` contiguous chunks; each chunk's
  /// cycles are recorded so the cost model charges the longest chunk.
  /// fn must be safe to invoke concurrently for distinct items.
  void parallel_kernel(size_t count, const std::function<double(size_t)>& fn);

  WorkProfile& profile() { return profile_; }
  const WorkProfile& profile() const { return profile_; }
  void reset() { profile_.clear(); }

 private:
  ThreadPool* pool_ = nullptr;
  int threads_ = 1;
  WorkProfile profile_;
};

}  // namespace lgv::platform
