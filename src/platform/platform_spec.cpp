#include "platform/platform_spec.h"

#include <algorithm>

namespace lgv::platform {

const char* host_name(Host h) {
  switch (h) {
    case Host::kLgv: return "lgv";
    case Host::kEdgeGateway: return "edge_gateway";
    case Host::kCloudServer: return "cloud_server";
  }
  return "?";
}

double PlatformSpec::parallel_throughput(int threads) const {
  threads = std::max(1, threads);
  if (threads <= cores) return static_cast<double>(threads);
  const int smt = std::min(threads, hw_threads) - cores;
  // Beyond hw_threads, extra software threads only time-share; no extra
  // throughput.
  return static_cast<double>(cores) + smt_efficiency * static_cast<double>(smt);
}

PlatformSpec turtlebot3_spec() {
  PlatformSpec s;
  s.name = "Turtlebot3 (Raspberry Pi 3B+)";
  s.freq_ghz = 1.4;
  s.cores = 4;
  s.hw_threads = 4;
  s.ipc = 0.6;  // in-order Cortex-A53
  s.smt_efficiency = 0.0;
  s.dispatch_overhead_s = 60e-6;  // slow memory + kernel on the Pi
  s.memory_gb = 1.0;
  return s;
}

PlatformSpec edge_gateway_spec() {
  PlatformSpec s;
  s.name = "Edge gateway (Intel i7-7700K)";
  s.freq_ghz = 4.2;
  s.cores = 4;
  s.hw_threads = 8;
  s.ipc = 2.0;  // wide out-of-order core at high clocks
  s.smt_efficiency = 0.35;
  s.dispatch_overhead_s = 8e-6;
  s.memory_gb = 16.0;
  return s;
}

PlatformSpec cloud_server_spec() {
  PlatformSpec s;
  s.name = "Cloud server (Intel Xeon Gold 6149)";
  s.freq_ghz = 3.1;
  s.cores = 24;
  s.hw_threads = 48;
  s.ipc = 1.6;
  s.smt_efficiency = 0.3;
  // Server-class uncore (big L3, many memory channels) pays less
  // synchronization tax per thread than the desktop part.
  s.sync_tax_per_thread = 0.09;
  s.dispatch_overhead_s = 10e-6;
  s.memory_gb = 768.0;
  return s;
}

PlatformSpec spec_for(Host h) {
  switch (h) {
    case Host::kLgv: return turtlebot3_spec();
    case Host::kEdgeGateway: return edge_gateway_spec();
    case Host::kCloudServer: return cloud_server_spec();
  }
  return turtlebot3_spec();
}

}  // namespace lgv::platform
