// Cumulative per-node work accounting across a whole mission — the
// instrumentation behind Table II's cycle breakdown.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace lgv::platform {

class WorkMeter {
 public:
  /// Charge `cycles` of work to the named node.
  void charge(const std::string& node, double cycles);

  double cycles(const std::string& node) const;
  size_t invocations(const std::string& node) const;
  double total_cycles() const;

  /// Share of total cycles attributed to `node`, in [0, 1].
  double fraction(const std::string& node) const;

  std::vector<std::string> node_names() const;
  void reset();

 private:
  struct Entry {
    double cycles = 0.0;
    size_t invocations = 0;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace lgv::platform
