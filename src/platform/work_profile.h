// The record of computational work one node invocation performed, expressed
// in platform-independent cycles. Serial work accumulates into one counter;
// each parallel region keeps per-chunk totals so the cost model can charge
// the *longest* chunk (real load imbalance shows up in the timing).
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

namespace lgv::platform {

struct ParallelRegion {
  /// Cycles executed by each chunk (chunk count == thread count requested).
  std::vector<double> chunk_cycles;
  /// True when the region ran under dynamic (work-stealing-style) scheduling:
  /// chunk_cycles then holds per-*worker* totals after grain assignment, not
  /// the fixed contiguous partition of the static mode.
  bool dynamic = false;

  double total() const {
    return std::accumulate(chunk_cycles.begin(), chunk_cycles.end(), 0.0);
  }
  double longest() const {
    return chunk_cycles.empty()
               ? 0.0
               : *std::max_element(chunk_cycles.begin(), chunk_cycles.end());
  }
  int chunks() const { return static_cast<int>(chunk_cycles.size()); }

  /// Load imbalance: longest chunk relative to a perfectly even split
  /// (longest · chunks / total). 1.0 = balanced; 2.0 = the critical chunk
  /// did twice its fair share and the region took twice as long as it could.
  double imbalance() const {
    const double t = total();
    return t > 0.0 ? longest() * static_cast<double>(chunks()) / t : 1.0;
  }
};

struct WorkProfile {
  double serial_cycles = 0.0;
  std::vector<ParallelRegion> regions;

  void add_serial(double cycles) { serial_cycles += cycles; }
  void add_region(ParallelRegion region) { regions.push_back(std::move(region)); }

  /// Total cycles regardless of parallel structure (Table II currency).
  double total_cycles() const {
    double t = serial_cycles;
    for (const auto& r : regions) t += r.total();
    return t;
  }

  void clear() {
    serial_cycles = 0.0;
    regions.clear();
  }

  /// Merge another profile into this one (used when one node invocation is
  /// assembled from several kernels).
  void merge(const WorkProfile& other) {
    serial_cycles += other.serial_cycles;
    regions.insert(regions.end(), other.regions.begin(), other.regions.end());
  }
};

}  // namespace lgv::platform
