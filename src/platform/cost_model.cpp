#include "platform/cost_model.h"

#include "platform/calibration.h"

namespace lgv::platform {

double CostModel::execution_time(const WorkProfile& profile) const {
  const double ops_per_sec = spec_.single_thread_ops_per_sec();
  double t = profile.serial_cycles / ops_per_sec;
  for (const ParallelRegion& region : profile.regions) {
    const int chunks = region.chunks();
    if (chunks == 0) continue;
    // Per-chunk throughput when all chunks run concurrently: the platform
    // offers parallel_throughput(chunks) core-equivalents shared evenly,
    // discounted by the per-thread synchronization tax.
    const double effective =
        spec_.parallel_throughput(chunks) /
        (1.0 + spec_.sync_tax_per_thread * static_cast<double>(chunks - 1));
    const double share = effective / static_cast<double>(chunks);
    t += static_cast<double>(chunks) * spec_.dispatch_overhead_s;
    t += region.longest() / (ops_per_sec * share);
  }
  return t;
}

double CostModel::serialized_time(const WorkProfile& profile) const {
  return profile.total_cycles() / spec_.single_thread_ops_per_sec();
}

double CostModel::dynamic_energy(const WorkProfile& profile) const {
  // E = k · L · f² with L in cycles and f in GHz (Eq. 1c integrated over the
  // execution: ∫ k·L(t)·f² dt = k·f²·total_cycles).
  return calib::kSwitchedCapacitance * profile.total_cycles() * spec_.freq_ghz *
         spec_.freq_ghz;
}

double CostModel::dynamic_power(double cycles_per_sec) const {
  return calib::kSwitchedCapacitance * cycles_per_sec * spec_.freq_ghz * spec_.freq_ghz;
}

}  // namespace lgv::platform
