#include "platform/work_meter.h"

#include "platform/execution_context.h"

namespace lgv::platform {

void ExecutionContext::parallel_kernel(size_t count,
                                       const std::function<double(size_t)>& fn) {
  if (count == 0) return;
  const size_t chunks =
      std::max<size_t>(1, std::min<size_t>(static_cast<size_t>(threads_), count));
  ParallelRegion region;
  region.chunk_cycles.assign(chunks, 0.0);

  auto run_chunk = [&](size_t chunk) {
    const ChunkRange r = chunk_range(count, chunks, chunk);
    double cycles = 0.0;
    for (size_t i = r.begin; i < r.end; ++i) cycles += fn(i);
    region.chunk_cycles[chunk] = cycles;  // one writer per slot
  };

  if (pool_ != nullptr && chunks > 1) {
    pool_->parallel_chunks(chunks, chunks,
                           [&](size_t begin, size_t end) {
                             for (size_t c = begin; c < end; ++c) run_chunk(c);
                           });
  } else {
    for (size_t c = 0; c < chunks; ++c) run_chunk(c);
  }

  if (chunks == 1) {
    // A single chunk is just serial work; don't charge dispatch overhead.
    profile_.add_serial(region.chunk_cycles[0]);
  } else {
    profile_.add_region(std::move(region));
  }
}

void WorkMeter::charge(const std::string& node, double cycles) {
  Entry& e = entries_[node];
  e.cycles += cycles;
  ++e.invocations;
}

double WorkMeter::cycles(const std::string& node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 0.0 : it->second.cycles;
}

size_t WorkMeter::invocations(const std::string& node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 0 : it->second.invocations;
}

double WorkMeter::total_cycles() const {
  double t = 0.0;
  for (const auto& [name, e] : entries_) t += e.cycles;
  return t;
}

double WorkMeter::fraction(const std::string& node) const {
  const double total = total_cycles();
  return total > 0.0 ? cycles(node) / total : 0.0;
}

std::vector<std::string> WorkMeter::node_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, e] : entries_) names.push_back(name);
  return names;
}

void WorkMeter::reset() { entries_.clear(); }

}  // namespace lgv::platform
