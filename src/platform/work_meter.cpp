#include "platform/work_meter.h"

#include "platform/execution_context.h"

namespace lgv::platform {

void ExecutionContext::parallel_kernel(size_t count,
                                       const std::function<double(size_t)>& fn,
                                       Schedule schedule) {
  parallel_kernel_blocks(
      count,
      [&fn](size_t begin, size_t end) {
        double cycles = 0.0;
        for (size_t i = begin; i < end; ++i) cycles += fn(i);
        return cycles;
      },
      schedule);
}

void ExecutionContext::parallel_kernel_blocks(
    size_t count, const std::function<double(size_t, size_t)>& fn,
    Schedule schedule) {
  if (count == 0) return;

  if (schedule == Schedule::kDynamic) {
    // Real execution grabs kDynamicGrain-sized ranges off a shared counter;
    // cycles are recorded per grain (each grain runs exactly once — one
    // writer per slot) and assigned to virtual workers deterministically
    // below, so virtual time does not depend on which thread grabbed what.
    const size_t n_grains = (count + kDynamicGrain - 1) / kDynamicGrain;
    std::vector<double> grain_cycles(n_grains, 0.0);
    auto run_range = [&](size_t begin, size_t end) {
      grain_cycles[begin / kDynamicGrain] = fn(begin, end);
    };
    if (pool_ != nullptr && threads_ > 1 && n_grains > 1) {
      pool_->parallel_dynamic(session_, count, kDynamicGrain, run_range);
    } else {
      for (size_t g = 0; g < n_grains; ++g) {
        run_range(g * kDynamicGrain, std::min(count, (g + 1) * kDynamicGrain));
      }
    }

    const size_t bins =
        std::max<size_t>(1, std::min<size_t>(static_cast<size_t>(threads_), n_grains));
    if (bins == 1) {
      double total = 0.0;
      for (double c : grain_cycles) total += c;
      profile_.add_serial(total);
      return;
    }
    // Greedy list schedule in grain order: each grain goes to the currently
    // least-loaded virtual worker — the idealized behavior of the atomic
    // counter when workers run at equal speed.
    ParallelRegion region;
    region.dynamic = true;
    region.chunk_cycles.assign(bins, 0.0);
    for (double cycles : grain_cycles) {
      size_t bin = 0;
      for (size_t b = 1; b < bins; ++b) {
        if (region.chunk_cycles[b] < region.chunk_cycles[bin]) bin = b;
      }
      region.chunk_cycles[bin] += cycles;
    }
    profile_.add_region(std::move(region));
    return;
  }

  const size_t chunks =
      std::max<size_t>(1, std::min<size_t>(static_cast<size_t>(threads_), count));
  ParallelRegion region;
  region.chunk_cycles.assign(chunks, 0.0);

  auto run_chunk = [&](size_t chunk) {
    const ChunkRange r = chunk_range(count, chunks, chunk);
    region.chunk_cycles[chunk] = fn(r.begin, r.end);  // one writer per slot
  };

  if (pool_ != nullptr && chunks > 1) {
    pool_->parallel_chunks(session_, chunks, chunks,
                           [&](size_t begin, size_t end) {
                             for (size_t c = begin; c < end; ++c) run_chunk(c);
                           });
  } else {
    for (size_t c = 0; c < chunks; ++c) run_chunk(c);
  }

  if (chunks == 1) {
    // A single chunk is just serial work; don't charge dispatch overhead.
    profile_.add_serial(region.chunk_cycles[0]);
  } else {
    profile_.add_region(std::move(region));
  }
}

void WorkMeter::charge(const std::string& node, double cycles) {
  Entry& e = entries_[node];
  e.cycles += cycles;
  ++e.invocations;
}

double WorkMeter::cycles(const std::string& node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 0.0 : it->second.cycles;
}

size_t WorkMeter::invocations(const std::string& node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 0 : it->second.invocations;
}

double WorkMeter::total_cycles() const {
  double t = 0.0;
  for (const auto& [name, e] : entries_) t += e.cycles;
  return t;
}

double WorkMeter::fraction(const std::string& node) const {
  const double total = total_cycles();
  return total > 0.0 ? cycles(node) / total : 0.0;
}

std::vector<std::string> WorkMeter::node_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, e] : entries_) names.push_back(name);
  return names;
}

void WorkMeter::reset() { entries_.clear(); }

}  // namespace lgv::platform
