// Converts a WorkProfile into virtual processing time and Eq. 1c energy on a
// given platform. This is the reproduction's replacement for "run it on the
// real silicon and read a stopwatch / power meter".
#pragma once

#include "platform/platform_spec.h"
#include "platform/work_profile.h"

namespace lgv::platform {

class CostModel {
 public:
  explicit CostModel(PlatformSpec spec) : spec_(std::move(spec)) {}

  const PlatformSpec& spec() const { return spec_; }

  /// Virtual wall time of executing `profile` on this platform.
  /// Serial cycles run on one thread; each parallel region runs its chunks
  /// concurrently subject to the platform's throughput curve and pays a
  /// per-chunk dispatch overhead (the term that flattens Fig. 10 past 4
  /// threads).
  double execution_time(const WorkProfile& profile) const;

  /// Single-thread time of the same work (the "no parallel optimization"
  /// deployment in Figs. 12/13).
  double serialized_time(const WorkProfile& profile) const;

  /// Dynamic energy (J) of executing `profile` *on the LGV's embedded
  /// computer*, per Eq. 1c: E = k · L · f². Only meaningful for the
  /// Turtlebot3 spec — offloaded cycles cost the robot nothing.
  double dynamic_energy(const WorkProfile& profile) const;

  /// Eq. 1c instantaneous power at a given cycle rate (cycles/s).
  double dynamic_power(double cycles_per_sec) const;

 private:
  PlatformSpec spec_;
};

}  // namespace lgv::platform
