// Hardware platform descriptions (Table III of the paper) and the execution
// resources each one offers. Node processing time anywhere in the system is
// *virtual*: real algorithm work is counted in cycles and converted to time
// through these specs, which is what lets a 1-core CI host reproduce the
// paper's 24-thread speedup curves deterministically.
#pragma once

#include <string>

namespace lgv::platform {

/// Where a computation node is hosted (Fig. 8 deployment sites).
enum class Host { kLgv, kEdgeGateway, kCloudServer };

const char* host_name(Host h);

struct PlatformSpec {
  std::string name;
  double freq_ghz = 1.0;  ///< core clock
  int cores = 1;          ///< physical cores
  int hw_threads = 1;     ///< cores × SMT ways
  /// Average sustained instructions per cycle for this class of silicon.
  /// In-order Cortex-A53 ≈ 0.6; Kaby Lake ≈ 2.0; Skylake-SP ≈ 1.6 at lower
  /// clocks but wider vectors. This is the knob that makes single-thread
  /// gateway ≈ 10× the RPi, matching the paper's measured VDP gap.
  double ipc = 1.0;
  /// Marginal throughput of an SMT sibling relative to a full core.
  double smt_efficiency = 0.3;
  /// Synchronization/imbalance tax per extra thread in a parallel region:
  /// effective throughput = parallel_throughput(n) / (1 + tax·(n−1)).
  /// Memory-bandwidth contention and barrier costs make real parallel
  /// efficiency fall well short of linear — this is what keeps the measured
  /// Fig. 9 speedups at the paper's ~28×/~41× instead of the ideal 50-90×.
  double sync_tax_per_thread = 0.12;
  /// Virtual cost of dispatching one chunk to the thread pool (seconds).
  /// Dominates VDP scaling past 4 threads (Fig. 10's plateau).
  double dispatch_overhead_s = 20e-6;
  double memory_gb = 1.0;

  /// Sustained cycles/second of useful work for one thread running alone.
  double single_thread_ops_per_sec() const { return freq_ghz * 1e9 * ipc; }

  /// Aggregate throughput factor (in units of one full core) available to a
  /// parallel region using `threads` threads.
  double parallel_throughput(int threads) const;
};

/// Turtlebot3's embedded computer: Raspberry Pi 3 B+ (Table III row 1).
PlatformSpec turtlebot3_spec();
/// Lab edge gateway: Intel i7-7700K, high frequency, 4C/8T (row 2).
PlatformSpec edge_gateway_spec();
/// Datacenter VM: Intel Xeon Gold 6149, manycore 24C/48T (row 3).
PlatformSpec cloud_server_spec();

PlatformSpec spec_for(Host h);

}  // namespace lgv::platform
