#include "core/report_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace lgv::core {

void write_velocity_trace_csv(std::ostream& os, const MissionReport& report) {
  os << "t,cap,real\n";
  for (const VelocitySample& s : report.velocity_trace) {
    os << s.t << "," << s.cap << "," << s.real << "\n";
  }
}

void write_network_trace_csv(std::ostream& os, const MissionReport& report) {
  os << "t,latency_ms,bandwidth_hz,direction,placement\n";
  for (const NetworkSample& s : report.network_trace) {
    os << s.t << "," << s.latency_ms << "," << s.bandwidth_hz << "," << s.direction
       << "," << (s.remote ? "remote" : "local") << "\n";
  }
}

void write_metrics_json(std::ostream& os, const MissionReport& report) {
  telemetry::write_metrics_json(os, report.metrics);
}

void write_node_work_csv(std::ostream& os, const MissionReport& report) {
  os << "node,cycles,invocations\n";
  for (const auto& [name, cycles] : report.node_cycles) {
    const auto it = report.node_invocations.find(name);
    os << name << "," << cycles << ","
       << (it != report.node_invocations.end() ? it->second : 0) << "\n";
  }
}

std::string summarize(const MissionReport& report) {
  std::ostringstream os;
  os << "mission " << report.workload << " [" << report.deployment << "] "
     << (report.success ? "SUCCEEDED" : "FAILED") << " in " << report.completion_time
     << " s\n";
  os << "  distance " << report.distance_traveled << " m, avg velocity "
     << report.average_velocity << " m/s, standby " << report.standby_time << " s\n";
  os << "  energy " << report.energy.total() << " J (motor " << report.energy.motor
     << ", computer " << report.energy.computer << ", sensor " << report.energy.sensor
     << ", micro " << report.energy.microcontroller << ", wireless "
     << report.energy.wireless << ")\n";
  os << "  battery " << report.battery_state_of_charge * 100.0 << "% remaining";
  if (report.network.uplink_messages > 0) {
    os << "; network up " << report.network.uplink_messages << " msgs / "
       << report.network.uplink_bytes << " B, down " << report.network.downlink_messages
       << " msgs, " << report.placement_switches << " placement switch(es)";
  }
  os << "\n";
  if (report.faults_injected > 0 || report.fallbacks > 0) {
    os << "  faults " << report.faults_injected << " injected, " << report.fallbacks
       << " lease fallback(s)\n";
  }
  if (report.explored_area_m2 > 0.0) {
    os << "  explored " << report.explored_area_m2 << " m^2\n";
  }
  if (!report.metrics.samples.empty()) {
    os << "  telemetry " << report.metrics.samples.size() << " series in "
       << report.metrics.families().size() << " families, " << report.trace_events
       << " trace events\n";
  }
  return os.str();
}

bool write_report_files(const std::string& prefix, const MissionReport& report) {
  {
    std::ofstream f(prefix + "_velocity.csv");
    if (!f) return false;
    write_velocity_trace_csv(f, report);
  }
  {
    std::ofstream f(prefix + "_network.csv");
    if (!f) return false;
    write_network_trace_csv(f, report);
  }
  {
    std::ofstream f(prefix + "_nodes.csv");
    if (!f) return false;
    write_node_work_csv(f, report);
  }
  if (!report.metrics.samples.empty()) {
    std::ofstream f(prefix + "_metrics.json");
    if (!f) return false;
    write_metrics_json(f, report);
  }
  return true;
}

bool write_trace_file(const std::string& path, const telemetry::Tracer& tracer) {
  std::ofstream f(path);
  if (!f) return false;
  tracer.write_chrome_json(f);
  return static_cast<bool>(f);
}

bool write_trace_jsonl_file(const std::string& path, const telemetry::Tracer& tracer) {
  std::ofstream f(path);
  if (!f) return false;
  tracer.write_jsonl(f);
  return static_cast<bool>(f);
}

telemetry::CriticalPathResult write_critical_path_file(
    const std::string& path, const telemetry::Tracer& tracer, double makespan_s) {
  const telemetry::CriticalPathResult result =
      telemetry::attribute_critical_path(tracer.events(), makespan_s);
  std::ofstream f(path);
  if (f) telemetry::write_critical_path_json(f, result);
  return result;
}

}  // namespace lgv::core
