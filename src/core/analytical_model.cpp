#include "core/analytical_model.h"

#include <algorithm>
#include <cmath>

namespace lgv::core {

double max_velocity(double tp, double a_max, double stopping_distance) {
  tp = std::max(0.0, tp);
  return a_max * (std::sqrt(tp * tp + 2.0 * stopping_distance / a_max) - tp);
}

double max_processing_time_for_velocity(double v, double a_max,
                                        double stopping_distance) {
  // From v = a(√(tp²+2d/a) − tp):  tp = (2·d·a − v²) / (2·a·v).
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  const double v_ceiling = std::sqrt(2.0 * stopping_distance * a_max);
  if (v >= v_ceiling) return 0.0;
  return (2.0 * stopping_distance * a_max - v * v) / (2.0 * a_max * v);
}

double vdp_makespan(double t_robot, double t_cloud, double t_network) {
  return t_robot + t_cloud + t_network;
}

double transmission_energy(double p_trans_w, double bytes, double uplink_bps) {
  if (uplink_bps <= 0.0) return 0.0;
  return p_trans_w * (bytes * 8.0 / uplink_bps);
}

double compute_power(double k, double cycles_per_sec, double freq_ghz) {
  return k * cycles_per_sec * freq_ghz * freq_ghz;
}

double motor_power(double p_loss_w, double mass_kg, double accel, double friction,
                   double velocity) {
  if (std::abs(velocity) < 1e-6) return 0.0;
  constexpr double g = 9.81;
  return p_loss_w + mass_kg * (std::max(0.0, accel) + g * friction) * std::abs(velocity);
}

double estimated_moving_time(double distance, double tp, double a_max,
                             double stopping_distance) {
  const double v = max_velocity(tp, a_max, stopping_distance);
  return v > 1e-9 ? distance / v : std::numeric_limits<double>::infinity();
}

}  // namespace lgv::core
