// MissionRunner: the end-to-end experiment driver behind Figs. 11–14. It
// wires the Fig. 2 pipeline (lidar → localization/SLAM, costmap generation →
// path tracking → velocity multiplexer, plus path planning and exploration)
// onto an OffloadRuntime deployment and steps the whole system — robot
// physics, wireless network, node execution with platform-modeled timing,
// per-component energy, Algorithm 1 placement and Algorithm 2 adaptation —
// in virtual time until the mission completes.
//
// Execution is asynchronous dataflow at a fixed tick: a node starts when its
// input arrives and it is idle, runs for the cost-model execution time of its
// current host, and its outputs publish when it finishes. Commands crossing
// hosts ride the emulated UDP links and can be lost; a starved Velocity
// Multiplexer times out to a safety stop, which is exactly how poor network
// quality strands an offloaded LGV (§VI).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "control/recovery.h"
#include "control/safety_controller.h"
#include "control/trajectory_rollout.h"
#include "control/velocity_mux.h"
#include "core/offload_runtime.h"
#include "perception/amcl.h"
#include "perception/costmap2d.h"
#include "perception/gmapping.h"
#include "perception/visual_odometry.h"
#include "planning/frontier.h"
#include "planning/global_planner.h"
#include "sim/lidar.h"
#include "sim/robot.h"
#include "sim/scenario.h"

namespace lgv::core {

/// Which Localization node implementation the mission runs (§IX: the paper's
/// strategies transfer to vision-based LGVs; the vision backend adds the
/// localization-failure speed constraint).
enum class LocalizationBackend { kLaser, kVision };

struct MissionConfig {
  double tick = 0.02;          ///< simulation step (s)
  double scan_period = 0.2;    ///< 5 Hz LDS
  double timeout = 1500.0;     ///< give up after this much virtual time
  double goal_tolerance = 0.35;
  double mux_timeout = 0.8;    ///< command freshness window
  double replan_period = 2.0;
  double adjust_period = 1.0;  ///< Algorithm 1/2 evaluation cadence
  double trace_period = 0.5;   ///< sampling of the report traces
  int rollout_samples = 2000;  ///< Fig. 10's default operating point
  int slam_particles = 30;
  double explore_done_grace = 8.0;  ///< min mission time before "explored"
  /// Fleet seed. A single vehicle uses it directly; in a fleet, each
  /// vehicle's subsystem seeds derive from (seed, vehicle_index) via
  /// splitmix64 (see effective_seed()) so vehicles never share RNG streams —
  /// N copies of the same MissionConfig with distinct indices are N
  /// *different* missions, not N replays of one.
  uint64_t seed = 0x5eed;
  /// This vehicle's index in the fleet; -1 = standalone (seed used as-is).
  /// Also stamps the wire session id and the telemetry vehicle_id.
  int vehicle_index = -1;
  /// Shared fleet worker (see FleetAttachment); nullptr = the runtime owns
  /// its remote compute as before. Must outlive the runner.
  WorkerPool* worker_pool = nullptr;
  /// Standby pool for failover (PR 9): on primary loss the runtime ships a
  /// crash-consistent state snapshot and re-admits here. Must outlive the
  /// runner; nullptr = no failover target.
  WorkerPool* standby_pool = nullptr;
  /// Busy-retry backoff and circuit-breaker policy for the pool attachment.
  FailoverConfig failover;
  /// The seed the vehicle's subsystems actually derive from.
  uint64_t effective_seed() const {
    return vehicle_index < 0
               ? seed
               : vehicle_seed(seed, static_cast<uint32_t>(vehicle_index));
  }
  /// Wireless environment (WAP position comes from the scenario).
  net::ChannelConfig channel;
  /// Battery capacity (Wh); the mission fails if it empties (Turtlebot3
  /// ships a 19.98 Wh pack — §I).
  double battery_wh = 19.98;
  /// §VIII-E: let the Controller shed cloud parallelism when the vehicle
  /// cannot reach the velocity cap (saves cloud cost; off by default so the
  /// headline figures run at fixed thread counts).
  bool adaptive_parallelism = false;
  /// Localization node implementation (navigation workload only; exploration
  /// always runs laser SLAM).
  LocalizationBackend localization = LocalizationBackend::kLaser;
  /// Telemetry (metrics + virtual-time trace). Enabled by default; set
  /// `telemetry.enabled = false` for overhead-free runs.
  telemetry::TelemetryConfig telemetry;
  /// Scripted fault schedule (docs/faults.md); empty = no injected faults.
  /// Channel events overlay the wireless emulation each tick; worker events
  /// feed the lease protocol.
  sim::FaultSchedule faults;
  /// Remote-execution leases + local fallback (the tentpole's graceful
  /// degradation). Disable to measure how a deployment fares against the
  /// same fault schedule with no fallback story (the bench's "adaptive"
  /// vs. "adaptive+fallback" comparison).
  bool lease_fallback = true;
};

struct VelocitySample {
  double t = 0.0;
  double cap = 0.0;   ///< Eq. 2c maximum velocity at t
  double real = 0.0;  ///< actual base speed at t
};

struct NetworkSample {
  double t = 0.0;
  double latency_ms = 0.0;    ///< latest measured RTT
  double bandwidth_hz = 0.0;  ///< Algorithm 2's r_t
  double direction = 0.0;     ///< Algorithm 2's d_t
  bool remote = false;        ///< VDP placement at t
};

struct MissionReport {
  std::string deployment;
  std::string workload;
  bool success = false;
  double completion_time = 0.0;  ///< T of Eq. 2a
  double standby_time = 0.0;     ///< Ts (vehicle halted while mission active)
  double distance_traveled = 0.0;
  double average_velocity = 0.0;
  double peak_velocity_cap = 0.0;
  sim::EnergyBreakdown energy;   ///< Fig. 13's stacked components
  SwitcherStats network;
  uint64_t placement_switches = 0;  ///< Algorithm 2 activations
  uint64_t fallbacks = 0;           ///< lease expirations → local re-executions
  uint64_t busy_fallbacks = 0;      ///< pool refusals degraded to local compute
  uint64_t pool_failovers = 0;      ///< committed pool switches (PR 9)
  uint64_t faults_injected = 0;     ///< scripted fault events that activated
  double explored_area_m2 = 0.0;    ///< exploration workload only
  double battery_state_of_charge = 1.0;  ///< remaining fraction at mission end
  int min_active_threads = 1;  ///< lowest worker count (§VIII-E shedding)
  double cloud_core_seconds = 0.0;  ///< reserved remote core-seconds (cost proxy)
  std::vector<VelocitySample> velocity_trace;
  std::vector<NetworkSample> network_trace;
  /// Per-node cycle totals and invocation counts (Table II's raw data).
  std::map<std::string, double> node_cycles;
  std::map<std::string, size_t> node_invocations;
  /// End-of-mission telemetry: every metric series (empty when telemetry is
  /// disabled) and the recorded trace-event count. The full trace lives in
  /// `MissionRunner::runtime().telemetry()->tracer()`.
  telemetry::MetricsSnapshot metrics;
  uint64_t trace_events = 0;
};

/// Live snapshot passed to the tick observer (debugging / visualization).
struct TickState {
  double t = 0.0;
  Pose2D robot_pose;
  Pose2D estimated_pose;
  Velocity2D command;
  double velocity_cap = 0.0;
  size_t path_waypoints = 0;
  std::optional<Pose2D> goal;
  bool collided = false;
  const char* mux_source = "";
};

class MissionRunner {
 public:
  MissionRunner(sim::Scenario scenario, DeploymentPlan plan, MissionConfig config = {});

  /// Run the mission to completion (or timeout) and return the report.
  /// Equivalent to start(); while (step()) {}; finalize().
  MissionReport run();

  /// Steppable form, so a fleet harness can drive N runners in lockstep
  /// against one shared WorkerPool: start() applies the initial placement,
  /// each step() executes one tick and advances the clock, returning false
  /// once the mission is done (success, battery, or timeout), and finalize()
  /// closes out and returns the report.
  void start();
  bool step();
  MissionReport finalize();

  /// Invoked once per simulation tick with the live state. Install before
  /// run(); used by examples for visualization and by debugging tools.
  void set_tick_observer(std::function<void(const TickState&)> observer) {
    observer_ = std::move(observer);
  }

  OffloadRuntime& runtime() { return runtime_; }

 private:
  struct DeferredAction {
    double due;
    telemetry::TraceContext ctx;  ///< trace context captured at defer() time
    std::function<void()> fn;
  };

  void setup_graph();
  void on_scan_tick(double now);
  void run_localization(double now);
  void run_costmap(double now);
  void run_tracking(double now);
  void run_planning(double now, bool force);
  void run_exploration(double now);
  void run_adjustment(double now);
  /// Serialized size of the migratable state right now (costmap snapshot +
  /// SLAM/AMCL filter state) — Algorithm 2's migrations and the failover
  /// snapshot path both price their transfer off this. `used_delta` (may be
  /// null) reports whether the SLAM codec managed a delta encoding.
  double serialized_state_bytes(double now, bool* used_delta);
  void integrate_energy(double now, double prev_speed);
  void defer(double due, std::function<void()> fn);
  void pump(double now);
  double current_velocity_cap() const;
  telemetry::Tracer* tracer();
  telemetry::TraceContext capture_ctx();

  sim::Scenario scenario_;
  MissionConfig config_;
  OffloadRuntime runtime_;
  sim::FaultInjector fault_injector_;

  // physical world
  sim::DiffDriveRobot robot_;
  sim::Lidar lidar_;
  sim::Battery battery_;
  double battery_drained_j_ = 0.0;

  // pipeline algorithm state
  perception::OccupancyGrid known_map_;       ///< navigation ground-truth map
  std::optional<perception::Amcl> amcl_;      ///< with-a-map laser localization
  std::optional<perception::Gmapping> slam_;  ///< without-a-map localization
  std::optional<perception::Camera> camera_;  ///< vision-based LGV (§IX)
  std::optional<perception::VisualOdometry> vo_;
  std::optional<perception::VisualFrame> frame_for_loc_;
  Pose2D vo_last_odom_;
  perception::Costmap2D costmap_;
  planning::GlobalPlanner planner_;
  planning::FrontierExplorer frontier_;
  control::TrajectoryRollout rollout_;
  control::VelocityMultiplexer mux_;
  control::SafetyController safety_;
  control::RecoveryBehavior recovery_;

  // dataflow state
  std::optional<msg::LaserScan> scan_for_loc_;
  std::optional<msg::LaserScan> scan_for_cg_;
  // Trace contexts riding alongside the data handoffs above, so a node that
  // consumes a buffered input parents its span under the producing event even
  // when ticks elapse in between.
  telemetry::TraceContext scan_loc_ctx_;
  telemetry::TraceContext scan_cg_ctx_;
  telemetry::TraceContext frame_ctx_;
  telemetry::TraceContext costmap_ctx_;
  msg::Odometry latest_odom_;
  Pose2D pose_estimate_;
  double pose_stamp_ = 0.0;
  /// Localization publishes the map→odom correction; composing it with fresh
  /// odometry gives an up-to-date pose even while SLAM/AMCL lag (standard
  /// ROS TF practice). The correction itself can be stale/lossy — odometry
  /// drifts slowly, so that is safe.
  Pose2D map_to_odom_;
  Pose2D current_pose() const { return map_to_odom_.compose(latest_odom_.pose); }
  double costmap_stamp_ = -1.0;
  double tracked_costmap_stamp_ = -1.0;
  msg::PathMsg path_;
  std::optional<Pose2D> goal_;
  double loc_busy_until_ = 0.0;
  double cg_busy_until_ = 0.0;
  double pt_busy_until_ = 0.0;
  double pp_busy_until_ = 0.0;
  std::vector<DeferredAction> deferred_;

  // publishers
  mw::Publisher<msg::LaserScan> scan_pub_;
  mw::Publisher<msg::Odometry> odom_pub_;
  mw::Publisher<msg::PoseStamped> pose_pub_;
  mw::Publisher<msg::PoseStamped> tf_pub_;
  mw::Publisher<msg::TwistMsg> cmd_pub_;

  // bookkeeping
  MissionReport report_;
  uint64_t scan_seq_ = 0;
  double last_scan_time_ = -1e9;
  double last_replan_ = -1e9;
  double last_adjust_ = -1e9;
  double last_trace_ = -1e9;
  double last_progress_time_ = 0.0;
  double best_goal_distance_ = 1e18;
  double frozen_until_ = 0.0;  ///< state-migration freeze (Algorithm 2)
  bool explored_ = false;
  bool done_ = false;  ///< set by step() when the mission ends
  /// Frontier goals that made no progress for a while — treated as
  /// unreachable (e.g. slivers inside inflation) and skipped.
  std::vector<Point2D> frontier_blacklist_;
  double explore_goal_set_time_ = 0.0;
  double explore_best_dist_ = 1e18;
  std::function<void(const TickState&)> observer_;
};

}  // namespace lgv::core
