#include "core/worker_pool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lgv::core {

namespace {
// Virtual-second buckets for queue-wait quantiles: 0.1 ms .. 10 s.
std::vector<double> wait_bounds_s() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 0.1,    0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
}

std::vector<double> batch_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

// Items per real-dispatch grain. Request regions are padded to multiples of
// this so every grain's cycles belong to exactly one request (one writer per
// grain slot — the same determinism trick parallel_kernel_blocks uses).
constexpr size_t kBatchGrain = 8;
}  // namespace

const char* kernel_kind_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScanMatch:
      return "scan_match";
    case KernelKind::kScoreTrajectory:
      return "score_trajectory";
    default:
      return "generic";
  }
}

WorkerPool::WorkerPool(WorkerPoolConfig config, telemetry::Telemetry* telemetry)
    : config_(config),
      pool_(static_cast<size_t>(
          std::max(1, config.threads > 0 ? config.threads : config.cores))) {
  config_.cores = std::max(1, config_.cores);
  core_free_.assign(static_cast<size_t>(config_.cores), 0.0);
  if (telemetry != nullptr && telemetry->enabled()) {
    telemetry_ = telemetry;
    pool_.set_telemetry(telemetry_, "worker_pool");
    auto& m = telemetry_->metrics();
    busy_total_ = &m.counter("worker_busy_rejects_total");
    evictions_total_ = &m.counter("worker_evictions_total");
    admission_rejects_total_ = &m.counter("worker_admission_rejects_total");
    sessions_gauge_ = &m.gauge("worker_sessions");
    occupancy_gauge_ = &m.gauge("worker_occupancy");
    session_depth_gauge_ = &m.gauge("worker_max_session_depth");
    queue_wait_s_ = &m.histogram("worker_queue_wait_s", {}, wait_bounds_s());
    batch_size_ = &m.histogram("worker_batch_size", {}, batch_bounds());
  }
}

Admission WorkerPool::open_session(const std::string& vehicle, double now,
                                   int weight) {
  step(now);
  if (draining_ || crashed(now) || sessions_.size() >= config_.max_sessions ||
      occupancy(now) > config_.admit_occupancy_max) {
    ++admission_rejects_;
    if (admission_rejects_total_ != nullptr) admission_rejects_total_->inc();
    return {0, true};
  }
  const SessionId id = next_session_++;
  Session& s = sessions_[id];
  s.label = vehicle.empty() ? "session-" + std::to_string(id) : vehicle;
  s.weight = static_cast<uint64_t>(
      std::max(1, weight > 0 ? weight : config_.default_weight));
  s.lease_expiry = now + config_.session_lease_s;
  // Mirror the session onto the real pool so this vehicle's kernel chunks
  // fair-share against the other tenants' (ExecutionContext attribution).
  pool_.register_session(id, s.weight, s.label);
  if (sessions_gauge_ != nullptr) {
    sessions_gauge_->set(static_cast<double>(sessions_.size()));
  }
  return {id, false};
}

bool WorkerPool::renew(SessionId id, double now) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  if (it->second.lease_expiry < now) {
    // Already past its lease: the eviction just hadn't been collected yet.
    close_session(id);
    ++evictions_;
    if (evictions_total_ != nullptr) evictions_total_->inc();
    return false;
  }
  it->second.lease_expiry = now + config_.session_lease_s;
  return true;
}

void WorkerPool::fail_pending(Session& s, const char* cause) {
  // Accepted requests the flush has not served yet: the session is going
  // away, so each one is *explicitly* failed — a busy verdict carrying the
  // eviction cause — and withdrawn from the flush list. Before PR 9 the
  // ticket went busy but the request stayed in pending_: the dead vehicle's
  // coalesced block still ran (wasted real dispatch) and inflated the
  // survivors' batch accounting (a lone survivor was marked "batched" with a
  // ghost). The regression test evicts mid-flush-window and pins both.
  for (const uint64_t t : s.pending) {
    verdicts_[t] = WorkerVerdict{};
    verdicts_[t].busy = true;
    verdicts_[t].busy_cause = cause;
    ++evicted_requests_;
    if (telemetry_ != nullptr) {
      telemetry_->metrics()
          .counter("worker_busy_cause_total", {{"cause", cause}})
          .inc();
    }
    pending_.erase(std::remove(pending_.begin(), pending_.end(), t),
                   pending_.end());
  }
  s.pending.clear();
}

void WorkerPool::close_session_with(SessionId id, const char* cause) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  fail_pending(it->second, cause);
  sessions_.erase(it);
  if (sessions_gauge_ != nullptr) {
    sessions_gauge_->set(static_cast<double>(sessions_.size()));
  }
}

void WorkerPool::close_session(SessionId id) { close_session_with(id, "evicted"); }

size_t WorkerPool::evict_expired(double now) {
  std::vector<SessionId> expired;
  for (const auto& [id, s] : sessions_) {
    if (s.lease_expiry < now) expired.push_back(id);
  }
  for (const SessionId id : expired) close_session(id);
  evictions_ += expired.size();
  if (evictions_total_ != nullptr && !expired.empty()) {
    evictions_total_->inc(expired.size());
  }
  return expired.size();
}

WorkerPool::Session* WorkerPool::find_session(SessionId id, double now) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  // Traffic renews the lease — an actively offloading vehicle never expires.
  it->second.lease_expiry = std::max(it->second.lease_expiry,
                                     now + config_.session_lease_s);
  return &it->second;
}

size_t WorkerPool::outstanding_depth(Session& s, double now) {
  while (!s.outstanding.empty() && s.outstanding.front() <= now) {
    s.outstanding.pop_front();
  }
  return s.outstanding.size() + s.pending.size();
}

void WorkerPool::note_depth(size_t depth) {
  if (depth > max_session_depth_) {
    max_session_depth_ = depth;
    if (session_depth_gauge_ != nullptr) {
      session_depth_gauge_->set(static_cast<double>(depth));
    }
  }
}

WorkerPool::Ticket WorkerPool::reject_busy(const char* cause) {
  ++busy_rejects_;
  if (busy_total_ != nullptr) busy_total_->inc();
  if (telemetry_ != nullptr) {
    telemetry_->metrics()
        .counter("worker_busy_cause_total", {{"cause", cause}})
        .inc();
  }
  Ticket t;
  t.busy = true;
  t.cause = cause;
  return t;
}

double WorkerPool::start_wait(double now, int threads) const {
  // `threads` cores are simultaneously free once the w-th smallest free time
  // passes — the predicted queueing delay a request dispatched now would see.
  const size_t w = static_cast<size_t>(
      std::clamp(threads, 1, config_.cores));
  std::vector<double> free = core_free_;
  std::nth_element(free.begin(), free.begin() + (w - 1), free.end());
  return std::max(0.0, free[w - 1] - now);
}

WorkerPool::Ticket WorkerPool::enqueue(SessionId session, Request req) {
  step(req.arrival);
  // Failure plane first: a draining or crashed pool refuses everything, and
  // a partitioned session's request never reaches the pool at all — in
  // particular it does NOT renew the lease, so a vehicle stuck behind the
  // partition ages out of the session table like any silent tenant.
  if (draining_) return reject_busy("draining");
  if (fault_injector_ != nullptr) {
    if (fault_injector_->pool_down(req.arrival)) return reject_busy("pool_crash");
    if (fault_injector_->session_partitioned(session, req.arrival)) {
      return reject_busy("pool_partition");
    }
  }
  Session* s = find_session(session, req.arrival);
  if (s == nullptr) return reject_busy("no_session");
  const size_t depth = outstanding_depth(*s, req.arrival);
  if (depth >= config_.max_session_queue) return reject_busy("queue_depth");
  if (start_wait(req.arrival, req.threads) > config_.busy_wait_s) {
    return reject_busy("pool_wait");
  }
  note_depth(depth + 1);
  ++requests_;
  if (telemetry_ != nullptr) {
    telemetry_->metrics()
        .counter("worker_requests_total", {{"kernel", kernel_kind_name(req.kind)}})
        .inc();
  }
  Ticket t;
  t.id = requests_store_.size();
  requests_store_.push_back(std::move(req));
  verdicts_.emplace_back();
  pending_.push_back(t.id);
  s->pending.push_back(t.id);
  return t;
}

WorkerPool::Ticket WorkerPool::submit(SessionId session, KernelKind kind, double now,
                                      double service_s, int threads) {
  Request r;
  r.session = session;
  r.kind = kind;
  r.arrival = now;
  r.service_s = std::max(0.0, service_s);
  r.threads = threads;
  return enqueue(session, std::move(r));
}

WorkerPool::Ticket WorkerPool::submit_block(SessionId session, KernelKind kind,
                                            double now, size_t count, BlockFn block,
                                            double seconds_per_cycle, int threads) {
  Request r;
  r.session = session;
  r.kind = kind;
  r.arrival = now;
  r.threads = threads;
  r.count = count;
  r.block = std::move(block);
  r.seconds_per_cycle = seconds_per_cycle;
  return enqueue(session, std::move(r));
}

void WorkerPool::run_batches() {
  // Coalesce same-kernel block requests into one real dispatch each: the
  // whole fleet's scanMatch particles (or rollout candidates) for this tick
  // become a single index space served by one parallel dispatch, exactly the
  // cross-vehicle batching a real inference/compute server does.
  for (int k = 0; k < 3; ++k) {
    std::vector<uint64_t> group;
    size_t total_padded = 0;
    for (const uint64_t id : pending_) {
      Request& r = requests_store_[id];
      if (static_cast<int>(r.kind) != k || !r.block || r.count == 0) continue;
      group.push_back(id);
      total_padded += (r.count + kBatchGrain - 1) / kBatchGrain * kBatchGrain;
    }
    if (group.empty()) continue;
    ++batches_;
    if (batch_size_ != nullptr) {
      batch_size_->observe(static_cast<double>(group.size()));
    }
    if (telemetry_ != nullptr) {
      telemetry_->metrics()
          .counter("worker_batches_total",
                   {{"kernel", kernel_kind_name(static_cast<KernelKind>(k))}})
          .inc();
    }

    // Padded offsets: every request's region is a whole number of grains, so
    // each grain's cycles have exactly one owning request (one writer per
    // grain slot keeps the measurement race-free and deterministic).
    std::vector<size_t> offsets(group.size() + 1, 0);
    for (size_t i = 0; i < group.size(); ++i) {
      const Request& r = requests_store_[group[i]];
      offsets[i + 1] =
          offsets[i] + (r.count + kBatchGrain - 1) / kBatchGrain * kBatchGrain;
    }
    const size_t n_grains = total_padded / kBatchGrain;
    std::vector<double> grain_cycles(n_grains, 0.0);
    auto run_range = [&](size_t begin, size_t end) {
      // Locate the owning request by offset (ranges never straddle grains,
      // grains never straddle requests).
      const size_t req_idx =
          static_cast<size_t>(std::upper_bound(offsets.begin(), offsets.end(), begin) -
                              offsets.begin()) -
          1;
      const Request& r = requests_store_[group[req_idx]];
      const size_t local_begin = begin - offsets[req_idx];
      const size_t local_end = std::min(end - offsets[req_idx], r.count);
      if (local_begin >= local_end) return;  // pure padding
      grain_cycles[begin / kBatchGrain] = r.block(local_begin, local_end);
    };
    pool_.parallel_dynamic(total_padded, kBatchGrain, run_range);

    for (size_t i = 0; i < group.size(); ++i) {
      Request& r = requests_store_[group[i]];
      double cycles = 0.0;
      for (size_t g = offsets[i] / kBatchGrain; g < offsets[i + 1] / kBatchGrain; ++g) {
        cycles += grain_cycles[g];
      }
      r.service_s = cycles * r.seconds_per_cycle;
      r.batched = group.size() > 1;
      if (r.batched) ++batched_requests_;
    }
  }
}

void WorkerPool::schedule(double now) {
  // Weighted stride over the pending requests: the session with the least
  // virtual time serves next; its request takes the `threads` cores that
  // free up earliest. Deterministic (map order breaks vtime ties by id).
  while (true) {
    Session* best = nullptr;
    for (auto& [id, s] : sessions_) {
      if (s.pending.empty()) continue;
      if (best == nullptr || s.vtime < best->vtime) best = &s;
    }
    if (best == nullptr) break;
    const uint64_t ticket = best->pending.front();
    best->pending.erase(best->pending.begin());
    const Request& r = requests_store_[ticket];
    const size_t w = static_cast<size_t>(std::clamp(r.threads, 1, config_.cores));

    // The w cores that free up earliest serve this request together.
    std::vector<size_t> order(core_free_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(), order.begin() + w, order.end(),
                      [&](size_t a, size_t b) { return core_free_[a] < core_free_[b]; });
    const double start = std::max(r.arrival, core_free_[order[w - 1]]);
    const double completion = start + r.service_s;
    for (size_t i = 0; i < w; ++i) core_free_[order[i]] = completion;

    WorkerVerdict& v = verdicts_[ticket];
    v.busy = false;
    v.queue_wait = start - r.arrival;
    v.service = r.service_s;
    v.completion = completion;
    v.batched = r.batched;

    best->outstanding.push_back(completion);
    best->vtime += r.service_s * static_cast<double>(w) /
                   static_cast<double>(best->weight);

    if (queue_wait_s_ != nullptr) queue_wait_s_->observe(v.queue_wait);
    if (telemetry_ != nullptr && r.service_s > 0.0) {
      // pid = the remote host lane so the critical-path analyzer buckets
      // pool time as remote compute.
      telemetry_->tracer().span(
          std::string("worker.") + kernel_kind_name(r.kind), config_.host_label,
          sessions_.count(r.session) ? sessions_[r.session].label : "evicted", start,
          r.service_s,
          {{"queue_wait_s", std::to_string(v.queue_wait)},
           {"batched", r.batched ? "1" : "0"}});
    }
  }
  pending_.clear();
  if (occupancy_gauge_ != nullptr) occupancy_gauge_->set(occupancy(now));
}

void WorkerPool::apply_crash(double crash_end) {
  ++pool_crashes_;
  // The crash wipes the session table (leased state died with the process)
  // and whatever work the cores held; the pool restarts *empty* at the end
  // of the window. Results already promised to callers are reclaimed by the
  // vehicle side: result_lost_in() tells the lease path they never arrive.
  std::vector<SessionId> all;
  all.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) all.push_back(id);
  for (const SessionId id : all) close_session_with(id, "pool_crash");
  evictions_ += all.size();
  if (evictions_total_ != nullptr && !all.empty()) {
    evictions_total_->inc(all.size());
  }
  std::fill(core_free_.begin(), core_free_.end(), crash_end);
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("pool_crashes_total").inc();
  }
}

void WorkerPool::step(double now) {
  if (now < fault_step_time_) return;  // virtual time never runs backwards
  if (fault_injector_ != nullptr) {
    // Apply each pool_crash whose start this step crosses, exactly once.
    for (const sim::FaultEvent& e : fault_injector_->schedule().events) {
      if (e.kind != sim::FaultKind::kPoolCrash) continue;
      if (e.start > fault_step_time_ && e.start <= now) apply_crash(e.end());
    }
    // Degrade: the lost cores are parked until the window closes. Idempotent
    // — re-applying the same window is a no-op thanks to the max().
    const int lost = fault_injector_->pool_cores_lost(now);
    if (lost > 0) {
      const double until = fault_injector_->pool_degrade_end(now);
      const size_t k = std::min(static_cast<size_t>(lost), core_free_.size());
      for (size_t i = core_free_.size() - k; i < core_free_.size(); ++i) {
        core_free_[i] = std::max(core_free_[i], until);
      }
    }
  }
  if (draining_) {
    // Evict every session whose in-flight work has landed; their (empty)
    // pending lists make the close a pure table drop.
    std::vector<SessionId> done;
    for (auto& [id, s] : sessions_) {
      if (outstanding_depth(s, now) == 0) done.push_back(id);
    }
    for (const SessionId id : done) close_session_with(id, "draining");
    drain_evictions_ += done.size();
    evictions_ += done.size();
    if (evictions_total_ != nullptr && !done.empty()) {
      evictions_total_->inc(done.size());
    }
  }
  fault_step_time_ = now;
}

bool WorkerPool::result_lost_in(double t0, double t1) const {
  return fault_injector_ != nullptr && fault_injector_->pool_crashed_in(t0, t1);
}

bool WorkerPool::crashed(double t) const {
  return fault_injector_ != nullptr && fault_injector_->pool_down(t);
}

void WorkerPool::begin_drain(double now) {
  if (draining_) return;
  draining_ = true;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("pool_drains_total").inc();
    telemetry_->tracer().instant_now("pool.drain", "decisions", "worker_pool",
                                     {{"sessions", std::to_string(sessions_.size())}});
    // Post-mortem context for the rolling restart: what the fleet was doing
    // when the operator pulled this replica.
    telemetry_->dump_flight("pool_drain");
  }
  step(now);
}

void WorkerPool::end_drain() { draining_ = false; }

bool WorkerPool::drained(double now) const {
  if (!sessions_.empty() || !pending_.empty()) return false;
  for (const double free : core_free_) {
    if (free > now) return false;
  }
  return true;
}

void WorkerPool::note_busy_fallback() {
  ++busy_fallbacks_;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("pool_busy_fallback_total").inc();
  }
}

void WorkerPool::flush(double now) {
  step(now);
  run_batches();
  schedule(now);
}

WorkerVerdict WorkerPool::verdict(const Ticket& ticket) const {
  if (ticket.busy) {
    WorkerVerdict v;
    v.busy = true;
    v.busy_cause = ticket.cause;
    return v;
  }
  assert(ticket.id < verdicts_.size());
  return verdicts_[ticket.id];
}

WorkerVerdict WorkerPool::execute(SessionId session, KernelKind kind, double now,
                                  double service_s, int threads) {
  const Ticket t = submit(session, kind, now, service_s, threads);
  if (t.busy) return verdict(t);
  flush(now);
  return verdict(t);
}

double WorkerPool::occupancy(double now) const {
  size_t busy = 0;
  for (const double free : core_free_) {
    if (free > now) ++busy;
  }
  return static_cast<double>(busy) / static_cast<double>(core_free_.size());
}

}  // namespace lgv::core
