// Algorithm 2 — Offload Network Quality Control (§VI-A). Predicts network
// quality from receive-side packet bandwidth and the signal direction
// (LGV heading toward/away from the WAP), instead of tail latency which UDP's
// kernel-buffer drops make blind (Fig. 7). Switches the offloaded node set
// between the remote server and the LGV.
#pragma once

#include <cstdint>

namespace lgv::core {

enum class VdpPlacement { kLocal, kRemote };

struct NetworkQualityConfig {
  /// r_t threshold (packets/s). The paper sets 4 for a 5 Hz stream (§VIII-C).
  double bandwidth_threshold_hz = 4.0;
  /// Consecutive agreeing observations required before switching — debounce
  /// so a single noisy window can't flap the placement.
  int hysteresis_samples = 2;
};

struct NetworkObservation {
  double bandwidth_hz = 0.0;    ///< r_t, from BandwidthMeter
  double signal_direction = 0.0;///< d_t, from SignalDirectionEstimator
};

class NetworkQualityController {
 public:
  explicit NetworkQualityController(NetworkQualityConfig config = {},
                                    VdpPlacement initial = VdpPlacement::kRemote)
      : config_(config), placement_(initial) {}

  /// One Algorithm 2 step:
  ///   if r_t < threshold and d_t < 0 → invoke nodes on the LGV locally
  ///   if r_t > threshold and d_t > 0 → invoke nodes on the remote server
  /// Returns the (possibly changed) placement.
  VdpPlacement update(const NetworkObservation& obs);

  VdpPlacement placement() const { return placement_; }
  uint64_t switches() const { return switches_; }
  void force(VdpPlacement p) {
    placement_ = p;
    pending_ = 0;
  }

 private:
  NetworkQualityConfig config_;
  VdpPlacement placement_;
  int pending_ = 0;  ///< signed count of consecutive switch votes
  uint64_t switches_ = 0;
};

}  // namespace lgv::core
