#include "core/host_topology.h"

#include <cmath>
#include <limits>

namespace lgv::core {

namespace {

bool materially_different(double a, double b, double eps) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) > eps * scale;
}

}  // namespace

int HostTopology::add_host(TopologyHost host) {
  const int index = host_count();
  models_.emplace_back(platform::spec_for(host.kind));
  hosts_.push_back(std::move(host));
  // Rebuild the square link matrix preserving existing entries. Hosts are
  // added during construction, not steady state, so O(n²) is fine.
  const int n = host_count();
  std::vector<TopologyLink> grown(static_cast<size_t>(n) * n);
  for (int s = 0; s < n - 1; ++s) {
    for (int d = 0; d < n - 1; ++d) {
      grown[static_cast<size_t>(s * n + d)] = links_[static_cast<size_t>(s * (n - 1) + d)];
    }
  }
  links_ = std::move(grown);
  // Self link: infinite bandwidth, zero latency.
  links_[static_cast<size_t>(index * n + index)] =
      TopologyLink{std::numeric_limits<double>::infinity(), 0.0, 0.0};
  ++generation_;
  return index;
}

void HostTopology::set_link(int src, int dst, TopologyLink link) {
  if (src == dst) return;  // self links are identity by construction
  links_[static_cast<size_t>(src * host_count() + dst)] = link;
  ++generation_;
}

void HostTopology::observe_link(int src, int dst, double bandwidth_bps,
                                double rtt_s, double loss) {
  if (src == dst) return;
  TopologyLink& l = links_[static_cast<size_t>(src * host_count() + dst)];
  if (!materially_different(l.bandwidth_bps, bandwidth_bps, kMaterialChange) &&
      !materially_different(l.rtt_s, rtt_s, kMaterialChange) &&
      !materially_different(l.loss, loss, kMaterialChange)) {
    return;  // same numbers: no invalidation, cost tables stay warm
  }
  l.bandwidth_bps = bandwidth_bps;
  l.rtt_s = rtt_s;
  l.loss = loss;
  ++generation_;
}

int HostTopology::index_of(platform::Host kind) const {
  for (int i = 0; i < host_count(); ++i) {
    if (hosts_[static_cast<size_t>(i)].kind == kind) return i;
  }
  return -1;
}

HostTopology HostTopology::two_host(platform::Host remote, int remote_threads,
                                    double bandwidth_bps, double rtt_s, double loss) {
  HostTopology t;
  t.add_host({"lgv", platform::Host::kLgv, 1});
  const int r = t.add_host({platform::host_name(remote), remote, remote_threads});
  t.set_link(0, r, {bandwidth_bps, rtt_s, loss});
  t.set_link(r, 0, {bandwidth_bps, rtt_s, loss});
  return t;
}

HostTopology HostTopology::three_tier(int edge_threads, int cloud_threads,
                                      double wlan_bandwidth_bps, double wlan_rtt_s,
                                      double wlan_loss, double wan_rtt_s,
                                      double backhaul_bps) {
  HostTopology t;
  t.add_host({"lgv", platform::Host::kLgv, 1});
  const int edge =
      t.add_host({"edge_gateway", platform::Host::kEdgeGateway, edge_threads});
  const int cloud =
      t.add_host({"cloud_server", platform::Host::kCloudServer, cloud_threads});
  // Vehicle ↔ gateway: the emulated WLAN.
  t.set_link(0, edge, {wlan_bandwidth_bps, wlan_rtt_s, wlan_loss});
  t.set_link(edge, 0, {wlan_bandwidth_bps, wlan_rtt_s, wlan_loss});
  // Gateway ↔ datacenter: wired backhaul, WAN latency, no loss modeled.
  t.set_link(edge, cloud, {backhaul_bps, wan_rtt_s, 0.0});
  t.set_link(cloud, edge, {backhaul_bps, wan_rtt_s, 0.0});
  // Vehicle ↔ datacenter: WLAN hop then WAN hop (§VIII-A: the VM is reached
  // through the same WAP, so bandwidth is the WLAN's and latency stacks).
  t.set_link(0, cloud, {wlan_bandwidth_bps, wlan_rtt_s + wan_rtt_s, wlan_loss});
  t.set_link(cloud, 0, {wlan_bandwidth_bps, wlan_rtt_s + wan_rtt_s, wlan_loss});
  return t;
}

}  // namespace lgv::core
