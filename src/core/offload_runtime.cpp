#include "core/offload_runtime.h"

#include <algorithm>

namespace lgv::core {

DeploymentPlan local_plan(WorkloadKind workload) {
  DeploymentPlan p;
  p.name = "local";
  p.offload = false;
  p.adaptive = false;
  p.workload = workload;
  return p;
}

DeploymentPlan offload_plan(const std::string& name, platform::Host remote, int threads,
                            WorkloadKind workload, Goal goal) {
  DeploymentPlan p;
  p.name = name;
  p.offload = true;
  p.remote_host = remote;
  p.remote_threads = threads;
  p.goal = goal;
  p.workload = workload;
  return p;
}

DeploymentPlan three_tier_plan(const std::string& name, int cloud_threads,
                               WorkloadKind workload, Goal goal) {
  DeploymentPlan p =
      offload_plan(name, platform::Host::kCloudServer, cloud_threads, workload, goal);
  p.multi_tier = true;
  return p;
}

namespace {

/// Round-trip WAN leg to the datacenter (2 × the one-way wired latency
/// adjust_channel adds for cloud deployments) — what separates the vehicle →
/// cloud path from the vehicle → gateway path in the three-tier topology.
constexpr double kWanRttS = 0.024;
/// Scan payload the receive-side stream rate is counted in (bytes).
constexpr double kStreamPayloadBytes = 3000.0;

net::ChannelConfig adjust_channel(net::ChannelConfig cfg, Point2D wap,
                                  platform::Host remote) {
  cfg.wap_position = wap;
  // Packets to the datacenter continue over the WAN (§VIII-A: a VM from a
  // public cloud provider); the edge gateway sits on the lab LAN.
  cfg.wan_latency_s = remote == platform::Host::kCloudServer ? 0.012 : 0.0;
  return cfg;
}
}  // namespace

OffloadRuntime::OffloadRuntime(DeploymentPlan plan, Point2D wap_position,
                               net::ChannelConfig channel_config,
                               telemetry::TelemetryConfig telemetry_config,
                               FleetAttachment fleet)
    : plan_(std::move(plan)),
      channel_(adjust_channel(channel_config, wap_position, plan_.remote_host)),
      power_(),
      switcher_(&graph_, &channel_, &clock_, &energy_, &power_),
      profiler_({}, wap_position),
      controller_(),
      netctl_({}, plan_.offload ? VdpPlacement::kRemote : VdpPlacement::kLocal),
      planner_(plan_.goal, plan_.remote_host),
      vdp_placement_(plan_.offload ? VdpPlacement::kRemote : VdpPlacement::kLocal) {
  worker_pool_ = fleet.pool;
  vehicle_index_ = fleet.vehicle_index;
  standby_pool_ = fleet.standby;
  standby_host_ = fleet.standby_host;
  remote_host_ = plan_.remote_host;
  if (vehicle_index_ >= 0) {
    // Session identity on the wire: every frame this vehicle's Switcher sends
    // carries its id, so the shared worker sequences each vehicle's stream
    // independently (no cross-vehicle duplicate rejects).
    switcher_.set_session_id(static_cast<uint16_t>(vehicle_index_ + 1));
    if (telemetry_config.vehicle_id.empty()) {
      telemetry_config.vehicle_id = "lgv-" + std::to_string(vehicle_index_);
    }
  }
  cost_models_.emplace(platform::Host::kLgv,
                       platform::CostModel(platform::turtlebot3_spec()));
  cost_models_.emplace(platform::Host::kEdgeGateway,
                       platform::CostModel(platform::edge_gateway_spec()));
  cost_models_.emplace(platform::Host::kCloudServer,
                       platform::CostModel(platform::cloud_server_spec()));

  for (NodeId id : all_nodes()) {
    traits_[id] = NodeClassifier::static_traits(id, plan_.workload);
    placement_[id] = platform::Host::kLgv;
    graph_.register_node(node_name(id), platform::Host::kLgv);
  }
  // Sensor driver and base controller always live on the vehicle.
  graph_.register_node("lidar_driver", platform::Host::kLgv);
  graph_.register_node("base_controller", platform::Host::kLgv);
  // Remote worker endpoint (Fig. 8's WORKER module).
  graph_.register_node("worker", plan_.remote_host);
  graph_.set_remote_transport(&switcher_);

  if (plan_.offload && plan_.remote_threads > 1 && worker_pool_ == nullptr) {
    // Genuine worker pool for the parallel kernels (Figs. 5/6). Timing still
    // comes from the cost model; the pool provides real concurrent execution.
    // With a shared fleet WorkerPool attached, the runtime is a tenant of
    // that pool instead of owning one per vehicle.
    remote_pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(plan_.remote_threads));
  }
  active_threads_ = plan_.offload ? plan_.remote_threads : 1;

  if (worker_pool_ != nullptr) {
    // Every pool tenant gets the failover policy (even standby-less: the
    // jittered backoff and the breaker still pace a busy/dead primary). The
    // jitter stream must differ per vehicle or 128 bounced tenants retry in
    // lockstep — an unseeded attachment falls back to the vehicle index.
    const uint64_t seed = fleet.backoff_seed != 0
                              ? fleet.backoff_seed
                              : static_cast<uint64_t>(vehicle_index_ + 2);
    const std::string label = vehicle_index_ >= 0
                                  ? "lgv-" + std::to_string(vehicle_index_)
                                  : plan_.name;
    failover_ = std::make_unique<PoolFailoverClient>(worker_pool_, standby_pool_,
                                                     seed, label, fleet.failover);
  }

  if (telemetry_config.enabled) {
    telemetry_ = std::make_unique<telemetry::Telemetry>(telemetry_config);
    telemetry_->set_clock(&clock_);
    graph_.set_telemetry(telemetry_.get());
    switcher_.set_telemetry(telemetry_.get());
    profiler_.set_telemetry(telemetry_.get());
    if (remote_pool_ != nullptr) {
      remote_pool_->set_telemetry(telemetry_.get(),
                                  platform::host_name(plan_.remote_host));
    }
  }

  if (plan_.multi_tier && plan_.offload) {
    // The three-tier world the engine prices: WLAN numbers seeded from the
    // channel config (uplink rate is bits/s on the wire, bytes/s in the
    // topology), refreshed live from the Profiler as the mission runs.
    HostTopology topo = HostTopology::three_tier(
        plan_.edge_threads, std::max(1, plan_.remote_threads),
        channel_config.uplink_rate_bps / 8.0,
        2.0 * channel_config.base_latency_s, /*wlan_loss=*/0.0, kWanRttS);
    placement_engine_ = std::make_unique<PlacementEngine>(
        make_pipeline_dag(), std::move(topo), plan_.placement);
    placement_engine_->set_telemetry(telemetry_.get());
  }
}

void OffloadRuntime::set_active_threads(int threads) {
  active_threads_ = std::clamp(threads, 1, std::max(1, plan_.remote_threads));
}

void OffloadRuntime::charge_cloud_time(double dt) {
  bool any_remote = false;
  for (const auto& [id, host] : placement_) {
    any_remote |= host != platform::Host::kLgv;
  }
  if (any_remote) {
    cloud_core_seconds_ += static_cast<double>(active_threads_) * dt;
  }
}

platform::Host OffloadRuntime::host_of(NodeId id) const { return placement_.at(id); }

void OffloadRuntime::place(NodeId id, platform::Host host) {
  placement_[id] = host;
  graph_.set_host(node_name(id), host);
}

OffloadDecision OffloadRuntime::apply_initial_placement() {
  OffloadDecision decision;
  double tl = 0.0;
  double tc = 0.0;
  if (!plan_.offload) {
    for (NodeId id : all_nodes()) decision.placement[id] = platform::Host::kLgv;
  } else {
    // T_l^v and T_c from the profiler when available, otherwise from the cost
    // models' first-principles prediction (no history yet at mission start).
    tl = profiler_.vdp_makespan(VdpPlacement::kLocal).value_or(1.0);
    tc = profiler_.vdp_makespan(VdpPlacement::kRemote)
             .value_or(0.1 + predicted_network_latency());
    decision = planner_.decide(traits_, tl, tc);
  }
  for (const auto& [id, host] : decision.placement) place(id, host);
  if (placement_engine_ != nullptr && plan_.offload) {
    // Multi-tier: Algorithm 1's two-host answer seeds (and lower-bounds) a
    // full engine solve over the three-tier topology.
    refresh_placement_model();
    const std::vector<NodeId> nodes = all_nodes();
    const HostTopology& topo = placement_engine_->topology();
    std::vector<uint8_t> seed(placement_engine_->dag().node_count(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) {
      const int idx = topo.index_of(decision.placement.at(nodes[i]));
      seed[i] = static_cast<uint8_t>(idx >= 0 ? idx : 0);
    }
    const PlacementResult r = placement_engine_->solve(seed);
    decision.vdp_offloaded =
        apply_engine_assignment(r.assignment.data(), r.assignment.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      decision.placement[nodes[i]] = placement_.at(nodes[i]);
    }
  }
  vdp_placement_ = decision.vdp_offloaded ? VdpPlacement::kRemote : VdpPlacement::kLocal;
  netctl_.force(vdp_placement_);
  if (telemetry_ != nullptr) {
    // Algorithm 1 marker: the Eq. 1–2 inputs and the resulting node map.
    telemetry::TraceArgs args = {
        {"goal", plan_.goal == Goal::kCompletionTime ? "completion_time" : "energy"},
        {"tl_s", std::to_string(tl)},
        {"tc_s", std::to_string(tc)},
        {"vdp", decision.vdp_offloaded ? "remote" : "local"}};
    for (const auto& [id, host] : decision.placement) {
      args.emplace_back(node_name(id), platform::host_name(host));
    }
    telemetry_->tracer().instant_now("alg1.initial_placement", "decisions",
                                     "algorithm1", std::move(args));
    telemetry_->metrics().counter("alg_decisions_total", {{"algorithm", "1"}}).inc();
  }
  return decision;
}

bool OffloadRuntime::set_vdp_placement(VdpPlacement placement) {
  if (placement == vdp_placement_) return false;
  vdp_placement_ = placement;
  if (telemetry_ != nullptr) {
    telemetry_->tracer().instant_now(
        "alg2.migration", "decisions", "algorithm2",
        {{"to", placement == VdpPlacement::kRemote ? "remote" : "local"}});
    telemetry_->metrics()
        .counter("alg2_migrations_total",
                 {{"to", placement == VdpPlacement::kRemote ? "remote" : "local"}})
        .inc();
  }
  if (placement_engine_ != nullptr) {
    // Multi-tier cooperation: a retreat pulls *every* node home (the engine
    // may have placed non-ECN nodes remote too); a re-offload restores the
    // engine's incumbent N-host plan instead of the binary all-to-remote
    // flip. Algorithm 2 keeps the when; the engine owns the where.
    if (placement == VdpPlacement::kLocal) {
      for (NodeId id : all_nodes()) {
        if (placement_.at(id) != platform::Host::kLgv) {
          place(id, platform::Host::kLgv);
        }
      }
    } else if (placement_engine_->has_incumbent()) {
      const PlacementCandidate& inc = placement_engine_->incumbent();
      apply_engine_assignment(inc.host.data(), inc.host.size());
    }
    return true;
  }
  for (NodeId id : all_nodes()) {
    const NodeClass cls = traits_.at(id).node_class();
    const bool offloadable =
        cls == NodeClass::kT3 || (plan_.goal == Goal::kEnergy && cls == NodeClass::kT1) ||
        (plan_.goal == Goal::kCompletionTime && cls == NodeClass::kT1);
    if (!offloadable) continue;
    // remote_host_, not the plan's: after a committed pool failover the
    // remote set lives on the standby's host until a failback.
    place(id, placement == VdpPlacement::kRemote ? remote_host_
                                                 : platform::Host::kLgv);
  }
  return true;
}

bool OffloadRuntime::apply_engine_assignment(const uint8_t* assignment, size_t n) {
  const HostTopology& topo = placement_engine_->topology();
  const std::vector<NodeId> nodes = all_nodes();
  bool vdp_remote = false;
  for (size_t i = 0; i < nodes.size() && i < n; ++i) {
    const platform::Host kind = topo.host(assignment[i]).kind;
    if (placement_.at(nodes[i]) != kind) place(nodes[i], kind);
    if (traits_.at(nodes[i]).node_class() == NodeClass::kT3 &&
        kind != platform::Host::kLgv) {
      vdp_remote = true;
    }
  }
  return vdp_remote;
}

void OffloadRuntime::refresh_placement_model() {
  if (placement_engine_ == nullptr) return;
  HostTopology& topo = placement_engine_->topology();
  const auto rtt = profiler_.rtt();
  if (!rtt.has_value()) return;  // no live evidence yet: keep the seed model
  // The measured RTT is vehicle ↔ serving host; peel the WAN leg off when the
  // datacenter is serving to recover the WLAN hop both paths share.
  const double wlan_rtt = std::max(
      1e-4, *rtt - (remote_host_ == platform::Host::kCloudServer ? kWanRttS : 0.0));
  // Receive-side stream rate (Algorithm 2's r_t) → offered bytes/s. A quiet
  // stream is absence of evidence: the link keeps its last bandwidth.
  const double stream_hz = profiler_.observe(clock_.now()).bandwidth_hz;
  const auto feed = [&](int a, int b, double rtt_s) {
    if (a < 0 || b < 0) return;
    const TopologyLink& l = topo.link(a, b);
    const double bw =
        stream_hz > 0.0 ? stream_hz * kStreamPayloadBytes : l.bandwidth_bps;
    topo.observe_link(a, b, bw, rtt_s, l.loss);
  };
  const int edge = topo.index_of(platform::Host::kEdgeGateway);
  const int cloud = topo.index_of(platform::Host::kCloudServer);
  feed(0, edge, wlan_rtt);
  feed(edge, 0, wlan_rtt);
  feed(0, cloud, wlan_rtt + kWanRttS);
  feed(cloud, 0, wlan_rtt + kWanRttS);
}

PlacementResult OffloadRuntime::reoptimize_placement(const char* trigger) {
  PlacementResult r;
  if (placement_engine_ == nullptr || !placement_engine_->has_incumbent()) return r;
  if (vdp_placement_ != VdpPlacement::kRemote) return r;  // Alg 2's retreat holds
  refresh_placement_model();
  r = placement_engine_->reoptimize();
  apply_engine_assignment(r.assignment.data(), r.assignment.size());
  if (telemetry_ != nullptr) {
    telemetry_->tracer().instant_now(
        "placement.retrigger", "decisions", "placement",
        {{"trigger", trigger},
         {"cost_s", std::to_string(r.cost_s)},
         {"improved", r.improved ? "true" : "false"}});
  }
  return r;
}

platform::ExecutionContext OffloadRuntime::make_context(NodeId id) {
  const platform::Host host = host_of(id);
  const bool parallel_kernels =
      id == NodeId::kPathTracking || id == NodeId::kLocalization;
  if (host != platform::Host::kLgv && parallel_kernels && active_threads_ > 1) {
    if (worker_pool_ != nullptr) {
      // Shared fleet worker: the kernel's chunks run on the serving pool's
      // real threads under this vehicle's session, fair-sharing against the
      // other tenants. Not admitted right now (busy, backoff window, breaker
      // open, failover snapshot in flight) → serial context; finish_guarded
      // will count the busy fallback.
      if (ensure_worker_session(clock_.now())) {
        return platform::ExecutionContext(&active_pool_->threads(), active_threads_,
                                          worker_session_);
      }
      return platform::ExecutionContext(nullptr, 1);
    }
    if (remote_pool_ != nullptr) {
      return platform::ExecutionContext(remote_pool_.get(), active_threads_);
    }
  }
  return platform::ExecutionContext(nullptr, 1);
}

WorkerPool* OffloadRuntime::pool_at(int index) const {
  return index == 1 ? standby_pool_ : worker_pool_;
}

void OffloadRuntime::complete_failover(int target, double now) {
  // The snapshot round-tripped its commit record and has now fully landed:
  // the target pool's host provably holds this vehicle's exact state, so
  // remote execution there is crash-consistent from here on.
  failover_->migration_committed(target);
  ++pool_failovers_;
  if (snapshot_committed_fn_) snapshot_committed_fn_();
  remote_host_ = target == 1 ? standby_host_ : plan_.remote_host;
  for (const auto& [id, host] : placement_) {
    if (host != platform::Host::kLgv && host != remote_host_) {
      place(id, remote_host_);
    }
  }
  failover_target_ = -1;
  failover_ready_at_ = -1.0;
  if (vdp_placement_ == VdpPlacement::kLocal) {
    // The crash drove Algorithm 2 local, and the remote makespan it would
    // consult was measured against the dead pool — stale evidence that would
    // veto the healthy standby indefinitely. Drop it, and re-arm remote
    // directly: the committed snapshot IS the state migration, so flipping
    // here is crash-consistent without another transfer.
    profiler_.reset_vdp_makespan(VdpPlacement::kRemote);
    netctl_.force(VdpPlacement::kRemote);
    set_vdp_placement(VdpPlacement::kRemote);
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics()
        .counter("pool_failovers_total", {{"outcome", "committed"}})
        .inc();
    telemetry_->tracer().instant_now(
        "pool.failover", "decisions", "failover",
        {{"to", target == 1 ? "standby" : "primary"},
         {"host", platform::host_name(remote_host_)},
         {"at", std::to_string(now)}});
    // First failover of the run snapshots the flight recorder: the events
    // leading up to the primary loss are the post-mortem.
    telemetry_->dump_flight("pool_failover");
  }
}

bool OffloadRuntime::ensure_worker_session(double now) {
  if (worker_pool_ == nullptr) return false;
  const PoolFailoverClient::Acquire acq = failover_->acquire(now);
  if (acq.pool == nullptr) {
    // "backoff"/"breaker" refusals blame the pool whose failures opened the
    // window; an "admission" refusal blames the pool that just said no.
    attempted_pool_ =
        pool_at(acq.pool_index >= 0 ? acq.pool_index : failover_->active_index());
    last_refusal_cause_ = acq.blocked;
    return false;
  }
  if (acq.needs_migration) {
    // Crash-consistent re-admission (the PR 4 commit discipline, one pool
    // up): before any kernel runs on the new pool, its host must hold a
    // complete, verified state image. The snapshot rides the same chunked
    // CRC+commit transfer as Algorithm 2's migrations, in "failover" mode.
    if (failover_target_ != acq.pool_index) {
      const double bytes =
          snapshot_bytes_fn_ ? snapshot_bytes_fn_() : 16.0 * 1024.0;
      const MigrationResult mig =
          switcher_.migrate_state(bytes, /*uplink=*/true, "failover");
      if (!mig.committed) {
        // Torn transfer: committed pool and delta base unchanged; the target
        // takes a breaker failure and the backoff paces the retry.
        ++failovers_aborted_;
        failover_->migration_aborted(now);
        if (telemetry_ != nullptr) {
          telemetry_->metrics()
              .counter("pool_failovers_total", {{"outcome", "aborted"}})
              .inc();
          telemetry_->tracer().instant_now(
              "pool.failover_abort", "decisions", "failover",
              {{"attempts", std::to_string(mig.attempts)}});
        }
        attempted_pool_ = acq.pool;
        last_refusal_cause_ = "migrating";
        return false;
      }
      failover_target_ = acq.pool_index;
      failover_ready_at_ = mig.completion;
    }
    if (now < failover_ready_at_) {
      // Transfer still in flight: the vehicle keeps executing locally until
      // the committed image lands — never remote against a partial set.
      attempted_pool_ = acq.pool;
      last_refusal_cause_ = "migrating";
      return false;
    }
    complete_failover(acq.pool_index, now);
  } else if (acq.pool_index == failover_->committed_index()) {
    // Serving the committed pool again (e.g. the primary recovered before
    // the standby snapshot landed): abandon the stale pending failover so a
    // later pool loss starts a fresh transfer instead of reusing this one.
    failover_target_ = -1;
    failover_ready_at_ = -1.0;
  }
  active_pool_ = acq.pool;
  worker_session_ = acq.session;
  return true;
}

void OffloadRuntime::step_failover(double now) {
  if (worker_pool_ == nullptr) return;
  // Only probe when the failure plane is actually in play: a pending
  // snapshot transfer, an open breaker on the committed pool, or a busy
  // streak pacing retries. A healthy, idle runtime skips the acquire so the
  // backoff/lease cadence stays identical to a purely execution-driven run.
  const bool pending = failover_target_ >= 0;
  const bool committed_down =
      failover_->breaker_open(failover_->committed_index(), now);
  if (!pending && !committed_down && failover_->busy_streak() == 0) return;
  (void)ensure_worker_session(now);
}

double OffloadRuntime::finish(NodeId id, platform::ExecutionContext& ctx) {
  const platform::Host host = host_of(id);
  const platform::CostModel& model = cost_models_.at(host);
  const double t = model.execution_time(ctx.profile());
  meter_.charge(node_name(id), ctx.profile().total_cycles());
  if (host == platform::Host::kLgv) {
    energy_.add_computer_energy(model.dynamic_energy(ctx.profile()));
  }
  profiler_.record_node_time(id, host, t);
  if (telemetry_ != nullptr) {
    // Per-node execution lane: the span starts now and runs for the
    // cost-model execution time; a migration shows as the node's lane
    // jumping to another host group in the trace.
    const char* host_lane = platform::host_name(host);
    const char* node = node_name(id);
    telemetry::Tracer& tracer = telemetry_->tracer();
    const uint32_t span_id = tracer.span(
        node, host_lane, node, clock_.now(), t,
        {{"cycles", std::to_string(ctx.profile().total_cycles())},
         {"threads", std::to_string(ctx.threads())}});
    // Downstream work (the deferred result publish and whatever it causes)
    // parents under this node's execution span.
    if (span_id != 0) {
      tracer.set_current(telemetry::TraceContext{tracer.current().trace_id, span_id});
    }
    const telemetry::Labels labels = {{"node", node}, {"host", host_lane}};
    auto& m = telemetry_->metrics();
    m.counter("node_invocations_total", labels).inc();
    m.histogram("node_exec_seconds", labels).observe(t);
  }
  return t;
}

OffloadRuntime::ExecutionOutcome OffloadRuntime::busy_fallback(
    NodeId id, platform::ExecutionContext& ctx, const char* cause,
    WorkerPool* pool) {
  ++fallback_count_;
  ++busy_fallback_count_;
  // Mirror the per-vehicle increment on the pool that refused, so
  // Σ busy_fallback_count over the fleet == Σ busy_fallbacks over the pools
  // (the accounting invariant FleetTest pins).
  if (pool != nullptr) pool->note_busy_fallback();
  const platform::CostModel& local_model = cost_models_.at(platform::Host::kLgv);
  const double t_local = local_model.execution_time(ctx.profile());
  meter_.charge(node_name(id), ctx.profile().total_cycles());
  energy_.add_computer_energy(local_model.dynamic_energy(ctx.profile()));
  profiler_.record_node_time(id, platform::Host::kLgv, t_local);
  const char* node = node_name(id);
  if (telemetry_ != nullptr) {
    auto& m = telemetry_->metrics();
    m.counter("fallback_total", {{"node", node}}).inc();
    m.counter("worker_busy_fallback_total", {{"cause", cause}}).inc();
    const uint32_t fb_span = telemetry_->tracer().span(
        node, platform::host_name(platform::Host::kLgv), node, clock_.now(), t_local,
        {{"outcome", "fallback"}, {"cause", cause}});
    if (fb_span != 0) {
      telemetry_->tracer().set_current(
          telemetry::TraceContext{telemetry_->tracer().current().trace_id, fb_span});
    }
    const telemetry::Labels labels = {
        {"node", node}, {"host", platform::host_name(platform::Host::kLgv)}};
    m.counter("node_invocations_total", labels).inc();
    m.histogram("node_exec_seconds", labels).observe(t_local);
  }
  // Unlike a lease expiry, the placement is left alone: "busy" is a
  // retryable refusal, so the next execution tries the worker again —
  // overload shows up as a fallback *rate*, not a permanent retreat.
  return {t_local, true};
}

OffloadRuntime::ExecutionOutcome OffloadRuntime::finish_guarded(
    NodeId id, platform::ExecutionContext& ctx) {
  const platform::Host host = host_of(id);
  if (host == platform::Host::kLgv ||
      (fault_injector_ == nullptr && worker_pool_ == nullptr)) {
    return {finish(id, ctx), false};
  }

  const double now = clock_.now();
  const double t_remote = cost_models_.at(host).execution_time(ctx.profile());

  // When does the remote result actually become usable? On a shared fleet
  // worker the request first waits its turn in the fair-share schedule (or
  // bounces with "busy" under backpressure); worker stall/crash windows then
  // push the computation out; a forced link outage finally blocks the
  // result's return until the link is restored.
  double completion = now + t_remote;
  bool crashed = false;
  bool pool_lost = false;
  if (worker_pool_ != nullptr) {
    if (!ensure_worker_session(now)) {
      return busy_fallback(id, ctx, last_refusal_cause_, attempted_pool_);
    }
    const KernelKind kind = id == NodeId::kLocalization ? KernelKind::kScanMatch
                            : id == NodeId::kPathTracking
                                ? KernelKind::kScoreTrajectory
                                : KernelKind::kGeneric;
    const WorkerVerdict v = active_pool_->execute(worker_session_, kind, now, t_remote,
                                                  std::max(1, active_threads_));
    if (v.busy) {
      // Jittered exponential backoff instead of "retry next tick": the
      // refusal opens this vehicle's backoff window and counts toward the
      // serving pool's breaker, so 128 bounced vehicles desynchronize.
      failover_->on_busy(now);
      return busy_fallback(id, ctx, v.busy_cause != nullptr ? v.busy_cause : "worker_busy",
                           active_pool_);
    }
    completion = v.completion;
    if (active_pool_->result_lost_in(now, completion)) {
      // The pool crashed under the in-flight request: the result died with
      // it. The lease-expiry path below re-executes locally, and the loss
      // counts toward the breaker so the next acquires route to the standby.
      pool_lost = true;
      failover_->on_pool_loss(now);
    } else {
      failover_->on_served();
    }
  }
  if (fault_injector_ != nullptr) {
    completion = fault_injector_->remote_completion(now, completion - now);
    completion = fault_injector_->link_restored_after(completion);
    crashed = fault_injector_->worker_crashed_in(now, completion);
  }

  if (!lease_fallback_) {
    // No lease protocol: the caller naively waits for the remote result no
    // matter how long the stall or outage holds it — the paper's stranded
    // LGV, and the bench's no-fallback ablation.
    const double t = finish(id, ctx);
    return {std::max(t, completion - now), false};
  }

  // Lease: profiled T_c for this node on this host plus RTT headroom for the
  // return trip. A first execution has no profiled sample — the cost-model
  // prediction seeds T_c and the *cold-start* floor applies, so estimate
  // error plus one slow-link round trip can't trigger a spurious expiry
  // before any history exists.
  const auto profiled_tc = profiler_.node_time(id, host);
  const double tc = profiled_tc.value_or(t_remote);
  const double rtt = profiler_.rtt().value_or(2.0 * predicted_network_latency());
  const double lease =
      controller_.lease_timeout(tc, rtt, /*cold_start=*/!profiled_tc.has_value());
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("lease_grants_total").inc();
  }

  if (!crashed && !pool_lost && completion - now <= lease) {
    // Result lands inside the lease; the normal bookkeeping applies, with
    // any stall/outage delay visible as extra pipeline latency.
    const double t = finish(id, ctx);
    return {std::max(t, completion - now), false};
  }

  // Lease expired (stalled worker, dead link, or crash — the heartbeats ride
  // the same deadline): abandon the remote execution and re-run the node on
  // the LGV. The remote attempt is not profiled (it never completed) and the
  // crash's state loss means the next re-offload pays a full migration.
  ++fallback_count_;
  const platform::CostModel& local_model = cost_models_.at(platform::Host::kLgv);
  const double t_local = local_model.execution_time(ctx.profile());
  meter_.charge(node_name(id), ctx.profile().total_cycles());
  energy_.add_computer_energy(local_model.dynamic_energy(ctx.profile()));
  profiler_.record_node_time(id, platform::Host::kLgv, t_local);

  const char* node = node_name(id);
  if (telemetry_ != nullptr) {
    auto& m = telemetry_->metrics();
    m.counter("fallback_total", {{"node", node}}).inc();
    m.counter("lease_expired_total",
              {{"cause", crashed      ? "worker_crash"
                         : pool_lost ? "pool_crash"
                                     : "lease_timeout"}})
        .inc();
    // The wasted remote wait, then the local re-execution, as spans: the
    // trace shows the node's lane hop back to the LGV group at the fallback.
    telemetry::Tracer& tracer = telemetry_->tracer();
    tracer.span(node, platform::host_name(host), node, now, lease,
                {{"outcome", "lease_expired"}});
    const uint32_t fb_span = tracer.span(node, platform::host_name(platform::Host::kLgv),
                                         node, now + lease, t_local,
                                         {{"outcome", "fallback"}});
    if (fb_span != 0) {
      tracer.set_current(telemetry::TraceContext{tracer.current().trace_id, fb_span});
    }
    // First lease expiry of the run snapshots the flight recorder for the
    // post-mortem (repeat triggers are no-ops).
    telemetry_->dump_flight("lease_expiry");
    telemetry_->tracer().instant_now(
        "alg2.fallback", "decisions", "algorithm2",
        {{"node", node},
         {"lease_s", std::to_string(lease)},
         {"cause", crashed      ? "worker_crash"
                   : pool_lost ? "pool_crash"
                               : "lease_timeout"}});
    const telemetry::Labels labels = {
        {"node", node}, {"host", platform::host_name(platform::Host::kLgv)}};
    m.counter("node_invocations_total", labels).inc();
    m.histogram("node_exec_seconds", labels).observe(t_local);
  }

  // Pull the whole VDP home and pin Algorithm 2 local; its normal
  // bandwidth/direction rule takes over again from the local placement once
  // the stream recovers, re-offloading (with a fresh state migration) only
  // when the link has genuinely healed. Exception: a pool loss with a standby
  // configured is NOT a network problem — the link is fine, only the serving
  // pool died — so the placement stays remote and the next executions route
  // through the breaker to the standby (failover), instead of waiting for the
  // bandwidth/direction rule to dare offloading again.
  if (!(pool_lost && standby_pool_ != nullptr)) {
    network_controller().force(VdpPlacement::kLocal);
    set_vdp_placement(VdpPlacement::kLocal);
  }

  // The failure is only *observed* at the lease deadline; the local
  // re-execution starts then.
  return {lease + t_local, true};
}

const platform::CostModel& OffloadRuntime::cost_model(platform::Host host) const {
  return cost_models_.at(host);
}

double OffloadRuntime::predicted_network_latency() {
  // One scan up + one velocity command down.
  return channel_.sample_latency(3000) + channel_.sample_latency(64);
}

}  // namespace lgv::core
