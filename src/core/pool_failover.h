// Vehicle-side fault tolerance for the shared WorkerPool (PR 9): when the
// fleet's primary pool crashes, partitions, or drains, each vehicle must
// (a) stop hammering the dead pool, (b) desynchronize its retries from the
// other 127 bounced vehicles, and (c) re-admit against the standby pool —
// crash-consistently, with a committed state snapshot — instead of running
// local forever. PoolFailoverClient packages that policy: deterministic
// jittered exponential backoff drawn from the vehicle's splitmix64 stream,
// a per-pool circuit breaker, and a primary/standby selection protocol whose
// pool switches demand an explicit migration commit before remote execution
// resumes (the PR 4 "never a torn particle set" discipline, one level up).
//
// The client is pure policy over virtual time: it owns no threads and no
// clock, so OffloadRuntime drives it from finish_guarded and the fleet
// benches drive it directly from their tick loops — same behavior, bit-for-
// bit, in both places.
#pragma once

#include <cstdint>
#include <string>

#include "core/worker_pool.h"

namespace lgv::core {

/// Deterministic jittered exponential backoff for busy-verdict retries.
/// `stream` seeds the vehicle's splitmix64 jitter stream (derive it from
/// vehicle_seed(fleet_seed, index) so no two vehicles share a schedule);
/// `attempt` counts consecutive refusals (1 = first). The delay is
///   min(base · 2^(attempt-1), cap) · (0.75 + 0.5·u),  u = U[0,1)
/// with u drawn from splitmix64(stream + attempt) — a pure function of
/// (stream, attempt), so a replay reproduces the exact retry schedule while
/// 128 bounced vehicles spread across a ±25 % band instead of re-submitting
/// in lockstep (the retry-storm acceptance test).
double busy_backoff_delay(uint64_t stream, uint32_t attempt, double base_s,
                          double cap_s);

struct FailoverConfig {
  double backoff_base_s = 0.05;  ///< first-retry nominal delay
  double backoff_cap_s = 2.0;    ///< exponential growth saturates here
  /// Consecutive failures against one pool before its circuit breaker opens
  /// (admission refusals, busy verdicts, lost in-flight results all count).
  int breaker_threshold = 3;
  double breaker_open_s = 1.0;      ///< first open interval
  double breaker_open_max_s = 8.0;  ///< interval doubles per reopen, capped here
};

/// Per-vehicle failover policy over a primary pool and an optional standby.
/// All times are virtual seconds from the caller's clock.
class PoolFailoverClient {
 public:
  /// `standby` may be nullptr (no failover target — backoff and breaker
  /// still apply to the primary). `label` names the vehicle's sessions.
  PoolFailoverClient(WorkerPool* primary, WorkerPool* standby, uint64_t seed,
                     std::string label, FailoverConfig config = {});

  /// Outcome of acquire(): either a pool + live session to submit against,
  /// or the reason the vehicle must run locally this time.
  struct Acquire {
    WorkerPool* pool = nullptr;
    SessionId session = 0;
    int pool_index = -1;  ///< 0 = primary, 1 = standby
    /// The selected pool differs from the one holding the last committed
    /// state snapshot: the caller must commit a migrate_state transfer
    /// (then migration_committed()) before executing remotely — a torn or
    /// missing snapshot never runs.
    bool needs_migration = false;
    /// Refusal cause when pool == nullptr: "backoff" (jittered retry window
    /// still open), "breaker" (every configured pool's breaker is open) or
    /// "admission" (the chosen pool refused the session).
    const char* blocked = nullptr;
  };

  /// Pick the pool to use at `now`: primary preferred, open breakers
  /// skipped, the backoff window respected, and a live session ensured on
  /// the winner (re-admitting with a fresh session id after any eviction).
  /// An admission refusal counts against that pool's breaker and bumps the
  /// backoff, so a dead pool is probed at the jittered-exponential cadence
  /// — never once per tick.
  Acquire acquire(double now);

  /// A busy verdict from the pool acquire() returned: counts toward its
  /// breaker and opens the next backoff window.
  void on_busy(double now);
  /// A remote result landed: reset the backoff streak and the active pool's
  /// breaker (half-open probe succeeded → breaker closes, interval resets).
  void on_served();
  /// An in-flight result was lost (pool crashed under it): like on_busy but
  /// named separately because the caller also pays the lease-expiry path.
  void on_pool_loss(double now);

  /// The failover snapshot committed on pool `pool_index`; remote execution
  /// there is crash-consistent from now on.
  void migration_committed(int pool_index);
  /// The failover snapshot aborted (torn transfer): the target pool takes a
  /// breaker failure, the backoff window opens, and the committed pool is
  /// unchanged — the vehicle keeps running local until a later attempt lands.
  void migration_aborted(double now);

  int active_index() const { return active_; }
  /// Pool holding the last committed state snapshot (0 initially: the
  /// primary is where Algorithm 2's own migration path ships state).
  int committed_index() const { return committed_; }
  /// Committed pool switches so far (primary→standby or back).
  uint64_t failovers() const { return failovers_; }
  uint64_t breaker_opens() const { return breaker_opens_; }
  bool breaker_open(int pool_index, double now) const;
  double retry_at() const { return retry_at_; }
  uint32_t busy_streak() const { return busy_streak_; }
  SessionId session(int pool_index) const;
  const FailoverConfig& config() const { return config_; }

 private:
  struct Breaker {
    int failures = 0;
    double open_until = 0.0;
    double open_s = 0.0;  ///< next open interval (doubles per reopen)
    uint64_t opens = 0;
  };
  struct Target {
    WorkerPool* pool = nullptr;
    SessionId session = 0;
    Breaker breaker;
  };

  void record_failure(int idx, double now);
  void bump_backoff(double now);

  Target targets_[2];
  std::string label_;
  FailoverConfig config_;
  uint64_t stream_;  ///< splitmix64 jitter stream seed
  int active_ = 0;
  int committed_ = 0;
  uint32_t busy_streak_ = 0;
  double retry_at_ = 0.0;
  uint64_t failovers_ = 0;
  uint64_t breaker_opens_ = 0;
};

}  // namespace lgv::core
