#include "core/placement_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/rng.h"
#include "common/telemetry/telemetry.h"

namespace lgv::core {

namespace {

/// Cost assigned to assignments that violate a pin or route over a dead
/// link: large enough that any feasible plan beats any infeasible one, small
/// enough that the gap between two infeasible plans still guides the search.
constexpr double kUnplaceable = 1e6;

/// Modeled cycle prices of the evaluator itself (charged to the vehicle's
/// cost model so a solve has a deterministic virtual cost — the < 10 ms
/// adjustment-epoch budget). Calibrated from the bench's measured ns/eval on
/// commodity x86 scaled to the RPi's IPC.
constexpr double kCyclesPerDeltaEval = 220.0;
constexpr double kCyclesPerFullEvalUnit = 25.0;  ///< per (node + edge + link)

/// Counter-based uniform draw: pure function of (stream, counter), so a
/// candidate's update sequence replays bit-identically on any worker.
double draw01(uint64_t stream, uint64_t& counter) {
  const uint64_t bits = splitmix64(stream + ++counter);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

uint32_t draw_index(uint64_t stream, uint64_t& counter, uint32_t n) {
  return static_cast<uint32_t>(draw01(stream, counter) * n) % n;
}

}  // namespace

// ---------------------------------------------------------------------------
// PlacementDag

int PlacementDag::add_node(std::string name, double serial, double parallel,
                           uint8_t pin) {
  names.push_back(std::move(name));
  serial_cycles.push_back(serial);
  parallel_cycles.push_back(parallel);
  pinned.push_back(pin);
  ++generation_;
  return static_cast<int>(serial_cycles.size()) - 1;
}

void PlacementDag::add_edge(int src, int dst, double bytes, double rate_hz) {
  edges.push_back(Edge{static_cast<uint32_t>(src), static_cast<uint32_t>(dst),
                       bytes, rate_hz});
  ++generation_;
}

// ---------------------------------------------------------------------------
// PlacementEngine

PlacementEngine::PlacementEngine(PlacementDag dag, HostTopology topology,
                                 PlacementEngineConfig config)
    : dag_(std::move(dag)), topology_(std::move(topology)), config_(config) {
  assert(topology_.host_count() > 0 && topology_.host_count() <= 255);
  build_adjacency();
  refresh_tables();
}

void PlacementEngine::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr || !telemetry_->enabled()) {
    telemetry_ = nullptr;
    solves_counter_ = nullptr;
    delta_evals_counter_ = nullptr;
    return;
  }
  auto& m = telemetry_->metrics();
  solves_counter_ = &m.counter("placement_solves_total");
  delta_evals_counter_ = &m.counter("placement_delta_evals_total");
}

void PlacementEngine::build_adjacency() {
  const size_t n = dag_.node_count();
  const size_t hh = static_cast<size_t>(hosts()) * static_cast<size_t>(hosts());
  std::vector<uint32_t> out_degree(n, 0);
  std::vector<uint32_t> in_degree(n, 0);
  for (const PlacementDag::Edge& e : dag_.edges) {
    ++out_degree[e.src];
    ++in_degree[e.dst];
  }
  adj_out_offsets_.assign(n + 1, 0);
  adj_in_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    adj_out_offsets_[i + 1] = adj_out_offsets_[i] + out_degree[i];
    adj_in_offsets_[i + 1] = adj_in_offsets_[i] + in_degree[i];
  }
  adj_out_.resize(adj_out_offsets_[n]);
  adj_in_.resize(adj_in_offsets_[n]);
  std::vector<uint32_t> out_fill(adj_out_offsets_.begin(), adj_out_offsets_.end() - 1);
  std::vector<uint32_t> in_fill(adj_in_offsets_.begin(), adj_in_offsets_.end() - 1);
  for (uint32_t e = 0; e < dag_.edges.size(); ++e) {
    const PlacementDag::Edge& edge = dag_.edges[e];
    const AdjEdge entry{e * hh, 0, edge.bytes * edge.rate_hz};
    adj_out_[out_fill[edge.src]] = entry;
    adj_out_[out_fill[edge.src]++].other = edge.dst;
    adj_in_[in_fill[edge.dst]] = entry;
    adj_in_[in_fill[edge.dst]++].other = edge.src;
  }
}

bool PlacementEngine::refresh_tables() {
  if (table_rebuilds_ > 0 && built_dag_generation_ == dag_.generation() &&
      built_topology_generation_ == topology_.generation()) {
    return false;
  }
  const size_t n = dag_.node_count();
  const size_t h = static_cast<size_t>(hosts());

  compute_table_.assign(n * h, 0.0);
  for (size_t node = 0; node < n; ++node) {
    for (size_t host = 0; host < h; ++host) {
      if (dag_.pinned[node] != PlacementDag::kFreeHost &&
          dag_.pinned[node] != host) {
        compute_table_[node * h + host] = kUnplaceable;
        continue;
      }
      const platform::PlatformSpec& spec = topology_.cost_model(
          static_cast<int>(host)).spec();
      const int threads = std::max(1, topology_.host(static_cast<int>(host)).threads);
      const double ops = spec.single_thread_ops_per_sec();
      double t = dag_.serial_cycles[node] / ops;
      if (dag_.parallel_cycles[node] > 0.0) {
        t += dag_.parallel_cycles[node] / (ops * spec.parallel_throughput(threads)) +
             spec.dispatch_overhead_s * threads;
      }
      compute_table_[node * h + host] = t;
    }
  }

  edge_table_.assign(dag_.edges.size() * h * h * 2, 0.0);
  sum_table_.assign(dag_.edges.size() * h * h, 0.0);
  inv_capacity_.assign(h * h, 0.0);
  for (size_t s = 0; s < h; ++s) {
    for (size_t d = 0; d < h; ++d) {
      const TopologyLink& l = topology_.link(static_cast<int>(s), static_cast<int>(d));
      inv_capacity_[s * h + d] =
          (s == d || std::isinf(l.bandwidth_bps) || l.bandwidth_bps <= 0.0)
              ? 0.0
              : 1.0 / l.bandwidth_bps;
    }
  }
  for (uint32_t e = 0; e < dag_.edges.size(); ++e) {
    const PlacementDag::Edge& edge = dag_.edges[e];
    for (size_t s = 0; s < h; ++s) {
      for (size_t d = 0; d < h; ++d) {
        const size_t sum_idx = (static_cast<size_t>(e) * h + s) * h + d;
        const size_t idx = sum_idx * 2;
        if (s == d) continue;  // co-located: free, no penalty
        const TopologyLink& l =
            topology_.link(static_cast<int>(s), static_cast<int>(d));
        if (!(l.bandwidth_bps > 0.0)) {
          edge_table_[idx] = kUnplaceable;
          sum_table_[sum_idx] = kUnplaceable;
          continue;
        }
        // One-way serialization + half the RTT, inflated by expected
        // retransmissions on a lossy link.
        const double loss_factor = 1.0 / std::max(1e-3, 1.0 - l.loss);
        edge_table_[idx] =
            (edge.bytes / l.bandwidth_bps) * loss_factor + 0.5 * l.rtt_s;
        const double excess = l.rtt_s - config_.rtt_threshold_s;
        if (excess > 0.0) {
          edge_table_[idx + 1] = config_.rtt_penalty_weight * excess;
        }
        sum_table_[sum_idx] = edge_table_[idx] + edge_table_[idx + 1];
      }
    }
  }

  built_dag_generation_ = dag_.generation();
  built_topology_generation_ = topology_.generation();
  ++table_rebuilds_;
  return true;
}

double PlacementEngine::link_penalty(size_t link, double load_bps) const {
  const double util = load_bps * inv_capacity_[link];
  return util > 1.0 ? config_.capacity_penalty_s * (util - 1.0) : 0.0;
}

void PlacementEngine::price(PlacementCandidate& c) const {
  const size_t n = dag_.node_count();
  const size_t h = static_cast<size_t>(hosts());
  assert(c.host.size() == n);
  c.link_load_bps.assign(h * h, 0.0);
  c.link_penalty_s.assign(h * h, 0.0);
  c.compute_s = 0.0;
  c.transfer_s = 0.0;
  c.rtt_penalty_s = 0.0;
  c.capacity_penalty_s = 0.0;
  for (size_t node = 0; node < n; ++node) {
    c.compute_s += compute_table_[node * h + c.host[node]];
  }
  for (uint32_t e = 0; e < dag_.edges.size(); ++e) {
    const PlacementDag::Edge& edge = dag_.edges[e];
    const uint8_t s = c.host[edge.src];
    const uint8_t d = c.host[edge.dst];
    const double* cost = edge_cost(e, s, d);
    c.transfer_s += cost[0];
    c.rtt_penalty_s += cost[1];
    // Self links carry no penalty; keeping them out of the load books keeps
    // the candidate's caches byte-identical with compute_move's updates.
    if (s != d) c.link_load_bps[link_index(s, d)] += edge.bytes * edge.rate_hz;
  }
  for (size_t l = 0; l < h * h; ++l) {
    c.link_penalty_s[l] = link_penalty(l, c.link_load_bps[l]);
    c.capacity_penalty_s += c.link_penalty_s[l];
  }
}

PlacementCandidate PlacementEngine::make_candidate(
    const std::vector<uint8_t>& assignment) {
  refresh_tables();
  PlacementCandidate c;
  c.host.assign(assignment.begin(), assignment.end());
  price(c);
  return c;
}

double PlacementEngine::full_cost(const std::vector<uint8_t>& assignment) {
  refresh_tables();
  static thread_local PlacementCandidate scratch;
  scratch.host.assign(assignment.begin(), assignment.end());
  price(scratch);
  return scratch.cost();
}

namespace {
/// Per-thread move-kernel scratch (255 hosts max). POD with static
/// initialization — no thread-safe init guard on the hot path.
struct MoveScratch {
  double lanes[2 * 256];  ///< per-host load lanes (out, in)
};
thread_local MoveScratch g_move_scratch;
}  // namespace

template <bool kCollect, size_t kH>
PlacementEngine::MoveDelta PlacementEngine::move_impl(
    const PlacementCandidate& c, int node, uint8_t to,
    std::vector<std::pair<size_t, double>>* affected) const {
  MoveDelta delta;
  if (kCollect) affected->clear();
  const uint8_t from = c.host[static_cast<size_t>(node)];
  if (from == to) return delta;
  const size_t h = kH != 0 ? kH : static_cast<size_t>(hosts());
  delta.d_compute = compute_table_[static_cast<size_t>(node) * h + to] -
                    compute_table_[static_cast<size_t>(node) * h + from];

  // Every link a move touches has `from` or `to` as one endpoint, and the
  // load a produced edge takes off link (from → o) is exactly the load it
  // puts on (to → o) — so two dense per-host lanes suffice: out_[o] is the
  // load shifting (from → o) ⇒ (to → o), in_[o] the load shifting (o →
  // from) ⇒ (o → to). No dedup scan; self entries are dead lanes the
  // penalty pass skips.
  // Fixed-count zeroing for realistic host counts: unrolls to a few wide
  // stores instead of a libc memset call of runtime length.
  MoveScratch& scratch = g_move_scratch;
  if (kH != 0) {
    for (size_t i = 0; i < 2 * kH; ++i) scratch.lanes[i] = 0.0;
  } else if (h <= 8) {
    for (size_t i = 0; i < 16; ++i) scratch.lanes[i] = 0.0;
  } else {
    std::memset(scratch.lanes, 0, 2 * h * sizeof(double));
  }
  double* out_ = scratch.lanes;
  double* in_ = scratch.lanes + h;

  const size_t from_off = static_cast<size_t>(from) * h;
  const size_t to_off = static_cast<size_t>(to) * h;
  const uint8_t* host = c.host.data();
  double d_transfer = 0.0;
  double d_rtt = 0.0;

  // Edge legs: table rows (from, other) → (to, other) for produced edges,
  // (other, from) → (other, to) for consumed ones. The preview path reads
  // the precombined sum table (one load per endpoint, half the footprint);
  // the apply path needs the transfer/rtt split to maintain the candidate's
  // per-term caches, so it reads the interleaved table.
  const AdjEdge* out = adj_out_.data();
  for (uint32_t a = adj_out_offsets_[static_cast<size_t>(node)],
                end = adj_out_offsets_[static_cast<size_t>(node) + 1];
       a < end; ++a) {
    const AdjEdge& ref = out[a];
    const size_t other = host[ref.other];
    if constexpr (kCollect) {
      const double* old_cost = &edge_table_[(ref.table_base + from_off + other) * 2];
      const double* new_cost = &edge_table_[(ref.table_base + to_off + other) * 2];
      d_transfer += new_cost[0] - old_cost[0];
      d_rtt += new_cost[1] - old_cost[1];
    } else {
      d_transfer += sum_table_[ref.table_base + to_off + other] -
                    sum_table_[ref.table_base + from_off + other];
    }
    out_[other] += ref.load_bps;
  }
  const AdjEdge* in = adj_in_.data();
  for (uint32_t a = adj_in_offsets_[static_cast<size_t>(node)],
                end = adj_in_offsets_[static_cast<size_t>(node) + 1];
       a < end; ++a) {
    const AdjEdge& ref = in[a];
    const size_t other = host[ref.other];
    const size_t other_off = other * h;
    if constexpr (kCollect) {
      const double* old_cost = &edge_table_[(ref.table_base + other_off + from) * 2];
      const double* new_cost = &edge_table_[(ref.table_base + other_off + to) * 2];
      d_transfer += new_cost[0] - old_cost[0];
      d_rtt += new_cost[1] - old_cost[1];
    } else {
      d_transfer += sum_table_[ref.table_base + other_off + to] -
                    sum_table_[ref.table_base + other_off + from];
    }
    in_[other] += ref.load_bps;
  }
  delta.d_transfer = d_transfer;
  delta.d_rtt_penalty = d_rtt;

  // Affected links: every one has `from` or `to` as an endpoint; the (from,
  // to) and (to, from) links appear in two lanes each and are merged up
  // front; self links never enter the books (their penalty is identically
  // zero). No zero-delta filtering: a Δ of 0.0 yields a penalty contribution
  // of exactly 0.0 (same multiply-by-inverse form as link_penalty()), so
  // every visit runs unconditionally and `max` keeps the pass branch-free.
  const double* load_bps = c.link_load_bps.data();
  const double* pen_s = c.link_penalty_s.data();
  const double* invc = inv_capacity_.data();
  const double cap_w = config_.capacity_penalty_s;
  double d_capacity = 0.0;
  auto visit = [&](size_t link, double d) {
    const double util = (load_bps[link] + d) * invc[link];
    d_capacity += cap_w * std::max(util - 1.0, 0.0) - pen_s[link];
    if (kCollect) affected->emplace_back(link, d);
  };
  visit(from_off + to, in_[from] - out_[to]);
  visit(to_off + from, out_[from] - in_[to]);
  for (size_t o = 0; o < h; ++o) {
    if (o == from || o == to) continue;
    const double out_d = out_[o];
    const double in_d = in_[o];
    visit(from_off + o, -out_d);
    visit(to_off + o, out_d);
    visit(o * h + from, -in_d);
    visit(o * h + to, in_d);
  }
  delta.d_capacity_penalty = d_capacity;
  return delta;
}

template <bool kCollect>
PlacementEngine::MoveDelta PlacementEngine::move_dispatch(
    const PlacementCandidate& c, int node, uint8_t to,
    std::vector<std::pair<size_t, double>>* affected) const {
  switch (hosts()) {
    case 2: return move_impl<kCollect, 2>(c, node, to, affected);
    case 3: return move_impl<kCollect, 3>(c, node, to, affected);
    case 4: return move_impl<kCollect, 4>(c, node, to, affected);
    default: return move_impl<kCollect, 0>(c, node, to, affected);
  }
}

PlacementEngine::MoveDelta PlacementEngine::compute_move(
    const PlacementCandidate& c, int node, uint8_t to,
    std::vector<std::pair<size_t, double>>* affected) const {
  return affected != nullptr ? move_dispatch<true>(c, node, to, affected)
                             : move_dispatch<false>(c, node, to, nullptr);
}

PlacementEngine::MoveDelta PlacementEngine::preview_move(const PlacementCandidate& c,
                                                         int node, uint8_t to) const {
  return move_dispatch<false>(c, node, to, nullptr);
}

void PlacementEngine::apply_move(PlacementCandidate& c, int node, uint8_t to) const {
  static thread_local std::vector<std::pair<size_t, double>> scratch;
  const MoveDelta delta = move_dispatch<true>(c, node, to, &scratch);
  if (c.host[static_cast<size_t>(node)] == to) return;
  for (const auto& [link, d] : scratch) {
    c.link_load_bps[link] += d;
    c.link_penalty_s[link] = link_penalty(link, c.link_load_bps[link]);
  }
  c.host[static_cast<size_t>(node)] = to;
  c.compute_s += delta.d_compute;
  c.transfer_s += delta.d_transfer;
  c.rtt_penalty_s += delta.d_rtt_penalty;
  c.capacity_penalty_s += delta.d_capacity_penalty;
}

uint64_t PlacementEngine::evolve_candidate(PlacementCandidate& c,
                                           const PlacementCandidate& best,
                                           uint64_t stream, double a) {
  const uint32_t h = static_cast<uint32_t>(hosts());
  uint64_t counter = 0;
  // --- WOA position update over the discrete host alphabet. The continuous
  // encircling/spiral equations become adoption probabilities: a shrinking
  // |A| pulls hosts toward the best candidate's (exploitation), a large |A|
  // re-rolls them uniformly (exploration), the spiral branch copies the best
  // with fixed probability. Pinned nodes never move.
  bool jumped = false;
  for (size_t node = 0; node < dag_.node_count(); ++node) {
    if (dag_.pinned[node] != PlacementDag::kFreeHost) continue;
    const double r1 = draw01(stream, counter);
    const double p = draw01(stream, counter);
    const double A = 2.0 * a * r1 - a;
    uint8_t next = c.host[node];
    if (p < 0.5) {
      if (std::fabs(A) < 1.0) {
        if (draw01(stream, counter) < 1.0 - std::fabs(A)) next = best.host[node];
      } else {
        if (draw01(stream, counter) < 0.5) {
          next = static_cast<uint8_t>(draw_index(stream, counter, h));
        }
      }
    } else {
      if (draw01(stream, counter) < 0.7) next = best.host[node];
    }
    if (next != c.host[node]) {
      c.host[node] = next;
      jumped = true;
    }
  }
  // A jump rewrites many coordinates at once: one O(|DAG|) re-price is
  // cheaper than a delta per changed node and resets incremental drift.
  if (jumped) price(c);

  // --- Greedy local-search polish: delta-priced single-node moves, accepted
  // only when they strictly improve. This is where the O(degree) evaluator
  // earns its keep — config_.local_moves neighbors cost less than one full
  // re-price.
  uint64_t delta_evals = 0;
  if (!free_nodes_.empty() && h > 1) {
    for (int m = 0; m < config_.local_moves; ++m) {
      const int node = static_cast<int>(
          free_nodes_[draw_index(stream, counter,
                                 static_cast<uint32_t>(free_nodes_.size()))]);
      const uint8_t cur = c.host[static_cast<size_t>(node)];
      const uint8_t to = static_cast<uint8_t>(
          (cur + 1 + draw_index(stream, counter, h - 1)) % h);
      const MoveDelta d = preview_move(c, node, to);
      ++delta_evals;
      if (d.total() < -1e-12) apply_move(c, node, to);
    }
  }
  return delta_evals;
}

PlacementResult PlacementEngine::run_iterations(int iterations) {
  PlacementResult result;
  result.seed_cost_s = seed_cost_s_;
  result.iterations = iterations;

  const int pool_size = static_cast<int>(swarm_.size());
  std::vector<uint64_t> delta_counts(static_cast<size_t>(pool_size), 0);
  for (int it = 0; it < iterations; ++it) {
    // WOA's a: 2 → 0 across this run's budget.
    const double a =
        iterations > 1 ? 2.0 * (1.0 - static_cast<double>(it) / (iterations - 1))
                       : 1.0;
    const PlacementCandidate best_prev = best_;
    const int abs_it = absolute_iteration_++;
    auto evolve_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const uint64_t stream =
            splitmix64(splitmix64(config_.seed + i) +
                       static_cast<uint64_t>(abs_it));
        delta_counts[i] += evolve_candidate(swarm_[i], best_prev, stream, a);
      }
    };
    if (pool_ != nullptr && pool_size > 1) {
      pool_->parallel_dynamic(static_cast<size_t>(pool_size), 1, evolve_range);
    } else {
      evolve_range(0, static_cast<size_t>(pool_size));
    }
    // Deterministic reduction: candidates are compared in index order, so
    // the winner is the same at any worker count.
    for (const PlacementCandidate& c : swarm_) {
      if (c.cost() < best_.cost()) best_ = c;
    }
    result.full_evals += static_cast<uint64_t>(pool_size);  // jump re-prices
  }
  for (uint64_t d : delta_counts) result.delta_evals += d;

  result.assignment.assign(best_.host.begin(), best_.host.end());
  result.cost_s = best_.cost();
  result.improved = result.cost_s < result.seed_cost_s - 1e-12;

  // Deterministic modeled cost of the solve on the vehicle's silicon.
  const double eval_unit = static_cast<double>(
      dag_.node_count() + dag_.edges.size() +
      static_cast<size_t>(hosts()) * static_cast<size_t>(hosts()));
  const double cycles =
      static_cast<double>(result.delta_evals) * kCyclesPerDeltaEval +
      static_cast<double>(result.full_evals) * kCyclesPerFullEvalUnit * eval_unit;
  result.modeled_solve_s =
      cycles / topology_.cost_model(0).spec().single_thread_ops_per_sec();
  return result;
}

PlacementResult PlacementEngine::solve(const std::vector<uint8_t>& seed_assignment) {
  assert(seed_assignment.size() == dag_.node_count());
  refresh_tables();
  free_nodes_.clear();
  for (size_t i = 0; i < dag_.node_count(); ++i) {
    if (dag_.pinned[i] == PlacementDag::kFreeHost) free_nodes_.push_back(i);
  }

  // Candidate 0 is Algorithm 1's plan verbatim; the rest are perturbations
  // of it. Best-ever starts at the seed, so the result can never be worse.
  swarm_.assign(static_cast<size_t>(std::max(1, config_.candidates)),
                PlacementCandidate{});
  const uint32_t h = static_cast<uint32_t>(hosts());
  uint64_t full_evals = 0;
  for (size_t i = 0; i < swarm_.size(); ++i) {
    PlacementCandidate& c = swarm_[i];
    c.host.assign(seed_assignment.begin(), seed_assignment.end());
    if (i > 0 && h > 1) {
      const uint64_t stream = splitmix64(config_.seed ^ (0xa5a5a5a5ULL + i));
      uint64_t counter = 0;
      for (size_t node : free_nodes_) {
        if (draw01(stream, counter) < 0.3) {
          c.host[node] = static_cast<uint8_t>(draw_index(stream, counter, h));
        }
      }
    }
    price(c);
    ++full_evals;
  }
  best_ = swarm_[0];
  seed_cost_s_ = swarm_[0].cost();
  for (const PlacementCandidate& c : swarm_) {
    if (c.cost() < best_.cost()) best_ = c;
  }

  PlacementResult result = run_iterations(config_.iterations);
  result.full_evals += full_evals;
  ++solves_total_;
  record_solve(result, "solve");
  return result;
}

PlacementResult PlacementEngine::reoptimize(int iterations) {
  assert(has_incumbent() && "reoptimize requires a prior solve()");
  if (iterations <= 0) iterations = config_.reoptimize_iterations;
  uint64_t repriced = 0;
  if (refresh_tables()) {
    // Link observations or DAG edits moved the generation: every cached
    // candidate cost is stale. Re-price in place; the pool's diversity (and
    // the incumbent) carry over.
    for (PlacementCandidate& c : swarm_) {
      price(c);
      ++repriced;
    }
    price(best_);
    ++repriced;
    seed_cost_s_ = best_.cost();
  }
  PlacementResult result = run_iterations(iterations);
  result.full_evals += repriced;
  ++solves_total_;
  record_solve(result, "reoptimize");
  return result;
}

void PlacementEngine::record_solve(const PlacementResult& r, const char* mode) {
  if (solves_counter_ != nullptr) solves_counter_->inc();
  if (delta_evals_counter_ != nullptr) delta_evals_counter_->inc(r.delta_evals);
  if (telemetry_ != nullptr) {
    const double improvement =
        r.seed_cost_s > 0.0 ? (r.seed_cost_s - r.cost_s) / r.seed_cost_s : 0.0;
    telemetry_->tracer().span(
        "placement.solve", "lgv", "placement", telemetry_->now(),
        r.modeled_solve_s,
        {{"mode", mode},
         {"candidates", std::to_string(swarm_.size())},
         {"iterations", std::to_string(r.iterations)},
         {"delta_evals", std::to_string(r.delta_evals)},
         {"cost_s", std::to_string(r.cost_s)},
         {"improvement", std::to_string(improvement)}});
  }
}

// ---------------------------------------------------------------------------
// The Fig. 2 pipeline as a placement DAG.

PlacementDag make_pipeline_dag() {
  PlacementDag d;
  // Nodes in all_nodes() order (NodeId ↔ dag index for the runtime mapping),
  // cycles per activation in Table II proportions: SLAM and the VDP kernels
  // carry the parallel work, planning/exploration are serial and sparse.
  const int loc = d.add_node("localization", 2.0e6, 38.0e6);
  const int cg = d.add_node("costmap_gen", 1.0e6, 9.0e6);
  const int pp = d.add_node("path_planning", 4.0e6, 0.0);
  const int ex = d.add_node("exploration", 1.5e6, 0.0);
  const int pt = d.add_node("path_tracking", 1.0e6, 17.0e6);
  const int mux = d.add_node("velocity_mux", 0.05e6, 0.0, 0);  // never leaves
  // The sensor source: zero compute, pinned to the vehicle — what prices the
  // scan uplink when consumers go remote.
  const int lidar = d.add_node("lidar_driver", 0.0, 0.0, 0);

  d.add_edge(lidar, loc, 3000.0, 5.0);  // LaserScan at 5 Hz
  d.add_edge(lidar, cg, 3000.0, 5.0);
  d.add_edge(loc, cg, 48.0, 5.0);       // pose correction
  d.add_edge(loc, pp, 48.0, 0.5);
  d.add_edge(loc, ex, 48.0, 0.5);
  d.add_edge(cg, pp, 8192.0, 0.5);      // costmap snapshot at replan cadence
  d.add_edge(cg, pt, 8192.0, 5.0);      // costmap window every tick
  d.add_edge(ex, pp, 48.0, 0.5);
  d.add_edge(pp, pt, 1024.0, 0.5);      // path
  d.add_edge(pt, mux, 48.0, 5.0);       // velocity command
  return d;
}

}  // namespace lgv::core
