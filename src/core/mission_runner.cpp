#include "core/mission_runner.h"

#include <algorithm>
#include <cmath>

#include "platform/calibration.h"

namespace lgv::core {

namespace calib = platform::calib;
using platform::Host;

namespace {
constexpr double kMinMuxTimeout = 0.8;
constexpr double kMaxMuxTimeout = 6.0;
}  // namespace

MissionRunner::MissionRunner(sim::Scenario scenario, DeploymentPlan plan,
                             MissionConfig config)
    : scenario_(std::move(scenario)),
      config_(config),
      runtime_(std::move(plan), scenario_.wap_position, config.channel,
               config.telemetry,
               FleetAttachment{.pool = config.worker_pool,
                               .vehicle_index = config.vehicle_index,
                               .standby = config.standby_pool,
                               // Jitter stream off the effective seed: fleet
                               // vehicles already derive distinct seeds, so
                               // no two share a retry schedule.
                               .backoff_seed = config.effective_seed() ^ 0xba5eba11,
                               .failover = config.failover}),
      fault_injector_(config.faults),
      // Subsystem seeds derive from the *effective* seed: in a fleet each
      // vehicle's index mixes into the fleet seed via splitmix64, so two
      // vehicles never drive identical RNG streams.
      robot_({}, scenario_.start, config.effective_seed() ^ 0xb0b),
      lidar_({}, config.effective_seed() ^ 0x11d),
      battery_(config.battery_wh),
      costmap_(scenario_.world.frame().origin, scenario_.world.width_m(),
               scenario_.world.height_m()),
      rollout_() {
  rollout_.set_samples(config_.rollout_samples);

  const bool exploration =
      runtime_.plan().workload == WorkloadKind::kExplorationWithoutMap;
  if (exploration) {
    perception::GmappingConfig gc;
    gc.particles = config_.slam_particles;
    slam_.emplace(gc, scenario_.world.frame().origin, scenario_.world.width_m(),
                  scenario_.world.height_m(), config_.effective_seed() ^ 0x51a);
    slam_->initialize(scenario_.start);
  } else {
    // "CostmapGen uses existing map data" — seed the known map from ground
    // truth, as a previously recorded SLAM map would be.
    perception::OccupancyGridConfig map_cfg;
    map_cfg.resolution = scenario_.world.frame().resolution;
    known_map_ = perception::OccupancyGrid::from_binary(
        scenario_.world.frame(), scenario_.world.grid(), map_cfg);
    if (config_.localization == LocalizationBackend::kVision) {
      // §IX vision-based LGV: corner landmarks + forward camera + VO.
      auto landmarks = perception::extract_landmarks(scenario_.world);
      camera_.emplace(perception::CameraConfig{}, landmarks,
                      config_.effective_seed() ^ 0xca3);
      vo_.emplace(perception::VisualOdometryConfig{}, std::move(landmarks));
      vo_->initialize(scenario_.start);
      vo_last_odom_ = scenario_.start;
    } else {
      amcl_.emplace(perception::AmclConfig{}, &known_map_,
                    config_.effective_seed() ^ 0xa3c1);
      amcl_->initialize(scenario_.start);
    }
    costmap_.set_static_map(known_map_.to_msg(0.0));
    goal_ = scenario_.goal;
  }

  fault_injector_.attach_channel(&runtime_.channel());
  fault_injector_.set_telemetry(runtime_.telemetry());
  if (!config_.faults.empty()) {
    // Worker faults always bite remote executions; lease_fallback only
    // decides whether anything *recovers* from them (the bench's "adaptive"
    // vs. "adaptive+fallback" ablation).
    runtime_.set_fault_injector(&fault_injector_);
    runtime_.set_lease_fallback(config_.lease_fallback);
  }
  if (config_.worker_pool != nullptr) {
    // Pool faults (pool_crash/degrade/partition) bite at the *shared* pool:
    // the harness owns the pool, so it attaches the schedule there
    // (pool.set_fault_injector) — a runner-owned injector would dangle once
    // its runner dies while the pool lives on.
    //
    // Failover snapshots price their transfer off the real serialized state,
    // and only a committed transfer advances the SLAM delta base — an
    // aborted failover must never key future deltas on state the standby
    // never received.
    runtime_.set_state_snapshot(
        [this] {
          return serialized_state_bytes(runtime_.clock().now(), nullptr);
        },
        [this] {
          if (slam_.has_value()) slam_->mark_migration_committed();
        });
  }

  pose_estimate_ = scenario_.start;
  mux_.add_input({"path_tracking", 10, kMinMuxTimeout});
  mux_.add_input({"recovery", 50, 0.3});
  mux_.add_input({"safety", 100, 0.25});

  setup_graph();
}

void MissionRunner::setup_graph() {
  mw::Graph& g = runtime_.graph();
  scan_pub_ = g.advertise<msg::LaserScan>("lidar_driver", "scan");
  odom_pub_ = g.advertise<msg::Odometry>("lidar_driver", "odom");
  pose_pub_ = g.advertise<msg::PoseStamped>(node_name(NodeId::kLocalization), "pose");
  tf_pub_ = g.advertise<msg::PoseStamped>(node_name(NodeId::kLocalization), "map_to_odom");
  cmd_pub_ = g.advertise<msg::TwistMsg>(node_name(NodeId::kPathTracking), "cmd_vel");

  g.subscribe<msg::LaserScan>(node_name(NodeId::kLocalization), "scan",
                              [this](const msg::LaserScan& s) {
                                scan_for_loc_ = s;
                                scan_loc_ctx_ = capture_ctx();
                              });
  g.subscribe<msg::LaserScan>(node_name(NodeId::kCostmapGen), "scan",
                              [this](const msg::LaserScan& s) {
                                scan_for_cg_ = s;
                                scan_cg_ctx_ = capture_ctx();
                              });
  g.subscribe<msg::Odometry>(node_name(NodeId::kLocalization), "odom",
                             [this](const msg::Odometry& o) { latest_odom_ = o; });
  // The pose estimate flows back to the vehicle side (and to path tracking,
  // wherever it runs).
  g.subscribe<msg::PoseStamped>("base_controller", "pose",
                                [this](const msg::PoseStamped& p) {
                                  pose_estimate_ = p.pose;
                                  pose_stamp_ = p.header.stamp;
                                });
  g.subscribe<msg::PoseStamped>("base_controller", "map_to_odom",
                                [this](const msg::PoseStamped& p) {
                                  map_to_odom_ = p.pose;
                                });
  g.subscribe<msg::TwistMsg>(node_name(NodeId::kVelocityMux), "cmd_vel",
                             [this](const msg::TwistMsg& t) {
                               const double now = runtime_.clock().now();
                               mux_.on_command("path_tracking", t.velocity, now);
                               // VDP makespan: scan capture → command arrival.
                               const double makespan = now - t.header.stamp;
                               if (makespan >= 0.0) {
                                 runtime_.profiler().record_vdp_makespan(
                                     runtime_.vdp_placement(), makespan);
                               }
                             });

  runtime_.switcher().set_stream_callback([this](double sent, double now) {
    runtime_.profiler().on_stream_packet(now);
    runtime_.profiler().record_rtt(sent, sent + 2.0 * (now - sent));
  });
}

telemetry::Tracer* MissionRunner::tracer() {
  telemetry::Telemetry* t = runtime_.telemetry();
  return t != nullptr ? &t->tracer() : nullptr;
}

telemetry::TraceContext MissionRunner::capture_ctx() {
  telemetry::Tracer* tr = tracer();
  return tr != nullptr ? tr->current() : telemetry::TraceContext{};
}

void MissionRunner::defer(double due, std::function<void()> fn) {
  deferred_.push_back({due, capture_ctx(), std::move(fn)});
}

void MissionRunner::pump(double now) {
  // Run every deferred completion that is due; completions may enqueue
  // publishes, so loop until stable.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < deferred_.size();) {
      if (deferred_[i].due <= now) {
        auto fn = std::move(deferred_[i].fn);
        const telemetry::TraceContext ctx = deferred_[i].ctx;
        deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(i));
        {
          // Completions re-enter the context captured at defer() time so the
          // publishes they trigger stay children of the producing span.
          telemetry::ScopedTraceContext scope(tracer(), ctx);
          fn();
        }
        progressed = true;
      } else {
        ++i;
      }
    }
    runtime_.switcher().step();
    if (runtime_.graph().spin() > 0) progressed = true;
  }
}

double MissionRunner::current_velocity_cap() const {
  const auto& profiler = runtime_.profiler();
  const auto measured = profiler.vdp_makespan(runtime_.vdp_placement());
  // Before the first command round-trips, assume one scan period of latency.
  const double tp = measured.value_or(config_.scan_period * 2.0);
  return runtime_.controller().velocity_cap(tp);
}

void MissionRunner::on_scan_tick(double now) {
  // Every sensor tick roots a fresh trace; everything downstream — local node
  // executions, wire frames, remote spans, deferred publishes — parents under
  // it, forming one cross-host DAG per scan.
  if (telemetry::Tracer* tr = tracer()) {
    tr->begin_trace();
    const uint32_t root = tr->instant_now(
        "scan.tick", "lgv", "lidar_driver", {{"seq", std::to_string(scan_seq_)}});
    if (root != 0) tr->set_current({tr->current().trace_id, root});
  }

  msg::LaserScan scan = lidar_.scan(scenario_.world, robot_.pose(), now);
  scan.header.seq = scan_seq_;
  msg::Odometry odom = robot_.odometry(now, scan_seq_);
  ++scan_seq_;

  // Safety controller watches the raw scan locally (never offloaded, §IX).
  if (const auto intervention = safety_.evaluate(scan)) {
    mux_.on_command("safety", *intervention, now);
  }

  // Move-publish: the Graph takes ownership of the payload; local
  // subscribers alias it instead of copying (mw_zero_copy_total).
  scan_pub_.publish(std::move(scan));
  odom_pub_.publish(std::move(odom));

  // Vision-based LGV: the camera frames at the scan rate (sensor local).
  if (camera_.has_value()) {
    frame_for_loc_ = camera_->capture(scenario_.world, robot_.pose(), now);
    frame_ctx_ = capture_ctx();
  }

  // Charge the (tiny) velocity-mux arbitration for this cycle.
  platform::ExecutionContext mux_ctx = runtime_.make_context(NodeId::kVelocityMux);
  mux_ctx.serial_work(calib::kVelMuxCyclesPerCommand);
  runtime_.finish(NodeId::kVelocityMux, mux_ctx);

  // Fixed-rate measurement stream for Algorithm 2 (velocity messages when
  // path tracking is remote; 48 B probes otherwise — see DESIGN.md).
  if (runtime_.plan().offload && runtime_.plan().adaptive) {
    runtime_.switcher().send_stream_packet();
  }
  runtime_.profiler().on_robot_position(robot_.pose().position());
}

void MissionRunner::run_localization(double now) {
  const bool vision = vo_.has_value();
  if (vision) {
    if (!frame_for_loc_.has_value() || now < loc_busy_until_ || now < frozen_until_)
      return;
  } else if (!scan_for_loc_.has_value() || now < loc_busy_until_ ||
             now < frozen_until_) {
    return;
  }

  // Run under the context captured with the consumed input so the node span
  // (and the deferred pose publish) stitch to the scan that produced it.
  telemetry::ScopedTraceContext trace_scope(tracer(),
                                            vision ? frame_ctx_ : scan_loc_ctx_);

  platform::ExecutionContext ctx = runtime_.make_context(NodeId::kLocalization);
  const Pose2D odom_used = latest_odom_.pose;
  Pose2D estimate;
  double frame_stamp = 0.0;
  if (vision) {
    const perception::VisualFrame frame = *frame_for_loc_;
    frame_for_loc_.reset();
    frame_stamp = frame.stamp;
    const Pose2D delta = vo_last_odom_.between(latest_odom_.pose);
    vo_last_odom_ = latest_odom_.pose;
    vo_->update(delta, frame, ctx);
    estimate = vo_->pose();
  } else if (slam_.has_value()) {
    const msg::LaserScan scan = *scan_for_loc_;
    scan_for_loc_.reset();
    frame_stamp = scan.header.stamp;
    slam_->process(latest_odom_, scan, ctx);
    estimate = slam_->best_pose();
  } else {
    const msg::LaserScan scan = *scan_for_loc_;
    scan_for_loc_.reset();
    frame_stamp = scan.header.stamp;
    amcl_->update(latest_odom_, scan, ctx);
    estimate = amcl_->estimate();
  }
  const auto outcome = runtime_.finish_guarded(NodeId::kLocalization, ctx);
  loc_busy_until_ = now + outcome.latency;

  // map→odom correction: map_pose = correction ∘ odom_pose at match time.
  const Pose2D correction = estimate.compose(odom_used.inverse());
  defer(loc_busy_until_, [this, estimate, correction, stamp = frame_stamp] {
    msg::PoseStamped p;
    p.header.stamp = stamp;
    p.pose = estimate;
    pose_pub_.publish(std::move(p));
    msg::PoseStamped tf;
    tf.header.stamp = stamp;
    tf.pose = correction;
    tf_pub_.publish(std::move(tf));
  });
}

void MissionRunner::run_costmap(double now) {
  if (!scan_for_cg_.has_value() || now < cg_busy_until_ || now < frozen_until_) return;
  const msg::LaserScan scan = *scan_for_cg_;
  scan_for_cg_.reset();
  telemetry::ScopedTraceContext trace_scope(tracer(), scan_cg_ctx_);

  // Exploration: refresh the static layer from the SLAM map so the costmap
  // covers newly mapped terrain (Fig. 2's map→costmap edge).
  if (slam_.has_value()) {
    costmap_.set_static_map(slam_->best_map().to_msg(now));
  }

  platform::ExecutionContext ctx = runtime_.make_context(NodeId::kCostmapGen);
  const perception::CostmapUpdateStats stats = costmap_.update(current_pose(), scan);
  ctx.serial_work(static_cast<double>(stats.raytraced_cells) *
                      calib::kCostmapRaytraceCyclesPerCell +
                  static_cast<double>(stats.inflated_cells) *
                      calib::kInflationCyclesPerCell);
  const auto outcome = runtime_.finish_guarded(NodeId::kCostmapGen, ctx);
  cg_busy_until_ = now + outcome.latency;
  defer(cg_busy_until_, [this, stamp = scan.header.stamp] {
    costmap_stamp_ = stamp;
    costmap_ctx_ = capture_ctx();  // path tracking keys off this costmap
  });
}

void MissionRunner::run_tracking(double now) {
  if (costmap_stamp_ <= tracked_costmap_stamp_ || now < pt_busy_until_ ||
      now < frozen_until_ || path_.poses.empty()) {
    return;
  }
  tracked_costmap_stamp_ = costmap_stamp_;
  telemetry::ScopedTraceContext trace_scope(tracer(), costmap_ctx_);

  platform::ExecutionContext ctx = runtime_.make_context(NodeId::kPathTracking);
  double cap = current_velocity_cap();
  // Controller: bound the turn rate so one stale decision can't swing the
  // heading wildly while the next command is still in flight.
  const double makespan = runtime_.profiler()
                              .vdp_makespan(runtime_.vdp_placement())
                              .value_or(config_.scan_period * 2.0);
  double angular_cap =
      runtime_.controller().angular_cap(makespan, rollout_.config().max_angular);
  if (vo_.has_value()) {
    // §IX vision constraint: never rotate faster than the tracker can follow
    // between frames, and crawl while tracking is lost so it can relock.
    angular_cap = std::min(
        angular_cap, perception::max_trackable_angular_rate(
                         camera_->config().fov_rad, config_.scan_period, 0.75));
    if (vo_->lost()) cap = std::min(cap, 0.08);
  }
  rollout_.set_angular_limit(angular_cap);
  const control::RolloutDecision decision = rollout_.compute(
      costmap_, path_, current_pose(), robot_.velocity(), cap, ctx);
  const auto outcome = runtime_.finish_guarded(NodeId::kPathTracking, ctx);
  pt_busy_until_ = now + outcome.latency;

  defer(pt_busy_until_, [this, decision, stamp = costmap_stamp_] {
    msg::TwistMsg cmd;
    cmd.header.stamp = stamp;  // originating scan time → VDP makespan
    cmd.velocity = decision.command;
    cmd_pub_.publish(std::move(cmd));
  });
}

void MissionRunner::run_planning(double now, bool force) {
  if (!goal_.has_value() || now < pp_busy_until_) return;
  if (!force && now - last_replan_ < config_.replan_period) return;
  last_replan_ = now;

  platform::ExecutionContext ctx = runtime_.make_context(NodeId::kPathPlanning);
  const planning::PlanResult result =
      planner_.plan(costmap_, {current_pose(), *goal_}, ctx);
  const auto outcome = runtime_.finish_guarded(NodeId::kPathPlanning, ctx);
  pp_busy_until_ = now + outcome.latency;
  if (result.success) {
    defer(pp_busy_until_, [this, path = result.path] { path_ = path; });
  }
}

void MissionRunner::run_exploration(double now) {
  if (!slam_.has_value()) return;

  // Give up on a frontier goal that made no progress for a while: slivers
  // inside inflation or behind clutter are unreachable in practice.
  if (goal_.has_value()) {
    const double d = distance(robot_.pose().position(), goal_->position());
    if (d < explore_best_dist_ - 0.1) {
      explore_best_dist_ = d;
      explore_goal_set_time_ = now;
    }
    if (now - explore_goal_set_time_ > 40.0) {
      frontier_blacklist_.push_back(goal_->position());
      goal_.reset();
      path_.poses.clear();
    }
  }

  platform::ExecutionContext ctx = runtime_.make_context(NodeId::kExploration);
  const planning::FrontierResult result =
      frontier_.detect(slam_->best_map().to_msg(now), current_pose(), ctx);
  runtime_.finish_guarded(NodeId::kExploration, ctx);

  // Drop blacklisted frontiers; any surviving cluster keeps exploration
  // going (frontiers can legitimately be doorway-sized).
  std::optional<Point2D> next_goal;
  for (const planning::Frontier& f : result.frontiers) {
    const bool blacklisted =
        std::any_of(frontier_blacklist_.begin(), frontier_blacklist_.end(),
                    [&](const Point2D& b) { return distance(b, f.centroid) < 0.6; });
    if (blacklisted) continue;
    next_goal = f.centroid;
    break;
  }

  if (next_goal.has_value()) {
    const Pose2D new_goal{next_goal->x, next_goal->y, 0.0};
    if (!goal_.has_value() || distance(goal_->position(), new_goal.position()) > 0.5) {
      goal_ = new_goal;
      explore_best_dist_ = 1e18;
      explore_goal_set_time_ = now;
      run_planning(now, /*force=*/true);
    }
  } else if (now > config_.explore_done_grace &&
             slam_->best_map().known_area_m2() > 4.0) {
    // No (reachable) frontier mass left: the environment is mapped.
    explored_ = true;
  }
}

void MissionRunner::run_adjustment(double now) {
  auto& profiler = runtime_.profiler();

  // Widen the command freshness window to ride out slow pipelines without
  // stuttering, while still timing out under genuine network death.
  const double makespan =
      profiler.vdp_makespan(runtime_.vdp_placement()).value_or(config_.scan_period);
  mux_.set_timeout("path_tracking",
                   std::clamp(1.5 * makespan, kMinMuxTimeout, kMaxMuxTimeout));

  // §VIII-E: shed cloud parallelism when the vehicle can't use the speed
  // (obstacle-dense or turning phases) — saves cloud cost at no mission cost.
  if (config_.adaptive_parallelism && runtime_.plan().offload) {
    const double cap = current_velocity_cap();
    const int rec = runtime_.controller().recommend_threads(
        std::abs(robot_.velocity().linear), cap, runtime_.active_threads());
    if (rec != runtime_.active_threads()) {
      runtime_.set_active_threads(rec);
    } else if (std::abs(robot_.velocity().linear) > 0.85 * cap) {
      // Back to full parallelism when the vehicle is using the headroom.
      runtime_.set_active_threads(runtime_.plan().remote_threads);
    }
    report_.min_active_threads =
        std::min(report_.min_active_threads, runtime_.active_threads());
  }

  if (!runtime_.plan().offload || !runtime_.plan().adaptive) return;

  // ---- Algorithm 2: bandwidth + signal direction → placement.
  const NetworkObservation obs = profiler.observe(now);
  VdpPlacement wanted = runtime_.network_controller().update(obs);
  if (telemetry::Telemetry* t = runtime_.telemetry()) {
    // Every Algorithm 2 evaluation with the observation snapshot that drove
    // it — the trace answers "why did it migrate at t=412s?" directly.
    t->tracer().instant_now(
        "alg2.decision", "decisions", "algorithm2",
        {{"bandwidth_hz", std::to_string(obs.bandwidth_hz)},
         {"direction", std::to_string(obs.signal_direction)},
         {"wanted", wanted == VdpPlacement::kRemote ? "remote" : "local"},
         {"current",
          runtime_.vdp_placement() == VdpPlacement::kRemote ? "remote" : "local"}});
    t->metrics().counter("alg_decisions_total", {{"algorithm", "2"}}).inc();
  }

  // ---- Algorithm 1 (MCT goal): confirm remote placement still pays off.
  if (wanted == VdpPlacement::kRemote &&
      runtime_.plan().goal == Goal::kCompletionTime) {
    const auto tl = profiler.vdp_makespan(VdpPlacement::kLocal);
    const auto tc = profiler.vdp_makespan(VdpPlacement::kRemote);
    if (tl.has_value() && tc.has_value() && *tc > *tl) {
      wanted = VdpPlacement::kLocal;
      runtime_.network_controller().force(VdpPlacement::kLocal);
    }
  }

  const bool switched = runtime_.set_vdp_placement(wanted);

  // ---- multi-tier re-trigger: while the VDP is remote, every adjustment
  // epoch (and every Algorithm 2 switch) runs a *bounded* re-optimization of
  // the N-host plan against the live link model — never a full solve. A no-op
  // for two-host plans or while Algorithm 2 holds the vehicle local.
  runtime_.reoptimize_placement(switched ? "alg2_switch" : "adjust_epoch");

  if (switched) {
    // State migration: the costmap snapshot plus the actual serialized filter
    // state (RBPF particle poses, weights and maps for exploration; AMCL's
    // pose cloud for known-map missions). The byte counts are real encoded
    // sizes; the transfer itself is modeled on the TCP link. SLAM encodes
    // deltas against the last committed migration where the codec can —
    // the first transfer (and any after heavy map churn) falls back to full
    // RLE snapshots per grid.
    const uint64_t cow_before = cow_detach_count();
    bool used_delta = false;
    const double state_bytes = serialized_state_bytes(now, &used_delta);
    const MigrationResult mig = runtime_.switcher().migrate_state(
        state_bytes, wanted == VdpPlacement::kRemote,
        used_delta ? "delta" : "full");
    frozen_until_ = mig.completion;  // a failed transfer still costs its time
    if (telemetry::Telemetry* t = runtime_.telemetry()) {
      if (slam_.has_value()) {
        t->metrics()
            .gauge("migration_delta_hit_ratio")
            .set(slam_->last_codec_stats().delta_hit_ratio());
      }
      t->metrics()
          .counter("grid_cow_copies_total")
          .inc(cow_detach_count() - cow_before);
    }
    if (mig.committed && slam_.has_value()) {
      // The receiver provably holds this exact state (commit record round-
      // tripped): advance the delta base. An aborted transfer leaves the
      // base untouched, so the next encode still keys on a state the far
      // side actually has.
      slam_->mark_migration_committed();
    }
    if (!mig.committed) {
      // Torn transfer: the far end never acknowledged a complete, verified
      // state image, so running there would mean a partial particle set.
      // Revert to the local replica through the same path a lease expiry
      // takes, and let Algorithm 2 re-evaluate once the channel recovers.
      runtime_.network_controller().force(VdpPlacement::kLocal);
      runtime_.set_vdp_placement(VdpPlacement::kLocal);
      if (telemetry::Telemetry* t = runtime_.telemetry()) {
        t->tracer().instant_now("migration.abort", "network", "switcher",
                                {{"attempts", std::to_string(mig.attempts)}});
        // Post-mortem: the last N events leading up to the torn transfer.
        t->dump_flight("migration_abort");
      }
    }
  }
}

double MissionRunner::serialized_state_bytes(double now, bool* used_delta) {
  double bytes =
      static_cast<double>(serialize_to_bytes(costmap_.to_msg(now)).size());
  if (slam_.has_value()) {
    bytes += static_cast<double>(
        slam_->serialize_state(perception::StateEncoding::kDelta).size());
    if (used_delta != nullptr) {
      *used_delta = slam_->last_codec_stats().grids_delta > 0;
    }
  }
  if (amcl_.has_value()) {
    bytes += static_cast<double>(amcl_->serialize_state().size());
  }
  return bytes;
}

void MissionRunner::integrate_energy(double now, double prev_speed) {
  (void)now;
  const double v = std::abs(robot_.velocity().linear);
  const double a = (v - prev_speed) / config_.tick;
  sim::PowerDraw draw;
  const auto& pm = runtime_.power();
  draw.sensor = pm.sensor_power();
  draw.microcontroller = pm.microcontroller_power();
  draw.motor = pm.motor_power(v, a);
  draw.computer = pm.config().computer_idle_w;  // Eq. 1c dynamic part is
                                                // charged per execution
  runtime_.energy().accumulate(draw, config_.tick);
  runtime_.charge_cloud_time(config_.tick);

  // Drain the battery by everything consumed since the last tick (including
  // per-execution Eq. 1c and per-message Eq. 1b charges).
  const double total = runtime_.energy().energy().total();
  battery_.drain(total - battery_drained_j_);
  battery_drained_j_ = total;
}

MissionReport MissionRunner::run() {
  start();
  while (step()) {
  }
  return finalize();
}

void MissionRunner::start() {
  report_ = MissionReport{};
  report_.deployment = runtime_.plan().name;
  report_.min_active_threads = runtime_.active_threads();
  report_.workload = runtime_.plan().workload == WorkloadKind::kNavigationWithMap
                         ? "navigation"
                         : "exploration";
  done_ = false;
  runtime_.apply_initial_placement();
}

bool MissionRunner::step() {
  SimClock& clock = runtime_.clock();
  if (done_ || clock.now() >= config_.timeout) return false;
  {
    const double now = clock.now();

    // ---- scripted faults overlay the channel before anything else moves
    fault_injector_.update(now);

    // ---- sensing at the scan rate
    if (now - last_scan_time_ >= config_.scan_period - 1e-9) {
      last_scan_time_ = now;
      on_scan_tick(now);
    }

    // ---- dataflow: deliveries, then any node whose input is ready
    pump(now);
    run_localization(now);
    run_costmap(now);
    if (slam_.has_value() && now - last_replan_ >= config_.replan_period) {
      run_exploration(now);
    }
    run_planning(now, /*force=*/path_.poses.empty());
    run_tracking(now);
    pump(now);

    // ---- runtime adjustment (Algorithms 1 & 2)
    if (now - last_adjust_ >= config_.adjust_period) {
      last_adjust_ = now;
      run_adjustment(now);
    }

    // ---- pool failover plane: keep the breaker/standby machinery moving
    // even when Algorithm 2 has retreated local (a crashed pool pollutes the
    // remote makespan, so without this probe the failover would starve).
    runtime_.step_failover(now);

    // ---- stuck recovery (local, ROS-style recovery behavior)
    {
      std::optional<double> heading_error;
      const Pose2D here = current_pose();
      for (const Pose2D& wp : path_.poses) {
        if (distance(wp.position(), here.position()) > 0.5) {
          const double bearing =
              std::atan2(wp.y - here.y, wp.x - here.x);
          heading_error = angle_diff(bearing, here.theta);
          break;
        }
      }
      const bool nav_active = goal_.has_value() && !path_.poses.empty();
      if (const auto cmd = recovery_.update(now, std::abs(robot_.velocity().linear),
                                            nav_active, heading_error)) {
        mux_.on_command("recovery", *cmd, now);
      }
    }

    // ---- actuation + physics
    platform::ExecutionContext dummy;
    const Velocity2D cmd = mux_.select(now, dummy);
    robot_.set_command(cmd);
    const double prev_speed = std::abs(robot_.velocity().linear);
    robot_.step(scenario_.world, config_.tick);
    runtime_.channel().set_robot_position(robot_.pose().position());
    integrate_energy(now, prev_speed);

    if (observer_) {
      TickState ts;
      ts.t = now;
      ts.robot_pose = robot_.pose();
      ts.estimated_pose = current_pose();
      ts.command = cmd;
      ts.velocity_cap = current_velocity_cap();
      ts.path_waypoints = path_.poses.size();
      ts.goal = goal_;
      ts.collided = robot_.collided();
      ts.mux_source = mux_.active_source().has_value()
                          ? mux_.active_source()->c_str()
                          : "(none)";
      observer_(ts);
    }

    if (std::abs(robot_.velocity().linear) < 0.02) {
      report_.standby_time += config_.tick;
    }

    // ---- traces
    if (now - last_trace_ >= config_.trace_period) {
      last_trace_ = now;
      const double cap = current_velocity_cap();
      report_.velocity_trace.push_back(
          {now, cap, std::abs(robot_.velocity().linear)});
      // Skip the optimistic pre-measurement default at mission start.
      if (now > 10.0) {
        report_.peak_velocity_cap = std::max(report_.peak_velocity_cap, cap);
      }
      NetworkSample ns;
      ns.t = now;
      ns.latency_ms = runtime_.profiler().rtt().value_or(0.0) * 1000.0 / 2.0;
      const NetworkObservation obs = runtime_.profiler().observe(now);
      ns.bandwidth_hz = obs.bandwidth_hz;
      ns.direction = obs.signal_direction;
      ns.remote = runtime_.vdp_placement() == VdpPlacement::kRemote;
      report_.network_trace.push_back(ns);
    }

    // ---- completion
    if (goal_.has_value() && !slam_.has_value()) {
      const double d = distance(robot_.pose().position(), scenario_.goal.position());
      if (d < best_goal_distance_ - 0.05) {
        best_goal_distance_ = d;
        last_progress_time_ = now;
      }
      if (d < config_.goal_tolerance) {
        report_.success = true;
        done_ = true;
      }
      if (now - last_progress_time_ > 60.0) {
        run_planning(now, /*force=*/true);
        last_progress_time_ = now;
      }
    }
    if (explored_) {
      report_.success = true;
      done_ = true;
    }
    if (battery_.depleted()) {
      report_.success = false;
      done_ = true;
    }
  }
  clock.advance(config_.tick);
  return !done_ && clock.now() < config_.timeout;
}

MissionReport MissionRunner::finalize() {
  const SimClock& clock = runtime_.clock();
  report_.completion_time = clock.now();
  report_.distance_traveled = robot_.distance_traveled();
  report_.average_velocity =
      report_.completion_time > 0 ? report_.distance_traveled / report_.completion_time
                                  : 0.0;
  report_.energy = runtime_.energy().energy();
  report_.network = runtime_.switcher().stats();
  report_.placement_switches = runtime_.network_controller().switches();
  report_.fallbacks = runtime_.fallback_count();
  report_.busy_fallbacks = runtime_.busy_fallback_count();
  report_.pool_failovers = runtime_.pool_failovers();
  report_.faults_injected = fault_injector_.activated_events();
  report_.battery_state_of_charge = battery_.state_of_charge();
  report_.cloud_core_seconds = runtime_.cloud_core_seconds();
  if (slam_.has_value()) report_.explored_area_m2 = slam_->best_map().known_area_m2();
  for (const std::string& name : runtime_.meter().node_names()) {
    report_.node_cycles[name] = runtime_.meter().cycles(name);
    report_.node_invocations[name] = runtime_.meter().invocations(name);
  }
  if (const telemetry::Telemetry* t = runtime_.telemetry()) {
    report_.metrics = t->metrics().snapshot();
    report_.trace_events = t->tracer().size();
  }
  return report_;
}

}  // namespace lgv::core
