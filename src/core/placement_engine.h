// Multi-tier placement engine: prices "which host runs which node" plans for
// an N-host HostTopology over the computation DAG, and searches that space
// fast enough to run every adjustment epoch.
//
// Three layers:
//
//  1. Cost tables — per-(node, host) compute seconds and per-(edge, host
//     pair) transfer seconds (plus the RTT-threshold penalty), precomputed
//     from the Table III cost models and the topology's link observables.
//     Tables are generation-stamped against the DAG and topology (like the
//     LikelihoodField's map-version invalidation): feeding back unchanged
//     observations rebuilds nothing.
//
//  2. Incremental evaluator — a candidate is a flat SoA byte array (one host
//     index per node) plus cached cost terms and per-link offered load.
//     preview_move/apply_move re-price only the touched node and its
//     incident edges, so evaluating a neighbor is O(degree), not O(|DAG|).
//     full_cost() is the always-available reference the tests compare
//     against.
//
//  3. Parallel optimizer — a discrete whale-optimization (WOA) candidate
//     pool (SNIPPETS.md Snippets 2–3's binary formulation generalized from
//     {local, cloud} to N hosts) with a greedy delta-priced local-search
//     polish per iteration. Candidate updates are pure functions of (their
//     previous state, the previous global best, a per-candidate splitmix64
//     stream), so the pool parallelizes across ThreadPool workers with
//     bit-identical results at any worker count. Algorithm 1's two-host
//     answer seeds candidate 0 and is tracked as best-ever from iteration
//     zero — the engine can never return a plan worse than Algorithm 1's.
//
// The modeled objective is the additive pipeline makespan (Σ node compute +
// Σ edge transfer, matching the paper's additive VDP makespan) plus two
// soft-constraint terms from the WOA formulation: an RTT-threshold penalty
// on edges whose path latency exceeds the control deadline, and a capacity
// penalty on links offered more bytes/s than they carry.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/soa.h"
#include "common/thread_pool.h"
#include "core/host_topology.h"

namespace lgv::telemetry {
class Telemetry;
}

namespace lgv::core {

/// The computation graph being placed. Node storage is SoA; `kFreeHost`
/// marks a node the optimizer may move, anything else pins it (the velocity
/// mux never leaves the vehicle).
struct PlacementDag {
  static constexpr uint8_t kFreeHost = 0xff;

  struct Edge {
    uint32_t src = 0;
    uint32_t dst = 0;
    double bytes = 0.0;    ///< payload per activation
    double rate_hz = 5.0;  ///< activations per second (offered-load pricing)
  };

  std::vector<std::string> names;
  aligned_vector<double> serial_cycles;
  aligned_vector<double> parallel_cycles;
  aligned_vector<uint8_t> pinned;  ///< kFreeHost or a host index
  std::vector<Edge> edges;

  int add_node(std::string name, double serial, double parallel,
               uint8_t pin = kFreeHost);
  void add_edge(int src, int dst, double bytes, double rate_hz = 5.0);

  size_t node_count() const { return serial_cycles.size(); }
  uint64_t generation() const { return generation_; }

 private:
  uint64_t generation_ = 0;
};

/// One placement under evaluation: the flat assignment plus every cached
/// term an O(degree) move update needs.
struct PlacementCandidate {
  aligned_vector<uint8_t> host;      ///< host index per node
  std::vector<double> link_load_bps; ///< offered bytes/s per (src, dst) pair
  std::vector<double> link_penalty_s;  ///< cached capacity penalty per link
  double compute_s = 0.0;
  double transfer_s = 0.0;
  double rtt_penalty_s = 0.0;
  double capacity_penalty_s = 0.0;

  double cost() const {
    return compute_s + transfer_s + rtt_penalty_s + capacity_penalty_s;
  }
};

struct PlacementEngineConfig {
  int candidates = 16;       ///< WOA pool size
  int iterations = 32;       ///< solve() iteration budget
  int local_moves = 8;       ///< delta-priced local-search proposals per candidate/iter
  int reoptimize_iterations = 6;  ///< bounded budget for re-trigger epochs
  double rtt_threshold_s = 0.1;   ///< control deadline (the WOA RTT threshold)
  double rtt_penalty_weight = 4.0;     ///< seconds charged per second of excess RTT
  double capacity_penalty_s = 2.0;     ///< seconds charged per unit link overload
  uint64_t seed = 0x5eed;
};

struct PlacementResult {
  std::vector<uint8_t> assignment;  ///< host index per node
  double cost_s = 0.0;              ///< modeled makespan + penalties
  double seed_cost_s = 0.0;         ///< the seed (Algorithm 1) plan's cost
  int iterations = 0;
  uint64_t delta_evals = 0;   ///< O(degree) move previews this solve
  uint64_t full_evals = 0;    ///< O(|DAG|) candidate re-pricings this solve
  /// Deterministic modeled compute time of the solve itself on the vehicle
  /// (what the adjustment epoch pays — the < 10 ms budget).
  double modeled_solve_s = 0.0;
  bool improved = false;  ///< found something cheaper than the seed plan
};

class PlacementEngine {
 public:
  PlacementEngine(PlacementDag dag, HostTopology topology,
                  PlacementEngineConfig config = {});

  const PlacementDag& dag() const { return dag_; }
  const HostTopology& topology() const { return topology_; }
  /// Mutable so link observations can be fed live; the next refresh_tables()
  /// (called internally by every solve) picks up the new generation.
  HostTopology& topology() { return topology_; }
  const PlacementEngineConfig& config() const { return config_; }

  /// Real threads for the candidate pool (results are bit-identical with or
  /// without); nullptr = serial. The pool must outlive the engine.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  /// placement.solve spans + placement_solves_total /
  /// placement_delta_evals_total counters; nullptr disconnects.
  void set_telemetry(telemetry::Telemetry* telemetry);

  // ---- cost tables ----
  /// Rebuild the compute/transfer/penalty tables iff the DAG or topology
  /// generation moved since the last build. Returns true when work was done.
  bool refresh_tables();
  uint64_t table_rebuilds() const { return table_rebuilds_; }

  // ---- evaluation ----
  /// Price `assignment` from scratch (the O(|DAG|) reference).
  PlacementCandidate make_candidate(const std::vector<uint8_t>& assignment);
  /// Reference total cost of an assignment (used by tests and benches).
  double full_cost(const std::vector<uint8_t>& assignment);

  struct MoveDelta {
    double d_compute = 0.0;
    double d_transfer = 0.0;
    double d_rtt_penalty = 0.0;
    double d_capacity_penalty = 0.0;
    double total() const {
      return d_compute + d_transfer + d_rtt_penalty + d_capacity_penalty;
    }
  };
  /// Cost change of re-hosting `node` to `to`, touching only the node's
  /// compute entry, its incident edges, and the ≤ 2·degree affected links.
  /// Does not mutate the candidate. The preview reads the precombined sum
  /// table, so d_transfer carries transfer + RTT penalty and d_rtt_penalty
  /// is 0 — consume total(), not the individual terms (apply_move reprices
  /// the split exactly).
  MoveDelta preview_move(const PlacementCandidate& c, int node, uint8_t to) const;
  /// Apply the move, updating the cached terms by the preview's deltas.
  void apply_move(PlacementCandidate& c, int node, uint8_t to) const;

  // ---- search ----
  /// Full WOA + local-search solve seeded by `seed_assignment` (Algorithm
  /// 1's two-host plan in production; anything valid in tests). The result
  /// is never worse than the seed.
  PlacementResult solve(const std::vector<uint8_t>& seed_assignment);
  /// Bounded re-optimization from the incumbent pool — the cheap re-trigger
  /// path Algorithm 2 / ApSelector handoffs invoke. Requires a prior solve().
  PlacementResult reoptimize(int iterations = 0);

  bool has_incumbent() const { return !best_.host.empty(); }
  const PlacementCandidate& incumbent() const { return best_; }
  uint64_t solves_total() const { return solves_total_; }

 private:
  /// One incident edge in the move kernel's adjacency: everything a move
  /// needs, precomputed — no dag_.edges indirection on the hot path.
  struct AdjEdge {
    size_t table_base;  ///< edge × H²: the edge's slab in sum_table_ (× 2 for
                        ///< the interleaved edge_table_)
    uint32_t other;     ///< the neighbor node (the endpoint that stays put)
    double load_bps;    ///< bytes × rate_hz
  };

  int hosts() const { return topology_.host_count(); }
  size_t link_index(uint8_t src, uint8_t dst) const {
    return static_cast<size_t>(src) * static_cast<size_t>(hosts()) + dst;
  }
  /// Fused per-(edge, src host, dst host) entry: [0] transfer seconds, [1]
  /// RTT-threshold penalty seconds. One index computation, adjacent loads.
  const double* edge_cost(uint32_t edge, uint8_t src_host, uint8_t dst_host) const {
    return &edge_table_[((static_cast<size_t>(edge) * hosts() + src_host) * hosts() +
                         dst_host) *
                        2];
  }
  /// Capacity penalty of one link carrying `load_bps` (0 on self links and
  /// unconstrained links; uses the precomputed inverse capacity — no divide).
  double link_penalty(size_t link, double load_bps) const;
  /// Re-price `c` from its assignment: the O(|DAG|) full evaluation that
  /// make_candidate/full_cost and post-jump re-pricing share.
  void price(PlacementCandidate& c) const;
  /// Shared core of preview_move/apply_move. Every affected link has `from`
  /// or `to` as an endpoint, so load changes accumulate into two dense
  /// per-host lanes (outbound/inbound; the load an edge takes off `from→o`
  /// is exactly what it puts on `to→o`) and the penalty pass enumerates the
  /// ≤ 4·H distinct links once — O(degree + H) per move. When `affected` is
  /// non-null it receives the unique (link, load-change) pairs apply_move
  /// folds into the candidate's caches.
  MoveDelta compute_move(const PlacementCandidate& c, int node, uint8_t to,
                         std::vector<std::pair<size_t, double>>* affected) const;
  /// The move kernel behind compute_move, specialized so the preview path
  /// (kCollect = false) carries no affected-list bookkeeping at all, and on
  /// kH (the host count as a compile-time constant for the common 2–4 host
  /// tiers, 0 = runtime) so lane zeroing, loop trip counts, and table
  /// addressing all constant-fold.
  template <bool kCollect, size_t kH>
  MoveDelta move_impl(const PlacementCandidate& c, int node, uint8_t to,
                      std::vector<std::pair<size_t, double>>* affected) const;
  template <bool kCollect>
  MoveDelta move_dispatch(const PlacementCandidate& c, int node, uint8_t to,
                          std::vector<std::pair<size_t, double>>* affected) const;
  void build_adjacency();
  /// Candidate update for one WOA iteration: pure function of (the
  /// candidate, the previous best, the per-candidate stream) — the unit the
  /// pool parallelizes. Returns delta-eval count performed.
  uint64_t evolve_candidate(PlacementCandidate& c, const PlacementCandidate& best,
                            uint64_t stream, double a);
  PlacementResult run_iterations(int iterations);
  void record_solve(const PlacementResult& r, const char* mode);

  PlacementDag dag_;
  HostTopology topology_;
  PlacementEngineConfig config_;
  ThreadPool* pool_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;

  // Tables (rebuilt when dag/topology generations move).
  aligned_vector<double> compute_table_;  ///< node × host seconds
  /// edge × host × host × {transfer s, rtt penalty s}, interleaved.
  aligned_vector<double> edge_table_;
  /// edge × host × host → transfer + rtt penalty, precombined. The preview
  /// path only needs the summed move delta, so it reads this half-size table
  /// (one load where edge_table_ needs two, and twice the L1 reach).
  aligned_vector<double> sum_table_;
  aligned_vector<double> inv_capacity_;   ///< 1/bandwidth per link (0 = free)
  uint64_t built_dag_generation_ = 0;
  uint64_t built_topology_generation_ = 0;
  uint64_t table_rebuilds_ = 0;

  // CSR adjacency, split by direction so the move kernel runs two
  // branch-free loops: per node, [out_offsets_[n], out_offsets_[n+1]) are
  // edges the node produces, [in_offsets_[n], in_offsets_[n+1]) edges it
  // consumes.
  std::vector<uint32_t> adj_out_offsets_;
  std::vector<uint32_t> adj_in_offsets_;
  std::vector<AdjEdge> adj_out_;
  std::vector<AdjEdge> adj_in_;

  // Optimizer state.
  std::vector<PlacementCandidate> swarm_;
  PlacementCandidate best_;
  std::vector<size_t> free_nodes_;  ///< unpinned node indices (move targets)
  double seed_cost_s_ = 0.0;        ///< cost of the seed plan this epoch
  int absolute_iteration_ = 0;  ///< rng streams key off this, so reoptimize
                                ///< epochs never replay solve() draws
  uint64_t solves_total_ = 0;

  // Telemetry handles (null when disconnected).
  telemetry::Counter* solves_counter_ = nullptr;
  telemetry::Counter* delta_evals_counter_ = nullptr;
};

/// Build the Fig. 2 pipeline as a PlacementDag: per-node cycles from the
/// profiled WorkMeter shares (Table II) scaled to `cycles_per_activation`,
/// message sizes from the real wire payloads, the velocity mux pinned to the
/// vehicle (host 0). Used by OffloadRuntime's multi-tier mode and the bench.
PlacementDag make_pipeline_dag();

}  // namespace lgv::core
