// N-host generalization of the paper's two-host world (Fig. 8): a set of
// heterogeneous hosts (the RPi / gateway / Xeon cost models of Table III)
// joined by directed links with bandwidth, RTT and loss. The PlacementEngine
// prices DAG placements against this model; the link observables can be fed
// live from the Profiler (RTT meter, receive-side bandwidth) so the model
// tracks the real channel instead of a config constant.
//
// Mutations are generation-stamped: any *material* change to a host or link
// bumps `generation()`, and consumers (the placement cost tables, like the
// LikelihoodField's map-version invalidation) rebuild only when the stamp
// moved. Feeding back an unchanged observation is free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/cost_model.h"
#include "platform/platform_spec.h"

namespace lgv::core {

struct TopologyHost {
  std::string name;
  platform::Host kind = platform::Host::kLgv;  ///< Table III cost model row
  /// Parallel width granted to kernels placed here (the §V acceleration).
  int threads = 1;
};

struct TopologyLink {
  double bandwidth_bps = 0.0;  ///< payload bytes/second (0 = unusable)
  double rtt_s = 0.0;          ///< round-trip latency
  double loss = 0.0;           ///< delivery failure fraction in [0, 1)
};

class HostTopology {
 public:
  /// Register a host; returns its index. Index 0 must be the vehicle (the
  /// LGV is where the sensors live, so it anchors every DAG).
  int add_host(TopologyHost host);

  /// Set the directed link src → dst. Self links are implicit (infinite
  /// bandwidth, zero RTT) and may not be overwritten.
  void set_link(int src, int dst, TopologyLink link);

  /// Feed one live observation into the src → dst link. Bumps the generation
  /// only when a field moved by more than `kMaterialChange` relative — the
  /// no-change path costs three compares and never invalidates cost tables.
  void observe_link(int src, int dst, double bandwidth_bps, double rtt_s,
                    double loss);

  int host_count() const { return static_cast<int>(hosts_.size()); }
  const TopologyHost& host(int i) const { return hosts_[static_cast<size_t>(i)]; }
  const platform::CostModel& cost_model(int i) const {
    return models_[static_cast<size_t>(i)];
  }
  const TopologyLink& link(int src, int dst) const {
    return links_[static_cast<size_t>(src * host_count() + dst)];
  }
  /// First host whose kind matches, or -1.
  int index_of(platform::Host kind) const;

  /// Stamp of the last material mutation (starts at 1 once any host exists).
  uint64_t generation() const { return generation_; }

  /// Round-trip time of the src → dst path (the link's rtt; 0 on self).
  double path_rtt(int src, int dst) const { return link(src, dst).rtt_s; }

  /// The paper's deployment: LGV + one remote host over the wireless channel.
  static HostTopology two_host(platform::Host remote, int remote_threads,
                               double bandwidth_bps, double rtt_s, double loss = 0.0);

  /// Three-tier edge/fog/cloud deployment: lgv → edge_gateway → cloud_server.
  /// The vehicle reaches the gateway over the WLAN (bandwidth/rtt/loss as
  /// given); the gateway reaches the datacenter over a wired backhaul
  /// (fast, adds WAN latency); the vehicle reaches the cloud through both.
  static HostTopology three_tier(int edge_threads, int cloud_threads,
                                 double wlan_bandwidth_bps, double wlan_rtt_s,
                                 double wlan_loss = 0.0,
                                 double wan_rtt_s = 0.024,
                                 double backhaul_bps = 100e6);

 private:
  /// Relative change below which an observation is "the same number".
  static constexpr double kMaterialChange = 1e-6;

  std::vector<TopologyHost> hosts_;
  std::vector<platform::CostModel> models_;
  std::vector<TopologyLink> links_;  ///< host_count² row-major, self = identity
  uint64_t generation_ = 0;
};

}  // namespace lgv::core
