#include "core/switcher.h"

#include <algorithm>

namespace lgv::core {

namespace {
// Envelope framing: topic, destination node, payload.
std::vector<uint8_t> pack_envelope(const std::string& topic, const std::string& dst,
                                   const std::vector<uint8_t>& payload) {
  WireWriter w;
  w.put_string(topic);
  w.put_string(dst);
  w.put_varint(payload.size());
  w.put_bytes(payload.data(), payload.size());
  return w.take();
}

struct Envelope {
  std::string topic;
  std::string dst;
  std::vector<uint8_t> payload;
};

Envelope unpack_envelope(const std::vector<uint8_t>& bytes) {
  WireReader r(bytes);
  Envelope e;
  e.topic = r.get_string();
  e.dst = r.get_string();
  const size_t n = r.get_varint();
  e.payload = r.get_raw(n);
  return e;
}
}  // namespace

Switcher::Switcher(mw::Graph* graph, net::WirelessChannel* channel, const SimClock* clock,
                   sim::EnergyMeter* energy, const sim::PowerModel* power,
                   size_t kernel_buffer_capacity)
    : graph_(graph),
      channel_(channel),
      clock_(clock),
      energy_(energy),
      power_(power),
      uplink_(channel, kernel_buffer_capacity),
      downlink_(channel, kernel_buffer_capacity),
      control_(channel) {}

void Switcher::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry != nullptr && telemetry->enabled() ? telemetry : nullptr;
  if (telemetry_ == nullptr) {
    uplink_bytes_total_ = nullptr;
    downlink_bytes_total_ = nullptr;
    migrations_total_ = nullptr;
    return;
  }
  uplink_.set_telemetry(telemetry_, "uplink");
  downlink_.set_telemetry(telemetry_, "downlink");
  control_.set_telemetry(telemetry_, "control");
  auto& m = telemetry_->metrics();
  uplink_bytes_total_ = &m.counter("switcher_bytes_total", {{"dir", "uplink"}});
  downlink_bytes_total_ = &m.counter("switcher_bytes_total", {{"dir", "downlink"}});
  migrations_total_ = &m.counter("switcher_state_migrations_total");
}

void Switcher::send(const mw::TopicName& topic, const mw::NodeName& dst,
                    platform::Host src_host, platform::Host dst_host,
                    std::vector<uint8_t> bytes) {
  (void)dst_host;
  const double now = clock_->now();
  stats_.max_message_bytes =
      std::max(stats_.max_message_bytes, static_cast<double>(bytes.size()));
  std::vector<uint8_t> env = pack_envelope(topic, dst, bytes);
  if (src_host == platform::Host::kLgv) {
    ++stats_.uplink_messages;
    stats_.uplink_bytes += static_cast<double>(env.size());
    if (uplink_bytes_total_ != nullptr) uplink_bytes_total_->inc(env.size());
    // Eq. 1b: uplink transmission costs the wireless controller energy.
    if (energy_ != nullptr) {
      energy_->add_wireless_energy(power_->transmission_energy(
          static_cast<double>(env.size()), channel_->effective_uplink_bps()));
    }
    uplink_.send(std::move(env), now);
  } else {
    ++stats_.downlink_messages;
    stats_.downlink_bytes += static_cast<double>(env.size());
    if (downlink_bytes_total_ != nullptr) downlink_bytes_total_->inc(env.size());
    downlink_.send(std::move(env), now);
  }
}

void Switcher::deliver(const net::Packet& packet) {
  const Envelope e = unpack_envelope(packet.payload);
  if (e.topic == "__stream__") {
    if (stream_callback_) stream_callback_(packet.send_time, clock_->now());
    return;
  }
  graph_->deliver_serialized(e.topic, e.dst, e.payload);
}

void Switcher::step() {
  const double now = clock_->now();
  uplink_.step(now);
  downlink_.step(now);
  control_.step(now);
  for (const net::Packet& p : uplink_.poll_delivered(now)) deliver(p);
  for (const net::Packet& p : downlink_.poll_delivered(now)) deliver(p);
  for (const net::Packet& p : control_.poll_delivered(now)) deliver(p);
}

double Switcher::migrate_state(double bytes, bool uplink) {
  ++stats_.state_migrations;
  stats_.state_migration_bytes += bytes;
  const double now = clock_->now();
  if (uplink && energy_ != nullptr) {
    energy_->add_wireless_energy(
        power_->transmission_energy(bytes, channel_->effective_uplink_bps()));
  }
  // Reliable transfer time: serialization at the effective rate of the
  // direction the bytes actually travel — LGV→cloud state push on the uplink,
  // cloud→LGV pull-back on the downlink — plus one latency sample; degraded
  // links stretch it via the retry model.
  const double rate = std::max(1e5, uplink ? channel_->effective_uplink_bps()
                                           : channel_->effective_downlink_bps());
  const double done = now + bytes * 8.0 / rate + channel_->sample_latency(1200);
  if (telemetry_ != nullptr) {
    migrations_total_->inc();
    // The migration freeze window as a span on the network lane.
    telemetry_->tracer().span("switcher.migrate", "network", "switcher", now,
                              done - now,
                              {{"bytes", std::to_string(bytes)},
                               {"dir", uplink ? "uplink" : "downlink"}});
  }
  return done;
}

void Switcher::send_stream_packet() {
  // 48 B velocity message (§III-A) as the fixed-rate measurement stream.
  std::vector<uint8_t> payload(48, 0);
  std::vector<uint8_t> env = pack_envelope("__stream__", "lgv", payload);
  ++stats_.downlink_messages;
  stats_.downlink_bytes += static_cast<double>(env.size());
  if (downlink_bytes_total_ != nullptr) downlink_bytes_total_->inc(env.size());
  downlink_.send(std::move(env), clock_->now());
}

}  // namespace lgv::core
