#include "core/switcher.h"

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <string_view>

#include "common/crc32c.h"
#include "common/serialization.h"

namespace lgv::core {

namespace {

void store_u16(std::vector<uint8_t>& b, size_t at, uint16_t v) {
  b[at] = static_cast<uint8_t>(v & 0xFF);
  b[at + 1] = static_cast<uint8_t>(v >> 8);
}
void store_u32(std::vector<uint8_t>& b, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) b[at + i] = static_cast<uint8_t>((v >> (8 * i)) & 0xFF);
}
uint16_t load_u16(const std::vector<uint8_t>& b, size_t at) {
  return static_cast<uint16_t>(b[at] | (b[at + 1] << 8));
}
uint32_t load_u32(const std::vector<uint8_t>& b, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[at + i]) << (8 * i);
  return v;
}

// Envelope body carried inside a frame: topic, destination node, payload.
std::vector<uint8_t> pack_envelope(const std::string& topic, const std::string& dst,
                                   const std::vector<uint8_t>& payload) {
  WireWriter w;
  w.put_string(topic);
  w.put_string(dst);
  w.put_varint(payload.size());
  w.put_bytes(payload.data(), payload.size());
  return w.take();
}

struct Envelope {
  std::string topic;
  std::string dst;
  std::vector<uint8_t> payload;
};

Envelope unpack_envelope(const uint8_t* data, size_t size) {
  WireReader r(data, size);
  Envelope e;
  e.topic = r.get_string();
  e.dst = r.get_string();
  const size_t n = r.get_varint();
  e.payload = r.get_raw(n);
  return e;
}

/// Flip one random bit in each byte selected by an independent per-byte
/// Bernoulli(p); geometric gap sampling, cost proportional to flips. The
/// migration path uses this to damage its chunk frames the same way the
/// links damage datagrams.
void flip_random_bits(std::vector<uint8_t>& bytes, double p, Rng& rng) {
  if (p <= 0.0 || bytes.empty()) return;
  std::geometric_distribution<size_t> gap(p);
  for (size_t i = gap(rng.engine()); i < bytes.size(); i += 1 + gap(rng.engine())) {
    bytes[i] ^= static_cast<uint8_t>(1u << rng.uniform_int(0, 7));
  }
}

// The CRC covers bytes [0,14) — everything before the CRC field — continued
// over bytes [18, end): for a v1 frame that is exactly the payload, for a v2
// frame the trace ids plus the payload. One formula for both versions, and
// the trace context is integrity-protected.
uint32_t frame_crc(const std::vector<uint8_t>& frame) {
  const uint32_t crc_header = crc32c(frame.data(), 14);
  return crc32c(frame.data() + kFrameHeaderSizeV1, frame.size() - kFrameHeaderSizeV1,
                crc_header);
}

constexpr uint16_t kMigrationTopicId = 0xFFFF;
constexpr uint8_t kDirUplink = 0;
constexpr uint8_t kDirDownlink = 1;
constexpr uint8_t kDirControl = 2;

}  // namespace

std::vector<uint8_t> frame_wrap(uint8_t direction, uint16_t topic_id,
                                uint32_t seq, const std::vector<uint8_t>& payload,
                                uint32_t trace_id, uint32_t span_id,
                                uint16_t session_id) {
  // Session 0 emits v2 so single-vehicle traffic stays byte-identical to the
  // previous wire format (golden-frame compatibility); a fleet's nonzero
  // sessions ride the two extra v3 bytes.
  const bool v3 = session_id != 0;
  const size_t header = v3 ? kFrameHeaderSizeV3 : kFrameHeaderSize;
  std::vector<uint8_t> f(header + payload.size());
  store_u16(f, 0, kFrameMagic);
  f[2] = v3 ? kFrameVersion : uint8_t{2};
  f[3] = direction;
  store_u16(f, 4, topic_id);
  store_u32(f, 6, seq);
  store_u32(f, 10, static_cast<uint32_t>(payload.size()));
  store_u32(f, 18, trace_id);
  store_u32(f, 22, span_id);
  if (v3) store_u16(f, 26, session_id);
  std::copy(payload.begin(), payload.end(), f.begin() + header);
  store_u32(f, 14, frame_crc(f));
  return f;
}

std::vector<uint8_t> frame_wrap_v1(uint8_t direction, uint16_t topic_id,
                                   uint32_t seq, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> f(kFrameHeaderSizeV1 + payload.size());
  store_u16(f, 0, kFrameMagic);
  f[2] = 1;
  f[3] = direction;
  store_u16(f, 4, topic_id);
  store_u32(f, 6, seq);
  store_u32(f, 10, static_cast<uint32_t>(payload.size()));
  std::copy(payload.begin(), payload.end(), f.begin() + kFrameHeaderSizeV1);
  store_u32(f, 14, frame_crc(f));
  return f;
}

const char* frame_check(const std::vector<uint8_t>& frame) {
  if (frame.size() < kFrameHeaderSizeV1) return "runt";
  if (load_u16(frame, 0) != kFrameMagic) return "bad_magic";
  const uint8_t version = frame[2];
  if (version == 0 || version > kFrameVersion) return "bad_version";
  const size_t header = version == 1   ? kFrameHeaderSizeV1
                        : version == 2 ? kFrameHeaderSize
                                       : kFrameHeaderSizeV3;
  if (frame.size() < header) return "runt";
  if (load_u32(frame, 10) != frame.size() - header) {
    return "length_mismatch";
  }
  if (load_u32(frame, 14) != frame_crc(frame)) return "crc";
  return nullptr;
}

uint32_t frame_seq(const std::vector<uint8_t>& frame) { return load_u32(frame, 6); }

size_t frame_header_size(const std::vector<uint8_t>& frame) {
  if (frame.size() <= 2) return kFrameHeaderSize;
  switch (frame[2]) {
    case 1:
      return kFrameHeaderSizeV1;
    case 2:
      return kFrameHeaderSize;
    default:
      return kFrameHeaderSizeV3;
  }
}

uint32_t frame_trace_id(const std::vector<uint8_t>& frame) {
  return frame_header_size(frame) == kFrameHeaderSizeV1 ? 0 : load_u32(frame, 18);
}

uint32_t frame_span_id(const std::vector<uint8_t>& frame) {
  return frame_header_size(frame) == kFrameHeaderSizeV1 ? 0 : load_u32(frame, 22);
}

uint16_t frame_session_id(const std::vector<uint8_t>& frame) {
  return frame_header_size(frame) == kFrameHeaderSizeV3 ? load_u16(frame, 26) : 0;
}

Switcher::Switcher(mw::Graph* graph, net::WirelessChannel* channel, const SimClock* clock,
                   sim::EnergyMeter* energy, const sim::PowerModel* power,
                   size_t kernel_buffer_capacity)
    : graph_(graph),
      channel_(channel),
      clock_(clock),
      energy_(energy),
      power_(power),
      uplink_(channel, kernel_buffer_capacity),
      downlink_(channel, kernel_buffer_capacity),
      control_(channel) {}

void Switcher::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry != nullptr && telemetry->enabled() ? telemetry : nullptr;
  if (telemetry_ == nullptr) {
    uplink_bytes_total_ = nullptr;
    downlink_bytes_total_ = nullptr;
    migrations_total_ = nullptr;
    return;
  }
  uplink_.set_telemetry(telemetry_, "uplink");
  downlink_.set_telemetry(telemetry_, "downlink");
  control_.set_telemetry(telemetry_, "control");
  auto& m = telemetry_->metrics();
  uplink_bytes_total_ = &m.counter("switcher_bytes_total", {{"dir", "uplink"}});
  downlink_bytes_total_ = &m.counter("switcher_bytes_total", {{"dir", "downlink"}});
  migrations_total_ = &m.counter("switcher_state_migrations_total");
}

uint16_t Switcher::topic_id(const std::string& topic) {
  const auto it = topic_ids_.find(topic);
  if (it != topic_ids_.end()) return it->second;
  // kMigrationTopicId is reserved for the state-transfer stream.
  const auto id = static_cast<uint16_t>(topic_ids_.size());
  topic_ids_.emplace(topic, id);
  return id;
}

void Switcher::send(const mw::TopicName& topic, const mw::NodeName& dst,
                    platform::Host src_host, platform::Host dst_host,
                    std::vector<uint8_t> bytes) {
  (void)dst_host;
  const double now = clock_->now();
  stats_.max_message_bytes =
      std::max(stats_.max_message_bytes, static_cast<double>(bytes.size()));
  const bool up = src_host == platform::Host::kLgv;
  const uint8_t dir = up ? kDirUplink : kDirDownlink;
  const uint16_t tid = topic_id(topic);
  const uint64_t key = (static_cast<uint64_t>(session_id_) << 32) |
                       (static_cast<uint64_t>(dir) << 16) | tid;
  // The sender's TraceContext rides the frame header so the receiving host
  // re-enters the same trace on delivery.
  telemetry::TraceContext ctx;
  if (telemetry_ != nullptr) ctx = telemetry_->tracer().current();
  std::vector<uint8_t> frame =
      frame_wrap(dir, tid, next_seq_[key]++, pack_envelope(topic, dst, bytes),
                 ctx.trace_id, ctx.span_id, session_id_);
  if (up) {
    ++stats_.uplink_messages;
    stats_.uplink_bytes += static_cast<double>(frame.size());
    if (uplink_bytes_total_ != nullptr) uplink_bytes_total_->inc(frame.size());
    // Eq. 1b: uplink transmission costs the wireless controller energy.
    if (energy_ != nullptr) {
      energy_->add_wireless_energy(power_->transmission_energy(
          static_cast<double>(frame.size()), channel_->effective_uplink_bps()));
    }
    uplink_.send(std::move(frame), now);
  } else {
    ++stats_.downlink_messages;
    stats_.downlink_bytes += static_cast<double>(frame.size());
    if (downlink_bytes_total_ != nullptr) downlink_bytes_total_->inc(frame.size());
    downlink_.send(std::move(frame), now);
  }
}

void Switcher::reject_frame(const char* cause, uint64_t* counter) {
  ++stats_.frames_rejected;
  ++*counter;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("net_frames_rejected_total", {{"cause", cause}}).inc();
    telemetry_->tracer().instant_now("integrity.reject", "network", "switcher",
                                     {{"cause", cause}});
    // Post-mortem hook: the first reject of a run snapshots the flight
    // recorder (repeat triggers are no-ops inside dump_flight).
    telemetry_->dump_flight("integrity_reject");
  }
}

void Switcher::deliver(const net::Packet& packet) {
  const std::vector<uint8_t>& b = packet.payload;
  if (const char* cause = frame_check(b)) {
    const std::string_view c(cause);
    uint64_t* counter = c == "runt"             ? &stats_.rejected_runt
                        : c == "bad_magic"      ? &stats_.rejected_magic
                        : c == "bad_version"    ? &stats_.rejected_version
                        : c == "length_mismatch" ? &stats_.rejected_length
                                                 : &stats_.rejected_crc;
    reject_frame(cause, counter);
    return;
  }
  const size_t header = frame_header_size(b);
  if (header == kFrameHeaderSizeV1) {
    // Legacy sender: deliverable, just without trace context.
    ++stats_.frames_v1;
    if (telemetry_ != nullptr) {
      telemetry_->metrics().counter("net_frames_v1_total").inc();
    }
  }
  // The session term keeps each vehicle's stream independently sequenced: in
  // a fleet, vehicle 2's seq-5 scan must not dedupe against vehicle 1's.
  const uint64_t key = (static_cast<uint64_t>(frame_session_id(b)) << 32) |
                       (static_cast<uint64_t>(b[3]) << 16) | load_u16(b, 4);
  const uint32_t seq = frame_seq(b);
  const auto seen = last_delivered_seq_.find(key);
  if (seen != last_delivered_seq_.end()) {
    if (seq == seen->second) {
      reject_frame("duplicate", &stats_.rejected_duplicate);
      return;
    }
    if (seq < seen->second) {
      // Valid but older than what the subscriber already has: freshness over
      // reliability — a reordered scan must never overwrite a newer one.
      ++stats_.stale_dropped;
      if (telemetry_ != nullptr) {
        telemetry_->metrics().counter("msg_stale_dropped_total").inc();
        telemetry_->tracer().instant_now("integrity.reject", "network", "switcher",
                                         {{"cause", "stale"}});
      }
      return;
    }
  }
  // Re-enter the sender's trace for everything this delivery causes: the
  // wire spans below and the subscriber enqueue both parent under the span
  // that published the message on the other host. A frame without context
  // (v1, or sent outside a trace) deliberately clears the ambient context so
  // unrelated work is not stitched in.
  telemetry::Tracer* tracer = telemetry_ != nullptr ? &telemetry_->tracer() : nullptr;
  telemetry::ScopedTraceContext scope(
      tracer, telemetry::TraceContext{frame_trace_id(b), frame_span_id(b)});
  if (tracer != nullptr) {
    const uint8_t dir = b[3];
    const char* lane = dir == kDirUplink     ? "uplink"
                       : dir == kDirDownlink ? "downlink"
                                             : "control";
    const double now = clock_->now();
    // Kernel-buffer dwell and air time as separate spans, so the critical
    // path can tell queueing from propagation.
    if (packet.air_time > packet.send_time) {
      tracer->span("net.queue", "network", lane, packet.send_time,
                   packet.air_time - packet.send_time);
    }
    const double air_start = std::max(packet.send_time, packet.air_time);
    const uint32_t wire_id =
        tracer->span("net.wire", "network", lane, air_start, now - air_start,
                     {{"bytes", std::to_string(b.size())}});
    if (wire_id != 0) {
      tracer->set_current(telemetry::TraceContext{frame_trace_id(b), wire_id});
    }
  }
  // Hardened decode boundary: a frame that passed its CRC can still carry an
  // envelope this build can't decode (version skew, message-schema bug);
  // that's a counted drop, never an exception escaping the network stack.
  try {
    const Envelope e = unpack_envelope(b.data() + header, b.size() - header);
    if (e.topic == "__stream__") {
      if (stream_callback_) stream_callback_(packet.send_time, clock_->now());
    } else {
      graph_->deliver_serialized(e.topic, e.dst, e.payload);
    }
  } catch (const std::exception&) {
    reject_frame("decode", &stats_.rejected_decode);
    return;
  }
  last_delivered_seq_[key] = seq;
}

void Switcher::step() {
  const double now = clock_->now();
  uplink_.step(now);
  downlink_.step(now);
  control_.step(now);
  for (const net::Packet& p : uplink_.poll_delivered(now)) deliver(p);
  for (const net::Packet& p : downlink_.poll_delivered(now)) deliver(p);
  for (const net::Packet& p : control_.poll_delivered(now)) deliver(p);
}

MigrationResult Switcher::migrate_state(double bytes, bool uplink, const char* mode) {
  ++stats_.state_migrations;
  if (std::strcmp(mode, "failover") == 0) ++stats_.failover_migrations;
  stats_.state_migration_bytes += bytes;
  const double now = clock_->now();
  // Reliable transfer at the effective rate of the direction the bytes
  // actually travel — LGV→cloud state push on the uplink, cloud→LGV pull-back
  // on the downlink; degraded links stretch it via the retry model.
  const double rate = std::max(1e5, uplink ? channel_->effective_uplink_bps()
                                           : channel_->effective_downlink_bps());
  const net::ChannelOverride& ov = channel_->override_state();
  const double truncate_p = std::clamp(ov.truncate_prob, 0.0, 1.0);

  // Small chunks keep the per-chunk CRC pass probability workable under a
  // corruption burst (at 1e-4/byte a 4 KB chunk still passes ~2/3 of tries);
  // a torn transfer costs bounded retransmissions, never torn state.
  constexpr size_t kChunk = 4096;
  constexpr int kMaxChunkTries = 8;
  constexpr double kCommitTimeout = 30.0;  // virtual seconds, per attempt
  constexpr double kNakDelay = 0.02;       // receiver NAK + sender turnaround

  const auto total_bytes = static_cast<uint64_t>(std::max(0.0, bytes));
  const uint64_t n_chunks = std::max<uint64_t>(1, (total_bytes + kChunk - 1) / kChunk);

  MigrationResult result;
  result.chunks = n_chunks;

  // The transfer is simulated synchronously in virtual time: `t` advances
  // through every (re)transmission, so the returned completion honestly
  // includes the cost of the damage the wire faults inflicted.
  double t = now;
  for (int attempt = 1; attempt <= 2 && !result.committed; ++attempt) {
    result.attempts = attempt;
    const double attempt_start = t;
    t += channel_->sample_latency(1200);  // connection/handshake
    bool aborted = false;
    uint64_t remaining = total_bytes;
    for (uint64_t c = 0; c < n_chunks && !aborted; ++c) {
      const auto chunk_bytes = static_cast<size_t>(
          std::min<uint64_t>(kChunk, std::max<uint64_t>(remaining, 1)));
      remaining -= std::min<uint64_t>(remaining, chunk_bytes);
      // Genuinely build, frame, damage and verify each chunk — the CRC
      // verdict is computed from the bytes, not assumed from a probability.
      std::vector<uint8_t> payload(chunk_bytes);
      for (size_t i = 0; i < chunk_bytes; ++i) {
        payload[i] = static_cast<uint8_t>((c + i) & 0xFF);
      }
      bool ok = false;
      for (int tries = 0; tries < kMaxChunkTries && !ok && !aborted; ++tries) {
        std::vector<uint8_t> frame =
            frame_wrap(kDirControl, kMigrationTopicId, static_cast<uint32_t>(c), payload);
        t += static_cast<double>(frame.size()) * 8.0 / rate;
        if (uplink && energy_ != nullptr) {
          energy_->add_wireless_energy(
              power_->transmission_energy(static_cast<double>(frame.size()), rate));
        }
        if (truncate_p > 0.0 && rng_.bernoulli(truncate_p) && frame.size() > 1) {
          frame.resize(static_cast<size_t>(
              rng_.uniform_int(0, static_cast<int>(frame.size()) - 1)));
        }
        flip_random_bits(frame, ov.corrupt_bit_prob, rng_);
        ok = frame_check(frame) == nullptr;
        if (!ok) {
          ++result.chunk_retransmits;
          t += kNakDelay;
        }
        if (t - attempt_start > kCommitTimeout) aborted = true;  // commit timeout
      }
      if (!ok) aborted = true;
    }
    if (!aborted) {
      // Commit record: receiver's digest acknowledgment; the transfer only
      // counts once this round-trips intact.
      const std::vector<uint8_t> commit(64, 0xC3);
      bool ok = false;
      for (int tries = 0;
           tries < kMaxChunkTries && !ok && t - attempt_start <= kCommitTimeout;
           ++tries) {
        std::vector<uint8_t> frame =
            frame_wrap(kDirControl, kMigrationTopicId, 0xFFFFFFFFu, commit);
        t += static_cast<double>(frame.size()) * 8.0 / rate +
             channel_->sample_latency(frame.size());
        if (truncate_p > 0.0 && rng_.bernoulli(truncate_p) && frame.size() > 1) {
          frame.resize(static_cast<size_t>(
              rng_.uniform_int(0, static_cast<int>(frame.size()) - 1)));
        }
        flip_random_bits(frame, ov.corrupt_bit_prob, rng_);
        ok = frame_check(frame) == nullptr;
        if (!ok) {
          ++result.chunk_retransmits;
          t += kNakDelay;
        }
      }
      result.committed = ok;
    }
    if (!result.committed && attempt == 1) {
      t += 0.1;  // tear down + reconnect before the one retry
    }
  }
  if (!result.committed) ++stats_.migrations_aborted;
  result.completion = t;

  if (telemetry_ != nullptr) {
    migrations_total_->inc();
    telemetry_->metrics()
        .counter("migration_bytes_total", {{"mode", mode}})
        .inc(static_cast<uint64_t>(std::max(0.0, bytes)));
    if (!result.committed) {
      telemetry_->metrics().counter("switcher_migrations_aborted_total").inc();
    }
    // The migration freeze window as a span on the network lane.
    telemetry_->tracer().span(
        "switcher.migrate", "network", "switcher", now, t - now,
        {{"bytes", std::to_string(bytes)},
         {"mode", mode},
         {"dir", uplink ? "uplink" : "downlink"},
         {"committed", result.committed ? "true" : "false"},
         {"chunks", std::to_string(result.chunks)},
         {"chunk_retransmits", std::to_string(result.chunk_retransmits)},
         {"attempts", std::to_string(result.attempts)}});
  }
  return result;
}

void Switcher::send_stream_packet() {
  // 48 B velocity message (§III-A) as the fixed-rate measurement stream.
  const std::vector<uint8_t> payload(48, 0);
  const uint16_t tid = topic_id("__stream__");
  const uint64_t key = (static_cast<uint64_t>(session_id_) << 32) |
                       (static_cast<uint64_t>(kDirDownlink) << 16) | tid;
  telemetry::TraceContext ctx;
  if (telemetry_ != nullptr) ctx = telemetry_->tracer().current();
  std::vector<uint8_t> frame =
      frame_wrap(kDirDownlink, tid, next_seq_[key]++,
                 pack_envelope("__stream__", "lgv", payload), ctx.trace_id,
                 ctx.span_id, session_id_);
  ++stats_.downlink_messages;
  stats_.downlink_bytes += static_cast<double>(frame.size());
  if (downlink_bytes_total_ != nullptr) downlink_bytes_total_->inc(frame.size());
  downlink_.send(std::move(frame), clock_->now());
}

}  // namespace lgv::core
