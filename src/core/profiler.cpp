#include "core/profiler.h"

#include <algorithm>
#include <cmath>

namespace lgv::core {

Profiler::Profiler(ProfilerConfig config, Point2D wap_position)
    : config_(config),
      bandwidth_(config.bandwidth_window_s),
      direction_(wap_position, config.direction_history) {}

void Profiler::note_change(double before, double after) {
  const double scale = std::max({std::fabs(before), std::fabs(after), 1e-12});
  if (std::fabs(after - before) > 1e-9 * scale) ++generation_;
}

void Profiler::record_node_time(NodeId node, platform::Host host, double seconds) {
  const auto key = std::make_pair(node, host);
  const auto it = node_times_.find(key);
  if (it == node_times_.end()) {
    node_times_[key] = seconds;
    ++generation_;
  } else {
    const double before = it->second;
    it->second = config_.ema_alpha * seconds + (1.0 - config_.ema_alpha) * it->second;
    note_change(before, it->second);
  }
}

std::optional<double> Profiler::node_time(NodeId node, platform::Host host) const {
  const auto it = node_times_.find(std::make_pair(node, host));
  if (it == node_times_.end()) return std::nullopt;
  return it->second;
}

void Profiler::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr || !telemetry->enabled()) {
    rtt_ms_ = nullptr;
    vdp_local_s_ = nullptr;
    vdp_remote_s_ = nullptr;
    bandwidth_hz_ = nullptr;
    signal_direction_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  rtt_ms_ = &m.histogram("net_rtt_ms", {}, telemetry::latency_bounds_ms());
  vdp_local_s_ = &m.histogram("vdp_makespan_s", {{"placement", "local"}});
  vdp_remote_s_ = &m.histogram("vdp_makespan_s", {{"placement", "remote"}});
  bandwidth_hz_ = &m.gauge("alg2_bandwidth_hz");
  signal_direction_ = &m.gauge("alg2_signal_direction");
}

void Profiler::record_vdp_makespan(VdpPlacement placement, double seconds) {
  const auto it = vdp_times_.find(placement);
  if (it == vdp_times_.end()) {
    vdp_times_[placement] = seconds;
    ++generation_;
  } else {
    const double before = it->second;
    it->second = config_.ema_alpha * seconds + (1.0 - config_.ema_alpha) * it->second;
    note_change(before, it->second);
  }
  telemetry::Histogram* h =
      placement == VdpPlacement::kLocal ? vdp_local_s_ : vdp_remote_s_;
  if (h != nullptr) h->observe(seconds);
}

std::optional<double> Profiler::vdp_makespan(VdpPlacement placement) const {
  const auto it = vdp_times_.find(placement);
  if (it == vdp_times_.end()) return std::nullopt;
  return it->second;
}

NetworkObservation Profiler::observe(double now) {
  NetworkObservation obs;
  obs.bandwidth_hz = bandwidth_.rate(now);
  obs.signal_direction = direction_.direction();
  if (bandwidth_hz_ != nullptr) {
    bandwidth_hz_->set(obs.bandwidth_hz);
    signal_direction_->set(obs.signal_direction);
  }
  return obs;
}

}  // namespace lgv::core
