#include "core/profiler.h"

namespace lgv::core {

Profiler::Profiler(ProfilerConfig config, Point2D wap_position)
    : config_(config),
      bandwidth_(config.bandwidth_window_s),
      direction_(wap_position, config.direction_history) {}

void Profiler::record_node_time(NodeId node, platform::Host host, double seconds) {
  const auto key = std::make_pair(node, host);
  const auto it = node_times_.find(key);
  if (it == node_times_.end()) {
    node_times_[key] = seconds;
  } else {
    it->second = config_.ema_alpha * seconds + (1.0 - config_.ema_alpha) * it->second;
  }
}

std::optional<double> Profiler::node_time(NodeId node, platform::Host host) const {
  const auto it = node_times_.find(std::make_pair(node, host));
  if (it == node_times_.end()) return std::nullopt;
  return it->second;
}

void Profiler::record_vdp_makespan(VdpPlacement placement, double seconds) {
  const auto it = vdp_times_.find(placement);
  if (it == vdp_times_.end()) {
    vdp_times_[placement] = seconds;
  } else {
    it->second = config_.ema_alpha * seconds + (1.0 - config_.ema_alpha) * it->second;
  }
}

std::optional<double> Profiler::vdp_makespan(VdpPlacement placement) const {
  const auto it = vdp_times_.find(placement);
  if (it == vdp_times_.end()) return std::nullopt;
  return it->second;
}

NetworkObservation Profiler::observe(double now) {
  NetworkObservation obs;
  obs.bandwidth_hz = bandwidth_.rate(now);
  obs.signal_direction = direction_.direction();
  return obs;
}

}  // namespace lgv::core
