// The analytical model of §III-A (Eqs. 1a–1d, 2a–2c): the closed-form
// relationships between computation placement, energy and mission time that
// drive every offloading decision in the framework.
#pragma once

namespace lgv::core {

/// Eq. 2c: the maximum safe velocity given the VDP processing time tp (s),
/// the acceleration limit a_max (m/s²) and the required stopping distance d
/// (m):  v_max = a_max · (√(tp² + 2d/a_max) − tp).
/// Monotonically decreasing in tp; ceiling √(2·d·a_max) at tp = 0.
double max_velocity(double tp, double a_max, double stopping_distance);

/// Inverse of Eq. 2c: the largest tp that still allows velocity v.
double max_processing_time_for_velocity(double v, double a_max, double stopping_distance);

/// Eq. 2b: standby-time proxy — the decision latency is the sum of robot
/// processing time, cloud processing time and network latency.
double vdp_makespan(double t_robot, double t_cloud, double t_network);

/// Eq. 1b: transmission energy for D bytes at uplink rate R (bits/s) with
/// transmit power P (W).
double transmission_energy(double p_trans_w, double bytes, double uplink_bps);

/// Eq. 1c: embedded-computer dynamic power at cycle rate L (cycles/s) and
/// clock f (GHz): P = k · L · f².
double compute_power(double k, double cycles_per_sec, double freq_ghz);

/// Eq. 1d: motor power P_m = P_l + m(a + gμ)v.
double motor_power(double p_loss_w, double mass_kg, double accel, double friction,
                   double velocity);

/// Eq. 2c-based estimate of moving time over `distance` meters at the
/// velocity allowed by `tp` (used by Algorithm 1's what-if comparison).
double estimated_moving_time(double distance, double tp, double a_max,
                             double stopping_distance);

}  // namespace lgv::core
