#include "core/network_quality.h"

namespace lgv::core {

VdpPlacement NetworkQualityController::update(const NetworkObservation& obs) {
  int vote = 0;  // +1 → wants remote, −1 → wants local
  if (obs.bandwidth_hz < config_.bandwidth_threshold_hz && obs.signal_direction < 0.0) {
    vote = -1;
  } else if (obs.bandwidth_hz > config_.bandwidth_threshold_hz &&
             obs.signal_direction > 0.0) {
    vote = +1;
  }

  if (vote == 0) {
    pending_ = 0;
    return placement_;
  }
  const VdpPlacement wanted = vote > 0 ? VdpPlacement::kRemote : VdpPlacement::kLocal;
  if (wanted == placement_) {
    pending_ = 0;
    return placement_;
  }
  pending_ += vote;
  if (pending_ >= config_.hysteresis_samples || -pending_ >= config_.hysteresis_samples) {
    placement_ = wanted;
    pending_ = 0;
    ++switches_;
  }
  return placement_;
}

}  // namespace lgv::core
