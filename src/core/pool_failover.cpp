#include "core/pool_failover.h"

#include <algorithm>

#include "common/rng.h"

namespace lgv::core {

double busy_backoff_delay(uint64_t stream, uint32_t attempt, double base_s,
                          double cap_s) {
  if (attempt == 0) return 0.0;
  // Saturating exponential: past ~16 doublings the cap dominates anyway.
  const uint32_t exp = std::min(attempt - 1, 16u);
  const double nominal = std::min(base_s * static_cast<double>(1u << exp), cap_s);
  const uint64_t h = splitmix64(stream + attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // U[0,1)
  return nominal * (0.75 + 0.5 * u);
}

PoolFailoverClient::PoolFailoverClient(WorkerPool* primary, WorkerPool* standby,
                                       uint64_t seed, std::string label,
                                       FailoverConfig config)
    : label_(std::move(label)), config_(config), stream_(splitmix64(seed)) {
  targets_[0].pool = primary;
  targets_[1].pool = standby;
  targets_[0].breaker.open_s = config_.breaker_open_s;
  targets_[1].breaker.open_s = config_.breaker_open_s;
}

void PoolFailoverClient::record_failure(int idx, double now) {
  Breaker& b = targets_[idx].breaker;
  if (++b.failures >= config_.breaker_threshold) {
    // Open: the pool is not probed again until the interval elapses; each
    // reopen doubles the interval (capped) so a pool that stays dead costs
    // O(log) probes, not one per tick.
    b.open_until = now + b.open_s;
    b.open_s = std::min(b.open_s * 2.0, config_.breaker_open_max_s);
    b.failures = 0;
    ++b.opens;
    ++breaker_opens_;
  }
}

void PoolFailoverClient::bump_backoff(double now) {
  ++busy_streak_;
  retry_at_ = now + busy_backoff_delay(stream_, busy_streak_,
                                       config_.backoff_base_s,
                                       config_.backoff_cap_s);
}

PoolFailoverClient::Acquire PoolFailoverClient::acquire(double now) {
  Acquire a;
  if (now < retry_at_) {
    a.blocked = "backoff";
    return a;
  }
  bool any_pool = false;
  for (int idx = 0; idx < 2; ++idx) {
    Target& t = targets_[idx];
    if (t.pool == nullptr) continue;
    any_pool = true;
    if (t.breaker.open_until > now) continue;  // breaker open: skip this pool
    // Live session? Traffic renews it; an eviction means a fresh id below.
    bool admitted = t.session != 0 && t.pool->has_session(t.session) &&
                    t.pool->renew(t.session, now);
    if (!admitted) {
      const Admission adm = t.pool->open_session(label_, now);
      t.session = adm.session;
      admitted = !adm.busy && adm.session != 0;
      if (!admitted) {
        // One failure per acquire: the refusal counts against this pool's
        // breaker and opens the backoff window. Falling through to the
        // standby immediately would stampede it with the whole fleet's
        // first-refusal traffic; the breaker is what authorizes the switch.
        record_failure(idx, now);
        bump_backoff(now);
        a.blocked = "admission";
        a.pool_index = idx;
        return a;
      }
    }
    active_ = idx;
    a.pool = t.pool;
    a.session = t.session;
    a.pool_index = idx;
    a.needs_migration = idx != committed_;
    return a;
  }
  a.blocked = any_pool ? "breaker" : "admission";
  return a;
}

void PoolFailoverClient::on_busy(double now) {
  record_failure(active_, now);
  bump_backoff(now);
}

void PoolFailoverClient::on_served() {
  busy_streak_ = 0;
  retry_at_ = 0.0;
  Breaker& b = targets_[active_].breaker;
  b.failures = 0;
  b.open_s = config_.breaker_open_s;  // half-open probe succeeded: full reset
}

void PoolFailoverClient::on_pool_loss(double now) {
  record_failure(active_, now);
  bump_backoff(now);
}

void PoolFailoverClient::migration_committed(int pool_index) {
  if (pool_index != committed_) ++failovers_;
  committed_ = pool_index;
}

void PoolFailoverClient::migration_aborted(double now) {
  record_failure(active_, now);
  bump_backoff(now);
}

bool PoolFailoverClient::breaker_open(int pool_index, double now) const {
  return targets_[pool_index].breaker.open_until > now;
}

SessionId PoolFailoverClient::session(int pool_index) const {
  return targets_[pool_index].session;
}

}  // namespace lgv::core
