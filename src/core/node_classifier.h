// Node taxonomy of §IV / Fig. 4: Energy-Critical Nodes (ECN) and membership
// in the Velocity-Dependent Path (VDP) partition the workload into
//   T1 = ECN ∉ VDP   (SLAM)            — offload for energy
//   T2 = ¬ECN ∈ VDP  (Velocity Mux)    — keep local (no gain from offload)
//   T3 = ECN ∈ VDP   (CostmapGen, Path Tracking) — offload for both goals
//   T4 = ¬ECN ∉ VDP  (AMCL, Path Planning, Exploration) — keep local
#pragma once

#include <map>
#include <string>
#include <vector>

#include "platform/work_meter.h"

namespace lgv::core {

/// The functional nodes of the Fig. 2 pipeline.
enum class NodeId {
  kLocalization,  ///< AMCL (with map) or SLAM (without map)
  kCostmapGen,
  kPathPlanning,
  kExploration,
  kPathTracking,
  kVelocityMux,
};

const char* node_name(NodeId id);
std::vector<NodeId> all_nodes();

enum class WorkloadKind { kNavigationWithMap, kExplorationWithoutMap };

enum class NodeClass { kT1, kT2, kT3, kT4 };

struct NodeTraits {
  bool energy_critical = false;
  bool on_vdp = false;

  NodeClass node_class() const {
    if (energy_critical) return on_vdp ? NodeClass::kT3 : NodeClass::kT1;
    return on_vdp ? NodeClass::kT2 : NodeClass::kT4;
  }
};

class NodeClassifier {
 public:
  /// ECN threshold: a node is energy-critical when it accounts for at least
  /// this fraction of total workload cycles (Table II identifies nodes at
  /// ≥ ~12% as ECNs).
  explicit NodeClassifier(double ecn_fraction_threshold = 0.10)
      : threshold_(ecn_fraction_threshold) {}

  /// Static classification from the paper's Table II analysis.
  static NodeTraits static_traits(NodeId id, WorkloadKind workload);

  /// Measurement-driven classification from profiled cycle shares. VDP
  /// membership is structural (CostmapGen → PathTracking → VelocityMux);
  /// ECN membership comes from the measured fractions.
  std::map<NodeId, NodeTraits> classify(const platform::WorkMeter& meter,
                                        WorkloadKind workload) const;

  static bool is_on_vdp(NodeId id);

 private:
  double threshold_;
};

}  // namespace lgv::core
