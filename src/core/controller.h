// The Controller thread of §VII: turns profiling data into runtime actions —
// the Eq. 2c maximum-velocity adjustment and the decision-accuracy /
// parallelization knobs (rollout samples, SLAM particles, thread counts).
#pragma once

#include <algorithm>

#include "core/analytical_model.h"
#include "platform/calibration.h"

namespace lgv::core {

struct ControllerConfig {
  double a_max = platform::calib::kMaxAccel;
  double stopping_distance = platform::calib::kStoppingDistance;
  /// Floor so the vehicle keeps crawling even under terrible makespans.
  double min_velocity = 0.04;
  double hard_max_velocity = 1.2;  ///< mechanical ceiling

  // ---- remote-execution lease (docs/faults.md) ----
  /// Lease = headroom × profiled T_c + margin × RTT, floored at the minimum.
  /// The headroom absorbs normal execution-time variance; the RTT margin
  /// absorbs jitter on the result's return trip and stands in for the missed
  /// heartbeats a real worker lease would count before declaring it dead.
  double lease_headroom = 3.0;
  double lease_rtt_margin = 4.0;
  double lease_min_s = 0.25;
  /// Cold-start floor: the first execution of a node on a host has no
  /// profiled T_c yet — the analytical estimate seeds it, but estimate error
  /// plus one slow-link round trip can exceed the regular floor and trigger a
  /// spurious lease expiry before any history exists. Until the profiler has
  /// a real sample, the lease is floored here instead.
  double lease_cold_min_s = 1.5;
};

class Controller {
 public:
  explicit Controller(ControllerConfig config = {}) : config_(config) {}

  const ControllerConfig& config() const { return config_; }

  /// Eq. 2c: velocityOA(T_c) — the maximum safe velocity for the measured
  /// VDP makespan.
  double velocity_cap(double vdp_makespan_s) const {
    const double v =
        max_velocity(vdp_makespan_s, config_.a_max, config_.stopping_distance);
    return std::clamp(v, config_.min_velocity, config_.hard_max_velocity);
  }

  /// Angular analog of the Eq. 2c cap: a velocity command persists for one
  /// VDP makespan, so bound the turn rate such that a single stale decision
  /// swings the heading by at most ~0.6 rad. Slow pipelines get slow,
  /// accurate steering; fast pipelines keep the mechanical limit.
  double angular_cap(double vdp_makespan_s, double hard_max_angular) const {
    if (vdp_makespan_s <= 1e-6) return hard_max_angular;
    return std::clamp(0.6 / vdp_makespan_s, 0.12, hard_max_angular);
  }

  /// Lease deadline for one remote node execution: if the result has not
  /// arrived this many seconds after dispatch, the link is dead or the
  /// worker is stalled, and the runtime re-executes locally (fallback).
  double lease_timeout(double profiled_tc_s, double rtt_s) const {
    return lease_timeout(profiled_tc_s, rtt_s, /*cold_start=*/false);
  }

  /// `cold_start` = no profiled sample exists yet for this (node, host) and
  /// `profiled_tc_s` is the analytical seed: the floor widens to
  /// lease_cold_min_s so a first execution over a slow link isn't declared
  /// dead by a floor tuned for steady state.
  double lease_timeout(double profiled_tc_s, double rtt_s, bool cold_start) const {
    const double floor =
        cold_start ? std::max(config_.lease_min_s, config_.lease_cold_min_s)
                   : config_.lease_min_s;
    return std::max(floor, config_.lease_headroom * profiled_tc_s +
                               config_.lease_rtt_margin * rtt_s);
  }

  /// §VIII-E adaptivity: when the environment phase prevents reaching the
  /// cap (obstacles/turns), scale back the cloud parallelization to save
  /// cloud cost. Returns a recommended thread count.
  int recommend_threads(double real_velocity, double cap_velocity,
                        int configured_threads) const {
    if (cap_velocity <= 1e-6 || configured_threads <= 1) return configured_threads;
    const double utilization = std::clamp(real_velocity / cap_velocity, 0.0, 1.0);
    if (utilization > 0.7) return configured_threads;
    // The vehicle can't use the speed; halve the pool (min 1).
    return std::max(1, configured_threads / 2);
  }

 private:
  ControllerConfig config_;
};

}  // namespace lgv::core
