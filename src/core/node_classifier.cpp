#include "core/node_classifier.h"

namespace lgv::core {

const char* node_name(NodeId id) {
  switch (id) {
    case NodeId::kLocalization: return "localization";
    case NodeId::kCostmapGen: return "costmap_gen";
    case NodeId::kPathPlanning: return "path_planning";
    case NodeId::kExploration: return "exploration";
    case NodeId::kPathTracking: return "path_tracking";
    case NodeId::kVelocityMux: return "velocity_mux";
  }
  return "?";
}

std::vector<NodeId> all_nodes() {
  return {NodeId::kLocalization, NodeId::kCostmapGen,  NodeId::kPathPlanning,
          NodeId::kExploration,  NodeId::kPathTracking, NodeId::kVelocityMux};
}

bool NodeClassifier::is_on_vdp(NodeId id) {
  // Fig. 2: scan → CostmapGen → Path Tracking → Velocity Multiplexer is the
  // longest velocity-dependent execution flow (§IV-A).
  return id == NodeId::kCostmapGen || id == NodeId::kPathTracking ||
         id == NodeId::kVelocityMux;
}

NodeTraits NodeClassifier::static_traits(NodeId id, WorkloadKind workload) {
  NodeTraits t;
  t.on_vdp = is_on_vdp(id);
  switch (id) {
    case NodeId::kCostmapGen:
    case NodeId::kPathTracking:
      t.energy_critical = true;  // both workloads (Table II)
      break;
    case NodeId::kLocalization:
      // SLAM is an ECN; AMCL is not.
      t.energy_critical = workload == WorkloadKind::kExplorationWithoutMap;
      break;
    default:
      t.energy_critical = false;
  }
  return t;
}

std::map<NodeId, NodeTraits> NodeClassifier::classify(const platform::WorkMeter& meter,
                                                      WorkloadKind workload) const {
  std::map<NodeId, NodeTraits> out;
  const double total = meter.total_cycles();
  for (NodeId id : all_nodes()) {
    NodeTraits t;
    t.on_vdp = is_on_vdp(id);
    if (total > 0.0) {
      t.energy_critical = meter.fraction(node_name(id)) >= threshold_;
    } else {
      t.energy_critical = static_traits(id, workload).energy_critical;
    }
    out[id] = t;
  }
  return out;
}

}  // namespace lgv::core
