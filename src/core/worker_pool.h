// The WORKER side of Fig. 8, refactored from a per-runtime private thread
// pool into a shared multi-tenant service: one WorkerPool admits N vehicles
// (hundreds of simulated LGVs), each behind a leased *session*, and serves
// their scanMatch/scoreTrajectory kernel requests on a weighted fair-share
// schedule over a fixed set of worker cores.
//
// Execution follows the repo's "real compute, modeled time" doctrine: the
// kernels genuinely run on the real ThreadPool (cross-vehicle requests for
// the same kernel arriving within a tick are coalesced into ONE combined
// dispatch, reusing the SoA/SIMD block path), while latency comes from a
// deterministic virtual-time schedule — requests queue per session, the
// stride scheduler picks the session with the least virtual time (weighted),
// and a request occupies `threads` virtual cores for its modeled service
// time. Everything a caller observes (queue wait, completion, busy verdicts,
// occupancy) is virtual and reproducible bit-for-bit.
//
// Admission and eviction reuse the lease protocol: a session is admitted
// with a lease that traffic renews; a vehicle that goes silent past its
// lease is evicted and must re-admit. Backpressure is explicit: when a
// session's outstanding requests hit the queue bound, or the predicted
// wait for cores crosses the busy threshold, the pool answers with a
// retryable "busy" verdict instead of queueing unboundedly — the vehicle
// degrades to local compute via the existing finish_guarded fallback.
//
// The pool is also the fleet's failure plane (PR 9): an attached
// sim::FaultInjector scripts pool_crash (the pool dies, every session is
// lost, submissions bounce until it restarts), pool_degrade (k virtual cores
// vanish for a window) and pool_partition (a deterministic subset of
// sessions becomes unreachable) in virtual time; begin_drain() is the
// rolling-restart story — stop admitting, let in-flight work finish, evict
// sessions with a retryable "draining" verdict.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "sim/fault_injector.h"

namespace lgv::core {

using SessionId = uint32_t;  ///< 0 = no session

/// The two batched kernels of Figs. 5/6, plus everything else.
enum class KernelKind : uint8_t { kScanMatch = 0, kScoreTrajectory = 1, kGeneric = 2 };
const char* kernel_kind_name(KernelKind kind);

struct WorkerPoolConfig {
  int cores = 4;           ///< virtual worker cores (modeled service capacity)
  int threads = 0;         ///< real pool threads; 0 = same as cores
  size_t max_sessions = 512;
  /// Session lease (s): admission grants it, traffic renews it, silence past
  /// it evicts — the PR 3 lease protocol reused as the admission/eviction
  /// primitive.
  double session_lease_s = 2.0;
  /// Per-session outstanding-request bound: submit answers "busy" once this
  /// many requests are queued or in flight for one session.
  size_t max_session_queue = 8;
  /// Predicted wait for cores above this → "busy" (retryable; the vehicle
  /// runs the kernel locally this tick instead of queueing behind the fleet).
  double busy_wait_s = 0.75;
  /// New sessions are bounced while modeled occupancy exceeds this.
  double admit_occupancy_max = 0.97;
  int default_weight = 1;
  /// Host lane for the per-request trace spans ("cloud_server" /
  /// "edge_gateway") so the critical-path analyzer buckets pool time as
  /// remote compute.
  std::string host_label = "cloud_server";
};

/// Admission verdict. `busy` distinguishes "pool full right now, retry
/// later" from a hard reject (never issued today).
struct Admission {
  SessionId session = 0;  ///< 0 = not admitted
  bool busy = false;
};

/// Outcome of one kernel request, in virtual time.
struct WorkerVerdict {
  bool busy = false;        ///< bounced: run locally and retry after backoff
  double queue_wait = 0.0;  ///< arrival → cores granted (s)
  double service = 0.0;     ///< time on the cores (s)
  double completion = 0.0;  ///< virtual time the result is ready
  bool batched = false;     ///< coalesced with another vehicle's request
  /// Why the request bounced ("queue_depth", "pool_wait", "no_session",
  /// "pool_crash", "pool_partition", "draining", "evicted"); nullptr when
  /// served. Static strings — safe to hold.
  const char* busy_cause = nullptr;
};

class WorkerPool {
 public:
  /// Kernel body: process items [begin, end), return the cycles performed
  /// (the same contract as ExecutionContext::parallel_kernel_blocks).
  using BlockFn = std::function<double(size_t begin, size_t end)>;

  explicit WorkerPool(WorkerPoolConfig config = {},
                      telemetry::Telemetry* telemetry = nullptr);

  const WorkerPoolConfig& config() const { return config_; }
  /// The real thread pool (for ExecutionContext attachment). Sessions opened
  /// here are registered on it, so kernel chunks fair-share per vehicle.
  ThreadPool& threads() { return pool_; }

  // ---- session table -------------------------------------------------------
  /// Admit `vehicle` (a label for telemetry) with a fresh lease. `weight`
  /// <= 0 uses config().default_weight; higher weights get a proportionally
  /// larger share of the cores under contention (priority).
  Admission open_session(const std::string& vehicle, double now, int weight = 0);
  /// Extend the lease. False when the session is unknown or already expired
  /// (the caller must re-admit).
  bool renew(SessionId id, double now);
  void close_session(SessionId id);
  /// Drop every session whose lease expired before `now`; returns how many.
  size_t evict_expired(double now);
  size_t active_sessions() const { return sessions_.size(); }
  bool has_session(SessionId id) const { return sessions_.count(id) != 0; }

  // ---- request plane -------------------------------------------------------
  /// Handle for a queued request (valid until the next flush after it).
  struct Ticket {
    uint64_t id = 0;
    bool busy = false;  ///< bounced at submit; verdict() repeats the refusal
    const char* cause = nullptr;  ///< refusal cause when busy
  };

  /// Queue a kernel request with a fixed modeled service time (the
  /// OffloadRuntime path: the cost model already priced the execution).
  /// `threads` is how many cores the request occupies while served.
  Ticket submit(SessionId session, KernelKind kind, double now, double service_s,
                int threads);

  /// Queue a kernel request whose service time comes from *measured* work:
  /// at flush the pool coalesces same-kind requests into one real dispatch,
  /// runs `block` over [0, count) on the real threads, and prices the
  /// request at cycles × seconds_per_cycle (per core; the caller bakes the
  /// platform speed and parallel efficiency for `threads` cores into it).
  Ticket submit_block(SessionId session, KernelKind kind, double now, size_t count,
                      BlockFn block, double seconds_per_cycle, int threads);

  /// Close the batching window at virtual time `now`: run the coalesced real
  /// dispatches, then the weighted fair-share virtual schedule that assigns
  /// every pending request its start/completion. Verdicts become readable.
  void flush(double now);

  /// Verdict for a ticket from any flushed window.
  WorkerVerdict verdict(const Ticket& ticket) const;

  /// submit + flush + verdict: the synchronous single-request path
  /// (per-node offload executions). Batching needs concurrent submitters;
  /// lone requests pass straight through the same schedule.
  WorkerVerdict execute(SessionId session, KernelKind kind, double now,
                        double service_s, int threads);

  // ---- failure plane -------------------------------------------------------
  /// Attach the scripted pool-fault schedule (docs/faults.md): pool_crash
  /// kills the pool (sessions lost, submissions bounce until restart),
  /// pool_degrade removes virtual cores, pool_partition makes a subset of
  /// sessions unreachable. nullptr detaches. The injector is consulted on
  /// every submit and applied by step() — call step(now) once per tick
  /// (flush() calls it too, so submit/flush loops get it for free).
  void set_fault_injector(const sim::FaultInjector* injector) {
    fault_injector_ = injector;
  }
  /// Advance fault and drain state to `now`: crossing a pool_crash start
  /// evicts every session (their pending requests fail with an explicit
  /// "pool_crash" verdict — state died with the pool) and resets the cores
  /// to restart idle at the window's end; active pool_degrade windows park
  /// the lost cores until the window closes; a draining pool evicts sessions
  /// whose outstanding work has finished.
  void step(double now);
  /// A pool_crash overlaps [t0, t1): a result in flight across it is lost
  /// and the caller's lease-expiry path must re-execute locally.
  bool result_lost_in(double t0, double t1) const;
  /// The pool is down (crash window) at `t`.
  bool crashed(double t) const;

  // ---- graceful drain (rolling restart) ------------------------------------
  /// Stop admitting: new sessions and new requests bounce with a retryable
  /// "draining" verdict, in-flight requests keep their completions, and
  /// step() evicts each session once its outstanding work lands. Fires the
  /// flight recorder ("pool_drain") once.
  void begin_drain(double now);
  /// Reopen for admission (the restarted replica is back).
  void end_drain();
  bool draining() const { return draining_; }
  /// The drain is complete: no admitted sessions and every core idle by `now`.
  bool drained(double now) const;

  // ---- observability -------------------------------------------------------
  /// Fraction of virtual cores still busy at `now` (0..1).
  double occupancy(double now) const;

  /// High-water mark of any single session's outstanding requests — the
  /// bounded-queueing acceptance number.
  size_t max_session_depth() const { return max_session_depth_; }
  uint64_t busy_rejects() const { return busy_rejects_; }
  uint64_t admission_rejects() const { return admission_rejects_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t batches() const { return batches_; }
  uint64_t batched_requests() const { return batched_requests_; }
  uint64_t requests() const { return requests_; }
  /// Accepted requests explicitly failed because their session was evicted
  /// (lease lapse, crash, drain) before the flush served them.
  uint64_t evicted_requests() const { return evicted_requests_; }
  /// Sessions evicted by the drain path specifically.
  uint64_t drain_evictions() const { return drain_evictions_; }
  /// pool_crash windows this pool has crossed (sessions were wiped).
  uint64_t pool_crashes() const { return pool_crashes_; }

  /// Pool-level aggregate of the tenants' busy fallbacks: every time a
  /// runtime degrades an execution to local because of *this* pool (busy
  /// verdict, refused admission, backoff window, breaker open) it calls
  /// note_busy_fallback(), so Σ per-vehicle busy_fallback_count over the
  /// fleet equals Σ busy_fallbacks() over the pools it talked to — the
  /// accounting invariant FleetTest pins (pool_busy_fallback_total metric).
  void note_busy_fallback();
  uint64_t busy_fallbacks() const { return busy_fallbacks_; }

 private:
  struct Session {
    std::string label;
    uint64_t weight = 1;
    double vtime = 0.0;         ///< stride virtual time (core-seconds/weight)
    double lease_expiry = 0.0;
    std::deque<double> outstanding;  ///< completion times of scheduled work
    std::vector<uint64_t> pending;   ///< tickets waiting for flush
  };

  struct Request {
    SessionId session = 0;
    KernelKind kind = KernelKind::kGeneric;
    double arrival = 0.0;
    double service_s = 0.0;  ///< fixed, or priced at flush for block requests
    int threads = 1;
    size_t count = 0;
    BlockFn block;  ///< null for fixed-service requests
    double seconds_per_cycle = 0.0;
    bool batched = false;
  };

  Session* find_session(SessionId id, double now);
  size_t outstanding_depth(Session& s, double now);
  void note_depth(size_t depth);
  Ticket reject_busy(const char* cause);
  Ticket enqueue(SessionId session, Request req);
  void run_batches();
  void schedule(double now);
  double start_wait(double now, int threads) const;
  /// Explicitly fail a closing session's still-pending requests with `cause`
  /// and remove them from the flush list, so an evicted vehicle's block is
  /// never dispatched and never perturbs the survivors' batch accounting.
  void fail_pending(Session& s, const char* cause);
  void close_session_with(SessionId id, const char* cause);
  void apply_crash(double crash_end);

  WorkerPoolConfig config_;
  telemetry::Telemetry* telemetry_ = nullptr;
  ThreadPool pool_;

  std::map<SessionId, Session> sessions_;
  SessionId next_session_ = 1;

  std::vector<double> core_free_;   ///< virtual time each core frees up
  std::vector<Request> requests_store_;
  std::vector<WorkerVerdict> verdicts_;
  std::vector<uint64_t> pending_;   ///< tickets awaiting flush, arrival order

  uint64_t requests_ = 0;
  uint64_t busy_rejects_ = 0;
  uint64_t admission_rejects_ = 0;
  uint64_t evictions_ = 0;
  uint64_t batches_ = 0;
  uint64_t batched_requests_ = 0;
  size_t max_session_depth_ = 0;
  uint64_t evicted_requests_ = 0;
  uint64_t drain_evictions_ = 0;
  uint64_t pool_crashes_ = 0;
  uint64_t busy_fallbacks_ = 0;

  const sim::FaultInjector* fault_injector_ = nullptr;
  /// Last step() time: crash starts in (prev, now] apply exactly once.
  /// Starts below zero so a crash scripted at t=0 still applies.
  double fault_step_time_ = -1.0;
  bool draining_ = false;

  // Telemetry handles (null when disabled).
  telemetry::Counter* requests_total_ = nullptr;
  telemetry::Counter* busy_total_ = nullptr;
  telemetry::Counter* evictions_total_ = nullptr;
  telemetry::Counter* admission_rejects_total_ = nullptr;
  telemetry::Gauge* sessions_gauge_ = nullptr;
  telemetry::Gauge* occupancy_gauge_ = nullptr;
  telemetry::Gauge* session_depth_gauge_ = nullptr;
  telemetry::Histogram* queue_wait_s_ = nullptr;
  telemetry::Histogram* batch_size_ = nullptr;
};

}  // namespace lgv::core
