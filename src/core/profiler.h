// The Profiler thread of the ROBOT/WORKER system modules (§VII): collects the
// data Algorithms 1 and 2 decide on — per-node processing times (EMA), VDP
// makespans per placement, RTT, receive-side bandwidth, and signal direction.
#pragma once

#include <map>
#include <optional>

#include "common/telemetry/telemetry.h"
#include "core/network_quality.h"
#include "core/node_classifier.h"
#include "net/meters.h"
#include "platform/platform_spec.h"

namespace lgv::core {

struct ProfilerConfig {
  double ema_alpha = 0.3;          ///< smoothing of time estimates
  double bandwidth_window_s = 1.0; ///< Algorithm 2's observation window
  size_t direction_history = 10;   ///< positions used by the direction estimate
};

class Profiler {
 public:
  Profiler(ProfilerConfig config, Point2D wap_position);

  /// Generation stamp of the profiled observables: bumped whenever a recorded
  /// sample *materially* changes a stored estimate (node-time EMA, VDP
  /// makespan EMA, or the latest RTT). Consumers that derive state from the
  /// profiles — the placement cost tables foremost — compare stamps and
  /// rebuild only when this moved; feeding back unchanged profiles is free.
  uint64_t generation() const { return generation_; }

  // ---- processing times ----
  void record_node_time(NodeId node, platform::Host host, double seconds);
  /// Smoothed processing time of `node` on `host`; nullopt if never observed.
  std::optional<double> node_time(NodeId node, platform::Host host) const;

  /// Record a full VDP makespan under the given placement (local: sum of
  /// local node times; remote: cloud times + RTT — §VII's Profiler protocol).
  void record_vdp_makespan(VdpPlacement placement, double seconds);
  std::optional<double> vdp_makespan(VdpPlacement placement) const;
  /// Forget one placement's makespan profile. A committed pool failover calls
  /// this for kRemote: the samples were measured against the dead pool and
  /// would otherwise veto re-offloading onto the healthy standby forever.
  void reset_vdp_makespan(VdpPlacement placement) { vdp_times_.erase(placement); }

  /// Mirror the profiler's observables into `telemetry`: the RTT histogram
  /// (`net_rtt_ms`), VDP makespan histograms per placement, and the r_t/d_t
  /// gauges Algorithm 2 reads. nullptr disconnects.
  void set_telemetry(telemetry::Telemetry* telemetry);

  // ---- network ----
  void record_rtt(double sent_at, double received_at) {
    const double before = rtt_.latest().value_or(-1.0);
    rtt_.on_response(sent_at, received_at);
    note_change(before, rtt_.latest().value_or(-1.0));
    if (rtt_ms_ != nullptr) rtt_ms_->observe((received_at - sent_at) * 1e3);
  }
  std::optional<double> rtt() const { return rtt_.latest(); }
  void on_stream_packet(double now) { bandwidth_.on_packet(now); }
  void on_robot_position(const Point2D& p) { direction_.on_position(p); }

  /// Snapshot for Algorithm 2.
  NetworkObservation observe(double now);

 private:
  /// Bump the generation when an estimate moved by more than 1e-9 relative —
  /// re-recording the same numbers must not invalidate downstream tables.
  void note_change(double before, double after);

  ProfilerConfig config_;
  uint64_t generation_ = 0;
  std::map<std::pair<NodeId, platform::Host>, double> node_times_;
  std::map<VdpPlacement, double> vdp_times_;
  net::RttMeter rtt_;
  net::BandwidthMeter bandwidth_;
  net::SignalDirectionEstimator direction_;

  // Telemetry handles (null when disconnected).
  telemetry::Histogram* rtt_ms_ = nullptr;
  telemetry::Histogram* vdp_local_s_ = nullptr;
  telemetry::Histogram* vdp_remote_s_ = nullptr;
  telemetry::Gauge* bandwidth_hz_ = nullptr;
  telemetry::Gauge* signal_direction_ = nullptr;
};

}  // namespace lgv::core
