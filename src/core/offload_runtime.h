// OffloadRuntime assembles the Fig. 8 system: the computation graph, the
// emulated wireless network, the Switcher transport, the Profiler, the
// Controller, Algorithm 1 (initial placement) and Algorithm 2 (runtime
// switching), plus the platform cost models and the remote thread pool used
// for cloud acceleration. MissionRunner drives it; examples and tests can
// also use it directly.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "core/controller.h"
#include "core/network_quality.h"
#include "core/node_classifier.h"
#include "core/offload_planner.h"
#include "core/placement_engine.h"
#include "core/pool_failover.h"
#include "core/profiler.h"
#include "core/switcher.h"
#include "core/worker_pool.h"
#include "middleware/graph.h"
#include "net/wireless_channel.h"
#include "platform/cost_model.h"
#include "platform/execution_context.h"
#include "platform/work_meter.h"
#include "sim/fault_injector.h"
#include "sim/power.h"

namespace lgv::core {

/// One evaluated deployment (the legend entries of Figs. 12/13).
struct DeploymentPlan {
  std::string name = "local";
  bool offload = false;                     ///< any remote execution at all
  platform::Host remote_host = platform::Host::kEdgeGateway;
  int remote_threads = 1;                   ///< >1 enables §V parallelization
  Goal goal = Goal::kCompletionTime;        ///< Algorithm 1 optimization goal
  bool adaptive = true;                     ///< Algorithm 2 enabled
  WorkloadKind workload = WorkloadKind::kNavigationWithMap;
  /// N-host mode: place the pipeline over a lgv → edge_gateway → cloud_server
  /// HostTopology with the PlacementEngine, seeded by Algorithm 1's two-host
  /// answer. Algorithm 2 keeps its retreat-local authority; while the VDP is
  /// remote, adjustment epochs run bounded re-optimizations instead of the
  /// binary flip.
  bool multi_tier = false;
  int edge_threads = 8;  ///< gateway parallel width in the three-tier topology
  PlacementEngineConfig placement;  ///< optimizer knobs (multi_tier only)
};

DeploymentPlan local_plan(WorkloadKind workload);
DeploymentPlan offload_plan(const std::string& name, platform::Host remote, int threads,
                            WorkloadKind workload, Goal goal = Goal::kCompletionTime);
/// Three-tier deployment: remote set defaults to the cloud (Algorithm 1's
/// seed), with the edge gateway available as a middle tier for the engine.
DeploymentPlan three_tier_plan(const std::string& name, int cloud_threads,
                               WorkloadKind workload,
                               Goal goal = Goal::kCompletionTime);

/// Fleet-serving attachment: instead of owning a private remote thread pool,
/// the runtime becomes one tenant of a shared WorkerPool (one per fleet) —
/// it opens a leased session, executes remote kernels through the pool's
/// fair-share schedule, and degrades to local compute when the pool answers
/// "busy". The pool must outlive every runtime attached to it.
struct FleetAttachment {
  WorkerPool* pool = nullptr;
  /// >= 0 identifies this vehicle in the fleet: stamps the wire session id
  /// (vehicle_index + 1) on every frame and defaults the telemetry
  /// vehicle_id to "lgv-<index>".
  int vehicle_index = -1;
  /// Standby pool (PR 9): on primary loss, once the per-vehicle circuit
  /// breaker opens, the runtime ships a crash-consistent state snapshot to
  /// the standby's host and re-admits there with a fresh session. nullptr =
  /// no failover target (backoff and breaker still protect the primary).
  WorkerPool* standby = nullptr;
  /// Host the standby pool runs on — placement and cost-model pricing follow
  /// a committed failover there (the edge-gateway story: nearer but slower).
  platform::Host standby_host = platform::Host::kEdgeGateway;
  /// Seed of the vehicle's splitmix64 busy-retry jitter stream. 0 derives a
  /// stream from vehicle_index so even unseeded vehicles never share a retry
  /// schedule; fleets should pass vehicle_seed(fleet_seed, index)-derived
  /// values for full determinism under reseeding.
  uint64_t backoff_seed = 0;
  /// Backoff / circuit-breaker policy knobs.
  FailoverConfig failover;
};

class OffloadRuntime {
 public:
  OffloadRuntime(DeploymentPlan plan, Point2D wap_position,
                 net::ChannelConfig channel_config = {},
                 telemetry::TelemetryConfig telemetry_config = {},
                 FleetAttachment fleet = {});

  const DeploymentPlan& plan() const { return plan_; }

  /// The shared telemetry bundle (metrics registry + virtual-time tracer)
  /// every subsystem records into, or nullptr when telemetry is disabled —
  /// the disabled path is a single pointer test on each hot path.
  telemetry::Telemetry* telemetry() { return telemetry_.get(); }
  const telemetry::Telemetry* telemetry() const { return telemetry_.get(); }

  // ---- shared infrastructure ----
  SimClock& clock() { return clock_; }
  mw::Graph& graph() { return graph_; }
  net::WirelessChannel& channel() { return channel_; }
  Switcher& switcher() { return switcher_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  Controller& controller() { return controller_; }
  const Controller& controller() const { return controller_; }
  NetworkQualityController& network_controller() { return netctl_; }
  platform::WorkMeter& meter() { return meter_; }
  sim::EnergyMeter& energy() { return energy_; }
  const sim::PowerModel& power() const { return power_; }

  // ---- placement ----
  platform::Host host_of(NodeId id) const;
  void place(NodeId id, platform::Host host);
  /// Run Algorithm 1 with the current profiled VDP times and apply it. In
  /// multi-tier mode the two-host answer then seeds a full PlacementEngine
  /// solve over the three-tier topology, and the engine's (never-worse) plan
  /// is what gets applied.
  OffloadDecision apply_initial_placement();

  /// The N-host optimizer (nullptr unless plan().multi_tier).
  PlacementEngine* placement_engine() { return placement_engine_.get(); }
  /// Feed the profiler's live observables (RTT, receive-side bandwidth) into
  /// the topology's links. Material changes bump the topology generation and
  /// invalidate the cost tables; unchanged numbers are free (satellite:
  /// repeated steps with unchanged profiles rebuild nothing).
  void refresh_placement_model();
  /// Bounded re-optimization re-trigger (the cooperating layer Algorithm 2
  /// and AP-handoff events invoke instead of a full solve). Applies the
  /// improved assignment while the VDP is remote; a no-op when the vehicle
  /// has retreated local (Algorithm 2 keeps that authority) or when not in
  /// multi-tier mode. `trigger` labels the telemetry marker.
  PlacementResult reoptimize_placement(const char* trigger);
  /// Algorithm 2 outcome: move every currently-remote node local (or the
  /// plan's remote set back out). Returns true when anything moved.
  bool set_vdp_placement(VdpPlacement placement);
  VdpPlacement vdp_placement() const { return vdp_placement_; }

  // ---- execution ----
  /// Context for running `id`'s kernel right now: remote nodes with
  /// parallelization enabled get the remote pool, everything else is serial.
  platform::ExecutionContext make_context(NodeId id);

  /// §VIII-E adaptivity: shrink/grow the worker count used by parallel
  /// kernels at runtime (the pool keeps plan().remote_threads threads; fewer
  /// chunks are dispatched). Clamped to [1, plan().remote_threads].
  void set_active_threads(int threads);
  int active_threads() const { return active_threads_; }

  /// Accrue cloud/edge resource usage for `dt` seconds of virtual time:
  /// while any node is remote, the reservation is active_threads() cores.
  /// §VIII-E: shedding unused parallelism "saves the financial cost and
  /// resource usage on the cloud servers".
  void charge_cloud_time(double dt);
  /// Reserved core-seconds accrued so far.
  double cloud_core_seconds() const { return cloud_core_seconds_; }
  /// Finish an execution: convert the recorded work to virtual time on the
  /// node's platform, charge the work meter, charge Eq. 1c energy when the
  /// node ran on the LGV, and feed the Profiler. Returns the virtual
  /// processing time (s).
  double finish(NodeId id, platform::ExecutionContext& ctx);

  /// Attach the chaos harness. Channel faults are applied by the injector's
  /// own update(); worker faults are consulted by finish_guarded(). nullptr
  /// (the default) disables fault awareness entirely — finish_guarded
  /// degenerates to finish().
  void set_fault_injector(sim::FaultInjector* injector) { fault_injector_ = injector; }
  sim::FaultInjector* fault_injector() { return fault_injector_; }

  /// Lease protocol toggle. With it off, faults still delay remote results
  /// (a stalled worker or dead link holds the caller hostage for as long as
  /// the fault lasts) but nothing recovers — the ablation baseline the bench
  /// compares the fallback against. Default on.
  void set_lease_fallback(bool enabled) { lease_fallback_ = enabled; }
  bool lease_fallback() const { return lease_fallback_; }

  /// Result of one guarded node execution (docs/faults.md).
  struct ExecutionOutcome {
    double latency = 0.0;   ///< virtual seconds from dispatch to usable result
    bool fell_back = false; ///< lease expired → node was re-executed locally
  };

  /// finish() wrapped in the remote-execution lease: a node running on a
  /// remote host is granted a lease of Controller::lease_timeout(profiled
  /// T_c, RTT). If worker stalls/crashes or a forced link outage push the
  /// result past the deadline, the execution is abandoned and re-run locally
  /// (re-entrant fallback: the recorded work profile is re-timed on the LGV
  /// cost model and Eq. 1c energy charged), `fallback_total` is counted, an
  /// `alg2.fallback` instant is traced, and the NetworkQualityController is
  /// forced to kLocal so Algorithm 2 doesn't re-offload into the same hole.
  ExecutionOutcome finish_guarded(NodeId id, platform::ExecutionContext& ctx);

  /// Lease expirations → local re-executions so far (includes busy bounces).
  uint64_t fallback_count() const { return fallback_count_; }
  /// Subset of fallback_count(): executions the shared worker refused with a
  /// retryable "busy" (admission backpressure), run locally instead.
  uint64_t busy_fallback_count() const { return busy_fallback_count_; }

  /// The shared fleet worker this runtime is a tenant of (nullptr when it
  /// owns its compute), and its session there (0 until first admitted).
  WorkerPool* worker_pool() { return worker_pool_; }
  SessionId worker_session() const { return worker_session_; }
  int vehicle_index() const { return vehicle_index_; }

  // ---- pool failover (PR 9) ----
  /// Per-vehicle failover/backoff/breaker policy; nullptr when no shared
  /// pool is attached.
  PoolFailoverClient* failover_client() { return failover_.get(); }
  const PoolFailoverClient* failover_client() const { return failover_.get(); }
  /// Committed pool switches (primary → standby or back) so far. Each one
  /// rode a committed "failover"-mode state migration — never a torn set.
  uint64_t pool_failovers() const { return pool_failovers_; }
  /// Failover snapshot transfers that aborted (torn): the committed pool and
  /// the SLAM delta base are unchanged; the vehicle kept running local.
  uint64_t failovers_aborted() const { return failovers_aborted_; }
  /// Host currently serving this vehicle's remote nodes — the plan's remote
  /// host until a committed failover re-points it at the standby's host.
  platform::Host remote_host() const { return remote_host_; }
  /// Failover snapshot provider: `bytes` returns the serialized state size
  /// (costmap + filter state) right now; `committed` is invoked only when
  /// the transfer commits — the delta-base-advance hook, so an aborted
  /// failover can never advance the base past state the far side lacks.
  void set_state_snapshot(std::function<double()> bytes,
                          std::function<void()> committed) {
    snapshot_bytes_fn_ = std::move(bytes);
    snapshot_committed_fn_ = std::move(committed);
  }

  /// Advance the pool-failover state machine even while Algorithm 2 runs the
  /// VDP locally. Without this, a crash that pollutes the remote makespan
  /// profile pins the placement local and the standby snapshot — which only
  /// progresses when a remote execution calls ensure_worker_session — starves
  /// forever. Call once per control tick; it is a no-op unless a failover is
  /// pending, the committed pool's breaker is open, or busy verdicts are
  /// accumulating. Refusals here do not count as busy fallbacks (no node ran).
  void step_failover(double now);

  const platform::CostModel& cost_model(platform::Host host) const;

  /// Estimated one-way uplink network latency for a scan-sized message under
  /// current conditions (used for T_c prediction).
  double predicted_network_latency();

 private:
  /// Acquire a serving pool + live session via the failover client (backoff
  /// window, breakers, primary/standby selection, crash-consistent snapshot
  /// commit on a pool switch). False = run locally this time; the refusal
  /// cause is in last_refusal_cause_ and the refusing pool in attempted_pool_.
  bool ensure_worker_session(double now);
  /// targets_[idx] of the failover client as a pool pointer.
  WorkerPool* pool_at(int index) const;
  /// Flip the committed pool to `target` after its failover snapshot landed:
  /// client commit, delta-base advance, remote nodes re-placed onto the new
  /// pool's host, pool_failovers_total + flight-recorder coverage.
  void complete_failover(int target, double now);
  /// The "busy" degradation: run the node locally, count it as a fallback
  /// with `cause` against `pool` (pool_busy_fallback_total accounting), and
  /// leave the placement alone — a busy verdict is a retryable refusal, not
  /// a dead link, so the next tick tries remote again.
  ExecutionOutcome busy_fallback(NodeId id, platform::ExecutionContext& ctx,
                                 const char* cause, WorkerPool* pool);
  /// Apply an engine assignment (dag index i < |all_nodes()| ↔ all_nodes()[i])
  /// through place(). Returns whether any T3 node ended up remote.
  bool apply_engine_assignment(const uint8_t* assignment, size_t n);

  DeploymentPlan plan_;
  /// Declared before remote_pool_ so the pool's destructor (which joins the
  /// workers) runs first: a worker released from parallel_chunks() may still
  /// be recording its post-task metrics into this bundle.
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  SimClock clock_;
  mw::Graph graph_;
  net::WirelessChannel channel_;
  sim::PowerModel power_;
  sim::EnergyMeter energy_;
  Switcher switcher_;
  Profiler profiler_;
  Controller controller_;
  NetworkQualityController netctl_;
  OffloadPlanner planner_;
  platform::WorkMeter meter_;
  std::map<NodeId, platform::Host> placement_;
  std::map<NodeId, NodeTraits> traits_;
  /// Private remote pool — only when no shared WorkerPool is attached.
  std::unique_ptr<ThreadPool> remote_pool_;
  WorkerPool* worker_pool_ = nullptr;  ///< shared fleet worker (not owned)
  SessionId worker_session_ = 0;
  int vehicle_index_ = -1;
  WorkerPool* standby_pool_ = nullptr;  ///< failover target (not owned)
  platform::Host standby_host_ = platform::Host::kEdgeGateway;
  std::unique_ptr<PoolFailoverClient> failover_;
  /// Pool the last successful ensure_worker_session() selected (primary or
  /// standby); the one make_context attaches and finish_guarded executes on.
  WorkerPool* active_pool_ = nullptr;
  /// Pool blamed for the last refusal (note_busy_fallback accounting) and why.
  WorkerPool* attempted_pool_ = nullptr;
  const char* last_refusal_cause_ = "admission";
  /// In-flight failover snapshot: target pool index and the virtual time the
  /// committed transfer lands (execution stays local until then). -1 = none.
  int failover_target_ = -1;
  double failover_ready_at_ = -1.0;
  std::function<double()> snapshot_bytes_fn_;
  std::function<void()> snapshot_committed_fn_;
  uint64_t pool_failovers_ = 0;
  uint64_t failovers_aborted_ = 0;
  /// Host serving remote nodes now (standby's host after failover).
  platform::Host remote_host_ = platform::Host::kEdgeGateway;
  std::map<platform::Host, platform::CostModel> cost_models_;
  /// N-host placement optimizer (multi_tier plans only).
  std::unique_ptr<PlacementEngine> placement_engine_;
  VdpPlacement vdp_placement_ = VdpPlacement::kLocal;
  int active_threads_ = 1;
  double cloud_core_seconds_ = 0.0;
  sim::FaultInjector* fault_injector_ = nullptr;
  bool lease_fallback_ = true;
  uint64_t fallback_count_ = 0;
  uint64_t busy_fallback_count_ = 0;
};

}  // namespace lgv::core
