// Algorithm 1 — the fine-grained migration strategy of §IV-B. Given the node
// classification, an optimization goal (EC = reduce energy consumption,
// MCT = shorten mission completion time), and the measured local vs. cloud
// VDP makespans, decide where every node runs.
#pragma once

#include <map>

#include "core/node_classifier.h"
#include "platform/platform_spec.h"

namespace lgv::core {

enum class Goal { kEnergy, kCompletionTime };  // EC / MCT in the paper

const char* goal_name(Goal g);

struct OffloadDecision {
  std::map<NodeId, platform::Host> placement;
  /// Whether the T3 (ECN ∩ VDP) nodes ended up remote.
  bool vdp_offloaded = false;
};

class OffloadPlanner {
 public:
  OffloadPlanner(Goal goal, platform::Host remote_host)
      : goal_(goal), remote_(remote_host) {}

  Goal goal() const { return goal_; }
  platform::Host remote_host() const { return remote_; }

  /// Algorithm 1. `vdp_local_s` is T_l^v (overall VDP node processing time
  /// when all nodes are local at max velocity); `vdp_cloud_s` is T_c (VDP
  /// processing time with T3 offloaded, *including* network latency).
  ///
  ///   submit all ECN nodes to the remote server
  ///   if goal == MCT and Tc > Tl:  migrate T3 nodes back to the LGV
  OffloadDecision decide(const std::map<NodeId, NodeTraits>& traits,
                         double vdp_local_s, double vdp_cloud_s) const;

 private:
  Goal goal_;
  platform::Host remote_;
};

}  // namespace lgv::core
