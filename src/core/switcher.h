// The Switcher threads of §VII: maintain data communication between worker
// nodes on the LGV and on the remote server. Implements the middleware's
// RemoteTransport over the emulated wireless link — messages are serialized
// (the paper uses protobuf; we use the equivalent wire format in
// common/serialization.h), wrapped in a checksummed, sequenced frame
// (docs/wire-format.md), and shipped over UDP with one-length queues; state
// migration rides the reliable TCP link as a chunked, per-chunk-CRC'd
// transfer with an explicit commit record. Uplink transmissions charge
// Eq. 1b energy to the wireless controller.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/telemetry/telemetry.h"
#include "middleware/graph.h"
#include "net/link.h"
#include "net/wireless_channel.h"
#include "sim/power.h"

namespace lgv::core {

// ---- wire frame (docs/wire-format.md) --------------------------------------
// Every datagram the Switcher puts on the air is (v3)
//   [magic u16][version u8][direction u8][topic_id u16][seq u32]
//   [payload_len u32][crc32c u32][trace_id u32][span_id u32][session_id u16]
//   [payload ...]
// all little-endian. The trace_id/span_id pair propagates the sender's
// TraceContext so the receiver's work stitches into the same span DAG; the
// session_id names the *vehicle* the frame belongs to, so a shared worker
// serving a fleet sequences each vehicle's stream independently (two
// vehicles' frames for the same topic must never dedupe against each other).
// The CRC32C covers bytes [0,14) plus everything after the CRC field — i.e.
// the trace ids, the session id AND the payload — so any bit the channel
// flips fails the check.
// Older frames still decode: a v2 frame (26-byte header, no session id)
// behaves as session 0, and a v1 frame (18-byte header, no trace ids either)
// additionally carries no trace context and is counted in
// net_frames_v1_total rather than rejected. frame_wrap emits v2 when
// session_id == 0, so single-vehicle deployments produce byte-identical
// frames to the previous build.
inline constexpr uint16_t kFrameMagic = 0x4C57;  ///< "WL" on the wire
inline constexpr uint8_t kFrameVersion = 3;
inline constexpr size_t kFrameHeaderSizeV3 = 28;
inline constexpr size_t kFrameHeaderSize = 26;  ///< v2 (and the session-0 emission)
inline constexpr size_t kFrameHeaderSizeV1 = 18;

/// Wrap `payload` in a frame header + CRC, stamping the sender's trace
/// context (0/0 = no active trace) and session (vehicle) id. session_id == 0
/// emits a v2 frame (no session field — byte-identical to the previous
/// format); nonzero emits v3. Exposed for tests and the migration path;
/// normal traffic goes through Switcher::send.
std::vector<uint8_t> frame_wrap(uint8_t direction, uint16_t topic_id,
                                uint32_t seq, const std::vector<uint8_t>& payload,
                                uint32_t trace_id = 0, uint32_t span_id = 0,
                                uint16_t session_id = 0);

/// Wrap `payload` in a legacy v1 frame (18-byte header, no trace context).
/// Kept for the backward-compat tests and the wire fuzz harness.
std::vector<uint8_t> frame_wrap_v1(uint8_t direction, uint16_t topic_id,
                                   uint32_t seq, const std::vector<uint8_t>& payload);

/// Integrity-check a received frame (any version). Returns nullptr when the
/// frame is intact, else the rejection cause label ("runt", "bad_magic",
/// "bad_version", "length_mismatch", "crc") used for
/// net_frames_rejected_total{cause=...}.
const char* frame_check(const std::vector<uint8_t>& frame);

/// Read the sequence number of a verified frame.
uint32_t frame_seq(const std::vector<uint8_t>& frame);

/// Header size of a verified frame: kFrameHeaderSizeV1 for v1,
/// kFrameHeaderSize for v2, kFrameHeaderSizeV3 otherwise. The payload
/// starts here.
size_t frame_header_size(const std::vector<uint8_t>& frame);

/// Trace context of a verified frame; both return 0 for v1 frames.
uint32_t frame_trace_id(const std::vector<uint8_t>& frame);
uint32_t frame_span_id(const std::vector<uint8_t>& frame);

/// Session (vehicle) id of a verified frame; 0 for v1/v2 frames.
uint16_t frame_session_id(const std::vector<uint8_t>& frame);

/// Outcome of a chunked state migration over the reliable control link.
struct MigrationResult {
  double completion = 0.0;  ///< virtual time the node may unfreeze / abort time
  bool committed = false;   ///< receiver verified every chunk + commit record
  uint64_t chunks = 0;
  uint64_t chunk_retransmits = 0;  ///< chunk sends that failed their CRC
  int attempts = 0;                ///< whole-transfer attempts (1 or 2)
};

struct SwitcherStats {
  uint64_t uplink_messages = 0;
  uint64_t downlink_messages = 0;
  double uplink_bytes = 0.0;
  double downlink_bytes = 0.0;
  uint64_t state_migrations = 0;
  uint64_t migrations_aborted = 0;  ///< both attempts failed; placement reverts
  /// Subset of state_migrations: failover snapshots shipped to a standby
  /// WorkerPool's host before re-admitting there (mode == "failover").
  uint64_t failover_migrations = 0;
  double state_migration_bytes = 0.0;
  double max_message_bytes = 0.0;  ///< the paper reports 2.94 KB (laser scan)

  // Wire-integrity rejections at deliver() (docs/wire-format.md). A frame is
  // dropped, never partially applied; frames_rejected is the sum of the
  // per-cause counters below it.
  uint64_t frames_rejected = 0;
  uint64_t rejected_runt = 0;       ///< shorter than the frame header
  uint64_t rejected_magic = 0;
  uint64_t rejected_version = 0;
  uint64_t rejected_length = 0;     ///< payload_len disagrees with the datagram
  uint64_t rejected_crc = 0;
  uint64_t rejected_decode = 0;     ///< envelope/message decode threw
  uint64_t rejected_duplicate = 0;  ///< seq already delivered
  /// Legacy v1 frames delivered without trace context (counted, not
  /// rejected) — visibility into a mixed-version fleet.
  uint64_t frames_v1 = 0;
  /// Valid frame older than the newest delivered on its (topic, direction):
  /// dropped so stale data never overwrites fresh (freshness over
  /// reliability). Counted in msg_stale_dropped_total, not frames_rejected.
  uint64_t stale_dropped = 0;
};

class Switcher final : public mw::RemoteTransport {
 public:
  Switcher(mw::Graph* graph, net::WirelessChannel* channel, const SimClock* clock,
           sim::EnergyMeter* energy, const sim::PowerModel* power,
           size_t kernel_buffer_capacity = 4);

  // mw::RemoteTransport — called by the Graph for cross-host publications.
  void send(const mw::TopicName& topic, const mw::NodeName& dst,
            platform::Host src_host, platform::Host dst_host,
            std::vector<uint8_t> bytes) override;

  /// Advance links and deliver everything that arrived by now. Frames that
  /// fail the integrity check are dropped and counted — corrupt bytes never
  /// reach the Graph.
  void step();

  /// Migrate `bytes` of node state (e.g. particle set + map) over TCP as
  /// ~4 KB chunks, each framed and CRC-checked against the scripted wire
  /// faults active on the channel. A damaged chunk is retransmitted (bounded
  /// retries); an attempt that exhausts retries or overruns the commit
  /// timeout is aborted and the whole transfer retried once. The result says
  /// whether the transfer committed — on abort the caller must keep (or
  /// revert to) the local replica, never run on a torn particle set.
  /// `mode` labels what the payload encoding was ("full" or "delta") for
  /// migration_bytes_total{mode=...} and the trace span.
  MigrationResult migrate_state(double bytes, bool uplink, const char* mode = "full");

  /// Send a 48 B measurement-stream packet (velocity message or probe) on the
  /// downlink; Profiler bandwidth is counted on arrival via the callback,
  /// which receives (send_time, arrival_time).
  void send_stream_packet();
  void set_stream_callback(std::function<void(double sent, double now)> cb) {
    stream_callback_ = std::move(cb);
  }

  const SwitcherStats& stats() const { return stats_; }
  net::UdpLink& uplink() { return uplink_; }
  net::UdpLink& downlink() { return downlink_; }
  net::TcpLink& control_link() { return control_; }

  /// Session (vehicle) id stamped on every frame this Switcher sends. 0 (the
  /// default) keeps the single-vehicle v2 emission; a fleet gives each
  /// vehicle's Switcher a distinct nonzero id so a shared worker sequences
  /// the streams independently.
  void set_session_id(uint16_t id) { session_id_ = id; }
  uint16_t session_id() const { return session_id_; }

  /// Wire the three links' `net_*` metrics ({link=uplink|downlink|control})
  /// plus switcher byte counters, reject counters
  /// (net_frames_rejected_total{cause}, msg_stale_dropped_total with an
  /// `integrity.reject` trace instant per drop), and emit a
  /// `switcher.migrate` span per state migration. nullptr disconnects.
  void set_telemetry(telemetry::Telemetry* telemetry);

 private:
  void deliver(const net::Packet& packet);
  /// Count a rejected frame under `cause` (metric + trace instant);
  /// `counter` is the matching per-cause SwitcherStats field.
  void reject_frame(const char* cause, uint64_t* counter);
  uint16_t topic_id(const std::string& topic);

  mw::Graph* graph_;
  net::WirelessChannel* channel_;
  const SimClock* clock_;
  sim::EnergyMeter* energy_;
  const sim::PowerModel* power_;
  net::UdpLink uplink_;    ///< LGV → remote (scans; large)
  net::UdpLink downlink_;  ///< remote → LGV (velocities, poses; small)
  net::TcpLink control_;   ///< reliable control/state channel
  SwitcherStats stats_;
  std::function<void(double, double)> stream_callback_;

  std::map<std::string, uint16_t> topic_ids_;
  /// Per (session_id << 32 | direction << 16 | topic_id): next seq to stamp /
  /// newest delivered. The session term keeps a fleet's streams independent —
  /// vehicle 2's seq-5 scan must not look like a duplicate of vehicle 1's.
  std::map<uint64_t, uint32_t> next_seq_;
  std::map<uint64_t, uint32_t> last_delivered_seq_;
  uint16_t session_id_ = 0;

  Rng rng_{0x519a};  ///< drives migration-chunk damage simulation

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* uplink_bytes_total_ = nullptr;
  telemetry::Counter* downlink_bytes_total_ = nullptr;
  telemetry::Counter* migrations_total_ = nullptr;
};

}  // namespace lgv::core
