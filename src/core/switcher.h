// The Switcher threads of §VII: maintain data communication between worker
// nodes on the LGV and on the remote server. Implements the middleware's
// RemoteTransport over the emulated wireless link — messages are serialized
// (the paper uses protobuf; we use the equivalent wire format in
// common/serialization.h), stamped, and shipped over UDP with one-length
// queues; state migration rides the reliable TCP link. Uplink transmissions
// charge Eq. 1b energy to the wireless controller.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/telemetry/telemetry.h"
#include "middleware/graph.h"
#include "net/link.h"
#include "net/wireless_channel.h"
#include "sim/power.h"

namespace lgv::core {

struct SwitcherStats {
  uint64_t uplink_messages = 0;
  uint64_t downlink_messages = 0;
  double uplink_bytes = 0.0;
  double downlink_bytes = 0.0;
  uint64_t state_migrations = 0;
  double state_migration_bytes = 0.0;
  double max_message_bytes = 0.0;  ///< the paper reports 2.94 KB (laser scan)
};

class Switcher final : public mw::RemoteTransport {
 public:
  Switcher(mw::Graph* graph, net::WirelessChannel* channel, const SimClock* clock,
           sim::EnergyMeter* energy, const sim::PowerModel* power,
           size_t kernel_buffer_capacity = 4);

  // mw::RemoteTransport — called by the Graph for cross-host publications.
  void send(const mw::TopicName& topic, const mw::NodeName& dst,
            platform::Host src_host, platform::Host dst_host,
            std::vector<uint8_t> bytes) override;

  /// Advance links and deliver everything that arrived by now.
  void step();

  /// Migrate `bytes` of node state (e.g. particle set + map) over TCP;
  /// returns the estimated transfer completion time. The Controller freezes
  /// the node until then.
  double migrate_state(double bytes, bool uplink);

  /// Send a 48 B measurement-stream packet (velocity message or probe) on the
  /// downlink; Profiler bandwidth is counted on arrival via the callback,
  /// which receives (send_time, arrival_time).
  void send_stream_packet();
  void set_stream_callback(std::function<void(double sent, double now)> cb) {
    stream_callback_ = std::move(cb);
  }

  const SwitcherStats& stats() const { return stats_; }
  net::UdpLink& uplink() { return uplink_; }
  net::UdpLink& downlink() { return downlink_; }
  net::TcpLink& control_link() { return control_; }

  /// Wire the three links' `net_*` metrics ({link=uplink|downlink|control})
  /// plus switcher byte counters, and emit a `switcher.migrate` span per
  /// state migration. nullptr disconnects.
  void set_telemetry(telemetry::Telemetry* telemetry);

 private:
  void deliver(const net::Packet& packet);

  mw::Graph* graph_;
  net::WirelessChannel* channel_;
  const SimClock* clock_;
  sim::EnergyMeter* energy_;
  const sim::PowerModel* power_;
  net::UdpLink uplink_;    ///< LGV → remote (scans; large)
  net::UdpLink downlink_;  ///< remote → LGV (velocities, poses; small)
  net::TcpLink control_;   ///< reliable control/state channel
  SwitcherStats stats_;
  std::function<void(double, double)> stream_callback_;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* uplink_bytes_total_ = nullptr;
  telemetry::Counter* downlink_bytes_total_ = nullptr;
  telemetry::Counter* migrations_total_ = nullptr;
};

}  // namespace lgv::core
