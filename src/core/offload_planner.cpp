#include "core/offload_planner.h"

namespace lgv::core {

const char* goal_name(Goal g) {
  return g == Goal::kEnergy ? "EC" : "MCT";
}

OffloadDecision OffloadPlanner::decide(const std::map<NodeId, NodeTraits>& traits,
                                       double vdp_local_s, double vdp_cloud_s) const {
  OffloadDecision out;
  // Start everything local.
  for (const auto& [id, t] : traits) out.placement[id] = platform::Host::kLgv;

  // "submit all nodes ∈ ECN to the remote server": T1 + T3.
  for (const auto& [id, t] : traits) {
    if (t.energy_critical) out.placement[id] = remote_;
  }

  // MCT: if the cloud VDP time (incl. network latency) exceeds the local VDP
  // time, migrate the T3 nodes back — offloading would slow the mission.
  const bool cloud_worse = vdp_cloud_s > vdp_local_s;
  if (goal_ == Goal::kCompletionTime && cloud_worse) {
    for (const auto& [id, t] : traits) {
      if (t.node_class() == NodeClass::kT3) out.placement[id] = platform::Host::kLgv;
    }
  }
  if (goal_ == Goal::kCompletionTime) {
    // MCT does not offload T1 (no completion-time benefit from SLAM being
    // remote — §IV-B keeps only VDP ECNs remote for this goal).
    for (const auto& [id, t] : traits) {
      if (t.node_class() == NodeClass::kT1) out.placement[id] = remote_;
    }
  }

  for (const auto& [id, t] : traits) {
    if (t.node_class() == NodeClass::kT3 &&
        out.placement.at(id) != platform::Host::kLgv) {
      out.vdp_offloaded = true;
    }
  }
  return out;
}

}  // namespace lgv::core
