// Serialization of MissionReports for offline analysis: CSV traces (one row
// per sample, ready for any plotting tool) and a human-readable summary.
#pragma once

#include <iosfwd>
#include <string>

#include "common/telemetry/critical_path.h"
#include "core/mission_runner.h"

namespace lgv::core {

/// velocity trace as CSV: t,cap,real
void write_velocity_trace_csv(std::ostream& os, const MissionReport& report);

/// network trace as CSV: t,latency_ms,bandwidth_hz,direction,placement
void write_network_trace_csv(std::ostream& os, const MissionReport& report);

/// per-node work as CSV: node,cycles,invocations
void write_node_work_csv(std::ostream& os, const MissionReport& report);

/// The report's metric snapshot as JSON (see telemetry::write_metrics_json).
void write_metrics_json(std::ostream& os, const MissionReport& report);

/// Multi-line human-readable summary (what the examples print).
std::string summarize(const MissionReport& report);

/// Write the CSVs next to each other: <prefix>_velocity.csv,
/// <prefix>_network.csv, <prefix>_nodes.csv — plus <prefix>_metrics.json
/// when the report carries a telemetry snapshot. Returns false on I/O
/// failure.
bool write_report_files(const std::string& prefix, const MissionReport& report);

/// Chrome trace-event JSON (Perfetto-loadable) for a finished mission:
///   core::write_trace_file("mission_trace.json",
///                          runner.runtime().telemetry()->tracer());
bool write_trace_file(const std::string& path, const telemetry::Tracer& tracer);

/// One-event-per-line JSONL (the critical-path analyzer's input format).
bool write_trace_jsonl_file(const std::string& path, const telemetry::Tracer& tracer);

/// Attribute the recorded trace into critical-path buckets and write
/// <path> as `critical_path/1` JSON (see telemetry/critical_path.h). Pass
/// `makespan_s` to attribute against the mission wall-clock instead of the
/// trace extent. Returns the result for in-process assertions.
telemetry::CriticalPathResult write_critical_path_file(
    const std::string& path, const telemetry::Tracer& tracer,
    double makespan_s = -1.0);

}  // namespace lgv::core
