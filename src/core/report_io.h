// Serialization of MissionReports for offline analysis: CSV traces (one row
// per sample, ready for any plotting tool) and a human-readable summary.
#pragma once

#include <iosfwd>
#include <string>

#include "core/mission_runner.h"

namespace lgv::core {

/// velocity trace as CSV: t,cap,real
void write_velocity_trace_csv(std::ostream& os, const MissionReport& report);

/// network trace as CSV: t,latency_ms,bandwidth_hz,direction,placement
void write_network_trace_csv(std::ostream& os, const MissionReport& report);

/// per-node work as CSV: node,cycles,invocations
void write_node_work_csv(std::ostream& os, const MissionReport& report);

/// Multi-line human-readable summary (what the examples print).
std::string summarize(const MissionReport& report);

/// Write all three CSVs next to each other: <prefix>_velocity.csv,
/// <prefix>_network.csv, <prefix>_nodes.csv. Returns false on I/O failure.
bool write_report_files(const std::string& prefix, const MissionReport& report);

}  // namespace lgv::core
