// ROS-style message types exchanged on the node graph of Fig. 2. Every type
// carries a Header (sequence number + virtual timestamp) that the Profiler
// uses to measure VDP makespans, and implements the wire-serialization
// interface the Switcher needs to ship messages across the network link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/geometry.h"
#include "common/grid.h"
#include "common/serialization.h"

namespace lgv::msg {

/// Common metadata prefix (ROS std_msgs/Header analog).
struct Header {
  uint64_t seq = 0;
  SimTime stamp = 0.0;
  std::string frame_id;

  void serialize(WireWriter& w) const;
  static Header deserialize(WireReader& r);
  bool operator==(const Header&) const = default;
};

void serialize_pose(WireWriter& w, const Pose2D& p);
Pose2D deserialize_pose(WireReader& r);

/// 2D lidar sweep (sensor_msgs/LaserScan analog). This is the largest message
/// on the wire — the paper measures its maximum size at 2.94 KB.
struct LaserScan {
  Header header;
  double angle_min = 0.0;
  double angle_max = 0.0;
  double angle_increment = 0.0;
  double range_min = 0.0;
  double range_max = 0.0;
  std::vector<float> ranges;  ///< meters; > range_max means "no return"

  size_t beam_count() const { return ranges.size(); }
  double angle_of(size_t i) const { return angle_min + angle_increment * static_cast<double>(i); }

  void serialize(WireWriter& w) const;
  static LaserScan deserialize(WireReader& r);
  bool operator==(const LaserScan&) const = default;
};

/// Velocity command (geometry_msgs/Twist analog). The paper notes these are
/// ~48 B on the wire — the smallest message class.
struct TwistMsg {
  Header header;
  Velocity2D velocity;

  void serialize(WireWriter& w) const;
  static TwistMsg deserialize(WireReader& r);
  bool operator==(const TwistMsg&) const = default;
};

/// Velocity command with a mux priority attached (input to VelocityMultiplexer).
struct PrioritizedTwist {
  TwistMsg twist;
  int priority = 0;         ///< higher wins
  std::string source;       ///< e.g. "path_tracking", "safety", "joystick"

  void serialize(WireWriter& w) const;
  static PrioritizedTwist deserialize(WireReader& r);
  bool operator==(const PrioritizedTwist&) const = default;
};

/// Dead-reckoned base state (nav_msgs/Odometry analog).
struct Odometry {
  Header header;
  Pose2D pose;
  Velocity2D velocity;

  void serialize(WireWriter& w) const;
  static Odometry deserialize(WireReader& r);
  bool operator==(const Odometry&) const = default;
};

/// Stamped pose (geometry_msgs/PoseStamped analog); also used for goals and
/// for the Localization/SLAM pose estimate.
struct PoseStamped {
  Header header;
  Pose2D pose;

  void serialize(WireWriter& w) const;
  static PoseStamped deserialize(WireReader& r);
  bool operator==(const PoseStamped&) const = default;
};

/// Occupancy values follow the ROS convention: -1 unknown, 0 free … 100 occupied.
constexpr int8_t kUnknownCell = -1;
constexpr int8_t kFreeCell = 0;
constexpr int8_t kOccupiedCell = 100;

/// nav_msgs/OccupancyGrid analog; published by SLAM and consumed by CostmapGen.
struct OccupancyGridMsg {
  Header header;
  GridFrame frame;
  int width = 0;
  int height = 0;
  std::vector<int8_t> data;  ///< row-major, width*height entries

  int8_t at(int x, int y) const { return data[static_cast<size_t>(y) * width + x]; }

  void serialize(WireWriter& w) const;
  static OccupancyGridMsg deserialize(WireReader& r);
  bool operator==(const OccupancyGridMsg&) const = default;
};

/// Planned path (nav_msgs/Path analog), world-frame waypoints.
struct PathMsg {
  Header header;
  std::vector<Pose2D> poses;

  void serialize(WireWriter& w) const;
  static PathMsg deserialize(WireReader& r);
  bool operator==(const PathMsg&) const = default;
};

/// Navigation goal.
struct GoalMsg {
  Header header;
  Pose2D target;

  void serialize(WireWriter& w) const;
  static GoalMsg deserialize(WireReader& r);
  bool operator==(const GoalMsg&) const = default;
};

/// Per-node timing report published by the Profiler (§VII): the measured
/// processing time of one node invocation, in virtual seconds.
struct TimingReport {
  Header header;
  std::string node_name;
  double processing_time = 0.0;

  void serialize(WireWriter& w) const;
  static TimingReport deserialize(WireReader& r);
  bool operator==(const TimingReport&) const = default;
};

}  // namespace lgv::msg
