#include "msg/messages.h"

namespace lgv::msg {

void Header::serialize(WireWriter& w) const {
  w.put_varint(seq);
  w.put_double(stamp);
  w.put_string(frame_id);
}

Header Header::deserialize(WireReader& r) {
  Header h;
  h.seq = r.get_varint();
  h.stamp = r.get_double();
  h.frame_id = r.get_string();
  return h;
}

void serialize_pose(WireWriter& w, const Pose2D& p) {
  w.put_double(p.x);
  w.put_double(p.y);
  w.put_double(p.theta);
}

Pose2D deserialize_pose(WireReader& r) {
  const double x = r.get_double();
  const double y = r.get_double();
  const double th = r.get_double();
  return {x, y, th};
}

void LaserScan::serialize(WireWriter& w) const {
  header.serialize(w);
  w.put_double(angle_min);
  w.put_double(angle_max);
  w.put_double(angle_increment);
  w.put_double(range_min);
  w.put_double(range_max);
  w.put_repeated_float(ranges);
}

LaserScan LaserScan::deserialize(WireReader& r) {
  LaserScan s;
  s.header = Header::deserialize(r);
  s.angle_min = r.get_double();
  s.angle_max = r.get_double();
  s.angle_increment = r.get_double();
  s.range_min = r.get_double();
  s.range_max = r.get_double();
  s.ranges = r.get_repeated_float();
  return s;
}

void TwistMsg::serialize(WireWriter& w) const {
  header.serialize(w);
  w.put_double(velocity.linear);
  w.put_double(velocity.angular);
}

TwistMsg TwistMsg::deserialize(WireReader& r) {
  TwistMsg t;
  t.header = Header::deserialize(r);
  t.velocity.linear = r.get_double();
  t.velocity.angular = r.get_double();
  return t;
}

void PrioritizedTwist::serialize(WireWriter& w) const {
  twist.serialize(w);
  w.put_signed(priority);
  w.put_string(source);
}

PrioritizedTwist PrioritizedTwist::deserialize(WireReader& r) {
  PrioritizedTwist p;
  p.twist = TwistMsg::deserialize(r);
  p.priority = static_cast<int>(r.get_signed());
  p.source = r.get_string();
  return p;
}

void Odometry::serialize(WireWriter& w) const {
  header.serialize(w);
  serialize_pose(w, pose);
  w.put_double(velocity.linear);
  w.put_double(velocity.angular);
}

Odometry Odometry::deserialize(WireReader& r) {
  Odometry o;
  o.header = Header::deserialize(r);
  o.pose = deserialize_pose(r);
  o.velocity.linear = r.get_double();
  o.velocity.angular = r.get_double();
  return o;
}

void PoseStamped::serialize(WireWriter& w) const {
  header.serialize(w);
  serialize_pose(w, pose);
}

PoseStamped PoseStamped::deserialize(WireReader& r) {
  PoseStamped p;
  p.header = Header::deserialize(r);
  p.pose = deserialize_pose(r);
  return p;
}

void OccupancyGridMsg::serialize(WireWriter& w) const {
  header.serialize(w);
  w.put_double(frame.origin.x);
  w.put_double(frame.origin.y);
  w.put_double(frame.resolution);
  w.put_signed(width);
  w.put_signed(height);
  w.put_repeated_i8(data);
}

OccupancyGridMsg OccupancyGridMsg::deserialize(WireReader& r) {
  OccupancyGridMsg g;
  g.header = Header::deserialize(r);
  g.frame.origin.x = r.get_double();
  g.frame.origin.y = r.get_double();
  g.frame.resolution = r.get_double();
  g.width = static_cast<int>(r.get_signed());
  g.height = static_cast<int>(r.get_signed());
  g.data = r.get_repeated_i8();
  // Dimensions must be consistent with the payload, or at() would index out
  // of bounds long after the decode "succeeded" on a corrupted frame.
  if (g.width < 0 || g.height < 0 ||
      g.data.size() != static_cast<size_t>(g.width) * static_cast<size_t>(g.height)) {
    throw std::out_of_range("OccupancyGridMsg: dimensions disagree with data");
  }
  return g;
}

void PathMsg::serialize(WireWriter& w) const {
  header.serialize(w);
  w.put_varint(poses.size());
  for (const Pose2D& p : poses) serialize_pose(w, p);
}

PathMsg PathMsg::deserialize(WireReader& r) {
  PathMsg m;
  m.header = Header::deserialize(r);
  // A pose is three raw doubles (24 bytes) on the wire; a count that cannot
  // fit in the remaining buffer is corruption — reject before reserving.
  const size_t n = r.get_varint();
  if (n > r.remaining() / 24) {
    throw std::out_of_range("PathMsg: pose count exceeds buffer");
  }
  m.poses.reserve(n);
  for (size_t i = 0; i < n; ++i) m.poses.push_back(deserialize_pose(r));
  return m;
}

void GoalMsg::serialize(WireWriter& w) const {
  header.serialize(w);
  serialize_pose(w, target);
}

GoalMsg GoalMsg::deserialize(WireReader& r) {
  GoalMsg g;
  g.header = Header::deserialize(r);
  g.target = deserialize_pose(r);
  return g;
}

void TimingReport::serialize(WireWriter& w) const {
  header.serialize(w);
  w.put_string(node_name);
  w.put_double(processing_time);
}

TimingReport TimingReport::deserialize(WireReader& r) {
  TimingReport t;
  t.header = Header::deserialize(r);
  t.node_name = r.get_string();
  t.processing_time = r.get_double();
  return t;
}

}  // namespace lgv::msg
