// Fixed-size worker pool used by the cloud-acceleration kernels (parallel
// scanMatch, Fig. 6; parallel scoreTrajectory, Fig. 5). The pool mirrors the
// paper's design: a main thread partitions M work items into N chunks and
// blocks until all chunks complete.
//
// Multi-tenancy: tasks are queued per *session* (one session per vehicle in
// the fleet-serving worker; session 0 is the default for single-tenant
// callers) and dispatched by stride scheduling over per-session virtual
// time, so one chatty session cannot starve the rest — a session that
// submits 300 tasks and a session that submits 3 interleave in proportion to
// their weights, not in FIFO arrival order. With only session 0 in play the
// pool degenerates to the original single FIFO queue.
//
// Concurrency hygiene follows the C++ Core Guidelines: RAII locks only
// (CP.20), condition waits always have a predicate (CP.42), threads are
// joined in the destructor (CP.23/CP.25), tasks are the unit of work (CP.4).
// All condition waits are timed (see kWaitSlice in the .cpp) so a lost
// wakeup — glibc < 2.41 can drop one under notify churn (bug 25847) —
// degrades to a bounded delay instead of a shutdown deadlock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lgv {

namespace telemetry {
class Counter;
class Gauge;
class Histogram;
class Telemetry;
}  // namespace telemetry

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task for asynchronous execution on the default session (0).
  void submit(std::function<void()> task);

  /// Enqueue a task under `session`. Unregistered sessions are materialized
  /// on first use with weight 1 (so ad-hoc ids just work); register_session
  /// sets weight/label/bounds explicitly.
  void submit(uint32_t session, std::function<void()> task);

  /// Bounded enqueue: false (task not queued) when the session was registered
  /// with `max_queue` > 0 and already has that many tasks waiting. The
  /// backpressure primitive for the fleet worker — a flooding session is
  /// bounced here instead of growing an unbounded queue.
  bool try_submit(uint32_t session, std::function<void()> task);

  /// Declare a scheduling session: `weight` is its stride-share (a weight-2
  /// session drains twice as fast as a weight-1 session under contention),
  /// `label` names the per-session `pool_task_wait_us{session=...}` histogram
  /// (defaults to the numeric id), `max_queue` bounds try_submit (0 = no
  /// bound). Re-registering updates weight/label/bound in place.
  void register_session(uint32_t session, uint64_t weight,
                        const std::string& label = "", size_t max_queue = 0);

  /// Tasks currently waiting in `session`'s queue (not yet dispatched).
  size_t session_queue_depth(uint32_t session) const;

  /// Wire the pool's hot-path metrics into `telemetry` (nullptr disconnects):
  /// `pool_tasks_total`, `pool_queue_depth`, `pool_task_wait_us` /
  /// `pool_task_run_us` histograms and `pool_busy_us_total`, all labeled
  /// {pool=`pool_name`}; registered sessions additionally get
  /// `pool_task_wait_us{pool=..., session=<label>}`. Times are host
  /// wall-clock — the pool runs real threads; virtual time never advances
  /// inside a task. Worker utilization over an interval is
  /// busy_us / (interval · num_threads).
  ///
  /// Lifetime: `telemetry` must outlive the pool (workers record after each
  /// task, including after parallel_chunks() has released its caller) —
  /// destroy the pool, which joins them, before the bundle.
  void set_telemetry(telemetry::Telemetry* telemetry,
                     const std::string& pool_name = "remote_pool");

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Run fn(i) for i in [0, count) across the pool, blocking until done.
  /// Work is partitioned into contiguous chunks, one per worker, matching the
  /// static partitioning the paper describes for both parallel kernels.
  /// Templated so the per-item call inlines inside each chunk — only one
  /// type-erased dispatch happens per chunk, not per index.
  template <typename Fn>
  void parallel_for(size_t count, Fn&& fn) {
    parallel_chunks(count, num_threads(), [&fn](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }

  /// Chunked variant: fn(begin, end) once per chunk. `chunks` defaults to the
  /// worker count. Exposed so callers can meter per-chunk work.
  void parallel_chunks(size_t count, size_t chunks,
                       const std::function<void(size_t begin, size_t end)>& fn);

  /// Session-attributed form: the chunk tasks queue under `session`, so a
  /// vehicle's kernel chunks contend fair-share against other tenants.
  void parallel_chunks(uint32_t session, size_t count, size_t chunks,
                       const std::function<void(size_t begin, size_t end)>& fn);

  /// Dynamic-scheduling variant: min(workers, ceil(count/grain)) tasks each
  /// grab the next `grain`-sized range of [0, count) off a shared atomic
  /// counter until none remain, then block until every range ran. Unlike the
  /// static partition above, a worker that drew cheap items (e.g. trajectory
  /// candidates that early-exit on collision) immediately takes more work
  /// instead of idling, so the region finishes when the *work* runs out, not
  /// when the unluckiest pre-assigned chunk does. fn(begin, end) may run
  /// concurrently with itself on disjoint ranges; ranges are contiguous,
  /// disjoint, and cover [0, count) exactly once.
  void parallel_dynamic(size_t count, size_t grain,
                        const std::function<void(size_t begin, size_t end)>& fn);

  /// Session-attributed form of parallel_dynamic (see parallel_chunks).
  void parallel_dynamic(uint32_t session, size_t count, size_t grain,
                        const std::function<void(size_t begin, size_t end)>& fn);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One tenant's queue + stride-scheduler state. Session structs are never
  /// erased (ids are few — one per vehicle — and the structs are small), so
  /// worker threads can cache pointers across unlocks.
  struct SessionQueue {
    std::deque<QueuedTask> queue;
    uint64_t weight = 1;
    double vtime = 0.0;    ///< virtual finish time; next dispatch picks min
    size_t max_queue = 0;  ///< try_submit bound (0 = unbounded)
    std::string label;
    telemetry::Histogram* wait_us = nullptr;
  };

  void worker_loop();
  // All of these require mutex_ held.
  SessionQueue& session_locked(uint32_t session);
  void enqueue_locked(uint32_t id, SessionQueue& s, std::function<void()>&& task);
  SessionQueue* pick_locked();
  void refresh_session_telemetry_locked(uint32_t id, SessionQueue& s);

  std::vector<std::thread> workers_;
  std::map<uint32_t, SessionQueue> sessions_;
  std::vector<uint32_t> ready_;  ///< ids with non-empty queues (unsorted)
  size_t queued_ = 0;            ///< total tasks waiting across sessions
  double vclock_ = 0.0;          ///< vtime of the last dispatch (stride floor)
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool stopping_ = false;

  // Telemetry handles (cached once in set_telemetry; null when disabled).
  telemetry::Telemetry* telemetry_ = nullptr;
  std::string pool_name_;
  telemetry::Counter* tasks_total_ = nullptr;
  telemetry::Counter* busy_us_total_ = nullptr;
  telemetry::Gauge* queue_depth_ = nullptr;
  telemetry::Histogram* task_wait_us_ = nullptr;
  telemetry::Histogram* task_run_us_ = nullptr;
};

/// Compute the contiguous [begin, end) range of chunk `chunk` out of `chunks`
/// over `count` items, distributing the remainder over the leading chunks.
struct ChunkRange {
  size_t begin;
  size_t end;
};
ChunkRange chunk_range(size_t count, size_t chunks, size_t chunk);

}  // namespace lgv
