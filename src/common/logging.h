// Minimal leveled logger. Quiet by default so tests and benches stay clean;
// examples turn it up for narrative output.
//
// Thread-safe: the level gate is an atomic read, each write is serialized by
// an internal mutex (pool workers and the mission loop can log
// concurrently). When a virtual clock is registered, every line is stamped
// with virtual time, so logs correlate with trace spans. Tests install a
// sink to capture output instead of scraping stderr.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace lgv {

class SimClock;

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  /// Receives each formatted line (without trailing newline). Installing a
  /// sink replaces the default stderr output; a null sink restores it.
  using Sink = std::function<void(LogLevel level, const std::string& line)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Stamp lines with `clock->now()` virtual seconds; nullptr disables
  /// stamping. The clock must outlive the registration and is expected to be
  /// advanced only by the (single-threaded) simulation loop.
  void set_clock(const SimClock* clock);
  void set_sink(Sink sink);

  void write(LogLevel level, const std::string& tag, const std::string& message);

 private:
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  ///< guards clock_, sink_, and output interleaving
  const SimClock* clock_ = nullptr;
  Sink sink_;
};

namespace detail {
template <typename... Args>
std::string format_log(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

#define LGV_LOG(lgv_lvl, tag, ...)                                       \
  do {                                                                   \
    if (static_cast<int>(lgv_lvl) >=                                     \
        static_cast<int>(::lgv::Logger::instance().level())) {           \
      ::lgv::Logger::instance().write(lgv_lvl, tag,                      \
                                      ::lgv::detail::format_log(__VA_ARGS__)); \
    }                                                                    \
  } while (0)

#define LGV_DEBUG(tag, ...) LGV_LOG(::lgv::LogLevel::kDebug, tag, __VA_ARGS__)
#define LGV_INFO(tag, ...) LGV_LOG(::lgv::LogLevel::kInfo, tag, __VA_ARGS__)
#define LGV_WARN(tag, ...) LGV_LOG(::lgv::LogLevel::kWarn, tag, __VA_ARGS__)
#define LGV_ERROR(tag, ...) LGV_LOG(::lgv::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace lgv
