// Minimal leveled logger. Quiet by default so tests and benches stay clean;
// examples turn it up for narrative output.
#pragma once

#include <sstream>
#include <string>

namespace lgv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& tag, const std::string& message);

 private:
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {
template <typename... Args>
std::string format_log(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

#define LGV_LOG(lgv_lvl, tag, ...)                                       \
  do {                                                                   \
    if (static_cast<int>(lgv_lvl) >=                                     \
        static_cast<int>(::lgv::Logger::instance().level())) {           \
      ::lgv::Logger::instance().write(lgv_lvl, tag,                      \
                                      ::lgv::detail::format_log(__VA_ARGS__)); \
    }                                                                    \
  } while (0)

#define LGV_DEBUG(tag, ...) LGV_LOG(::lgv::LogLevel::kDebug, tag, __VA_ARGS__)
#define LGV_INFO(tag, ...) LGV_LOG(::lgv::LogLevel::kInfo, tag, __VA_ARGS__)
#define LGV_WARN(tag, ...) LGV_LOG(::lgv::LogLevel::kWarn, tag, __VA_ARGS__)
#define LGV_ERROR(tag, ...) LGV_LOG(::lgv::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace lgv
