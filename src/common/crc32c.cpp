#include "common/crc32c.h"

#include <array>

namespace lgv {

namespace {

// Reflected CRC32C table, generated at static-init time from the reversed
// polynomial 0x82F63B78 (bit-reflection of 0x1EDC6F41).
std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& table() {
  static const std::array<uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

uint32_t crc32c(const void* data, size_t size, uint32_t seed) {
  const auto& t = table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace lgv
