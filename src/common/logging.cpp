#include "common/logging.h"

#include <cstdio>
#include <iostream>

#include "common/clock.h"

namespace lgv {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_clock(const SimClock* clock) {
  const std::scoped_lock lock(mutex_);
  clock_ = clock;
}

void Logger::set_sink(Sink sink) {
  const std::scoped_lock lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& tag, const std::string& message) {
  const std::scoped_lock lock(mutex_);
  std::string line;
  line.reserve(tag.size() + message.size() + 32);
  line += '[';
  line += level_name(level);
  line += "] ";
  if (clock_ != nullptr) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[t=%.3f] ", clock_->now());
    line += stamp;
  }
  line += tag;
  line += ": ";
  line += message;
  if (sink_) {
    sink_(level, line);
  } else {
    std::cerr << line << "\n";
  }
}

}  // namespace lgv
