#include "common/logging.h"

#include <iostream>
#include <mutex>

namespace lgv {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::mutex g_log_mutex;
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& tag, const std::string& message) {
  const std::scoped_lock lock(g_log_mutex);
  std::cerr << "[" << level_name(level) << "] " << tag << ": " << message << "\n";
}

}  // namespace lgv
