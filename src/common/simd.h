// Runtime CPU-feature dispatch for the hand-vectorized kernels (scanMatch
// score, trajectory-rollout forward simulation). The scalar implementations
// remain the always-compiled semantic reference; the SSE2/AVX2 variants are
// compiled into their own translation units (the AVX2 ones with -mavx2 -mfma,
// see src/common/CMakeLists.txt) and selected once at startup from CPUID.
//
// Selection order: LGV_SIMD environment override ("scalar" | "sse2" | "avx2",
// capped at what the build and the CPU actually support) → highest detected
// level. force_level() exists so equivalence tests can pin a specific path
// regardless of the host.
#pragma once

namespace lgv::simd {

enum class Level {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
};

const char* level_name(Level level);

/// Highest level this build AND this CPU support (cached after first call).
Level detected_level();

/// The level kernels should dispatch on: force_level() override if set,
/// otherwise LGV_SIMD env override, otherwise detected_level().
Level active_level();

/// Pin the dispatch level (tests); pass detected_level() semantics back by
/// forcing a level above what is available — it is capped. Not thread-safe
/// against concurrent kernel launches; call between kernel invocations.
void force_level(Level level);
/// Drop the force_level() pin.
void clear_forced_level();

}  // namespace lgv::simd
