// Planar geometry primitives shared by every subsystem: points, poses,
// rigid-body transforms and angle arithmetic on SO(2).
#pragma once

#include <cmath>
#include <iosfwd>
#include <vector>

namespace lgv {

/// Normalize an angle to the half-open interval (-pi, pi].
double normalize_angle(double a);

/// Shortest signed angular distance from `from` to `to`, in (-pi, pi].
double angle_diff(double to, double from);

/// A point in the plane, in meters.
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  Point2D() = default;
  Point2D(double x_, double y_) : x(x_), y(y_) {}

  Point2D operator+(const Point2D& o) const { return {x + o.x, y + o.y}; }
  Point2D operator-(const Point2D& o) const { return {x - o.x, y - o.y}; }
  Point2D operator*(double s) const { return {x * s, y * s}; }
  bool operator==(const Point2D& o) const = default;

  double norm() const { return std::hypot(x, y); }
  double squared_norm() const { return x * x + y * y; }
  double dot(const Point2D& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product (signed parallelogram area).
  double cross(const Point2D& o) const { return x * o.y - y * o.x; }
};

double distance(const Point2D& a, const Point2D& b);

/// A planar rigid-body pose (position + heading).
struct Pose2D {
  double x = 0.0;      ///< meters
  double y = 0.0;      ///< meters
  double theta = 0.0;  ///< radians, normalized to (-pi, pi]

  Pose2D() = default;
  Pose2D(double x_, double y_, double th) : x(x_), y(y_), theta(normalize_angle(th)) {}

  Point2D position() const { return {x, y}; }

  /// Express a point given in this pose's frame in the world frame.
  Point2D transform(const Point2D& local) const {
    const double c = std::cos(theta), s = std::sin(theta);
    return {x + c * local.x - s * local.y, y + s * local.x + c * local.y};
  }

  /// Express a world-frame point in this pose's frame.
  Point2D inverse_transform(const Point2D& world) const {
    const double c = std::cos(theta), s = std::sin(theta);
    const double dx = world.x - x, dy = world.y - y;
    return {c * dx + s * dy, -s * dx + c * dy};
  }

  /// Compose two poses: result = this ∘ other (other expressed in this frame).
  Pose2D compose(const Pose2D& other) const {
    const Point2D p = transform(other.position());
    return {p.x, p.y, theta + other.theta};
  }

  /// The pose of the world origin expressed in this pose's frame.
  Pose2D inverse() const {
    const double c = std::cos(theta), s = std::sin(theta);
    return {-(c * x + s * y), -(-s * x + c * y), -theta};
  }

  /// Relative pose that takes `this` to `target`: target = this ∘ result.
  Pose2D between(const Pose2D& target) const { return inverse().compose(target); }

  bool operator==(const Pose2D& o) const = default;
};

double distance(const Pose2D& a, const Pose2D& b);

/// Velocity command of a differential-drive base (ROS geometry_msgs/Twist subset).
struct Velocity2D {
  double linear = 0.0;   ///< m/s, along the robot's heading
  double angular = 0.0;  ///< rad/s, counter-clockwise positive

  bool operator==(const Velocity2D& o) const = default;
};

/// Integer cell index into a 2D grid.
struct CellIndex {
  int x = 0;
  int y = 0;
  bool operator==(const CellIndex& o) const = default;
};

/// Axis-aligned bounding box in meters.
struct BoundingBox {
  Point2D min;
  Point2D max;

  bool contains(const Point2D& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  void expand(const Point2D& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }
  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
};

/// Cells visited by a ray between two grid cells (integer Bresenham walk).
std::vector<CellIndex> bresenham_line(CellIndex from, CellIndex to);

/// Total arc length of a polyline.
double path_length(const std::vector<Point2D>& pts);

std::ostream& operator<<(std::ostream& os, const Point2D& p);
std::ostream& operator<<(std::ostream& os, const Pose2D& p);

}  // namespace lgv
