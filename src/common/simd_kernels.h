// Dispatch surface of the vectorized scanMatch building blocks. The scalar
// semantics these mirror live in ScanMatcher::score (the reference loop);
// see docs/kernels.md for the staged pipeline these two kernels implement:
//
//   stage A  transform_project — rigid-transform the SoA beam endpoints by a
//            candidate pose and project endpoint + free-space-check points to
//            cell indices. Bit-identical to the scalar projection (same
//            sub/div/floor sequence), so the branch decisions computed from
//            the cells never diverge from the reference.
//   stage B  (scalar, in the caller) — likelihood-field entry lookups and
//            hit/unknown classification, compacting hits.
//   stage C  score_hits — per hit, min squared distance to an occupied cell
//            of the 3×3 neighborhood (from the packed entry mask) and
//            exp(−d²/2σ²), summed. Equal to the scalar value up to reduction
//            order and the vectorized exp's ≤2 ulp.
//
// exp_neg_array is stage C's exponential exposed on its own for accuracy
// tests. All entry points take an explicit Level so equivalence tests can
// exercise a specific path; callers normally pass simd::active_level().
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace lgv::simd {

struct TransformProjectArgs {
  size_t n = 0;
  // Sensor-frame SoA endpoint arrays (PrecomputedScan layout).
  const double* end_x = nullptr;
  const double* end_y = nullptr;
  const double* before_x = nullptr;
  const double* before_y = nullptr;
  // Candidate pose.
  double pose_x = 0.0, pose_y = 0.0, cos_t = 0.0, sin_t = 0.0;
  // Grid frame.
  double origin_x = 0.0, origin_y = 0.0, resolution = 1.0;
  // Outputs (size n): world-frame endpoints and projected cell indices.
  double* out_end_x = nullptr;
  double* out_end_y = nullptr;
  int32_t* out_end_cx = nullptr;
  int32_t* out_end_cy = nullptr;
  int32_t* out_before_cx = nullptr;
  int32_t* out_before_cy = nullptr;
};

struct ScoreHitsArgs {
  size_t n = 0;
  // Hit-compacted arrays: world endpoint, its cell, the field entry's 9-bit
  // neighbor-occupancy mask.
  const double* end_x = nullptr;
  const double* end_y = nullptr;
  const int32_t* cell_x = nullptr;
  const int32_t* cell_y = nullptr;
  const int32_t* neighbor_mask = nullptr;
  double origin_x = 0.0, origin_y = 0.0, resolution = 1.0;
  double two_sigma2 = 1.0;  ///< 2σ², the exp kernel denominator
};

/// Stage A. `level` must be a vector level actually available in this build
/// (falls back to SSE2-as-compiled when asked for more than the build has).
void transform_project(Level level, const TransformProjectArgs& args);

/// Stage C; returns Σ exp(−min_d²/2σ²) over the hits.
double score_hits(Level level, const ScoreHitsArgs& args);

/// out[i] = exp(x[i]) via the vectorized exponential (≤2 ulp of libm).
void exp_array(Level level, const double* x, double* out, size_t n);

namespace detail {
void transform_project_sse2(const TransformProjectArgs& args);
double score_hits_sse2(const ScoreHitsArgs& args);
void exp_array_sse2(const double* x, double* out, size_t n);
void transform_project_avx2(const TransformProjectArgs& args);
double score_hits_avx2(const ScoreHitsArgs& args);
void exp_array_avx2(const double* x, double* out, size_t n);
}  // namespace detail

}  // namespace lgv::simd
