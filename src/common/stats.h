// Small statistics helpers used by the Profiler (latency/bandwidth windows)
// and by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace lgv {

/// Streaming mean / min / max / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  void reset();

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation, p in [0, 100]).
double percentile(std::vector<double> samples, double p);

/// Sliding window over (timestamp, value) pairs; used for the 1 s bandwidth
/// window Algorithm 2 reads.
class TimeWindow {
 public:
  explicit TimeWindow(double horizon_sec) : horizon_(horizon_sec) {}

  void add(double t, double value);
  /// Drop entries older than t - horizon.
  void expire(double t);

  size_t count() const { return entries_.size(); }
  double sum() const;
  double mean() const;
  /// Events per second over the window ending at t (count / horizon).
  double rate(double t);

 private:
  double horizon_;
  std::deque<std::pair<double, double>> entries_;
};

}  // namespace lgv
