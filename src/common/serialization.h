// Compact binary wire format used by the Switcher to ship ROS-style messages
// between the LGV and the remote worker (§VII: "we use protobuf to serialize
// ROS message for efficient data transmission"). This is a small
// protobuf-inspired encoder: varint integers, zigzag signed values, raw
// little-endian doubles, and length-prefixed repeated fields.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace lgv {

class WireWriter {
 public:
  void put_varint(uint64_t v);
  void put_signed(int64_t v) { put_varint(zigzag_encode(v)); }
  void put_double(double v);
  void put_float(float v);
  void put_bool(bool v) { put_varint(v ? 1 : 0); }
  void put_string(const std::string& s);
  void put_bytes(const void* data, size_t size);

  // Any contiguous range of arithmetic values (vector, aligned_vector, span).
  template <typename Range>
  void put_repeated_double(const Range& values) {
    put_varint(values.size());
    for (const auto& v : values) put_double(static_cast<double>(v));
  }
  template <typename T>
  void put_repeated_float(const std::vector<T>& values) {
    put_varint(values.size());
    for (const T& v : values) put_float(static_cast<float>(v));
  }
  void put_repeated_varint(const std::vector<uint64_t>& values);
  void put_repeated_i8(const std::vector<int8_t>& values);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

  static uint64_t zigzag_encode(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  }

 private:
  std::vector<uint8_t> buffer_;
};

class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint64_t get_varint();
  int64_t get_signed() { return zigzag_decode(get_varint()); }
  double get_double();
  float get_float();
  bool get_bool() { return get_varint() != 0; }
  std::string get_string();

  /// Read `n` raw bytes (as written by put_bytes).
  std::vector<uint8_t> get_raw(size_t n);

  /// Read a varint element count and validate it against the remaining
  /// buffer before the caller allocates: `n` elements of at least
  /// `min_element_bytes` each must still fit. This is the same allocation-
  /// bomb guard the repeated-field readers use, exposed for hand-rolled
  /// record decoders (particle sets, delta runs) whose counts are
  /// attacker-controlled on the wire.
  size_t get_count(size_t min_element_bytes) {
    return checked_count(get_varint(), min_element_bytes);
  }

  std::vector<double> get_repeated_double();
  std::vector<float> get_repeated_float();
  std::vector<uint64_t> get_repeated_varint();
  std::vector<int8_t> get_repeated_i8();

  size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

  static int64_t zigzag_decode(uint64_t v) {
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
  }

 private:
  /// Overflow-safe bounds check: `pos_ + n` can wrap for an attacker-supplied
  /// `n` close to SIZE_MAX (a corrupted length varint), which would let the
  /// old `pos_ + n > size_` form pass and read out of bounds.
  void require(size_t n) const {
    if (n > size_ - pos_) throw std::out_of_range("WireReader: truncated buffer");
  }
  /// Validate a length-prefixed element count *before* allocating: `n`
  /// elements of at least `element_size` bytes each must still fit in the
  /// buffer. Rejects allocation bombs (a corrupted count of, say, 2^40
  /// would otherwise reserve terabytes before the first element read fails).
  size_t checked_count(size_t n, size_t element_size) const {
    if (n > remaining() / element_size) {
      throw std::out_of_range("WireReader: repeated count exceeds buffer");
    }
    return n;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// A type is wire-serializable if it provides:
///   void serialize(WireWriter&) const;
///   static T deserialize(WireReader&);
template <typename T>
std::vector<uint8_t> serialize_to_bytes(const T& value) {
  WireWriter w;
  value.serialize(w);
  return w.take();
}

template <typename T>
T deserialize_from_bytes(const std::vector<uint8_t>& bytes) {
  WireReader r(bytes);
  return T::deserialize(r);
}

}  // namespace lgv
