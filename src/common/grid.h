// Dense row-major 2D grid container used by occupancy grids and costmaps.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/geometry.h"

namespace lgv {

template <typename T>
class Grid {
 public:
  Grid() = default;
  Grid(int width, int height, T fill = T{})
      : width_(width), height_(height), cells_(static_cast<size_t>(width) * height, fill) {
    assert(width >= 0 && height >= 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  size_t size() const { return cells_.size(); }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  bool in_bounds(CellIndex c) const { return in_bounds(c.x, c.y); }

  T& at(int x, int y) {
    assert(in_bounds(x, y));
    return cells_[static_cast<size_t>(y) * width_ + x];
  }
  const T& at(int x, int y) const {
    assert(in_bounds(x, y));
    return cells_[static_cast<size_t>(y) * width_ + x];
  }
  T& at(CellIndex c) { return at(c.x, c.y); }
  const T& at(CellIndex c) const { return at(c.x, c.y); }

  /// Value at `c`, or `fallback` when `c` is out of bounds. Lets hot loops
  /// fold the bounds check into a single branch instead of assert-guarded at().
  T value_or(CellIndex c, T fallback) const {
    return in_bounds(c) ? cells_[static_cast<size_t>(c.y) * width_ + c.x] : fallback;
  }

  void fill(T value) { cells_.assign(cells_.size(), value); }

  std::vector<T>& data() { return cells_; }
  const std::vector<T>& data() const { return cells_; }

  bool operator==(const Grid& o) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> cells_;
};

/// Mapping between continuous world coordinates and grid cells.
struct GridFrame {
  Point2D origin;          ///< world position of cell (0,0)'s lower-left corner
  double resolution = 0.05;  ///< meters per cell

  CellIndex world_to_cell(const Point2D& p) const {
    return {static_cast<int>(std::floor((p.x - origin.x) / resolution)),
            static_cast<int>(std::floor((p.y - origin.y) / resolution))};
  }
  Point2D cell_to_world(CellIndex c) const {
    return {origin.x + (c.x + 0.5) * resolution, origin.y + (c.y + 0.5) * resolution};
  }

  bool operator==(const GridFrame& o) const = default;
};

}  // namespace lgv
