// Dense row-major 2D grid containers used by occupancy grids and costmaps.
// Grid<T> owns its cells outright; CowGrid<T> keeps them behind a shared,
// refcounted block with copy-on-first-write, so copying a CowGrid (the RBPF
// resample / migration-snapshot hot path) is O(1) until someone writes.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/geometry.h"

namespace lgv {

template <typename T>
class Grid {
 public:
  Grid() = default;
  Grid(int width, int height, T fill = T{})
      : width_(width), height_(height), cells_(static_cast<size_t>(width) * height, fill) {
    assert(width >= 0 && height >= 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  size_t size() const { return cells_.size(); }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  bool in_bounds(CellIndex c) const { return in_bounds(c.x, c.y); }

  T& at(int x, int y) {
    assert(in_bounds(x, y));
    return cells_[static_cast<size_t>(y) * width_ + x];
  }
  const T& at(int x, int y) const {
    assert(in_bounds(x, y));
    return cells_[static_cast<size_t>(y) * width_ + x];
  }
  T& at(CellIndex c) { return at(c.x, c.y); }
  const T& at(CellIndex c) const { return at(c.x, c.y); }

  /// Value at `c`, or `fallback` when `c` is out of bounds. Lets hot loops
  /// fold the bounds check into a single branch instead of assert-guarded at().
  T value_or(CellIndex c, T fallback) const {
    return in_bounds(c) ? cells_[static_cast<size_t>(c.y) * width_ + c.x] : fallback;
  }

  void fill(T value) { cells_.assign(cells_.size(), value); }

  std::vector<T>& data() { return cells_; }
  const std::vector<T>& data() const { return cells_; }

  bool operator==(const Grid& o) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> cells_;
};

namespace detail {
/// Process-wide count of copy-on-write detaches (the deep copies CoW could
/// not avoid). Exported as the `grid_cow_copies_total` metric; benches read
/// deltas around a region of interest.
inline std::atomic<uint64_t> g_cow_detaches{0};
}  // namespace detail

inline uint64_t cow_detach_count() {
  return detail::g_cow_detaches.load(std::memory_order_relaxed);
}

/// Row-major 2D grid whose cell block is shared between copies and cloned
/// lazily on the first write (copy-on-write). Reads go through the same
/// interface as Grid<T>; writes must use the mut_/mutable_ accessors, which
/// detach the block when it is shared.
///
/// Thread-safety: distinct CowGrid objects sharing one block may be read and
/// written concurrently from different threads — the refcount is atomic and a
/// writer that finds the block shared clones it before touching a byte. One
/// CowGrid object must not be used from two threads at once (same contract as
/// Grid<T>). A use_count() of 1 is exact for the sole owner, so in-place
/// writes never race with a concurrent clone.
template <typename T>
class CowGrid {
 public:
  CowGrid() = default;
  CowGrid(int width, int height, T fill = T{})
      : width_(width),
        height_(height),
        cells_(std::make_shared<std::vector<T>>(static_cast<size_t>(width) * height,
                                                fill)) {
    assert(width >= 0 && height >= 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  size_t size() const { return cells_ == nullptr ? 0 : cells_->size(); }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  bool in_bounds(CellIndex c) const { return in_bounds(c.x, c.y); }

  const T& at(int x, int y) const {
    assert(in_bounds(x, y));
    return (*cells_)[static_cast<size_t>(y) * width_ + x];
  }
  const T& at(CellIndex c) const { return at(c.x, c.y); }

  T value_or(CellIndex c, T fallback) const {
    return in_bounds(c) ? (*cells_)[static_cast<size_t>(c.y) * width_ + c.x]
                        : fallback;
  }

  /// Mutable cell access; clones the block first when it is shared.
  T& mut_at(int x, int y) {
    assert(in_bounds(x, y));
    detach();
    return (*cells_)[static_cast<size_t>(y) * width_ + x];
  }
  T& mut_at(CellIndex c) { return mut_at(c.x, c.y); }

  const std::vector<T>& data() const {
    static const std::vector<T> kEmpty;
    return cells_ == nullptr ? kEmpty : *cells_;
  }
  /// Mutable view of the whole block; clones first when shared.
  std::vector<T>& mutable_data() {
    detach();
    return *cells_;
  }

  /// True when both grids alias the same cell block (neither has written
  /// since the copy). Exposed for tests and the CoW benchmarks.
  bool shares_storage_with(const CowGrid& o) const {
    return cells_ != nullptr && cells_ == o.cells_;
  }

  /// Force a private copy now (the deep-copy reference mode of the CoW
  /// benchmarks; also useful before handing the grid to another thread).
  void unshare() { detach(); }

  bool operator==(const CowGrid& o) const {
    return width_ == o.width_ && height_ == o.height_ &&
           (cells_ == o.cells_ || data() == o.data());
  }

 private:
  void detach() {
    if (cells_ == nullptr) {
      cells_ = std::make_shared<std::vector<T>>();
      return;
    }
    // use_count() == 1 is exact for the sole owner: nobody else holds a
    // reference that could be copied concurrently. Any stale over-count only
    // causes a harmless extra clone.
    if (cells_.use_count() != 1) {
      cells_ = std::make_shared<std::vector<T>>(*cells_);
      detail::g_cow_detaches.fetch_add(1, std::memory_order_relaxed);
    }
  }

  int width_ = 0;
  int height_ = 0;
  std::shared_ptr<std::vector<T>> cells_;
};

/// Mapping between continuous world coordinates and grid cells.
struct GridFrame {
  Point2D origin;          ///< world position of cell (0,0)'s lower-left corner
  double resolution = 0.05;  ///< meters per cell

  CellIndex world_to_cell(const Point2D& p) const {
    return {static_cast<int>(std::floor((p.x - origin.x) / resolution)),
            static_cast<int>(std::floor((p.y - origin.y) / resolution))};
  }
  Point2D cell_to_world(CellIndex c) const {
    return {origin.x + (c.x + 0.5) * resolution, origin.y + (c.y + 0.5) * resolution};
  }

  bool operator==(const GridFrame& o) const = default;
};

}  // namespace lgv
