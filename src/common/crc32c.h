// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum the wire-integrity
// layer puts on every Switcher frame and state-migration chunk. Software
// table-driven implementation; the polynomial matches what iSCSI/ext4 and
// hardware SSE4.2 `crc32` use, so a future accelerated path drops in without
// changing any stored checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lgv {

/// One-shot CRC32C over `size` bytes. `seed` chains partial computations:
/// crc32c(b, n) == crc32c(b + k, n - k, crc32c(b, k)).
uint32_t crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t crc32c(const std::vector<uint8_t>& bytes, uint32_t seed = 0) {
  return crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace lgv
