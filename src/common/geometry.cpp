#include "common/geometry.h"

#include <algorithm>
#include <numbers>
#include <ostream>

namespace lgv {

double normalize_angle(double a) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  a = std::fmod(a, two_pi);
  if (a > std::numbers::pi) a -= two_pi;
  if (a <= -std::numbers::pi) a += two_pi;
  return a;
}

double angle_diff(double to, double from) { return normalize_angle(to - from); }

double distance(const Point2D& a, const Point2D& b) { return (a - b).norm(); }

double distance(const Pose2D& a, const Pose2D& b) {
  return distance(a.position(), b.position());
}

std::vector<CellIndex> bresenham_line(CellIndex from, CellIndex to) {
  std::vector<CellIndex> cells;
  int dx = std::abs(to.x - from.x);
  int dy = std::abs(to.y - from.y);
  cells.reserve(static_cast<size_t>(std::max(dx, dy)) + 1);
  const int sx = from.x < to.x ? 1 : -1;
  const int sy = from.y < to.y ? 1 : -1;
  int err = dx - dy;
  CellIndex cur = from;
  while (true) {
    cells.push_back(cur);
    if (cur == to) break;
    const int e2 = 2 * err;
    if (e2 > -dy) {
      err -= dy;
      cur.x += sx;
    }
    if (e2 < dx) {
      err += dx;
      cur.y += sy;
    }
  }
  return cells;
}

double path_length(const std::vector<Point2D>& pts) {
  double len = 0.0;
  for (size_t i = 1; i < pts.size(); ++i) len += distance(pts[i - 1], pts[i]);
  return len;
}

std::ostream& operator<<(std::ostream& os, const Point2D& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Pose2D& p) {
  return os << "(" << p.x << ", " << p.y << "; " << p.theta << ")";
}

}  // namespace lgv
